// Command dcnsim regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	dcnsim -list
//	dcnsim -exp fig19
//	dcnsim -exp all -seeds 5 -measure 10s
//	dcnsim -exp all -store cells.d            # persist completed cells
//	dcnsim -exp all -store cells.d -resume    # continue an interrupted run
//
// Exit codes: 0 success; 1 runtime error or failed cells under
// -keep-going; 2 usage error; 130/143 interrupted by SIGINT/SIGTERM
// (completed cells flushed to -store first).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nonortho/internal/cli"
	"nonortho/internal/experiments"
	"nonortho/internal/prof"
	"nonortho/internal/scenario"
)

func main() {
	err := run(os.Args[1:])
	if err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintln(os.Stderr, "dcnsim:", err)
	}
	os.Exit(cli.ExitCode(err))
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcnsim", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "experiment to run (see -list), or 'all'")
		scenFile = fs.String("scenario", "", "run a custom JSON scenario file instead of a named experiment")
		list     = fs.Bool("list", false, "list available experiments")
		seed     = fs.Int64("seed", 1, "base random seed")
		seeds    = fs.Int("seeds", 3, "number of independent runs to average")
		warmup   = fs.Duration("warmup", 3*time.Second, "virtual warmup time per run")
		measure  = fs.Duration("measure", 8*time.Second, "virtual measurement time per run")
		quick    = fs.Bool("quick", false, "short single-seed runs (overrides -seeds/-measure)")
		faults   = fs.Bool("faults", false, "run the fault-injection robustness evaluation (shorthand for -exp faulteval)")
		workers  = fs.Int("workers", 0, "simulation cells run concurrently (0 = one per CPU; results are identical at any setting)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
		sweep    cli.SweepFlags
	)
	sweep.Register(fs)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return &cli.UsageError{Err: err}
	}
	// Profile the selected workload end to end; the stop hook flushes the
	// CPU profile and writes the heap profile once the run is complete.
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	err = func() error {
		reg := cli.Registry()
		names := make([]string, 0, len(reg))
		for name := range reg {
			names = append(names, name)
		}
		sort.Strings(names)

		if *list {
			fmt.Println("available experiments:")
			for _, n := range names {
				fmt.Println("  " + n)
			}
			return nil
		}
		if *scenFile != "" {
			return runScenario(*scenFile)
		}
		if *faults {
			if *exp != "" && *exp != "faulteval" {
				return cli.Usagef("-faults conflicts with -exp %q", *exp)
			}
			*exp = "faulteval"
		}
		if *exp == "" {
			return cli.Usagef("no experiment selected; use -exp <name>, -scenario <file>, or -list")
		}

		opts := experiments.Options{Seed: *seed, Seeds: *seeds, Warmup: *warmup, Measure: *measure, Workers: *workers}
		if *quick {
			opts = experiments.Quick()
			opts.Seed = *seed
			opts.Workers = *workers
		}

		var selected []string
		if *exp == "all" {
			selected = names
		} else {
			if _, ok := reg[*exp]; !ok {
				return cli.Usagef("unknown experiment %q; available: %s", *exp, strings.Join(names, ", "))
			}
			selected = []string{*exp}
		}

		sweeper, err := cli.NewSweeper(sweep, &opts)
		if err != nil {
			return err
		}
		defer sweeper.Close()
		for _, n := range selected {
			if *exp == "all" {
				fmt.Printf("=== %s ===\n", n)
			}
			tables, err := sweeper.RunExperiment(n, reg[n], opts)
			if err != nil {
				return err
			}
			for _, t := range tables {
				fmt.Println(t.String())
			}
		}
		return sweeper.Err()
	}()
	if perr := stopProf(); err == nil {
		err = perr
	}
	return err
}

// runScenario loads and executes a custom JSON scenario.
func runScenario(path string) error {
	s, err := scenario.LoadFile(path)
	if err != nil {
		return err
	}
	results, overall, err := s.Run()
	if err != nil {
		return err
	}
	t := &experiments.Table{
		Title:   fmt.Sprintf("Scenario: %s", s.Name),
		Columns: []string{"network", "freq (MHz)", "throughput (pkt/s)", "PRR", "sent", "received"},
	}
	for _, r := range results {
		t.AddRow(r.Name,
			fmt.Sprintf("%.0f", r.FreqMHz),
			fmt.Sprintf("%.1f", r.Throughput),
			fmt.Sprintf("%.1f%%", 100*r.PRR),
			fmt.Sprintf("%d", r.Sent),
			fmt.Sprintf("%d", r.Received))
	}
	t.AddRow("overall", "", fmt.Sprintf("%.1f", overall), "", "", "")
	fmt.Println(t.String())
	return nil
}
