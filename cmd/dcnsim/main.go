// Command dcnsim regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	dcnsim -list
//	dcnsim -exp fig19
//	dcnsim -exp all -seeds 5 -measure 10s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nonortho/internal/experiments"
	"nonortho/internal/prof"
	"nonortho/internal/scenario"
)

// runner executes one experiment and prints its tables.
type runner func(opts experiments.Options)

func registry() map[string]runner {
	print := func(tables ...*experiments.Table) {
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
	return map[string]runner{
		"fig1": func(o experiments.Options) { _, t := experiments.Fig1(o); print(t) },
		"fig2": func(o experiments.Options) { _, t := experiments.Fig2(o); print(t) },
		"fig4": func(o experiments.Options) { _, t := experiments.Fig4(o); print(t) },
		"fig6": func(o experiments.Options) { _, t := experiments.Fig6(o); print(t) },
		"fig7": func(o experiments.Options) { _, t := experiments.Fig7(o); print(t) },
		"fig8": func(o experiments.Options) { _, t := experiments.Fig8(o); print(t) },
		"fig9-10": func(o experiments.Options) {
			_, t9, t10 := experiments.Fig9and10(o)
			print(t9, t10)
		},
		"fig14-15": func(o experiments.Options) {
			_, t14, t15 := experiments.Fig14and15(o)
			print(t14, t15)
		},
		"fig16": func(o experiments.Options) { _, t := experiments.Fig16(o); print(t) },
		"fig17": func(o experiments.Options) { _, t := experiments.Fig17(o); print(t) },
		"fig18": func(o experiments.Options) { _, t := experiments.Fig18(o); print(t) },
		"fig19": func(o experiments.Options) { _, t := experiments.Fig19(o); print(t) },
		"fig20-21": func(o experiments.Options) {
			_, t20, t21 := experiments.Fig20and21(o)
			print(t20, t21)
		},
		"table1": func(o experiments.Options) { _, t := experiments.TableI(o); print(t) },
		"fig25":  func(o experiments.Options) { _, t := experiments.Fig25(o); print(t) },
		"fig26":  func(o experiments.Options) { _, t := experiments.Fig26(o); print(t) },
		"fig27":  func(o experiments.Options) { _, t := experiments.Fig27(o); print(t) },
		"fig28":  func(o experiments.Options) { _, t := experiments.Fig28(o); print(t) },
		"fig29":  func(o experiments.Options) { _, t := experiments.Fig29(o); print(t) },
		"fig30":  func(o experiments.Options) { _, t := experiments.Fig30(o); print(t) },
		"bands":  func(o experiments.Options) { _, t := experiments.BandSweep(o); print(t) },
		"ablation": func(o experiments.Options) {
			_, t := experiments.AblationDCN(o)
			print(t)
		},
		"caseii-recovery": func(o experiments.Options) {
			_, t := experiments.CaseIIRecovery(o)
			print(t)
		},
		"energy": func(o experiments.Options) {
			_, t := experiments.EnergyComparison(o)
			print(t)
		},
		"scarcity": func(o experiments.Options) {
			_, t := experiments.Scarcity(o)
			print(t)
		},
		"multihop": func(o experiments.Options) {
			_, t := experiments.Multihop(o)
			print(t)
		},
		"upperbound": func(o experiments.Options) {
			_, t := experiments.UpperBound(o)
			print(t)
		},
		"coexistence": func(o experiments.Options) {
			_, t := experiments.Coexistence(o)
			print(t)
		},
		"beaconmode": func(o experiments.Options) {
			_, t := experiments.BeaconMode(o)
			print(t)
		},
		"tsch": func(o experiments.Options) {
			_, t := experiments.TSCH(o)
			print(t)
		},
		"layouts": func(o experiments.Options) {
			_, ts := experiments.Layouts(o)
			print(ts...)
		},
		"lpl": func(o experiments.Options) {
			_, t := experiments.LPL(o)
			print(t)
		},
		"faulteval": func(o experiments.Options) {
			_, t := experiments.FaultEval(o)
			print(t)
		},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcnsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcnsim", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "", "experiment to run (see -list), or 'all'")
		scenFile = fs.String("scenario", "", "run a custom JSON scenario file instead of a named experiment")
		list     = fs.Bool("list", false, "list available experiments")
		seed     = fs.Int64("seed", 1, "base random seed")
		seeds    = fs.Int("seeds", 3, "number of independent runs to average")
		warmup   = fs.Duration("warmup", 3*time.Second, "virtual warmup time per run")
		measure  = fs.Duration("measure", 8*time.Second, "virtual measurement time per run")
		quick    = fs.Bool("quick", false, "short single-seed runs (overrides -seeds/-measure)")
		faults   = fs.Bool("faults", false, "run the fault-injection robustness evaluation (shorthand for -exp faulteval)")
		workers  = fs.Int("workers", 0, "simulation cells run concurrently (0 = one per CPU; results are identical at any setting)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Profile the selected workload end to end; the stop hook flushes the
	// CPU profile and writes the heap profile once the run is complete.
	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	err = func() error {
		reg := registry()
		names := make([]string, 0, len(reg))
		for name := range reg {
			names = append(names, name)
		}
		sort.Strings(names)

		if *list {
			fmt.Println("available experiments:")
			for _, n := range names {
				fmt.Println("  " + n)
			}
			return nil
		}
		if *scenFile != "" {
			return runScenario(*scenFile)
		}
		if *faults {
			if *exp != "" && *exp != "faulteval" {
				return fmt.Errorf("-faults conflicts with -exp %q", *exp)
			}
			*exp = "faulteval"
		}
		if *exp == "" {
			return fmt.Errorf("no experiment selected; use -exp <name>, -scenario <file>, or -list")
		}

		opts := experiments.Options{Seed: *seed, Seeds: *seeds, Warmup: *warmup, Measure: *measure, Workers: *workers}
		if *quick {
			opts = experiments.Quick()
			opts.Seed = *seed
			opts.Workers = *workers
		}

		if *exp == "all" {
			for _, n := range names {
				fmt.Printf("=== %s ===\n", n)
				reg[n](opts)
			}
			return nil
		}
		r, ok := reg[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q; available: %s", *exp, strings.Join(names, ", "))
		}
		r(opts)
		return nil
	}()
	if perr := stopProf(); err == nil {
		err = perr
	}
	return err
}

// runScenario loads and executes a custom JSON scenario.
func runScenario(path string) error {
	s, err := scenario.LoadFile(path)
	if err != nil {
		return err
	}
	results, overall, err := s.Run()
	if err != nil {
		return err
	}
	t := &experiments.Table{
		Title:   fmt.Sprintf("Scenario: %s", s.Name),
		Columns: []string{"network", "freq (MHz)", "throughput (pkt/s)", "PRR", "sent", "received"},
	}
	for _, r := range results {
		t.AddRow(r.Name,
			fmt.Sprintf("%.0f", r.FreqMHz),
			fmt.Sprintf("%.1f", r.Throughput),
			fmt.Sprintf("%.1f%%", 100*r.PRR),
			fmt.Sprintf("%d", r.Sent),
			fmt.Sprintf("%d", r.Received))
	}
	t.AddRow("overall", "", fmt.Sprintf("%.1f", overall), "", "", "")
	fmt.Println(t.String())
	return nil
}
