package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nonortho/internal/cli"
)

func TestListRunsCleanly(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	err := run([]string{"-exp", "fig999"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown-experiment", err)
	}
}

func TestNoSelectionRejected(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no arguments accepted")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

func TestRegistryCoversEveryExperiment(t *testing.T) {
	reg := cli.Registry()
	want := []string{
		"fig1", "fig2", "fig4", "fig6", "fig7", "fig8", "fig9-10",
		"fig14-15", "fig16", "fig17", "fig18", "fig19", "fig20-21",
		"table1", "fig25", "fig26", "fig27", "fig28", "fig29", "fig30",
		"bands", "ablation", "caseii-recovery", "energy", "scarcity",
		"multihop", "upperbound", "coexistence", "beaconmode", "tsch",
		"layouts", "lpl", "faulteval", "cityscale",
	}
	for _, name := range want {
		if _, ok := reg[name]; !ok {
			t.Errorf("experiment %q missing from the registry", name)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, test expects %d — keep them in sync",
			len(reg), len(want))
	}
}

func TestQuickExperimentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation; skipped in -short")
	}
	if err := run([]string{"-exp", "layouts", "-quick"}); err != nil {
		t.Fatalf("layouts: %v", err)
	}
}

func TestScenarioFlow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	doc := `{"name":"t","warmupMillis":200,"measureMillis":400,"networks":[
	  {"freqMHz":2460,"sink":{"x":1},"senders":[{"x":0}]}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path}); err != nil {
		t.Fatalf("scenario: %v", err)
	}
	if err := run([]string{"-scenario", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing scenario accepted")
	}
}
