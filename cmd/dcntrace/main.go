// Command dcntrace runs a small DCN deployment with event tracing enabled
// and writes the packet/threshold event log as CSV — the tool to reach for
// when MAC-level behaviour needs inspecting rather than aggregating.
//
// Usage:
//
//	dcntrace                        # trace to stdout
//	dcntrace -o trace.csv -run 2s   # trace a 2 s run to a file
//	dcntrace -scenario my.json      # trace a custom scenario's networks
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
	"nonortho/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcntrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcntrace", flag.ContinueOnError)
	var (
		out      = fs.String("o", "", "output CSV path (default stdout)")
		seed     = fs.Int64("seed", 1, "random seed")
		duration = fs.Duration("run", 2*time.Second, "virtual run time after the 2 s warmup")
		capacity = fs.Int("buffer", 200000, "trace ring-buffer capacity")
		networks = fs.Int("networks", 2, "adjacent CFD=3 networks to simulate")
		scheme   = fs.String("scheme", "dcn", "channel-access scheme: fixed, dcn or no-cs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var s testbed.Scheme
	switch *scheme {
	case "fixed":
		s = testbed.SchemeFixed
	case "dcn":
		s = testbed.SchemeDCN
	case "no-cs":
		s = testbed.SchemeNoCarrierSense
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}

	centers := make([]phy.MHz, *networks)
	for i := range centers {
		centers[i] = 2458 + phy.MHz(3*i)
	}
	rng := sim.NewRNG(*seed)
	snap, err := topology.NewSnapshot(topology.Config{
		Plan:   phy.ChannelPlan{Centers: centers, CFD: 3},
		Layout: topology.LayoutColocated,
	}, rng, nil)
	if err != nil {
		return err
	}
	tb := testbed.New(testbed.Options{Seed: *seed, Topology: snap})
	rec := tb.EnableTrace(*capacity)
	for _, spec := range snap.Networks() {
		tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: s})
	}
	tb.Run(2*time.Second, *duration)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rec.WriteCSV(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dcntrace: %d events (%d evicted)\n", rec.Len(), rec.Dropped())
	counts := rec.Counts()
	for _, k := range []trace.Kind{trace.KindTxEnd, trace.KindRxOK, trace.KindRxCorrupt, trace.KindDrop, trace.KindThreshold} {
		if counts[k] > 0 {
			fmt.Fprintf(os.Stderr, "  %-10s %d\n", k, counts[k])
		}
	}
	return nil
}
