package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceToFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "trace.csv")
	if err := run([]string{"-o", out, "-run", "200ms", "-networks", "1"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time_us,kind,node,seq,value,note\n") {
		t.Errorf("missing CSV header: %q", string(data[:40]))
	}
	if strings.Count(string(data), "\n") < 10 {
		t.Error("trace suspiciously small")
	}
}

func TestSchemes(t *testing.T) {
	dir := t.TempDir()
	for _, scheme := range []string{"fixed", "no-cs"} {
		out := filepath.Join(dir, scheme+".csv")
		if err := run([]string{"-o", out, "-run", "100ms", "-networks", "1", "-scheme", scheme}); err != nil {
			t.Errorf("scheme %s: %v", scheme, err)
		}
	}
	if err := run([]string{"-scheme", "tdma"}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bogus flag accepted")
	}
}
