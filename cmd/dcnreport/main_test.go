package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nonortho/internal/cli"
)

func TestSectionsCoverEverything(t *testing.T) {
	secs := cli.Sections()
	if len(secs) != 7 {
		t.Fatalf("sections = %d, want 7", len(secs))
	}
	for _, s := range secs {
		if s.Heading == "" || len(s.Names) == 0 {
			t.Errorf("malformed section %+v", s.Heading)
		}
	}
}

func TestReportQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the whole evaluation; skipped in -short")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "report.md")
	if err := run([]string{"-quick", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	report := string(data)
	for _, want := range []string{
		"# DCN evaluation report",
		"## Motivation (Section III)",
		"Fig 19: Overall throughput",
		"## Extensions beyond the paper",
		"Extension: TSCH channel hopping",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Count(report, "```") < 40 {
		t.Errorf("report has %d code fences, want >= 40 (every table)",
			strings.Count(report, "```"))
	}
}

func TestBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestBadOutputPath(t *testing.T) {
	if err := run([]string{"-quick", "-o", "/nonexistent-dir/x/report.md"}); err == nil {
		t.Error("unwritable output path accepted")
	}
}
