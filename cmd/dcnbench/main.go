// Command dcnbench runs the repository's microbenchmarks through
// `go test -bench` and writes the parsed results as JSON, so perf
// changes can be tracked as committed artifacts (see BENCH_PR3.json).
// It can also diff two such artifacts and fail on regressions.
//
// Usage:
//
//	dcnbench -out BENCH.json
//	dcnbench -bench 'SensedPower|Kernel' -benchtime 100000x -out /dev/stdout
//	dcnbench -compare old.json new.json            # exit 1 on >20% ns/op regression
//	dcnbench -compare -threshold 0.5 old.json new.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Package    string `json:"package"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op": 53.7, "allocs/op": 0,
	// including any custom testing.B metrics the benchmark reports.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Bench      string      `json:"bench_regexp"`
	BenchTime  string      `json:"benchtime"`
	Packages   []string    `json:"packages"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dcnbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dcnbench", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "output JSON path (default stdout)")
		bench     = fs.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = fs.String("benchtime", "", "passed to go test -benchtime (default go's own)")
		pkgs      = fs.String("pkgs", "./...", "comma-separated package patterns to benchmark")
		compare   = fs.Bool("compare", false, "compare two result files: dcnbench -compare old.json new.json")
		threshold = fs.Float64("threshold", 0.20, "with -compare: fail when ns/op grows by more than this fraction")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two files, got %d", fs.NArg())
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *threshold, os.Stdout)
	}

	patterns := strings.Split(*pkgs, ",")
	cmdArgs := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem"}
	if *benchtime != "" {
		cmdArgs = append(cmdArgs, "-benchtime", *benchtime)
	}
	cmdArgs = append(cmdArgs, patterns...)

	cmd := exec.Command("go", cmdArgs...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(cmdArgs, " "), err)
	}

	rep := Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Bench:     *bench,
		BenchTime: *benchtime,
		Packages:  patterns,
	}
	if err := parseInto(&rep, &buf); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines matched -bench %q", *bench)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(*out, enc, 0o644)
}

// parseInto scans `go test -bench` output. Relevant lines:
//
//	cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
//	pkg: nonortho/internal/sim
//	BenchmarkKernelScheduleCancel  2000000  150.3 ns/op  0 B/op  0 allocs/op
//
// Benchmark lines are NAME ITERATIONS then (value unit) pairs; custom
// testing.B metrics use the same pair form.
func parseInto(rep *Report, buf *bytes.Buffer) error {
	pkg := ""
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	return sc.Err()
}

// benchKey identifies a benchmark across runs: package plus name with the
// -GOMAXPROCS suffix stripped, so results from machines with different
// core counts still line up.
func benchKey(b Benchmark) string {
	name := b.Name
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return b.Package + "." + name
}

// regression is one shared benchmark whose ns/op moved.
type regression struct {
	key      string
	old, new float64
}

// compareReports diffs new against old on ns/op for every benchmark present
// in both, returning the shared count and the entries exceeding threshold.
func compareReports(old, new Report, threshold float64) (shared int, regs []regression) {
	oldNs := make(map[string]float64, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok {
			oldNs[benchKey(b)] = ns
		}
	}
	for _, b := range new.Benchmarks {
		key := benchKey(b)
		was, ok := oldNs[key]
		newNs, okNew := b.Metrics["ns/op"]
		if !ok || !okNew || was <= 0 {
			continue
		}
		shared++
		if newNs/was-1 > threshold {
			regs = append(regs, regression{key: key, old: was, new: newNs})
		}
	}
	return shared, regs
}

func readReport(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// runCompare implements -compare: non-nil error (and so a non-zero exit)
// when any shared benchmark's ns/op regressed by more than threshold.
func runCompare(oldPath, newPath string, threshold float64, w *os.File) error {
	old, err := readReport(oldPath)
	if err != nil {
		return err
	}
	cur, err := readReport(newPath)
	if err != nil {
		return err
	}
	shared, regs := compareReports(old, cur, threshold)
	if shared == 0 {
		return fmt.Errorf("no shared ns/op benchmarks between %s and %s", oldPath, newPath)
	}
	fmt.Fprintf(w, "compared %d shared benchmarks (threshold +%.0f%% ns/op)\n", shared, threshold*100)
	for _, r := range regs {
		fmt.Fprintf(w, "REGRESSION %s: %.4g -> %.4g ns/op (%+.1f%%)\n",
			r.key, r.old, r.new, (r.new/r.old-1)*100)
	}
	if len(regs) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond +%.0f%%", len(regs), threshold*100)
	}
	fmt.Fprintln(w, "no regressions")
	return nil
}

func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}
