package main

import (
	"bytes"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: nonortho/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernelScheduleCancel-8   	 2000000	       150.3 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	nonortho/internal/sim	0.5s
pkg: nonortho/internal/medium
BenchmarkSensedPowerDense-8       	21474836	        53.75 ns/op	       3 B/op	       0 allocs/op
PASS
`
	var rep Report
	if err := parseInto(&rep, bytes.NewBufferString(out)); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	k := rep.Benchmarks[0]
	if k.Package != "nonortho/internal/sim" || k.Name != "BenchmarkKernelScheduleCancel-8" {
		t.Fatalf("first benchmark = %q in %q", k.Name, k.Package)
	}
	if k.Iterations != 2000000 || k.Metrics["ns/op"] != 150.3 || k.Metrics["allocs/op"] != 0 {
		t.Fatalf("first benchmark parsed as %+v", k)
	}
	m := rep.Benchmarks[1]
	if m.Package != "nonortho/internal/medium" || m.Metrics["ns/op"] != 53.75 {
		t.Fatalf("second benchmark parsed as %+v", m)
	}
	if rep.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", rep.CPU)
	}
}

func TestParseBenchLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanumber 5 ns/op",
		"BenchmarkX 10 bad ns/op",
		"BenchmarkX 10 5", // odd pair
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine(%q) accepted malformed line", line)
		}
	}
}

func TestParseBenchLineCustomMetrics(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkTput-4  100  12.5 ns/op  340.2 dcn-pkt/s")
	if !ok {
		t.Fatal("rejected valid line with custom metric")
	}
	if b.Metrics["dcn-pkt/s"] != 340.2 {
		t.Fatalf("custom metric = %v", b.Metrics)
	}
}
