package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: nonortho/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernelScheduleCancel-8   	 2000000	       150.3 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	nonortho/internal/sim	0.5s
pkg: nonortho/internal/medium
BenchmarkSensedPowerDense-8       	21474836	        53.75 ns/op	       3 B/op	       0 allocs/op
PASS
`
	var rep Report
	if err := parseInto(&rep, bytes.NewBufferString(out)); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	k := rep.Benchmarks[0]
	if k.Package != "nonortho/internal/sim" || k.Name != "BenchmarkKernelScheduleCancel-8" {
		t.Fatalf("first benchmark = %q in %q", k.Name, k.Package)
	}
	if k.Iterations != 2000000 || k.Metrics["ns/op"] != 150.3 || k.Metrics["allocs/op"] != 0 {
		t.Fatalf("first benchmark parsed as %+v", k)
	}
	m := rep.Benchmarks[1]
	if m.Package != "nonortho/internal/medium" || m.Metrics["ns/op"] != 53.75 {
		t.Fatalf("second benchmark parsed as %+v", m)
	}
	if rep.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", rep.CPU)
	}
}

func TestParseBenchLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanumber 5 ns/op",
		"BenchmarkX 10 bad ns/op",
		"BenchmarkX 10 5", // odd pair
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("parseBenchLine(%q) accepted malformed line", line)
		}
	}
}

func benchResult(pkg, name string, ns float64) Benchmark {
	return Benchmark{Package: pkg, Name: name, Metrics: map[string]float64{"ns/op": ns}}
}

func TestCompareReports(t *testing.T) {
	old := Report{Benchmarks: []Benchmark{
		benchResult("p", "BenchmarkA-8", 100),
		benchResult("p", "BenchmarkB", 50),
		benchResult("p", "BenchmarkOldOnly", 10),
	}}
	cur := Report{Benchmarks: []Benchmark{
		benchResult("p", "BenchmarkA-4", 115), // +15%: inside threshold, suffix differs
		benchResult("p", "BenchmarkB", 75),    // +50%: regression
		benchResult("p", "BenchmarkNewOnly", 10),
	}}
	shared, regs := compareReports(old, cur, 0.20)
	if shared != 2 {
		t.Fatalf("shared = %d, want 2", shared)
	}
	if len(regs) != 1 || regs[0].key != "p.BenchmarkB" {
		t.Fatalf("regressions = %+v, want only p.BenchmarkB", regs)
	}
	// A looser threshold admits the +50% too.
	if _, regs := compareReports(old, cur, 0.60); len(regs) != 0 {
		t.Fatalf("threshold 0.60: regressions = %+v, want none", regs)
	}
	// Improvements never count as regressions.
	better := Report{Benchmarks: []Benchmark{benchResult("p", "BenchmarkB", 5)}}
	if _, regs := compareReports(old, better, 0.20); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}
}

func TestBenchKeyStripsGomaxprocsSuffix(t *testing.T) {
	for name, want := range map[string]string{
		"BenchmarkA-8":             "p.BenchmarkA",
		"BenchmarkA":               "p.BenchmarkA",
		"BenchmarkCellSetup/a-2":   "p.BenchmarkCellSetup/a",
		"BenchmarkFig19/workers=4": "p.BenchmarkFig19/workers=4", // =4 is not a -N suffix
	} {
		if got := benchKey(benchResult("p", name, 1)); got != want {
			t.Errorf("benchKey(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep Report) string {
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", Report{Benchmarks: []Benchmark{benchResult("p", "BenchmarkA", 100)}})
	same := write("same.json", Report{Benchmarks: []Benchmark{benchResult("p", "BenchmarkA", 101)}})
	edge := write("edge.json", Report{Benchmarks: []Benchmark{benchResult("p", "BenchmarkA", 120)}})
	worse := write("worse.json", Report{Benchmarks: []Benchmark{benchResult("p", "BenchmarkA", 300)}})
	disjoint := write("disjoint.json", Report{Benchmarks: []Benchmark{benchResult("p", "BenchmarkZ", 1)}})

	if err := run([]string{"-compare", old, same}); err != nil {
		t.Errorf("steady result failed compare: %v", err)
	}
	// The gate is strictly greater-than: exactly +20% on the default 0.20
	// threshold is still exit 0, so a result hovering on the line never
	// flakes the gate red.
	if err := run([]string{"-compare", old, edge}); err != nil {
		t.Errorf("exactly-at-threshold result failed compare: %v", err)
	}
	if err := run([]string{"-compare", old, worse}); err == nil {
		t.Error("3x regression passed compare")
	}
	if err := run([]string{"-compare", "-threshold", "3", old, worse}); err != nil {
		t.Errorf("3x regression failed compare at threshold 3: %v", err)
	}
	if err := run([]string{"-compare", old, disjoint}); err == nil {
		t.Error("disjoint benchmark sets passed compare")
	}
	if err := run([]string{"-compare", old}); err == nil {
		t.Error("single file accepted")
	}
}

func TestParseBenchLineCustomMetrics(t *testing.T) {
	b, ok := parseBenchLine("BenchmarkTput-4  100  12.5 ns/op  340.2 dcn-pkt/s")
	if !ok {
		t.Fatal("rejected valid line with custom metric")
	}
	if b.Metrics["dcn-pkt/s"] != 340.2 {
		t.Fatalf("custom metric = %v", b.Metrics)
	}
}
