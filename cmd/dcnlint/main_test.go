package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nonortho/internal/lint"
)

// TestListNamesEveryAnalyzer pins -list as the registry's user-facing
// mirror: every registered analyzer appears with its doc line.
func TestListNamesEveryAnalyzer(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit %d, stderr %s", code, errOut.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %q", a.Name)
		}
	}
}

func TestUnknownOnlyIsUsageError(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("-only nosuch exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Fatalf("stderr %q lacks the unknown-analyzer hint", errOut.String())
	}
}

// TestJSONFindings runs the driver over a throwaway module with one
// detsource violation and checks the machine-readable output shape.
func TestJSONFindings(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "simx", "simx.go"), `package simx

import "time"

func Tick() int64 { return time.Now().UnixNano() }
`)
	defer chdir(t, dir)()

	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr %s", code, errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("no findings decoded from -json output")
	}
	f := findings[0]
	if f.Analyzer != "detsource" || f.Line == 0 ||
		!strings.HasSuffix(f.File, "simx.go") {
		t.Fatalf("unexpected first finding %+v", f)
	}
}

// TestJSONCleanIsEmptyArray pins the clean-run contract consumers rely
// on: a JSON array, never null.
func TestJSONCleanIsEmptyArray(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "pkg", "pkg.go"), "package pkg\n\nfunc Clean() {}\n")
	defer chdir(t, dir)()

	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// chdir switches into dir and returns the restore func to defer.
func chdir(t *testing.T, dir string) func() {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	return func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	}
}
