// Command dcnlint runs the project's determinism and unit-safety
// analyzers (internal/lint) over the repository. It is the
// project-specific half of the `make check` gate: stock go vet cannot
// know that simulation code must not read the wall clock, that float
// sums over map iteration are a reproducibility bug, or that dBm and
// milliwatts never mix in one +/-.
//
// Usage:
//
//	dcnlint ./...                 # whole module (the make check invocation)
//	dcnlint ./internal/medium     # one package
//	dcnlint -list                 # print the suite and each invariant
//	dcnlint -json ./...           # machine-readable findings (CI tooling)
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
// Suppress a deliberate exception at its line (reason mandatory):
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"nonortho/internal/lint"
)

// jsonFinding is the -json shape of one diagnostic. Path carries the
// interprocedural call chain (outermost callee first, sink last) when
// the finding was derived through helper summaries.
type jsonFinding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Sink     string   `json:"sink,omitempty"`
	Path     []string `json:"path,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("dcnlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list   = fs.Bool("list", false, "list the analyzers and exit")
		only   = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		asJSON = fs.Bool("json", false, "emit findings as a JSON array instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range splitComma(*only) {
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(errOut, "dcnlint: unknown analyzer %q (see -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewModuleLoader(".")
	if err != nil {
		fmt.Fprintln(errOut, "dcnlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(errOut, "dcnlint:", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(errOut, "dcnlint:", err)
		return 2
	}
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Sink:     d.Sink,
				Path:     d.CallPath,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(errOut, "dcnlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "dcnlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
