#!/bin/sh
# check.sh — the same gate as `make check`, for environments without make:
# vet, build, and the full test suite under the race detector.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...
echo "== dcnlint ./... (determinism, unit-safety, lifecycle + immutability analyzers)"
go run ./cmd/dcnlint ./...
if [ "${LINT_FULL:-0}" = "1" ]; then
	# Pinned third-party analyzers, fetched with `go run pkg@version`.
	# Opt-in because they need module-proxy network access.
	echo "== staticcheck + govulncheck (LINT_FULL=1)"
	go run honnef.co/go/tools/cmd/staticcheck@"${STATICCHECK_VERSION:-v0.4.7}" ./...
	go run golang.org/x/vuln/cmd/govulncheck@"${GOVULNCHECK_VERSION:-v1.1.3}" ./...
fi
echo "== go build ./..."
go build ./...
echo "== dissemination oracle + filter tests under -race"
# The interest-filter correctness surface, run first and by name: the
# brute-force sensing oracle (filter on and off), the filter-on/off and
# spatial-exact bit-identity replays, the folded-mode bounded-error
# oracle, the frozen-delivery-set edge cases, and the arena recycling
# contract. A filtering or spatial-tier bug fails here in seconds
# instead of somewhere inside the full suite below.
go test -race -count=1 \
	-run 'TestCachedSumsMatchBruteForce|TestFilteredChurnBitIdentical|TestSpatialExactChurnBitIdentical|TestFoldedChurnBoundedError|TestRetuneWhileOnAir|TestDetachWithPendingInterest|TestWidebandDeliverySpansBands' \
	./internal/medium
go test -race -count=1 ./internal/arena ./internal/sim
echo "== crash-safety surface under -race"
# Interrupt/resume bit-identity (the representative subset of the full
# 17-table suite), keep-going failure collection, the deterministic-vs-
# environmental retry classifier, store corruption recovery, and the
# budget/watchdog machinery — by name, so a crash-safety regression
# fails in seconds instead of somewhere inside the full suite below.
go test -race -count=1 \
	-run 'TestCrashResumeBitIdentitySubset|TestRunEngine' \
	./internal/experiments
go test -race -count=1 \
	-run 'TestKeepGoingBudgetTripMarksTables|TestSignalCancelsWithResumeHint|TestExitCodeContract' \
	./internal/cli
go test -race -count=1 ./internal/store ./internal/watchdog ./internal/parallel
echo "== go test -race ./..."
# Race instrumentation is 5-20x on a single core; give the experiment
# grids headroom beyond the 10m default before calling a hang.
go test -race -timeout 1800s ./...
echo "== bench smoke (1 iteration)"
go run ./cmd/dcnbench -bench 'KernelScheduleCancel|SensedPowerDense|OnAirFanout$' \
	-benchtime 1x -pkgs ./internal/sim,./internal/medium -out /dev/null
go run ./cmd/dcnbench -bench 'CellSetupArena' \
	-benchtime 1x -pkgs ./internal/testbed -out /dev/null
# City-scale smoke: one iteration proves the 5,000-node spatial-tier
# benchmarks still set up (near snapshot build, far-field fold, grid
# culled fan-out) without paying measurement time.
go run ./cmd/dcnbench -bench 'SensedPower5kNodes|OnAirFanout5kNodes' \
	-benchtime 1x -pkgs ./internal/medium -out /dev/null
# Lint-gate smoke: one iteration of the whole-module analyzer run keeps
# the interprocedural engine's cost visible in the bench artifacts.
go run ./cmd/dcnbench -bench 'LintModule' \
	-benchtime 1x -pkgs ./internal/lint -out /dev/null
echo "== bench compare smoke (vs BENCH_PR7.json)"
# The medium sensing benchmarks (sped up severalfold in PR 3, again via
# the SoA link rows in PR 7) plus the PR 4 dissemination fan-out: all
# are tight enough that a >20% regression signal here is real, not
# measurement noise. The store round trip rides
# along so a cell-cache slowdown (it sits on every -store sweep's path)
# trips the same gate.
smoke_json=$(mktemp)
# Best of three: a ~12 ns/op benchmark can read 25% high during a CPU
# burst on a shared runner, so each attempt uses 2M fixed iterations
# (100k measured only ~1 ms) and the gate passes if any attempt is
# clean — a real regression fails all three.
compare_ok=0
for attempt in 1 2 3; do
	go run ./cmd/dcnbench -bench 'SensedPowerDense|InterferenceDense|OnAirFanout$' \
		-benchtime 2000000x -pkgs ./internal/medium -out "$smoke_json"
	if go run ./cmd/dcnbench -compare BENCH_PR7.json "$smoke_json"; then
		compare_ok=1
		break
	fi
	echo "bench compare attempt $attempt failed; retrying in case of host noise"
done
if [ "$compare_ok" -ne 1 ]; then
	echo "bench compare failed on all 3 attempts" >&2
	exit 1
fi
go run ./cmd/dcnbench -bench 'CellStoreRoundTrip' \
	-benchtime 100x -pkgs ./internal/store -out /dev/null
rm -f "$smoke_json"
echo "check: OK"
