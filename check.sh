#!/bin/sh
# check.sh — the same gate as `make check`, for environments without make:
# vet, build, and the full test suite under the race detector.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "== bench smoke (1 iteration)"
go run ./cmd/dcnbench -bench 'KernelScheduleCancel|SensedPowerDense' \
	-benchtime 1x -pkgs ./internal/sim,./internal/medium -out /dev/null
echo "== bench compare smoke (vs BENCH_PR2.json)"
# Only the medium sensing benchmarks: they sped up severalfold in PR 3, so
# a >20% regression signal here is real, not measurement noise.
smoke_json=$(mktemp)
go run ./cmd/dcnbench -bench 'SensedPowerDense|InterferenceDense' \
	-benchtime 200000x -pkgs ./internal/medium -out "$smoke_json"
go run ./cmd/dcnbench -compare BENCH_PR2.json "$smoke_json"
rm -f "$smoke_json"
echo "check: OK"
