#!/bin/sh
# check.sh — the same gate as `make check`, for environments without make:
# vet, build, and the full test suite under the race detector.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...
echo "== go build ./..."
go build ./...
echo "== go test -race ./..."
go test -race ./...
echo "== bench smoke (1 iteration)"
go run ./cmd/dcnbench -bench 'KernelScheduleCancel|SensedPowerDense' \
	-benchtime 1x -pkgs ./internal/sim,./internal/medium -out /dev/null
echo "check: OK"
