#!/bin/sh
# check.sh — the same gate as `make check`, for environments without make:
# vet, build, and the full test suite under the race detector.
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...
echo "== dcnlint ./... (determinism + unit-safety analyzers)"
go run ./cmd/dcnlint ./...
if [ "${LINT_FULL:-0}" = "1" ]; then
	# Pinned third-party analyzers, fetched with `go run pkg@version`.
	# Opt-in because they need module-proxy network access.
	echo "== staticcheck + govulncheck (LINT_FULL=1)"
	go run honnef.co/go/tools/cmd/staticcheck@"${STATICCHECK_VERSION:-v0.4.7}" ./...
	go run golang.org/x/vuln/cmd/govulncheck@"${GOVULNCHECK_VERSION:-v1.1.3}" ./...
fi
echo "== go build ./..."
go build ./...
echo "== dissemination oracle + filter tests under -race"
# The interest-filter correctness surface, run first and by name: the
# brute-force sensing oracle (filter on and off), the filter-on/off
# bit-identity replay, the frozen-delivery-set edge cases, and the arena
# recycling contract. A filtering bug fails here in seconds instead of
# somewhere inside the full suite below.
go test -race -count=1 \
	-run 'TestCachedSumsMatchBruteForce|TestFilteredChurnBitIdentical|TestRetuneWhileOnAir|TestDetachWithPendingInterest|TestWidebandDeliverySpansBands' \
	./internal/medium
go test -race -count=1 ./internal/arena ./internal/sim
echo "== go test -race ./..."
# Race instrumentation is 5-20x on a single core; give the experiment
# grids headroom beyond the 10m default before calling a hang.
go test -race -timeout 1800s ./...
echo "== bench smoke (1 iteration)"
go run ./cmd/dcnbench -bench 'KernelScheduleCancel|SensedPowerDense|OnAirFanout' \
	-benchtime 1x -pkgs ./internal/sim,./internal/medium -out /dev/null
go run ./cmd/dcnbench -bench 'CellSetupArena' \
	-benchtime 1x -pkgs ./internal/testbed -out /dev/null
echo "== bench compare smoke (vs BENCH_PR3.json)"
# The medium sensing benchmarks (sped up severalfold in PR 3) plus the
# PR 4 dissemination fan-out: all are tight enough that a >20% regression
# signal here is real, not measurement noise.
smoke_json=$(mktemp)
go run ./cmd/dcnbench -bench 'SensedPowerDense|InterferenceDense|OnAirFanout' \
	-benchtime 100000x -pkgs ./internal/medium -out "$smoke_json"
go run ./cmd/dcnbench -compare BENCH_PR3.json "$smoke_json"
rm -f "$smoke_json"
echo "check: OK"
