#!/bin/sh
# interrupt_resume.sh — end-to-end crash/resume check on the real binary.
#
# Runs the full quick sweep uninterrupted as a baseline, runs it again
# with -store and kills it with SIGINT mid-sweep, then resumes with
# -resume (at a different worker count, which must not matter) and
# requires the resumed stdout byte-identical to the baseline. Also
# asserts the documented interrupt contract: exit code 130, completed
# cells flushed, a resume hint on stderr.
#
# The in-process equivalent (cancellation at seeded cell boundaries,
# all 17 golden tables) lives in internal/experiments/crashresume_test.go;
# this script is the cheap outer loop proving the signal handler, exit
# codes, and CLI flags wire those pieces together.
set -eu
cd "$(dirname "$0")/.."

exp=${1:-all}
cut_after=${2:-3}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/dcnsim" ./cmd/dcnsim

echo "== baseline: uninterrupted '$exp' sweep"
"$tmp/dcnsim" -exp "$exp" -quick -workers 8 >"$tmp/baseline.txt"

echo "== interrupted: same sweep with -store, SIGINT after ${cut_after}s"
set +e
timeout --preserve-status -s INT "$cut_after" \
	"$tmp/dcnsim" -exp "$exp" -quick -workers 8 -store "$tmp/cells" \
	>"$tmp/interrupted.txt" 2>"$tmp/interrupted.err"
status=$?
set -e
if [ "$status" -ne 130 ]; then
	echo "interrupted run exited $status, want 130 (did it finish before the SIGINT?)" >&2
	cat "$tmp/interrupted.err" >&2
	exit 1
fi
if ! grep -q -- '-resume' "$tmp/interrupted.err"; then
	echo "interrupted run printed no resume hint:" >&2
	cat "$tmp/interrupted.err" >&2
	exit 1
fi
cells=$(ls "$tmp/cells"/*.cell 2>/dev/null | wc -l)
if [ "$cells" -eq 0 ]; then
	echo "no completed cells flushed to the store before exit" >&2
	exit 1
fi
echo "   flushed $cells completed cells before exiting 130"

echo "== resumed: -resume at a different worker count"
"$tmp/dcnsim" -exp "$exp" -quick -workers 3 -store "$tmp/cells" -resume \
	>"$tmp/resumed.txt"

if ! cmp -s "$tmp/baseline.txt" "$tmp/resumed.txt"; then
	echo "resumed output differs from the uninterrupted baseline:" >&2
	diff "$tmp/baseline.txt" "$tmp/resumed.txt" >&2 || true
	exit 1
fi
echo "interrupt_resume: OK (resumed output byte-identical to baseline)"
