// Package nonortho is a from-scratch Go reproduction of "Design of
// Non-orthogonal Multi-channel Sensor Networks" (Xu, Luo, Zhang —
// ICDCS 2010): the DCN scheme (Dynamic CCA-threshold for Non-orthogonal
// transmission) together with the full 802.15.4 PHY/MAC substrate it needs
// — a deterministic discrete-event simulator standing in for the paper's
// 35-mote MicaZ/CC2420 testbed.
//
// The library lives under internal/: sim (event kernel), phy (propagation,
// rejection, BER), frame (802.15.4 frames), medium (shared channel), radio
// (CC2420 model), mac (unslotted CSMA/CA), dcn (the paper's CCA-Adjustor),
// topology, stats, recovery, net80211 (802.11b contrast model), testbed
// (experiment harness) and experiments (one constructor per paper figure
// and table). The cmd/dcnsim CLI and examples/ directory exercise the
// public surface; bench_test.go regenerates every figure as a Go
// benchmark.
package nonortho
