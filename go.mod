module nonortho

go 1.22
