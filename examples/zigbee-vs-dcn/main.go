// zigbee-vs-dcn reproduces the paper's headline result on a 15 MHz band
// (2458-2473 MHz): the default ZigBee multi-channel design (4 channels at
// CFD = 5 MHz, fixed -77 dBm CCA threshold) against the non-orthogonal
// design (6 channels at CFD = 3 MHz) with the DCN CCA-Adjustor running on
// every node. Expect roughly a 40-55 % overall throughput improvement —
// the paper measured 38.4-55.7 % across configurations.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 7, "random seed")
	measure := flag.Duration("measure", 10*time.Second, "virtual measurement window")
	flag.Parse()
	if err := run(*seed, *measure); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, measure time.Duration) error {
	zigbee, err := design(seed, 4, 5, testbed.SchemeFixed, measure)
	if err != nil {
		return err
	}
	dcn, err := design(seed, 6, 3, testbed.SchemeDCN, measure)
	if err != nil {
		return err
	}

	fmt.Println("15 MHz band (2458-2473 MHz), colocated networks, 0 dBm")
	fmt.Printf("  ZigBee design  (4 ch, CFD=5, fixed -77 dBm): %7.1f pkt/s\n", zigbee)
	fmt.Printf("  DCN design     (6 ch, CFD=3, CCA-Adjustor):  %7.1f pkt/s\n", dcn)
	fmt.Printf("  improvement: %.1f%%  (paper: 38.4%% - 55.7%%)\n", 100*(dcn/zigbee-1))
	return nil
}

func design(seed int64, channels int, cfd phy.MHz, scheme testbed.Scheme, measure time.Duration) (float64, error) {
	centers := make([]phy.MHz, channels)
	for i := range centers {
		centers[i] = 2458 + phy.MHz(i)*cfd
	}
	rng := sim.NewRNG(seed)
	nets, err := topology.Generate(topology.Config{
		Plan:   phy.ChannelPlan{Centers: centers, CFD: cfd},
		Layout: topology.LayoutColocated,
	}, rng)
	if err != nil {
		return 0, err
	}
	tb := testbed.New(testbed.Options{Seed: seed})
	for _, spec := range nets {
		tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: scheme})
	}
	tb.Run(3*time.Second, measure)
	return tb.OverallThroughput(), nil
}
