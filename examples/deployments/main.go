// deployments runs the paper's three network configurations (Section
// VI-B.4, Figs. 22-27) with randomized transmit powers in [-22, 0] dBm:
//
//	Case I   — all networks in one interfering region
//	Case II  — each network clustered by itself (office rooms)
//	Case III — everything scattered over a larger random field
//
// For each case it prints the three competing designs (ZigBee, CFD=3
// without DCN, CFD=3 with DCN) and the DCN gains. Expect the relaxing gain
// to shrink from Case I to Case III: weak co-channel RSSI pins the
// CCA-Adjustor down in scattered deployments.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// caseSpec mirrors the geometry used by the experiments package.
type caseSpec struct {
	name   string
	layout topology.Layout
	region float64
	link   float64
}

func main() {
	seed := flag.Int64("seed", 1, "base random seed")
	seeds := flag.Int("seeds", 3, "independent runs to average (placement noise is large)")
	measure := flag.Duration("measure", 8*time.Second, "virtual measurement window")
	flag.Parse()
	if err := run(*seed, *seeds, *measure); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, seeds int, measure time.Duration) error {
	cases := []caseSpec{
		{"Case I (one interfering region)", topology.LayoutColocated, 0.8, 1.0},
		{"Case II (separated clusters)", topology.LayoutClustered, 4.0, 1.0},
		{"Case III (random topology)", topology.LayoutRandomField, 2.5, 1.8},
	}
	for _, c := range cases {
		var zig, without, with float64
		for s := 0; s < seeds; s++ {
			z, err := throughput(seed+int64(s), c, 4, 5, testbed.SchemeFixed, measure)
			if err != nil {
				return err
			}
			wo, err := throughput(seed+int64(s), c, 6, 3, testbed.SchemeFixed, measure)
			if err != nil {
				return err
			}
			wi, err := throughput(seed+int64(s), c, 6, 3, testbed.SchemeDCN, measure)
			if err != nil {
				return err
			}
			zig += z / float64(seeds)
			without += wo / float64(seeds)
			with += wi / float64(seeds)
		}
		fmt.Println(c.name)
		fmt.Printf("  ZigBee:           %7.1f pkt/s\n", zig)
		fmt.Printf("  CFD=3 w/o DCN:    %7.1f pkt/s\n", without)
		fmt.Printf("  CFD=3 with DCN:   %7.1f pkt/s\n", with)
		fmt.Printf("  DCN gain: %+.1f%% vs w/o, %+.1f%% vs ZigBee\n\n",
			100*(with/without-1), 100*(with/zig-1))
	}
	return nil
}

func throughput(seed int64, c caseSpec, channels int, cfd phy.MHz, scheme testbed.Scheme, measure time.Duration) (float64, error) {
	centers := make([]phy.MHz, channels)
	for i := range centers {
		centers[i] = 2458 + phy.MHz(i)*cfd
	}
	rng := sim.NewRNG(seed)
	nets, err := topology.Generate(topology.Config{
		Plan:         phy.ChannelPlan{Centers: centers, CFD: cfd},
		Layout:       c.layout,
		Power:        topology.UniformPower(-22, 0),
		RegionRadius: c.region,
		LinkRadius:   c.link,
	}, rng)
	if err != nil {
		return 0, err
	}
	tb := testbed.New(testbed.Options{Seed: seed})
	for _, spec := range nets {
		tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: scheme})
	}
	tb.Run(3*time.Second, measure)
	return tb.OverallThroughput(), nil
}
