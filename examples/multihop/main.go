// multihop runs the data-collection workload the paper's introduction
// motivates on both competing designs: six multi-hop collection trees
// (one root and seven reporters each, outer nodes two hops deep) on the
// 15 MHz band. The ZigBee design owns only four orthogonal channels, so
// two pairs of trees must share co-channel (assigned TMCP-style to the
// least-coupled pairs); the DCN design gives every tree its own
// non-orthogonal channel and runs the CCA-Adjustor on every node.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nonortho/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "base random seed")
	seeds := flag.Int("seeds", 2, "independent runs to average")
	measure := flag.Duration("measure", 8*time.Second, "virtual measurement window")
	flag.Parse()
	if err := run(*seed, *seeds, *measure); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, seeds int, measure time.Duration) error {
	res, table := experiments.Multihop(experiments.Options{
		Seed:    seed,
		Seeds:   seeds,
		Warmup:  3 * time.Second,
		Measure: measure,
	})
	fmt.Println(table.String())
	zig, dcn := res.Rows[0], res.Rows[1]
	fmt.Printf("DCN delivers %.1fx the readings at %+.0f points higher delivery ratio.\n",
		dcn.DeliveredPerSec/zig.DeliveredPerSec,
		100*(dcn.DeliveryRatio-zig.DeliveryRatio))
	return nil
}
