// attacker reproduces the paper's concurrency probe (Section III-B,
// Figs. 3-4): two crossed links with carrier sense disabled, one of them
// an "attacker" blasting a packet every 3 ms so that every packet of the
// normal sender collides. It sweeps the channel frequency distance and
// prints the collided-packet receive rate (CPRR) of both links — the
// evidence that non-orthogonal concurrency is feasible at CFD >= 3 MHz.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 3, "random seed")
	measure := flag.Duration("measure", 8*time.Second, "virtual measurement window")
	flag.Parse()
	if err := run(*seed, *measure); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, measure time.Duration) error {
	fmt.Println("CPRR vs channel frequency distance (carrier sense disabled)")
	fmt.Println("CFD (MHz)  normal sender  attacker")
	for _, cfd := range []phy.MHz{5, 4, 3, 2, 1} {
		normal, attacker := probe(seed, cfd, measure)
		fmt.Printf("%9.0f  %12.1f%%  %7.1f%%\n", float64(cfd), 100*normal, 100*attacker)
	}
	fmt.Println("\npaper: ~100% at >=4 MHz, ~97% at 3 MHz, ~70% at 2 MHz, <20% at 1 MHz")
	return nil
}

// probe builds the crossed-link geometry: each receiver is 1 m from both
// its own sender and the foreign one, so the collider arrives at equal
// power.
func probe(seed int64, cfd phy.MHz, measure time.Duration) (normalCPRR, attackerCPRR float64) {
	tb := testbed.New(testbed.Options{Seed: seed, StaticFadingSigma: -1})
	normal := tb.AddNetwork(topology.NetworkSpec{
		Freq:    2460,
		Sink:    topology.NodeSpec{Pos: phy.Position{X: 0.5, Y: 0}},
		Senders: []topology.NodeSpec{{Pos: phy.Position{X: -0.5, Y: 0}}},
	}, testbed.NetworkConfig{Scheme: testbed.SchemeNoCarrierSense})
	attacker := tb.AddNetwork(topology.NetworkSpec{
		Freq:    2460 + cfd,
		Sink:    topology.NodeSpec{Pos: phy.Position{X: -0.5, Y: 1}},
		Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0.5, Y: 1}}},
	}, testbed.NetworkConfig{
		Scheme:  testbed.SchemeNoCarrierSense,
		Period:  3 * time.Millisecond,
		Payload: 73, // ~2.9 ms airtime: near-total channel occupancy
	})
	tb.Run(time.Second, measure)
	return normal.Stats().CPRR(), attacker.Stats().CPRR()
}
