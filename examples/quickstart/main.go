// Quickstart: build one 802.15.4 network of four saturated senders on a
// single channel, run it for ten simulated seconds, and print the
// throughput — the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One channel at 2460 MHz; four senders clustered around a sink.
	plan := phy.ChannelPlan{Centers: []phy.MHz{2460}}
	rng := sim.NewRNG(42)
	nets, err := topology.Generate(topology.Config{
		Plan:              plan,
		SendersPerNetwork: 4,
		Layout:            topology.LayoutColocated,
	}, rng)
	if err != nil {
		return err
	}

	tb := testbed.New(testbed.Options{Seed: 42})
	network := tb.AddNetwork(nets[0], testbed.NetworkConfig{})

	// Two seconds of warmup, ten seconds of measurement — all virtual
	// time; the run completes in milliseconds of wall clock.
	tb.Run(2*time.Second, 10*time.Second)

	s := network.Stats()
	fmt.Printf("channel %v MHz, 4 saturated senders, 10 s measured\n", network.Freq)
	fmt.Printf("  sent:       %d packets (%.1f pkt/s)\n", s.Sent, s.SendRate(tb.MeasuredDuration()))
	fmt.Printf("  received:   %d packets (%.1f pkt/s)\n", s.Received, s.Throughput(tb.MeasuredDuration()))
	fmt.Printf("  PRR:        %.1f%%\n", 100*s.PRR())
	fmt.Printf("  CRC failed: %d\n", s.CRCFailed)
	return nil
}
