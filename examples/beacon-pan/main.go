// beacon-pan demonstrates the beacon-enabled 802.15.4 mode end-to-end:
// a coordinator beacons with BO=6/SO=3 (12.5 % duty cycle), devices join
// through the association procedure, one receives a guaranteed time slot,
// and the duty-cycled devices' energy is compared with an always-on node.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nonortho/internal/beacon"
	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 2, "random seed")
	runFor := flag.Duration("run", 30*time.Second, "virtual run time")
	flag.Parse()
	if err := run(*seed, *runFor); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, runFor time.Duration) error {
	k := sim.NewKernel(seed)
	m := medium.New(k)
	sched := beacon.Schedule{BeaconOrder: 6, SuperframeOrder: 3}

	mkRadio := func(addr frame.Address, x, y float64) *radio.Radio {
		return radio.New(k, m, radio.Config{
			Pos: phy.Position{X: x, Y: y}, Freq: 2460, TxPower: 0,
			CCAThreshold: phy.DefaultCCAThreshold, Address: addr,
		})
	}

	coord, err := beacon.NewCoordinator(k, mkRadio(1, 0, 0), sched)
	if err != nil {
		return err
	}
	coord.EnableAssociation(beacon.AssocConfig{FirstAddr: 0x0100})

	var devices []*beacon.Device
	for i := 0; i < 3; i++ {
		d, err := beacon.NewDevice(k, mkRadio(frame.Address(10+i), 0.6+0.3*float64(i), 0.5), 1, sched)
		if err != nil {
			return err
		}
		d.SleepInactive = i > 0 // device 0 stays always-on for contrast
		devices = append(devices, d)
	}

	// A guaranteed slot for device 2. GTS holders drain their queue
	// contention-free inside their slots and here keep their static
	// address (association for a sleeping GTS device needs the standard's
	// indirect-transmission machinery, which is out of scope).
	if _, err := coord.AllocateGTS(devices[2].Radio().Address(), 2); err != nil {
		return err
	}

	coord.Start()
	for _, d := range devices[:2] {
		d.Associate(500 * time.Millisecond)
	}
	// Each device reports twice a second.
	for _, d := range devices {
		d := d
		k.NewTicker(500*time.Millisecond, func() { d.Send(make([]byte, 32)) })
	}
	k.RunFor(runFor)

	fmt.Printf("superframe: BI=%v, active=%v, duty=%.3f\n",
		sched.BeaconInterval(), sched.ActiveDuration(), sched.DutyCycle())
	fmt.Printf("beacons sent: %d, data received: %d\n", coord.BeaconsSent(), coord.Received())
	for i, d := range devices {
		e := d.EnergyReport()
		addr := uint16(d.ShortAddr())
		if !d.Associated() {
			addr = uint16(d.Radio().Address()) // static addressing
		}
		fmt.Printf("device %d: associated=%v addr=%#04x gts=%v sleep=%v energy=%.1f mJ\n",
			i, d.Associated(), addr, d.GTS() != nil, d.SleepInactive, e.Millijoules)
	}
	return nil
}
