// spectrum-scan runs an energy-detect spectrum survey while a DCN
// deployment is on the air: a passive scanner node sweeps the 2458-2473
// MHz band in 1 MHz steps and prints per-channel occupancy — what a
// channel-selection protocol (or a site survey before deployment) would
// observe. The three active CFD=3 channels and their non-orthogonal
// leakage are clearly visible in the readout.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/scan"
	"nonortho/internal/sim"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 13, "random seed")
	dwell := flag.Duration("dwell", 100*time.Millisecond, "dwell time per channel")
	flag.Parse()
	if err := run(*seed, *dwell); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, dwell time.Duration) error {
	tb := testbed.New(testbed.Options{Seed: seed})
	rng := sim.NewRNG(seed)
	nets, err := topology.Generate(topology.Config{
		Plan:   phy.ChannelPlan{Centers: []phy.MHz{2459, 2462, 2465}, CFD: 3},
		Layout: topology.LayoutColocated,
	}, rng)
	if err != nil {
		return err
	}
	for _, spec := range nets {
		tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: testbed.SchemeDCN})
	}
	// Let the deployment reach steady state before surveying.
	tb.Run(3*time.Second, 0)

	scanner := scan.NewScanner(tb.Kernel, tb.Medium, phy.Position{X: 0.3, Y: 0.3},
		scan.Config{Dwell: dwell})
	freqs := make([]phy.MHz, 0, 16)
	for f := phy.MHz(2458); f <= 2473; f++ {
		freqs = append(freqs, f)
	}

	var reports []scan.ChannelReport
	scanner.Survey(freqs, func(r []scan.ChannelReport) { reports = r })
	tb.Kernel.RunFor(time.Duration(len(freqs)+1) * dwell)

	fmt.Println("spectrum survey (3 active DCN networks at 2459/2462/2465 MHz):")
	for _, r := range reports {
		bar := ""
		for i := 0; i < int(r.Occupancy*40); i++ {
			bar += "#"
		}
		fmt.Printf("  %v\n    %s\n", r, bar)
	}
	fmt.Println("\nquietest channels first:")
	for i, r := range scan.Quietest(reports) {
		if i == 3 {
			break
		}
		fmt.Printf("  %d. %v MHz (occupancy %.0f%%)\n", i+1, r.Freq, 100*r.Occupancy)
	}
	return nil
}
