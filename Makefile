GO ?= go

.PHONY: check vet build test race fuzz

## check: the full local gate — vet, build, tests under the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: a short fuzzing pass over the frame codec invariants.
fuzz:
	$(GO) test ./internal/frame -run FuzzFCS -fuzz FuzzFCS -fuzztime 30s
