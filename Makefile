GO ?= go
BENCH ?= .
BENCH_OUT ?= BENCH_PR9.json
BENCH_BASE ?= BENCH_PR7.json

# Pinned third-party analyzer versions for `make lint-full` (LINT_FULL=1).
# Both are fetched with `go run pkg@version`, so they need module-proxy
# network access and are kept out of the default offline gate.
STATICCHECK_VERSION ?= v0.4.7
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: check vet lint lint-full build test race fuzz bench benchsmoke bench-compare

## check: the full local gate — vet, the dcnlint determinism/unit-safety
## analyzers, build, tests under the race detector, and a one-iteration
## smoke run of the fast benchmarks. Set LINT_FULL=1 to also run the
## pinned staticcheck + govulncheck pass (needs network).
check: vet lint build race benchsmoke
ifeq ($(LINT_FULL),1)
check: lint-full
endif

vet:
	$(GO) vet ./...

## lint: the project-specific go/analysis suite (detsource, maporder,
## dbmunits, confinedgo, resetcomplete, seedtaint, deliveryfreeze,
## leasepair, snapfreeze) with the interprocedural call-graph engine.
## Offline: stdlib-only driver.
lint:
	$(GO) run ./cmd/dcnlint ./...

## lint-full: pinned staticcheck + govulncheck via `go run pkg@version`.
## Requires module-proxy network access; not part of the offline gate.
lint-full:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: a short fuzzing pass over the frame codec invariants.
fuzz:
	$(GO) test ./internal/frame -run FuzzFCS -fuzz FuzzFCS -fuzztime 30s

## bench: run the microbenchmarks and write parsed JSON to $(BENCH_OUT).
bench:
	$(GO) run ./cmd/dcnbench -bench '$(BENCH)' -out $(BENCH_OUT)

## benchsmoke: one iteration of the fast kernel/medium/testbed
## benchmarks, to catch benchmark-code rot without paying full
## measurement time.
benchsmoke:
	$(GO) run ./cmd/dcnbench -bench 'KernelScheduleCancel|SensedPowerDense|OnAirFanout$$' \
		-benchtime 1x -pkgs ./internal/sim,./internal/medium -out /dev/null
	$(GO) run ./cmd/dcnbench -bench 'CellSetupArena' \
		-benchtime 1x -pkgs ./internal/testbed -out /dev/null
	$(GO) run ./cmd/dcnbench -bench 'SensedPower5kNodes|OnAirFanout5kNodes' \
		-benchtime 1x -pkgs ./internal/medium -out /dev/null
	$(GO) run ./cmd/dcnbench -bench 'LintModule' \
		-benchtime 1x -pkgs ./internal/lint -out /dev/null

## bench-compare: run the benchmarks into $(BENCH_OUT), then fail if any
## shared benchmark's ns/op regressed >20% against $(BENCH_BASE).
bench-compare: bench
	$(GO) run ./cmd/dcnbench -compare $(BENCH_BASE) $(BENCH_OUT)
