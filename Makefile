GO ?= go
BENCH ?= .
BENCH_OUT ?= BENCH_PR4.json
BENCH_BASE ?= BENCH_PR3.json

.PHONY: check vet build test race fuzz bench benchsmoke bench-compare

## check: the full local gate — vet, build, tests under the race
## detector, and a one-iteration smoke run of the fast benchmarks.
check: vet build race benchsmoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## fuzz: a short fuzzing pass over the frame codec invariants.
fuzz:
	$(GO) test ./internal/frame -run FuzzFCS -fuzz FuzzFCS -fuzztime 30s

## bench: run the microbenchmarks and write parsed JSON to $(BENCH_OUT).
bench:
	$(GO) run ./cmd/dcnbench -bench '$(BENCH)' -out $(BENCH_OUT)

## benchsmoke: one iteration of the fast kernel/medium/testbed
## benchmarks, to catch benchmark-code rot without paying full
## measurement time.
benchsmoke:
	$(GO) run ./cmd/dcnbench -bench 'KernelScheduleCancel|SensedPowerDense|OnAirFanout' \
		-benchtime 1x -pkgs ./internal/sim,./internal/medium -out /dev/null
	$(GO) run ./cmd/dcnbench -bench 'CellSetupArena' \
		-benchtime 1x -pkgs ./internal/testbed -out /dev/null

## bench-compare: run the benchmarks into $(BENCH_OUT), then fail if any
## shared benchmark's ns/op regressed >20% against $(BENCH_BASE).
bench-compare: bench
	$(GO) run ./cmd/dcnbench -compare $(BENCH_BASE) $(BENCH_OUT)
