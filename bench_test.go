package nonortho

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the experiment end-to-end on the simulated testbed
// (short windows, single seed) and reports the headline quantity as a
// custom metric, so `go test -bench=. -benchmem` doubles as a regeneration
// harness:
//
//	BenchmarkFig19  ...  dcn-pkt/s  zigbee-pkt/s  improvement-%
//
// Absolute packets/s are not expected to match the authors' motes — the
// substrate is a simulator — but the shapes (orderings, gain bands,
// crossovers) are asserted by the integration tests in
// internal/experiments and visible in these metrics.

import (
	"testing"
	"time"

	"nonortho/internal/experiments"
)

// benchOpts keeps each iteration cheap while preserving the shapes: one
// seed, 2 s warmup (the DCN Initializing Phase needs >1 s), 2 s measured.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Seeds: 1, Warmup: 2 * time.Second, Measure: 2 * time.Second}
}

func BenchmarkFig1ChannelDistanceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig1(benchOpts())
		last := res.Rows[len(res.Rows)-1]
		best := 0.0
		for _, r := range res.Rows {
			if r.Total > best {
				best = r.Total
			}
		}
		b.ReportMetric(best, "best-pkt/s")
		b.ReportMetric(last.Total, "cfd2-pkt/s")
	}
}

func BenchmarkFig2OverlapContrast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig2(benchOpts())
		b.ReportMetric(res.Rows[1].Norm80211, "wifi-1ch-norm")
		b.ReportMetric(res.Rows[1].Norm802154, "wpan-1ch-norm")
	}
}

func BenchmarkFig4CPRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig4(benchOpts())
		for _, r := range res.Rows {
			if r.CFD == 3 {
				b.ReportMetric(100*r.NormalCPRR, "cprr3MHz-%")
			}
			if r.CFD == 1 {
				b.ReportMetric(100*r.NormalCPRR, "cprr1MHz-%")
			}
		}
	}
}

func BenchmarkFig6LinkSweepNoCoChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig6(benchOpts())
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Received, "relaxed-pkt/s")
	}
}

func BenchmarkFig7OverallSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig7(benchOpts())
		b.ReportMetric(res.Rows[len(res.Rows)-1].Overall, "relaxed-overall-pkt/s")
	}
}

func BenchmarkFig8LinkSweepWithCoChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig8(benchOpts())
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Sent-last.Received, "cochannel-loss-pkt/s")
	}
}

func BenchmarkFig9and10PowerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, _ := experiments.Fig9and10(benchOpts())
		for _, r := range res.Rows {
			if r.Power == -22 && r.Threshold == -20 {
				b.ReportMetric(100*r.PRR, "prr22dBm-%")
			}
		}
	}
}

func BenchmarkFig14and15DCNOnOneNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, _ := experiments.Fig14and15(benchOpts())
		for _, r := range res.Rows {
			if r.CFD == 3 {
				b.ReportMetric(100*(r.N0With/r.N0Without-1), "n0-gain-%")
			}
		}
	}
}

func BenchmarkFig16AllNetworksCFD2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig16(benchOpts())
		var wo, wi float64
		for _, r := range res.Rows {
			wo += r.Without
			wi += r.With
		}
		b.ReportMetric(100*(wi/wo-1), "gain-%")
	}
}

func BenchmarkFig17AllNetworksCFD3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig17(benchOpts())
		var wo, wi float64
		for _, r := range res.Rows {
			wo += r.Without
			wi += r.With
		}
		b.ReportMetric(100*(wi/wo-1), "gain-%")
	}
}

func BenchmarkFig18CFDSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig18(benchOpts())
		var cfd2, cfd3 float64
		for _, r := range res.Rows {
			if r.CFD == 2 {
				cfd2 = r.With
			}
			if r.CFD == 3 {
				cfd3 = r.With
			}
		}
		b.ReportMetric(cfd3/cfd2, "cfd3/cfd2-ratio")
	}
}

func BenchmarkFig19Headline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig19(benchOpts())
		b.ReportMetric(res.DCNTotal, "dcn-pkt/s")
		b.ReportMetric(res.ZigBeeTotal, "zigbee-pkt/s")
		b.ReportMetric(100*res.Improvement, "improvement-%")
	}
}

func BenchmarkFig20and21PowerImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, _ := experiments.Fig20and21(benchOpts())
		lo, hi := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(hi.N0-lo.N0, "n0-power-gain-pkt/s")
	}
}

func BenchmarkTableIFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.TableI(benchOpts())
		b.ReportMetric(100*res.Spread, "spread-%")
		b.ReportMetric(res.Jain, "jain")
	}
}

func BenchmarkFig25CaseI(b *testing.B) {
	benchmarkCase(b, experiments.Fig25)
}

func BenchmarkFig26CaseII(b *testing.B) {
	benchmarkCase(b, experiments.Fig26)
}

func BenchmarkFig27CaseIII(b *testing.B) {
	benchmarkCase(b, experiments.Fig27)
}

func benchmarkCase(b *testing.B, f func(experiments.Options) (experiments.CaseResult, *experiments.Table)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, _ := f(benchOpts())
		b.ReportMetric(100*res.GainOverWithout, "gain-vs-wo-%")
		b.ReportMetric(100*res.GainOverZigBee, "gain-vs-zigbee-%")
	}
}

func BenchmarkFig28Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig28(benchOpts())
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Recoverable-last.Received, "recovered-pkt/s")
	}
}

func BenchmarkFig29ErrorBitCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig29(benchOpts())
		b.ReportMetric(100*res.FractionWithin10Pct, "within10pct-%")
	}
}

func BenchmarkFig30WideBand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig30(benchOpts())
		var wo, wi float64
		for _, r := range res.Rows {
			wo += r.Without
			wi += r.With
		}
		b.ReportMetric(100*(wi/wo-1), "gain-%")
	}
}

func BenchmarkBandSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.BandSweep(benchOpts())
		b.ReportMetric(100*res.Rows[len(res.Rows)-1].Gain, "widest-gain-%")
	}
}

func BenchmarkAblationDCN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.AblationDCN(benchOpts())
		for _, r := range res.Rows {
			if r.Variant == "fixed (no DCN)" {
				b.ReportMetric(r.VsFull, "fixed-vs-full")
			}
		}
	}
}

func BenchmarkCaseIIRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.CaseIIRecovery(benchOpts())
		b.ReportMetric(res.WithCaseII, "with-pkt/s")
		b.ReportMetric(res.WithoutCaseII, "without-pkt/s")
	}
}

func BenchmarkEnergyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.EnergyComparison(benchOpts())
		b.ReportMetric(res.Rows[1].MJPerDelivered, "dcn-mJ/pkt")
		b.ReportMetric(res.Rows[0].MJPerDelivered, "zigbee-mJ/pkt")
	}
}

func BenchmarkScarcity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Scarcity(benchOpts())
		b.ReportMetric(100*res.DCNOverBestOrthogonal, "dcn-gain-%")
	}
}

func BenchmarkMultihopCollection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Multihop(benchOpts())
		b.ReportMetric(res.Rows[1].DeliveredPerSec, "dcn-readings/s")
		b.ReportMetric(res.Rows[0].DeliveredPerSec, "zigbee-readings/s")
	}
}

func BenchmarkUpperBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.UpperBound(benchOpts())
		b.ReportMetric(100*res.DenseOracleOverDCN, "dense-oracle-vs-dcn-%")
		b.ReportMetric(100*res.SparseOracleOverFixed, "sparse-oracle-vs-fixed-%")
	}
}

func BenchmarkCoexistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Coexistence(benchOpts())
		b.ReportMetric(100*res.ZigBeeLoss, "zigbee-wifi-loss-%")
		b.ReportMetric(100*res.DCNLoss, "dcn-wifi-loss-%")
	}
}

func BenchmarkBeaconMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.BeaconMode(benchOpts())
		b.ReportMetric(100*res.Gain, "slotted-dcn-gain-%")
	}
}

func BenchmarkTSCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.TSCH(benchOpts())
		b.ReportMetric(100*res.Gain, "nonortho-gain-%")
	}
}

func BenchmarkLPL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.LPL(benchOpts())
		b.ReportMetric(100*res.EnergySavings, "energy-saved-%")
	}
}
