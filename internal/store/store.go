// Package store is the content-addressed result store that makes
// sweeps resumable. Every simulation cell is a pure function of
// (experiment, sweep position, configuration, seed) — deterministic by
// construction and audited by dcnlint — so its result is
// content-addressable: the store keys each entry by a canonical hash of
// that identity plus the code version, and a sweep that died partway
// can be re-run with the completed cells served back bit-for-bit
// instead of recomputed.
//
// The store is paranoid by design, because a cache that silently serves
// a wrong byte poisons a "byte-identical or bust" pipeline:
//
//   - every entry embeds its full canonical key and a SHA-256 checksum;
//   - Get verifies magic, lengths, key (which includes the code
//     version) and checksum, and a mismatch of any kind discards the
//     entry and reports a miss — corrupted or stale results are
//     recomputed, never trusted;
//   - Put writes to a temp file and renames, so a crash mid-write can
//     never leave a half-entry under a valid name;
//   - the typed codec refuses values whose type gob would silently
//     truncate (unexported struct fields), turning a quiet
//     wrong-result bug into a loud error at the first Put.
//
// One entry is one file named by the key hash: completed cells are
// durable the moment Put returns, which is what makes SIGINT-safe
// sweeps trivial — there is nothing to flush beyond the cell that just
// finished.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime/debug"
)

// magic heads every entry file; the trailing digit is the format
// version, so a format change invalidates old entries by magic
// mismatch rather than by misparse.
const magic = "dcncell1\n"

// Key identifies one cell result. Equal Keys (under the same code
// version) address the same bytes; any field differing addresses a
// different entry.
type Key struct {
	// Experiment names the driver (the CLI registry name, e.g. "fig19").
	Experiment string
	// Sweep is the ordinal of the parallel sweep within the experiment —
	// drivers that fan out more than once number them in call order,
	// which is deterministic.
	Sweep int
	// Cell is the cell index within the sweep.
	Cell int
	// Config is the canonical encoding of everything else that
	// determines the cell's result: grid size, seed base, seed count,
	// warmup and measurement windows. The caller builds it; the store
	// only requires that equal configurations encode equally.
	Config string
}

// canonical renders the key (plus code version) as the byte string that
// is hashed for the entry's address and embedded in the entry for
// verification. Fields are quoted so no value can alias another by
// embedding a separator.
func (k Key) canonical(version string) []byte {
	return []byte(fmt.Sprintf("experiment=%q\nsweep=%d\ncell=%d\nconfig=%q\nversion=%q\n",
		k.Experiment, k.Sweep, k.Cell, k.Config, version))
}

// Store is a directory of checksummed cell results. Safe for concurrent
// use: distinct keys touch distinct files, and same-key races resolve
// to one of the (identical, content-addressed) values.
type Store struct {
	dir     string
	version string
}

// Option configures Open.
type Option func(*Store)

// WithVersion overrides the code version baked into every key. Tests
// pin it; production uses DefaultVersion.
func WithVersion(v string) Option { return func(s *Store) { s.version = v } }

// DefaultVersion derives the code version from the build info: the VCS
// revision (suffixed "+dirty" for modified trees) when the binary was
// built from a checkout, else the main module version, else
// "unversioned". Entries written by different code versions never
// collide, so a stale cache is impossible by construction — at worst a
// rebuilt binary starts cold.
func DefaultVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unversioned"
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev != "" {
		return rev + dirty
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "unversioned"
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string, opts ...Option) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, version: DefaultVersion()}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Version returns the code version baked into this store's keys.
func (s *Store) Version() string { return s.version }

// path is the entry file for a key: the hex SHA-256 of its canonical
// form. The content address covers the code version, so entries from
// different code versions coexist without aliasing.
func (s *Store) path(k Key) string {
	sum := sha256.Sum256(k.canonical(s.version))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".cell")
}

// entry layout after the magic:
//
//	uint64 big-endian  len(canonical key)
//	bytes              canonical key
//	uint64 big-endian  len(payload)
//	bytes              payload
//	32 bytes           SHA-256 over everything above (magic included)

// PutBytes stores payload under k, overwriting any previous entry. The
// write is atomic (temp file + rename): concurrent writers and crashes
// can produce at worst a stray temp file, never a torn entry.
func (s *Store) PutBytes(k Key, payload []byte) error {
	var buf bytes.Buffer
	buf.WriteString(magic)
	canon := k.canonical(s.version)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(canon)))
	buf.Write(n[:])
	buf.Write(canon)
	binary.BigEndian.PutUint64(n[:], uint64(len(payload)))
	buf.Write(n[:])
	buf.Write(payload)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])

	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, s.path(k)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetBytes returns the payload stored under k. Any defect — missing
// entry, truncation, corruption, key or version mismatch, bad checksum
// — is a miss: the broken entry is deleted so the caller recomputes
// and overwrites it, and a diagnostic describing what was wrong with
// the entry is returned alongside (empty for a plain miss).
func (s *Store) GetBytes(k Key) (payload []byte, ok bool, defect string) {
	path := s.path(k)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, "" // plain miss
	}
	payload, defect = decodeEntry(data, k.canonical(s.version))
	if defect != "" {
		os.Remove(path) // corrupted: discard so it is recomputed, never served
		return nil, false, defect
	}
	return payload, true, ""
}

// decodeEntry verifies one entry against the expected canonical key and
// returns its payload, or a description of the defect.
func decodeEntry(data, wantKey []byte) (payload []byte, defect string) {
	rest := data
	if len(rest) < len(magic) || string(rest[:len(magic)]) != magic {
		return nil, "bad magic"
	}
	rest = rest[len(magic):]
	keyLen, rest, ok := takeLen(rest)
	if !ok || keyLen > uint64(len(rest)) {
		return nil, "truncated key"
	}
	key := rest[:keyLen]
	rest = rest[keyLen:]
	payLen, rest, ok := takeLen(rest)
	if !ok || payLen > uint64(len(rest)) {
		return nil, "truncated payload"
	}
	if uint64(len(rest))-payLen != sha256.Size {
		return nil, "truncated or oversized entry"
	}
	payload = rest[:payLen]
	want := rest[payLen:]
	got := sha256.Sum256(data[:len(data)-sha256.Size])
	if !bytes.Equal(got[:], want) {
		return nil, "checksum mismatch"
	}
	// Key compared after the checksum: a failed key check on a valid
	// checksum means a genuine identity mismatch (a hash collision or a
	// version change racing a read), not corruption.
	if !bytes.Equal(key, wantKey) {
		return nil, "key mismatch: entry holds " + string(key)
	}
	return payload, ""
}

// takeLen pops a big-endian uint64 length prefix.
func takeLen(b []byte) (n uint64, rest []byte, ok bool) {
	if len(b) < 8 {
		return 0, nil, false
	}
	return binary.BigEndian.Uint64(b[:8]), b[8:], true
}

// Count reports the number of entry files present (any version).
func (s *Store) Count() (int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".cell" {
			n++
		}
	}
	return n, nil
}

// Put gob-encodes v and stores it under k. It refuses value types gob
// would silently truncate — any reachable unexported struct field —
// because a dropped field would resume a sweep with subtly different
// numbers instead of failing.
func Put[T any](s *Store, k Key, v T) error {
	if err := checkGobSafe(reflect.TypeOf(v)); err != nil {
		return fmt.Errorf("store: cell type %T is not safely encodable: %w", v, err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return fmt.Errorf("store: encoding %T: %w", v, err)
	}
	return s.PutBytes(k, buf.Bytes())
}

// Get retrieves and decodes the value stored under k. Misses and
// defective entries return ok == false (defective entries are deleted);
// a payload that fails to decode as T is likewise discarded as a miss.
func Get[T any](s *Store, k Key) (v T, ok bool) {
	payload, ok, _ := s.GetBytes(k)
	if !ok {
		return v, false
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&v); err != nil {
		os.Remove(s.path(k))
		var zero T
		return zero, false
	}
	return v, true
}

// checkGobSafe rejects types with reachable unexported struct fields,
// which gob drops silently (or rejects entirely when no field is
// exported). Interface-typed fields cannot be checked statically and
// are rejected too: the concrete value behind them could smuggle
// unexported state past the check.
func checkGobSafe(t reflect.Type) error {
	return gobSafe(t, make(map[reflect.Type]bool))
}

func gobSafe(t reflect.Type, seen map[reflect.Type]bool) error {
	if t == nil {
		return fmt.Errorf("nil interface value")
	}
	if seen[t] {
		return nil
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array:
		return gobSafe(t.Elem(), seen)
	case reflect.Map:
		if err := gobSafe(t.Key(), seen); err != nil {
			return err
		}
		return gobSafe(t.Elem(), seen)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return fmt.Errorf("unexported field %s.%s would be silently dropped by gob", t, f.Name)
			}
			if err := gobSafe(f.Type, seen); err != nil {
				return err
			}
		}
		return nil
	case reflect.Interface:
		return fmt.Errorf("interface-typed value %s cannot be checked for unexported state", t)
	case reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return fmt.Errorf("type %s is not encodable", t)
	default:
		return nil
	}
}
