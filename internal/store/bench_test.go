package store

import (
	"fmt"
	"testing"
)

// BenchmarkCellStoreRoundTrip measures the full Put+Get cycle for a
// representative cell value (a per-band PER slice plus scalars), i.e.
// the per-cell overhead a -store sweep pays on a cold run plus what a
// -resume run pays per served cell. The store must stay far below the
// cost of simulating a cell (tens of milliseconds to seconds) for
// memoisation to be worthwhile.
func BenchmarkCellStoreRoundTrip(b *testing.B) {
	s, err := Open(b.TempDir(), WithVersion("bench"))
	if err != nil {
		b.Fatal(err)
	}
	val := cellValue{Per: make([]float64, 64), Total: 290, Sent: 123456}
	for i := range val.Per {
		val.Per[i] = 1.0 / float64(i+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key{Experiment: "bench", Sweep: 0, Cell: i % 256, Config: fmt.Sprintf("n=%d", i%256)}
		if err := Put(s, k, val); err != nil {
			b.Fatal(err)
		}
		got, ok := Get[cellValue](s, k)
		if !ok || got.Total != val.Total {
			b.Fatalf("round trip failed at iteration %d", i)
		}
	}
}
