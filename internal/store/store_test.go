package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openTest(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), WithVersion("test-v1"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// cellValue mirrors a typical driver cell result: float slices whose
// bits must survive the round trip exactly.
type cellValue struct {
	Per   []float64
	Total float64
	Sent  int
}

func key(cell int) Key {
	return Key{Experiment: "fig19", Sweep: 0, Cell: cell, Config: "n=6 seeds=3 seed=1 warmup=3s measure=8s"}
}

func TestRoundTripBitExact(t *testing.T) {
	s := openTest(t)
	// Values chosen to catch any float formatting/precision slip: a
	// subnormal, an exactly-representable sum, Pi, a negative zero.
	in := cellValue{
		Per:   []float64{math.Pi, 1e-310, 0.1 + 0.2, math.Copysign(0, -1)},
		Total: 290.0000000000001,
		Sent:  4242,
	}
	if err := Put(s, key(3), in); err != nil {
		t.Fatal(err)
	}
	out, ok := Get[cellValue](s, key(3))
	if !ok {
		t.Fatal("stored entry not found")
	}
	if len(out.Per) != len(in.Per) {
		t.Fatalf("Per length %d, want %d", len(out.Per), len(in.Per))
	}
	for i := range in.Per {
		if math.Float64bits(out.Per[i]) != math.Float64bits(in.Per[i]) {
			t.Fatalf("Per[%d] bits differ: %x vs %x", i, math.Float64bits(out.Per[i]), math.Float64bits(in.Per[i]))
		}
	}
	if math.Float64bits(out.Total) != math.Float64bits(in.Total) || out.Sent != in.Sent {
		t.Fatalf("round trip mutated value: %+v vs %+v", out, in)
	}
}

func TestMissOnAbsentAndKeyIsolation(t *testing.T) {
	s := openTest(t)
	if _, ok := Get[cellValue](s, key(0)); ok {
		t.Fatal("hit on empty store")
	}
	if err := Put(s, key(0), cellValue{Total: 1}); err != nil {
		t.Fatal(err)
	}
	// Every key field must isolate entries.
	variants := []Key{
		{Experiment: "fig20", Sweep: 0, Cell: 0, Config: key(0).Config},
		{Experiment: "fig19", Sweep: 1, Cell: 0, Config: key(0).Config},
		{Experiment: "fig19", Sweep: 0, Cell: 1, Config: key(0).Config},
		{Experiment: "fig19", Sweep: 0, Cell: 0, Config: "n=6 seeds=5 seed=1 warmup=3s measure=8s"},
	}
	for _, k := range variants {
		if _, ok := Get[cellValue](s, k); ok {
			t.Fatalf("key %+v aliased another entry", k)
		}
	}
}

// entryPath returns the single .cell file in the store.
func entryPath(t *testing.T, s *Store) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(s.Dir(), "*.cell"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one entry, got %v (%v)", matches, err)
	}
	return matches[0]
}

// corrupt applies mutate to the entry file's bytes.
func corrupt(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Corrupted entries — truncated anywhere, bit-flipped anywhere — are
// detected, discarded from disk, and reported as misses so the caller
// recomputes. Recomputing then heals the store.
func TestCorruptionDetectedDiscardedRecomputed(t *testing.T) {
	val := cellValue{Per: []float64{1, 2, 3}, Total: 6}
	mutations := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated to half", func(b []byte) []byte { return b[:len(b)/2] }},
		{"truncated magic", func(b []byte) []byte { return b[:4] }},
		{"empty file", func(b []byte) []byte { return nil }},
		{"bit flip in payload", func(b []byte) []byte { b[len(b)-40] ^= 0x01; return b }},
		{"bit flip in header", func(b []byte) []byte { b[len(magic)+3] ^= 0x80; return b }},
		{"bit flip in checksum", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }},
		{"appended garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			s := openTest(t)
			if err := Put(s, key(1), val); err != nil {
				t.Fatal(err)
			}
			path := entryPath(t, s)
			corrupt(t, path, m.mutate)
			if _, ok := Get[cellValue](s, key(1)); ok {
				t.Fatal("corrupted entry served")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupted entry not discarded: stat err %v", err)
			}
			// Recompute path: a fresh Put must fully heal the entry.
			if err := Put(s, key(1), val); err != nil {
				t.Fatal(err)
			}
			got, ok := Get[cellValue](s, key(1))
			if !ok || got.Total != 6 {
				t.Fatalf("store not healed after recompute: %+v ok=%v", got, ok)
			}
		})
	}
}

// An entry written by a different code version is never served: the
// version participates in the content address, so the lookup misses
// outright and the old entry is left untouched for its own version.
func TestVersionMismatchNeverServed(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, WithVersion("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Put(s1, key(2), cellValue{Total: 1}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, WithVersion("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Get[cellValue](s2, key(2)); ok {
		t.Fatal("entry from v1 served to v2")
	}
	// And the v1 entry survives for v1 readers.
	if _, ok := Get[cellValue](s1, key(2)); !ok {
		t.Fatal("v1 entry lost after v2 miss")
	}
}

// A hash-addressed file whose embedded key disagrees (simulated
// collision / tampering) is discarded even though its checksum is
// intact.
func TestEmbeddedKeyMismatchDiscarded(t *testing.T) {
	s := openTest(t)
	if err := Put(s, key(1), cellValue{Total: 1}); err != nil {
		t.Fatal(err)
	}
	// Rewrite the entry wholesale under key(1)'s address but with
	// key(9)'s content (valid checksum, wrong identity).
	var buf bytes.Buffer
	buf.WriteString("payload")
	if err := s.PutBytes(key(9), buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	src := s.path(key(9))
	dst := s.path(key(1))
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, ok, defect := s.GetBytes(key(1))
	if ok {
		t.Fatal("entry with mismatched embedded key served")
	}
	if !strings.Contains(defect, "key mismatch") {
		t.Fatalf("defect = %q, want key mismatch", defect)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatal("mismatched entry not discarded")
	}
}

// Undecodable payloads (stored under one type, read as another) are
// misses, not errors, and are discarded.
func TestDecodeFailureIsMiss(t *testing.T) {
	s := openTest(t)
	if err := s.PutBytes(key(4), []byte("not gob")); err != nil {
		t.Fatal(err)
	}
	if _, ok := Get[cellValue](s, key(4)); ok {
		t.Fatal("garbage payload decoded")
	}
	if n, _ := s.Count(); n != 0 {
		t.Fatalf("undecodable entry kept: count %d", n)
	}
}

// The encodability guard refuses types gob would silently truncate.
func TestPutRefusesUnexportedFields(t *testing.T) {
	s := openTest(t)
	type sneaky struct {
		Visible float64
		hidden  float64
	}
	err := Put(s, key(5), sneaky{Visible: 1, hidden: 2})
	if err == nil || !strings.Contains(err.Error(), "hidden") {
		t.Fatalf("Put accepted a type with unexported fields: %v", err)
	}
	type nested struct{ Inner []sneaky }
	if err := Put(s, key(5), nested{}); err == nil {
		t.Fatal("Put accepted a type with nested unexported fields")
	}
	type withIface struct{ V any }
	if err := Put(s, key(5), withIface{V: 3}); err == nil {
		t.Fatal("Put accepted an interface-typed field")
	}
	// Plain values and exported-field structs pass.
	if err := Put(s, key(5), 3.14); err != nil {
		t.Fatalf("Put rejected a plain float64: %v", err)
	}
	if err := Put(s, key(6), []float64{1, 2}); err != nil {
		t.Fatalf("Put rejected a float slice: %v", err)
	}
}

func TestCountAndOverwrite(t *testing.T) {
	s := openTest(t)
	for i := 0; i < 5; i++ {
		if err := Put(s, key(i), cellValue{Total: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Count(); err != nil || n != 5 {
		t.Fatalf("Count = %d (%v), want 5", n, err)
	}
	// Overwriting a key does not grow the store.
	if err := Put(s, key(0), cellValue{Total: 99}); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(); n != 5 {
		t.Fatalf("Count after overwrite = %d, want 5", n)
	}
	got, ok := Get[cellValue](s, key(0))
	if !ok || got.Total != 99 {
		t.Fatalf("overwrite not visible: %+v", got)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestDefaultVersionNonEmpty(t *testing.T) {
	if DefaultVersion() == "" {
		t.Fatal("DefaultVersion() empty")
	}
}
