package medium

import (
	"testing"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// countingLoss wraps a path-loss model and counts Loss evaluations, so
// the tests below can prove ResetKeepLinks actually skips the lookups it
// promises to skip.
type countingLoss struct {
	model phy.PathLossModel
	calls int
}

func (c *countingLoss) Loss(d float64) float64 {
	c.calls++
	return c.model.Loss(d)
}

// runKeepLinksCell drives one deterministic mini-cell on the medium:
// three listeners, a handful of transmissions from each, sensing samples
// at every step. It returns the sampled values in order.
func runKeepLinksCell(k *sim.Kernel, m *Medium) []phy.DBm {
	positions := []phy.Position{{X: 0}, {X: 3, Y: 1}, {X: -2, Y: 4}}
	var ids []int
	listeners := make([]*fakeListener, len(positions))
	for i, p := range positions {
		listeners[i] = &fakeListener{pos: p}
		ids = append(ids, m.Attach(listeners[i]))
	}
	var samples []phy.DBm
	for round := 0; round < 3; round++ {
		for i, src := range ids {
			at := time.Duration(round*400+i*130) * time.Microsecond
			src := src
			i := i
			k.After(at, func() {
				tx := m.Transmit(src, positions[i], -3, 2460+phy.MHz(i), testFrame(24))
				for _, lid := range ids {
					samples = append(samples, m.SensedPower(lid, 2460, nil))
					samples = append(samples, m.RxPower(tx, lid))
				}
			})
		}
	}
	k.Run()
	return samples
}

// TestResetKeepLinksBitIdentical proves the retained-loss lease is
// invisible in the results: a cell run on a ResetKeepLinks-recycled
// medium produces bit-identical samples to the same cell on a fresh
// kernel/medium pair — with shadowing and fading on, so the static and
// fading streams must advance identically too — while performing zero
// path-loss evaluations.
func TestResetKeepLinksBitIdentical(t *testing.T) {
	loss := &countingLoss{model: phy.DefaultPathLoss()}
	opts := []Option{WithPathLoss(loss)}

	k := sim.NewKernel(11)
	m := New(k, opts...)
	first := runKeepLinksCell(k, m)
	if loss.calls == 0 {
		t.Fatal("first cell computed no path losses")
	}

	// Fresh reference: what any cell with this seed must produce.
	k2 := sim.NewKernel(11)
	reference := runKeepLinksCell(k2, New(k2, opts...))

	k.Reset(11)
	m.ResetKeepLinks(opts...)
	loss.calls = 0
	second := runKeepLinksCell(k, m)
	if loss.calls != 0 {
		t.Fatalf("recycled cell recomputed %d path losses, want 0", loss.calls)
	}

	for _, got := range [][]phy.DBm{second, reference} {
		if len(got) != len(first) {
			t.Fatalf("sample counts differ: %d vs %d", len(got), len(first))
		}
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("sample %d differs: %v vs %v", i, got[i], first[i])
			}
		}
	}
}

// TestResetKeepLinksDetectsMovedGeometry: retention is per slot, guarded
// by the recorded geometry — a node at a new position in the next cell
// gets a freshly computed loss, not the carried-over one.
func TestResetKeepLinksDetectsMovedGeometry(t *testing.T) {
	loss := &countingLoss{model: phy.DefaultPathLoss()}
	opts := []Option{WithPathLoss(loss), WithFadingSigma(0), WithStaticFadingSigma(0)}

	k := sim.NewKernel(3)
	m := New(k, opts...)
	a := &fakeListener{pos: phy.Position{X: 0}}
	b := &fakeListener{pos: phy.Position{X: 2}}
	idA := m.Attach(a)
	idB := m.Attach(b)
	tx := m.Transmit(idA, a.pos, 0, 2460, testFrame(16))
	sameBefore := m.RxPower(tx, idB)
	k.Run()

	k.Reset(3)
	m.ResetKeepLinks(opts...)
	// Same listeners, but b now stands farther out.
	b2 := &fakeListener{pos: phy.Position{X: 7}}
	idA = m.Attach(a)
	idB = m.Attach(b2)
	loss.calls = 0
	tx = m.Transmit(idA, a.pos, 0, 2460, testFrame(16))
	moved := m.RxPower(tx, idB)
	if loss.calls == 0 {
		t.Fatal("moved geometry reused the retained loss")
	}
	if moved == sameBefore {
		t.Fatalf("RxPower unchanged (%v) despite the longer link", moved)
	}
	want := phy.DBm(0) - phy.DBm(loss.model.Loss(7))
	if moved != want {
		t.Fatalf("RxPower after move = %v, want %v", moved, want)
	}
	k.Run()
}
