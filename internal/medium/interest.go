package medium

import (
	"sort"

	"nonortho/internal/phy"
)

// This file is the interest-filtered dissemination layer: instead of
// notifying every attached listener of every OnAir/OffAir in the world, the
// medium keeps per-band listener indexes plus a reachable-power cull and
// delivers each event only to the listeners whose observable behaviour
// could depend on it. Filtering is exact, not approximate — the delivery
// set is constructed so that every skipped listener's handler would have
// been a guaranteed no-op — so simulation results are bit-identical with
// the filter on or off (oracle_test.go asserts this under randomized
// churn).

// Scope classifies which on-air events a listener wants delivered.
type Scope uint8

const (
	// ScopeAll delivers every event — the default for listeners that do
	// not declare an interest, and for radios in RX, whose segment
	// integration must observe every landscape change.
	ScopeAll Scope = iota
	// ScopeBand delivers events whose signal occupies the listener's
	// declared band (and always the listener's own transmissions).
	ScopeBand
	// ScopeOwn delivers only the listener's own transmissions — for
	// listeners deaf to everything else (detached slots, pure emitters).
	ScopeOwn
)

// Interest declares which events a listener needs to observe. The zero
// Interest (ScopeAll, no floor) reproduces unfiltered dissemination.
type Interest struct {
	// Scope selects the event classes delivered (see Scope constants).
	Scope Scope
	// Band is the channel center frequency a ScopeBand listener is tuned
	// to; ignored for other scopes.
	Band phy.MHz
	// Floor, when negative, enables the reachable-power cull for a
	// ScopeBand listener: a narrowband event is skipped when even a
	// maximum-power transmission over the pair's precomputed path loss
	// provably stays reachMarginDB below this level. Zero disables the
	// cull (a floor of exactly 0 dBm is not representable — no real
	// sensitivity floor is non-negative).
	Floor phy.DBm
}

// InterestedListener is the optional Listener extension consulted at
// Attach time. Listeners whose interest changes afterwards (retunes, state
// transitions) must push the update through Medium.SetInterest; the index
// is adjusted incrementally.
type InterestedListener interface {
	Listener
	Interest() Interest
}

// reachMarginDB is the conservative slack of the reachable-power cull: a
// pair is culled only when the bounding power minus the pair's path loss
// is still this far below the listener's floor. The constant itself lives
// in phy (phy.ReachMarginDB) so the spatial tier's far-pair certificates
// use the identical slack; see its comment for the 11σ exceedance
// argument.
const reachMarginDB = phy.ReachMarginDB

// widebandRxWindowMHz is the ~2 MHz window an 802.15.4 receiver integrates;
// the width InChannelPower's flat-PSD overlap model spreads wideband energy
// over, and the minimum occupied bandwidth at which that model provably
// never concentrates energy above the raw received power — the condition
// the wideband reachable-power cull relies on.
const widebandRxWindowMHz = 2

// widebandGuardMHz widens the band range a wideband emitter is delivered
// to, covering the receiver window an 802.15.4 radio integrates on either
// side of the occupied bandwidth.
const widebandGuardMHz = 2

// DisseminationStats counts dissemination work: Events is the number of
// OnAir/OffAir fan-outs performed, Callbacks the listener notifications
// actually invoked. Their ratio is the fan-out cost the interest filter
// saves (BenchmarkOnAirFanout).
type DisseminationStats struct {
	Events    uint64
	Callbacks uint64
}

// DisseminationStats returns the medium's fan-out counters.
func (m *Medium) DisseminationStats() DisseminationStats { return m.dstats }

// Filter engagement modes. The default (auto) keeps the index dormant for
// small listener populations: a skipped callback only saves an interface
// call that early-returns (~nanoseconds), so the per-event merge and the
// bucket surgery on RX transitions must be amortised over many skipped
// listeners before filtering wins. From indexMinListeners up the culled
// fan-out pays off (2.4× ns/op and 16× fewer callbacks at ~100 listeners,
// BenchmarkOnAirFanout).
const (
	filterAuto uint8 = iota
	filterForceOn
	filterForceOff
)

// indexMinListeners is the population at which auto mode brings the index
// live. Measured break-even: at ~30 listeners (the five-network strips)
// the live index still costs ~10% of a driver's wall-clock — the no-op
// callbacks it skips are cheaper than the merge plus maintenance — while
// at ~100 it wins 2.4×. 64 keeps every current experiment cell on the
// cheap plain walk and engages filtering only for the populations where
// it is actually profitable.
const indexMinListeners = 64

// WithInterestFilter forces interest-filtered dissemination on or off,
// overriding the population-based default. Results are bit-identical
// either way — the switch exists so the oracle test and benchmarks can
// compare the two paths, and so the filtered path's delivery contract can
// be pinned by tests regardless of listener count.
func WithInterestFilter(on bool) Option {
	return func(md *Medium) {
		if on {
			md.filterMode = filterForceOn
		} else {
			md.filterMode = filterForceOff
		}
	}
}

// SetInterest updates a listener's declared interest, incrementally moving
// it between index buckets. Events whose fan-out was already computed (a
// retune performed inside an OnAir handler, say) are unaffected: delivery
// sets are frozen when the event starts, exactly like the unfiltered
// fan-out froze the listener slice. Unknown or detached IDs are no-ops.
func (m *Medium) SetInterest(id int, in Interest) {
	if id < 0 || id >= len(m.listeners) || m.listeners[id] == nil {
		return
	}
	old := m.interests[id]
	if old == in {
		return
	}
	m.dropInterest(id, old)
	m.interests[id] = in
	m.addInterest(id, in)
}

// registerInterest records a freshly attached listener's interest and,
// in auto mode, brings the index live once the population crosses
// indexMinListeners (rebuilding the buckets from the recorded interests —
// they were empty while dormant). Once live, the index stays live: cells
// only shrink by detaching, and tearing the index down on a shrinking
// population would buy nothing but churn.
func (m *Medium) registerInterest(id int, l Listener) {
	in := Interest{} // ScopeAll: legacy listeners hear everything
	if il, ok := l.(InterestedListener); ok {
		in = il.Interest()
	}
	m.interests = append(m.interests, in)
	if m.indexLive {
		m.addInterest(id, in)
	} else if m.filterMode == filterAuto && len(m.listeners) >= indexMinListeners {
		m.buildIndex()
	}
}

// buildIndex files every live listener under its recorded interest and
// marks the index live. Attach IDs ascend, so the buckets come out sorted.
func (m *Medium) buildIndex() {
	m.indexLive = true
	for id, l := range m.listeners {
		if l != nil {
			m.addInterest(id, m.interests[id])
		}
	}
}

func (m *Medium) addInterest(id int, in Interest) {
	if !m.indexLive {
		return
	}
	switch in.Scope {
	case ScopeAll:
		m.allIDs = insertID(m.allIDs, id)
	case ScopeBand:
		if m.bands == nil {
			m.bands = make(map[phy.MHz][]int)
		}
		m.bands[in.Band] = insertID(m.bands[in.Band], id)
		if m.spatial && m.farTough(in.Floor) {
			if m.bandsTough == nil {
				m.bandsTough = make(map[phy.MHz][]int)
			}
			m.bandsTough[in.Band] = insertID(m.bandsTough[in.Band], id)
		}
	}
	// ScopeOwn listeners live in no bucket: the source of a transmission
	// is always part of its delivery set.
}

func (m *Medium) dropInterest(id int, in Interest) {
	if !m.indexLive {
		return
	}
	switch in.Scope {
	case ScopeAll:
		m.allIDs = removeID(m.allIDs, id)
	case ScopeBand:
		if b := removeID(m.bands[in.Band], id); len(b) == 0 {
			delete(m.bands, in.Band)
		} else {
			m.bands[in.Band] = b
		}
		if m.spatial && m.farTough(in.Floor) {
			if b := removeID(m.bandsTough[in.Band], id); len(b) == 0 {
				delete(m.bandsTough, in.Band)
			} else {
				m.bandsTough[in.Band] = b
			}
		}
	}
}

// farTough reports whether a ScopeBand floor is beyond the far-field
// certificate's reach: no floor at all, or one so low that a legal-power
// transmitter at the certified loss bound could still clear it (margin
// included). Such listeners join every same-band delivery set — the
// spatial fast path cannot prove anything about them from the near row
// alone.
func (m *Medium) farTough(floor phy.DBm) bool {
	return floor >= 0 || floor <= m.farCullThresh
}

// insertID adds id to an ascending ID slice, keeping it sorted.
func insertID(s []int, id int) []int {
	i := sort.SearchInts(s, id)
	if i < len(s) && s[i] == id {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// removeID deletes id from an ascending ID slice, if present.
func removeID(s []int, id int) []int {
	i := sort.SearchInts(s, id)
	if i >= len(s) || s[i] != id {
		return s
	}
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// Reachable reports whether tx could conceivably register at listenerID
// above the listener's declared interest floor. It is conservative: false
// only when a bounding transmission across the pair's precomputed path
// loss would still sit reachMarginDB below the floor. The bounding power
// is the 802.15.4 spec maximum for narrowband signals, and the emitter's
// own frozen transmit power for wideband signals at least as wide as the
// receiver window — the flat-PSD overlap model never concentrates such a
// signal above its raw received power, so Wi-Fi-class interferers and
// jammers are culled too. Radios consult the same predicate in their idle
// lock-on path, so the event filter and the handlers agree by construction
// and filtered runs stay bit-identical to unfiltered ones.
//
// Over a near-field snapshot a pair outside the matrix is first tested
// against the snapshot's certified loss floor; when that bound alone
// cannot decide, the exact model loss — the same expression a dense
// matrix holds — is computed, so dense and near-field snapshots take
// bit-identical delivery decisions.
func (m *Medium) Reachable(tx *Transmission, listenerID int) bool {
	if listenerID < 0 || listenerID >= len(m.interests) {
		return true
	}
	floor := m.interests[listenerID].Floor
	if floor >= 0 || m.lossProvider == nil {
		return true // no floor declared, or no precomputed matrix to prove anything with
	}
	power := phy.MaxTxPower
	if tx.Bandwidth != 0 {
		if tx.Bandwidth < widebandRxWindowMHz {
			return true // narrower than the receiver window: dilution could exceed 0 dB
		}
		power = tx.Power
	} else if tx.Power > phy.MaxTxPower {
		return true // over-spec narrowband emitter: outside the cull's power bound
	}
	l := m.listeners[listenerID]
	if l == nil {
		return true // detached: callers skip nil listeners anyway
	}
	loss, ok := m.lossProvider.PairLoss(tx.Src, listenerID, tx.Pos, l.Position())
	if !ok {
		if m.farProvider == nil {
			return true // pair outside the matrix (late attach, moved): no proof, deliver
		}
		bound, okf := m.farProvider.PairLossFloor(tx.Src, listenerID, tx.Pos, l.Position())
		if !okf {
			return true // outside the snapshot geometry: no proof, deliver
		}
		if power-phy.DBm(bound)+reachMarginDB < floor {
			return false // even the certified floor loss rules the pair out
		}
		// The floor alone cannot decide; fall back to the exact model loss.
		loss = m.pathLoss.Loss(tx.Pos.DistanceTo(l.Position()))
	}
	return power-phy.DBm(loss)+reachMarginDB >= floor
}

// deliverySet computes the ascending attach-ID list of listeners an event
// on tx must be delivered to: every ScopeAll listener, the ScopeBand
// listeners whose band the signal occupies (minus provably unreachable
// pairs), and always the source. The slice comes from a free-list and must
// be returned via putIDScratch; computing the set up front freezes it, so
// handlers that retune or change state mid-fan-out cannot perturb their
// neighbours' deliveries.
func (m *Medium) deliverySet(tx *Transmission) []int {
	ids := m.getIDScratch()
	if tx.Bandwidth == 0 {
		return m.mergeNarrow(ids, tx)
	}
	return m.mergeWide(ids, tx)
}

// mergeNarrow merges the all-scope and single-band buckets with the source
// in one ascending pass, applying the reachable-power cull to band-bucket
// members. With the spatial tier folded in, a snapshot-backed source takes
// the near-field fast path instead: the bucket walk — O(population/bands)
// — is replaced by a scan of the source's near row, so fan-out cost is
// bounded by neighbourhood size.
func (m *Medium) mergeNarrow(dst []int, tx *Transmission) []int {
	if m.spatial && tx.Power <= phy.MaxTxPower {
		if set, ok := m.mergeNarrowSpatial(dst, tx); ok {
			return set
		}
	}
	a, b := m.allIDs, m.bands[tx.Freq]
	srcDone := false
	take := func(id int, cullable bool) {
		if id == tx.Src {
			srcDone = true
			dst = append(dst, id)
			return
		}
		if cullable && !m.Reachable(tx, id) {
			return
		}
		if !srcDone && tx.Src < id {
			dst = append(dst, tx.Src)
			srcDone = true
		}
		dst = append(dst, id)
	}
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] <= b[j]):
			if j < len(b) && a[i] == b[j] {
				j++ // one bucket per listener; defensive dedup
			}
			take(a[i], false)
			i++
		default:
			take(b[j], true)
			j++
		}
	}
	if !srcDone {
		dst = append(dst, tx.Src)
	}
	return dst
}

// mergeNarrowSpatial computes a narrowband delivery set in O(k): all-scope
// listeners, the source's snapshot near row filtered to the event's band
// (with the exact per-pair cull, using the loss straight from the row),
// every unbacked same-band listener (no certificate applies to them), the
// band's tough listeners (floors the far-field certificate can never rule
// out), and the source. ok=false — caller falls back to the bucket walk —
// when the source itself is not snapshot-backed.
//
// The set never under-delivers relative to Reachable, which is what
// bit-identity requires: a backed near pair uses the identical loss bits
// Reachable reads through PairLoss, a backed far pair is dropped only when
// its floor certificate decides — exactly Reachable's first test — and
// everything the certificate cannot cover is delivered. It may
// over-deliver where Reachable's exact-loss fallback would have culled
// (far pair, tough floor); the skipped handler is a guaranteed no-op, only
// the callback count differs.
func (m *Medium) mergeNarrowSpatial(dst []int, tx *Transmission) ([]int, bool) {
	if !m.farProvider.Backed(tx.Src, tx.Pos) {
		return dst, false
	}
	nearIDs, nearLoss := m.farProvider.NearRow(tx.Src)
	dst = append(dst, m.allIDs...)
	dst = append(dst, m.bandsTough[tx.Freq]...)
	for r, id32 := range nearIDs {
		id := int(id32)
		if id >= len(m.interests) || m.listeners[id] == nil || !m.farBacked[id] {
			continue // unbacked listeners are handled below, detached never
		}
		in := m.interests[id]
		if in.Scope != ScopeBand || in.Band != tx.Freq {
			continue
		}
		if in.Floor < 0 && phy.MaxTxPower-phy.DBm(nearLoss[r])+reachMarginDB < in.Floor {
			continue // same decision, same bits as Reachable's PairLoss path
		}
		dst = append(dst, id)
	}
	for _, id := range m.unbackedIDs {
		if in := m.interests[id]; in.Scope == ScopeBand && in.Band == tx.Freq {
			dst = append(dst, id)
		}
	}
	dst = append(dst, tx.Src)
	sort.Ints(dst)
	w := 0
	for i, id := range dst {
		if i == 0 || id != dst[w-1] {
			dst[w] = id
			w++
		}
	}
	return dst[:w], true
}

// mergeWide gathers every band bucket the wideband signal (plus receiver
// guard) overlaps, the all-scope bucket and the source, then sorts and
// dedups. Map iteration order does not matter: the sorted result is the
// delivery order. Bucket members pass through the reachable-power cull —
// Reachable bounds a wideband emitter by its own frozen transmit power, so
// dense coexistence cells no longer fan every Wi-Fi burst out to the whole
// population.
func (m *Medium) mergeWide(dst []int, tx *Transmission) []int {
	half := tx.Bandwidth/2 + widebandGuardMHz
	dst = append(dst, m.allIDs...)
	for f, bucket := range m.bands {
		if f >= tx.Freq-half && f <= tx.Freq+half {
			for _, id := range bucket {
				if m.Reachable(tx, id) {
					dst = append(dst, id)
				}
			}
		}
	}
	dst = append(dst, tx.Src)
	sort.Ints(dst)
	w := 0
	for i, id := range dst {
		if i == 0 || id != dst[w-1] {
			dst[w] = id
			w++
		}
	}
	return dst[:w]
}

// getIDScratch leases a delivery-set slice from the free-list. LIFO and
// single-threaded like the rest of the medium; nested fan-outs (a handler
// transmitting synchronously) each lease their own slice.
func (m *Medium) getIDScratch() []int {
	if n := len(m.idFree); n > 0 {
		s := m.idFree[n-1]
		m.idFree[n-1] = nil
		m.idFree = m.idFree[:n-1]
		return s[:0]
	}
	return make([]int, 0, 16)
}

func (m *Medium) putIDScratch(s []int) {
	m.idFree = append(m.idFree, s)
}
