package medium

import (
	"math"
	"strings"
	"testing"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// The far-field fold's constructor contract, mirroring the PER table's
// budget pattern: exact by default, and an opt-in budget that Reset
// enforces by panicking on any configuration that cannot honour it.

// farTestSnapshot builds a near-field snapshot of n single-node networks
// on a line with the given spacing, so the far/near split is easy to
// reason about.
func farTestSnapshot(t *testing.T, n int, spacing, lossBound float64) *topology.Snapshot {
	t.Helper()
	nets := make([]topology.NetworkSpec, n)
	for i := range nets {
		nets[i] = topology.NetworkSpec{
			Freq: 2458,
			Sink: topology.NodeSpec{Pos: phy.Position{X: float64(i) * spacing}},
		}
	}
	snap, err := topology.SnapshotFromSpecsNear(nets, nil, lossBound)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// mustPanic asserts fn panics with a message containing want.
func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T); want a string containing %q", r, r, want)
		}
		if !strings.Contains(msg, want) {
			t.Fatalf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
}

func TestFarFieldBudgetContract(t *testing.T) {
	sparse := farTestSnapshot(t, 10, 40, 95) // ~22 m near range: line neighbours only

	t.Run("negative budget panics", func(t *testing.T) {
		mustPanic(t, "negative far-field error budget", func() {
			New(sim.NewKernel(1), WithLossProvider(sparse), WithFarField(-1))
		})
	})
	t.Run("no provider panics", func(t *testing.T) {
		mustPanic(t, "needs a FarFieldProvider", func() {
			New(sim.NewKernel(1), WithFarField(1))
		})
	})
	t.Run("dense provider panics", func(t *testing.T) {
		dense, err := topology.NewSnapshot(topology.Config{Plan: phy.ChannelPlan{
			Start: 2458, Bandwidth: 15, CFD: 3, Centers: []phy.MHz{2458, 2461}}},
			sim.NewRNG(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		mustPanic(t, "provider is dense", func() {
			New(sim.NewKernel(1), WithLossProvider(dense), WithFarField(1))
		})
	})
	t.Run("exceeded budget panics", func(t *testing.T) {
		// At bound 95 dB the worst-case fold error over 9 far sources is
		// ~10·log10(1+9·10^-9.5/10^-10) ≈ 14.7 dB — far over a 1 dB budget.
		mustPanic(t, "exceeds the", func() {
			New(sim.NewKernel(1), WithLossProvider(sparse), WithFarField(1))
		})
	})
	t.Run("zero budget means exact", func(t *testing.T) {
		m := New(sim.NewKernel(1), WithLossProvider(sparse))
		if got := m.FarFieldErrorDB(); got != 0 {
			t.Fatalf("FarFieldErrorDB() = %v without a budget, want 0", got)
		}
		if m.spatial {
			t.Fatal("medium folded without a budget")
		}
		if m.farProvider == nil {
			t.Fatal("exact mode lost the far provider: the far-pair cull certificate is gone")
		}
	})
	t.Run("honoured budget reports its error", func(t *testing.T) {
		m := New(sim.NewKernel(1), WithLossProvider(sparse), WithFarField(15))
		_, maxFar, ok := sparse.FarField()
		if !ok {
			t.Fatal("sparse snapshot reports dense")
		}
		unit := (phy.MaxTxPower - phy.DBm(95)).Milliwatts()
		want := 10 * math.Log10(1+float64(maxFar)*unit/noiseFloorMW)
		got := m.FarFieldErrorDB()
		if math.Abs(got-want) > 1e-12 || got <= 0 || got > 15 {
			t.Fatalf("FarFieldErrorDB() = %v, want %v (within the 15 dB budget)", got, want)
		}
	})
}

// TestFoldedUnbackedFallbacks pins the demotion paths: a moved listener, a
// detached one, and a late attacher all leave the folded fast path and get
// exact sums, while untouched listeners stay folded.
func TestFoldedUnbackedFallbacks(t *testing.T) {
	snap := farTestSnapshot(t, 10, 40, 95)
	k := sim.NewKernel(1)
	m := New(k, WithLossProvider(snap), WithFarField(15),
		WithFadingSigma(0), WithStaticFadingSigma(0))

	probes := make([]*probe, 10)
	ids := make([]int, 10)
	for i := range probes {
		probes[i] = &probe{pos: phy.Position{X: float64(i) * 40}}
		ids[i] = m.Attach(probes[i])
	}
	for _, id := range ids {
		if !m.folded(id) {
			t.Fatalf("listener %d not folded after attach at captured geometry", id)
		}
	}

	// A mover is demoted and sensed exactly from then on.
	probes[3].pos = phy.Position{X: 3*40 + 1}
	m.Moved(ids[3])
	if m.folded(ids[3]) {
		t.Fatal("moved listener still folded: its near row no longer matches its geometry")
	}
	if m.folded(ids[2]) != true {
		t.Fatal("neighbour of the mover lost its fold; Moved must demote only the mover")
	}

	// Its sums are exact: compare against a brute-force walk while a far
	// node transmits.
	tx := m.Transmit(ids[9], probes[9].pos, 0, 2458, testFrame(16))
	want := phy.FromMilliwatts(noiseFloorMW + m.InChannelPower(tx, ids[3], 2458).Milliwatts())
	if got := m.SensedPower(ids[3], 2458, nil); got != want {
		t.Fatalf("unbacked SensedPower = %v, want exact %v", got, want)
	}
	// A folded listener's reading sits above the exact truth by at most
	// the declared error.
	exact := phy.FromMilliwatts(noiseFloorMW + m.InChannelPower(tx, ids[5], 2458).Milliwatts())
	folded := m.SensedPower(ids[5], 2458, nil)
	if float64(folded) < float64(exact) || float64(folded) > float64(exact)+m.FarFieldErrorDB()+1e-9 {
		t.Fatalf("folded SensedPower = %v, want within [%v, +%v dB]", folded, exact, m.FarFieldErrorDB())
	}

	// Detach clears the fold flag; a late attacher never gets one.
	m.Detach(ids[7])
	if m.folded(ids[7]) {
		t.Fatal("detached listener still folded")
	}
	late := m.Attach(&probe{pos: phy.Position{X: -500}})
	if m.folded(late) {
		t.Fatal("late attacher folded despite being outside the snapshot")
	}
	if got := m.SensedPower(late, 2458, nil); got == phy.Silent {
		t.Fatal("late attacher cannot sense")
	}
}
