package medium

import (
	"testing"

	"nonortho/internal/frame"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// BenchmarkSensedPowerDense measures the CCA hot path on a dense 35-node
// topology with several concurrent transmissions on neighbouring channels —
// the landscape every carrier-sense sample integrates in the paper's
// five-network experiments. The link-budget and per-transmission caches
// make the steady-state sample alloc-free and skip the per-term
// log-domain conversions.
func BenchmarkSensedPowerDense(b *testing.B) {
	k := sim.NewKernel(1)
	m := New(k)
	const nodes = 35
	ids := make([]int, nodes)
	probes := make([]*probe, nodes)
	for i := 0; i < nodes; i++ {
		p := &probe{pos: phy.Position{X: float64(i%7) * 3, Y: float64(i/7) * 3}}
		probes[i] = p
		ids[i] = m.Attach(p)
	}
	freqs := []phy.MHz{2460, 2461, 2463, 2465, 2467}
	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 64)}
	var active []*Transmission
	startBatch := func() {
		active = active[:0]
		for j := 0; j < 5; j++ {
			src := j * 7
			active = append(active, m.Transmit(ids[src], probes[src].pos, 0, freqs[j], f))
		}
	}
	startBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Periodic transmission churn so the benchmark also pays the
		// cache-warming cost, as a live network does.
		if i%4096 == 4095 {
			b.StopTimer()
			k.Run() // drain the old batch
			startBatch()
			b.StartTimer()
		}
		listener := ids[(i*11)%nodes]
		_ = m.SensedPower(listener, freqs[i%len(freqs)], nil)
	}
}

// BenchmarkSensedPowerChurn interleaves transmission starts, finishes, and
// CCA samples — the adversarial pattern for the epoch-keyed sum caches,
// which are invalidated by every on-air change. It also exercises the
// transmission free-list: every finished transmission's object and per-
// listener cache array are recycled into the next start.
func BenchmarkSensedPowerChurn(b *testing.B) {
	k := sim.NewKernel(1)
	m := New(k)
	const nodes = 35
	ids := make([]int, nodes)
	probes := make([]*probe, nodes)
	for i := 0; i < nodes; i++ {
		p := &probe{pos: phy.Position{X: float64(i%7) * 3, Y: float64(i/7) * 3}}
		probes[i] = p
		ids[i] = m.Attach(p)
	}
	freqs := []phy.MHz{2460, 2461, 2463, 2465, 2467}
	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 16)}
	airtime := sim.FromDuration(f.Airtime())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := (i * 7) % nodes
		m.Transmit(ids[src], probes[src].pos, 0, freqs[i%len(freqs)], f)
		_ = m.SensedPower(ids[(i*11)%nodes], freqs[i%len(freqs)], nil)
		_ = m.SensedPower(ids[(i*17)%nodes], freqs[(i+1)%len(freqs)], nil)
		if i%8 == 7 {
			// Advance past every outstanding airtime: the batch finishes
			// and its objects go back to the pool.
			k.RunUntil(k.Now() + airtime)
		}
	}
}

// bandedProbe is a minimal interested listener: idle on one band, like a
// radio waiting for a preamble.
type bandedProbe struct {
	pos  phy.Position
	band phy.MHz
}

func (p *bandedProbe) Position() phy.Position  { return p.pos }
func (p *bandedProbe) OnAir(tx *Transmission)  {}
func (p *bandedProbe) OffAir(tx *Transmission) {}
func (p *bandedProbe) Interest() Interest {
	return Interest{Scope: ScopeBand, Band: p.band, Floor: phy.Sensitivity}
}

// BenchmarkOnAirFanout measures event dissemination on a wide-band
// deployment: 16 channels across 2405-2480 MHz with six idle listeners
// each, transmissions hopping over all of them. Under the unfiltered
// fan-out every OnAir/OffAir notifies all 96 listeners; the interest
// index delivers each event only to the transmission's own band (six
// listeners plus the source). The callbacks/event metric makes the
// ≥ 3× reduction directly visible.
func BenchmarkOnAirFanout(b *testing.B) {
	run := func(b *testing.B, filterOn bool) {
		k := sim.NewKernel(1)
		m := New(k, WithInterestFilter(filterOn))
		const bandCount, perBand = 16, 6
		ids := make([]int, 0, bandCount*perBand)
		probes := make([]*bandedProbe, 0, bandCount*perBand)
		for bi := 0; bi < bandCount; bi++ {
			f := 2405 + phy.MHz(5*bi)
			for j := 0; j < perBand; j++ {
				p := &bandedProbe{
					pos:  phy.Position{X: float64(bi) * 2, Y: float64(j) * 2},
					band: f,
				}
				probes = append(probes, p)
				ids = append(ids, m.Attach(p))
			}
		}
		f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 16)}
		airtime := sim.FromDuration(f.Airtime())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := (i * 7) % len(ids)
			m.Transmit(ids[src], probes[src].pos, 0, probes[src].band, f)
			if i%8 == 7 {
				k.RunUntil(k.Now() + airtime)
			}
		}
		b.StopTimer()
		k.Run() // flush outstanding OffAirs so Events/Callbacks pair up
		st := m.DisseminationStats()
		if st.Events > 0 {
			b.ReportMetric(float64(st.Callbacks)/float64(st.Events), "callbacks/event")
		}
	}
	b.Run("filtered", func(b *testing.B) { run(b, true) })
	b.Run("unfiltered", func(b *testing.B) { run(b, false) })
}

// BenchmarkInterferenceDense measures SINR integration over the same dense
// landscape: the per-segment interference sum a receiver evaluates every
// time the on-air set changes during a reception.
func BenchmarkInterferenceDense(b *testing.B) {
	k := sim.NewKernel(1)
	m := New(k)
	const nodes = 35
	ids := make([]int, nodes)
	probes := make([]*probe, nodes)
	for i := 0; i < nodes; i++ {
		p := &probe{pos: phy.Position{X: float64(i%7) * 3, Y: float64(i/7) * 3}}
		probes[i] = p
		ids[i] = m.Attach(p)
	}
	freqs := []phy.MHz{2460, 2461, 2463, 2465, 2467}
	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 64)}
	var wanted *Transmission
	for j := 0; j < 5; j++ {
		src := j * 7
		tx := m.Transmit(ids[src], probes[src].pos, 0, freqs[j], f)
		if j == 0 {
			wanted = tx
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Interference(wanted, ids[(i*13)%nodes], 2460)
	}
}
