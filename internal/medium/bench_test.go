package medium

import (
	"math"
	"testing"

	"nonortho/internal/frame"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// BenchmarkSensedPowerDense measures the CCA hot path on a dense 35-node
// topology with several concurrent transmissions on neighbouring channels —
// the landscape every carrier-sense sample integrates in the paper's
// five-network experiments. The link-budget and per-transmission caches
// make the steady-state sample alloc-free and skip the per-term
// log-domain conversions.
func BenchmarkSensedPowerDense(b *testing.B) {
	k := sim.NewKernel(1)
	m := New(k)
	const nodes = 35
	ids := make([]int, nodes)
	probes := make([]*probe, nodes)
	for i := 0; i < nodes; i++ {
		p := &probe{pos: phy.Position{X: float64(i%7) * 3, Y: float64(i/7) * 3}}
		probes[i] = p
		ids[i] = m.Attach(p)
	}
	freqs := []phy.MHz{2460, 2461, 2463, 2465, 2467}
	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 64)}
	var active []*Transmission
	startBatch := func() {
		active = active[:0]
		for j := 0; j < 5; j++ {
			src := j * 7
			active = append(active, m.Transmit(ids[src], probes[src].pos, 0, freqs[j], f))
		}
	}
	startBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Periodic transmission churn so the benchmark also pays the
		// cache-warming cost, as a live network does.
		if i%4096 == 4095 {
			b.StopTimer()
			k.Run() // drain the old batch
			startBatch()
			b.StartTimer()
		}
		listener := ids[(i*11)%nodes]
		_ = m.SensedPower(listener, freqs[i%len(freqs)], nil)
	}
}

// BenchmarkSensedPowerChurn interleaves transmission starts, finishes, and
// CCA samples — the adversarial pattern for the epoch-keyed sum caches,
// which are invalidated by every on-air change. It also exercises the
// transmission free-list: every finished transmission's object and per-
// listener cache array are recycled into the next start.
func BenchmarkSensedPowerChurn(b *testing.B) {
	k := sim.NewKernel(1)
	m := New(k)
	const nodes = 35
	ids := make([]int, nodes)
	probes := make([]*probe, nodes)
	for i := 0; i < nodes; i++ {
		p := &probe{pos: phy.Position{X: float64(i%7) * 3, Y: float64(i/7) * 3}}
		probes[i] = p
		ids[i] = m.Attach(p)
	}
	freqs := []phy.MHz{2460, 2461, 2463, 2465, 2467}
	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 16)}
	airtime := sim.FromDuration(f.Airtime())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := (i * 7) % nodes
		m.Transmit(ids[src], probes[src].pos, 0, freqs[i%len(freqs)], f)
		_ = m.SensedPower(ids[(i*11)%nodes], freqs[i%len(freqs)], nil)
		_ = m.SensedPower(ids[(i*17)%nodes], freqs[(i+1)%len(freqs)], nil)
		if i%8 == 7 {
			// Advance past every outstanding airtime: the batch finishes
			// and its objects go back to the pool.
			k.RunUntil(k.Now() + airtime)
		}
	}
}

// bandedProbe is a minimal interested listener: idle on one band, like a
// radio waiting for a preamble.
type bandedProbe struct {
	pos  phy.Position
	band phy.MHz
}

func (p *bandedProbe) Position() phy.Position  { return p.pos }
func (p *bandedProbe) OnAir(tx *Transmission)  {}
func (p *bandedProbe) OffAir(tx *Transmission) {}
func (p *bandedProbe) Interest() Interest {
	return Interest{Scope: ScopeBand, Band: p.band, Floor: phy.Sensitivity}
}

// BenchmarkOnAirFanout measures event dissemination on a wide-band
// deployment: 16 channels across 2405-2480 MHz with six idle listeners
// each, transmissions hopping over all of them. Under the unfiltered
// fan-out every OnAir/OffAir notifies all 96 listeners; the interest
// index delivers each event only to the transmission's own band (six
// listeners plus the source). The callbacks/event metric makes the
// ≥ 3× reduction directly visible.
func BenchmarkOnAirFanout(b *testing.B) {
	run := func(b *testing.B, filterOn bool) {
		k := sim.NewKernel(1)
		m := New(k, WithInterestFilter(filterOn))
		const bandCount, perBand = 16, 6
		ids := make([]int, 0, bandCount*perBand)
		probes := make([]*bandedProbe, 0, bandCount*perBand)
		for bi := 0; bi < bandCount; bi++ {
			f := 2405 + phy.MHz(5*bi)
			for j := 0; j < perBand; j++ {
				p := &bandedProbe{
					pos:  phy.Position{X: float64(bi) * 2, Y: float64(j) * 2},
					band: f,
				}
				probes = append(probes, p)
				ids = append(ids, m.Attach(p))
			}
		}
		f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 16)}
		airtime := sim.FromDuration(f.Airtime())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src := (i * 7) % len(ids)
			m.Transmit(ids[src], probes[src].pos, 0, probes[src].band, f)
			if i%8 == 7 {
				k.RunUntil(k.Now() + airtime)
			}
		}
		b.StopTimer()
		k.Run() // flush outstanding OffAirs so Events/Callbacks pair up
		st := m.DisseminationStats()
		if st.Events > 0 {
			b.ReportMetric(float64(st.Callbacks)/float64(st.Events), "callbacks/event")
		}
	}
	b.Run("filtered", func(b *testing.B) { run(b, true) })
	b.Run("unfiltered", func(b *testing.B) { run(b, false) })
}

// cityBenchSetup builds a 5,000-node city cell (1,000 four-sender networks
// over a ~6.3 km square, 6-channel plan) on a near-field snapshot with the
// far-field fold active under a 0.5 dB budget, and attaches one banded
// probe per node. It returns the medium, kernel, attach IDs and per-node
// bands, with sinks at indices i*5.
func cityBenchSetup(b *testing.B) (*sim.Kernel, *Medium, []int, []*bandedProbe) {
	b.Helper()
	const networks = 1000
	centers := make([]phy.MHz, 6)
	for i := range centers {
		centers[i] = 2458 + phy.MHz(i)*3
	}
	cfg := topology.CityConfig{
		Plan:     phy.ChannelPlan{Start: 2458, Bandwidth: 15, CFD: 3, Centers: centers},
		Networks: networks,
		AreaSide: 200 * math.Sqrt(networks),
	}
	nets, err := topology.GenerateCity(cfg, sim.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	snap, err := topology.SnapshotFromSpecsNear(nets, nil, 150)
	if err != nil {
		b.Fatal(err)
	}
	k := sim.NewKernel(1)
	m := New(k, WithLossProvider(snap), WithFarField(0.5))
	ids := make([]int, 0, snap.NumNodes())
	probes := make([]*bandedProbe, 0, snap.NumNodes())
	for _, net := range nets {
		for _, nd := range append([]topology.NodeSpec{net.Sink}, net.Senders...) {
			p := &bandedProbe{pos: nd.Pos, band: net.Freq}
			probes = append(probes, p)
			ids = append(ids, m.Attach(p))
		}
	}
	return k, m, ids, probes
}

// BenchmarkSensedPower5kNodes measures the CCA hot path at city scale:
// 5,000 nodes, five concurrent transmissions scattered across the city,
// and the same 35-listener CCA working set and churn cadence as
// BenchmarkSensedPowerDense, so population is the only variable between
// the two. With the far-field fold a cache-missing sample integrates only
// the listener's near-field neighbourhood plus one precomputed aggregate
// term, so the per-sample cost tracks the neighbourhood size k, not the
// population n — the scaling claim gated in check.sh.
func BenchmarkSensedPower5kNodes(b *testing.B) {
	k, m, ids, probes := cityBenchSetup(b)
	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 64)}
	startBatch := func() {
		for j := 0; j < 5; j++ {
			// Sender 1 of networks spread across the city, on their own
			// channels.
			src := (j*199)*5 + 1
			m.Transmit(ids[src], probes[src].pos, 0, probes[src].band, f)
		}
	}
	startBatch()
	// The CCA-active working set: the nodes of seven networks scattered
	// across the city (indices mirror the dense bench's 35 nodes).
	const working = 35
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%4096 == 4095 {
			b.StopTimer()
			k.Run() // drain the old batch
			startBatch()
			b.StartTimer()
		}
		listener := ids[(i*11)%working]
		_ = m.SensedPower(listener, probes[listener].band, nil)
	}
}

// BenchmarkOnAirFanout5kNodes measures event dissemination at city scale:
// each transmission's delivery set is its source's band-matched near-field
// neighbourhood, not the 5,000-listener population. The callbacks/event
// metric reports the realised neighbourhood fan-out.
func BenchmarkOnAirFanout5kNodes(b *testing.B) {
	k, m, ids, probes := cityBenchSetup(b)
	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 16)}
	airtime := sim.FromDuration(f.Airtime())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := ((i*211)%1000)*5 + 1 + i%4
		m.Transmit(ids[src], probes[src].pos, 0, probes[src].band, f)
		if i%8 == 7 {
			k.RunUntil(k.Now() + airtime)
		}
	}
	b.StopTimer()
	k.Run()
	st := m.DisseminationStats()
	if st.Events > 0 {
		b.ReportMetric(float64(st.Callbacks)/float64(st.Events), "callbacks/event")
	}
}

// BenchmarkInterferenceDense measures SINR integration over the same dense
// landscape: the per-segment interference sum a receiver evaluates every
// time the on-air set changes during a reception.
func BenchmarkInterferenceDense(b *testing.B) {
	k := sim.NewKernel(1)
	m := New(k)
	const nodes = 35
	ids := make([]int, nodes)
	probes := make([]*probe, nodes)
	for i := 0; i < nodes; i++ {
		p := &probe{pos: phy.Position{X: float64(i%7) * 3, Y: float64(i/7) * 3}}
		probes[i] = p
		ids[i] = m.Attach(p)
	}
	freqs := []phy.MHz{2460, 2461, 2463, 2465, 2467}
	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 64)}
	var wanted *Transmission
	for j := 0; j < 5; j++ {
		src := j * 7
		tx := m.Transmit(ids[src], probes[src].pos, 0, freqs[j], f)
		if j == 0 {
			wanted = tx
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Interference(wanted, ids[(i*13)%nodes], 2460)
	}
}
