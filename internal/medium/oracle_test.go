package medium

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// The differential oracle: the cached sensing accessors must return values
// bit-identical to a brute-force sum the test maintains itself, under a
// randomized churn of transmissions starting and ending, listeners
// detaching, attaching and moving, receivers retuning across channels,
// and radios excluding their own signal. The oracle tracks the on-air set through the
// public OnAir/OffAir listener callbacks and sums per-transmission powers
// through the public InChannelPower/RxPower accessors in ID order — it
// never touches the medium's active slice, epoch counter, or sum caches.

// trackerListener forwards air events to the test's own bookkeeping. Its
// zero interest is ScopeAll, so undeclared trackers hear everything like
// any legacy listener; the churn retunes some of them through SetInterest.
type trackerListener struct {
	pos    phy.Position
	onAir  func(*Transmission)
	offAir func(*Transmission)
}

func (l *trackerListener) Position() phy.Position { return l.pos }
func (l *trackerListener) OnAir(tx *Transmission) {
	if l.onAir != nil {
		l.onAir(tx)
	}
}
func (l *trackerListener) OffAir(tx *Transmission) {
	if l.offAir != nil {
		l.offAir(tx)
	}
}

func TestCachedSumsMatchBruteForce(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		for _, filtered := range []bool{true, false} {
			t.Run(fmt.Sprintf("seed=%d/filtered=%v", seed, filtered), func(t *testing.T) {
				testCachedSumsMatchBruteForce(t, seed, filtered, nil)
			})
		}
	}
}

// TestFilteredChurnBitIdentical replays the full randomized churn twice —
// interest filter on, then off — and requires every sampled SensedPower,
// SensedCoChannelPower and Interference value to be bit-identical between
// the two runs. The filter may only skip deliveries whose handlers would
// have been no-ops, so the sampled history (including the shared-stream
// fading draws it triggers) must not move by a single bit.
func TestFilteredChurnBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var filtered, unfiltered []phy.DBm
			testCachedSumsMatchBruteForce(t, seed, true, &filtered)
			testCachedSumsMatchBruteForce(t, seed, false, &unfiltered)
			if len(filtered) != len(unfiltered) {
				t.Fatalf("sample counts differ: %d filtered, %d unfiltered", len(filtered), len(unfiltered))
			}
			for i := range filtered {
				if filtered[i] != unfiltered[i] {
					t.Fatalf("sample %d differs: %v filtered, %v unfiltered", i, filtered[i], unfiltered[i])
				}
			}
		})
	}
}

func testCachedSumsMatchBruteForce(t *testing.T, seed int64, filterOn bool, record *[]phy.DBm) {
	k := sim.NewKernel(seed)
	// Default fading + shadowing: exercise the lazy RNG draws.
	m := New(k, WithInterestFilter(filterOn))
	rng := sim.NewRNG(seed * 977)
	channels := []phy.MHz{2458, 2460, 2461, 2463}

	// The test's own view of the air, maintained purely from listener
	// callbacks.
	var active []*Transmission
	track := func(l *trackerListener) {
		l.onAir = func(tx *Transmission) { active = append(active, tx) }
		l.offAir = func(tx *Transmission) {
			for i, a := range active {
				if a == tx {
					active = append(active[:i], active[i+1:]...)
					return
				}
			}
			t.Fatalf("OffAir for unknown transmission %d", tx.ID)
		}
	}

	// Brute-force references, iterating a freshly sorted copy of the
	// tracked set. These mirror the documented semantics, not the
	// implementation's bookkeeping.
	ordered := func() []*Transmission {
		s := append([]*Transmission(nil), active...)
		sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
		return s
	}
	bruteSensed := func(lid int, freq phy.MHz, exclude *Transmission) phy.DBm {
		total := noiseFloorMW
		for _, tx := range ordered() {
			if exclude != nil && tx.ID == exclude.ID {
				continue
			}
			if tx.Src == lid {
				continue
			}
			total += m.InChannelPower(tx, lid, freq).Milliwatts()
		}
		return phy.FromMilliwatts(total)
	}
	bruteCoChannel := func(lid int, freq phy.MHz, exclude *Transmission) phy.DBm {
		total := noiseFloorMW
		for _, tx := range ordered() {
			if exclude != nil && tx.ID == exclude.ID {
				continue
			}
			if tx.Src == lid || tx.Freq != freq {
				continue
			}
			total += m.RxPower(tx, lid).Milliwatts()
		}
		return phy.FromMilliwatts(total)
	}
	bruteInterference := func(wanted *Transmission, lid int, freq phy.MHz) phy.DBm {
		total := 0.0
		for _, tx := range ordered() {
			if tx.ID == wanted.ID || tx.Src == lid {
				continue
			}
			total += m.InChannelPower(tx, lid, freq).Milliwatts()
		}
		return phy.FromMilliwatts(total)
	}

	// Six listeners scattered over the field; listener 0 maintains the
	// tracked set. One extra joins and one leaves mid-run.
	pos := make(map[int]phy.Position)
	byID := make(map[int]*trackerListener)
	var ids []int
	attach := func(p phy.Position, tracked bool) int {
		l := &trackerListener{pos: p}
		if tracked {
			track(l)
		}
		id := m.Attach(l)
		pos[id] = p
		byID[id] = l
		ids = append(ids, id)
		return id
	}
	for i := 0; i < 6; i++ {
		attach(phy.Position{
			X: rng.Float64()*40 - 20,
			Y: rng.Float64()*40 - 20,
		}, i == 0)
	}
	victim := ids[len(ids)-1] // detached mid-run, never transmits

	check := func() {
		for _, lid := range ids {
			if !m.Attached(lid) {
				if got := m.SensedPower(lid, channels[0], nil); got != phy.Silent {
					t.Fatalf("detached listener %d: SensedPower = %v, want Silent", lid, got)
				}
				continue
			}
			freq := channels[rng.Intn(len(channels))]
			// Find this listener's own transmission and a foreign one, if
			// any are up, to exercise both exclude paths.
			var own, foreign *Transmission
			for _, tx := range active {
				if tx.Src == lid {
					own = tx
				} else {
					foreign = tx
				}
			}
			// Sample twice: the first call fills the per-listener cache,
			// the second must hit it and return the identical bits.
			sample := func(v phy.DBm) phy.DBm {
				if record != nil {
					*record = append(*record, v)
				}
				return v
			}
			for pass := 0; pass < 2; pass++ {
				for _, excl := range []*Transmission{nil, own, foreign} {
					if got, want := sample(m.SensedPower(lid, freq, excl)), bruteSensed(lid, freq, excl); got != want {
						t.Fatalf("t=%v listener %d freq %v excl %v pass %d: SensedPower = %v, want %v",
							k.Now(), lid, freq, excl, pass, got, want)
					}
					if got, want := sample(m.SensedCoChannelPower(lid, freq, excl)), bruteCoChannel(lid, freq, excl); got != want {
						t.Fatalf("t=%v listener %d freq %v excl %v pass %d: SensedCoChannelPower = %v, want %v",
							k.Now(), lid, freq, excl, pass, got, want)
					}
				}
				if len(active) > 0 {
					wanted := active[0]
					if got, want := sample(m.Interference(wanted, lid, freq)), bruteInterference(wanted, lid, freq); got != want {
						t.Fatalf("t=%v listener %d freq %v wanted %d pass %d: Interference = %v, want %v",
							k.Now(), lid, freq, wanted.ID, pass, got, want)
					}
				}
			}
		}
	}

	// Churn: transmissions start at random times on random channels from
	// random sources, and end whenever their airtime runs out. Samples are
	// interleaved throughout; retunes are the samples' changing freq
	// argument.
	const span = 2 * time.Second
	for i := 0; i < 120; i++ {
		at := time.Duration(rng.Intn(int(span)))
		src := ids[rng.Intn(len(ids)-1)] // never the victim
		freq := channels[rng.Intn(len(channels))]
		power := phy.DBm(rng.Float64()*25 - 25)
		payload := 8 + rng.Intn(112)
		k.After(at, func() {
			m.Transmit(src, pos[src], power, freq, testFrame(payload))
		})
	}
	for i := 0; i < 250; i++ {
		k.After(time.Duration(rng.Intn(int(span))), check)
	}
	// Interest churn: the untracked listeners hop between hearing
	// everything, one band (with and without a cull floor), and only their
	// own signals. Sensing is pull-based, so none of this may move a bit
	// of any sampled value — it only reshapes the index the filtered
	// fan-out walks. The victim's retunes after its detach are no-ops.
	for i := 0; i < 60; i++ {
		id := ids[1+rng.Intn(len(ids)-1)]
		in := Interest{}
		switch rng.Intn(4) {
		case 1:
			in = Interest{Scope: ScopeBand, Band: channels[rng.Intn(len(channels))]}
		case 2:
			in = Interest{Scope: ScopeBand, Band: channels[rng.Intn(len(channels))], Floor: phy.Sensitivity}
		case 3:
			in = Interest{Scope: ScopeOwn}
		}
		k.After(time.Duration(rng.Intn(int(span))), func() { m.SetInterest(id, in) })
	}
	// Motion churn: listeners drift mid-run, sources and samplers alike.
	// Moved marks every link touching the mover stale — path loss is
	// recomputed from the new positions at the next use, while persistent
	// shadowing draws and per-transmission fading stay put — and
	// invalidates the cached sums, so every sample after a move compares a
	// freshly resummed value against the brute-force walk over the same
	// recomputed links.
	for i := 0; i < 40; i++ {
		id := ids[rng.Intn(len(ids))]
		dx := rng.Float64()*8 - 4
		dy := rng.Float64()*8 - 4
		k.After(time.Duration(rng.Intn(int(span))), func() {
			l := byID[id]
			l.pos = phy.Position{X: l.pos.X + dx, Y: l.pos.Y + dy}
			pos[id] = l.pos
			m.Moved(id)
		})
	}
	k.After(span/2, func() { m.Detach(victim) })
	k.After(3*span/4, func() {
		attach(phy.Position{X: rng.Float64() * 10, Y: -5}, false)
		check()
	})
	k.Run()
	if len(active) != 0 {
		t.Fatalf("tracked set not empty after run: %d left", len(active))
	}
	check() // quiescent air: pure noise floor everywhere
}
