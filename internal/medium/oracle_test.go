package medium

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// The differential oracle: the cached sensing accessors must return values
// bit-identical to a brute-force sum the test maintains itself, under a
// randomized churn of transmissions starting and ending, listeners
// detaching, attaching and moving, receivers retuning across channels,
// wideband and over-spec emitters, and radios excluding their own signal.
// The oracle tracks the on-air set through the public OnAir/OffAir listener
// callbacks and sums per-transmission powers through the public
// InChannelPower/RxPower accessors in ID order — it never touches the
// medium's active slice, epoch counter, or sum caches. The same churn runs
// against a dense medium, a near-field snapshot provider in exact mode
// (bit-identical by construction), and the far-field fold (bounded
// one-sided error).

// trackerListener forwards air events to the test's own bookkeeping. Its
// zero interest is ScopeAll, so undeclared trackers hear everything like
// any legacy listener; the churn retunes some of them through SetInterest.
type trackerListener struct {
	pos    phy.Position
	onAir  func(*Transmission)
	offAir func(*Transmission)
}

func (l *trackerListener) Position() phy.Position { return l.pos }
func (l *trackerListener) OnAir(tx *Transmission) {
	if l.onAir != nil {
		l.onAir(tx)
	}
}
func (l *trackerListener) OffAir(tx *Transmission) {
	if l.offAir != nil {
		l.offAir(tx)
	}
}

// oracleConfig parameterises one churn run.
type oracleConfig struct {
	seed     int64
	filterOn bool
	// record, when set, accumulates every sampled value for cross-run
	// bit-identity comparisons.
	record *[]phy.DBm
	// nearBound, when positive, installs a near-field topology snapshot
	// with this loss bound as the medium's loss provider. The field is
	// sized so a small bound certifies many pairs far.
	nearBound float64
	// farBudget, when positive, additionally enables the far-field fold
	// under this error budget (requires nearBound). Sampled sums are then
	// compared against the brute force with a one-sided bounded error
	// instead of bit equality.
	farBudget float64
	// area is the field side in meters (default 40).
	area float64
	// noFading zeroes both fading sigmas. The folded runs need it: the
	// fold's certificate is fade-free, so only the fade-free landscape is
	// provably one-sided against the brute force.
	noFading bool
}

func TestCachedSumsMatchBruteForce(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		for _, filtered := range []bool{true, false} {
			t.Run(fmt.Sprintf("seed=%d/filtered=%v", seed, filtered), func(t *testing.T) {
				testOracleChurn(t, oracleConfig{seed: seed, filterOn: filtered})
			})
		}
	}
}

// TestFilteredChurnBitIdentical replays the full randomized churn twice —
// interest filter on, then off — and requires every sampled SensedPower,
// SensedCoChannelPower and Interference value to be bit-identical between
// the two runs. The filter may only skip deliveries whose handlers would
// have been no-ops, so the sampled history (including the shared-stream
// fading draws it triggers) must not move by a single bit. The churn
// includes wideband and over-spec emitters, so the mergeWide per-member
// cull is pinned by the same invariant.
func TestFilteredChurnBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var filtered, unfiltered []phy.DBm
			testOracleChurn(t, oracleConfig{seed: seed, filterOn: true, record: &filtered})
			testOracleChurn(t, oracleConfig{seed: seed, filterOn: false, record: &unfiltered})
			compareSampleHistories(t, filtered, unfiltered, "filtered", "unfiltered")
		})
	}
}

// TestSpatialExactChurnBitIdentical replays the churn with and without a
// near-field snapshot provider in exact mode (no error budget) and
// requires bit-identical sample histories: materialised near losses are
// computed with the medium's own expression, certified-far pairs fall back
// to the exact model, so the spatial tier in exact mode must be
// observationally invisible. The small bound certifies a large fraction of
// the field's pairs far, so the far fallback actually runs.
func TestSpatialExactChurnBitIdentical(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, filtered := range []bool{true, false} {
			t.Run(fmt.Sprintf("seed=%d/filtered=%v", seed, filtered), func(t *testing.T) {
				var dense, near []phy.DBm
				testOracleChurn(t, oracleConfig{seed: seed, filterOn: filtered, record: &dense,
					area: 120})
				testOracleChurn(t, oracleConfig{seed: seed, filterOn: filtered, record: &near,
					area: 120, nearBound: 95})
				compareSampleHistories(t, dense, near, "dense", "near-field")
			})
		}
	}
}

// TestFoldedChurnBoundedError runs the churn with the far-field fold
// enabled and a fade-free landscape: every sampled sensing value must sit
// at or above the brute-force truth and within the medium's declared
// FarFieldErrorDB of it. The in-run check() asserts this per sample; the
// run here only needs to complete.
func TestFoldedChurnBoundedError(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, filtered := range []bool{true, false} {
			t.Run(fmt.Sprintf("seed=%d/filtered=%v", seed, filtered), func(t *testing.T) {
				testOracleChurn(t, oracleConfig{seed: seed, filterOn: filtered,
					area: 120, nearBound: 95, farBudget: 15, noFading: true})
			})
		}
	}
}

func compareSampleHistories(t *testing.T, a, b []phy.DBm, an, bn string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("sample counts differ: %d %s, %d %s", len(a), an, len(b), bn)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v %s, %v %s", i, a[i], an, b[i], bn)
		}
	}
}

func testOracleChurn(t *testing.T, cfg oracleConfig) {
	if cfg.area == 0 {
		cfg.area = 40
	}
	k := sim.NewKernel(cfg.seed)
	rng := sim.NewRNG(cfg.seed * 977)
	channels := []phy.MHz{2458, 2460, 2461, 2463}

	// Pre-draw the six initial positions (the draw order matches the old
	// inline attach loop, keeping the churn identical across modes) so a
	// snapshot can be built before the medium.
	initPos := make([]phy.Position, 6)
	for i := range initPos {
		initPos[i] = phy.Position{
			X: rng.Float64()*cfg.area - cfg.area/2,
			Y: rng.Float64()*cfg.area - cfg.area/2,
		}
	}
	mopts := []Option{WithInterestFilter(cfg.filterOn)}
	if cfg.noFading {
		mopts = append(mopts, WithFadingSigma(0), WithStaticFadingSigma(0))
	}
	var farUnitMW float64
	if cfg.nearBound > 0 {
		// One single-node network per initial listener: snapshot attach IDs
		// 0..5 line up with the medium's.
		nets := make([]topology.NetworkSpec, len(initPos))
		for i, p := range initPos {
			nets[i] = topology.NetworkSpec{Freq: channels[0], Sink: topology.NodeSpec{Pos: p}}
		}
		snap, err := topology.SnapshotFromSpecsNear(nets, nil, cfg.nearBound)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Dense() {
			t.Fatal("near-field snapshot reports Dense")
		}
		mopts = append(mopts, WithLossProvider(snap))
		if cfg.farBudget > 0 {
			mopts = append(mopts, WithFarField(cfg.farBudget))
			farUnitMW = (phy.MaxTxPower - phy.DBm(cfg.nearBound)).Milliwatts()
		}
	}
	// Default fading + shadowing unless disabled: exercise the lazy RNG draws.
	m := New(k, mopts...)
	folded := cfg.farBudget > 0
	if folded && m.FarFieldErrorDB() <= 0 {
		t.Fatal("FarFieldErrorDB() not positive with the fold enabled")
	}

	// The test's own view of the air, maintained purely from listener
	// callbacks.
	var active []*Transmission
	track := func(l *trackerListener) {
		l.onAir = func(tx *Transmission) { active = append(active, tx) }
		l.offAir = func(tx *Transmission) {
			for i, a := range active {
				if a == tx {
					active = append(active[:i], active[i+1:]...)
					return
				}
			}
			t.Fatalf("OffAir for unknown transmission %d", tx.ID)
		}
	}

	// Brute-force references, iterating a freshly sorted copy of the
	// tracked set. These mirror the documented semantics, not the
	// implementation's bookkeeping.
	ordered := func() []*Transmission {
		s := append([]*Transmission(nil), active...)
		sort.Slice(s, func(i, j int) bool { return s[i].ID < s[j].ID })
		return s
	}
	bruteSensed := func(lid int, freq phy.MHz, exclude *Transmission) phy.DBm {
		total := noiseFloorMW
		for _, tx := range ordered() {
			if exclude != nil && tx.ID == exclude.ID {
				continue
			}
			if tx.Src == lid {
				continue
			}
			total += m.InChannelPower(tx, lid, freq).Milliwatts()
		}
		return phy.FromMilliwatts(total)
	}
	bruteCoChannel := func(lid int, freq phy.MHz, exclude *Transmission) phy.DBm {
		total := noiseFloorMW
		for _, tx := range ordered() {
			if exclude != nil && tx.ID == exclude.ID {
				continue
			}
			if tx.Src == lid || tx.Freq != freq {
				continue
			}
			total += m.RxPower(tx, lid).Milliwatts()
		}
		return phy.FromMilliwatts(total)
	}
	bruteInterference := func(wanted *Transmission, lid int, freq phy.MHz) phy.DBm {
		total := 0.0
		for _, tx := range ordered() {
			if tx.ID == wanted.ID || tx.Src == lid {
				continue
			}
			total += m.InChannelPower(tx, lid, freq).Milliwatts()
		}
		return phy.FromMilliwatts(total)
	}

	// Six listeners scattered over the field; listener 0 maintains the
	// tracked set. One extra joins and one leaves mid-run.
	pos := make(map[int]phy.Position)
	byID := make(map[int]*trackerListener)
	var ids []int
	attach := func(p phy.Position, tracked bool) int {
		l := &trackerListener{pos: p}
		if tracked {
			track(l)
		}
		id := m.Attach(l)
		pos[id] = p
		byID[id] = l
		ids = append(ids, id)
		return id
	}
	for i, p := range initPos {
		attach(p, i == 0)
	}
	victim := ids[len(ids)-1] // detached mid-run, never transmits

	// compare checks one sampled value against its brute-force reference.
	// Exact modes demand bit equality. The folded mode demands the
	// documented one-sided bounded error: the fold only ever ADDS the
	// certified worst-case far aggregate, so got ∈ [want, want+errDB] in
	// the noise-floored sums (a 1e-9 dB slack absorbs summation-order
	// rounding).
	errDB := 0.0
	if folded {
		errDB = m.FarFieldErrorDB()
	}
	compare := func(what string, lid int, got, want phy.DBm) {
		t.Helper()
		if !folded {
			if got != want {
				t.Fatalf("t=%v listener %d: %s = %v, want %v", k.Now(), lid, what, got, want)
			}
			return
		}
		const eps = 1e-9
		if float64(got) < float64(want)-eps || float64(got) > float64(want)+errDB+eps {
			t.Fatalf("t=%v listener %d: folded %s = %v, want within [%v, %v+%v dB]",
				k.Now(), lid, what, got, want, want, errDB)
		}
	}
	// compareMW is the interference variant: with no noise-floor term the
	// dB error is unbounded near silence, but the fold's absolute overshoot
	// is still at most the whole far aggregate in milliwatts.
	compareMW := func(lid int, got, want phy.DBm) {
		t.Helper()
		if !folded {
			compare("Interference", lid, got, want)
			return
		}
		gotMW, wantMW := got.Milliwatts(), want.Milliwatts()
		bound := float64(m.farN) * farUnitMW
		const eps = 1e-15
		if gotMW < wantMW-eps || gotMW > wantMW+bound+bound*1e-9+eps {
			t.Fatalf("t=%v listener %d: folded Interference = %v mW, want within [%v, %v+%v mW]",
				k.Now(), lid, gotMW, wantMW, wantMW, bound)
		}
	}

	foldedSamples := 0
	check := func() {
		for _, lid := range ids {
			if m.Attached(lid) && m.folded(lid) {
				foldedSamples++
			}
			if !m.Attached(lid) {
				if got := m.SensedPower(lid, channels[0], nil); got != phy.Silent {
					t.Fatalf("detached listener %d: SensedPower = %v, want Silent", lid, got)
				}
				continue
			}
			freq := channels[rng.Intn(len(channels))]
			// Find this listener's own transmission and a foreign one, if
			// any are up, to exercise both exclude paths.
			var own, foreign *Transmission
			for _, tx := range active {
				if tx.Src == lid {
					own = tx
				} else {
					foreign = tx
				}
			}
			// Sample twice: the first call fills the per-listener cache,
			// the second must hit it and return the identical bits.
			sample := func(v phy.DBm) phy.DBm {
				if cfg.record != nil {
					*cfg.record = append(*cfg.record, v)
				}
				return v
			}
			for pass := 0; pass < 2; pass++ {
				for _, excl := range []*Transmission{nil, own, foreign} {
					compare("SensedPower", lid, sample(m.SensedPower(lid, freq, excl)), bruteSensed(lid, freq, excl))
					compare("SensedCoChannelPower", lid, sample(m.SensedCoChannelPower(lid, freq, excl)), bruteCoChannel(lid, freq, excl))
				}
				if len(active) > 0 {
					wanted := active[0]
					compareMW(lid, sample(m.Interference(wanted, lid, freq)), bruteInterference(wanted, lid, freq))
				}
			}
		}
	}

	// Churn: transmissions start at random times on random channels from
	// random sources, and end whenever their airtime runs out. Samples are
	// interleaved throughout; retunes are the samples' changing freq
	// argument. Every sixth emitter is wideband — alternating between
	// narrower than the receiver window (never culled) and wider (culled by
	// its actual power) — and every tenth narrowband one runs over spec,
	// outside the cull's power bound.
	const span = 2 * time.Second
	for i := 0; i < 120; i++ {
		at := time.Duration(rng.Intn(int(span)))
		src := ids[rng.Intn(len(ids)-1)] // never the victim
		freq := channels[rng.Intn(len(channels))]
		power := phy.DBm(rng.Float64()*25 - 25)
		payload := 8 + rng.Intn(112)
		var bandwidth phy.MHz
		if i%6 == 5 {
			bandwidth = phy.MHz(1 + 3*(i%2)) // 1 MHz or 4 MHz occupied
		} else if i%10 == 9 {
			power = phy.MaxTxPower + phy.DBm(rng.Float64()*3) // over-spec
		}
		k.After(at, func() {
			m.TransmitShaped(src, pos[src], power, freq, bandwidth, testFrame(payload))
		})
	}
	for i := 0; i < 250; i++ {
		k.After(time.Duration(rng.Intn(int(span))), check)
	}
	// Interest churn: the untracked listeners hop between hearing
	// everything, one band (with and without a cull floor), and only their
	// own signals. Sensing is pull-based, so none of this may move a bit
	// of any sampled value — it only reshapes the index the filtered
	// fan-out walks. The victim's retunes after its detach are no-ops.
	for i := 0; i < 60; i++ {
		id := ids[1+rng.Intn(len(ids)-1)]
		in := Interest{}
		switch rng.Intn(4) {
		case 1:
			in = Interest{Scope: ScopeBand, Band: channels[rng.Intn(len(channels))]}
		case 2:
			in = Interest{Scope: ScopeBand, Band: channels[rng.Intn(len(channels))], Floor: phy.Sensitivity}
		case 3:
			in = Interest{Scope: ScopeOwn}
		}
		k.After(time.Duration(rng.Intn(int(span))), func() { m.SetInterest(id, in) })
	}
	// Motion churn: listeners drift mid-run, sources and samplers alike.
	// Moved marks every link touching the mover stale — path loss is
	// recomputed from the new positions at the next use, while persistent
	// shadowing draws and per-transmission fading stay put — and
	// invalidates the cached sums, so every sample after a move compares a
	// freshly resummed value against the brute-force walk over the same
	// recomputed links. Under a snapshot provider a mover's geometry no
	// longer matches, so its pairs take the verify-and-fall-back path; in
	// folded mode the mover is demoted to unbacked exact sums.
	for i := 0; i < 40; i++ {
		id := ids[rng.Intn(len(ids))]
		dx := rng.Float64()*8 - 4
		dy := rng.Float64()*8 - 4
		k.After(time.Duration(rng.Intn(int(span))), func() {
			l := byID[id]
			l.pos = phy.Position{X: l.pos.X + dx, Y: l.pos.Y + dy}
			pos[id] = l.pos
			m.Moved(id)
		})
	}
	k.After(span/2, func() { m.Detach(victim) })
	k.After(3*span/4, func() {
		attach(phy.Position{X: rng.Float64() * 10, Y: -5}, false)
		check()
	})
	k.Run()
	if len(active) != 0 {
		t.Fatalf("tracked set not empty after run: %d left", len(active))
	}
	check() // quiescent air: pure noise floor everywhere
	// The fold must actually have been live for a meaningful share of the
	// samples (motion churn demotes movers to unbacked exact sums, so the
	// count decays over the run — but it must not start at zero).
	if folded && foldedSamples == 0 {
		t.Fatal("folded run sampled no folded listener — the fold path was never exercised")
	}
}
