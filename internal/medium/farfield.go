package medium

import (
	"fmt"
	"math"
	"sort"

	"nonortho/internal/phy"
)

// This file is the medium half of the spatial tier: far-field aggregation
// over a near-field (tiled) topology snapshot. A FarFieldProvider certifies
// a loss floor for every node pair it deliberately omits; the medium uses
// that certificate two ways:
//
//   - Culling (always on when a provider is installed, exact): the
//     reachable-power predicate can rule a far pair out from the floor
//     alone, and falls back to computing the exact model loss when the
//     floor is inconclusive — so delivery decisions are bit-identical to a
//     dense snapshot, and all-pairs golden runs are unchanged.
//
//   - Folding (opt-in via WithFarField, approximate with an enforced error
//     budget): power sums skip transmissions from far sources entirely and
//     add a precomputed aggregate — the worst-case fade-free contribution
//     of every far source — to the noise floor instead. Sensing then costs
//     O(neighbourhood), not O(active), and link-state memory follows the
//     snapshot's O(n·k) sparsity instead of O(n²).
//
// The budget follows the phy.NewPERTableWithBudget pattern: exact by
// default (no budget ⇒ no folding, bit-identical to a dense run), and an
// opt-in bound that the constructor path (Reset) enforces by panicking
// when the worst-case fold error exceeds it.

// FarFieldProvider is the optional LossProvider extension a near-field
// topology snapshot implements. All methods are read-only and must be
// consistent with PairLoss: a pair is either near (PairLoss answers, and
// the source appears in the listener's NearRow) or certified far
// (PairLossFloor answers with the loss floor) — never both.
type FarFieldProvider interface {
	LossProvider
	// PairLossFloor returns a floor every certified-far pair's true loss
	// provably reaches, with ok=false for near pairs or unmatched geometry.
	PairLossFloor(src, listener int, from, to phy.Position) (floor float64, ok bool)
	// NearRow returns the ascending node IDs within the near-field bound
	// of the given node (including itself) and their exact pair losses.
	// Rows are symmetric views into shared storage — read-only.
	NearRow(node int) (ids []int32, loss []float64)
	// Backed reports whether the node is captured at exactly this position.
	Backed(id int, pos phy.Position) bool
	// FarField reports the certified loss floor and the worst per-listener
	// far-source count; ok=false when the provider is dense.
	FarField() (lossBoundDB float64, maxFarCount int, ok bool)
	// NumNodes reports the captured population.
	NumNodes() int
}

// WithFarField enables far-field folding with the given error budget in dB:
// the maximum amount the aggregate far-field term may lift any listener's
// sensed noise floor. Reset panics unless the installed loss provider is a
// FarFieldProvider whose certified floor keeps the worst-case fold error —
// 10·log10(1 + maxFarCount·unit/noise), unit the fade-free in-channel power
// of one maximum-power transmitter at exactly the floor loss — within the
// budget. A zero budget (the default) disables folding entirely: sums are
// exact and bit-identical to a dense snapshot.
//
// Error semantics: the certificate bounds the fade-free contribution of
// each folded transmitter, assuming at most one concurrent transmission
// per source (one antenna). Per-pair shadowing and per-transmission jitter
// are zero-mean Gaussians whose positive excursions are not counted
// against the budget — the same convention as the reachable-power cull's
// phy.ReachMarginDB. The fold is one-sided: it always adds the worst-case
// aggregate, so folded readings are never below what the skipped
// transmitters could explain.
func WithFarField(budgetDB float64) Option {
	return func(md *Medium) { md.farBudgetDB = budgetDB }
}

// FarFieldErrorDB reports the worst-case sensed-power error of the active
// far-field fold in dB, 0 when folding is off.
func (m *Medium) FarFieldErrorDB() float64 {
	if !m.spatial {
		return 0
	}
	return foldErrorDB(m.farMaxCount, m.farUnitMW)
}

func foldErrorDB(maxFarCount int, unitMW float64) float64 {
	return 10 * math.Log10(1+float64(maxFarCount)*unitMW/noiseFloorMW)
}

// resolveFarField derives the spatial-tier state from the freshly applied
// options; reset calls it once per cell so the hot paths never re-inspect
// the provider. Budget violations panic — misconfiguration, like a PER
// table whose grid cannot honour its budget, is a programming error.
func (m *Medium) resolveFarField() {
	m.farProvider, _ = m.lossProvider.(FarFieldProvider)
	if m.farBudgetDB == 0 {
		return
	}
	if m.farBudgetDB < 0 {
		panic(fmt.Sprintf("medium: negative far-field error budget %g dB", m.farBudgetDB))
	}
	if m.farProvider == nil {
		panic("medium: WithFarField needs a FarFieldProvider loss provider (a near-field topology snapshot)")
	}
	bound, maxFar, ok := m.farProvider.FarField()
	if !ok {
		panic("medium: WithFarField needs a near-field snapshot; the installed provider is dense")
	}
	unitMW := (phy.MaxTxPower - phy.DBm(bound)).Milliwatts()
	if errDB := foldErrorDB(maxFar, unitMW); errDB > m.farBudgetDB {
		panic(fmt.Sprintf("medium: far-field fold error %.3f dB exceeds the %.3f dB budget (loss bound %.1f dB, %d far sources); raise the snapshot's loss bound or the budget",
			errDB, m.farBudgetDB, bound, maxFar))
	}
	m.spatial = true
	m.farUnitMW = unitMW
	m.farMaxCount = maxFar
	m.farN = m.farProvider.NumNodes()
	// Far-cull threshold for the spatial fan-out: a listener floor above
	// this can never hear a legal-power transmitter at or beyond the loss
	// bound, margin included.
	m.farCullThresh = phy.MaxTxPower - phy.DBm(bound) + reachMarginDB
	if m.spill == nil {
		m.spill = make(map[int64]*linkSlot)
	}
}

// farFoldMW returns the aggregate worst-case far-field power at a backed
// listener in milliwatts: one fade-free maximum-power transmission at the
// floor loss per far source.
func (m *Medium) farFoldMW(listenerID int) float64 {
	near, _ := m.farProvider.NearRow(listenerID)
	return float64(m.farN-len(near)) * m.farUnitMW
}

// trackActive indexes a freshly transmitted tx for the folded paths: on its
// source's active list, and on the unbounded list when the fold's
// certificate cannot cover it (wideband, over-spec power, or a source
// outside the snapshot geometry).
func (m *Medium) trackActive(tx *Transmission) {
	for len(m.bySrc) <= tx.Src {
		m.bySrc = append(m.bySrc, nil)
	}
	m.bySrc[tx.Src] = append(m.bySrc[tx.Src], tx)
	tx.farBounded = tx.Bandwidth == 0 && tx.Power <= phy.MaxTxPower &&
		m.farProvider.Backed(tx.Src, tx.Pos)
	if !tx.farBounded {
		m.unbounded = append(m.unbounded, tx)
	}
}

// untrackActive undoes trackActive when the transmission leaves the air.
// Swap-removes: per-source lists are re-sorted by ID at gather time.
func (m *Medium) untrackActive(tx *Transmission) {
	if tx.Src < len(m.bySrc) {
		m.bySrc[tx.Src] = removeTx(m.bySrc[tx.Src], tx)
	}
	if !tx.farBounded {
		m.unbounded = removeTx(m.unbounded, tx)
	}
}

func removeTx(s []*Transmission, tx *Transmission) []*Transmission {
	for i, t := range s {
		if t == tx {
			last := len(s) - 1
			s[i] = s[last]
			s[last] = nil
			return s[:last]
		}
	}
	return s
}

// nearActive gathers, in ascending transmission-ID order, every active
// transmission that can contribute above the fold's certificate at a
// backed listener: all transmissions from the listener's near sources,
// plus every unbounded transmission (deduplicated — an unbounded
// transmission from a near source is already gathered). Everything else
// is from a certified-far source at legal power and is covered by
// farFoldMW. The scratch slice is reused across calls.
func (m *Medium) nearActive(listenerID int) []*Transmission {
	s := m.nearScratch[:0]
	near, _ := m.farProvider.NearRow(listenerID)
	for _, src := range near {
		if int(src) < len(m.bySrc) {
			s = append(s, m.bySrc[src]...)
		}
	}
	for _, tx := range m.unbounded {
		if tx.Src >= m.farN || !containsID(near, int32(tx.Src)) {
			s = append(s, tx)
		}
	}
	// Restore ID order — floating-point sums must run in the same order
	// every time. Insertion sort: per-source lists are already ascending,
	// so the merge is nearly sorted.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	m.nearScratch = s
	return s
}

// containsID reports whether the ascending ID slice holds id.
func containsID(ids []int32, id int32) bool {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	return i < len(ids) && ids[i] == id
}

// folded reports whether the listener's power sums run on the folded path:
// the spatial tier is active and the listener's position is backed by the
// snapshot, so its far field is certified. Unbacked listeners (late
// attachers, movers) keep the exact full loop.
func (m *Medium) folded(listenerID int) bool {
	return m.spatial && listenerID < len(m.farBacked) && m.farBacked[listenerID]
}

// sensedPowerFolded is sensedPowerDirect over the near field only, with the
// far field folded into the noise term.
func (m *Medium) sensedPowerFolded(listenerID int, freq phy.MHz, exclude *Transmission) phy.DBm {
	total := noiseFloorMW + m.farFoldMW(listenerID)
	for _, tx := range m.nearActive(listenerID) {
		if exclude != nil && tx.ID == exclude.ID {
			continue
		}
		if tx.Src == listenerID {
			continue
		}
		total += m.inChannelMW(tx, listenerID, freq)
	}
	return phy.FromMilliwatts(total)
}

// sensedCoChannelFolded is sensedCoChannelDirect over the near field; the
// fold is frequency-blind (its certificate bounds total in-channel power),
// so the co-channel reading carries the same one-sided error bound.
func (m *Medium) sensedCoChannelFolded(listenerID int, freq phy.MHz, exclude *Transmission) phy.DBm {
	total := noiseFloorMW + m.farFoldMW(listenerID)
	for _, tx := range m.nearActive(listenerID) {
		if exclude != nil && tx.ID == exclude.ID {
			continue
		}
		if tx.Src == listenerID || tx.Freq != freq {
			continue
		}
		total += m.rxMW(tx, listenerID)
	}
	return phy.FromMilliwatts(total)
}

// interferenceFolded is interferenceDirect over the near field plus the
// far-field fold (Interference excludes the noise floor but not the far
// field — a receiver's SINR denominator must account for it).
func (m *Medium) interferenceFolded(wanted *Transmission, listenerID int, freq phy.MHz) phy.DBm {
	total := m.farFoldMW(listenerID)
	for _, tx := range m.nearActive(listenerID) {
		if tx.ID == wanted.ID || tx.Src == listenerID {
			continue
		}
		total += m.inChannelMW(tx, listenerID, freq)
	}
	return phy.FromMilliwatts(total)
}

// spatialSlot is the folded-mode replacement for dense link-row indexing:
// a backed listener's slots live in its row at the source's rank within
// the listener's near row — O(k) memory per listener instead of O(n) —
// and the rare pair outside that set (unbacked listener, far source being
// probed directly) spills to a keyed map.
func (m *Medium) spatialSlot(listenerID, src int) *linkSlot {
	if listenerID < len(m.farBacked) && m.farBacked[listenerID] {
		near, _ := m.farProvider.NearRow(listenerID)
		if r := rankOf(near, int32(src)); r >= 0 {
			return &m.spatialRow(listenerID, len(near))[r]
		}
	}
	key := int64(listenerID)<<32 | int64(uint32(src))
	s := m.spill[key]
	if s == nil {
		s = &linkSlot{}
		m.spill[key] = s
	}
	return s
}

// rankOf returns id's index in the ascending slice, or -1.
func rankOf(ids []int32, id int32) int {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if i < len(ids) && ids[i] == id {
		return i
	}
	return -1
}

// spatialRow returns the listener's rank-indexed link row grown to its
// near-row length, re-extending into zeroed slab capacity when possible.
func (m *Medium) spatialRow(listenerID, k int) []linkSlot {
	row := m.rows[listenerID]
	if k <= len(row) {
		return row
	}
	if cap(row) >= k {
		row = row[:k]
	} else {
		grown := make([]linkSlot, k)
		copy(grown, row)
		row = grown
	}
	m.rows[listenerID] = row
	return row
}
