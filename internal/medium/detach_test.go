package medium

import (
	"testing"

	"nonortho/internal/frame"
	"nonortho/internal/phy"
)

func TestDetachMidTransmissionIsSafe(t *testing.T) {
	k, m := newTestMedium(t, WithFadingSigma(0), WithStaticFadingSigma(0))
	src := &probe{pos: phy.Position{X: 0}}
	gone := &probe{pos: phy.Position{X: 1}}
	stay := &probe{pos: phy.Position{X: 2}}
	srcID := m.Attach(src)
	goneID := m.Attach(gone)
	m.Attach(stay)

	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 64)}
	tx := m.Transmit(srcID, src.pos, 0, 2460, f)

	// The listener detaches while the frame is on the air — e.g. a node
	// powering off mid-reception.
	m.Detach(goneID)
	if m.Attached(goneID) {
		t.Fatal("Attached = true after Detach")
	}
	if got := m.RxPower(tx, goneID); got != phy.Silent {
		t.Fatalf("RxPower at a detached listener = %v, want Silent", got)
	}

	k.Run()

	if gone.offAir != 0 {
		t.Fatalf("detached listener saw %d OffAir events, want 0", gone.offAir)
	}
	if stay.offAir != 1 {
		t.Fatalf("remaining listener saw %d OffAir events, want 1", stay.offAir)
	}
}

func TestDetachedListenerMissesLaterTransmissions(t *testing.T) {
	k, m := newTestMedium(t, WithFadingSigma(0), WithStaticFadingSigma(0))
	src := &probe{pos: phy.Position{X: 0}}
	gone := &probe{pos: phy.Position{X: 1}}
	srcID := m.Attach(src)
	goneID := m.Attach(gone)
	m.Detach(goneID)

	m.Transmit(srcID, src.pos, 0, 2460, &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 16)})
	k.Run()

	if gone.onAir != 0 || gone.offAir != 0 {
		t.Fatalf("detached listener notified: %d on-air, %d off-air", gone.onAir, gone.offAir)
	}
}

func TestDetachDoesNotRecycleIDs(t *testing.T) {
	_, m := newTestMedium(t, WithFadingSigma(0), WithStaticFadingSigma(0))
	a := m.Attach(&probe{})
	m.Detach(a)
	b := m.Attach(&probe{})
	if a == b {
		t.Fatalf("listener ID %d recycled after Detach", a)
	}
	if !m.Attached(b) {
		t.Fatal("fresh listener not attached")
	}
}

func TestDetachedListenerSensesNothing(t *testing.T) {
	_, m := newTestMedium(t, WithFadingSigma(0), WithStaticFadingSigma(0))
	src := &probe{pos: phy.Position{X: 0}}
	gone := &probe{pos: phy.Position{X: 1}}
	srcID := m.Attach(src)
	goneID := m.Attach(gone)

	m.Transmit(srcID, src.pos, 0, 2460, &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 64)})
	m.Detach(goneID)
	if got := m.SensedPower(goneID, 2460, nil); got != phy.Silent {
		t.Fatalf("sensed power at a detached listener = %v, want Silent", got)
	}
}

// TestDetachDropsCachedLinkBudgets is the stale-cache regression test: a
// listener that warmed the link-budget and per-transmission caches, then
// detached mid-flight, must measure Silent — not a cached real power — and
// the remaining listeners' cached values must be untouched.
func TestDetachDropsCachedLinkBudgets(t *testing.T) {
	_, m := newTestMedium(t)
	src := &probe{pos: phy.Position{X: 0}}
	gone := &probe{pos: phy.Position{X: 1}}
	stay := &probe{pos: phy.Position{X: 2}}
	srcID := m.Attach(src)
	goneID := m.Attach(gone)
	stayID := m.Attach(stay)

	tx := m.Transmit(srcID, src.pos, 0, 2460, &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 64)})

	// Warm every cache layer: link budgets, fading draws and mW slots.
	_ = m.SensedPower(goneID, 2460, nil)
	stayBefore := m.SensedPower(stayID, 2460, nil)
	if got := m.SensedPower(goneID, 2460, nil); got <= phy.Silent {
		t.Fatalf("attached listener sensed %v, want real power", got)
	}

	m.Detach(goneID)

	for src, slot := range m.rows[goneID] {
		if slot != (linkSlot{}) {
			t.Fatalf("link row slot [%d][%d] for detached listener survived Detach: %+v", goneID, src, slot)
		}
	}
	if tx.perL[goneID] != (txListenerCache{}) {
		t.Fatalf("in-flight transmission kept a cache slot for detached listener: %+v", tx.perL[goneID])
	}
	if got := m.SensedPower(goneID, 2460, nil); got != phy.Silent {
		t.Fatalf("SensedPower at detached listener = %v, want Silent", got)
	}
	if got := m.RxPower(tx, goneID); got != phy.Silent {
		t.Fatalf("RxPower at detached listener = %v, want Silent", got)
	}
	if got := m.Interference(tx, goneID, 2460); got != phy.Silent {
		t.Fatalf("Interference at detached listener = %v, want Silent", got)
	}
	if got := m.SensedPower(stayID, 2460, nil); got != stayBefore {
		t.Fatalf("remaining listener's sensed power drifted after Detach: %v, was %v", got, stayBefore)
	}
}

// probe is a minimal listener counting notifications.
type probe struct {
	pos    phy.Position
	onAir  int
	offAir int
}

func (p *probe) Position() phy.Position  { return p.pos }
func (p *probe) OnAir(tx *Transmission)  { p.onAir++ }
func (p *probe) OffAir(tx *Transmission) { p.offAir++ }
