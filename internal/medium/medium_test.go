package medium

import (
	"math"
	"testing"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// fakeListener records medium events.
type fakeListener struct {
	pos    phy.Position
	onAir  []*Transmission
	offAir []*Transmission
}

func (f *fakeListener) Position() phy.Position  { return f.pos }
func (f *fakeListener) OnAir(tx *Transmission)  { f.onAir = append(f.onAir, tx) }
func (f *fakeListener) OffAir(tx *Transmission) { f.offAir = append(f.offAir, tx) }

func testFrame(payload int) *frame.Frame {
	return &frame.Frame{Type: frame.TypeData, Payload: make([]byte, payload)}
}

func newTestMedium(t *testing.T, opts ...Option) (*sim.Kernel, *Medium) {
	t.Helper()
	k := sim.NewKernel(1)
	return k, New(k, opts...)
}

func TestTransmitNotifiesAllListeners(t *testing.T) {
	k, m := newTestMedium(t, WithFadingSigma(0), WithStaticFadingSigma(0))
	a := &fakeListener{pos: phy.Position{X: 0}}
	b := &fakeListener{pos: phy.Position{X: 5}}
	idA := m.Attach(a)
	m.Attach(b)

	f := testFrame(64)
	tx := m.Transmit(idA, a.pos, 0, 2460, f)
	if m.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1", m.ActiveCount())
	}
	if len(a.onAir) != 1 || len(b.onAir) != 1 {
		t.Fatal("OnAir not delivered to all listeners")
	}
	if a.onAir[0] != tx {
		t.Error("OnAir delivered wrong transmission")
	}

	k.Run()
	if m.ActiveCount() != 0 {
		t.Errorf("ActiveCount after end = %d, want 0", m.ActiveCount())
	}
	if len(a.offAir) != 1 || len(b.offAir) != 1 {
		t.Fatal("OffAir not delivered to all listeners")
	}
	if got, want := tx.End-tx.Start, sim.FromDuration(f.Airtime()); got != want {
		t.Errorf("airtime on medium = %v, want %v", got, want)
	}
}

func TestRxPowerUsesPathLoss(t *testing.T) {
	k, m := newTestMedium(t,
		WithFadingSigma(0), WithStaticFadingSigma(0),
		WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))
	src := &fakeListener{pos: phy.Position{X: 0}}
	dst := &fakeListener{pos: phy.Position{X: 10}}
	idSrc := m.Attach(src)
	idDst := m.Attach(dst)
	_ = k

	tx := m.Transmit(idSrc, src.pos, 0, 2460, testFrame(16))
	got := m.RxPower(tx, idDst)
	if math.Abs(float64(got)+70) > 1e-9 { // 40 + 30·log10(10) = 70 dB loss
		t.Errorf("RxPower = %v, want -70", got)
	}
}

func TestFadingIsConsistentPerPair(t *testing.T) {
	_, m := newTestMedium(t, WithFadingSigma(6), WithStaticFadingSigma(0))
	src := &fakeListener{pos: phy.Position{X: 0}}
	dst := &fakeListener{pos: phy.Position{X: 10}}
	idSrc := m.Attach(src)
	idDst := m.Attach(dst)

	tx := m.Transmit(idSrc, src.pos, 0, 2460, testFrame(16))
	first := m.RxPower(tx, idDst)
	for i := 0; i < 5; i++ {
		if got := m.RxPower(tx, idDst); got != first {
			t.Fatal("fading draw changed within one transmission")
		}
	}
}

func TestFadingVariesAcrossTransmissions(t *testing.T) {
	k, m := newTestMedium(t, WithFadingSigma(6), WithStaticFadingSigma(0))
	src := &fakeListener{pos: phy.Position{X: 0}}
	dst := &fakeListener{pos: phy.Position{X: 10}}
	idSrc := m.Attach(src)
	idDst := m.Attach(dst)

	tx1 := m.Transmit(idSrc, src.pos, 0, 2460, testFrame(16))
	p1 := m.RxPower(tx1, idDst)
	k.Run()
	tx2 := m.Transmit(idSrc, src.pos, 0, 2460, testFrame(16))
	p2 := m.RxPower(tx2, idDst)
	if p1 == p2 {
		t.Error("fading identical across transmissions (expected fresh draw)")
	}
}

func TestSensedPowerNoiseFloorWhenQuiet(t *testing.T) {
	_, m := newTestMedium(t, WithFadingSigma(0), WithStaticFadingSigma(0))
	l := &fakeListener{}
	id := m.Attach(l)
	got := m.SensedPower(id, 2460, nil)
	if math.Abs(float64(got-phy.NoiseFloor)) > 1e-9 {
		t.Errorf("quiet SensedPower = %v, want noise floor %v", got, phy.NoiseFloor)
	}
}

func TestSensedPowerAppliesRejection(t *testing.T) {
	_, m := newTestMedium(t,
		WithFadingSigma(0), WithStaticFadingSigma(0),
		WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))
	src := &fakeListener{pos: phy.Position{X: 0}}
	obs := &fakeListener{pos: phy.Position{X: 1}} // raw rx = -40 dBm
	idSrc := m.Attach(src)
	idObs := m.Attach(obs)

	m.Transmit(idSrc, src.pos, 0, 2460, testFrame(16))

	co := m.SensedPower(idObs, 2460, nil)
	if math.Abs(float64(co)+40) > 0.01 {
		t.Errorf("co-channel sensed = %v, want ≈ -40", co)
	}
	adj := m.SensedPower(idObs, 2463, nil) // 3 MHz away: 17 dB rejection
	if math.Abs(float64(adj)+57) > 0.01 {
		t.Errorf("adjacent sensed = %v, want ≈ -57", adj)
	}
	// 15 MHz away: saturated 50 dB rejection → -90 dBm, which combines
	// with the -100 dBm noise floor to ≈ -89.59 dBm.
	far := m.SensedPower(idObs, 2475, nil)
	if math.Abs(float64(far)+89.59) > 0.05 {
		t.Errorf("far sensed = %v, want ≈ -89.59", far)
	}
}

func TestSensedPowerExcludesOwnAndExcluded(t *testing.T) {
	_, m := newTestMedium(t, WithFadingSigma(0), WithStaticFadingSigma(0))
	a := &fakeListener{pos: phy.Position{X: 0}}
	b := &fakeListener{pos: phy.Position{X: 1}}
	idA := m.Attach(a)
	idB := m.Attach(b)

	txA := m.Transmit(idA, a.pos, 0, 2460, testFrame(16))
	// A senses: own transmission excluded by Src, so just noise.
	got := m.SensedPower(idA, 2460, nil)
	if math.Abs(float64(got-phy.NoiseFloor)) > 1e-9 {
		t.Errorf("own-tx sensed = %v, want noise floor", got)
	}
	// B excluding txA sees noise only.
	got = m.SensedPower(idB, 2460, txA)
	if math.Abs(float64(got-phy.NoiseFloor)) > 1e-9 {
		t.Errorf("excluded-tx sensed = %v, want noise floor", got)
	}
}

func TestSensedPowerCombinesConcurrentTransmitters(t *testing.T) {
	_, m := newTestMedium(t,
		WithFadingSigma(0), WithStaticFadingSigma(0),
		WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))
	s1 := &fakeListener{pos: phy.Position{X: -1}}
	s2 := &fakeListener{pos: phy.Position{X: 1}}
	obs := &fakeListener{pos: phy.Position{X: 0}}
	id1 := m.Attach(s1)
	id2 := m.Attach(s2)
	idObs := m.Attach(obs)

	m.Transmit(id1, s1.pos, 0, 2460, testFrame(16))
	m.Transmit(id2, s2.pos, 0, 2460, testFrame(16))
	got := m.SensedPower(idObs, 2460, nil)
	// Two -40 dBm arrivals sum to ≈ -37 dBm.
	if math.Abs(float64(got)+37) > 0.05 {
		t.Errorf("combined sensed = %v, want ≈ -37", got)
	}
}

func TestInterferenceExcludesWanted(t *testing.T) {
	_, m := newTestMedium(t,
		WithFadingSigma(0), WithStaticFadingSigma(0),
		WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))
	want := &fakeListener{pos: phy.Position{X: -1}}
	intf := &fakeListener{pos: phy.Position{X: 2}}
	obs := &fakeListener{pos: phy.Position{X: 0}}
	idW := m.Attach(want)
	idI := m.Attach(intf)
	idObs := m.Attach(obs)

	txW := m.Transmit(idW, want.pos, 0, 2460, testFrame(16))
	m.Transmit(idI, intf.pos, 0, 2463, testFrame(16))

	got := m.Interference(txW, idObs, 2460)
	// Interferer raw at 2 m: -49.03 dBm; minus 17 dB rejection ≈ -66.
	if math.Abs(float64(got)+66.03) > 0.1 {
		t.Errorf("Interference = %v, want ≈ -66", got)
	}
}

func TestTransmissionEndsExactlyAtAirtime(t *testing.T) {
	k, m := newTestMedium(t, WithFadingSigma(0), WithStaticFadingSigma(0))
	l := &fakeListener{}
	id := m.Attach(l)
	f := testFrame(64)
	m.Transmit(id, l.pos, 0, 2460, f)

	k.RunUntil(sim.FromDuration(f.Airtime()) - 1)
	if m.ActiveCount() != 1 {
		t.Fatal("transmission ended early")
	}
	k.RunFor(time.Nanosecond)
	if m.ActiveCount() != 0 {
		t.Fatal("transmission did not end at airtime")
	}
}

func TestFadingDrawIsStablePerTransmission(t *testing.T) {
	k, m := newTestMedium(t, WithFadingSigma(6), WithStaticFadingSigma(0))
	src := &fakeListener{pos: phy.Position{X: 0}}
	dst := &fakeListener{pos: phy.Position{X: 10}}
	idSrc := m.Attach(src)
	idDst := m.Attach(dst)

	tx := m.Transmit(idSrc, src.pos, 0, 2460, testFrame(16))
	first := m.RxPower(tx, idDst)
	if !tx.perL[idDst].hasFade {
		t.Fatal("fading draw not cached on the transmission")
	}
	if again := m.RxPower(tx, idDst); again != first {
		t.Errorf("RxPower not stable within a transmission: %v then %v", first, again)
	}
	k.Run() // the cache dies with the transmission — nothing lingers in the medium
	tx2 := m.Transmit(idSrc, src.pos, 0, 2460, testFrame(16))
	if second := m.RxPower(tx2, idDst); second == first {
		t.Error("distinct transmissions reused the same fading draw")
	}
}
