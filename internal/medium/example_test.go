package medium_test

import (
	"fmt"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// silent listener for the example.
type probe struct{ pos phy.Position }

func (p *probe) Position() phy.Position      { return p.pos }
func (p *probe) OnAir(*medium.Transmission)  {}
func (p *probe) OffAir(*medium.Transmission) {}

// Example shows the medium's power bookkeeping: raw received power, the
// filtered in-channel view of an off-channel transmission, and the total
// sensed energy a CCA would compare against its threshold.
func Example() {
	k := sim.NewKernel(1)
	m := medium.New(k,
		medium.WithFadingSigma(0), medium.WithStaticFadingSigma(0),
		medium.WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))

	src := &probe{pos: phy.Position{X: 0}}
	obs := &probe{pos: phy.Position{X: 1}}
	srcID := m.Attach(src)
	obsID := m.Attach(obs)

	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 32)}
	tx := m.Transmit(srcID, src.pos, 0 /* dBm */, 2463, f)

	fmt.Printf("raw rx power:      %.1f dBm\n", float64(m.RxPower(tx, obsID)))
	fmt.Printf("in-channel @2460:  %.1f dBm (3 MHz off, 17 dB rejected)\n",
		float64(m.InChannelPower(tx, obsID, 2460)))
	fmt.Printf("sensed @2463:      %.1f dBm\n", float64(m.SensedPower(obsID, 2463, nil)))
	// Output:
	// raw rx power:      -40.0 dBm
	// in-channel @2460:  -57.0 dBm (3 MHz off, 17 dB rejected)
	// sensed @2463:      -40.0 dBm
	k.Run()
}
