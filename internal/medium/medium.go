// Package medium models the shared wireless medium: it tracks every
// in-flight transmission, computes received and sensed power at any
// listener (applying path loss, per-pair shadow fading and the receiver's
// adjacent-channel rejection), and notifies listeners of on-air events so
// they can integrate interference over a reception.
package medium

import (
	"nonortho/internal/frame"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// Listener is anything attached to the medium — typically a radio. The
// medium calls OnAir/OffAir for every transmission in the world, including
// the listener's own (compare Transmission.Src with the listener's ID).
type Listener interface {
	// Position locates the listener's antenna.
	Position() phy.Position
	// OnAir is invoked when a transmission begins anywhere on the medium.
	OnAir(tx *Transmission)
	// OffAir is invoked when that transmission completes.
	OffAir(tx *Transmission)
}

// Transmission is a frame in flight.
type Transmission struct {
	// ID is unique per medium instance.
	ID uint64
	// Src identifies the transmitting listener (medium attach ID).
	Src int
	// Pos is the transmitter's antenna position.
	Pos phy.Position
	// Power is the transmit power.
	Power phy.DBm
	// Freq is the channel center frequency.
	Freq phy.MHz
	// Bandwidth is the occupied bandwidth for wideband emitters (e.g.
	// 22 MHz for 802.11b). Zero means a narrowband 802.15.4 signal whose
	// off-channel leakage follows the medium's rejection curve directly.
	Bandwidth phy.MHz
	// Frame is the MAC frame being sent.
	Frame *frame.Frame
	// Start and End bound the on-air interval.
	Start, End sim.Time

	// perL caches each listener's per-transmission fading draw, indexed
	// by listener ID. The draw must live on the transmission (not the
	// listener's link row): it is consumed lazily from a shared stream at
	// first use, and pinning it here keeps the draw order — and therefore
	// every downstream draw — identical however often the power caches
	// thrash. Lazily sized; zeroed and reused when the transmission is
	// recycled through the free-list.
	perL []txListenerCache

	// activeIdx is the transmission's current index in Medium.active
	// (maintained across swap-removes), or -1 when off the air.
	activeIdx int
	// farBounded marks a transmission the far-field fold's certificate
	// covers (narrowband, legal power, source backed by the snapshot);
	// maintained only while folding is active (farfield.go).
	farBounded bool
}

// txListenerCache holds one listener's per-transmission fading draw. The
// memoized power values that used to sit beside it live in the listener's
// dense link row (linkSlot), keyed by transmission ID.
type txListenerCache struct {
	fade    float64 // per-transmission fading draw, dB
	hasFade bool
}

// Option configures a Medium.
type Option func(*Medium)

// WithPathLoss overrides the propagation model.
func WithPathLoss(m phy.PathLossModel) Option {
	return func(md *Medium) { md.pathLoss = m }
}

// WithRejection overrides the adjacent-channel rejection curve.
func WithRejection(c phy.RejectionCurve) Option {
	return func(md *Medium) { md.rejection = c }
}

// WithFadingSigma sets the per-transmission fading jitter standard
// deviation in dB: the small temporal RSSI variation a static link shows
// packet to packet. Zero disables it.
func WithFadingSigma(sigma float64) Option {
	return func(md *Medium) { md.fadingSigma = sigma }
}

// WithStaticFadingSigma sets the per-(transmitter, listener) lognormal
// shadowing standard deviation in dB: a draw made once per ordered node
// pair that persists for the whole run, modelling obstacles and multipath
// of a fixed deployment. Zero disables it.
func WithStaticFadingSigma(sigma float64) Option {
	return func(md *Medium) { md.staticSigma = sigma }
}

// LossProvider supplies precomputed path loss for (src, listener) attach-ID
// pairs — typically a topology snapshot whose n×n loss matrix was built once
// and is shared read-only across simulation cells. PairLoss must return the
// bit-identical value the medium's own path-loss model would compute for the
// given positions, or ok=false when the pair is outside the precomputed set
// or the positions no longer match the geometry the provider was built from
// (late-attached or moved nodes); the medium then falls back to computing
// the loss itself.
type LossProvider interface {
	PairLoss(src, listener int, from, to phy.Position) (loss float64, ok bool)
}

// WithLossProvider installs a precomputed path-loss source consulted before
// the medium's own model when a link budget is (re)computed.
func WithLossProvider(p LossProvider) Option {
	return func(md *Medium) { md.lossProvider = p }
}

// Medium is the shared channel. Not safe for concurrent use: the simulation
// is single-threaded by design.
type Medium struct {
	kernel       *sim.Kernel //lint:keep the medium's identity; Reset recycles state against the same (already-Reset) kernel
	pathLoss     phy.PathLossModel
	rejection    phy.RejectionCurve
	lossProvider LossProvider
	fadingSigma  float64
	staticSigma  float64
	fadingRNG    *sim.RNG
	staticRNG    *sim.RNG

	listeners []Listener
	// active holds the in-flight transmissions. finish removes by
	// swap-remove, so the slice is NOT ID-ordered; power sums always go
	// through orderedActive, which restores ID order — floating-point
	// sums must be evaluated in the same order every run.
	active []*Transmission
	// scratch is the reusable ID-ordered copy of active used by resums.
	// The sorted order is a property of the on-air set alone, so it is
	// memoized by epoch: the first cache miss after a change sorts, every
	// other listener missing in the same epoch reuses the result.
	scratch      []*Transmission
	scratchEpoch uint64
	scratchValid bool
	// txPool is the free-list of recycled Transmission objects. A
	// finished transmission (and its perL slice) parks here and is reset
	// on reuse, so steady-state churn allocates nothing.
	txPool []*Transmission
	// epoch counts on-air landscape changes (Transmit/finish/Detach/
	// Moved). Cached per-listener power sums are valid only within the
	// epoch they were computed in.
	epoch uint64
	// sums holds each listener's cached sensing sums, indexed by attach
	// ID in lockstep with listeners.
	sums []listenerSums
	// rows holds each listener's dense link cache: rows[listener][src] is
	// the structure-of-arrays replacement for the old map[linkKey]
	// lookup. A slot carries the pair's link budget (path loss for the
	// recorded geometry plus the persistent shadowing draw) and the
	// last-computed received/in-channel powers in milliwatts, keyed by
	// transmission ID — so the ID-ordered power sums index straight into
	// one contiguous row instead of hashing per transmission. Rows are
	// grown lazily, zeroed (not freed) on Detach, and keep their slab
	// capacity across Reset.
	rows [][]linkSlot
	// rejDB caches the rejection curve per signed frequency offset — the
	// set of channel-pair offsets in a run is tiny and fixed.
	rejDB    map[phy.MHz]float64
	nextTxID uint64

	// Interest-filtered dissemination (interest.go): each listener's
	// declared interest, indexed by attach ID in lockstep with listeners,
	// plus the event-delivery buckets it is filed under — allIDs for
	// ScopeAll, bands[f] for ScopeBand — always kept in ascending ID
	// order so merged delivery matches the unfiltered fan-out order.
	interests []Interest
	allIDs    []int
	bands     map[phy.MHz][]int
	// idFree recycles delivery-set slices across fan-outs.
	idFree [][]int
	// filterMode selects how the dissemination filter engages (see the
	// filterAuto/filterForceOn/filterForceOff constants in interest.go);
	// indexLive says whether the index buckets are currently maintained
	// and consulted. In the default auto mode the index stays dormant —
	// zero per-event and per-retune cost — until the listener population
	// reaches indexMinListeners, where filtering starts paying for itself.
	filterMode uint8
	indexLive  bool
	dstats     DisseminationStats

	// Spatial tier (farfield.go). farProvider is the lossProvider when it
	// also certifies far-pair loss floors — resolved once per reset so the
	// cull's hot path never type-asserts. The remaining fields exist only
	// while folding is active (farBudgetDB > 0): spatial flags the folded
	// mode, farUnitMW/farMaxCount/farN/farCullThresh are derived constants,
	// farBacked tracks (in lockstep with listeners) whether each listener's
	// position is snapshot-backed, unbackedIDs lists the ones that are not
	// (ascending), bySrc/unbounded index the active set for the folded
	// sums, bandsTough holds the per-band listeners the far cull can never
	// skip, spill backs link slots outside the rank-indexed rows, and
	// nearScratch is the folded sums' reusable gather buffer.
	farBudgetDB   float64
	farProvider   FarFieldProvider
	spatial       bool
	farUnitMW     float64
	farMaxCount   int
	farN          int
	farCullThresh phy.DBm
	farBacked     []bool
	unbackedIDs   []int
	bySrc         [][]*Transmission
	unbounded     []*Transmission
	bandsTough    map[phy.MHz][]int
	spill         map[int64]*linkSlot
	nearScratch   []*Transmission
}

// sumCache is one listener's memoized SensedPower (or co-channel) result:
// the dBm total for one receiver tuning, valid within one epoch. A hit can
// only occur after the identical ID-ordered loop already ran in the same
// epoch, so returning the cached value is bit-identical to recomputing —
// and makes CCA sampling O(1) between on-air changes.
type sumCache struct {
	freq  phy.MHz
	epoch uint64
	dbm   phy.DBm
	valid bool
}

// interfCache is the Interference variant, additionally keyed by the wanted
// transmission being excluded from the sum.
type interfCache struct {
	freq   phy.MHz
	wanted uint64
	epoch  uint64
	dbm    phy.DBm
	valid  bool
}

// listenerSums carries one listener's cached sensing sums.
type listenerSums struct {
	sensed sumCache
	coch   sumCache
	interf interfCache
}

// linkSlot is one source's entry in a listener's dense link row. The
// first half is the static link budget: path loss for the recorded
// geometry and the pair's one-time shadowing draw (the positions are kept
// so a moved endpoint invalidates the loss while the shadowing draw — a
// property of the pair, as before — persists). The second half memoizes
// the pair's received and in-channel powers in milliwatts for one
// transmission (txID) and receiver tuning (inFreq); everything cached is
// a pure function of state frozen at Transmit time plus the
// transmission-pinned fading draw, so a recompute after any cache
// turnover is bit-identical.
type linkSlot struct {
	from, to phy.Position
	loss     float64 // path loss, dB
	static   float64 // persistent shadowing draw, dB
	rxMW     float64 // RxPower of txID, milliwatts
	inMW     float64 // InChannelPower of txID at inFreq, milliwatts
	inFreq   phy.MHz // receiver tuning inMW was computed for
	txID     uint64  // transmission the mW caches belong to
	known    bool    // link budget computed (shadowing drawn)
	// lossValid marks loss as computed for the recorded geometry. It can
	// hold without known across a ResetKeepLinks: the loss — a pure
	// function of the geometry — carried over from the previous cell,
	// while the shadowing draw must be redrawn so the static stream
	// advances exactly as on a fresh medium. known implies lossValid.
	lossValid bool
	stale     bool // set by Moved; forces a loss recompute on next use
	hasRx     bool
	hasIn     bool
}

// noiseFloorMW is phy.NoiseFloor converted once; the CCA hot path adds it
// on every sample.
var noiseFloorMW = phy.NoiseFloor.Milliwatts()

// New creates a medium bound to the kernel. Defaults: indoor log-distance
// path loss, the calibrated CC2420 rejection curve, 3 dB static per-link
// shadowing and 2 dB per-transmission jitter (the combination that
// reproduces the paper's CPRR spread while keeping RSSI stable enough for
// min-tracking, as on real motes).
func New(k *sim.Kernel, opts ...Option) *Medium {
	m := &Medium{
		kernel: k,
		rejDB:  make(map[phy.MHz]float64),
	}
	m.Reset(opts...)
	return m
}

// Reset returns the medium to the state New(kernel, opts...) would produce
// while retaining every allocation worth keeping warm: the transmission
// free-list (with its per-listener cache slabs), the delivery-set
// free-list, and the scratch slices. The cross-cell arena calls this when
// a cell leases a recycled medium; the kernel must have been Reset first
// so the shared fading/shadowing streams are already rewound. Reset is
// bit-identical to building a fresh medium: recycled transmissions are
// zeroed on reuse and every cache is keyed or cleared, so a reused medium
// produces the same draws and sums as a new one.
func (m *Medium) Reset(opts ...Option) { m.reset(false, opts...) }

// ResetKeepLinks is Reset for a cell whose topology is unchanged from the
// previous cell on this medium: in addition to the warm slabs, every link
// slot keeps its recorded geometry and path loss, so the next cell's
// first power sum skips the loss lookups entirely. The shadowing draws do
// NOT carry over — they are redrawn from the rewound static stream at the
// same first-use points, keeping a recycled medium bit-identical to a
// fresh one. The caller asserts that the new cell's loss configuration
// (placements, path-loss model, provider matrix) yields bit-identical
// losses for matching geometry; a changed position is still detected and
// recomputed per slot, but a changed model under identical positions is
// not, so callers must key retention on a topology-snapshot identity (see
// arena.LeaseTopo).
func (m *Medium) ResetKeepLinks(opts ...Option) { m.reset(true, opts...) }

func (m *Medium) reset(keepLinks bool, opts ...Option) {
	// Park any still-in-flight transmissions: their scheduled finish died
	// with the kernel reset, so they go straight back to the free-list.
	for i, tx := range m.active {
		tx.activeIdx = -1
		m.txPool = append(m.txPool, tx)
		m.active[i] = nil
	}
	m.active = m.active[:0]
	for i := range m.scratch {
		m.scratch[i] = nil
	}
	m.scratch = m.scratch[:0]
	m.scratchEpoch, m.scratchValid = 0, false
	m.listeners = m.listeners[:0]
	m.sums = m.sums[:0]
	m.interests = m.interests[:0]
	m.allIDs = m.allIDs[:0]
	for f := range m.bands {
		delete(m.bands, f)
	}
	// Spatial-tier state: drop transmission references so parked objects
	// can recycle, keep the slabs warm.
	wasSpatial := m.spatial
	m.farBacked = m.farBacked[:0]
	m.unbackedIDs = m.unbackedIDs[:0]
	for i := range m.bySrc {
		for j := range m.bySrc[i] {
			m.bySrc[i][j] = nil
		}
		m.bySrc[i] = m.bySrc[i][:0]
	}
	for i := range m.unbounded {
		m.unbounded[i] = nil
	}
	m.unbounded = m.unbounded[:0]
	for i := range m.nearScratch {
		m.nearScratch[i] = nil
	}
	m.nearScratch = m.nearScratch[:0]
	for f := range m.bandsTough {
		delete(m.bandsTough, f)
	}
	for k := range m.spill {
		delete(m.spill, k)
	}
	// Zero the link rows across their full capacity but keep the slabs:
	// the next cell re-fills the same memory. Slots beyond a row's length
	// were zeroed when last parked, so re-extension never exposes stale
	// link budgets. Under keepLinks the loss half (geometry + path loss)
	// survives instead, marked lossValid for link() to reuse; draws and
	// power memos are cleared unconditionally.
	for i := range m.rows {
		row := m.rows[i][:cap(m.rows[i])]
		for j := range row {
			if s := &row[j]; keepLinks && s.lossValid {
				*s = linkSlot{from: s.from, to: s.to, loss: s.loss, lossValid: true}
			} else {
				*s = linkSlot{}
			}
		}
		m.rows[i] = row[:0]
	}
	m.rows = m.rows[:0]
	// The rejection curve may change with the new options; drop its memo
	// rather than reason about curve identity. Repopulating costs a
	// handful of lookups per cell.
	for f := range m.rejDB {
		delete(m.rejDB, f)
	}
	m.epoch = 0
	m.nextTxID = 0
	m.dstats = DisseminationStats{}
	// Re-derive the option-dependent configuration exactly as New does.
	m.pathLoss = phy.DefaultPathLoss()
	m.rejection = phy.NewCC2420Rejection()
	m.fadingSigma = 2
	m.staticSigma = 3
	m.lossProvider = nil
	m.filterMode = filterAuto
	m.farBudgetDB = 0
	m.farProvider = nil
	m.spatial = false
	m.farUnitMW = 0
	m.farMaxCount = 0
	m.farN = 0
	m.farCullThresh = 0
	m.fadingRNG = m.kernel.Stream("medium.fading")
	m.staticRNG = m.kernel.Stream("medium.static")
	for _, o := range opts {
		o(m)
	}
	m.resolveFarField()
	if keepLinks && m.spatial != wasSpatial {
		// Rank-indexed and source-indexed rows are not interchangeable:
		// a mode flip invalidates every retained loss. Callers key
		// retention on (snapshot, budget) so this is purely defensive.
		for i := 0; i < cap(m.rows); i++ {
			row := m.rows[:cap(m.rows)][i]
			row = row[:cap(row)]
			for j := range row {
				row[j] = linkSlot{}
			}
		}
	}
	// Forced-on starts with a live (empty) index; auto stays dormant until
	// the population warrants it; forced-off never builds one.
	m.indexLive = m.filterMode == filterForceOn
}

// Rejection exposes the curve so radios share the exact same filter model.
func (m *Medium) Rejection() phy.RejectionCurve { return m.rejection }

// Attach registers a listener and returns its medium ID. A listener that
// implements InterestedListener is filed under its declared interest;
// anything else receives every event (ScopeAll), preserving the original
// notify-everyone contract.
func (m *Medium) Attach(l Listener) int {
	m.listeners = append(m.listeners, l)
	m.sums = append(m.sums, listenerSums{})
	// Re-extend into a parked (zeroed) row slab when one exists from a
	// previous cell on this medium; append a fresh row otherwise.
	if n := len(m.listeners); cap(m.rows) >= n {
		m.rows = m.rows[:n]
	} else {
		m.rows = append(m.rows, nil)
	}
	id := len(m.listeners) - 1
	if m.spatial {
		backed := m.farProvider.Backed(id, l.Position())
		m.farBacked = append(m.farBacked, backed)
		if !backed {
			m.unbackedIDs = insertID(m.unbackedIDs, id)
		}
	}
	m.registerInterest(id, l)
	return id
}

// Detach removes a listener from the medium: it receives no further
// OnAir/OffAir notifications and contributes nothing to power sums. Its ID
// is never reused. Detaching mid-transmission is safe — a transmission the
// listener originated stays on the air until its scheduled end (the energy
// is already radiated) but completes without notifying the departed
// listener. Detaching an unknown or already-detached ID is a no-op.
func (m *Medium) Detach(id int) {
	if id < 0 || id >= len(m.listeners) {
		return
	}
	m.dropInterest(id, m.interests[id])
	m.interests[id] = Interest{Scope: ScopeOwn} // pending interest dies with the listener
	m.listeners[id] = nil
	// Zero the departed listener's link row and its slots in every
	// in-flight transmission's fading cache: a detached listener measures
	// Silent, and a stale cached power must not survive to contradict
	// that. Slots where the departed node is the *source* (other
	// listeners' rows) stay — a transmission it originated may still be
	// on the air, and the remaining listeners must keep seeing the exact
	// same link budget (including the pair's shadowing draw) for the rest
	// of the flight.
	row := m.rows[id]
	for j := range row {
		row[j] = linkSlot{}
	}
	for _, tx := range m.active {
		if id < len(tx.perL) {
			tx.perL[id] = txListenerCache{}
		}
	}
	if m.spatial {
		m.farBacked[id] = false
		m.unbackedIDs = removeID(m.unbackedIDs, id)
	}
	// The departed listener now measures Silent where a cached sum holds
	// its old landscape; invalidate every cached sum.
	m.epoch++
}

// Moved invalidates the cached path loss of every link-budget row that
// touches the listener, for deployments whose nodes change position. The
// pair shadowing draws persist (they model the pair, not the geometry);
// per-transmission caches are untouched because a Transmission's Pos is
// frozen at Transmit time.
func (m *Medium) Moved(id int) {
	if id < 0 || id >= len(m.rows) {
		return
	}
	// Listener side: every slot in the moved node's own row.
	row := m.rows[id]
	for j := range row {
		if row[j].known {
			row[j].stale = true
		}
	}
	// Source side: the moved node's column in every other row. In folded
	// mode rows are rank-indexed, not source-indexed, so the column sweep
	// is skipped: link() revalidates recorded geometry against the caller's
	// live positions on every use, and the mover is additionally demoted to
	// unbacked — its future pairs route through the spill map and its power
	// sums through the exact full loop.
	if !m.spatial {
		for i := range m.rows {
			if r := m.rows[i]; id < len(r) && r[id].known {
				r[id].stale = true
			}
		}
	} else if id < len(m.farBacked) && m.farBacked[id] {
		m.farBacked[id] = false
		m.unbackedIDs = insertID(m.unbackedIDs, id)
	}
	// Defensive: cached sums of in-flight transmissions are actually
	// unaffected (their per-transmission powers are frozen), but a moved
	// node is rare and resumming is cheap, so force it rather than reason
	// about it.
	m.epoch++
}

// Attached reports whether the ID currently belongs to a live listener.
func (m *Medium) Attached(id int) bool {
	return id >= 0 && id < len(m.listeners) && m.listeners[id] != nil
}

// Transmit puts a frame on the air from listener src at the given power and
// channel. It returns the transmission handle; OffAir fires automatically
// when the airtime elapses.
//
// Ordering contract: listeners are notified of OnAir *before* the
// transmission joins the active set, and of OffAir *before* it leaves it.
// A receiver integrating interference over a reception therefore always
// sees the pre-change landscape when it closes the elapsed segment.
func (m *Medium) Transmit(src int, pos phy.Position, power phy.DBm, freq phy.MHz, f *frame.Frame) *Transmission {
	return m.TransmitShaped(src, pos, power, freq, 0, f)
}

// TransmitShaped is Transmit for wideband emitters: bandwidth is the
// occupied width of the signal (zero = narrowband 802.15.4).
func (m *Medium) TransmitShaped(src int, pos phy.Position, power phy.DBm, freq, bandwidth phy.MHz, f *frame.Frame) *Transmission {
	now := m.kernel.Now()
	tx := m.newTransmission()
	tx.ID = m.nextTxID
	tx.Src = src
	tx.Pos = pos
	tx.Power = power
	tx.Freq = freq
	tx.Bandwidth = bandwidth
	tx.Frame = f
	tx.Start = now
	tx.End = now + sim.FromDuration(f.Airtime())
	m.nextTxID++
	m.fanout(tx, false)
	tx.activeIdx = len(m.active)
	m.active = append(m.active, tx)
	if m.spatial {
		m.trackActive(tx)
	}
	m.epoch++ // after the OnAir fan-out: listeners sensing there see the pre-change landscape
	m.kernel.At(tx.End, func() { m.finish(tx) })
	return tx
}

// newTransmission takes a recycled Transmission off the free-list (resetting
// it and its zeroed perL slice) or allocates a fresh one. Deterministic LIFO:
// the medium is single-threaded by design.
func (m *Medium) newTransmission() *Transmission {
	n := len(m.txPool)
	if n == 0 {
		return &Transmission{activeIdx: -1}
	}
	tx := m.txPool[n-1]
	m.txPool[n-1] = nil
	m.txPool = m.txPool[:n-1]
	perL := tx.perL[:cap(tx.perL)]
	for i := range perL {
		perL[i] = txListenerCache{}
	}
	*tx = Transmission{perL: perL[:0], activeIdx: -1}
	return tx
}

// fanout delivers one OnAir (off=false) or OffAir (off=true) event. The
// filtered path precomputes the delivery set — listeners provably unable
// to observe the event are skipped — and walks it in ascending attach-ID
// order, the exact order the unfiltered loop visits. Listeners detached
// after the set was computed (a handler detaching a neighbour) are
// re-checked per delivery, as before. While the index is dormant (small
// cell, or filtering forced off) every listener is notified directly —
// the two paths are bit-identical by construction, so which one runs is
// purely a cost decision.
func (m *Medium) fanout(tx *Transmission, off bool) {
	m.dstats.Events++
	if !m.indexLive {
		for _, l := range m.listeners {
			if l == nil {
				continue // detached
			}
			m.dstats.Callbacks++
			if off {
				l.OffAir(tx)
			} else {
				l.OnAir(tx)
			}
		}
		return
	}
	ids := m.deliverySet(tx)
	for _, id := range ids {
		l := m.listeners[id]
		if l == nil {
			continue // detached
		}
		m.dstats.Callbacks++
		if off {
			l.OffAir(tx)
		} else {
			l.OnAir(tx)
		}
	}
	m.putIDScratch(ids)
}

func (m *Medium) finish(tx *Transmission) {
	m.fanout(tx, true)
	// Index-tracked swap-remove: O(1) instead of the old linear scan.
	// ID order of the slice is sacrificed; orderedActive restores it for
	// every power sum.
	if i := tx.activeIdx; i >= 0 && i < len(m.active) && m.active[i] == tx {
		last := len(m.active) - 1
		m.active[i] = m.active[last]
		m.active[i].activeIdx = i
		m.active[last] = nil
		m.active = m.active[:last]
		tx.activeIdx = -1
		if m.spatial {
			m.untrackActive(tx)
		}
		m.epoch++ // after the OffAir fan-out: receivers closing segments see tx still on the air
		// Park the transmission for reuse. Fields stay readable until the
		// object is actually reused — callers may still inspect Start/End
		// after the flight — and are reset in newTransmission.
		m.txPool = append(m.txPool, tx)
	}
}

// ActiveCount reports the number of transmissions currently on the air.
func (m *Medium) ActiveCount() int { return len(m.active) }

// RxPower returns the raw (pre-filter) received power of tx at listener l,
// including that pair's shadow-fading draw. The draw is made once per
// (transmission, listener) pair and reused, so CCA sensing and SINR
// integration observe a consistent channel.
func (m *Medium) RxPower(tx *Transmission, listenerID int) phy.DBm {
	l := m.listeners[listenerID]
	if l == nil {
		return phy.Silent // detached listener measures nothing
	}
	lb := m.link(tx.Src, listenerID, tx.Pos, l.Position())
	base := tx.Power - phy.DBm(lb.loss)
	return base + phy.DBm(lb.static) + phy.DBm(m.fade(tx, listenerID))
}

// Slot resolution is branch-open-coded in link and powerSlot rather than
// shared through a helper: a helper that can call spatialSlot is too big
// for the inliner, and the call it leaves behind costs dense-mode setup
// ~20% on whole-cell benchmarks. Dense mode indexes the listener's row by
// source ID; folded mode routes through the rank-indexed spatial layout
// (farfield.go), whose per-listener memory follows the snapshot's
// near-row length instead of the population.

// linkRow returns the listener's dense link row grown to cover src,
// re-extending into zeroed slab capacity when possible. Growth past the
// current listener count sizes for the whole population at once, so a
// power sum grows its listener's row exactly once.
func (m *Medium) linkRow(listenerID, src int) []linkSlot {
	row := m.rows[listenerID]
	if src < len(row) {
		return row
	}
	n := len(m.listeners)
	if src >= n {
		n = src + 1
	}
	if cap(row) >= n {
		row = row[:n]
	} else {
		grown := make([]linkSlot, n)
		copy(grown, row)
		row = grown
	}
	m.rows[listenerID] = row
	return row
}

// link returns the cached slot of the (src, listener) pair, filling its
// budget half on first use: the path loss for the current geometry plus
// the pair's one-time shadowing draw (drawn lazily, exactly when the
// first RxPower for the pair used to draw it). A stale or moved geometry
// recomputes the loss; the shadowing draw persists — it models the pair,
// not the path.
func (m *Medium) link(src, listenerID int, from, to phy.Position) *linkSlot {
	var s *linkSlot
	if m.spatial {
		s = m.spatialSlot(listenerID, src)
	} else {
		s = &m.linkRow(listenerID, src)[src]
	}
	if !s.known {
		// A lossValid slot carried its loss across ResetKeepLinks; reuse
		// it when the geometry still matches, else fall through to a
		// fresh lookup. The shadowing draw happens either way — first use
		// advances the static stream exactly like a fresh medium.
		if !s.lossValid || s.from != from || s.to != to {
			s.from, s.to = from, to
			s.loss = m.lookupLoss(src, listenerID, from, to)
			s.lossValid = true
		}
		if m.staticSigma != 0 {
			s.static = m.staticRNG.Gaussian(0, m.staticSigma)
		}
		s.known = true
		return s
	}
	if s.stale || s.from != from || s.to != to {
		s.from, s.to = from, to
		s.loss = m.lookupLoss(src, listenerID, from, to)
		s.stale = false
	}
	return s
}

// lookupLoss resolves the pair's path loss: from the installed provider's
// precomputed matrix when the pair and geometry match, else from the
// medium's own model. Providers guarantee bit-identical values for matched
// pairs, so the two sources are interchangeable.
func (m *Medium) lookupLoss(src, listenerID int, from, to phy.Position) float64 {
	if m.lossProvider != nil {
		if loss, ok := m.lossProvider.PairLoss(src, listenerID, from, to); ok {
			return loss
		}
	}
	return m.pathLoss.Loss(from.DistanceTo(to))
}

// slot returns tx's fading-cache slot for the listener, growing the table
// to the medium's current listener count on first touch. Recycled
// transmissions regrow into their previous (zeroed) capacity without
// allocating.
func (m *Medium) slot(tx *Transmission, listenerID int) *txListenerCache {
	if listenerID >= len(tx.perL) {
		n := len(m.listeners)
		if cap(tx.perL) >= n {
			tx.perL = tx.perL[:n]
		} else {
			grown := make([]txListenerCache, n)
			copy(grown, tx.perL)
			tx.perL = grown
		}
	}
	return &tx.perL[listenerID]
}

func (m *Medium) fade(tx *Transmission, listenerID int) float64 {
	if m.fadingSigma == 0 {
		return 0
	}
	s := m.slot(tx, listenerID)
	if !s.hasFade {
		s.fade = m.fadingRNG.Gaussian(0, m.fadingSigma)
		s.hasFade = true
	}
	return s.fade
}

// InChannelPower returns the portion of tx's energy that lands inside a
// receiver tuned to freq at listener l, i.e. RxPower reduced by the
// adjacent-channel rejection for the frequency offset.
func (m *Medium) InChannelPower(tx *Transmission, listenerID int, freq phy.MHz) phy.DBm {
	rx := m.RxPower(tx, listenerID)
	if tx.Bandwidth > 0 {
		// Wideband emitter: flat-PSD overlap model (an 802.15.4 receiver
		// window is ~2 MHz wide).
		return phy.WidebandInterference(m.rejection, rx, tx.Freq-freq, tx.Bandwidth, widebandRxWindowMHz)
	}
	if rx <= phy.Silent {
		return phy.Silent
	}
	return rx - phy.DBm(m.rejectionDB(tx.Freq-freq))
}

// rejectionDB memoizes the rejection curve per signed frequency offset; the
// curves in use are pure functions of the offset and a run only ever probes
// a handful of channel-pair offsets.
func (m *Medium) rejectionDB(deltaF phy.MHz) float64 {
	if v, ok := m.rejDB[deltaF]; ok {
		return v
	}
	v := m.rejection.RejectionDB(deltaF)
	m.rejDB[deltaF] = v
	return v
}

// powerSlot returns the listener's link slot for tx's source, rekeyed to
// tx: a slot whose mW caches belong to an earlier transmission from the
// same source is invalidated first. Rekeying is exact — the cached values
// are pure functions of frozen transmission state plus the
// transmission-pinned fading draw, so recomputing after turnover yields
// the same bits.
func (m *Medium) powerSlot(tx *Transmission, listenerID int) *linkSlot {
	var s *linkSlot
	if m.spatial {
		s = m.spatialSlot(listenerID, tx.Src)
	} else {
		s = &m.linkRow(listenerID, tx.Src)[tx.Src]
	}
	if s.txID != tx.ID {
		s.txID = tx.ID
		s.hasRx = false
		s.hasIn = false
	}
	return s
}

// inChannelMW returns InChannelPower in milliwatts, cached on the
// listener's link row per transmission. The cache keys on the receiver
// tuning because a radio can retune mid-flight (channel-hopping MACs).
func (m *Medium) inChannelMW(tx *Transmission, listenerID int, freq phy.MHz) float64 {
	s := m.powerSlot(tx, listenerID)
	if !s.hasIn || s.inFreq != freq {
		s.inMW = m.InChannelPower(tx, listenerID, freq).Milliwatts()
		s.inFreq = freq
		s.hasIn = true
	}
	return s.inMW
}

// rxMW returns RxPower in milliwatts, cached on the listener's link row
// per transmission.
func (m *Medium) rxMW(tx *Transmission, listenerID int) float64 {
	s := m.powerSlot(tx, listenerID)
	if !s.hasRx {
		s.rxMW = m.RxPower(tx, listenerID).Milliwatts()
		s.hasRx = true
	}
	return s.rxMW
}

// orderedActive returns the active set sorted by transmission ID, in a
// scratch slice reused across calls. finish's swap-remove leaves m.active
// unordered, but every floating-point power sum must run in ID order to
// stay deterministic; the insertion sort is cheap because the set is small
// and nearly sorted.
func (m *Medium) orderedActive() []*Transmission {
	if m.scratchValid && m.scratchEpoch == m.epoch {
		return m.scratch
	}
	s := append(m.scratch[:0], m.active...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	m.scratch = s
	m.scratchEpoch = m.epoch
	m.scratchValid = true
	return s
}

// SensedPower returns the total in-channel energy a receiver tuned to freq
// measures at listener l — the quantity the CCA and the RSSI register see.
// It includes the noise floor; exclude (may be nil) is omitted from the sum,
// which a transmitting radio uses to ignore its own signal.
//
// The sum is cached per listener and tuning, keyed by the on-air epoch:
// repeated samples between on-air changes — the CCA hot path — cost O(1).
// The cache is exact, not approximate: a hit can only occur after the
// identical ID-ordered loop already ran in the same epoch, so both the
// returned bits and the lazy fading/shadowing RNG draw order match the
// direct computation.
func (m *Medium) SensedPower(listenerID int, freq phy.MHz, exclude *Transmission) phy.DBm {
	if m.listeners[listenerID] == nil {
		return phy.Silent // detached listener measures nothing
	}
	if exclude != nil && exclude.Src != listenerID {
		// Excluding a foreign transmission changes the sum's composition
		// in a way the per-listener cache does not model; compute
		// directly. A radio ignoring its own signal (the common case,
		// exclude.Src == listenerID) skips the same set of transmissions
		// as exclude == nil, because the listener's own transmissions are
		// always skipped — the cached value is valid for both.
		return m.sensedPowerDirect(listenerID, freq, exclude)
	}
	c := &m.sums[listenerID].sensed
	if !c.valid || c.epoch != m.epoch || c.freq != freq {
		*c = sumCache{
			freq:  freq,
			epoch: m.epoch,
			dbm:   m.sensedPowerDirect(listenerID, freq, exclude),
			valid: true,
		}
	}
	return c.dbm
}

// sensedPowerDirect is the reference ID-ordered sum behind SensedPower.
// With the far-field fold active a backed listener sums only its near
// field (farfield.go); both paths visit their transmissions in ID order.
func (m *Medium) sensedPowerDirect(listenerID int, freq phy.MHz, exclude *Transmission) phy.DBm {
	if m.folded(listenerID) {
		return m.sensedPowerFolded(listenerID, freq, exclude)
	}
	total := noiseFloorMW
	for _, tx := range m.orderedActive() {
		if exclude != nil && tx.ID == exclude.ID {
			continue
		}
		if tx.Src == listenerID {
			continue
		}
		total += m.inChannelMW(tx, listenerID, freq)
	}
	return phy.FromMilliwatts(total)
}

// SensedCoChannelPower returns only the co-channel portion of the sensed
// energy at listener l: transmissions on exactly the listener's center
// frequency, plus the noise floor. Real CC2420 hardware cannot measure
// this quantity — its energy detector integrates the whole filter
// bandwidth — so this accessor exists for the oracle CCA policy that
// quantifies the paper's Section VII-C future-work upper bound.
// Cached per (listener, tuning, epoch) exactly like SensedPower.
func (m *Medium) SensedCoChannelPower(listenerID int, freq phy.MHz, exclude *Transmission) phy.DBm {
	if m.listeners[listenerID] == nil {
		return phy.Silent // detached listener measures nothing
	}
	if exclude != nil && exclude.Src != listenerID {
		return m.sensedCoChannelDirect(listenerID, freq, exclude)
	}
	c := &m.sums[listenerID].coch
	if !c.valid || c.epoch != m.epoch || c.freq != freq {
		*c = sumCache{
			freq:  freq,
			epoch: m.epoch,
			dbm:   m.sensedCoChannelDirect(listenerID, freq, exclude),
			valid: true,
		}
	}
	return c.dbm
}

// sensedCoChannelDirect is the reference ID-ordered sum behind
// SensedCoChannelPower.
func (m *Medium) sensedCoChannelDirect(listenerID int, freq phy.MHz, exclude *Transmission) phy.DBm {
	if m.folded(listenerID) {
		return m.sensedCoChannelFolded(listenerID, freq, exclude)
	}
	total := noiseFloorMW
	for _, tx := range m.orderedActive() {
		if exclude != nil && tx.ID == exclude.ID {
			continue
		}
		if tx.Src == listenerID || tx.Freq != freq {
			continue
		}
		total += m.rxMW(tx, listenerID)
	}
	return phy.FromMilliwatts(total)
}

// Interference returns the combined in-channel interference (excluding the
// noise floor and the wanted transmission itself) a receiver locked to
// wanted experiences at listener l. Cached per (listener, tuning, wanted,
// epoch) — a receiver repeatedly probing the landscape around one locked
// frame between on-air changes pays the loop once.
func (m *Medium) Interference(wanted *Transmission, listenerID int, freq phy.MHz) phy.DBm {
	c := &m.sums[listenerID].interf
	if !c.valid || c.epoch != m.epoch || c.freq != freq || c.wanted != wanted.ID {
		*c = interfCache{
			freq:   freq,
			wanted: wanted.ID,
			epoch:  m.epoch,
			dbm:    m.interferenceDirect(wanted, listenerID, freq),
			valid:  true,
		}
	}
	return c.dbm
}

// interferenceDirect is the reference ID-ordered sum behind Interference.
func (m *Medium) interferenceDirect(wanted *Transmission, listenerID int, freq phy.MHz) phy.DBm {
	if m.folded(listenerID) {
		return m.interferenceFolded(wanted, listenerID, freq)
	}
	total := 0.0
	for _, tx := range m.orderedActive() {
		if tx.ID == wanted.ID || tx.Src == listenerID {
			continue
		}
		total += m.inChannelMW(tx, listenerID, freq)
	}
	return phy.FromMilliwatts(total)
}
