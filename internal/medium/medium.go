// Package medium models the shared wireless medium: it tracks every
// in-flight transmission, computes received and sensed power at any
// listener (applying path loss, per-pair shadow fading and the receiver's
// adjacent-channel rejection), and notifies listeners of on-air events so
// they can integrate interference over a reception.
package medium

import (
	"nonortho/internal/frame"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// Listener is anything attached to the medium — typically a radio. The
// medium calls OnAir/OffAir for every transmission in the world, including
// the listener's own (compare Transmission.Src with the listener's ID).
type Listener interface {
	// Position locates the listener's antenna.
	Position() phy.Position
	// OnAir is invoked when a transmission begins anywhere on the medium.
	OnAir(tx *Transmission)
	// OffAir is invoked when that transmission completes.
	OffAir(tx *Transmission)
}

// Transmission is a frame in flight.
type Transmission struct {
	// ID is unique per medium instance.
	ID uint64
	// Src identifies the transmitting listener (medium attach ID).
	Src int
	// Pos is the transmitter's antenna position.
	Pos phy.Position
	// Power is the transmit power.
	Power phy.DBm
	// Freq is the channel center frequency.
	Freq phy.MHz
	// Bandwidth is the occupied bandwidth for wideband emitters (e.g.
	// 22 MHz for 802.11b). Zero means a narrowband 802.15.4 signal whose
	// off-channel leakage follows the medium's rejection curve directly.
	Bandwidth phy.MHz
	// Frame is the MAC frame being sent.
	Frame *frame.Frame
	// Start and End bound the on-air interval.
	Start, End sim.Time

	// perL caches per-listener quantities that are constant for the
	// lifetime of the transmission (fading draw, received and in-channel
	// power in milliwatts), indexed by listener ID. Lazily sized; dies
	// with the transmission.
	perL []txListenerCache
}

// txListenerCache holds one listener's memoized view of a transmission.
// Everything here is a pure function of state frozen at Transmit time
// (positions, powers, frequencies, the per-pair fading draws), so caching
// is exact: the cached value is bit-identical to recomputation.
type txListenerCache struct {
	fade    float64 // per-transmission fading draw, dB
	rxMW    float64 // RxPower in milliwatts
	inMW    float64 // InChannelPower at inFreq, in milliwatts
	inFreq  phy.MHz // receiver tuning inMW was computed for
	hasFade bool
	hasRx   bool
	hasIn   bool
}

// Option configures a Medium.
type Option func(*Medium)

// WithPathLoss overrides the propagation model.
func WithPathLoss(m phy.PathLossModel) Option {
	return func(md *Medium) { md.pathLoss = m }
}

// WithRejection overrides the adjacent-channel rejection curve.
func WithRejection(c phy.RejectionCurve) Option {
	return func(md *Medium) { md.rejection = c }
}

// WithFadingSigma sets the per-transmission fading jitter standard
// deviation in dB: the small temporal RSSI variation a static link shows
// packet to packet. Zero disables it.
func WithFadingSigma(sigma float64) Option {
	return func(md *Medium) { md.fadingSigma = sigma }
}

// WithStaticFadingSigma sets the per-(transmitter, listener) lognormal
// shadowing standard deviation in dB: a draw made once per ordered node
// pair that persists for the whole run, modelling obstacles and multipath
// of a fixed deployment. Zero disables it.
func WithStaticFadingSigma(sigma float64) Option {
	return func(md *Medium) { md.staticSigma = sigma }
}

// Medium is the shared channel. Not safe for concurrent use: the simulation
// is single-threaded by design.
type Medium struct {
	kernel      *sim.Kernel
	pathLoss    phy.PathLossModel
	rejection   phy.RejectionCurve
	fadingSigma float64
	staticSigma float64
	fadingRNG   *sim.RNG
	staticRNG   *sim.RNG

	listeners []Listener
	// active holds in-flight transmissions ordered by ID, so that
	// floating-point power sums are always evaluated in the same order —
	// a map here would make runs non-deterministic.
	active []*Transmission
	// links caches the per-(src, listener) link budget: the path-loss dB
	// for the pair's geometry plus its persistent shadowing draw.
	// Invalidated when either endpoint detaches or moves.
	links map[linkKey]*linkBudget
	// rejDB caches the rejection curve per signed frequency offset — the
	// set of channel-pair offsets in a run is tiny and fixed.
	rejDB    map[phy.MHz]float64
	nextTxID uint64
}

type linkKey struct {
	src      int
	listener int
}

// linkBudget is the cached static portion of a (src, listener) link: path
// loss for the recorded geometry and the pair's one-time shadowing draw.
// The positions are kept so a moved endpoint invalidates the loss while
// the shadowing draw — a property of the pair, as before — persists.
type linkBudget struct {
	from, to phy.Position
	loss     float64 // path loss, dB
	static   float64 // persistent shadowing draw, dB
	stale    bool    // set by Moved; forces a loss recompute on next use
}

// noiseFloorMW is phy.NoiseFloor converted once; the CCA hot path adds it
// on every sample.
var noiseFloorMW = phy.NoiseFloor.Milliwatts()

// New creates a medium bound to the kernel. Defaults: indoor log-distance
// path loss, the calibrated CC2420 rejection curve, 3 dB static per-link
// shadowing and 2 dB per-transmission jitter (the combination that
// reproduces the paper's CPRR spread while keeping RSSI stable enough for
// min-tracking, as on real motes).
func New(k *sim.Kernel, opts ...Option) *Medium {
	m := &Medium{
		kernel:      k,
		pathLoss:    phy.DefaultPathLoss(),
		rejection:   phy.NewCC2420Rejection(),
		fadingSigma: 2,
		staticSigma: 3,
		fadingRNG:   k.Stream("medium.fading"),
		staticRNG:   k.Stream("medium.static"),
		links:       make(map[linkKey]*linkBudget),
		rejDB:       make(map[phy.MHz]float64),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Rejection exposes the curve so radios share the exact same filter model.
func (m *Medium) Rejection() phy.RejectionCurve { return m.rejection }

// Attach registers a listener and returns its medium ID.
func (m *Medium) Attach(l Listener) int {
	m.listeners = append(m.listeners, l)
	return len(m.listeners) - 1
}

// Detach removes a listener from the medium: it receives no further
// OnAir/OffAir notifications and contributes nothing to power sums. Its ID
// is never reused. Detaching mid-transmission is safe — a transmission the
// listener originated stays on the air until its scheduled end (the energy
// is already radiated) but completes without notifying the departed
// listener. Detaching an unknown or already-detached ID is a no-op.
func (m *Medium) Detach(id int) {
	if id < 0 || id >= len(m.listeners) {
		return
	}
	m.listeners[id] = nil
	// Drop the departed listener's cached link-budget rows and its slots
	// in every in-flight transmission's per-listener cache: a detached
	// listener measures Silent, and a stale cached power must not survive
	// to contradict that. Rows where the departed node is the *source*
	// stay — a transmission it originated may still be on the air, and the
	// remaining listeners must keep seeing the exact same link budget
	// (including the pair's shadowing draw) for the rest of the flight.
	for key := range m.links {
		if key.listener == id {
			delete(m.links, key)
		}
	}
	for _, tx := range m.active {
		if id < len(tx.perL) {
			tx.perL[id] = txListenerCache{}
		}
	}
}

// Moved invalidates the cached path loss of every link-budget row that
// touches the listener, for deployments whose nodes change position. The
// pair shadowing draws persist (they model the pair, not the geometry);
// per-transmission caches are untouched because a Transmission's Pos is
// frozen at Transmit time.
func (m *Medium) Moved(id int) {
	for key, lb := range m.links {
		if key.listener == id || key.src == id {
			lb.stale = true
		}
	}
}

// Attached reports whether the ID currently belongs to a live listener.
func (m *Medium) Attached(id int) bool {
	return id >= 0 && id < len(m.listeners) && m.listeners[id] != nil
}

// Transmit puts a frame on the air from listener src at the given power and
// channel. It returns the transmission handle; OffAir fires automatically
// when the airtime elapses.
//
// Ordering contract: listeners are notified of OnAir *before* the
// transmission joins the active set, and of OffAir *before* it leaves it.
// A receiver integrating interference over a reception therefore always
// sees the pre-change landscape when it closes the elapsed segment.
func (m *Medium) Transmit(src int, pos phy.Position, power phy.DBm, freq phy.MHz, f *frame.Frame) *Transmission {
	return m.TransmitShaped(src, pos, power, freq, 0, f)
}

// TransmitShaped is Transmit for wideband emitters: bandwidth is the
// occupied width of the signal (zero = narrowband 802.15.4).
func (m *Medium) TransmitShaped(src int, pos phy.Position, power phy.DBm, freq, bandwidth phy.MHz, f *frame.Frame) *Transmission {
	now := m.kernel.Now()
	tx := &Transmission{
		ID:        m.nextTxID,
		Src:       src,
		Pos:       pos,
		Power:     power,
		Freq:      freq,
		Bandwidth: bandwidth,
		Frame:     f,
		Start:     now,
		End:       now + sim.FromDuration(f.Airtime()),
	}
	m.nextTxID++
	for _, l := range m.listeners {
		if l == nil {
			continue // detached
		}
		l.OnAir(tx)
	}
	m.active = append(m.active, tx)
	m.kernel.At(tx.End, func() { m.finish(tx) })
	return tx
}

func (m *Medium) finish(tx *Transmission) {
	for _, l := range m.listeners {
		if l == nil {
			continue // detached
		}
		l.OffAir(tx)
	}
	for i, a := range m.active {
		if a.ID == tx.ID {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	// The per-listener cache (fading draws included) is carried by the
	// Transmission itself and dies with it — nothing to clean up here.
}

// ActiveCount reports the number of transmissions currently on the air.
func (m *Medium) ActiveCount() int { return len(m.active) }

// RxPower returns the raw (pre-filter) received power of tx at listener l,
// including that pair's shadow-fading draw. The draw is made once per
// (transmission, listener) pair and reused, so CCA sensing and SINR
// integration observe a consistent channel.
func (m *Medium) RxPower(tx *Transmission, listenerID int) phy.DBm {
	l := m.listeners[listenerID]
	if l == nil {
		return phy.Silent // detached listener measures nothing
	}
	lb := m.link(tx.Src, listenerID, tx.Pos, l.Position())
	base := tx.Power - phy.DBm(lb.loss)
	return base + phy.DBm(lb.static) + phy.DBm(m.fade(tx, listenerID))
}

// link returns the cached budget of the (src, listener) pair, creating it
// on first use: the path loss for the current geometry plus the pair's
// one-time shadowing draw (drawn lazily, exactly when the first RxPower
// for the pair used to draw it). A stale or moved geometry recomputes the
// loss; the shadowing draw persists — it models the pair, not the path.
func (m *Medium) link(src, listenerID int, from, to phy.Position) *linkBudget {
	key := linkKey{src: src, listener: listenerID}
	lb, ok := m.links[key]
	if !ok {
		lb = &linkBudget{from: from, to: to, loss: m.pathLoss.Loss(from.DistanceTo(to))}
		if m.staticSigma != 0 {
			lb.static = m.staticRNG.Gaussian(0, m.staticSigma)
		}
		m.links[key] = lb
		return lb
	}
	if lb.stale || lb.from != from || lb.to != to {
		lb.from, lb.to = from, to
		lb.loss = m.pathLoss.Loss(from.DistanceTo(to))
		lb.stale = false
	}
	return lb
}

// slot returns tx's cache slot for the listener, growing the table to the
// medium's current listener count on first touch.
func (m *Medium) slot(tx *Transmission, listenerID int) *txListenerCache {
	if listenerID >= len(tx.perL) {
		grown := make([]txListenerCache, len(m.listeners))
		copy(grown, tx.perL)
		tx.perL = grown
	}
	return &tx.perL[listenerID]
}

func (m *Medium) fade(tx *Transmission, listenerID int) float64 {
	if m.fadingSigma == 0 {
		return 0
	}
	s := m.slot(tx, listenerID)
	if !s.hasFade {
		s.fade = m.fadingRNG.Gaussian(0, m.fadingSigma)
		s.hasFade = true
	}
	return s.fade
}

// InChannelPower returns the portion of tx's energy that lands inside a
// receiver tuned to freq at listener l, i.e. RxPower reduced by the
// adjacent-channel rejection for the frequency offset.
func (m *Medium) InChannelPower(tx *Transmission, listenerID int, freq phy.MHz) phy.DBm {
	rx := m.RxPower(tx, listenerID)
	if tx.Bandwidth > 0 {
		// Wideband emitter: flat-PSD overlap model (an 802.15.4 receiver
		// window is ~2 MHz wide).
		return phy.WidebandInterference(m.rejection, rx, tx.Freq-freq, tx.Bandwidth, 2)
	}
	if rx <= phy.Silent {
		return phy.Silent
	}
	return rx - phy.DBm(m.rejectionDB(tx.Freq-freq))
}

// rejectionDB memoizes the rejection curve per signed frequency offset; the
// curves in use are pure functions of the offset and a run only ever probes
// a handful of channel-pair offsets.
func (m *Medium) rejectionDB(deltaF phy.MHz) float64 {
	if v, ok := m.rejDB[deltaF]; ok {
		return v
	}
	v := m.rejection.RejectionDB(deltaF)
	m.rejDB[deltaF] = v
	return v
}

// inChannelMW returns InChannelPower in milliwatts, cached on the
// transmission per listener. The cache keys on the receiver tuning because
// a radio can retune mid-flight (channel-hopping MACs).
func (m *Medium) inChannelMW(tx *Transmission, listenerID int, freq phy.MHz) float64 {
	s := m.slot(tx, listenerID)
	if !s.hasIn || s.inFreq != freq {
		s.inMW = m.InChannelPower(tx, listenerID, freq).Milliwatts()
		s.inFreq = freq
		s.hasIn = true
	}
	return s.inMW
}

// rxMW returns RxPower in milliwatts, cached on the transmission per
// listener.
func (m *Medium) rxMW(tx *Transmission, listenerID int) float64 {
	s := m.slot(tx, listenerID)
	if !s.hasRx {
		s.rxMW = m.RxPower(tx, listenerID).Milliwatts()
		s.hasRx = true
	}
	return s.rxMW
}

// SensedPower returns the total in-channel energy a receiver tuned to freq
// measures at listener l — the quantity the CCA and the RSSI register see.
// It includes the noise floor; exclude (may be nil) is omitted from the sum,
// which a transmitting radio uses to ignore its own signal.
func (m *Medium) SensedPower(listenerID int, freq phy.MHz, exclude *Transmission) phy.DBm {
	if m.listeners[listenerID] == nil {
		return phy.Silent // detached listener measures nothing
	}
	total := noiseFloorMW
	for _, tx := range m.active {
		if exclude != nil && tx.ID == exclude.ID {
			continue
		}
		if tx.Src == listenerID {
			continue
		}
		total += m.inChannelMW(tx, listenerID, freq)
	}
	return phy.FromMilliwatts(total)
}

// SensedCoChannelPower returns only the co-channel portion of the sensed
// energy at listener l: transmissions on exactly the listener's center
// frequency, plus the noise floor. Real CC2420 hardware cannot measure
// this quantity — its energy detector integrates the whole filter
// bandwidth — so this accessor exists for the oracle CCA policy that
// quantifies the paper's Section VII-C future-work upper bound.
func (m *Medium) SensedCoChannelPower(listenerID int, freq phy.MHz, exclude *Transmission) phy.DBm {
	if m.listeners[listenerID] == nil {
		return phy.Silent // detached listener measures nothing
	}
	total := noiseFloorMW
	for _, tx := range m.active {
		if exclude != nil && tx.ID == exclude.ID {
			continue
		}
		if tx.Src == listenerID || tx.Freq != freq {
			continue
		}
		total += m.rxMW(tx, listenerID)
	}
	return phy.FromMilliwatts(total)
}

// Interference returns the combined in-channel interference (excluding the
// noise floor and the wanted transmission itself) a receiver locked to
// wanted experiences at listener l.
func (m *Medium) Interference(wanted *Transmission, listenerID int, freq phy.MHz) phy.DBm {
	total := 0.0
	for _, tx := range m.active {
		if tx.ID == wanted.ID || tx.Src == listenerID {
			continue
		}
		total += m.inChannelMW(tx, listenerID, freq)
	}
	return phy.FromMilliwatts(total)
}
