package medium

import (
	"testing"

	"nonortho/internal/frame"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// interestProbe is a listener with a declared band interest that counts
// its deliveries.
type interestProbe struct {
	pos           phy.Position
	in            Interest
	onAir, offAir int
}

func (p *interestProbe) Position() phy.Position  { return p.pos }
func (p *interestProbe) OnAir(tx *Transmission)  { p.onAir++ }
func (p *interestProbe) OffAir(tx *Transmission) { p.offAir++ }
func (p *interestProbe) Interest() Interest      { return p.in }

// TestRetuneWhileOnAir pins the frozen-delivery-set contract: a listener
// that retunes while a transmission is in flight keeps the OnAir it
// already received, and the OffAir fan-out is computed against the index
// as it stands at finish time — the listener now tuned to the
// transmission's band gets the OffAir, the one that left does not.
func TestRetuneWhileOnAir(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, WithInterestFilter(true))

	src := &interestProbe{in: Interest{Scope: ScopeOwn}}
	onA := &interestProbe{pos: phy.Position{X: 1}, in: Interest{Scope: ScopeBand, Band: 2460}}
	onB := &interestProbe{pos: phy.Position{X: 2}, in: Interest{Scope: ScopeBand, Band: 2470}}
	srcID := m.Attach(src)
	aID := m.Attach(onA)
	bID := m.Attach(onB)

	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 16)}
	m.Transmit(srcID, src.pos, 0, 2460, f)
	if onA.onAir != 1 || onB.onAir != 0 {
		t.Fatalf("OnAir delivery: onA=%d onB=%d, want 1, 0", onA.onAir, onB.onAir)
	}

	// Swap the two listeners' bands mid-air.
	onA.in = Interest{Scope: ScopeBand, Band: 2470}
	m.SetInterest(aID, onA.in)
	onB.in = Interest{Scope: ScopeBand, Band: 2460}
	m.SetInterest(bID, onB.in)

	k.Run() // the transmission finishes
	if onA.offAir != 0 {
		t.Errorf("onA retuned away but still got %d OffAir(s)", onA.offAir)
	}
	if onB.offAir != 1 {
		t.Errorf("onB retuned onto the band but got %d OffAir(s), want 1", onB.offAir)
	}
	if src.onAir != 1 || src.offAir != 1 {
		t.Errorf("source must always be in its own delivery set: onAir=%d offAir=%d", src.onAir, src.offAir)
	}

	// The index reflects the final interests: a second transmission goes
	// to onB only.
	m.Transmit(srcID, src.pos, 0, 2460, f)
	k.Run()
	if onA.onAir != 1 || onB.onAir != 1 {
		t.Errorf("post-retune delivery: onA=%d onB=%d, want 1, 1", onA.onAir, onB.onAir)
	}
}

// TestDetachWithPendingInterest detaches a band-interested listener while
// a transmission on its band is still in flight: the finish fan-out must
// skip it without touching it, its bucket entry must be gone, and a
// late SetInterest for the dead ID must be a no-op instead of resurrecting
// it in the index.
func TestDetachWithPendingInterest(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, WithInterestFilter(true))

	src := &interestProbe{in: Interest{Scope: ScopeOwn}}
	lis := &interestProbe{pos: phy.Position{X: 1}, in: Interest{Scope: ScopeBand, Band: 2460, Floor: phy.Sensitivity}}
	srcID := m.Attach(src)
	lisID := m.Attach(lis)

	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 16)}
	m.Transmit(srcID, src.pos, 0, 2460, f)
	if lis.onAir != 1 {
		t.Fatalf("listener got %d OnAir(s), want 1", lis.onAir)
	}

	m.Detach(lisID)
	if got := len(m.bands[2460]); got != 0 {
		t.Fatalf("band bucket still holds %d entries after Detach", got)
	}

	// A stale retune for the detached ID must not re-enter the index.
	m.SetInterest(lisID, Interest{Scope: ScopeBand, Band: 2460})
	if got := len(m.bands[2460]); got != 0 {
		t.Fatalf("SetInterest on detached ID re-entered the index (%d entries)", got)
	}

	k.Run() // finish the pending transmission
	if lis.offAir != 0 {
		t.Errorf("detached listener received %d OffAir(s)", lis.offAir)
	}
	if src.offAir != 1 {
		t.Errorf("source OffAir=%d, want 1", src.offAir)
	}

	// The slot can be reused by a new attach without inheriting the dead
	// listener's interest.
	fresh := &interestProbe{pos: phy.Position{X: 3}, in: Interest{Scope: ScopeBand, Band: 2470}}
	freshID := m.Attach(fresh)
	m.Transmit(srcID, src.pos, 0, 2470, f)
	k.Run()
	if fresh.onAir != 1 {
		t.Errorf("reattached listener (id %d) got %d OnAir(s), want 1", freshID, fresh.onAir)
	}
}

// TestAutoIndexEngagesAtThreshold pins the default (auto) engagement
// policy: the interest index stays dormant — empty buckets, plain
// notify-everyone fan-out — until indexMinListeners listeners attach,
// then comes live with every earlier listener's recorded interest filed,
// and stays live as the population shrinks again.
func TestAutoIndexEngagesAtThreshold(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k) // default: auto mode
	ids := make([]int, 0, indexMinListeners)
	for i := 0; i < indexMinListeners-1; i++ {
		p := &interestProbe{pos: phy.Position{X: float64(i)}, in: Interest{Scope: ScopeBand, Band: 2460}}
		ids = append(ids, m.Attach(p))
	}
	if m.indexLive || len(m.bands) != 0 {
		t.Fatalf("index live with %d listeners (buckets: %d); want dormant below %d",
			indexMinListeners-1, len(m.bands), indexMinListeners)
	}

	// A retune while dormant must still be recorded, so the build below
	// files the listener under its latest interest, not its attach-time one.
	m.SetInterest(ids[0], Interest{Scope: ScopeBand, Band: 2470})

	last := m.Attach(&interestProbe{pos: phy.Position{Y: 1}, in: Interest{Scope: ScopeBand, Band: 2460}})
	if !m.indexLive {
		t.Fatalf("index still dormant after listener %d of %d", last+1, indexMinListeners)
	}
	if got := len(m.bands[2460]); got != indexMinListeners-1 {
		t.Errorf("band 2460 bucket holds %d listeners, want %d", got, indexMinListeners-1)
	}
	if got := len(m.bands[2470]); got != 1 {
		t.Errorf("band 2470 bucket holds %d listeners, want 1 (the pre-build retune)", got)
	}

	m.Detach(last)
	if !m.indexLive {
		t.Error("index torn down by a detach; it should stay live once built")
	}
	if got := len(m.bands[2460]); got != indexMinListeners-2 {
		t.Errorf("band 2460 bucket holds %d listeners after detach, want %d", got, indexMinListeners-2)
	}
}

// TestWidebandDeliverySpansBands checks that a shaped (wideband)
// transmission reaches every band bucket its occupied bandwidth plus the
// receiver guard overlaps, exactly once, regardless of map iteration
// order.
func TestWidebandDeliverySpansBands(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, WithInterestFilter(true))

	src := &interestProbe{in: Interest{Scope: ScopeOwn}}
	srcID := m.Attach(src)
	probes := make([]*interestProbe, 0, 8)
	for i := 0; i < 8; i++ {
		p := &interestProbe{
			pos: phy.Position{X: float64(i + 1)},
			in:  Interest{Scope: ScopeBand, Band: 2405 + phy.MHz(10*i)}, // 2405..2475
		}
		probes = append(probes, p)
		m.Attach(p)
	}

	// A 22 MHz Wi-Fi-style emission at 2437: with the ±2 MHz guard it
	// spans [2424, 2450] — buckets 2425, 2435, 2445 (probes 2..4).
	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 16)}
	m.TransmitShaped(srcID, src.pos, 15, 2437, 22, f)
	k.Run()
	for i, p := range probes {
		want := 0
		if i >= 2 && i <= 4 {
			want = 1
		}
		if p.onAir != want || p.offAir != want {
			t.Errorf("band %v: OnAir=%d OffAir=%d, want %d each",
				p.in.Band, p.onAir, p.offAir, want)
		}
	}
	if src.onAir != 1 || src.offAir != 1 {
		t.Errorf("source deliveries: OnAir=%d OffAir=%d, want 1 each", src.onAir, src.offAir)
	}
}
