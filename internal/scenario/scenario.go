// Package scenario loads experiment descriptions from JSON, so a
// downstream user can define custom deployments — node positions, powers,
// channels, schemes, traffic — without writing Go. The schema maps 1:1
// onto the testbed API.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"nonortho/internal/dcn"
	"nonortho/internal/net80211"
	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// Node is one mote in the scenario file.
type Node struct {
	// X and Y are the position in meters.
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// PowerDBm is the transmit power (0 is a valid setting: CC2420 max).
	PowerDBm float64 `json:"powerDBm"`
}

// Network is one channel's worth of nodes.
type Network struct {
	// Name labels the network in reports (optional).
	Name string `json:"name,omitempty"`
	// FreqMHz is the channel center frequency.
	FreqMHz float64 `json:"freqMHz"`
	// Scheme is "fixed" (default), "dcn", "no-cs" or "oracle".
	Scheme string `json:"scheme,omitempty"`
	// CCAThresholdDBm overrides the -77 dBm default for fixed CCA.
	CCAThresholdDBm float64 `json:"ccaThresholdDBm,omitempty"`
	// PayloadBytes overrides the default MSDU size.
	PayloadBytes int `json:"payloadBytes,omitempty"`
	// PeriodMillis spaces transmissions; 0 means saturated traffic.
	PeriodMillis int `json:"periodMillis,omitempty"`
	// Sink receives; Senders transmit to it.
	Sink    Node   `json:"sink"`
	Senders []Node `json:"senders"`
}

// Scenario is the root document.
type Scenario struct {
	// Name labels the scenario.
	Name string `json:"name"`
	// Seed drives all randomness (default 1).
	Seed int64 `json:"seed,omitempty"`
	// WarmupMillis and MeasureMillis bound the run (defaults 3000/8000).
	WarmupMillis  int `json:"warmupMillis,omitempty"`
	MeasureMillis int `json:"measureMillis,omitempty"`
	// PayloadBytes is the default MSDU size (default 64).
	PayloadBytes int `json:"payloadBytes,omitempty"`
	// FadingSigmaDB and StaticFadingSigmaDB override the channel model
	// (defaults 2 and 3; -1 disables).
	FadingSigmaDB       float64 `json:"fadingSigmaDB,omitempty"`
	StaticFadingSigmaDB float64 `json:"staticFadingSigmaDB,omitempty"`
	// Networks to instantiate.
	Networks []Network `json:"networks"`
	// WiFi optionally adds bursty 802.11 interferers over the band.
	WiFi []WiFiInterferer `json:"wifi,omitempty"`
}

// WiFiInterferer describes a wideband 802.11 cell for coexistence
// scenarios.
type WiFiInterferer struct {
	// Channel is the 802.11b channel number (1-11).
	Channel int `json:"channel"`
	// X, Y position the access point.
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// PowerDBm is the transmit power (default 15).
	PowerDBm float64 `json:"powerDBm,omitempty"`
	// BusyMillis and IdleMillis shape the duty cycle (defaults 20/20).
	BusyMillis int `json:"busyMillis,omitempty"`
	IdleMillis int `json:"idleMillis,omitempty"`
}

// Load parses a scenario document.
func Load(r io.Reader) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadFile parses a scenario from disk.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Validate checks the document for structural errors.
func (s *Scenario) Validate() error {
	if len(s.Networks) == 0 {
		return fmt.Errorf("scenario %q: no networks", s.Name)
	}
	for i, w := range s.WiFi {
		if w.Channel < 1 || w.Channel > 11 {
			return fmt.Errorf("scenario %q: wifi %d: channel %d outside 1..11",
				s.Name, i, w.Channel)
		}
		if w.BusyMillis < 0 || w.IdleMillis < 0 {
			return fmt.Errorf("scenario %q: wifi %d: negative duty period", s.Name, i)
		}
	}
	for i, n := range s.Networks {
		if n.FreqMHz < 2400 || n.FreqMHz > 2500 {
			return fmt.Errorf("scenario %q: network %d: freqMHz %v outside the 2.4 GHz band",
				s.Name, i, n.FreqMHz)
		}
		if len(n.Senders) == 0 {
			return fmt.Errorf("scenario %q: network %d: no senders", s.Name, i)
		}
		switch n.Scheme {
		case "", "fixed", "dcn", "no-cs", "oracle":
		default:
			return fmt.Errorf("scenario %q: network %d: unknown scheme %q",
				s.Name, i, n.Scheme)
		}
		if n.PeriodMillis < 0 {
			return fmt.Errorf("scenario %q: network %d: negative period", s.Name, i)
		}
		if n.PayloadBytes < 0 || n.PayloadBytes > 116 {
			return fmt.Errorf("scenario %q: network %d: payload %d outside 0..116",
				s.Name, i, n.PayloadBytes)
		}
	}
	return nil
}

// Result reports one network's measured outcome.
type Result struct {
	Name       string
	FreqMHz    float64
	Throughput float64
	PRR        float64
	Sent       int
	Received   int
}

// Run builds the testbed, executes the scenario, and reports per-network
// results plus the overall throughput.
func (s *Scenario) Run() ([]Result, float64, error) {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	warmup := time.Duration(s.WarmupMillis) * time.Millisecond
	if s.WarmupMillis == 0 {
		warmup = 3 * time.Second
	}
	measure := time.Duration(s.MeasureMillis) * time.Millisecond
	if s.MeasureMillis == 0 {
		measure = 8 * time.Second
	}

	tb := testbed.New(testbed.Options{
		Seed:              seed,
		Payload:           s.PayloadBytes,
		FadingSigma:       s.FadingSigmaDB,
		StaticFadingSigma: s.StaticFadingSigmaDB,
	})
	var networks []*testbed.Network
	for _, n := range s.Networks {
		spec := topology.NetworkSpec{
			Freq: phy.MHz(n.FreqMHz),
			Sink: topology.NodeSpec{
				Pos:     phy.Position{X: n.Sink.X, Y: n.Sink.Y},
				TxPower: phy.DBm(n.Sink.PowerDBm),
			},
		}
		for _, nd := range n.Senders {
			spec.Senders = append(spec.Senders, topology.NodeSpec{
				Pos:     phy.Position{X: nd.X, Y: nd.Y},
				TxPower: phy.DBm(nd.PowerDBm),
			})
		}
		cfg := testbed.NetworkConfig{
			CCAThreshold: phy.DBm(n.CCAThresholdDBm),
			Payload:      n.PayloadBytes,
			Period:       time.Duration(n.PeriodMillis) * time.Millisecond,
			DCN:          dcn.Config{},
		}
		switch n.Scheme {
		case "dcn":
			cfg.Scheme = testbed.SchemeDCN
		case "no-cs":
			cfg.Scheme = testbed.SchemeNoCarrierSense
		case "oracle":
			cfg.Scheme = testbed.SchemeOracle
		default:
			cfg.Scheme = testbed.SchemeFixed
		}
		networks = append(networks, tb.AddNetwork(spec, cfg))
	}
	for _, w := range s.WiFi {
		power := phy.DBm(w.PowerDBm)
		if w.PowerDBm == 0 {
			power = 15
		}
		intf := net80211.NewInterferer(tb.Kernel, tb.Medium,
			phy.Position{X: w.X, Y: w.Y}, w.Channel, power)
		if w.BusyMillis > 0 {
			intf.BusyTime = time.Duration(w.BusyMillis) * time.Millisecond
		}
		if w.IdleMillis > 0 {
			intf.IdleTime = time.Duration(w.IdleMillis) * time.Millisecond
		}
		intf.Start()
	}

	tb.Run(warmup, measure)

	results := make([]Result, len(networks))
	for i, n := range networks {
		name := s.Networks[i].Name
		if name == "" {
			name = testbed.NetworkLabel(i)
		}
		st := n.Stats()
		results[i] = Result{
			Name:       name,
			FreqMHz:    float64(n.Freq),
			Throughput: n.Throughput(tb.MeasuredDuration()),
			PRR:        st.PRR(),
			Sent:       st.Sent,
			Received:   st.Received,
		}
	}
	return results, tb.OverallThroughput(), nil
}
