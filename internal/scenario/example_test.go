package scenario_test

import (
	"fmt"
	"strings"

	"nonortho/internal/scenario"
)

// Example runs a complete experiment from a JSON document: two adjacent
// non-orthogonal networks, one fixed-threshold and one DCN.
func Example() {
	doc := `{
	  "name": "demo",
	  "seed": 3,
	  "warmupMillis": 500,
	  "measureMillis": 1000,
	  "networks": [
	    {"name": "fixed", "freqMHz": 2460,
	     "sink": {"x": 1}, "senders": [{"x": 0}]},
	    {"name": "dcn", "freqMHz": 2463, "scheme": "dcn",
	     "sink": {"x": 1, "y": 2}, "senders": [{"x": 0, "y": 2}]}
	  ]
	}`
	s, err := scenario.Load(strings.NewReader(doc))
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	results, _, err := s.Run()
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	for _, r := range results {
		fmt.Printf("%s on %.0f MHz: delivered packets > 0: %v\n",
			r.Name, r.FreqMHz, r.Received > 0)
	}
	// Output:
	// fixed on 2460 MHz: delivered packets > 0: true
	// dcn on 2463 MHz: delivered packets > 0: true
}
