package scenario

import (
	"strings"
	"testing"
)

const validDoc = `{
  "name": "two-links",
  "seed": 5,
  "warmupMillis": 500,
  "measureMillis": 2000,
  "networks": [
    {
      "name": "left",
      "freqMHz": 2460,
      "scheme": "fixed",
      "sink": {"x": 1, "y": 0},
      "senders": [{"x": 0, "y": 0, "powerDBm": 0}]
    },
    {
      "name": "right",
      "freqMHz": 2463,
      "scheme": "dcn",
      "sink": {"x": 1, "y": 2},
      "senders": [{"x": 0, "y": 2, "powerDBm": -5}]
    }
  ]
}`

func TestLoadValid(t *testing.T) {
	s, err := Load(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "two-links" || len(s.Networks) != 2 {
		t.Fatalf("parsed = %+v", s)
	}
	if s.Networks[1].Scheme != "dcn" || s.Networks[1].Senders[0].PowerDBm != -5 {
		t.Errorf("network 1 = %+v", s.Networks[1])
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	doc := `{"name":"x","bogus":1,"networks":[{"freqMHz":2460,"sink":{},"senders":[{}]}]}`
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"no networks", `{"name":"x","networks":[]}`},
		{"bad freq", `{"name":"x","networks":[{"freqMHz":5000,"sink":{},"senders":[{}]}]}`},
		{"no senders", `{"name":"x","networks":[{"freqMHz":2460,"sink":{},"senders":[]}]}`},
		{"bad scheme", `{"name":"x","networks":[{"freqMHz":2460,"scheme":"tdma","sink":{},"senders":[{}]}]}`},
		{"negative period", `{"name":"x","networks":[{"freqMHz":2460,"periodMillis":-1,"sink":{},"senders":[{}]}]}`},
		{"huge payload", `{"name":"x","networks":[{"freqMHz":2460,"payloadBytes":500,"sink":{},"senders":[{}]}]}`},
		{"not json", `{`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(tt.doc)); err == nil {
				t.Errorf("%s accepted", tt.name)
			}
		})
	}
}

func TestRunScenario(t *testing.T) {
	s, err := Load(strings.NewReader(validDoc))
	if err != nil {
		t.Fatal(err)
	}
	results, overall, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	if results[0].Name != "left" || results[1].Name != "right" {
		t.Errorf("names = %v/%v", results[0].Name, results[1].Name)
	}
	var sum float64
	for _, r := range results {
		if r.Throughput <= 0 || r.Sent == 0 || r.Received == 0 {
			t.Errorf("network %s carried no traffic: %+v", r.Name, r)
		}
		if r.PRR <= 0 || r.PRR > 1 {
			t.Errorf("network %s PRR = %v", r.Name, r.PRR)
		}
		sum += r.Throughput
	}
	if overall != sum {
		t.Errorf("overall %v != sum %v", overall, sum)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() float64 {
		s, err := Load(strings.NewReader(validDoc))
		if err != nil {
			t.Fatal(err)
		}
		_, overall, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return overall
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same scenario diverged: %v vs %v", a, b)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("does/not/exist.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDefaultNetworkNames(t *testing.T) {
	doc := `{"name":"x","measureMillis":500,"warmupMillis":100,"networks":[
	  {"freqMHz":2460,"sink":{"x":1},"senders":[{"x":0}]}]}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Name != "N0" {
		t.Errorf("default name = %q, want N0", results[0].Name)
	}
}

func TestScenarioWiFiInterferer(t *testing.T) {
	doc := `{
	  "name": "wifi",
	  "warmupMillis": 500,
	  "measureMillis": 2000,
	  "wifi": [{"channel": 11, "x": 5, "y": 5, "powerDBm": 15}],
	  "networks": [
	    {"name": "n", "freqMHz": 2462,
	     "sink": {"x": 1}, "senders": [{"x": 0}]}
	  ]
	}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	withWiFi, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	// The same network without the interferer delivers more.
	s.WiFi = nil
	clean, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if withWiFi[0].Throughput >= clean[0].Throughput {
		t.Errorf("Wi-Fi did not hurt: %v vs clean %v",
			withWiFi[0].Throughput, clean[0].Throughput)
	}
}

func TestScenarioWiFiValidation(t *testing.T) {
	bad := `{"name":"x","wifi":[{"channel":13}],"networks":[
	  {"freqMHz":2460,"sink":{},"senders":[{}]}]}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("wifi channel 13 accepted")
	}
	neg := `{"name":"x","wifi":[{"channel":6,"busyMillis":-1}],"networks":[
	  {"freqMHz":2460,"sink":{},"senders":[{}]}]}`
	if _, err := Load(strings.NewReader(neg)); err == nil {
		t.Error("negative duty accepted")
	}
}

func TestScenarioOracleScheme(t *testing.T) {
	doc := `{"name":"o","warmupMillis":200,"measureMillis":500,"networks":[
	  {"freqMHz":2460,"scheme":"oracle","sink":{"x":1},"senders":[{"x":0}]}]}`
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Received == 0 {
		t.Error("oracle scheme carried no traffic")
	}
}
