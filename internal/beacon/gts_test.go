package beacon

import (
	"testing"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/sim"
)

func TestGTSAllocationBookkeeping(t *testing.T) {
	k, m := world(t)
	coord, _ := pan(t, k, m, Schedule{BeaconOrder: 3, SuperframeOrder: 3}, 0)

	d1, err := coord.AllocateGTS(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d1.StartSlot != 14 || d1.Length != 2 {
		t.Errorf("first grant = %+v, want slots 14-15", d1)
	}
	d2, err := coord.AllocateGTS(11, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d2.StartSlot != 11 {
		t.Errorf("second grant start = %d, want 11", d2.StartSlot)
	}
	if got := coord.CAPSlots(); got != 11 {
		t.Errorf("CAPSlots = %d, want 11", got)
	}
	// Duplicate device rejected.
	if _, err := coord.AllocateGTS(10, 1); err == nil {
		t.Error("duplicate grant accepted")
	}
	// Zero-length rejected.
	if _, err := coord.AllocateGTS(12, 0); err == nil {
		t.Error("zero-length grant accepted")
	}
	// CAP floor respected: 9 more slots would leave CAP < MinCAPSlots.
	if _, err := coord.AllocateGTS(13, 10); err == nil {
		t.Error("grant shrinking CAP below the floor accepted")
	}
}

func TestGTSMaxDescriptors(t *testing.T) {
	k, m := world(t)
	coord, _ := pan(t, k, m, Schedule{BeaconOrder: 3, SuperframeOrder: 3}, 0)
	for i := 0; i < MaxGTS; i++ {
		if _, err := coord.AllocateGTS(frame.Address(20+i), 1); err != nil {
			t.Fatalf("grant %d rejected: %v", i, err)
		}
	}
	if _, err := coord.AllocateGTS(99, 1); err == nil {
		t.Error("eighth grant accepted")
	}
}

func TestGTSDeallocateRepacks(t *testing.T) {
	k, m := world(t)
	coord, _ := pan(t, k, m, Schedule{BeaconOrder: 3, SuperframeOrder: 3}, 0)
	coord.AllocateGTS(10, 2) // slots 14-15
	coord.AllocateGTS(11, 2) // slots 12-13
	coord.AllocateGTS(12, 2) // slots 10-11
	if err := coord.DeallocateGTS(11); err != nil {
		t.Fatal(err)
	}
	list := coord.GTSList()
	if len(list) != 2 {
		t.Fatalf("grants = %d, want 2", len(list))
	}
	// Re-packed against the tail: 10 at 14, 12 at 12.
	if list[0].Device != 10 || list[0].StartSlot != 14 {
		t.Errorf("grant 0 = %+v", list[0])
	}
	if list[1].Device != 12 || list[1].StartSlot != 12 {
		t.Errorf("grant 1 = %+v", list[1])
	}
	if coord.CAPSlots() != 12 {
		t.Errorf("CAPSlots = %d, want 12", coord.CAPSlots())
	}
	if err := coord.DeallocateGTS(77); err == nil {
		t.Error("deallocating a non-grant accepted")
	}
}

func TestGTSCodecRoundTrip(t *testing.T) {
	sched := Schedule{BeaconOrder: 3, SuperframeOrder: 3}
	grants := []GTSDescriptor{
		{Device: 0x1234, StartSlot: 14, Length: 2},
		{Device: 7, StartSlot: 12, Length: 2},
	}
	payload := encodeGTS(sched.beaconPayload(), 12, grants)
	capSlots, got, ok := decodeGTS(payload)
	if !ok {
		t.Fatal("decode failed")
	}
	if capSlots != 12 || len(got) != 2 {
		t.Fatalf("capSlots=%d grants=%d", capSlots, len(got))
	}
	for i := range grants {
		if got[i] != grants[i] {
			t.Errorf("grant %d = %+v, want %+v", i, got[i], grants[i])
		}
	}
	// Legacy two-byte beacon still accepted (full CAP, no grants).
	capSlots, got, ok = decodeGTS(sched.beaconPayload())
	if !ok || capSlots != NumSlots || got != nil {
		t.Errorf("legacy decode = %d/%v/%v", capSlots, got, ok)
	}
	// Truncated descriptor list rejected.
	if _, _, ok := decodeGTS([]byte{3, 3, 12, 2, 0}); ok {
		t.Error("truncated list accepted")
	}
}

func TestGTSDeviceTransmitsOnlyInWindow(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 3, SuperframeOrder: 3}
	coord, devs := pan(t, k, m, sched, 1)
	if _, err := coord.AllocateGTS(devs[0].Radio().Address(), 2); err != nil {
		t.Fatal(err)
	}

	// Record each transmission instant relative to its superframe.
	slot := sched.slotDuration()
	var badSlots int
	devs[0].OnSent = func(*frame.Frame) {}
	coord.Start()
	for i := 0; i < 6; i++ {
		devs[0].Send(make([]byte, 32))
	}
	// Observe via the trace of sent times: wrap OnSent to check position.
	bi := sim.FromDuration(sched.BeaconInterval())
	devs[0].OnSent = func(*frame.Frame) {
		off := (k.Now() - 0) % bi
		slotIdx := int(off / slot)
		// The frame END falls in the grant's window (slots 14-15) or just
		// at its boundary.
		if slotIdx < 14 {
			badSlots++
		}
	}
	k.RunFor(20 * sched.BeaconInterval())

	if got := devs[0].Sent(); got != 6 {
		t.Fatalf("sent = %d, want 6", got)
	}
	if badSlots != 0 {
		t.Errorf("%d transmissions ended outside the GTS window", badSlots)
	}
	if coord.Received() != 6 {
		t.Errorf("received = %d, want 6", coord.Received())
	}
	if g := devs[0].GTS(); g == nil || g.StartSlot != 14 {
		t.Errorf("device grant = %+v, want slots 14-15", g)
	}
}

func TestGTSIsCollisionFreeUnderContention(t *testing.T) {
	// One GTS device plus three saturated CAP contenders: the GTS holder
	// must deliver everything, contention-free.
	k, m := world(t)
	sched := Schedule{BeaconOrder: 3, SuperframeOrder: 3}
	coord, devs := pan(t, k, m, sched, 4)
	if _, err := coord.AllocateGTS(devs[0].Radio().Address(), 3); err != nil {
		t.Fatal(err)
	}
	coord.Start()

	const gtsFrames = 15
	for i := 0; i < gtsFrames; i++ {
		devs[0].Send(make([]byte, 32))
	}
	for _, d := range devs[1:] {
		for i := 0; i < 30; i++ {
			d.Send(make([]byte, 32))
		}
	}
	k.RunFor(80 * sched.BeaconInterval())

	if got := devs[0].Sent(); got != gtsFrames {
		t.Errorf("GTS device sent %d, want %d", got, gtsFrames)
	}
	if devs[0].Dropped() != 0 {
		t.Errorf("GTS device dropped %d frames", devs[0].Dropped())
	}
	// All GTS frames must arrive: no contention inside the grant.
	received := coord.Received()
	if received < gtsFrames {
		t.Errorf("coordinator received %d, want at least the %d GTS frames",
			received, gtsFrames)
	}
}

func TestGTSAndCAPDurationsAddUp(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 2, SuperframeOrder: 2}
	coord, devs := pan(t, k, m, sched, 1)
	coord.AllocateGTS(devs[0].Radio().Address(), 4)
	coord.Start()
	k.RunFor(2 * sched.BeaconInterval())

	if !devs[0].Synced() {
		t.Fatal("device not synced")
	}
	// The device learned the shrunken CAP from the beacon.
	start, err := devs[0].NextCAPStart()
	if err != nil {
		t.Fatal(err)
	}
	_, end := devs[0].capBounds(start)
	capLen := time.Duration(end - start)
	wantMax := 12 * time.Duration(sched.slotDuration())
	if capLen >= wantMax {
		t.Errorf("CAP length %v not below 12 slots (%v): beacon did not shrink it",
			capLen, wantMax)
	}
}
