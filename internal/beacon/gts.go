package beacon

import (
	"fmt"

	"nonortho/internal/frame"
	"nonortho/internal/sim"
)

// GTS (guaranteed time slots) per IEEE 802.15.4-2003 §7.5.7: the
// coordinator dedicates superframe slots at the end of the active portion
// to individual devices, which then transmit there contention-free. The
// beacon advertises the descriptor list, so devices learn their slots
// (and the shrunken CAP) from the beacon alone.
//
// Simplification: allocation is an API call on the coordinator rather
// than the over-the-air GTS-request command, and all GTS are
// transmit-direction.

// MaxGTS is the standard's cap on simultaneous GTS descriptors.
const MaxGTS = 7

// MinCAPSlots keeps the contention access period alive (the standard's
// aMinCAPLength, expressed in whole slots here).
const MinCAPSlots = 2

// GTSDescriptor is one device's slot grant.
type GTSDescriptor struct {
	// Device is the grantee's short address.
	Device frame.Address
	// StartSlot and Length are in superframe slots (0..15); GTS occupy
	// the tail of the active portion.
	StartSlot int
	Length    int
}

// AllocateGTS grants length slots to a device, carving them off the end
// of the CAP. Grants take effect from the next beacon.
func (c *Coordinator) AllocateGTS(device frame.Address, length int) (GTSDescriptor, error) {
	if length < 1 {
		return GTSDescriptor{}, fmt.Errorf("beacon: GTS length %d < 1", length)
	}
	if len(c.gts) >= MaxGTS {
		return GTSDescriptor{}, fmt.Errorf("beacon: all %d GTS descriptors in use", MaxGTS)
	}
	first := c.firstGTSSlot()
	start := first - length
	if start < MinCAPSlots {
		return GTSDescriptor{}, fmt.Errorf(
			"beacon: GTS of %d slots would shrink the CAP below %d slots", length, MinCAPSlots)
	}
	for _, g := range c.gts {
		if g.Device == device {
			return GTSDescriptor{}, fmt.Errorf("beacon: device %d already holds a GTS", device)
		}
	}
	d := GTSDescriptor{Device: device, StartSlot: start, Length: length}
	c.gts = append(c.gts, d)
	return d, nil
}

// DeallocateGTS releases a device's grant; slots of remaining grants are
// re-packed against the end of the superframe.
func (c *Coordinator) DeallocateGTS(device frame.Address) error {
	idx := -1
	for i, g := range c.gts {
		if g.Device == device {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("beacon: device %d holds no GTS", device)
	}
	c.gts = append(c.gts[:idx], c.gts[idx+1:]...)
	// Re-pack against the superframe tail, preserving grant order.
	next := NumSlots
	for i := range c.gts {
		next -= c.gts[i].Length
		c.gts[i].StartSlot = next
	}
	return nil
}

// GTSList returns the current descriptors (copy).
func (c *Coordinator) GTSList() []GTSDescriptor {
	out := make([]GTSDescriptor, len(c.gts))
	copy(out, c.gts)
	return out
}

// CAPSlots reports how many slots remain contention-based.
func (c *Coordinator) CAPSlots() int { return c.firstGTSSlot() }

func (c *Coordinator) firstGTSSlot() int {
	first := NumSlots
	for _, g := range c.gts {
		if g.StartSlot < first {
			first = g.StartSlot
		}
	}
	return first
}

// encodeGTS appends the descriptor list to a beacon payload.
func encodeGTS(payload []byte, capSlots int, gts []GTSDescriptor) []byte {
	payload = append(payload, byte(capSlots), byte(len(gts)))
	for _, g := range gts {
		payload = append(payload,
			byte(g.Device), byte(g.Device>>8), byte(g.StartSlot), byte(g.Length))
	}
	return payload
}

// decodeGTS parses a beacon payload's descriptor list (after BO/SO).
func decodeGTS(payload []byte) (capSlots int, gts []GTSDescriptor, ok bool) {
	if len(payload) < 4 {
		return NumSlots, nil, len(payload) >= 2 // legacy BO/SO-only beacon
	}
	capSlots = int(payload[2])
	n := int(payload[3])
	rest := payload[4:]
	if len(rest) < 4*n {
		return NumSlots, nil, false
	}
	for i := 0; i < n; i++ {
		gts = append(gts, GTSDescriptor{
			Device:    frame.Address(rest[4*i]) | frame.Address(rest[4*i+1])<<8,
			StartSlot: int(rest[4*i+2]),
			Length:    int(rest[4*i+3]),
		})
	}
	return capSlots, gts, true
}

// slotDuration is one superframe slot of the schedule.
func (s Schedule) slotDuration() sim.Time {
	return sim.FromDuration(s.ActiveDuration()) / NumSlots
}

// gtsWindow locates the device's GTS inside the superframe starting at
// base.
func (d *Device) gtsWindow(base sim.Time) (start, end sim.Time, ok bool) {
	if d.gts == nil {
		return 0, 0, false
	}
	slot := d.schedule.slotDuration()
	start = base + sim.Time(d.gts.StartSlot)*slot
	end = start + sim.Time(d.gts.Length)*slot
	return start, end, true
}

// serveGTS transmits queued frames back-to-back inside the device's GTS of
// the superframe starting at base.
func (d *Device) serveGTS(base sim.Time) {
	start, end, ok := d.gtsWindow(base)
	if !ok {
		return
	}
	var pump func()
	pump = func() {
		if len(d.queue) == 0 {
			return
		}
		f := d.queue[0]
		need := sim.FromDuration(f.Airtime())
		if d.kernel.Now()+need > end {
			return // no room left this superframe
		}
		tx, err := d.radio.Transmit(f)
		if err != nil {
			return
		}
		d.kernel.At(tx.End, func() {
			d.sent++
			if d.OnSent != nil {
				d.OnSent(f)
			}
			d.queue = d.queue[1:]
			pump()
		})
	}
	d.kernel.At(start, pump)
}
