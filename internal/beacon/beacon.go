// Package beacon implements the beacon-enabled mode of IEEE 802.15.4: a
// coordinator broadcasting periodic beacons, the superframe structure
// (active portion of 16 slots, optional inactive period), and the slotted
// CSMA/CA channel access of devices synchronised to the beacon — backoff
// boundaries aligned to the superframe and two consecutive clear CCAs
// (CW = 2) before transmitting.
//
// The paper's DCN operates in nonbeacon mode, but its CCA-Adjustor only
// touches the radio's threshold register, so it plugs into slotted
// CSMA/CA unchanged — this package makes the substrate complete enough to
// check that. Scope notes: no GTS slots, no association procedure
// (addresses are preconfigured), and beacon reception is assumed reliable
// enough for sync (a lost beacon simply extends the previous schedule).
package beacon

import (
	"fmt"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// Superframe timing constants (IEEE 802.15.4-2003 §7.5.1.1).
const (
	// BaseSuperframeDuration is aBaseSuperframeDuration: 960 symbols.
	BaseSuperframeDuration = 960 * frame.SymbolPeriod
	// NumSlots divides the active portion.
	NumSlots = 16
	// CW is the slotted-mode contention window: consecutive clear CCAs
	// required before transmission.
	CW = 2
)

// Schedule describes a superframe configuration.
type Schedule struct {
	// BeaconOrder and SuperframeOrder are BO and SO (0..14, SO <= BO).
	BeaconOrder     int
	SuperframeOrder int
}

// Validate checks the standard's constraints.
func (s Schedule) Validate() error {
	if s.BeaconOrder < 0 || s.BeaconOrder > 14 {
		return fmt.Errorf("beacon: BO %d outside 0..14", s.BeaconOrder)
	}
	if s.SuperframeOrder < 0 || s.SuperframeOrder > s.BeaconOrder {
		return fmt.Errorf("beacon: SO %d outside 0..BO(%d)", s.SuperframeOrder, s.BeaconOrder)
	}
	return nil
}

// BeaconInterval is BI = aBaseSuperframeDuration · 2^BO.
func (s Schedule) BeaconInterval() time.Duration {
	return BaseSuperframeDuration << uint(s.BeaconOrder)
}

// ActiveDuration is SD = aBaseSuperframeDuration · 2^SO.
func (s Schedule) ActiveDuration() time.Duration {
	return BaseSuperframeDuration << uint(s.SuperframeOrder)
}

// DutyCycle is the active fraction of the beacon interval.
func (s Schedule) DutyCycle() float64 {
	return float64(s.ActiveDuration()) / float64(s.BeaconInterval())
}

// Coordinator broadcasts beacons and receives the devices' data.
type Coordinator struct {
	kernel   *sim.Kernel
	radio    *radio.Radio
	schedule Schedule

	beaconsSent int
	received    int

	// gts holds the granted guaranteed time slots (see gts.go).
	gts []GTSDescriptor

	// association state (see assoc.go)
	assocEnabled bool
	assoc        AssocConfig
	members      map[frame.Address]frame.Address

	// OnReceive delivers CRC-clean data frames addressed to the
	// coordinator.
	OnReceive func(radio.Reception)

	running bool
}

// beaconPayload makes beacons recognisable and carries BO/SO.
func (s Schedule) beaconPayload() []byte {
	return []byte{byte(s.BeaconOrder), byte(s.SuperframeOrder)}
}

// NewCoordinator builds a PAN coordinator on the radio.
func NewCoordinator(k *sim.Kernel, r *radio.Radio, schedule Schedule) (*Coordinator, error) {
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{kernel: k, radio: r, schedule: schedule}
	r.OnReceive = func(rcv radio.Reception) {
		if !rcv.CRCOK || rcv.Frame.Dst != r.Address() {
			return
		}
		switch rcv.Frame.Type {
		case frame.TypeData:
			c.received++
			if c.OnReceive != nil {
				c.OnReceive(rcv)
			}
		case frame.TypeCommand:
			c.handleCommand(rcv.Frame)
		}
	}
	return c, nil
}

// Start begins broadcasting beacons at the schedule's interval.
func (c *Coordinator) Start() {
	if c.running {
		return
	}
	c.running = true
	c.emitBeacon()
}

// Stop halts beaconing after the current interval.
func (c *Coordinator) Stop() { c.running = false }

// BeaconsSent and Received report the coordinator's counters.
func (c *Coordinator) BeaconsSent() int { return c.beaconsSent }

// Received counts data frames accepted by the coordinator.
func (c *Coordinator) Received() int { return c.received }

func (c *Coordinator) emitBeacon() {
	if !c.running {
		return
	}
	b := &frame.Frame{
		Type:    frame.TypeBeacon,
		Src:     c.radio.Address(),
		Dst:     frame.Broadcast,
		Payload: encodeGTS(c.schedule.beaconPayload(), c.CAPSlots(), c.gts),
	}
	// Beacons are sent without CSMA at the scheduled instant.
	if _, err := c.radio.Transmit(b); err == nil {
		c.beaconsSent++
	}
	c.kernel.After(c.schedule.BeaconInterval(), c.emitBeacon)
}

// Device is a beacon-synchronised node running slotted CSMA/CA.
type Device struct {
	kernel   *sim.Kernel
	radio    *radio.Radio
	schedule Schedule
	coord    frame.Address

	// superframe sync state
	synced        bool
	frameStart    sim.Time // start of the current superframe's beacon
	beaconAirtime sim.Time
	capSlots      int            // CAP extent advertised by the beacon
	gts           *GTSDescriptor // our grant, if the beacon lists one

	// MAC state
	queue    []*frame.Frame
	inFlight bool
	seq      uint8
	sent     int
	dropped  int

	// SleepInactive powers the radio down between the active portion and
	// the next beacon (BO > SO), the standard's duty-cycling.
	SleepInactive bool

	// association state (see assoc.go)
	associating bool
	associated  bool
	shortAddr   frame.Address
	assocRetry  time.Duration

	// OnSent fires for every frame put on the air.
	OnSent func(*frame.Frame)

	rng *sim.RNG
}

// NewDevice builds a device that syncs to beacons from coord.
func NewDevice(k *sim.Kernel, r *radio.Radio, coord frame.Address, schedule Schedule) (*Device, error) {
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	d := &Device{
		kernel:   k,
		radio:    r,
		schedule: schedule,
		coord:    coord,
		capSlots: NumSlots,
		rng:      k.Stream(fmt.Sprintf("beacon.dev.%d", r.Address())),
	}
	r.OnReceive = d.handleReception
	return d, nil
}

// Radio exposes the device's radio (for DCN attachment and tests).
func (d *Device) Radio() *radio.Radio { return d.radio }

// Synced reports whether a beacon has been tracked yet.
func (d *Device) Synced() bool { return d.synced }

// Sent and Dropped report the device's MAC counters.
func (d *Device) Sent() int { return d.sent }

// Dropped counts frames abandoned after CSMA failures.
func (d *Device) Dropped() int { return d.dropped }

// Send queues a data frame to the coordinator.
func (d *Device) Send(payload []byte) bool {
	if len(d.queue) >= 64 {
		return false
	}
	f := &frame.Frame{
		Type:    frame.TypeData,
		Src:     d.radio.Address(),
		Dst:     d.coord,
		Seq:     d.seq,
		Payload: payload,
	}
	d.seq++
	d.queue = append(d.queue, f)
	d.kick()
	return true
}

func (d *Device) handleReception(rcv radio.Reception) {
	if !rcv.CRCOK {
		return
	}
	switch {
	case rcv.Frame.Type == frame.TypeBeacon && rcv.Frame.Src == d.coord:
		d.syncTo(rcv)
	case rcv.Frame.Type == frame.TypeCommand && rcv.Frame.Dst == d.radio.Address():
		d.handleAssocResponse(rcv.Frame)
	}
}

// syncTo aligns the superframe schedule to a received beacon and picks up
// the advertised CAP extent and any GTS granted to this device.
func (d *Device) syncTo(rcv radio.Reception) {
	d.frameStart = rcv.Start
	d.beaconAirtime = rcv.End - rcv.Start
	wasSynced := d.synced
	d.synced = true

	if capSlots, grants, ok := decodeGTS(rcv.Frame.Payload); ok {
		d.capSlots = capSlots
		d.gts = nil
		for i := range grants {
			if grants[i].Device == d.radio.Address() {
				g := grants[i]
				d.gts = &g
				break
			}
		}
	}
	if d.gts != nil {
		d.serveGTS(d.frameStart)
	}
	if d.SleepInactive {
		d.scheduleSleep()
	}
	if !wasSynced {
		d.kick()
	}
}

// GTS reports the device's current grant (nil when none).
func (d *Device) GTS() *GTSDescriptor {
	if d.gts == nil {
		return nil
	}
	g := *d.gts
	return &g
}

// capBounds returns the CAP of the superframe containing or following t:
// from the end of the beacon to the end of the contention slots (the
// active portion minus any GTS the beacon advertised).
func (d *Device) capBounds(t sim.Time) (start, end sim.Time) {
	bi := sim.FromDuration(d.schedule.BeaconInterval())
	capEnd := sim.Time(d.capSlots) * d.schedule.slotDuration()
	// Superframe index relative to the last synced beacon.
	var k sim.Time
	if t > d.frameStart {
		k = (t - d.frameStart) / bi
	}
	base := d.frameStart + k*bi
	start = base + d.beaconAirtime
	end = base + capEnd
	if t >= end { // past this CAP: use the next superframe
		base += bi
		start = base + d.beaconAirtime
		end = base + capEnd
	}
	return start, end
}

// scheduleSleep powers the radio down for the inactive portion.
func (d *Device) scheduleSleep() {
	if d.schedule.BeaconOrder == d.schedule.SuperframeOrder {
		return // no inactive portion
	}
	bi := sim.FromDuration(d.schedule.BeaconInterval())
	sd := sim.FromDuration(d.schedule.ActiveDuration())
	now := d.kernel.Now()
	var k sim.Time
	if now > d.frameStart {
		k = (now - d.frameStart) / bi
	}
	sleepAt := d.frameStart + k*bi + sd
	wakeAt := d.frameStart + (k+1)*bi - sim.FromDuration(time.Millisecond)
	if sleepAt <= now {
		return
	}
	d.kernel.At(sleepAt, func() {
		// Do not sleep through our own transmission.
		if d.radio.State() != radio.StateTX {
			d.radio.SetOff()
		}
	})
	d.kernel.At(wakeAt, func() { d.radio.SetOn() })
}

func (d *Device) kick() {
	if d.inFlight || len(d.queue) == 0 || !d.synced {
		return
	}
	if d.gts != nil {
		return // GTS holders drain their queue contention-free (gts.go)
	}
	d.inFlight = true
	d.slottedCSMA(0, 3, CW)
}

// nextBoundary returns the next backoff-period boundary at or after t
// within the superframe structure.
func (d *Device) nextBoundary(t sim.Time) sim.Time {
	capStart, capEnd := d.capBounds(t)
	if t < capStart {
		t = capStart
	}
	period := sim.FromDuration(frame.BackoffPeriod)
	off := (t - capStart) % period
	if off != 0 {
		t += period - off
	}
	if t >= capEnd {
		nextStart, _ := d.capBounds(capEnd + 1)
		return nextStart
	}
	return t
}

// slottedCSMA implements the slotted algorithm: random backoff counted in
// aligned periods, then CW consecutive clear CCAs at boundaries.
func (d *Device) slottedCSMA(nb, be, cw int) {
	if len(d.queue) == 0 {
		d.inFlight = false
		return
	}
	f := d.queue[0]
	slots := d.rng.Intn(1 << be)
	period := sim.FromDuration(frame.BackoffPeriod)
	target := d.nextBoundary(d.kernel.Now()) + sim.Time(slots)*period

	var assess func(remaining int, at sim.Time)
	assess = func(remaining int, at sim.Time) {
		at = d.nextBoundary(at)
		d.kernel.At(at, func() {
			// The transmission plus turnaround must fit in the CAP.
			_, capEnd := d.capBounds(d.kernel.Now())
			need := sim.FromDuration(frame.TurnaroundTime + f.Airtime())
			if d.kernel.Now()+need > capEnd {
				// Defer to the next superframe's CAP.
				nextStart, _ := d.capBounds(capEnd + 1)
				d.kernel.At(nextStart, func() { d.slottedCSMA(nb, be, CW) })
				return
			}
			if d.radio.CCAClear() {
				if remaining <= 1 {
					d.kernel.After(frame.TurnaroundTime, func() { d.transmit(f) })
					return
				}
				assess(remaining-1, d.kernel.Now()+period)
				return
			}
			// Busy: restart the contention window with a larger backoff.
			if nb+1 > 4 {
				d.queue = d.queue[1:]
				d.dropped++
				d.inFlight = false
				d.kick()
				return
			}
			nextBE := be + 1
			if nextBE > 5 {
				nextBE = 5
			}
			d.slottedCSMA(nb+1, nextBE, CW)
		})
	}
	assess(cw, target)
}

func (d *Device) transmit(f *frame.Frame) {
	tx, err := d.radio.Transmit(f)
	if err != nil {
		d.queue = d.queue[1:]
		d.dropped++
		d.inFlight = false
		d.kick()
		return
	}
	d.kernel.At(tx.End, func() {
		d.sent++
		if d.OnSent != nil {
			d.OnSent(f)
		}
		d.queue = d.queue[1:]
		d.inFlight = false
		d.kick()
	})
}

// ErrNotSynced is returned by operations requiring beacon sync.
var ErrNotSynced = fmt.Errorf("beacon: device not synced")

// NextCAPStart reports when the device's next contention access period
// begins (for tests and instrumentation).
func (d *Device) NextCAPStart() (sim.Time, error) {
	if !d.synced {
		return 0, ErrNotSynced
	}
	start, _ := d.capBounds(d.kernel.Now())
	return start, nil
}

// EnergyReport exposes the radio's meter (duty-cycling shows up here).
func (d *Device) EnergyReport() radio.EnergyReport { return d.radio.EnergyReport() }
