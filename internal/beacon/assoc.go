package beacon

import (
	"time"

	"nonortho/internal/frame"
)

// Association per IEEE 802.15.4 §7.5.3, simplified: a synced device sends
// an association-request command through the CAP; the coordinator assigns
// a short address from its pool and answers with an association-response
// command. (The standard parks the response in the coordinator's indirect
// queue until the device polls; here the coordinator answers directly
// after a turnaround, which changes timing but not the address-assignment
// logic.) Devices boot with a provisional address and adopt the assigned
// one on success.

// MAC command identifiers (§7.3).
const (
	cmdAssociationRequest  = 0x01
	cmdAssociationResponse = 0x02
)

// Association response status codes.
const (
	assocStatusSuccess    = 0x00
	assocStatusAtCapacity = 0x01
)

// AssocConfig tunes the coordinator's association behaviour.
type AssocConfig struct {
	// FirstAddr is the first short address handed out (default 0x0100).
	FirstAddr frame.Address
	// MaxDevices caps the PAN size (default 64).
	MaxDevices int
}

func (c AssocConfig) withDefaults() AssocConfig {
	if c.FirstAddr == 0 {
		c.FirstAddr = 0x0100
	}
	if c.MaxDevices == 0 {
		c.MaxDevices = 64
	}
	return c
}

// EnableAssociation switches the coordinator into accepting association
// requests.
func (c *Coordinator) EnableAssociation(cfg AssocConfig) {
	c.assoc = cfg.withDefaults()
	c.assocEnabled = true
	if c.members == nil {
		c.members = make(map[frame.Address]frame.Address)
	}
}

// Members returns provisional→assigned address pairs of associated devices.
func (c *Coordinator) Members() map[frame.Address]frame.Address {
	out := make(map[frame.Address]frame.Address, len(c.members))
	for k, v := range c.members {
		out[k] = v
	}
	return out
}

// handleCommand processes MAC command frames at the coordinator.
func (c *Coordinator) handleCommand(f *frame.Frame) {
	if !c.assocEnabled || len(f.Payload) == 0 || f.Payload[0] != cmdAssociationRequest {
		return
	}
	provisional := f.Src
	assigned, ok := c.members[provisional]
	status := byte(assocStatusSuccess)
	if !ok {
		if len(c.members) >= c.assoc.MaxDevices {
			status = assocStatusAtCapacity
		} else {
			assigned = c.assoc.FirstAddr + frame.Address(len(c.members))
			c.members[provisional] = assigned
		}
	}
	resp := &frame.Frame{
		Type: frame.TypeCommand,
		Src:  c.radio.Address(),
		Dst:  provisional,
		Payload: []byte{
			cmdAssociationResponse, status,
			byte(assigned), byte(assigned >> 8),
		},
	}
	// Direct response after a radio turnaround (see package note).
	c.kernel.After(frame.TurnaroundTime, func() {
		_, _ = c.radio.Transmit(resp)
	})
}

// Associate begins the association procedure once the device is synced;
// requests are retried every retry interval until a response arrives.
func (d *Device) Associate(retry time.Duration) {
	if retry <= 0 {
		retry = 500 * time.Millisecond
	}
	d.assocRetry = retry
	d.associating = true
	d.tryAssociate()
}

// Associated reports whether a short address has been assigned.
func (d *Device) Associated() bool { return d.associated }

// ShortAddr returns the PAN-assigned address (valid once Associated).
func (d *Device) ShortAddr() frame.Address { return d.shortAddr }

func (d *Device) tryAssociate() {
	if !d.associating || d.associated {
		return
	}
	if d.synced {
		req := &frame.Frame{
			Type:    frame.TypeCommand,
			Src:     d.radio.Address(),
			Dst:     d.coord,
			Payload: []byte{cmdAssociationRequest},
		}
		d.queue = append(d.queue, req)
		d.kick()
	}
	d.kernel.After(d.assocRetry, d.tryAssociate)
}

// handleAssocResponse consumes the coordinator's answer.
func (d *Device) handleAssocResponse(f *frame.Frame) {
	if len(f.Payload) < 4 || f.Payload[0] != cmdAssociationResponse {
		return
	}
	if f.Payload[1] != assocStatusSuccess {
		d.associating = false // PAN full: stop retrying
		return
	}
	d.shortAddr = frame.Address(f.Payload[2]) | frame.Address(f.Payload[3])<<8
	d.associated = true
	d.associating = false
	// Adopt the assigned address for all further traffic.
	d.radio.SetAddress(d.shortAddr)
}
