package beacon

import (
	"testing"
	"time"

	"nonortho/internal/dcn"
	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

func world(t *testing.T) (*sim.Kernel, *medium.Medium) {
	t.Helper()
	k := sim.NewKernel(17)
	m := medium.New(k,
		medium.WithFadingSigma(0),
		medium.WithStaticFadingSigma(0))
	return k, m
}

func newRadio(k *sim.Kernel, m *medium.Medium, addr frame.Address, x float64) *radio.Radio {
	return radio.New(k, m, radio.Config{
		Pos:          phy.Position{X: x},
		Freq:         2460,
		TxPower:      0,
		CCAThreshold: phy.DefaultCCAThreshold,
		Address:      addr,
	})
}

func pan(t *testing.T, k *sim.Kernel, m *medium.Medium, sched Schedule, devices int) (*Coordinator, []*Device) {
	t.Helper()
	coord, err := NewCoordinator(k, newRadio(k, m, 1, 0), sched)
	if err != nil {
		t.Fatal(err)
	}
	var devs []*Device
	for i := 0; i < devices; i++ {
		d, err := NewDevice(k, newRadio(k, m, frame.Address(10+i), 0.5+0.3*float64(i)), 1, sched)
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
	}
	return coord, devs
}

func TestScheduleValidation(t *testing.T) {
	if err := (Schedule{BeaconOrder: 6, SuperframeOrder: 4}).Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	if err := (Schedule{BeaconOrder: 15}).Validate(); err == nil {
		t.Error("BO=15 accepted")
	}
	if err := (Schedule{BeaconOrder: 3, SuperframeOrder: 4}).Validate(); err == nil {
		t.Error("SO > BO accepted")
	}
	if err := (Schedule{BeaconOrder: 3, SuperframeOrder: -1}).Validate(); err == nil {
		t.Error("negative SO accepted")
	}
}

func TestScheduleTiming(t *testing.T) {
	s := Schedule{BeaconOrder: 2, SuperframeOrder: 1}
	// BI = 15.36 ms × 4 = 61.44 ms; SD = 15.36 ms × 2 = 30.72 ms.
	if got := s.BeaconInterval(); got != 61440*time.Microsecond {
		t.Errorf("BI = %v, want 61.44ms", got)
	}
	if got := s.ActiveDuration(); got != 30720*time.Microsecond {
		t.Errorf("SD = %v, want 30.72ms", got)
	}
	if got := s.DutyCycle(); got != 0.5 {
		t.Errorf("duty cycle = %v, want 0.5", got)
	}
}

func TestBeaconCadence(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 1, SuperframeOrder: 1}
	coord, devs := pan(t, k, m, sched, 1)
	coord.Start()
	k.RunFor(10 * sched.BeaconInterval())
	// Beacons every BI: 10 intervals → 11 beacons (t=0 included).
	if got := coord.BeaconsSent(); got < 10 || got > 11 {
		t.Errorf("beacons sent = %d, want ≈ 10-11", got)
	}
	if !devs[0].Synced() {
		t.Error("device never synced to the beacon")
	}
}

func TestDeviceDeliversInCAP(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 2, SuperframeOrder: 2}
	coord, devs := pan(t, k, m, sched, 1)
	coord.Start()
	// Queue data before sync: nothing may be sent until the beacon.
	devs[0].Send(make([]byte, 32))
	devs[0].Send(make([]byte, 32))
	k.RunFor(20 * sched.BeaconInterval())
	if coord.Received() != 2 {
		t.Errorf("coordinator received %d, want 2", coord.Received())
	}
	if devs[0].Sent() != 2 {
		t.Errorf("device sent %d, want 2", devs[0].Sent())
	}
}

func TestSlottedContentionManyDevices(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 3, SuperframeOrder: 3}
	coord, devs := pan(t, k, m, sched, 4)
	coord.Start()
	const perDevice = 20
	for _, d := range devs {
		for i := 0; i < perDevice; i++ {
			if !d.Send(make([]byte, 32)) {
				t.Fatal("queue overflow")
			}
		}
	}
	k.RunFor(time.Duration(200) * sched.BeaconInterval())
	total := 0
	for _, d := range devs {
		total += d.Sent() + d.Dropped()
	}
	if total != 4*perDevice {
		t.Fatalf("sent+dropped = %d, want %d", total, 4*perDevice)
	}
	// The slotted CW=2 procedure delivers most frames; saturated devices
	// whose backoffs land on the same boundary still collide (slotted
	// CSMA/CA is collision-prone under saturation, and there are no ACKs
	// here).
	if coord.Received() < 4*perDevice*7/10 {
		t.Errorf("received %d of %d", coord.Received(), 4*perDevice)
	}
}

func TestInactivePeriodSleepSavesEnergy(t *testing.T) {
	k, m := world(t)
	// BO=4, SO=1: duty cycle 1/8.
	sched := Schedule{BeaconOrder: 4, SuperframeOrder: 1}
	coord, devs := pan(t, k, m, sched, 2)
	coord.Start()
	devs[0].SleepInactive = true // duty-cycled
	// devs[1] stays always-on.
	k.RunFor(50 * sched.BeaconInterval())

	sleeper := devs[0].EnergyReport()
	alwaysOn := devs[1].EnergyReport()
	if sleeper.OffSeconds == 0 {
		t.Fatal("duty-cycled device never slept")
	}
	if sleeper.Millijoules > 0.5*alwaysOn.Millijoules {
		t.Errorf("duty-cycling saved too little: %.1f vs %.1f mJ",
			sleeper.Millijoules, alwaysOn.Millijoules)
	}
	// And it still hears beacons (wakes before each one).
	if !devs[0].Synced() {
		t.Error("sleeper lost sync")
	}
}

func TestSleeperStillDelivers(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 3, SuperframeOrder: 1}
	coord, devs := pan(t, k, m, sched, 1)
	devs[0].SleepInactive = true
	coord.Start()
	k.RunFor(2 * sched.BeaconInterval()) // get synced first
	for i := 0; i < 5; i++ {
		devs[0].Send(make([]byte, 16))
	}
	k.RunFor(40 * sched.BeaconInterval())
	if coord.Received() != 5 {
		t.Errorf("received %d, want 5 (sleep must not eat transmissions)", coord.Received())
	}
}

func TestDCNPlugsIntoSlottedMAC(t *testing.T) {
	// The CCA-Adjustor only touches the radio's threshold register, so it
	// composes with slotted CSMA/CA unchanged.
	k, m := world(t)
	sched := Schedule{BeaconOrder: 3, SuperframeOrder: 3}
	coord, devs := pan(t, k, m, sched, 2)
	coord.Start()

	adj := dcn.New(k, devs[0].Radio(), dcn.Config{})
	adj.Start()
	// Feed it the device's receptions (beacons are co-channel packets).
	prev := devs[0].Radio().OnReceive
	devs[0].Radio().OnReceive = func(r radio.Reception) {
		if prev != nil {
			prev(r)
		}
		adj.Observe(r)
	}

	for i := 0; i < 10; i++ {
		devs[0].Send(make([]byte, 32))
		devs[1].Send(make([]byte, 32))
	}
	k.RunFor(150 * sched.BeaconInterval())

	if adj.Phase().String() != "updating" {
		t.Errorf("adjustor phase = %v, want updating", adj.Phase())
	}
	if coord.Received() < 16 {
		t.Errorf("received %d of 20 under DCN+slotted", coord.Received())
	}
	// The threshold should track the beacon/data RSSI environment.
	if th := devs[0].Radio().CCAThreshold(); th < phy.NoiseFloor+5 {
		t.Errorf("threshold = %v, want tracking", th)
	}
}

func TestNextCAPStartRequiresSync(t *testing.T) {
	k, m := world(t)
	d, err := NewDevice(k, newRadio(k, m, 5, 1), 1, Schedule{BeaconOrder: 2, SuperframeOrder: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NextCAPStart(); err == nil {
		t.Error("NextCAPStart before sync accepted")
	}
}

func TestCoordinatorStopHaltsBeacons(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 1, SuperframeOrder: 1}
	coord, _ := pan(t, k, m, sched, 0)
	coord.Start()
	coord.Start() // idempotent
	k.RunFor(3 * sched.BeaconInterval())
	coord.Stop()
	sent := coord.BeaconsSent()
	k.RunFor(5 * sched.BeaconInterval())
	if coord.BeaconsSent() != sent {
		t.Errorf("beacons kept flowing after Stop: %d then %d", sent, coord.BeaconsSent())
	}
}
