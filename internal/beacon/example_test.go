package beacon_test

import (
	"fmt"
	"time"

	"nonortho/internal/beacon"
	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// Example builds a small beacon-enabled PAN: a coordinator with BO=SO=3,
// one slotted-CSMA device and one GTS-holding device.
func Example() {
	k := sim.NewKernel(9)
	m := medium.New(k, medium.WithFadingSigma(0), medium.WithStaticFadingSigma(0))
	sched := beacon.Schedule{BeaconOrder: 3, SuperframeOrder: 3}

	mk := func(addr frame.Address, x float64) *radio.Radio {
		return radio.New(k, m, radio.Config{
			Pos: phy.Position{X: x}, Freq: 2460, TxPower: 0,
			CCAThreshold: phy.DefaultCCAThreshold, Address: addr,
		})
	}
	coord, err := beacon.NewCoordinator(k, mk(1, 0), sched)
	if err != nil {
		fmt.Println(err)
		return
	}
	csmaDev, _ := beacon.NewDevice(k, mk(2, 0.5), 1, sched)
	gtsDev, _ := beacon.NewDevice(k, mk(3, 0.8), 1, sched)

	// Grant the second device two guaranteed slots at the superframe tail.
	grant, err := coord.AllocateGTS(3, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("GTS: slots %d-%d, CAP shrinks to %d slots\n",
		grant.StartSlot, grant.StartSlot+grant.Length-1, coord.CAPSlots())

	coord.Start()
	for i := 0; i < 3; i++ {
		csmaDev.Send(make([]byte, 32))
		gtsDev.Send(make([]byte, 32))
	}
	k.RunFor(20 * sched.BeaconInterval())

	fmt.Println("coordinator received:", coord.Received())
	fmt.Println("device synced:", csmaDev.Synced() && gtsDev.Synced())
	// Output:
	// GTS: slots 14-15, CAP shrinks to 14 slots
	// coordinator received: 6
	// device synced: true
}

// ExampleSchedule_DutyCycle shows the superframe arithmetic.
func ExampleSchedule_DutyCycle() {
	s := beacon.Schedule{BeaconOrder: 6, SuperframeOrder: 3}
	fmt.Println("beacon interval:", s.BeaconInterval())
	fmt.Println("active portion: ", s.ActiveDuration())
	fmt.Printf("duty cycle: %.3f\n", s.DutyCycle())
	_ = time.Second
	// Output:
	// beacon interval: 983.04ms
	// active portion:  122.88ms
	// duty cycle: 0.125
}
