package beacon

import (
	"testing"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/radio"
)

func TestAssociationAssignsAddresses(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 3, SuperframeOrder: 3}
	coord, devs := pan(t, k, m, sched, 3)
	coord.EnableAssociation(AssocConfig{})
	coord.Start()
	for _, d := range devs {
		d.Associate(200 * time.Millisecond)
	}
	k.RunFor(30 * sched.BeaconInterval())

	seen := map[frame.Address]bool{}
	for i, d := range devs {
		if !d.Associated() {
			t.Fatalf("device %d never associated", i)
		}
		a := d.ShortAddr()
		if a < 0x0100 || a > 0x0102 {
			t.Errorf("device %d address = %#04x, want pool-assigned", i, a)
		}
		if seen[a] {
			t.Errorf("address %#04x assigned twice", a)
		}
		seen[a] = true
		// The radio adopted the new address.
		if d.Radio().Address() != a {
			t.Errorf("device %d radio address = %v, want %v", i, d.Radio().Address(), a)
		}
	}
	if got := len(coord.Members()); got != 3 {
		t.Errorf("members = %d, want 3", got)
	}
}

func TestAssociationCapacity(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 3, SuperframeOrder: 3}
	coord, devs := pan(t, k, m, sched, 3)
	coord.EnableAssociation(AssocConfig{MaxDevices: 2})
	coord.Start()
	for _, d := range devs {
		d.Associate(200 * time.Millisecond)
	}
	k.RunFor(30 * sched.BeaconInterval())

	associated := 0
	for _, d := range devs {
		if d.Associated() {
			associated++
		}
	}
	if associated != 2 {
		t.Errorf("associated = %d, want 2 (PAN at capacity)", associated)
	}
	if got := len(coord.Members()); got != 2 {
		t.Errorf("members = %d, want 2", got)
	}
	// The refused device stopped retrying (no endless spam).
	for _, d := range devs {
		if !d.Associated() && d.associating {
			t.Error("refused device still retrying")
		}
	}
}

func TestAssociationThenDataUsesAssignedAddress(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 3, SuperframeOrder: 3}
	coord, devs := pan(t, k, m, sched, 1)
	coord.EnableAssociation(AssocConfig{FirstAddr: 0x0200})
	coord.Start()
	devs[0].Associate(200 * time.Millisecond)
	k.RunFor(20 * sched.BeaconInterval())
	if !devs[0].Associated() {
		t.Fatal("not associated")
	}

	var srcs []frame.Address
	coord.OnReceive = func(rcv radio.Reception) { srcs = append(srcs, rcv.Frame.Src) }
	devs[0].Send(make([]byte, 16))
	k.RunFor(20 * sched.BeaconInterval())

	if len(srcs) != 1 || srcs[0] != devs[0].ShortAddr() {
		t.Errorf("data srcs = %v, want [%v]", srcs, devs[0].ShortAddr())
	}
}

func TestAssociationIdempotentForSameDevice(t *testing.T) {
	k, m := world(t)
	sched := Schedule{BeaconOrder: 3, SuperframeOrder: 3}
	coord, _ := pan(t, k, m, sched, 0)
	coord.EnableAssociation(AssocConfig{})
	// Simulate two requests from the same provisional address.
	coord.handleCommand(&frame.Frame{
		Type: frame.TypeCommand, Src: 42, Payload: []byte{cmdAssociationRequest},
	})
	coord.handleCommand(&frame.Frame{
		Type: frame.TypeCommand, Src: 42, Payload: []byte{cmdAssociationRequest},
	})
	if got := len(coord.Members()); got != 1 {
		t.Errorf("members = %d, want 1 (idempotent)", got)
	}
	_ = k
}
