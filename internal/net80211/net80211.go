// Package net80211 is a deliberately small 802.11b model used for one
// purpose: reproducing the paper's Fig. 2, the contrast between 802.11 and
// 802.15.4 on partially overlapped channels.
//
// The decisive difference is receiver behaviour. An 802.11b receiver locks
// onto and attempts to decode packets arriving from overlapping channels —
// the paper cites Mishra et al.: "inter-channel interference acts as valid
// packets and forces the receiver to decode it (even ... 15 MHz away);
// during the decoding, the receiver loses the desired packet". An 802.15.4
// receiver cannot synchronise to an off-channel carrier at all. This
// package implements the 802.11 side; the main simulator provides the
// 802.15.4 side.
package net80211

import (
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// 802.11b constants used by the model.
const (
	// ChannelSpacing between adjacent 2.4 GHz Wi-Fi channels.
	ChannelSpacing phy.MHz = 5
	// Channel1Freq is the center of channel 1.
	Channel1Freq phy.MHz = 2412
	// LockRange is how far off-channel a packet can be and still capture
	// the receiver's decoder (three channels, 15 MHz).
	LockRange phy.MHz = 15
	// CSThreshold is the DCF carrier-sense (energy-detect) threshold.
	CSThreshold phy.DBm = -82
	// Sensitivity below which a preamble cannot capture the decoder.
	Sensitivity phy.DBm = -88
	// SlotTime, DIFS and CWMax shape the DCF backoff.
	SlotTime = 20 * time.Microsecond
	// DIFS is the DCF inter-frame space.
	DIFS = 50 * time.Microsecond
	// CW is the (fixed, for this model) contention window in slots.
	CW = 31
	// CaptureSINR is the SINR above which a locked packet decodes.
	CaptureSINR = 4.0
)

// ChannelFreq returns the center frequency of 802.11b channel ch (1-11).
func ChannelFreq(ch int) phy.MHz {
	return Channel1Freq + phy.MHz(ch-1)*ChannelSpacing
}

// OverlapCurve is the spectral-overlap attenuation between two 22 MHz-wide
// 802.11b signals as a function of center-frequency distance. It plays the
// role phy.RejectionCurve plays for 802.15.4, so the generic medium can be
// reused.
type OverlapCurve struct{}

var overlapAnchors = []struct {
	off phy.MHz
	db  float64
}{
	{0, 0}, {5, 0.5}, {10, 2}, {15, 5}, {20, 9}, {25, 15}, {30, 30}, {35, 45}, {40, 50},
}

// RejectionDB implements phy.RejectionCurve for the Wi-Fi overlap model.
func (OverlapCurve) RejectionDB(deltaF phy.MHz) float64 {
	f := deltaF
	if f < 0 {
		f = -f
	}
	last := overlapAnchors[len(overlapAnchors)-1]
	if f >= last.off {
		return last.db
	}
	for i := 1; i < len(overlapAnchors); i++ {
		if f <= overlapAnchors[i].off {
			lo, hi := overlapAnchors[i-1], overlapAnchors[i]
			frac := float64(f-lo.off) / float64(hi.off-lo.off)
			return lo.db + frac*(hi.db-lo.db)
		}
	}
	return last.db
}

// Station is one 802.11b node: a saturated DCF sender or a receiver.
type Station struct {
	kernel *sim.Kernel
	medium *medium.Medium
	id     int
	pos    phy.Position
	freq   phy.MHz
	power  phy.DBm
	rng    *sim.RNG

	transmitting bool
	locked       *medium.Transmission
	lockedSINRok bool

	// Delivered counts co-channel packets successfully decoded. When
	// WatchSrc is >= 0, only packets from that station are counted.
	Delivered int
	// WatchSrc restricts Delivered to one transmitter's medium ID
	// (-1, the default, counts any co-channel packet).
	WatchSrc int
	// ForeignLocks counts decoder captures by off-channel packets — the
	// wasted receptions that destroy 802.11 overlap concurrency.
	ForeignLocks int
	// Sent counts transmissions put on the air.
	Sent int

	saturated bool
	payload   int
}

// NewStation attaches a station to the medium on the given Wi-Fi channel.
func NewStation(k *sim.Kernel, m *medium.Medium, name string, pos phy.Position, ch int, power phy.DBm) *Station {
	s := &Station{
		kernel:   k,
		medium:   m,
		pos:      pos,
		freq:     ChannelFreq(ch),
		power:    power,
		rng:      k.Stream("net80211." + name),
		WatchSrc: -1,
	}
	s.id = m.Attach(s)
	return s
}

// Position implements medium.Listener.
func (s *Station) Position() phy.Position { return s.pos }

// StartSaturated begins an endless saturated DCF transmit loop of frames
// with the given payload size.
func (s *Station) StartSaturated(payload int) {
	s.saturated = true
	s.payload = payload
	s.scheduleAttempt()
}

// StopSaturated halts the transmit loop after the current attempt.
func (s *Station) StopSaturated() { s.saturated = false }

func (s *Station) scheduleAttempt() {
	if !s.saturated {
		return
	}
	backoff := DIFS + time.Duration(s.rng.Intn(CW+1))*SlotTime
	s.kernel.After(backoff, s.attempt)
}

func (s *Station) attempt() {
	if !s.saturated {
		return
	}
	// DCF energy-detect carrier sense on our own channel: overlapping
	// foreign energy above CSThreshold defers us, co-channel obviously too.
	if s.medium.SensedPower(s.id, s.freq, nil) > CSThreshold || s.transmitting {
		s.scheduleAttempt()
		return
	}
	f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, s.payload)}
	s.transmitting = true
	s.Sent++
	tx := s.medium.Transmit(s.id, s.pos, s.power, s.freq, f)
	s.kernel.At(tx.End, func() {
		s.transmitting = false
		s.scheduleAttempt()
	})
}

// OnAir implements medium.Listener: the 802.11 decoder locks onto ANY
// sufficiently strong packet within LockRange of its channel, co-channel
// or not.
func (s *Station) OnAir(tx *medium.Transmission) {
	if tx.Src == s.id || s.transmitting || s.locked != nil {
		return
	}
	off := tx.Freq - s.freq
	if off < 0 {
		off = -off
	}
	if off > LockRange {
		return
	}
	if s.medium.RxPower(tx, s.id) < Sensitivity {
		return
	}
	s.locked = tx
	sinr := phy.SINR(s.medium.InChannelPower(tx, s.id, s.freq),
		s.medium.Interference(tx, s.id, s.freq))
	s.lockedSINRok = sinr >= CaptureSINR
	if off != 0 {
		s.ForeignLocks++
	}
}

// OffAir implements medium.Listener.
func (s *Station) OffAir(tx *medium.Transmission) {
	if s.locked != tx {
		return
	}
	if tx.Freq == s.freq && s.lockedSINRok &&
		(s.WatchSrc < 0 || tx.Src == s.WatchSrc) {
		s.Delivered++
	}
	s.locked = nil
}

// Interferer is a duty-cycled wideband 802.11 traffic source used for
// coexistence studies: it blasts back-to-back frames for BusyTime, idles
// for IdleTime, and repeats — the on/off envelope of a busy Wi-Fi cell as
// seen by a sensor network. It performs no carrier sense: real Wi-Fi
// rarely defers to 802.15.4, whose signals sit below the Wi-Fi
// energy-detect threshold.
type Interferer struct {
	kernel *sim.Kernel
	medium *medium.Medium
	id     int
	pos    phy.Position
	freq   phy.MHz
	power  phy.DBm

	// BusyTime and IdleTime shape the duty cycle.
	BusyTime, IdleTime time.Duration
	// Bursts counts completed busy periods.
	Bursts int

	running bool
}

// SignalWidth is the occupied bandwidth of an 802.11b transmission.
const SignalWidth phy.MHz = 22

// NewInterferer attaches a wideband interferer on the given Wi-Fi channel.
func NewInterferer(k *sim.Kernel, m *medium.Medium, pos phy.Position, ch int, power phy.DBm) *Interferer {
	i := &Interferer{
		kernel:   k,
		medium:   m,
		pos:      pos,
		freq:     ChannelFreq(ch),
		power:    power,
		BusyTime: 20 * time.Millisecond,
		IdleTime: 20 * time.Millisecond,
	}
	i.id = m.Attach(i)
	return i
}

// Position implements medium.Listener.
func (i *Interferer) Position() phy.Position { return i.pos }

// OnAir implements medium.Listener (the interferer never receives).
func (i *Interferer) OnAir(*medium.Transmission) {}

// OffAir implements medium.Listener.
func (i *Interferer) OffAir(*medium.Transmission) {}

// Start begins the duty cycle.
func (i *Interferer) Start() {
	if i.running {
		return
	}
	i.running = true
	i.busyPhase()
}

// Stop halts the duty cycle after the current frame.
func (i *Interferer) Stop() { i.running = false }

func (i *Interferer) busyPhase() {
	if !i.running {
		return
	}
	end := i.kernel.Now() + sim.FromDuration(i.BusyTime)
	var next func()
	next = func() {
		if !i.running || i.kernel.Now() >= end {
			i.Bursts++
			i.kernel.After(i.IdleTime, i.busyPhase)
			return
		}
		f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 100)}
		tx := i.medium.TransmitShaped(i.id, i.pos, i.power, i.freq, SignalWidth, f)
		i.kernel.At(tx.End, next)
	}
	next()
}
