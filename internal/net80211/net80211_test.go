package net80211

import (
	"testing"
	"time"

	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

func wifiWorld(seed int64) (*sim.Kernel, *medium.Medium) {
	k := sim.NewKernel(seed)
	m := medium.New(k,
		medium.WithFadingSigma(0),
		medium.WithStaticFadingSigma(0),
		medium.WithRejection(OverlapCurve{}),
		medium.WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))
	return k, m
}

// linkPair builds a Wi-Fi link (sender → receiver) on a channel, with the
// pair offset on the Y axis so multiple links can coexist.
func linkPair(k *sim.Kernel, m *medium.Medium, name string, ch int, y float64) (*Station, *Station) {
	snd := NewStation(k, m, name+".tx", phy.Position{X: 0, Y: y}, ch, 0)
	rcv := NewStation(k, m, name+".rx", phy.Position{X: 1, Y: y}, ch, 0)
	return snd, rcv
}

// run measures link A's delivered packets over a second of virtual time.
func run(t *testing.T, chB int) (delivered, foreignLocks int) {
	t.Helper()
	k, m := wifiWorld(11)
	sndA, rcvA := linkPair(k, m, "a", 1, 0)
	sndB, _ := linkPair(k, m, "b", chB, 2)
	sndA.StartSaturated(500)
	sndB.StartSaturated(500)
	k.RunFor(time.Second)
	return rcvA.Delivered, rcvA.ForeignLocks
}

func TestOverlapCurveMonotone(t *testing.T) {
	var c OverlapCurve
	prev := -1.0
	for f := phy.MHz(0); f <= 60; f++ {
		r := c.RejectionDB(f)
		if r < prev {
			t.Fatalf("overlap attenuation not monotone at %v MHz", f)
		}
		prev = r
	}
	if c.RejectionDB(-10) != c.RejectionDB(10) {
		t.Error("overlap not symmetric")
	}
	if c.RejectionDB(100) != 50 {
		t.Error("overlap does not saturate")
	}
}

func TestChannelFreq(t *testing.T) {
	if got := ChannelFreq(1); got != 2412 {
		t.Errorf("ch1 = %v, want 2412", got)
	}
	if got := ChannelFreq(11); got != 2462 {
		t.Errorf("ch11 = %v, want 2462", got)
	}
}

func TestIsolatedLinkDelivers(t *testing.T) {
	k, m := wifiWorld(7)
	snd, rcv := linkPair(k, m, "a", 1, 0)
	snd.StartSaturated(500)
	k.RunFor(time.Second)
	if rcv.Delivered < 20 {
		t.Errorf("isolated Wi-Fi link delivered %d pkt/s, want a saturated flow", rcv.Delivered)
	}
	if rcv.ForeignLocks != 0 {
		t.Errorf("foreign locks = %d on a single-link world", rcv.ForeignLocks)
	}
}

func TestAdjacentChannelDestroysThroughput(t *testing.T) {
	iso, _ := run(t, 99)    // channel far outside lock range: effectively isolated
	adj, locks := run(t, 3) // two channels away: overlap + foreign locks
	if locks == 0 {
		t.Error("no foreign decoder captures on an overlapping channel")
	}
	if float64(adj) > 0.8*float64(iso) {
		t.Errorf("adjacent-channel throughput %d vs isolated %d: 802.11 overlap should hurt", adj, iso)
	}
}

func TestFarChannelRecoversThroughput(t *testing.T) {
	iso, _ := run(t, 99)
	far, _ := run(t, 8) // 35 MHz away: outside lock range and below CS
	if float64(far) < 0.85*float64(iso) {
		t.Errorf("far-channel throughput %d vs isolated %d: should be restored", far, iso)
	}
}

func TestNormalizedThroughputShapeMatchesFig2(t *testing.T) {
	// The paper's Fig 2 (top): normalized throughput of an 802.11b link
	// stays suppressed for small channel separations and recovers only
	// around 5-6 channels away.
	iso, _ := run(t, 99)
	norm := func(ch int) float64 {
		d, _ := run(t, ch)
		return float64(d) / float64(iso)
	}
	near := norm(2)
	mid := norm(4)
	farN := norm(9)
	if near > 0.8 {
		t.Errorf("norm(ch2) = %v, want suppressed (< 0.8)", near)
	}
	if farN < 0.85 {
		t.Errorf("norm(ch9) = %v, want ≈ 1", farN)
	}
	if !(farN > near) {
		t.Errorf("throughput must recover with separation: near %v mid %v far %v", near, mid, farN)
	}
}
