package radio

import (
	"math"
	"testing"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// world bundles a kernel and medium with flat, fading-free propagation for
// deterministic unit tests.
func world(t *testing.T) (*sim.Kernel, *medium.Medium) {
	t.Helper()
	k := sim.NewKernel(7)
	m := medium.New(k,
		medium.WithFadingSigma(0),
		medium.WithStaticFadingSigma(0),
		medium.WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))
	return k, m
}

func dataFrame(payload int, src, dst frame.Address) *frame.Frame {
	return &frame.Frame{Type: frame.TypeData, Src: src, Dst: dst, Payload: make([]byte, payload)}
}

func TestCleanReceptionDelivers(t *testing.T) {
	k, m := world(t)
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
	rx := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, Address: 2})

	var got []Reception
	rx.OnReceive = func(r Reception) { got = append(got, r) }

	f := dataFrame(64, 1, 2)
	if _, err := tx.Transmit(f); err != nil {
		t.Fatal(err)
	}
	if tx.State() != StateTX {
		t.Fatalf("sender state = %v, want tx", tx.State())
	}
	if rx.State() != StateRX {
		t.Fatalf("receiver state = %v, want rx", rx.State())
	}
	k.Run()

	if len(got) != 1 {
		t.Fatalf("receptions = %d, want 1", len(got))
	}
	r := got[0]
	if !r.CRCOK {
		t.Errorf("CRCOK = false on a clean channel (bit errors %d)", r.BitErrors)
	}
	if r.Collided {
		t.Error("Collided = true with no interferer")
	}
	if math.Abs(float64(r.RSSI)+40) > 0.01 {
		t.Errorf("RSSI = %v, want ≈ -40 (1 m at 0 dBm)", r.RSSI)
	}
	if r.TotalBits != f.PayloadBits() {
		t.Errorf("TotalBits = %d, want %d", r.TotalBits, f.PayloadBits())
	}
	if tx.State() != StateIdle || rx.State() != StateIdle {
		t.Error("radios not back to idle after the frame")
	}
}

func TestInterChannelPacketIsNeverDecoded(t *testing.T) {
	k, m := world(t)
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2461, TxPower: 0, Address: 1})
	rx := New(k, m, Config{Pos: phy.Position{X: 0.5}, Freq: 2460, Address: 2})

	delivered := 0
	rx.OnReceive = func(Reception) { delivered++ }

	// Just 1 MHz away and blisteringly strong — still undecodable, the
	// core 802.15.4 uniqueness the paper exploits (vs 802.11, Fig 2).
	if _, err := tx.Transmit(dataFrame(64, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if rx.State() != StateIdle {
		t.Fatalf("receiver locked onto an off-channel packet (state %v)", rx.State())
	}
	k.Run()
	if delivered != 0 {
		t.Errorf("delivered = %d inter-channel packets, want 0", delivered)
	}
}

func TestBelowSensitivityNotLocked(t *testing.T) {
	k, m := world(t)
	// 0 dBm over ~100 m: 40+30·log10(100) = 100 dB loss → -100 dBm < -94.
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
	rx := New(k, m, Config{Pos: phy.Position{X: 100}, Freq: 2460, Address: 2})

	delivered := 0
	rx.OnReceive = func(Reception) { delivered++ }
	if _, err := tx.Transmit(dataFrame(32, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if rx.State() != StateIdle {
		t.Fatal("receiver locked onto a sub-sensitivity packet")
	}
	k.Run()
	if delivered != 0 {
		t.Errorf("delivered = %d, want 0", delivered)
	}
}

func TestCoChannelCollisionCorruptsWeakerPacket(t *testing.T) {
	k, m := world(t)
	// Wanted signal: 2 m → -49 dBm. Interferer: equidistant co-channel at
	// the same power starting mid-frame → SINR ≈ 0 dB for the overlap.
	txA := New(k, m, Config{Pos: phy.Position{X: -2}, Freq: 2460, TxPower: 0, Address: 1})
	txB := New(k, m, Config{Pos: phy.Position{X: 2}, Freq: 2460, TxPower: 0, Address: 2})
	rx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, Address: 3})

	var got []Reception
	rx.OnReceive = func(r Reception) { got = append(got, r) }

	if _, err := txA.Transmit(dataFrame(100, 1, 3)); err != nil {
		t.Fatal(err)
	}
	// Start the collider shortly after lock-on; equal power co-channel
	// → SINR ≈ 0 dB → the long overlap must corrupt bits w.h.p.
	k.After(200*sim.Microsecond.Duration(), func() {
		if _, err := txB.Transmit(dataFrame(100, 2, 3)); err != nil {
			t.Fatal(err)
		}
	})
	k.Run()

	if len(got) != 1 {
		t.Fatalf("receptions = %d, want 1 (only the locked frame)", len(got))
	}
	r := got[0]
	if !r.Collided {
		t.Error("Collided = false for an overlapped reception")
	}
	if r.CRCOK {
		t.Error("CRCOK = true despite a 0 dB co-channel collision")
	}
	if r.BitErrors == 0 || r.BitErrors > r.TotalBits {
		t.Errorf("BitErrors = %d out of %d, want within (0, total]", r.BitErrors, r.TotalBits)
	}
}

func TestToleratedInterChannelCollision(t *testing.T) {
	k, m := world(t)
	// Interferer 3 MHz away at equal received power: 14 dB rejection
	// → SINR ≈ 14 dB → clean decode. This is the paper's core claim.
	txA := New(k, m, Config{Pos: phy.Position{X: -2}, Freq: 2460, TxPower: 0, Address: 1})
	txB := New(k, m, Config{Pos: phy.Position{X: 2}, Freq: 2463, TxPower: 0, Address: 2})
	rx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, Address: 3})

	var got []Reception
	rx.OnReceive = func(r Reception) { got = append(got, r) }

	if _, err := txA.Transmit(dataFrame(100, 1, 3)); err != nil {
		t.Fatal(err)
	}
	k.After(200*sim.Microsecond.Duration(), func() {
		if _, err := txB.Transmit(dataFrame(100, 2, 3)); err != nil {
			t.Fatal(err)
		}
	})
	k.Run()

	if len(got) != 1 {
		t.Fatalf("receptions = %d, want 1", len(got))
	}
	if !got[0].Collided {
		t.Error("Collided = false, interference overlapped")
	}
	if !got[0].CRCOK {
		t.Errorf("CRCOK = false at 14 dB SINR (bit errors %d)", got[0].BitErrors)
	}
}

func TestCCAThresholdSemantics(t *testing.T) {
	k, m := world(t)
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
	obs := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, CCAThreshold: phy.DefaultCCAThreshold, Address: 2})
	_ = k

	if !obs.CCAClear() {
		t.Fatal("CCA busy on a quiet medium")
	}
	if _, err := tx.Transmit(dataFrame(32, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// -40 dBm sensed > -77 dBm threshold → busy.
	if obs.CCAClear() {
		t.Error("CCA clear while a -40 dBm co-channel signal is on the air")
	}
	// Relax the threshold above the sensed level → clear again, the DCN move.
	obs.SetCCAThreshold(-35)
	if !obs.CCAClear() {
		t.Error("CCA busy despite threshold above the sensed power")
	}
}

func TestCCAAppliesRejectionToOffChannelEnergy(t *testing.T) {
	k, m := world(t)
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2463, TxPower: 0, Address: 1})
	obs := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, CCAThreshold: -50, Address: 2})
	_ = k

	if _, err := tx.Transmit(dataFrame(32, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Raw -40 dBm, 3 MHz off → sensed ≈ -54 dBm < -50 → clear.
	if !obs.CCAClear() {
		t.Errorf("CCA busy: sensed %v vs threshold -50", obs.SensedPower())
	}
	obs.SetCCAThreshold(-60)
	if obs.CCAClear() {
		t.Error("CCA clear with threshold below the filtered energy")
	}
}

func TestTransmitterIgnoresOwnSignal(t *testing.T) {
	k, m := world(t)
	r := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, CCAThreshold: -77, Address: 1})
	_ = k
	if _, err := r.Transmit(dataFrame(32, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := r.SensedPower(); math.Abs(float64(got-phy.NoiseFloor)) > 1e-9 {
		t.Errorf("SensedPower during own TX = %v, want noise floor", got)
	}
}

func TestTransmitWhileTransmittingFails(t *testing.T) {
	k, m := world(t)
	r := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, Address: 1})
	_ = k
	if _, err := r.Transmit(dataFrame(32, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Transmit(dataFrame(32, 1, 2)); err == nil {
		t.Error("second Transmit during TX succeeded")
	}
}

func TestTransmitAbortsReception(t *testing.T) {
	k, m := world(t)
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
	rx := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, TxPower: 0, Address: 2})

	delivered := 0
	rx.OnReceive = func(Reception) { delivered++ }

	if _, err := tx.Transmit(dataFrame(64, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if rx.State() != StateRX {
		t.Fatal("receiver did not lock")
	}
	if _, err := rx.Transmit(dataFrame(16, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if rx.State() != StateTX {
		t.Fatalf("state = %v, want tx", rx.State())
	}
	k.Run()
	if delivered != 0 {
		t.Errorf("aborted reception still delivered (%d)", delivered)
	}
}

func TestOffRadioIsDeaf(t *testing.T) {
	k, m := world(t)
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
	rx := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, Address: 2})

	delivered := 0
	rx.OnReceive = func(Reception) { delivered++ }
	rx.SetOff()
	if _, err := tx.Transmit(dataFrame(32, 1, 2)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if delivered != 0 {
		t.Errorf("off radio delivered %d frames", delivered)
	}
	if _, err := rx.Transmit(dataFrame(16, 2, 1)); err == nil {
		t.Error("off radio transmitted")
	}
	rx.SetOn()
	if rx.State() != StateIdle {
		t.Errorf("state after SetOn = %v, want idle", rx.State())
	}
	// SetOn while idle is a no-op.
	rx.SetOn()
	if rx.State() != StateIdle {
		t.Error("SetOn changed a non-off state")
	}
}

func TestPowerOffMidReceptionAborts(t *testing.T) {
	k, m := world(t)
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
	rx := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, Address: 2})

	delivered := 0
	rx.OnReceive = func(Reception) { delivered++ }
	if _, err := tx.Transmit(dataFrame(64, 1, 2)); err != nil {
		t.Fatal(err)
	}
	k.After(100*sim.Microsecond.Duration(), rx.SetOff)
	k.Run()
	if delivered != 0 {
		t.Errorf("delivered = %d after mid-frame power-off", delivered)
	}
	if rx.State() != StateOff {
		t.Errorf("state = %v, want off", rx.State())
	}
}

func TestOnTxDoneFires(t *testing.T) {
	k, m := world(t)
	r := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, Address: 1})
	done := 0
	r.OnTxDone = func(*medium.Transmission) { done++ }
	f := dataFrame(32, 1, 2)
	if _, err := r.Transmit(f); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if done != 1 {
		t.Errorf("OnTxDone fired %d times, want 1", done)
	}
	if k.Now() != sim.FromDuration(f.Airtime()) {
		t.Errorf("tx completed at %v, want %v", k.Now(), f.Airtime())
	}
}

func TestBusyReceiverIgnoresSecondPreamble(t *testing.T) {
	k, m := world(t)
	txA := New(k, m, Config{Pos: phy.Position{X: -1}, Freq: 2460, TxPower: 0, Address: 1})
	txB := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, TxPower: 0, Address: 2})
	rx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, Address: 3})

	var frames []frame.Address
	rx.OnReceive = func(r Reception) { frames = append(frames, r.Frame.Src) }

	if _, err := txA.Transmit(dataFrame(64, 1, 3)); err != nil {
		t.Fatal(err)
	}
	k.After(300*sim.Microsecond.Duration(), func() {
		if _, err := txB.Transmit(dataFrame(16, 2, 3)); err != nil {
			t.Fatal(err)
		}
	})
	k.Run()
	// Only the first frame is ever reported (likely corrupted); the second
	// is pure interference.
	if len(frames) != 1 || frames[0] != 1 {
		t.Errorf("delivered srcs = %v, want [1]", frames)
	}
}

func TestErrorFraction(t *testing.T) {
	r := Reception{BitErrors: 10, TotalBits: 100}
	if got := r.ErrorFraction(); got != 0.1 {
		t.Errorf("ErrorFraction = %v, want 0.1", got)
	}
	var zero Reception
	if got := zero.ErrorFraction(); got != 0 {
		t.Errorf("zero ErrorFraction = %v, want 0", got)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateOff: "off", StateIdle: "idle", StateRX: "rx", StateTX: "tx", State(0): "state(0)",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestSetFreqRetunesAndAbortsReception(t *testing.T) {
	k, m := world(t)
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
	rx := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, Address: 2})

	delivered := 0
	rx.OnReceive = func(Reception) { delivered++ }
	if _, err := tx.Transmit(dataFrame(64, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if rx.State() != StateRX {
		t.Fatal("receiver did not lock")
	}
	// Retune mid-reception: the frame is lost.
	k.After(100*sim.Microsecond.Duration(), func() { rx.SetFreq(2463) })
	k.Run()
	if delivered != 0 {
		t.Errorf("delivered = %d after mid-frame retune, want 0", delivered)
	}
	if rx.Freq() != 2463 {
		t.Errorf("Freq = %v, want 2463", rx.Freq())
	}
	// Same-frequency retune is a no-op (no abort).
	if _, err := tx.Transmit(dataFrame(64, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// rx is tuned to 2463 now: the 2460 frame is inter-channel, no lock.
	if rx.State() != StateIdle {
		t.Error("receiver locked to an off-channel frame after retune")
	}
	k.Run()
}

func TestPreambleCaptureStealsLock(t *testing.T) {
	k, m := world(t)
	weak := New(k, m, Config{Pos: phy.Position{X: 4}, Freq: 2460, TxPower: 0, Address: 1})
	strong := New(k, m, Config{Pos: phy.Position{X: 0.5}, Freq: 2460, TxPower: 0, Address: 2})
	rx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, Address: 3,
		CaptureMargin: 6})

	var got []frame.Address
	rx.OnReceive = func(r Reception) {
		if r.CRCOK {
			got = append(got, r.Frame.Src)
		}
	}
	// Weak frame first (-67 dBm at 4 m), then a much stronger one
	// (-31 dBm at 0.5 m) arrives mid-frame and captures the receiver.
	if _, err := weak.Transmit(dataFrame(100, 1, 3)); err != nil {
		t.Fatal(err)
	}
	k.After(500*sim.Microsecond.Duration(), func() {
		if _, err := strong.Transmit(dataFrame(32, 2, 3)); err != nil {
			t.Fatal(err)
		}
	})
	k.Run()
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("delivered srcs = %v, want [2] (capture)", got)
	}
}

func TestNoCaptureWithoutMargin(t *testing.T) {
	k, m := world(t)
	weak := New(k, m, Config{Pos: phy.Position{X: 4}, Freq: 2460, TxPower: 0, Address: 1})
	strong := New(k, m, Config{Pos: phy.Position{X: 0.5}, Freq: 2460, TxPower: 0, Address: 2})
	rx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, Address: 3}) // capture off

	var clean []frame.Address
	rx.OnReceive = func(r Reception) {
		if r.CRCOK {
			clean = append(clean, r.Frame.Src)
		}
	}
	if _, err := weak.Transmit(dataFrame(100, 1, 3)); err != nil {
		t.Fatal(err)
	}
	k.After(500*sim.Microsecond.Duration(), func() {
		if _, err := strong.Transmit(dataFrame(32, 2, 3)); err != nil {
			t.Fatal(err)
		}
	})
	k.Run()
	// Without capture the radio stays on the weak frame, which the strong
	// overlap destroys; the strong frame was never locked. Nothing clean.
	if len(clean) != 0 {
		t.Errorf("delivered srcs = %v, want none without capture", clean)
	}
}

// TestPERTableCleanChannelBitIdentical runs the same clean-channel
// reception with and without a quantised PER table installed. A clean
// channel sits far above the table's domain, where both the closed form
// and the clamped lookup return a BER of exactly zero, so the two
// receptions — RNG draws included — must be bit-identical.
func TestPERTableCleanChannelBitIdentical(t *testing.T) {
	run := func(tab *phy.PERTable) Reception {
		k, m := world(t)
		tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
		rx := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, Address: 2, PERTable: tab})
		var got []Reception
		rx.OnReceive = func(r Reception) { got = append(got, r) }
		if _, err := tx.Transmit(dataFrame(64, 1, 2)); err != nil {
			t.Fatal(err)
		}
		k.Run()
		if len(got) != 1 {
			t.Fatalf("receptions = %d, want 1", len(got))
		}
		return got[0]
	}
	tab, err := phy.NewPERTable(-20, 20, 0.05, 648)
	if err != nil {
		t.Fatal(err)
	}
	exact := run(nil)
	tabbed := run(tab)
	if exact.Frame != nil && tabbed.Frame != nil {
		exact.Frame, tabbed.Frame = nil, nil // pointers differ across worlds
	}
	if exact != tabbed {
		t.Fatalf("receptions diverge: closed form %+v, table %+v", exact, tabbed)
	}
	if !tabbed.CRCOK {
		t.Fatal("clean reception failed CRC on the table path")
	}
}

// TestPERTableConfigIsConsulted proves the table branch is actually
// taken: a table whose domain tops out deep inside the error cliff
// clamps a clean channel's huge SINR down to a lossy BER, destroying a
// frame the closed form would deliver untouched.
func TestPERTableConfigIsConsulted(t *testing.T) {
	k, m := world(t)
	// Domain ends at 0 dB: every lookup above it clamps to BER(0 dB),
	// which sits well up the DSSS cliff.
	tab, err := phy.NewPERTable(-10, 0, 0.1, 648)
	if err != nil {
		t.Fatal(err)
	}
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
	rx := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, Address: 2, PERTable: tab})
	var got []Reception
	rx.OnReceive = func(r Reception) { got = append(got, r) }
	if _, err := tx.Transmit(dataFrame(64, 1, 2)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(got) != 1 {
		t.Fatalf("receptions = %d, want 1", len(got))
	}
	if got[0].CRCOK || got[0].BitErrors == 0 {
		t.Fatalf("reception %+v survived a clamped-to-cliff PER table; the table path was not taken", got[0])
	}
}
