package radio

import (
	"math"
	"testing"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

func TestTxCurrentTable(t *testing.T) {
	tests := []struct {
		power phy.DBm
		want  float64
	}{
		{0, 17.4},
		{-5, 14.0},
		{-25, 8.5},
		{-40, 8.5},   // clamps low
		{5, 17.4},    // clamps high
		{-7.5, 12.5}, // interpolates between -10 (11.0) and -5 (14.0)
	}
	for _, tt := range tests {
		if got := phy.TxCurrentMA(tt.power); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("TxCurrentMA(%v) = %v, want %v", tt.power, got, tt.want)
		}
	}
}

func TestEnergyMillijoules(t *testing.T) {
	// 3 V · 10 mA · 2 s = 60 mJ.
	if got := phy.EnergyMillijoules(10, 2); got != 60 {
		t.Errorf("EnergyMillijoules = %v, want 60", got)
	}
}

func TestEnergyReportPartitionsTime(t *testing.T) {
	k, m := world(t)
	r := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})

	// 1 s idle, then a frame (2.592 ms at 64 B payload), then off for 1 s.
	f := dataFrame(64, 1, 2)
	k.After(time.Second, func() {
		if _, err := r.Transmit(f); err != nil {
			t.Error(err)
		}
	})
	k.After(2500*time.Millisecond, r.SetOff)
	k.RunUntil(sim.FromDuration(3500 * time.Millisecond))

	rep := r.EnergyReport()
	if math.Abs(rep.TxSeconds-0.002592) > 1e-9 {
		t.Errorf("TxSeconds = %v, want 0.002592", rep.TxSeconds)
	}
	wantListen := 2.5 - 0.002592
	if math.Abs(rep.ListenSeconds-wantListen) > 1e-9 {
		t.Errorf("ListenSeconds = %v, want %v", rep.ListenSeconds, wantListen)
	}
	if math.Abs(rep.OffSeconds-1.0) > 1e-9 {
		t.Errorf("OffSeconds = %v, want 1", rep.OffSeconds)
	}
	wantMJ := phy.EnergyMillijoules(phy.TxCurrentMA(0), 0.002592) +
		phy.EnergyMillijoules(phy.RxCurrentMA, wantListen) +
		phy.EnergyMillijoules(phy.OffCurrentMA, 1.0)
	if math.Abs(rep.Millijoules-wantMJ) > 1e-9 {
		t.Errorf("Millijoules = %v, want %v", rep.Millijoules, wantMJ)
	}
}

func TestEnergyReportIsMonotone(t *testing.T) {
	k, m := world(t)
	r := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
	k.RunUntil(sim.FromDuration(time.Second))
	first := r.EnergyReport().Millijoules
	k.RunFor(time.Second)
	second := r.EnergyReport().Millijoules
	if second <= first {
		t.Errorf("energy not monotone: %v then %v", first, second)
	}
}

func TestTransmitCostsMoreThanListening(t *testing.T) {
	k, m := world(t)
	idle := New(k, m, Config{Pos: phy.Position{X: 5}, Freq: 2470, TxPower: 0, Address: 9})
	busy := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})

	// busy transmits back-to-back for the whole second; idle just listens.
	var next func()
	next = func() {
		if k.Now() >= sim.FromDuration(900*time.Millisecond) {
			return
		}
		f := dataFrame(100, 1, 2)
		if _, err := busy.Transmit(f); err == nil {
			k.After(f.Airtime(), next)
		}
	}
	next()
	k.RunUntil(sim.FromDuration(time.Second))

	// At 0 dBm the TX current (17.4 mA) is below the RX current (18.8 mA)
	// on a real CC2420 — transmitting is actually slightly cheaper than
	// listening, a well-known quirk the model must preserve.
	eBusy := busy.EnergyReport()
	eIdle := idle.EnergyReport()
	if eBusy.TxSeconds < 0.8 {
		t.Fatalf("busy TxSeconds = %v, want most of the second", eBusy.TxSeconds)
	}
	if eBusy.Millijoules >= eIdle.Millijoules {
		t.Errorf("CC2420 quirk violated: TX energy %v should be below RX energy %v at 0 dBm",
			eBusy.Millijoules, eIdle.Millijoules)
	}
}
