package radio

import (
	"math"
	"testing"

	"nonortho/internal/phy"
)

func TestSetCCAThresholdClampsToRegisterRange(t *testing.T) {
	k, m := world(t)
	r := New(k, m, Config{Freq: 2460, Address: 1})

	r.SetCCAThreshold(-150)
	if got := r.CCAThreshold(); got != phy.CCARegisterMin {
		t.Fatalf("threshold = %v, want clamped to %v", got, phy.CCARegisterMin)
	}
	r.SetCCAThreshold(10)
	if got := r.CCAThreshold(); got != phy.CCARegisterMax {
		t.Fatalf("threshold = %v, want clamped to %v", got, phy.CCARegisterMax)
	}
	if got := r.RegisterStats().OutOfRangeWrites; got != 2 {
		t.Fatalf("OutOfRangeWrites = %d, want 2", got)
	}
	// In-range writes are not counted.
	r.SetCCAThreshold(-77)
	if got := r.RegisterStats().OutOfRangeWrites; got != 2 {
		t.Fatalf("OutOfRangeWrites = %d after an in-range write, want 2", got)
	}
}

func TestNewClampsInitialThreshold(t *testing.T) {
	k, m := world(t)
	r := New(k, m, Config{Freq: 2460, Address: 1, CCAThreshold: -200})
	if got := r.CCAThreshold(); got != phy.CCARegisterMin {
		t.Fatalf("initial threshold = %v, want clamped to %v", got, phy.CCARegisterMin)
	}
}

func TestStuckRegisterIgnoresWritesAndCounts(t *testing.T) {
	k, m := world(t)
	r := New(k, m, Config{Freq: 2460, Address: 1, CCAThreshold: -77})

	r.SetCCAStuck(true)
	if !r.CCAStuck() {
		t.Fatal("CCAStuck not reported")
	}
	r.SetCCAThreshold(-60)
	r.SetCCAThreshold(-50)
	if got := r.CCAThreshold(); got != -77 {
		t.Fatalf("stuck register moved to %v", got)
	}
	if got := r.RegisterStats().IgnoredWrites; got != 2 {
		t.Fatalf("IgnoredWrites = %d, want 2", got)
	}
	r.SetCCAStuck(false)
	r.SetCCAThreshold(-60)
	if got := r.CCAThreshold(); got != -60 {
		t.Fatalf("released register still stuck at %v", got)
	}
}

func TestRSSICalibrationShiftsMeasurementsNotPhysics(t *testing.T) {
	k, m := world(t)
	tx := New(k, m, Config{Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0, Address: 1})
	rx := New(k, m, Config{Pos: phy.Position{X: 1}, Freq: 2460, Address: 2})

	rx.SetRSSICalibration(5)
	if got := rx.RSSICalibration(); got != 5 {
		t.Fatalf("RSSICalibration = %v, want 5", got)
	}

	// A quiet medium measures the noise floor plus the calibration error.
	if got := rx.SensedPower(); math.Abs(float64(got-(phy.NoiseFloor+5))) > 0.01 {
		t.Fatalf("sensed power = %v, want noise floor %v + 5", got, phy.NoiseFloor)
	}

	var got []Reception
	rx.OnReceive = func(r Reception) { got = append(got, r) }
	if _, err := tx.Transmit(dataFrame(64, 1, 2)); err != nil {
		t.Fatal(err)
	}
	k.Run()

	if len(got) != 1 {
		t.Fatalf("receptions = %d, want 1", len(got))
	}
	// 1 m at 0 dBm through the 40 dB reference loss is -40; the register
	// reads 5 dB high. Decoding itself is unaffected: the true signal is
	// far above the noise floor.
	if math.Abs(float64(got[0].RSSI)+35) > 0.01 {
		t.Fatalf("reported RSSI = %v, want ≈ -35", got[0].RSSI)
	}
	if !got[0].CRCOK {
		t.Fatal("calibration error corrupted a clean frame")
	}
}
