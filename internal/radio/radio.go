// Package radio models a CC2420-class IEEE 802.15.4 transceiver: a state
// machine with clear-channel assessment against a programmable threshold,
// an RSSI register, preamble lock-on, and per-segment interference
// integration that yields both packet verdicts and bit-error statistics.
//
// The model captures the property the paper's design rests on: the
// receiver can only synchronise to packets on its own channel. Energy from
// other channels (even 1 MHz away) is never decoded — it enters the SINR
// as filtered interference only.
package radio

import (
	"fmt"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// State is the transceiver state.
type State int

// Radio states.
const (
	StateOff State = iota + 1
	StateIdle
	StateRX
	StateTX
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateIdle:
		return "idle"
	case StateRX:
		return "rx"
	case StateTX:
		return "tx"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// bitPeriod is the duration of one bit at 250 kbps.
const bitPeriod = 4 * sim.Microsecond

// Reception describes a frame whose preamble the radio captured, whether or
// not it finally passed the CRC.
type Reception struct {
	// Frame is the MAC frame carried by the transmission.
	Frame *frame.Frame
	// RSSI is the received signal strength the radio records for the
	// packet, as the CC2420 stamps into the RX FIFO.
	RSSI phy.DBm
	// BitErrors is the number of corrupted MPDU bits.
	BitErrors int
	// TotalBits is the MPDU size in bits.
	TotalBits int
	// CRCOK reports whether the frame decoded cleanly.
	CRCOK bool
	// Collided reports whether any interference above the noise floor
	// overlapped the reception.
	Collided bool
	// Start and End bound the reception interval.
	Start, End sim.Time
}

// ErrorFraction is the proportion of corrupted bits, the quantity of the
// paper's Fig. 29.
func (r Reception) ErrorFraction() float64 {
	if r.TotalBits == 0 {
		return 0
	}
	return float64(r.BitErrors) / float64(r.TotalBits)
}

// Config parameterises a radio.
type Config struct {
	// Pos is the antenna position.
	Pos phy.Position
	// Freq is the channel center frequency the radio is tuned to.
	Freq phy.MHz
	// TxPower is the transmit power.
	TxPower phy.DBm
	// CCAThreshold is the programmable clear-channel threshold; the
	// CC2420/ZigBee default is -77 dBm.
	CCAThreshold phy.DBm
	// Address is the node's short address.
	Address frame.Address
	// CaptureMargin enables message-in-message capture when positive: a
	// co-channel packet arriving at least this many dB above the one
	// being received steals the lock (the weaker frame is lost). Zero
	// disables capture, the conservative default.
	CaptureMargin phy.DBm
	// PERTable, when non-nil, makes the radio evaluate per-segment bit
	// errors through the quantised BER lookup instead of the exact closed
	// form. This is an explicit opt-in approximation for large sweeps —
	// the published experiments leave it nil, so their outputs always
	// come from the reference curve.
	PERTable *phy.PERTable
}

// RegisterStats counts anomalous interactions with the CCA threshold
// register — the observability the fault-injection subsystem relies on.
type RegisterStats struct {
	// OutOfRangeWrites counts SetCCAThreshold calls whose value had to be
	// clamped into the CC2420 programmable range.
	OutOfRangeWrites int
	// IgnoredWrites counts writes silently dropped while the register was
	// stuck (fault injection).
	IgnoredWrites int
}

// Radio is one transceiver attached to a medium. Single-threaded, like the
// rest of the simulation.
type Radio struct {
	kernel *sim.Kernel
	medium *medium.Medium
	id     int
	cfg    Config
	state  State
	rng    *sim.RNG
	// streamName caches the formatted bit-stream name ("radio.N.bits").
	// An arena sweep Reinits each radio once per cell, almost always at
	// the same address; reusing the string skips a fmt round-trip and its
	// allocation on the cell-setup path.
	streamName string

	// rssiOffset is a calibration error added to every measured power
	// (sensed energy and reported packet RSSI). It shifts what the radio
	// *reads*, never the physics: SINR integration uses true powers.
	rssiOffset phy.DBm
	// ccaStuck, when set, makes the CCA threshold register ignore writes —
	// the stuck-register fault model.
	ccaStuck bool
	regStats RegisterStats

	rx     *receptionState
	ownTx  *medium.Transmission
	energy energyMeter

	// rxBuf backs rx: the state never escapes a reception (receivers get a
	// Reception value), so one embedded buffer per radio replaces a heap
	// allocation per lock-on.
	rxBuf receptionState

	// OnReceive is invoked for every co-channel frame whose preamble was
	// captured, including CRC failures and frames addressed elsewhere —
	// the promiscuous view the DCN CCA-Adjustor needs.
	OnReceive func(Reception)
	// OnTxDone is invoked when the radio's own transmission leaves the air.
	OnTxDone func(*medium.Transmission)
}

type receptionState struct {
	tx        *medium.Transmission
	signal    phy.DBm
	bitErrors int
	segStart  sim.Time
	collided  bool
	carry     float64 // fractional bits not yet attributed to a segment
}

// New attaches a radio to the medium in the idle state.
func New(k *sim.Kernel, m *medium.Medium, cfg Config) *Radio {
	r := &Radio{}
	r.Reinit(k, m, cfg)
	return r
}

// Reinit rebuilds the radio in place against a (possibly different) kernel
// and medium, exactly as New constructs a fresh one — every field,
// including the energy meter and fault state, starts over. The cross-cell
// arena uses it to recycle radio structs between simulation cells; the
// bit-stream RNG is the kernel's stream for the new address, so a reused
// radio draws the same sequence a fresh one would.
func (r *Radio) Reinit(k *sim.Kernel, m *medium.Medium, cfg Config) {
	name := r.streamName
	if name == "" || cfg.Address != r.cfg.Address {
		name = fmt.Sprintf("radio.%d.bits", cfg.Address)
	}
	*r = Radio{
		kernel:     k,
		medium:     m,
		cfg:        cfg,
		state:      StateIdle,
		streamName: name,
		rng:        k.Stream(name),
	}
	// The hardware register cannot hold an out-of-range threshold, however
	// the radio was configured.
	r.cfg.CCAThreshold, _ = phy.ClampCCAThreshold(cfg.CCAThreshold)
	r.energy.account(r.state, cfg.TxPower, k.Now()) // start the meter
	r.id = m.Attach(r)
}

// Interest implements medium.InterestedListener: the events a radio's
// handlers can react to are fully determined by its state. Idle, it can
// only lock on to decodable co-channel preambles above the sensitivity
// floor; receiving, any landscape change anywhere splits the SINR
// integration segment, so it must hear everything. A transmitting or
// powered-off radio is deaf to all but its own transmission's completion
// (the source is always in its own delivery set) — but it deliberately
// declares the same band interest as idle rather than collapsing to
// ScopeOwn: delivering to a deaf radio is a guaranteed no-op (OnAir
// returns immediately in TX/Off), so band membership is a safe superset,
// and keeping it makes the per-packet idle↔TX transitions free for the
// medium's interest index — no bucket surgery on the hottest transition
// in a saturated cell. Only RX entry/exit and retunes move buckets.
func (r *Radio) Interest() medium.Interest {
	if r.state == StateRX {
		return medium.Interest{Scope: medium.ScopeAll}
	}
	return medium.Interest{Scope: medium.ScopeBand, Band: r.cfg.Freq, Floor: phy.Sensitivity}
}

// ID returns the radio's medium attachment ID.
func (r *Radio) ID() int { return r.id }

// Position implements medium.Listener.
func (r *Radio) Position() phy.Position { return r.cfg.Pos }

// State reports the transceiver state.
func (r *Radio) State() State { return r.state }

// Config returns a copy of the radio's configuration.
func (r *Radio) Config() Config { return r.cfg }

// Freq returns the tuned channel center frequency.
func (r *Radio) Freq() phy.MHz { return r.cfg.Freq }

// Address returns the radio's short address.
func (r *Radio) Address() frame.Address { return r.cfg.Address }

// SetCCAThreshold reprograms the CCA threshold register, the knob the DCN
// CCA-Adjustor turns. Values outside the CC2420 programmable range are
// clamped (and counted), so injected drift can never program an impossible
// threshold. While the register is stuck (fault injection) the write is
// silently ignored, exactly as the fault model prescribes.
func (r *Radio) SetCCAThreshold(t phy.DBm) {
	if r.ccaStuck {
		r.regStats.IgnoredWrites++
		return
	}
	v, clamped := phy.ClampCCAThreshold(t)
	if clamped {
		r.regStats.OutOfRangeWrites++
	}
	r.cfg.CCAThreshold = v
}

// CCAThreshold reads the current threshold register.
func (r *Radio) CCAThreshold() phy.DBm { return r.cfg.CCAThreshold }

// RegisterStats returns the CCA register write anomaly counters.
func (r *Radio) RegisterStats() RegisterStats { return r.regStats }

// SetCCAStuck injects (true) or clears (false) the stuck-register fault:
// while stuck, SetCCAThreshold writes are silently ignored.
func (r *Radio) SetCCAStuck(stuck bool) { r.ccaStuck = stuck }

// CCAStuck reports whether the stuck-register fault is active.
func (r *Radio) CCAStuck() bool { return r.ccaStuck }

// SetRSSICalibration injects an additive calibration error, in dB, into
// every power measurement the radio reports (sensed energy, packet RSSI).
// Zero restores a perfectly calibrated radio.
func (r *Radio) SetRSSICalibration(offset phy.DBm) { r.rssiOffset = offset }

// RSSICalibration returns the current calibration error.
func (r *Radio) RSSICalibration() phy.DBm { return r.rssiOffset }

// SetTxPower reprograms the transmit power.
func (r *Radio) SetTxPower(p phy.DBm) { r.cfg.TxPower = p }

// SetAddress rewrites the hardware address-recognition register — the
// operation a device performs after a PAN coordinator assigns it a short
// address during association.
func (r *Radio) SetAddress(a frame.Address) { r.cfg.Address = a }

// SetFreq retunes the synthesizer to a new channel center frequency — the
// operation a channel-hopping MAC performs at every slot boundary. Any
// reception in progress is lost (the PLL leaves the channel), matching
// hardware behaviour.
func (r *Radio) SetFreq(f phy.MHz) {
	if r.cfg.Freq == f {
		return
	}
	r.abortRx()
	r.cfg.Freq = f
	r.medium.SetInterest(r.id, r.Interest())
}

// SetOff powers the radio down, aborting any reception in progress. Used
// for failure injection.
func (r *Radio) SetOff() {
	r.abortRx()
	r.setState(StateOff)
}

// SetOn powers an off radio back to idle. No-op in any other state.
func (r *Radio) SetOn() {
	if r.state == StateOff {
		r.setState(StateIdle)
	}
}

// SensedPower reads the RSSI register: total in-channel energy, the
// quantity CCA compares against the threshold. A transmitting radio does
// not hear the medium; reading during TX returns the last meaningful value
// semantics-free, so we simply exclude our own signal. The reading includes
// any injected calibration error.
func (r *Radio) SensedPower() phy.DBm {
	return r.medium.SensedPower(r.id, r.cfg.Freq, r.ownTx) + r.rssiOffset
}

// CCAClear performs a clear-channel assessment: true when the sensed
// in-channel energy does not exceed the programmed threshold.
func (r *Radio) CCAClear() bool {
	return r.SensedPower() <= r.cfg.CCAThreshold
}

// SensedCoChannelPower reads only the co-channel energy — an oracle
// measurement no real CC2420 can make (see Medium.SensedCoChannelPower).
// It backs the interference-differentiating CCA upper bound of the
// paper's Section VII-C.
func (r *Radio) SensedCoChannelPower() phy.DBm {
	return r.medium.SensedCoChannelPower(r.id, r.cfg.Freq, r.ownTx)
}

// Transmit puts f on the air at the radio's channel and power. Any
// reception in progress is abandoned (the PLL retunes to TX), exactly as on
// real hardware when the MAC strobes TXON. Returns an error if the radio is
// off or already transmitting.
func (r *Radio) Transmit(f *frame.Frame) (*medium.Transmission, error) {
	switch r.state {
	case StateOff:
		return nil, fmt.Errorf("radio %d: transmit while off", r.cfg.Address)
	case StateTX:
		return nil, fmt.Errorf("radio %d: transmit while already transmitting", r.cfg.Address)
	}
	r.abortRx()
	r.setState(StateTX)
	tx := r.medium.Transmit(r.id, r.cfg.Pos, r.cfg.TxPower, r.cfg.Freq, f)
	r.ownTx = tx
	return tx, nil
}

// OnAir implements medium.Listener.
func (r *Radio) OnAir(tx *medium.Transmission) {
	if tx.Src == r.id {
		return // our own signal
	}
	if r.state == StateOff || r.state == StateTX {
		return // deaf while off or transmitting
	}
	if r.state == StateRX {
		// Interference landscape changed mid-reception.
		r.closeSegment()
		r.rx.collided = true
		// Message-in-message capture: a sufficiently stronger co-channel
		// arrival steals the lock.
		if r.cfg.CaptureMargin > 0 && tx.Freq == r.cfg.Freq {
			if newSignal := r.medium.RxPower(tx, r.id); newSignal >= r.rx.signal+r.cfg.CaptureMargin {
				r.rxBuf = receptionState{
					tx:       tx,
					signal:   newSignal,
					segStart: r.kernel.Now(),
					collided: true,
				}
				r.rx = &r.rxBuf
			}
		}
		return
	}
	// Idle: can we lock on? Only co-channel preambles are decodable —
	// the 802.15.4 receiver cannot synchronise to an offset carrier.
	if tx.Freq != r.cfg.Freq {
		return
	}
	// The same reachability predicate the dissemination filter applies:
	// a transmission provably below the sensitivity floor cannot lock
	// (and must not consume a fading draw), whether or not the filter
	// delivered the event — that shared gate is what keeps filtered and
	// unfiltered runs bit-identical.
	if !r.medium.Reachable(tx, r.id) {
		return
	}
	signal := r.medium.RxPower(tx, r.id)
	if signal < phy.Sensitivity {
		return
	}
	r.setState(StateRX)
	r.rxBuf = receptionState{
		tx:       tx,
		signal:   signal,
		segStart: r.kernel.Now(),
	}
	r.rx = &r.rxBuf
	if r.medium.Interference(tx, r.id, r.cfg.Freq) > phy.Silent {
		r.rx.collided = true
	}
}

// OffAir implements medium.Listener.
func (r *Radio) OffAir(tx *medium.Transmission) {
	if tx.Src == r.id {
		r.ownTx = nil
		if r.state == StateTX {
			r.setState(StateIdle)
		}
		if r.OnTxDone != nil {
			r.OnTxDone(tx)
		}
		return
	}
	if r.state != StateRX {
		return
	}
	if r.rx.tx == tx {
		r.finishRx()
		return
	}
	// An interferer left mid-reception.
	r.closeSegment()
}

// closeSegment integrates bit errors over the elapsed segment at the
// current interference level and starts a new segment.
func (r *Radio) closeSegment() {
	now := r.kernel.Now()
	elapsed := now - r.rx.segStart
	r.rx.segStart = now
	if elapsed <= 0 {
		return
	}
	exact := float64(elapsed)/float64(bitPeriod) + r.rx.carry
	bits := int(exact)
	r.rx.carry = exact - float64(bits)
	if bits == 0 {
		return
	}
	interf := r.medium.Interference(r.rx.tx, r.id, r.cfg.Freq)
	sinr := phy.SINR(r.rx.signal, interf)
	var ber float64
	if t := r.cfg.PERTable; t != nil {
		ber = t.BER(sinr)
	} else {
		ber = phy.BitErrorRate(sinr)
	}
	r.rx.bitErrors += r.rng.Binomial(bits, ber)
}

func (r *Radio) finishRx() {
	r.closeSegment()
	rx := r.rx
	r.rx = nil
	r.setState(StateIdle)

	total := rx.tx.Frame.PayloadBits()
	errs := rx.bitErrors
	if errs > total {
		errs = total
	}
	rcv := Reception{
		Frame:     rx.tx.Frame,
		RSSI:      rx.signal + r.rssiOffset,
		BitErrors: errs,
		TotalBits: total,
		CRCOK:     errs == 0,
		Collided:  rx.collided,
		Start:     rx.tx.Start,
		End:       rx.tx.End,
	}
	if r.OnReceive != nil {
		r.OnReceive(rcv)
	}
}

func (r *Radio) abortRx() {
	if r.state == StateRX {
		r.rx = nil
		r.setState(StateIdle)
	}
}
