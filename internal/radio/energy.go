package radio

import (
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// EnergyReport summarises a radio's consumption since creation. Idle and
// RX both draw the receive current (a CSMA node listens whenever it is not
// transmitting), TX draws the power-dependent transmit current, OFF the
// power-down current.
type EnergyReport struct {
	// TxSeconds, ListenSeconds and OffSeconds partition the radio's
	// lifetime.
	TxSeconds     float64
	ListenSeconds float64
	OffSeconds    float64
	// Millijoules is the total energy consumed.
	Millijoules float64
}

// energyMeter accumulates state residency. TX energy is integrated
// directly because the transmit power (and with it the current draw) can
// change between transmissions.
type energyMeter struct {
	lastChange  sim.Time
	txTime      sim.Time
	listenTime  sim.Time
	offTime     sim.Time
	txEnergyMJ  float64
	initialized bool
}

// account closes the residency interval ending now for the given state.
func (m *energyMeter) account(state State, txPower phy.DBm, now sim.Time) {
	if !m.initialized {
		m.lastChange = now
		m.initialized = true
		return
	}
	elapsed := now - m.lastChange
	m.lastChange = now
	if elapsed <= 0 {
		return
	}
	switch state {
	case StateTX:
		m.txTime += elapsed
		m.txEnergyMJ += phy.EnergyMillijoules(phy.TxCurrentMA(txPower), elapsed.Seconds())
	case StateOff:
		m.offTime += elapsed
	default: // Idle and RX both listen
		m.listenTime += elapsed
	}
}

func (m *energyMeter) report() EnergyReport {
	r := EnergyReport{
		TxSeconds:     m.txTime.Seconds(),
		ListenSeconds: m.listenTime.Seconds(),
		OffSeconds:    m.offTime.Seconds(),
	}
	r.Millijoules = m.txEnergyMJ +
		phy.EnergyMillijoules(phy.RxCurrentMA, r.ListenSeconds) +
		phy.EnergyMillijoules(phy.OffCurrentMA, r.OffSeconds)
	return r
}

// EnergyReport returns the radio's consumption up to the current instant.
func (r *Radio) EnergyReport() EnergyReport {
	r.energy.account(r.state, r.cfg.TxPower, r.kernel.Now())
	return r.energy.report()
}

// setState transitions the state machine, charging the elapsed residency
// of the outgoing state to the energy meter and re-filing the radio's
// event interest, which is a function of the state.
func (r *Radio) setState(s State) {
	r.energy.account(r.state, r.cfg.TxPower, r.kernel.Now())
	r.state = s
	r.medium.SetInterest(r.id, r.Interest())
}
