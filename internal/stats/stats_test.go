package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestLinkRates(t *testing.T) {
	l := Link{Sent: 100, Received: 90, Collided: 40, CollidedOK: 30}
	if got := l.PRR(); got != 0.9 {
		t.Errorf("PRR = %v, want 0.9", got)
	}
	if got := l.CPRR(); got != 0.75 {
		t.Errorf("CPRR = %v, want 0.75", got)
	}
	if got := l.Throughput(10 * time.Second); got != 9 {
		t.Errorf("Throughput = %v, want 9", got)
	}
	if got := l.SendRate(10 * time.Second); got != 10 {
		t.Errorf("SendRate = %v, want 10", got)
	}
}

func TestLinkZeroDenominators(t *testing.T) {
	var l Link
	if l.PRR() != 0 {
		t.Error("PRR of empty link not 0")
	}
	if l.CPRR() != 1 {
		t.Error("CPRR with no collisions should be 1")
	}
	if l.Throughput(0) != 0 || l.SendRate(-time.Second) != 0 {
		t.Error("rates with non-positive interval should be 0")
	}
}

func TestLinkAdd(t *testing.T) {
	a := Link{Sent: 1, Received: 2, CRCFailed: 3, Collided: 4, CollidedOK: 5, AccessFailures: 6}
	b := Link{Sent: 10, Received: 20, CRCFailed: 30, Collided: 40, CollidedOK: 50, AccessFailures: 60}
	a.Add(b)
	want := Link{Sent: 11, Received: 22, CRCFailed: 33, Collided: 44, CollidedOK: 55, AccessFailures: 66}
	if a != want {
		t.Errorf("Add = %+v, want %+v", a, want)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares = %v, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("single hog = %v, want 0.25 (1/n)", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Errorf("all zero = %v, want 0", got)
	}
}

func TestJainIndexBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Abs(math.Mod(v, 1000)))
			}
		}
		if len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		return j >= 0 && j <= 1+1e-9 && (j == 0 || j >= 1/n-1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpread(t *testing.T) {
	// Table I values: the spread is about 5 %.
	xs := []float64{259.3, 260.8, 261.9, 272.5, 272.9, 273.4}
	got := Spread(xs)
	if got < 0.04 || got > 0.06 {
		t.Errorf("Spread(Table I) = %v, want ≈ 0.05", got)
	}
	if Spread(nil) != 0 {
		t.Error("empty spread not 0")
	}
	if Spread([]float64{0, 0}) != 0 {
		t.Error("zero-mean spread not 0")
	}
}

func TestDistributionCDF(t *testing.T) {
	var d Distribution
	for _, v := range []float64{0.05, 0.08, 0.10, 0.30, 0.90} {
		d.Observe(v)
	}
	if d.N() != 5 {
		t.Fatalf("N = %d, want 5", d.N())
	}
	if got := d.FractionAtOrBelow(0.10); got != 0.6 {
		t.Errorf("F(0.10) = %v, want 0.6", got)
	}
	if got := d.FractionAtOrBelow(0.0); got != 0 {
		t.Errorf("F(0) = %v, want 0", got)
	}
	if got := d.FractionAtOrBelow(1.0); got != 1 {
		t.Errorf("F(1) = %v, want 1", got)
	}
}

func TestDistributionQuantile(t *testing.T) {
	var d Distribution
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	if got := d.Quantile(0.5); got != 50 {
		t.Errorf("median = %v, want 50", got)
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := d.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.FractionAtOrBelow(0.5) != 0 || d.Quantile(0.5) != 0 || d.Mean() != 0 {
		t.Error("empty distribution should return zeros")
	}
}

func TestDistributionCDFCurve(t *testing.T) {
	var d Distribution
	for _, v := range []float64{0.2, 0.4, 0.6, 0.8} {
		d.Observe(v)
	}
	pts := d.CDF(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	if pts[0].X != 0 || pts[len(pts)-1].X != 0.8 {
		t.Errorf("x range = [%v, %v], want [0, 0.8]", pts[0].X, pts[len(pts)-1].X)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(pts); i++ {
		if pts[i].F < pts[i-1].F {
			t.Fatalf("CDF not monotone at %d: %v", i, pts)
		}
	}
	if pts[len(pts)-1].F != 1 {
		t.Errorf("F(max) = %v, want 1", pts[len(pts)-1].F)
	}
}

func TestDistributionCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var d Distribution
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Observe(math.Abs(math.Mod(v, 10)))
		}
		pts := d.CDF(16)
		for i := 1; i < len(pts); i++ {
			if pts[i].F < pts[i-1].F || pts[i].F < 0 || pts[i].F > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributionMean(t *testing.T) {
	var d Distribution
	d.Observe(2)
	d.Observe(4)
	if got := d.Mean(); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
}

func TestObserveAfterQueryKeepsCorrectOrder(t *testing.T) {
	var d Distribution
	d.Observe(5)
	_ = d.Quantile(0.5) // forces sort
	d.Observe(1)        // must re-sort on next query
	if got := d.Quantile(0); got != 1 {
		t.Errorf("min after late insert = %v, want 1", got)
	}
}

func TestTimeSeriesBucketsInOrder(t *testing.T) {
	ts := TimeSeries{WindowSeconds: 2}
	ts.Observe(0.5, 1)
	ts.Observe(1.5, 1)
	ts.Observe(5.0, 3)
	ts.Observe(4.1, 2)
	bs := ts.Buckets()
	if len(bs) != 2 {
		t.Fatalf("buckets = %d, want 2", len(bs))
	}
	if bs[0].Start != 0 || bs[0].Count != 2 || bs[0].Sum != 2 {
		t.Errorf("bucket 0 = %+v", bs[0])
	}
	if bs[1].Start != 4 || bs[1].Count != 2 || bs[1].Sum != 5 {
		t.Errorf("bucket 1 = %+v", bs[1])
	}
	if got := ts.Rate(bs[0]); got != 1 {
		t.Errorf("Rate = %v, want 1 (2 events / 2 s)", got)
	}
}

func TestTimeSeriesZeroWindowDefaults(t *testing.T) {
	var ts TimeSeries
	ts.Observe(0.2, 1)
	if len(ts.Buckets()) != 1 {
		t.Error("zero-window series unusable")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Errorf("Summary = %+v", s)
	}
	// Sample std of this classic set is ~2.138.
	if math.Abs(s.Std-2.13809) > 1e-4 {
		t.Errorf("Std = %v, want ≈ 2.138", s.Std)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("empty Summarize = %+v, want zero", got)
	}
	one := Summarize([]float64{3})
	if one.Std != 0 || one.Mean != 3 {
		t.Errorf("single-sample Summary = %+v", one)
	}
}
