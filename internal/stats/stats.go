// Package stats collects the metrics the paper reports: throughput in
// packets per second, packet receive rate (PRR), collided-packet receive
// rate (CPRR), error-bit distributions (CDF), and the Jain fairness index.
package stats

import (
	"math"
	"sort"
	"time"
)

// Link accumulates per-link (or per-network) packet counters.
type Link struct {
	// Sent counts frames put on the air by the senders.
	Sent int
	// Received counts CRC-clean frames captured by the sink.
	Received int
	// CRCFailed counts captured frames that failed the checksum.
	CRCFailed int
	// Collided counts receptions that overlapped interference.
	Collided int
	// CollidedOK counts collided receptions that still decoded cleanly.
	CollidedOK int
	// AccessFailures counts sender-side CSMA drops.
	AccessFailures int
}

// Add merges other into l.
func (l *Link) Add(other Link) {
	l.Sent += other.Sent
	l.Received += other.Received
	l.CRCFailed += other.CRCFailed
	l.Collided += other.Collided
	l.CollidedOK += other.CollidedOK
	l.AccessFailures += other.AccessFailures
}

// PRR is the packet receive rate: received / sent. Zero sent yields 0.
func (l Link) PRR() float64 {
	if l.Sent == 0 {
		return 0
	}
	return float64(l.Received) / float64(l.Sent)
}

// CPRR is the collided-packet receive rate of the paper's Section III-B:
// among receptions that overlapped interference, the fraction that still
// decoded. Zero collided yields 1 (nothing to corrupt).
func (l Link) CPRR() float64 {
	if l.Collided == 0 {
		return 1
	}
	return float64(l.CollidedOK) / float64(l.Collided)
}

// Throughput converts the received count to packets per second over the
// measurement interval.
func (l Link) Throughput(interval time.Duration) float64 {
	if interval <= 0 {
		return 0
	}
	return float64(l.Received) / interval.Seconds()
}

// SendRate converts the sent count to packets per second.
func (l Link) SendRate(interval time.Duration) float64 {
	if interval <= 0 {
		return 0
	}
	return float64(l.Sent) / interval.Seconds()
}

// JainIndex computes the Jain fairness index of a set of allocations:
// (Σx)² / (n·Σx²). 1.0 is perfectly fair; 1/n is maximally unfair.
// Empty or all-zero input yields 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Spread reports (max-min)/mean of a set of values, the "about 4 %
// variation" measure the paper uses for Table I. Empty or zero-mean input
// yields 0.
func Spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, x := range xs {
		min = math.Min(min, x)
		max = math.Max(max, x)
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return 0
	}
	return (max - min) / mean
}

// Distribution accumulates scalar samples and answers CDF queries — used
// for the error-bit-fraction distribution of Fig. 29.
type Distribution struct {
	samples []float64
	sorted  bool
}

// Observe adds one sample.
func (d *Distribution) Observe(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N reports the number of samples.
func (d *Distribution) N() int { return len(d.samples) }

// Samples returns a copy of the raw samples. Order is not guaranteed:
// CDF/quantile queries may have sorted them in place.
func (d *Distribution) Samples() []float64 {
	out := make([]float64, len(d.samples))
	copy(out, d.samples)
	return out
}

func (d *Distribution) sort() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// FractionAtOrBelow returns the empirical CDF at x. No samples yields 0.
func (d *Distribution) FractionAtOrBelow(x float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	n := sort.SearchFloat64s(d.samples, math.Nextafter(x, math.Inf(1)))
	return float64(n) / float64(len(d.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank. No
// samples yields 0.
func (d *Distribution) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[len(d.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(d.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.samples[idx]
}

// CDFPoint is one point of an empirical CDF curve.
type CDFPoint struct {
	X, F float64
}

// CDF returns the empirical CDF evaluated at n evenly spaced points over
// [0, max]. n must be at least 2; fewer samples yield a flat curve.
func (d *Distribution) CDF(n int) []CDFPoint {
	if n < 2 {
		n = 2
	}
	d.sort()
	max := 1.0
	if len(d.samples) > 0 {
		max = d.samples[len(d.samples)-1]
		if max == 0 {
			max = 1
		}
	}
	out := make([]CDFPoint, n)
	for i := range out {
		x := max * float64(i) / float64(n-1)
		out[i] = CDFPoint{X: x, F: d.FractionAtOrBelow(x)}
	}
	return out
}

// Mean returns the sample mean (0 when empty).
func (d *Distribution) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range d.samples {
		sum += v
	}
	return sum / float64(len(d.samples))
}

// TimeBucket is one window of a TimeSeries.
type TimeBucket struct {
	// Start is the bucket's start time in seconds.
	Start float64
	// Count is the number of observations in the window.
	Count int
	// Sum is the accumulated value.
	Sum float64
}

// TimeSeries buckets observations into fixed windows — throughput over
// time, used to visualise transients such as the Case II recovery after a
// node departs.
type TimeSeries struct {
	// WindowSeconds is the bucket width (must be positive before the
	// first Observe).
	WindowSeconds float64

	buckets map[int]*TimeBucket
}

// Observe adds value v at time t (in seconds).
func (ts *TimeSeries) Observe(tSeconds, v float64) {
	if ts.WindowSeconds <= 0 {
		ts.WindowSeconds = 1
	}
	if ts.buckets == nil {
		ts.buckets = make(map[int]*TimeBucket)
	}
	idx := int(math.Floor(tSeconds / ts.WindowSeconds))
	b, ok := ts.buckets[idx]
	if !ok {
		b = &TimeBucket{Start: float64(idx) * ts.WindowSeconds}
		ts.buckets[idx] = b
	}
	b.Count++
	b.Sum += v
}

// Buckets returns the non-empty windows in time order.
func (ts *TimeSeries) Buckets() []TimeBucket {
	idxs := make([]int, 0, len(ts.buckets))
	for i := range ts.buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]TimeBucket, len(idxs))
	for j, i := range idxs {
		out[j] = *ts.buckets[i]
	}
	return out
}

// Rate converts a bucket's count into events per second.
func (ts *TimeSeries) Rate(b TimeBucket) float64 {
	if ts.WindowSeconds <= 0 {
		return 0
	}
	return float64(b.Count) / ts.WindowSeconds
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
}

// Summarize computes mean, sample standard deviation and extrema. An empty
// input yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}
