package watchdog

import (
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// collectReports is a thread-safe sink for watchdog reports.
type collectReports struct {
	mu   sync.Mutex
	list []Report
}

func (c *collectReports) add(r Report) {
	c.mu.Lock()
	c.list = append(c.list, r)
	c.mu.Unlock()
}

func (c *collectReports) snapshot() []Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Report(nil), c.list...)
}

// waitFor polls cond for up to 2 s. Wall-clock waiting is the point of
// this package; the generous ceiling keeps the test stable on loaded
// CI hosts while the happy path returns in tens of milliseconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}

func TestWatchdogFlagsStuckCellOnce(t *testing.T) {
	var sink collectReports
	w := New(40*time.Millisecond, sink.add)
	defer w.Stop()

	w.CellStarted(7)
	waitFor(t, func() bool { return len(sink.snapshot()) >= 1 })
	// Give the scanner several more periods: the cell must be flagged
	// exactly once, not once per scan.
	time.Sleep(120 * time.Millisecond)
	got := sink.snapshot()
	if len(got) != 1 {
		t.Fatalf("stuck cell flagged %d times, want exactly once", len(got))
	}
	r := got[0]
	if r.Cell != 7 {
		t.Fatalf("report names cell %d, want 7", r.Cell)
	}
	if r.Elapsed < 40*time.Millisecond {
		t.Fatalf("reported elapsed %v below the 40ms limit", r.Elapsed)
	}
	if len(r.Stack) == 0 {
		t.Fatal("report carries no stack dump")
	}
	w.CellFinished(7)
}

func TestWatchdogIgnoresFinishedCells(t *testing.T) {
	var sink collectReports
	w := New(50*time.Millisecond, sink.add)
	defer w.Stop()

	w.CellStarted(3)
	w.CellFinished(3)
	time.Sleep(150 * time.Millisecond)
	if got := sink.snapshot(); len(got) != 0 {
		t.Fatalf("finished cell flagged: %+v", got)
	}
}

// A cell index reused by a later attempt (the engine's deterministic
// retry) is tracked afresh: the retry gets its own full limit.
func TestWatchdogRetryResetsClock(t *testing.T) {
	var sink collectReports
	w := New(60*time.Millisecond, sink.add)
	defer w.Stop()

	w.CellStarted(1)
	time.Sleep(40 * time.Millisecond)
	w.CellFinished(1)
	w.CellStarted(1) // retry attempt
	time.Sleep(40 * time.Millisecond)
	w.CellFinished(1)
	if got := sink.snapshot(); len(got) != 0 {
		t.Fatalf("two sub-limit attempts flagged: %+v", got)
	}
}

func TestWatchdogStopIsIdempotent(t *testing.T) {
	w := New(time.Hour, func(Report) {})
	w.Stop()
	w.Stop()
}

// NotifyInterrupt delivers our own SIGINT to fn and stops cleanly.
// signal.Notify holds the default death-on-SIGINT behaviour off while
// registered, so sending the signal to ourselves is safe.
func TestNotifyInterrupt(t *testing.T) {
	var got atomic.Int64
	stop := NotifyInterrupt(func(sig os.Signal) {
		if sig == os.Interrupt || sig == syscall.SIGTERM {
			got.Add(1)
		}
	})
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatalf("self-signal: %v", err)
	}
	waitFor(t, func() bool { return got.Load() >= 1 })
	stop()
	// After stop the handler is deregistered; fn must not fire again.
	// (We cannot self-signal here — the default handler is restored and
	// would kill the test process — so just assert stop() returned and
	// the goroutine drained without panic on the closed channel.)
	time.Sleep(20 * time.Millisecond)
	if got.Load() < 1 {
		t.Fatal("handler never fired")
	}
}
