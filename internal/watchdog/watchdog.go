// Package watchdog is the sweep engine's wall-clock sentry. The
// simulation itself is forbidden the wall clock (dcnlint's detsource
// analyzer enforces it), but a crash-safe sweep still needs two things
// only the wall clock can provide: noticing that a cell has been
// running implausibly long in real time (a runaway the deterministic
// kernel budgets did not catch, or a genuine hang), and reacting to
// SIGINT/SIGTERM so an interrupted sweep stops at a cell boundary with
// its completed cells flushed.
//
// Both live here, deliberately quarantined: along with
// internal/parallel and internal/store, this is one of the only
// packages allowed goroutines and wall-clock reads (dcnlint's
// confinedgo and detsource scopes name them explicitly), and nothing in
// it can influence simulation results — a watchdog only observes and
// reports, it never stops or mutates a cell.
package watchdog

import (
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"syscall"
	"time"
)

// Report describes one stuck cell.
type Report struct {
	// Cell is the sweep cell index that exceeded the limit.
	Cell int
	// Elapsed is the cell's wall-clock runtime when it was flagged.
	Elapsed time.Duration
	// Stack is an all-goroutine dump captured at flag time, so the
	// report shows where the stuck cell actually is.
	Stack []byte
}

// Watchdog flags sweep cells that exceed a wall-clock limit. It
// implements parallel.Watcher: hand it to RunOptions.Watch and every
// cell's start/finish is tracked; a scanner goroutine flags each
// overdue cell exactly once. Flagging is observational — the cell keeps
// running (goroutines cannot be killed), but the operator learns which
// cell is stuck and where, instead of staring at a silent sweep.
type Watchdog struct {
	limit   time.Duration
	onStuck func(Report)

	mu      sync.Mutex
	active  map[int]time.Time
	flagged map[int]bool
	done    chan struct{}
	stop    sync.Once
}

// New starts a watchdog flagging cells that run longer than limit.
// onStuck is called from the scanner goroutine, once per stuck cell; it
// must be safe to call concurrently with the sweep. Call Stop when the
// sweep is done.
func New(limit time.Duration, onStuck func(Report)) *Watchdog {
	if limit <= 0 {
		limit = time.Minute
	}
	w := &Watchdog{
		limit:   limit,
		onStuck: onStuck,
		active:  make(map[int]time.Time),
		flagged: make(map[int]bool),
		done:    make(chan struct{}),
	}
	go w.scan()
	return w
}

// CellStarted implements parallel.Watcher.
func (w *Watchdog) CellStarted(cell int) {
	w.mu.Lock()
	w.active[cell] = time.Now()
	delete(w.flagged, cell)
	w.mu.Unlock()
}

// CellFinished implements parallel.Watcher.
func (w *Watchdog) CellFinished(cell int) {
	w.mu.Lock()
	delete(w.active, cell)
	delete(w.flagged, cell)
	w.mu.Unlock()
}

// Stop shuts the scanner goroutine down. Idempotent.
func (w *Watchdog) Stop() { w.stop.Do(func() { close(w.done) }) }

// scan wakes a few times per limit and flags overdue cells.
func (w *Watchdog) scan() {
	period := w.limit / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case now := <-t.C:
			for _, r := range w.overdue(now) {
				w.onStuck(r)
			}
		}
	}
}

// overdue collects newly overdue cells in ascending cell order (sorted
// so reports never depend on map iteration order) and marks them
// flagged. The stack dump is captured outside the callback so every
// report carries the state at flag time.
func (w *Watchdog) overdue(now time.Time) []Report {
	w.mu.Lock()
	var cells []int
	for cell, started := range w.active {
		if now.Sub(started) >= w.limit && !w.flagged[cell] {
			w.flagged[cell] = true
			cells = append(cells, cell)
		}
	}
	elapsed := make(map[int]time.Duration, len(cells))
	for _, c := range cells {
		elapsed[c] = now.Sub(w.active[c])
	}
	w.mu.Unlock()
	if len(cells) == 0 {
		return nil
	}
	sort.Ints(cells)
	stack := allStacks()
	out := make([]Report, 0, len(cells))
	for _, c := range cells {
		out = append(out, Report{Cell: c, Elapsed: elapsed[c], Stack: stack})
	}
	return out
}

// allStacks dumps every goroutine's stack.
func allStacks() []byte {
	buf := make([]byte, 256<<10)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, 2*len(buf))
	}
}

// NotifyInterrupt invokes fn for each SIGINT or SIGTERM until stop is
// called. fn runs on a dedicated goroutine; implementations typically
// flip an atomic flag that the sweep's Canceled hook polls, so the
// sweep stops at the next cell boundary, and escalate (os.Exit) on a
// second signal. The signal channel lives here rather than in the CLIs
// because channel creation outside the confined concurrency packages is
// a dcnlint violation.
func NotifyInterrupt(fn func(os.Signal)) (stop func()) {
	ch := make(chan os.Signal, 4)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		for sig := range ch {
			fn(sig)
		}
	}()
	return func() {
		signal.Stop(ch)
		close(ch)
	}
}
