package mac

import (
	"testing"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// node bundles a radio+MAC for tests.
type node struct {
	r *radio.Radio
	m *MAC
}

func world(t *testing.T) (*sim.Kernel, *medium.Medium) {
	t.Helper()
	k := sim.NewKernel(3)
	m := medium.New(k,
		medium.WithFadingSigma(0),
		medium.WithStaticFadingSigma(0),
		medium.WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))
	return k, m
}

func newNode(k *sim.Kernel, md *medium.Medium, addr frame.Address, x float64, cfg Config) *node {
	r := radio.New(k, md, radio.Config{
		Pos:          phy.Position{X: x},
		Freq:         2460,
		TxPower:      0,
		CCAThreshold: phy.DefaultCCAThreshold,
		Address:      addr,
	})
	return &node{r: r, m: New(k, r, cfg)}
}

func dataTo(dst frame.Address, payload int) *frame.Frame {
	return &frame.Frame{Type: frame.TypeData, Dst: dst, Payload: make([]byte, payload)}
}

func TestSendDeliversToAddressee(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{})
	b := newNode(k, md, 2, 1, Config{})

	var got []radio.Reception
	b.m.OnReceive = func(r radio.Reception) { got = append(got, r) }

	f := dataTo(2, 32)
	f.Src = 1
	if !a.m.Send(f) {
		t.Fatal("Send rejected")
	}
	k.Run()

	if len(got) != 1 {
		t.Fatalf("delivered = %d, want 1", len(got))
	}
	if got[0].Frame.Src != 1 || !got[0].CRCOK {
		t.Errorf("bad reception: %+v", got[0])
	}
	c := a.m.Counters()
	if c.Sent != 1 || c.Enqueued != 1 || c.AccessFailures != 0 {
		t.Errorf("counters = %+v", c)
	}
}

func TestSequenceNumbersIncrement(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{})
	b := newNode(k, md, 2, 1, Config{})

	var seqs []uint8
	b.m.OnReceive = func(r radio.Reception) { seqs = append(seqs, r.Frame.Seq) }
	for i := 0; i < 3; i++ {
		f := dataTo(2, 16)
		f.Src = 1
		if !a.m.Send(f) {
			t.Fatal("Send rejected")
		}
	}
	k.Run()
	if len(seqs) != 3 {
		t.Fatalf("delivered = %d, want 3", len(seqs))
	}
	for i, s := range seqs {
		if s != uint8(i) {
			t.Errorf("seq[%d] = %d, want %d", i, s, i)
		}
	}
}

func TestFramesNotForUsAreFiltered(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{})
	b := newNode(k, md, 2, 1, Config{})

	received, overheard := 0, 0
	b.m.OnReceive = func(radio.Reception) { received++ }
	b.m.OnOverhear = func(radio.Reception) { overheard++ }

	f := dataTo(99, 16) // addressed elsewhere
	f.Src = 1
	a.m.Send(f)
	k.Run()

	if received != 0 {
		t.Errorf("received = %d, want 0 (not addressed to us)", received)
	}
	if overheard != 1 {
		t.Errorf("overheard = %d, want 1 (promiscuous view)", overheard)
	}
}

func TestBroadcastDelivered(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{})
	b := newNode(k, md, 2, 1, Config{})
	c := newNode(k, md, 3, -1, Config{})

	gotB, gotC := 0, 0
	b.m.OnReceive = func(radio.Reception) { gotB++ }
	c.m.OnReceive = func(radio.Reception) { gotC++ }

	f := dataTo(frame.Broadcast, 16)
	f.Src = 1
	a.m.Send(f)
	k.Run()
	if gotB != 1 || gotC != 1 {
		t.Errorf("broadcast delivered to %d/%d nodes, want 1/1", gotB, gotC)
	}
}

func TestCCADefersWhileChannelBusy(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{})
	b := newNode(k, md, 2, 1, Config{})
	sink := newNode(k, md, 3, 0.5, Config{})

	var order []frame.Address
	sink.m.OnReceive = func(r radio.Reception) { order = append(order, r.Frame.Src) }

	// A starts a long frame immediately via a raw radio transmit so it is
	// already on the air when B runs CCA.
	longFrame := dataTo(3, 100)
	longFrame.Src = 1
	if _, err := a.r.Transmit(longFrame); err != nil {
		t.Fatal(err)
	}
	f := dataTo(3, 16)
	f.Src = 2
	b.m.Send(f)
	k.Run()

	if len(order) != 2 {
		t.Fatalf("delivered = %v, want both frames", order)
	}
	if order[0] != 1 || order[1] != 2 {
		t.Errorf("order = %v, want [1 2] (B defers to A)", order)
	}
	if c := b.m.Counters(); c.BusyCCA == 0 {
		t.Error("B never saw a busy CCA despite the occupied channel")
	}
}

func TestAccessFailureAfterMaxBackoffs(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{})
	// Threshold below the noise floor: every CCA is busy.
	a.r.SetCCAThreshold(-120)

	dropped := 0
	a.m.OnDropped = func(*frame.Frame) { dropped++ }
	f := dataTo(2, 16)
	a.m.Send(f)
	k.Run()

	c := a.m.Counters()
	if c.AccessFailures != 1 || dropped != 1 {
		t.Errorf("AccessFailures = %d, dropped = %d; want 1, 1", c.AccessFailures, dropped)
	}
	if c.Sent != 0 {
		t.Errorf("Sent = %d, want 0", c.Sent)
	}
	// 1 initial + MaxCSMABackoffs retries = 5 busy CCAs.
	if c.BusyCCA != DefaultMaxCSMABackoffs+1 {
		t.Errorf("BusyCCA = %d, want %d", c.BusyCCA, DefaultMaxCSMABackoffs+1)
	}
}

func TestDisabledCCAIgnoresBusyChannel(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{CCA: DisabledCCA{}})
	a.r.SetCCAThreshold(-120) // would always be busy under ThresholdCCA

	f := dataTo(2, 16)
	a.m.Send(f)
	k.Run()
	if c := a.m.Counters(); c.Sent != 1 || c.AccessFailures != 0 {
		t.Errorf("counters = %+v, want one sent", c)
	}
}

func TestQueueCap(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{QueueCap: 2})
	_ = k
	if !a.m.Send(dataTo(2, 16)) || !a.m.Send(dataTo(2, 16)) {
		t.Fatal("first two sends rejected")
	}
	// First frame is in flight (dequeued is not immediate); the queue may
	// be full now.
	accepted := 0
	for i := 0; i < 5; i++ {
		if a.m.Send(dataTo(2, 16)) {
			accepted++
		}
	}
	if accepted > 1 {
		t.Errorf("queue accepted %d frames beyond cap", accepted)
	}
}

func TestAckDeliveryAndCounter(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{AckEnabled: true})
	b := newNode(k, md, 2, 1, Config{AckEnabled: true})

	got := 0
	b.m.OnReceive = func(radio.Reception) { got++ }

	f := dataTo(2, 32)
	f.Src = 1
	a.m.Send(f)
	k.Run()

	if got != 1 {
		t.Fatalf("delivered = %d, want 1", got)
	}
	c := a.m.Counters()
	if c.Delivered != 1 {
		t.Errorf("Delivered = %d, want 1 (ACK received)", c.Delivered)
	}
	if c.Sent != 1 {
		t.Errorf("Sent = %d, want 1 (no retries needed)", c.Sent)
	}
}

func TestAckTimeoutRetriesThenDrops(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{AckEnabled: true})
	b := newNode(k, md, 2, 1, Config{AckEnabled: true})
	b.r.SetOff() // receiver dead: no ACKs ever

	dropped := 0
	a.m.OnDropped = func(*frame.Frame) { dropped++ }
	f := dataTo(2, 32)
	f.Src = 1
	a.m.Send(f)
	k.Run()

	c := a.m.Counters()
	if c.Sent != 1+DefaultMaxFrameRetries {
		t.Errorf("Sent = %d, want %d (original + retries)", c.Sent, 1+DefaultMaxFrameRetries)
	}
	if c.RetryFailures != 1 || dropped != 1 {
		t.Errorf("RetryFailures = %d, dropped = %d; want 1, 1", c.RetryFailures, dropped)
	}
	if c.Delivered != 0 {
		t.Errorf("Delivered = %d, want 0", c.Delivered)
	}
}

func TestBroadcastNeverRequestsAck(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{AckEnabled: true})
	b := newNode(k, md, 2, 1, Config{AckEnabled: true})

	var rcv *frame.Frame
	b.m.OnReceive = func(r radio.Reception) { rcv = r.Frame }
	f := dataTo(frame.Broadcast, 16)
	f.Src = 1
	a.m.Send(f)
	k.Run()

	if rcv == nil {
		t.Fatal("broadcast not delivered")
	}
	if rcv.AckReq {
		t.Error("broadcast frame requested an ACK")
	}
	if c := a.m.Counters(); c.Sent != 1 {
		t.Errorf("Sent = %d, want exactly 1 (no retries)", c.Sent)
	}
}

func TestBackPressureDrainsQueueInOrder(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{})
	b := newNode(k, md, 2, 1, Config{})

	var seqs []uint8
	b.m.OnReceive = func(r radio.Reception) { seqs = append(seqs, r.Frame.Seq) }
	const n = 10
	for i := 0; i < n; i++ {
		f := dataTo(2, 16)
		f.Src = 1
		if !a.m.Send(f) {
			t.Fatal("queue overflow")
		}
	}
	k.Run()
	if len(seqs) != n {
		t.Fatalf("delivered %d, want %d", len(seqs), n)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("out-of-order delivery: %v", seqs)
		}
	}
}

func TestTwoContendersBothEventuallySend(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, -0.5, Config{})
	b := newNode(k, md, 2, 0.5, Config{})
	sink := newNode(k, md, 3, 0, Config{})

	count := map[frame.Address]int{}
	sink.m.OnReceive = func(r radio.Reception) { count[r.Frame.Src]++ }

	const n = 20
	for i := 0; i < n; i++ {
		fa := dataTo(3, 32)
		fa.Src = 1
		a.m.Send(fa)
		fb := dataTo(3, 32)
		fb.Src = 2
		b.m.Send(fb)
	}
	k.RunFor(5 * time.Second)

	if count[1] < n*8/10 || count[2] < n*8/10 {
		t.Errorf("deliveries = %v, want most of %d each (CSMA shares the channel)", count, n)
	}
}

func TestCountersAccumulate(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{})
	b := newNode(k, md, 2, 1, Config{})
	_ = b
	for i := 0; i < 5; i++ {
		f := dataTo(2, 16)
		a.m.Send(f)
	}
	k.Run()
	c := a.m.Counters()
	if c.Enqueued != 5 || c.Sent != 5 {
		t.Errorf("counters = %+v, want 5 enqueued and sent", c)
	}
	if c.ClearCCA < 5 {
		t.Errorf("ClearCCA = %d, want >= 5", c.ClearCCA)
	}
}

func TestOracleCCAIgnoresInterChannelEnergy(t *testing.T) {
	k, md := world(t)
	// A strong inter-channel transmitter 3 MHz away keeps the plain
	// threshold CCA busy, but the oracle sees through it.
	interferer := newNode(k, md, 9, 0.5, Config{CCA: DisabledCCA{}})
	interferer.r.SetTxPower(0)
	// Retune the interferer 3 MHz up by rebuilding it on 2463.
	intfRadio := radio.New(k, md, radio.Config{
		Pos: phy.Position{X: 0.5}, Freq: 2463, TxPower: 0,
		CCAThreshold: phy.DefaultCCAThreshold, Address: 10,
	})
	_ = interferer

	a := newNode(k, md, 1, 0, Config{})                               // plain threshold CCA
	o := newNode(k, md, 2, 0, Config{CCA: OracleDiscriminatingCCA{}}) // oracle

	// Keep the inter-channel transmitter busy for the whole test.
	var blast func()
	blast = func() {
		if k.Now() > sim.FromDuration(3*time.Second) {
			return
		}
		f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 100)}
		if _, err := intfRadio.Transmit(f); err == nil {
			k.After(f.Airtime(), blast)
		}
	}
	blast()

	sink := newNode(k, md, 3, 1, Config{})
	_ = sink
	for i := 0; i < 10; i++ {
		fa := dataTo(3, 16)
		a.m.Send(fa)
		fo := dataTo(3, 16)
		o.m.Send(fo)
	}
	k.RunUntil(sim.FromDuration(3 * time.Second))

	ca, co := a.m.Counters(), o.m.Counters()
	// The plain CCA is blocked by the -54 dBm filtered energy (> -77); the
	// oracle transmits freely.
	if ca.Sent > 2 {
		t.Errorf("threshold CCA sent %d frames under inter-channel jamming, want ≈ 0", ca.Sent)
	}
	if co.Sent != 10 {
		t.Errorf("oracle CCA sent %d frames, want all 10", co.Sent)
	}
	// And the oracle still defers to co-channel energy: once node a's
	// queue drains... instead verify directly via the radio reads.
	if o.r.SensedCoChannelPower() > phy.NoiseFloor+1 {
		t.Errorf("co-channel oracle read = %v, want noise floor (only inter-channel active)",
			o.r.SensedCoChannelPower())
	}
}

func TestOnDeliveredFiresOnAck(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{AckEnabled: true})
	b := newNode(k, md, 2, 1, Config{AckEnabled: true})
	_ = b
	delivered := 0
	a.m.OnDelivered = func(*frame.Frame) { delivered++ }
	f := dataTo(2, 16)
	f.Src = 1
	a.m.Send(f)
	k.Run()
	if delivered != 1 {
		t.Errorf("OnDelivered fired %d times, want 1", delivered)
	}
}
