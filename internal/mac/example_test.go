package mac_test

import (
	"fmt"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/mac"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// Example sends an acknowledged unicast frame across a two-node link.
func Example() {
	k := sim.NewKernel(1)
	m := medium.New(k, medium.WithFadingSigma(0), medium.WithStaticFadingSigma(0))

	mk := func(addr frame.Address, x float64) *mac.MAC {
		r := radio.New(k, m, radio.Config{
			Pos: phy.Position{X: x}, Freq: 2460, TxPower: 0,
			CCAThreshold: phy.DefaultCCAThreshold, Address: addr,
		})
		return mac.New(k, r, mac.Config{AckEnabled: true})
	}
	sender := mk(1, 0)
	receiver := mk(2, 1)

	receiver.OnReceive = func(rcv radio.Reception) {
		fmt.Printf("received %d bytes from %d (RSSI %.0f dBm)\n",
			len(rcv.Frame.Payload), rcv.Frame.Src, float64(rcv.RSSI))
	}
	sender.OnDelivered = func(f *frame.Frame) {
		fmt.Println("acknowledged seq", f.Seq)
	}

	f := &frame.Frame{Type: frame.TypeData, Src: 1, Dst: 2, Payload: make([]byte, 40)}
	sender.Send(f)
	k.RunFor(time.Second)

	c := sender.Counters()
	fmt.Printf("sent %d, delivered %d, busy CCAs %d\n", c.Sent, c.Delivered, c.BusyCCA)
	// Output:
	// received 40 bytes from 1 (RSSI -48 dBm)
	// acknowledged seq 0
	// sent 1, delivered 1, busy CCAs 0
}
