// Package mac implements the unslotted IEEE 802.15.4 CSMA/CA MAC on top of
// a radio: binary-exponential backoff, clear-channel assessment through a
// pluggable policy, optional acknowledgements with retries, and the
// promiscuous overhear hook the DCN CCA-Adjustor feeds on.
package mac

import (
	"strconv"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// Default MAC constants from IEEE 802.15.4-2003 §7.4.2.
const (
	DefaultMinBE           = 3
	DefaultMaxBE           = 5
	DefaultMaxCSMABackoffs = 4
	DefaultMaxFrameRetries = 3
	// AckWait is macAckWaitDuration: 54 symbols.
	AckWait = 54 * frame.SymbolPeriod
)

// CCAPolicy decides whether the channel is clear before a transmission.
type CCAPolicy interface {
	// Clear reports whether the MAC may transmit now.
	Clear(r *radio.Radio) bool
}

// ThresholdCCA is the standard policy: compare the sensed in-channel energy
// with the radio's programmed CCA threshold register. Both the fixed
// ZigBee design and DCN use this policy; DCN differs only in reprogramming
// the register at run time.
type ThresholdCCA struct{}

// Clear implements CCAPolicy.
func (ThresholdCCA) Clear(r *radio.Radio) bool { return r.CCAClear() }

// DisabledCCA always reports a clear channel — the paper's "carrier sense
// disabled" mode used to force collisions in the concurrency probe.
type DisabledCCA struct{}

// Clear implements CCAPolicy.
func (DisabledCCA) Clear(*radio.Radio) bool { return true }

// OracleDiscriminatingCCA is the upper bound the paper's Section VII-C
// asks for: a CCA that can tell co-channel interference from
// neighbour-channel interference. It defers only to co-channel energy
// above the threshold and ignores inter-channel energy entirely —
// perfect concurrency exploitation with perfect collision avoidance.
// No deployed radio can implement it (the energy detector cannot
// attribute energy to a source channel); it exists to measure how much
// headroom DCN leaves on the table.
type OracleDiscriminatingCCA struct{}

// Clear implements CCAPolicy.
func (OracleDiscriminatingCCA) Clear(r *radio.Radio) bool {
	return r.SensedCoChannelPower() <= r.CCAThreshold()
}

// Config parameterises a MAC instance. Zero fields take the 802.15.4
// defaults.
type Config struct {
	// MinBE and MaxBE bound the backoff exponent.
	MinBE, MaxBE int
	// MaxCSMABackoffs is the number of busy CCAs tolerated before the
	// packet is dropped as a channel-access failure.
	MaxCSMABackoffs int
	// CCA is the clear-channel policy. Defaults to ThresholdCCA.
	CCA CCAPolicy
	// AckEnabled requests acknowledgements and retransmissions for
	// unicast data frames.
	AckEnabled bool
	// MaxFrameRetries bounds retransmissions when AckEnabled.
	MaxFrameRetries int
	// QueueCap bounds the transmit queue; Send fails beyond it.
	QueueCap int
}

func (c Config) withDefaults() Config {
	if c.MinBE == 0 {
		c.MinBE = DefaultMinBE
	}
	if c.MaxBE == 0 {
		c.MaxBE = DefaultMaxBE
	}
	if c.MaxCSMABackoffs == 0 {
		c.MaxCSMABackoffs = DefaultMaxCSMABackoffs
	}
	if c.CCA == nil {
		c.CCA = ThresholdCCA{}
	}
	if c.MaxFrameRetries == 0 {
		c.MaxFrameRetries = DefaultMaxFrameRetries
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	return c
}

// Counters aggregates MAC-level statistics.
type Counters struct {
	// Enqueued counts frames accepted by Send.
	Enqueued int
	// Sent counts frames put on the air (transmission attempts).
	Sent int
	// Delivered counts unicast frames positively acknowledged (only
	// meaningful when AckEnabled).
	Delivered int
	// AccessFailures counts packets dropped after MaxCSMABackoffs busy
	// CCAs.
	AccessFailures int
	// RetryFailures counts packets dropped after exhausting retries.
	RetryFailures int
	// BusyCCA counts individual CCA attempts that found the channel busy.
	BusyCCA int
	// ClearCCA counts CCA attempts that found the channel clear.
	ClearCCA int
}

// MAC drives one radio.
type MAC struct {
	kernel *sim.Kernel
	radio  *radio.Radio
	cfg    Config
	rng    *sim.RNG

	queue     []*frame.Frame
	inFlight  bool
	suspended bool
	seq       uint8
	counters  Counters

	// pending ACK state
	awaitingAck bool
	ackSeq      uint8
	ackTimer    sim.Event
	retries     int

	// OnReceive delivers CRC-clean frames addressed to this node (or
	// broadcast), after ACK handling.
	OnReceive func(radio.Reception)
	// OnOverhear delivers every co-channel reception the radio captures,
	// clean or corrupt, addressed to anyone. This is the DCN Adjustor's
	// information source.
	OnOverhear func(radio.Reception)
	// OnSent fires when a frame of ours leaves the air (per attempt).
	OnSent func(*frame.Frame)
	// OnDropped fires when a frame is abandoned (access failure or retry
	// exhaustion).
	OnDropped func(*frame.Frame)
	// OnDelivered fires when a unicast frame is positively acknowledged
	// (AckEnabled only) — the link-level success signal adaptive routing
	// needs.
	OnDelivered func(*frame.Frame)
}

// New binds a MAC to a radio.
func New(k *sim.Kernel, r *radio.Radio, cfg Config) *MAC {
	m := &MAC{
		kernel: k,
		radio:  r,
		cfg:    cfg.withDefaults(),
		rng:    k.Stream("mac." + strconv.Itoa(int(r.Address()))),
	}
	r.OnReceive = m.handleReception
	r.OnTxDone = m.handleTxDone
	return m
}

// Radio exposes the underlying radio (for the CCA-Adjustor and tests).
func (m *MAC) Radio() *radio.Radio { return m.radio }

// Counters returns a snapshot of the MAC statistics.
func (m *MAC) Counters() Counters { return m.counters }

// QueueLen reports the number of frames waiting (excluding in flight).
func (m *MAC) QueueLen() int { return len(m.queue) }

// Send enqueues a data frame for CSMA/CA transmission. The MAC assigns the
// sequence number. Send reports false when the queue is full.
func (m *MAC) Send(f *frame.Frame) bool {
	if len(m.queue) >= m.cfg.QueueCap {
		return false
	}
	f.Seq = m.seq
	m.seq++
	if m.cfg.AckEnabled && f.Dst != frame.Broadcast {
		f.AckReq = true
	}
	m.queue = append(m.queue, f)
	m.counters.Enqueued++
	m.kick()
	return true
}

func (m *MAC) kick() {
	if m.suspended || m.inFlight || len(m.queue) == 0 {
		return
	}
	m.inFlight = true
	m.retries = 0
	m.startCSMA()
}

// Suspend models an MCU halt (node crash): the pending ACK timer is
// cancelled, CSMA state is cleared and every queued frame is flushed via
// OnDropped — RAM contents do not survive a reboot. Frames may still be
// enqueued with Send while suspended (a traffic source refilling its
// queue), but nothing is transmitted and incoming receptions are ignored
// until Resume.
func (m *MAC) Suspend() {
	if m.suspended {
		return
	}
	m.suspended = true
	m.awaitingAck = false
	m.kernel.Cancel(m.ackTimer)
	m.inFlight = false
	m.retries = 0
	flushed := m.queue
	m.queue = nil
	for _, f := range flushed {
		if m.OnDropped != nil {
			m.OnDropped(f)
		}
	}
}

// Resume restarts a suspended MAC (node reboot) and kicks the transmit
// queue if frames accumulated during the outage.
func (m *MAC) Resume() {
	if !m.suspended {
		return
	}
	m.suspended = false
	m.kick()
}

// Suspended reports whether the MAC is halted by Suspend.
func (m *MAC) Suspended() bool { return m.suspended }

// startCSMA begins the unslotted CSMA/CA procedure for the head-of-queue
// frame: NB=0, BE=minBE, random backoff, CCA, transmit or retreat.
func (m *MAC) startCSMA() {
	m.csmaAttempt(0, m.cfg.MinBE)
}

func (m *MAC) csmaAttempt(nb, be int) {
	slots := m.rng.Intn(1 << be)
	delay := time.Duration(slots) * frame.BackoffPeriod
	m.kernel.After(delay, func() {
		if m.suspended {
			return
		}
		// The CCA result is read at the end of the 8-symbol window.
		m.kernel.After(frame.CCATime, func() {
			if m.suspended {
				return
			}
			if m.cfg.CCA.Clear(m.radio) {
				m.counters.ClearCCA++
				m.kernel.After(frame.TurnaroundTime, m.transmitHead)
				return
			}
			m.counters.BusyCCA++
			if nb+1 > m.cfg.MaxCSMABackoffs {
				m.dropHead(&m.counters.AccessFailures)
				return
			}
			nextBE := be + 1
			if nextBE > m.cfg.MaxBE {
				nextBE = m.cfg.MaxBE
			}
			m.csmaAttempt(nb+1, nextBE)
		})
	})
}

func (m *MAC) transmitHead() {
	if m.suspended {
		return
	}
	if len(m.queue) == 0 {
		m.inFlight = false
		return
	}
	f := m.queue[0]
	if _, err := m.radio.Transmit(f); err != nil {
		// Radio unusable (e.g. powered off): drop the frame.
		m.dropHead(&m.counters.AccessFailures)
	}
}

func (m *MAC) dropHead(counter *int) {
	if len(m.queue) == 0 {
		m.inFlight = false
		return
	}
	f := m.queue[0]
	m.queue = m.queue[1:]
	*counter++
	m.inFlight = false
	if m.OnDropped != nil {
		m.OnDropped(f)
	}
	m.kick()
}

func (m *MAC) completeHead() {
	if len(m.queue) == 0 {
		m.inFlight = false
		return
	}
	m.queue = m.queue[1:]
	m.inFlight = false
	m.kick()
}

func (m *MAC) handleTxDone(tx *medium.Transmission) {
	if m.suspended {
		return // the MCU halted while our frame's tail was still on air
	}
	f := tx.Frame
	if f.Type == frame.TypeAck {
		return // our own ACK; not a queued frame
	}
	m.counters.Sent++
	if m.OnSent != nil {
		m.OnSent(f)
	}
	if f.AckReq {
		m.awaitingAck = true
		m.ackSeq = f.Seq
		m.ackTimer = m.kernel.After(AckWait, m.ackTimeout)
		return
	}
	m.completeHead()
}

func (m *MAC) ackTimeout() {
	if !m.awaitingAck {
		return
	}
	m.awaitingAck = false
	m.retries++
	if m.retries > m.cfg.MaxFrameRetries {
		m.dropHead(&m.counters.RetryFailures)
		return
	}
	m.startCSMA()
}

func (m *MAC) handleReception(r radio.Reception) {
	if m.suspended {
		return
	}
	if m.OnOverhear != nil {
		m.OnOverhear(r)
	}
	if !r.CRCOK {
		return
	}
	f := r.Frame
	addr := m.radio.Address()

	if f.Type == frame.TypeAck {
		if m.awaitingAck && f.Seq == m.ackSeq {
			m.awaitingAck = false
			m.kernel.Cancel(m.ackTimer)
			m.counters.Delivered++
			if m.OnDelivered != nil && len(m.queue) > 0 {
				m.OnDelivered(m.queue[0])
			}
			m.completeHead()
		}
		return
	}
	if f.Dst != addr && f.Dst != frame.Broadcast {
		return
	}
	if f.AckReq && f.Dst == addr {
		ack := &frame.Frame{Type: frame.TypeAck, Seq: f.Seq, Src: addr, Dst: f.Src, PAN: f.PAN}
		m.kernel.After(frame.TurnaroundTime, func() {
			// ACKs bypass CSMA per the standard.
			_, _ = m.radio.Transmit(ack)
		})
	}
	if m.OnReceive != nil {
		m.OnReceive(r)
	}
}
