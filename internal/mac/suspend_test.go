package mac

import (
	"testing"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

func TestSuspendFlushesQueueThroughOnDropped(t *testing.T) {
	k, md := world(t)
	n := newNode(k, md, 1, 0, Config{})

	var dropped []*frame.Frame
	n.m.OnDropped = func(f *frame.Frame) { dropped = append(dropped, f) }

	for i := 0; i < 3; i++ {
		if !n.m.Send(dataTo(2, 16)) {
			t.Fatal("Send rejected")
		}
	}
	n.m.Suspend()

	if !n.m.Suspended() {
		t.Fatal("Suspended() = false after Suspend")
	}
	if len(dropped) != 3 {
		t.Fatalf("dropped = %d frames, want all 3 (RAM does not survive a crash)", len(dropped))
	}
	if got := n.m.QueueLen(); got != 0 {
		t.Fatalf("queue length = %d after Suspend, want 0", got)
	}
}

func TestSuspendedMACTransmitsNothing(t *testing.T) {
	k, md := world(t)
	n := newNode(k, md, 1, 0, Config{})
	n.m.Suspend()

	// Send still accepts (the reboot image may queue work before the MAC
	// is resumed) but nothing goes on the air.
	if !n.m.Send(dataTo(2, 16)) {
		t.Fatal("Send rejected")
	}
	k.RunUntil(sim.FromDuration(time.Second))
	if got := n.m.Counters().Sent; got != 0 {
		t.Fatalf("Sent = %d while suspended, want 0", got)
	}
}

func TestResumeKicksPendingTraffic(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{})
	b := newNode(k, md, 2, 1, Config{})

	var got int
	b.m.OnReceive = func(radio.Reception) { got++ }

	a.m.Suspend()
	if !a.m.Send(dataTo(2, 16)) {
		t.Fatal("Send rejected")
	}
	k.RunUntil(sim.FromDuration(500 * time.Millisecond))
	if got != 0 {
		t.Fatal("frame delivered while the sender was suspended")
	}

	a.m.Resume()
	if a.m.Suspended() {
		t.Fatal("Suspended() = true after Resume")
	}
	k.RunUntil(sim.FromDuration(time.Second))
	if got != 1 {
		t.Fatalf("deliveries after resume = %d, want 1", got)
	}
}

func TestSuspendAndResumeAreIdempotent(t *testing.T) {
	k, md := world(t)
	n := newNode(k, md, 1, 0, Config{})
	_ = k

	var dropped int
	n.m.OnDropped = func(*frame.Frame) { dropped++ }
	if !n.m.Send(dataTo(2, 16)) {
		t.Fatal("Send rejected")
	}
	n.m.Suspend()
	n.m.Suspend()
	if dropped != 1 {
		t.Fatalf("dropped = %d after double Suspend, want 1", dropped)
	}
	n.m.Resume()
	n.m.Resume()
	if n.m.Suspended() {
		t.Fatal("Suspended() = true after Resume")
	}
}

func TestSuspendCancelsAckWait(t *testing.T) {
	k, md := world(t)
	a := newNode(k, md, 1, 0, Config{AckEnabled: true})
	// No receiver ACKs: the sender would normally retry on ACK timeout.
	if !a.m.Send(dataTo(9, 16)) {
		t.Fatal("Send rejected")
	}
	// Suspend mid-exchange, once the frame is in flight.
	k.RunUntil(sim.FromDuration(2 * time.Millisecond))
	a.m.Suspend()
	sent := a.m.Counters().Sent
	k.RunUntil(sim.FromDuration(2 * time.Second))
	if got := a.m.Counters().Sent; got != sent {
		t.Fatalf("retries while suspended: Sent %d -> %d", sent, got)
	}
}
