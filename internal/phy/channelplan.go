package phy

import "fmt"

// ZigBeeChannelFreq returns the center frequency of IEEE 802.15.4 2.4 GHz
// channel ch (11–26): 2405 + 5·(ch−11) MHz.
func ZigBeeChannelFreq(ch int) (MHz, error) {
	if ch < 11 || ch > 26 {
		return 0, fmt.Errorf("phy: 2.4 GHz channel %d out of range 11..26", ch)
	}
	return MHz(2405 + 5*(ch-11)), nil
}

// SpanMode selects how many channels a plan packs into a band. The paper
// counts channels both ways: floor(B/CFD) in the motivating experiment
// (12 MHz band: 9→1, 5→2, 4→3, 3→4, 2→6) and floor(B/CFD)+1 in the
// evaluation, where both band edges carry a channel (15 MHz band: CFD 5→4
// channels at 2458/2463/2468/2473; CFD 3→6 channels).
type SpanMode int

const (
	// SpanPacked yields floor(B/CFD) channels starting at the band's lower
	// edge.
	SpanPacked SpanMode = iota + 1
	// SpanInclusive yields floor(B/CFD)+1 channels, placing one on each
	// band edge when CFD divides the bandwidth.
	SpanInclusive
)

// ChannelPlan is an assignment of channel center frequencies with uniform
// spacing over a spectrum band.
type ChannelPlan struct {
	// Start is the lower band edge / first channel center, in MHz.
	Start MHz
	// Bandwidth is the total band span in MHz.
	Bandwidth MHz
	// CFD is the center-frequency distance between adjacent channels.
	CFD MHz
	// Centers are the resulting channel center frequencies, ascending.
	Centers []MHz
}

// NewChannelPlan builds a plan over [start, start+bandwidth] with the given
// spacing and counting mode.
func NewChannelPlan(start, bandwidth, cfd MHz, mode SpanMode) (ChannelPlan, error) {
	if cfd <= 0 {
		return ChannelPlan{}, fmt.Errorf("phy: CFD must be positive, got %v", cfd)
	}
	if bandwidth <= 0 {
		return ChannelPlan{}, fmt.Errorf("phy: bandwidth must be positive, got %v", bandwidth)
	}
	n := int(bandwidth / cfd)
	switch mode {
	case SpanPacked:
	case SpanInclusive:
		n++
	default:
		return ChannelPlan{}, fmt.Errorf("phy: unknown span mode %d", mode)
	}
	if n < 1 {
		n = 1
	}
	centers := make([]MHz, n)
	for i := range centers {
		centers[i] = start + MHz(i)*cfd
	}
	return ChannelPlan{Start: start, Bandwidth: bandwidth, CFD: cfd, Centers: centers}, nil
}

// NumChannels reports how many channels the plan provides.
func (p ChannelPlan) NumChannels() int { return len(p.Centers) }

// MiddleIndex returns the index of the channel closest to the band middle —
// the paper's N0, the network that suffers the most inter-channel
// interference.
func (p ChannelPlan) MiddleIndex() int { return (len(p.Centers) - 1) / 2 }

// Offsets returns the frequency distance from channel i to every other
// channel in the plan, indexed like Centers (the i-th entry is 0).
func (p ChannelPlan) Offsets(i int) []MHz {
	out := make([]MHz, len(p.Centers))
	for j, c := range p.Centers {
		d := c - p.Centers[i]
		if d < 0 {
			d = -d
		}
		out[j] = d
	}
	return out
}
