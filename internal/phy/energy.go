package phy

// Current draws of the CC2420 transceiver (datasheet §1, at 3.0 V supply).
// The paper's scheme changes how long radios spend transmitting versus
// backing off in receive mode, so an energy model falls out of the state
// machine for free and lets experiments report energy per delivered
// packet.
const (
	// SupplyVoltage of a MicaZ-class mote.
	SupplyVoltage = 3.0
	// RxCurrentMA is the receive/listen current (CSMA idles in RX).
	RxCurrentMA = 18.8
	// OffCurrentMA is the power-down current.
	OffCurrentMA = 0.00002
)

// txCurrentTable maps transmit power settings to current draw in mA, from
// the CC2420 datasheet's output-power programming table.
var txCurrentTable = []struct {
	power DBm
	mA    float64
}{
	{-25, 8.5},
	{-15, 9.9},
	{-10, 11.0},
	{-5, 14.0},
	{0, 17.4},
}

// TxCurrentMA returns the transmit current draw at the given power,
// linearly interpolated between the datasheet's programming points and
// clamped at the table's ends.
func TxCurrentMA(power DBm) float64 {
	t := txCurrentTable
	if power <= t[0].power {
		return t[0].mA
	}
	if power >= t[len(t)-1].power {
		return t[len(t)-1].mA
	}
	for i := 1; i < len(t); i++ {
		if power <= t[i].power {
			lo, hi := t[i-1], t[i]
			frac := float64(power-lo.power) / float64(hi.power-lo.power)
			return lo.mA + frac*(hi.mA-lo.mA)
		}
	}
	return t[len(t)-1].mA
}

// EnergyMillijoules converts a current draw held for a duration into
// consumed energy: E = V · I · t.
func EnergyMillijoules(currentMA float64, seconds float64) float64 {
	return SupplyVoltage * currentMA * seconds
}
