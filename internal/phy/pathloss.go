package phy

import "math"

// Position is a point in the deployment plane, in meters.
type Position struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance to other, in meters.
func (p Position) DistanceTo(other Position) float64 {
	dx, dy := p.X-other.X, p.Y-other.Y
	return math.Hypot(dx, dy)
}

// PathLossModel computes propagation loss between two positions.
type PathLossModel interface {
	// Loss returns the path loss in dB for the given distance in meters.
	Loss(distanceMeters float64) float64
}

// RangeInverter is the optional PathLossModel extension the spatial tier
// needs: mapping a loss bound back to a distance bound. Models that
// implement it can back tiled (near-field) topology snapshots, whose far
// pairs carry only a certified loss floor instead of a computed loss.
type RangeInverter interface {
	PathLossModel
	// RangeForLoss returns a distance R such that Loss(d) >= lossDB for
	// every d > R. The model must be monotone non-decreasing in distance
	// for such an R to exist; implementations nudge the result upward so
	// the guarantee holds bit-exactly under floating-point rounding.
	RangeForLoss(lossDB float64) float64
}

// LogDistance is the classic log-distance path-loss model
//
//	PL(d) = PL0 + 10·n·log10(d / d0)
//
// with d0 = 1 m. The defaults approximate an indoor 2.4 GHz office — the
// environment of the paper's testbed.
type LogDistance struct {
	// ReferenceLoss is PL0, the loss at 1 m, in dB.
	ReferenceLoss float64
	// Exponent is the path-loss exponent n.
	Exponent float64
	// MinDistance clamps very small separations so co-located nodes do not
	// produce unphysical received powers.
	MinDistance float64
}

// DefaultPathLoss returns the indoor model used by the testbed scenarios:
// 48 dB loss at 1 m and exponent 3.5.
func DefaultPathLoss() *LogDistance {
	return &LogDistance{ReferenceLoss: 48, Exponent: 3.5, MinDistance: 0.1}
}

// Loss implements PathLossModel.
func (m *LogDistance) Loss(d float64) float64 {
	if d < m.MinDistance {
		d = m.MinDistance
	}
	return m.ReferenceLoss + 10*m.Exponent*math.Log10(d)
}

// RangeForLoss implements RangeInverter by inverting the log-distance
// curve: d = d0·10^((L−PL0)/(10n)). The raw inverse can round to a
// distance whose Loss lands a few ULPs below L, so the result is nudged
// upward until Loss(R) >= L holds exactly — the certified-far guarantee
// tiled snapshots rely on.
func (m *LogDistance) RangeForLoss(lossDB float64) float64 {
	r := math.Pow(10, (lossDB-m.ReferenceLoss)/(10*m.Exponent))
	if r < m.MinDistance {
		r = m.MinDistance
	}
	// Loss is monotone non-decreasing in d, so Loss(R) >= L alone implies
	// the guarantee for every d > R; the loop terminates after a handful of
	// ULPs (log10's rounding error), with the infinity check as a backstop
	// against unrepresentable bounds.
	for m.Loss(r) < lossDB && !math.IsInf(r, 1) {
		r = math.Nextafter(r, math.Inf(1))
	}
	return r
}

// ReceivedPower applies the model to a transmit power and a tx→rx geometry.
func ReceivedPower(model PathLossModel, tx DBm, from, to Position) DBm {
	return tx - DBm(model.Loss(from.DistanceTo(to)))
}
