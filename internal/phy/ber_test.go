package phy

import (
	"testing"
	"testing/quick"
)

func TestBitErrorRateMonotoneDecreasing(t *testing.T) {
	prev := 1.0
	for sinr := -10.0; sinr <= 15; sinr += 0.25 {
		ber := BitErrorRate(sinr)
		if ber > prev+1e-12 {
			t.Fatalf("BER not monotone: BER(%v)=%v > previous %v", sinr, ber, prev)
		}
		prev = ber
	}
}

func TestBitErrorRateBounds(t *testing.T) {
	f := func(s float64) bool {
		ber := BitErrorRate(s)
		return ber >= 0 && ber <= 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitErrorRateCliff(t *testing.T) {
	// The DSSS cliff sits near CliffSINR: material bit errors at the
	// cliff, negligible a few dB above, hopeless a few dB below.
	atCliff := BitErrorRate(CliffSINR)
	if atCliff < 1e-5 || atCliff > 1e-2 {
		t.Errorf("BER(cliff) = %v, want within [1e-5, 1e-2]", atCliff)
	}
	if above := BitErrorRate(CliffSINR + 4); above > 1e-7 {
		t.Errorf("BER(cliff+4 dB) = %v, want < 1e-7", above)
	}
	if below := BitErrorRate(CliffSINR - 4); below < 0.01 {
		t.Errorf("BER(cliff-4 dB) = %v, want > 0.01", below)
	}
	// Equal-power co-channel collision (SINR ≈ 0 dB) must be fatal for a
	// typical frame — the paper's co-channel observation.
	if per := PacketErrorRate(0, 648); per < 0.99 {
		t.Errorf("PER(0 dB, 648 bits) = %v, want ≈ 1", per)
	}
}

func TestPacketErrorRateGrowsWithLength(t *testing.T) {
	short := PacketErrorRate(1, 100)
	long := PacketErrorRate(1, 1000)
	if long <= short {
		t.Errorf("PER(1000 bits) = %v not > PER(100 bits) = %v", long, short)
	}
}

func TestPacketErrorRateBounds(t *testing.T) {
	f := func(s float64, bits int) bool {
		if bits < 0 {
			bits = -bits
		}
		bits %= 10000
		per := PacketErrorRate(s, bits)
		return per >= 0 && per <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketErrorRateZeroBits(t *testing.T) {
	if got := PacketErrorRate(-20, 0); got != 0 {
		t.Errorf("PER(0 bits) = %v, want 0", got)
	}
}

func TestPacketErrorRateHighSINRIsClean(t *testing.T) {
	if got := PacketErrorRate(20, 8*127); got > 1e-9 {
		t.Errorf("PER(20 dB, max frame) = %v, want ~0", got)
	}
}
