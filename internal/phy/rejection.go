package phy

import "math"

// MHz is a radio frequency or frequency offset in megahertz.
type MHz float64

// RejectionCurve maps a channel center-frequency distance (CFD) to the
// receiver's rejection of that interference, in dB. Rejection 0 means the
// interferer lands fully in-band (co-channel); larger values mean the
// receive filter suppresses more of the interfering energy.
type RejectionCurve interface {
	// RejectionDB returns the suppression applied to an interferer offset
	// by deltaF from the receiver's center frequency. Negative offsets are
	// treated symmetrically.
	RejectionDB(deltaF MHz) float64
}

// CC2420Rejection is a piecewise-linear adjacent-channel rejection curve
// shaped after the CC2420 receive filter and the ~2 MHz occupied bandwidth
// of the 802.15.4 O-QPSK signal. The anchor points were calibrated so the
// simulator reproduces the interference tolerances the paper measures:
// concurrency is clean at CFD >= 4 MHz, marginal at 3 MHz, lossy at 2 MHz
// and destructive at 1 MHz (paper Fig. 4), while CFD = 5 MHz (the ZigBee
// default spacing) is near-orthogonal in practice.
//
// The curve is deliberately NOT monotone over the 3-5 MHz span: rejection
// peaks locally at 3 MHz (the null region just past the half-sine main
// lobe) and dips near 4 MHz, where the first PSD sidelobe of the
// interfering O-QPSK signal lands inside the receive filter. Non-monotone,
// offset-asymmetric adjacent-channel rejection is a documented property of
// measured 802.15.4 radios (the CC2420 datasheet itself lists 30 dB vs
// 45 dB for the +5/-5 MHz neighbours). Beyond 5 MHz the channel filter
// dominates and rejection grows monotonically until it saturates.
type CC2420Rejection struct {
	points []rejectionPoint
}

type rejectionPoint struct {
	offset MHz
	db     float64
}

// NewCC2420Rejection returns the calibrated default curve.
func NewCC2420Rejection() *CC2420Rejection {
	return &CC2420Rejection{points: []rejectionPoint{
		{0, 0},
		{1, 0},
		{2, 4},
		{3, 17},
		{4, 13},
		{5, 28},
		{6, 34},
		{7, 40},
		{8, 45},
		{9, 50},
	}}
}

// RejectionDB implements RejectionCurve by linear interpolation between the
// anchor points; offsets beyond the last anchor saturate at its value.
func (c *CC2420Rejection) RejectionDB(deltaF MHz) float64 {
	f := MHz(math.Abs(float64(deltaF)))
	pts := c.points
	if f >= pts[len(pts)-1].offset {
		return pts[len(pts)-1].db
	}
	for i := 1; i < len(pts); i++ {
		if f <= pts[i].offset {
			lo, hi := pts[i-1], pts[i]
			frac := float64(f-lo.offset) / float64(hi.offset-lo.offset)
			return lo.db + frac*(hi.db-lo.db)
		}
	}
	return pts[len(pts)-1].db
}

// EffectiveInterference applies the curve to an interferer's received power:
// the portion of the interfering energy that survives the receive filter.
func EffectiveInterference(curve RejectionCurve, rx DBm, deltaF MHz) DBm {
	if rx <= Silent {
		return Silent
	}
	return rx - DBm(curve.RejectionDB(deltaF))
}

// WidebandInterference computes the in-band portion of a wideband
// interferer (e.g. a 22 MHz 802.11 signal) at a narrowband receiver. The
// interferer's PSD is modelled flat over its occupied width: the portion
// falling inside the receiver window is the geometric overlap, and energy
// beyond the interferer's edge rolls off with the receiver's own rejection
// curve evaluated at the distance past the edge.
//
//	rx        — total received power of the interferer
//	deltaF    — center-frequency distance
//	txWidth   — interferer's occupied bandwidth
//	rxWidth   — receiver bandwidth (2 MHz for 802.15.4)
func WidebandInterference(curve RejectionCurve, rx DBm, deltaF, txWidth, rxWidth MHz) DBm {
	if rx <= Silent {
		return Silent
	}
	if txWidth <= 0 {
		return EffectiveInterference(curve, rx, deltaF)
	}
	d := deltaF
	if d < 0 {
		d = -d
	}
	lo := d - rxWidth/2
	hi := d + rxWidth/2
	overlap := MHz(0)
	if lo < txWidth/2 {
		top := hi
		if top > txWidth/2 {
			top = txWidth / 2
		}
		bottom := lo
		if bottom < -txWidth/2 {
			bottom = -txWidth / 2
		}
		if top > bottom {
			overlap = top - bottom
		}
	}
	if overlap > 0 {
		// Flat PSD: in-band share = overlap / occupied width.
		return rx + DBm(10*math.Log10(float64(overlap/txWidth)))
	}
	// Receiver window entirely outside the occupied band: attenuate by
	// the PSD dilution at the edge plus the filter rolloff past it.
	edge := lo - txWidth/2
	dilution := DBm(10 * math.Log10(float64(rxWidth/txWidth)))
	return rx + dilution - DBm(curve.RejectionDB(edge))
}

// AsymmetricRejection wraps a base curve with the CC2420 datasheet's
// documented asymmetry: rejection of the channel below the carrier is
// stronger than of the channel above it (-5 MHz: 45 dB vs +5 MHz: 30 dB,
// an image-frequency artifact of the receiver's IF chain). BonusDB is
// added for negative offsets (interferers below the receiver's carrier).
type AsymmetricRejection struct {
	// Base supplies the symmetric part.
	Base RejectionCurve
	// BonusDB is the extra suppression of below-carrier interferers
	// (datasheet: ~15 dB at the adjacent channel).
	BonusDB float64
}

// RejectionDB implements RejectionCurve.
func (a AsymmetricRejection) RejectionDB(deltaF MHz) float64 {
	r := a.Base.RejectionDB(deltaF)
	if deltaF < 0 {
		r += a.BonusDB
	}
	return r
}
