package phy

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMilliwattsRoundTrip(t *testing.T) {
	f := func(p float64) bool {
		dbm := DBm(math.Mod(p, 200)) // sane radio range
		back := FromMilliwatts(dbm.Milliwatts())
		return almostEqual(float64(back), float64(dbm), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMilliwattsKnownValues(t *testing.T) {
	tests := []struct {
		dbm  DBm
		want float64
	}{
		{0, 1},
		{10, 10},
		{-10, 0.1},
		{-30, 0.001},
		{3, 1.9952623},
	}
	for _, tt := range tests {
		if got := tt.dbm.Milliwatts(); !almostEqual(got, tt.want, 1e-6) {
			t.Errorf("(%v dBm).Milliwatts() = %v, want %v", tt.dbm, got, tt.want)
		}
	}
}

func TestFromMilliwattsNonPositive(t *testing.T) {
	if got := FromMilliwatts(0); got != Silent {
		t.Errorf("FromMilliwatts(0) = %v, want Silent", got)
	}
	if got := FromMilliwatts(-1); got != Silent {
		t.Errorf("FromMilliwatts(-1) = %v, want Silent", got)
	}
}

func TestCombineTwoEqualPowersAddsThreeDB(t *testing.T) {
	got := Combine(-60, -60)
	if !almostEqual(float64(got), -56.9897, 0.001) {
		t.Errorf("Combine(-60,-60) = %v, want ≈ -57.0", got)
	}
}

func TestCombineDominantTerm(t *testing.T) {
	// A 30 dB weaker interferer barely moves the total.
	got := Combine(-50, -80)
	if !almostEqual(float64(got), -50, 0.01) {
		t.Errorf("Combine(-50,-80) = %v, want ≈ -50", got)
	}
}

func TestCombineEmptyAndSilent(t *testing.T) {
	if got := Combine(); got != Silent {
		t.Errorf("Combine() = %v, want Silent", got)
	}
	if got := Combine(Silent, Silent); got != Silent {
		t.Errorf("Combine(Silent, Silent) = %v, want Silent", got)
	}
	if got := Combine(-40, Silent); !almostEqual(float64(got), -40, 1e-9) {
		t.Errorf("Combine(-40, Silent) = %v, want -40", got)
	}
}

func TestCombineIsCommutative(t *testing.T) {
	f := func(a, b, c float64) bool {
		x := DBm(math.Mod(a, 100))
		y := DBm(math.Mod(b, 100))
		z := DBm(math.Mod(c, 100))
		p1 := Combine(x, y, z)
		p2 := Combine(z, x, y)
		return almostEqual(float64(p1), float64(p2), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinusInvertsCombine(t *testing.T) {
	f := func(a, b float64) bool {
		x := DBm(-90 + math.Mod(math.Abs(a), 80))
		y := DBm(-90 + math.Mod(math.Abs(b), 80))
		total := Combine(x, y)
		back := Minus(total, y)
		return almostEqual(float64(back), float64(x), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSINRNoiseOnly(t *testing.T) {
	// Signal at -70 dBm against noise floor only: SINR = -70 - (-100) = 30.
	got := SINR(-70, Silent)
	if !almostEqual(got, 30, 0.01) {
		t.Errorf("SINR(-70, none) = %v, want 30", got)
	}
}

func TestSINRInterferenceDominates(t *testing.T) {
	// Strong interference swamps the noise floor.
	got := SINR(-60, -65)
	if !almostEqual(got, 5, 0.05) {
		t.Errorf("SINR(-60, -65) = %v, want ≈ 5", got)
	}
}
