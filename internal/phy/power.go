// Package phy models the physical layer of IEEE 802.15.4 radios in the
// 2.4 GHz band: power arithmetic, propagation, adjacent-channel rejection,
// and the O-QPSK DSSS bit-error-rate curve. All powers are in dBm and all
// frequencies in MHz unless stated otherwise.
package phy

import "math"

// DBm is a signal power level in dBm.
type DBm float64

// Reference levels used throughout the simulator. The noise floor and
// sensitivity follow the CC2420 datasheet (receiver sensitivity -95 dBm);
// the default CCA threshold is the ZigBee/CC2420 default the paper cites.
const (
	// NoiseFloor is the in-band thermal noise plus receiver noise figure.
	NoiseFloor DBm = -100
	// Sensitivity is the weakest signal a receiver can synchronise to.
	Sensitivity DBm = -94
	// DefaultCCAThreshold is the fixed ZigBee CCA threshold (-77 dBm).
	DefaultCCAThreshold DBm = -77
	// MaxTxPower is the CC2420 maximum transmit power.
	MaxTxPower DBm = 0
	// MinTxPower is the weakest setting used in the paper's sweeps.
	MinTxPower DBm = -33
	// CCARegisterMin and CCARegisterMax bound the CC2420's programmable
	// CCA threshold. The CCA_THR register is an 8-bit signed value offset
	// by the -45 dB RSSI offset, but the energy detector only produces
	// meaningful readings over roughly [-110, 0] dBm; writes outside this
	// span program a threshold the hardware cannot honour.
	CCARegisterMin DBm = -110
	CCARegisterMax DBm = 0
)

// ReachMarginDB is the conservative slack every reachable-power proof in
// the simulator carries: a pair is ruled out only when the bounding
// computation still sits this far below the listener's floor. The per-link
// shadowing and per-transmission jitter draws are unbounded Gaussians, so
// any such proof is probabilistic in the strictest sense — but 40 dB is
// more than 11 standard deviations of the default combined σ=√(3²+2²) dB
// distribution (exceedance ~2e-28 per draw), far beyond anything a
// simulation of any length can observe. Shared by the medium's interest
// cull and the spatial tier's far-pair bounds so the two always agree.
const ReachMarginDB DBm = 40

// ClampCCAThreshold confines a requested CCA threshold to the CC2420's
// programmable register range and reports whether clamping was needed.
func ClampCCAThreshold(t DBm) (DBm, bool) {
	switch {
	case t < CCARegisterMin:
		return CCARegisterMin, true
	case t > CCARegisterMax:
		return CCARegisterMax, true
	}
	return t, false
}

// Milliwatts converts a dBm level to linear milliwatts.
func (p DBm) Milliwatts() float64 {
	return math.Pow(10, float64(p)/10)
}

// FromMilliwatts converts linear milliwatts to dBm. Zero or negative power
// maps to an effectively silent -infinity substitute well below any
// sensitivity used in the simulator.
func FromMilliwatts(mw float64) DBm {
	if mw <= 0 {
		return Silent
	}
	return DBm(10 * math.Log10(mw))
}

// Silent is a stand-in for -infinity dBm: no measurable signal.
const Silent DBm = -1000

// Combine sums an arbitrary set of powers in the linear domain and returns
// the total in dBm. Combine() of nothing returns Silent.
func Combine(levels ...DBm) DBm {
	total := 0.0
	for _, l := range levels {
		if l <= Silent {
			continue
		}
		total += l.Milliwatts()
	}
	return FromMilliwatts(total)
}

// Minus returns the power remaining after removing other from total, both in
// dBm, flooring at Silent. It is the inverse of Combine for two operands.
func Minus(total, other DBm) DBm {
	diff := total.Milliwatts() - other.Milliwatts()
	return FromMilliwatts(diff)
}

// SINR computes the signal-to-interference-plus-noise ratio in dB for a
// signal against a combined interference level, including the noise floor.
func SINR(signal, interference DBm) float64 {
	denom := interference.Milliwatts() + NoiseFloor.Milliwatts()
	return float64(signal) - 10*math.Log10(denom)
}
