package phy

import (
	"math"
	"strings"
	"testing"
)

// TestPERTableGridBitEquality is the differential oracle over the full
// quantisation domain: every grid point of a production-sized table must
// return, through the quantising lookups, exactly the bits the closed
// forms produce. (The constructor proves this too — the test keeps the
// property pinned independently of the constructor's own check.)
func TestPERTableGridBitEquality(t *testing.T) {
	const minDB, maxDB, stepDB = -20.0, 20.0, 0.05
	tab, err := NewPERTable(minDB, maxDB, stepDB, 648)
	if err != nil {
		t.Fatal(err)
	}
	n := int(math.Round((maxDB-minDB)/stepDB)) + 1
	for i := 0; i < n; i++ {
		s := minDB + float64(i)*stepDB
		if got, want := tab.BER(s), BitErrorRate(s); got != want {
			t.Fatalf("BER(%v) = %v via table, %v via closed form", s, got, want)
		}
		if got, want := tab.PER(s), PacketErrorRate(s, 648); got != want {
			t.Fatalf("PER(%v) = %v via table, %v via closed form", s, got, want)
		}
	}
	if tab.Bits() != 648 {
		t.Fatalf("Bits() = %d, want 648", tab.Bits())
	}
}

// TestPERTableRounding checks that off-grid inputs snap to the nearest
// grid point and out-of-domain inputs clamp to the edges.
func TestPERTableRounding(t *testing.T) {
	tab, err := NewPERTable(-10, 10, 0.1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tab.PER(2.04), tab.PER(2.0); got != want {
		t.Fatalf("PER(2.04) = %v, want the 2.0 grid value %v", got, want)
	}
	if got, want := tab.PER(2.06), tab.PER(2.1); got != want {
		t.Fatalf("PER(2.06) = %v, want the 2.1 grid value %v", got, want)
	}
	if got, want := tab.PER(-40), tab.PER(-10); got != want {
		t.Fatalf("PER(-40) = %v, want the low clamp %v", got, want)
	}
	if got, want := tab.PER(40), tab.PER(10); got != want {
		t.Fatalf("PER(40) = %v, want the high clamp %v", got, want)
	}
	if got := tab.PER(-40); got != PacketErrorRate(-10, 256) {
		t.Fatalf("low clamp %v differs from closed form at the edge %v", got, PacketErrorRate(-10, 256))
	}
}

// TestPERTableRejectsBadParameters covers the constructor's refusal
// paths: malformed domains never yield a table.
func TestPERTableRejectsBadParameters(t *testing.T) {
	cases := []struct {
		name           string
		min, max, step float64
		bits           int
	}{
		{"zero step", -10, 10, 0, 648},
		{"negative step", -10, 10, -0.1, 648},
		{"inverted domain", 10, -10, 0.1, 648},
		{"zero bits", -10, 10, 0.1, 0},
		{"nan bound", math.NaN(), 10, 0.1, 648},
		{"oversized grid", -10, 1e9, 0.001, 648},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if tab, err := NewPERTable(c.min, c.max, c.step, c.bits); err == nil {
				t.Fatalf("NewPERTable(%v, %v, %v, %d) built a table (%d points), want rejection",
					c.min, c.max, c.step, c.bits, len(tab.per))
			}
		})
	}
}

// TestPERTableVerifyCatchesCorruption drives the equivalence proof
// itself: flip one stored value and the verifier must reject the table.
func TestPERTableVerifyCatchesCorruption(t *testing.T) {
	tab, err := NewPERTable(-10, 10, 0.1, 648)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.verify(); err != nil {
		t.Fatalf("pristine table failed verification: %v", err)
	}
	mid := len(tab.per) / 2
	tab.per[mid] = math.Nextafter(tab.per[mid], 2)
	err = tab.verify()
	if err == nil {
		t.Fatal("verification passed on a corrupted table")
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("corruption error %q does not say the table is rejected", err)
	}
}

// TestPERTableBudget: a coarse grid across the DSSS cliff cannot meet a
// tight accuracy budget (midpoint error near the cliff is order 0.5 PER),
// while a fine grid does.
func TestPERTableBudget(t *testing.T) {
	if _, err := NewPERTableWithBudget(-10, 10, 1.0, 648, 1e-3); err == nil {
		t.Fatal("1 dB grid met a 1e-3 PER budget across the cliff")
	}
	tab, err := NewPERTableWithBudget(-10, 10, 0.001, 648, 5e-3)
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil {
		t.Fatal("budgeted build returned no table")
	}
	if _, err := NewPERTableWithBudget(-10, 10, 0.1, 648, math.NaN()); err == nil {
		t.Fatal("NaN budget accepted")
	}
}

// TestPERBatchMatchesScalar: the batch fill must agree element-wise with
// the scalar lookup, including the empty batch.
func TestPERBatchMatchesScalar(t *testing.T) {
	tab, err := NewPERTable(-15, 15, 0.05, 648)
	if err != nil {
		t.Fatal(err)
	}
	sinrs := make([]float64, 512)
	for i := range sinrs {
		sinrs[i] = float64(i)*0.07 - 18 // spills past both clamps
	}
	dst := make([]float64, len(sinrs))
	tab.PERBatch(dst, sinrs)
	for i, s := range sinrs {
		if dst[i] != tab.PER(s) {
			t.Fatalf("batch[%d] = %v, scalar PER(%v) = %v", i, dst[i], s, tab.PER(s))
		}
	}
	tab.PERBatch(nil, nil) // must not panic
}
