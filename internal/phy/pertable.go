package phy

import (
	"fmt"
	"math"
)

// PERTable is a quantised lookup table over the DSSS BER/PER curves: the
// closed forms evaluated once on a uniform SINR grid, with lookups
// rounding to the nearest grid point. Sweeps that evaluate SINR→BER→PER
// for every (listener, transmission) pair pay a handful of float
// operations per lookup instead of fifteen math.Exp calls.
//
// Construction carries a proof of equivalence: after filling the grid,
// the constructor re-evaluates the closed form at every grid point and
// requires each lookup to return the identical bits, or the table is
// rejected with an error. The proof pins the index round-trip — quantise,
// clamp, fetch — not just the stored values, so a table that builds is
// bit-exact over its whole quantisation domain by checked construction,
// not by convention.
//
// Off the grid, lookups return the nearest grid point's value: an
// approximation whose error depends on the grid pitch against the DSSS
// cliff. The simulator's defaults never install a table — the exact
// closed form remains the reference path — and NewPERTableWithBudget
// exists for callers that opt in and want the approximation error bounded
// at build time rather than audited after the fact.
type PERTable struct {
	minDB  float64
	stepDB float64
	bits   int
	ber    []float64
	per    []float64
}

// maxPERTablePoints bounds table construction: a grid this large means
// the caller passed a pitch or span they did not intend.
const maxPERTablePoints = 1 << 22

// NewPERTable builds a table of BitErrorRate and PacketErrorRate(·, bits)
// on the grid minDB + i·stepDB, i = 0 … round((maxDB−minDB)/stepDB). It
// returns an error — never a partially checked table — if the parameters
// are malformed or the equivalence proof fails at any grid point.
func NewPERTable(minDB, maxDB, stepDB float64, bits int) (*PERTable, error) {
	switch {
	case math.IsNaN(minDB) || math.IsNaN(maxDB) || math.IsNaN(stepDB):
		return nil, fmt.Errorf("phy: PER table bounds must be numbers, got [%v, %v] step %v", minDB, maxDB, stepDB)
	case stepDB <= 0:
		return nil, fmt.Errorf("phy: PER table step must be positive, got %v", stepDB)
	case maxDB < minDB:
		return nil, fmt.Errorf("phy: PER table domain inverted: [%v, %v]", minDB, maxDB)
	case bits <= 0:
		return nil, fmt.Errorf("phy: PER table frame size must be positive, got %d bits", bits)
	}
	n := int(math.Round((maxDB-minDB)/stepDB)) + 1
	if n > maxPERTablePoints {
		return nil, fmt.Errorf("phy: PER table would hold %d points (max %d): grid too fine for its span", n, maxPERTablePoints)
	}
	t := &PERTable{
		minDB:  minDB,
		stepDB: stepDB,
		bits:   bits,
		ber:    make([]float64, n),
		per:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s := t.grid(i)
		t.ber[i] = BitErrorRate(s)
		t.per[i] = PacketErrorRate(s, bits)
	}
	if err := t.verify(); err != nil {
		return nil, err
	}
	return t, nil
}

// NewPERTableWithBudget builds the same table and additionally bounds the
// off-grid quantisation error: the worst absolute deviation between the
// table and the closed forms, probed at every cell midpoint (where
// nearest-grid rounding error peaks) and at the clamp edges, must not
// exceed budget, or the table is rejected. This is the explicit opt-in
// for using the table as an approximation of arbitrary SINRs.
func NewPERTableWithBudget(minDB, maxDB, stepDB float64, bits int, budget float64) (*PERTable, error) {
	if math.IsNaN(budget) || budget < 0 {
		return nil, fmt.Errorf("phy: PER table accuracy budget must be non-negative, got %v", budget)
	}
	t, err := NewPERTable(minDB, maxDB, stepDB, bits)
	if err != nil {
		return nil, err
	}
	if worst := t.maxQuantisationError(); worst > budget {
		return nil, fmt.Errorf("phy: PER table quantisation error %v exceeds budget %v (step %v dB over [%v, %v])",
			worst, budget, stepDB, minDB, maxDB)
	}
	return t, nil
}

// grid returns the SINR of grid point i, computed the one way every
// build/verify loop must share: a single multiply-add from the origin, so
// no two call sites can disagree by a rounding step.
func (t *PERTable) grid(i int) float64 { return t.minDB + float64(i)*t.stepDB }

// verify is the equivalence proof: every grid point, looked up through
// the public quantising accessors, must reproduce the closed forms
// bit-for-bit.
func (t *PERTable) verify() error {
	for i := range t.ber {
		s := t.grid(i)
		if got, want := t.BER(s), BitErrorRate(s); got != want {
			return fmt.Errorf("phy: PER table rejected: BER(%v dB) = %v via table, %v via closed form", s, got, want)
		}
		if got, want := t.PER(s), PacketErrorRate(s, t.bits); got != want {
			return fmt.Errorf("phy: PER table rejected: PER(%v dB) = %v via table, %v via closed form", s, got, want)
		}
	}
	return nil
}

// maxQuantisationError probes the cell midpoints and the out-of-domain
// clamp edges for the largest absolute deviation between table lookups
// and the closed forms, across both curves.
func (t *PERTable) maxQuantisationError() float64 {
	worst := 0.0
	probe := func(s float64) {
		if d := math.Abs(t.BER(s) - BitErrorRate(s)); d > worst {
			worst = d
		}
		if d := math.Abs(t.PER(s) - PacketErrorRate(s, t.bits)); d > worst {
			worst = d
		}
	}
	for i := 0; i < len(t.ber)-1; i++ {
		probe(t.grid(i) + t.stepDB/2)
	}
	probe(t.minDB - t.stepDB)
	probe(t.grid(len(t.ber)-1) + t.stepDB)
	return worst
}

// index quantises a SINR to its nearest grid point, clamping outside the
// domain (the curves are flat well before any sane domain's edges).
func (t *PERTable) index(sinrDB float64) int {
	i := int(math.Round((sinrDB - t.minDB) / t.stepDB))
	if i < 0 {
		return 0
	}
	if i >= len(t.ber) {
		return len(t.ber) - 1
	}
	return i
}

// Bits returns the frame size the PER column was built for.
func (t *PERTable) Bits() int { return t.bits }

// BER returns the tabulated bit-error rate at the grid point nearest
// sinrDB.
func (t *PERTable) BER(sinrDB float64) float64 { return t.ber[t.index(sinrDB)] }

// PER returns the tabulated packet-error rate at the grid point nearest
// sinrDB, for frames of Bits() bits.
func (t *PERTable) PER(sinrDB float64) float64 { return t.per[t.index(sinrDB)] }

// PERBatch fills dst with the tabulated PER of each SINR in sinrs. The
// slices must have equal length; dst may alias sinrs.
func (t *PERTable) PERBatch(dst, sinrs []float64) {
	if len(sinrs) == 0 {
		return
	}
	_ = dst[len(sinrs)-1]
	for i, s := range sinrs {
		dst[i] = t.per[t.index(s)]
	}
}
