package phy

import "testing"

func BenchmarkBitErrorRate(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += BitErrorRate(float64(i%20) - 10)
	}
	_ = s
}

func BenchmarkPacketErrorRate(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += PacketErrorRate(2.0, 648)
	}
	_ = s
}

func BenchmarkCombine(b *testing.B) {
	levels := []DBm{-60, -70, -80, -90, -55}
	for i := 0; i < b.N; i++ {
		Combine(levels...)
	}
}

func BenchmarkRejectionLookup(b *testing.B) {
	c := NewCC2420Rejection()
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += c.RejectionDB(MHz(i % 12))
	}
	_ = s
}

func BenchmarkPathLoss(b *testing.B) {
	m := DefaultPathLoss()
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += m.Loss(float64(i%10) + 0.5)
	}
	_ = s
}
