package phy

import "testing"

func BenchmarkBitErrorRate(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += BitErrorRate(float64(i%20) - 10)
	}
	_ = s
}

func BenchmarkPacketErrorRate(b *testing.B) {
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += PacketErrorRate(2.0, 648)
	}
	_ = s
}

// BenchmarkPERBatch measures PER evaluation over a batch of SINR samples —
// the shape of a sweep evaluating SINR→BER→PER for every (listener,
// transmission) pair of a segment. The batch runs on the quantised lookup
// table; BenchmarkPacketErrorRate above covers the closed-form reference.
func BenchmarkPERBatch(b *testing.B) {
	tab, err := NewPERTable(-20, 20, 0.05, 648)
	if err != nil {
		b.Fatal(err)
	}
	sinrs := make([]float64, 256)
	for i := range sinrs {
		sinrs[i] = float64(i%240)/10 - 10 // [-10, 14) dB in 0.1 dB steps
	}
	dst := make([]float64, len(sinrs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.PERBatch(dst, sinrs)
	}
	_ = dst
}

func BenchmarkCombine(b *testing.B) {
	levels := []DBm{-60, -70, -80, -90, -55}
	for i := 0; i < b.N; i++ {
		Combine(levels...)
	}
}

func BenchmarkRejectionLookup(b *testing.B) {
	c := NewCC2420Rejection()
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += c.RejectionDB(MHz(i % 12))
	}
	_ = s
}

func BenchmarkPathLoss(b *testing.B) {
	m := DefaultPathLoss()
	s := 0.0
	for i := 0; i < b.N; i++ {
		s += m.Loss(float64(i%10) + 0.5)
	}
	_ = s
}
