package phy

import "math"

// ImplementationLoss shifts the analytic DSSS curve to where real CC2420
// receivers sit: measurement studies of 802.15.4 capture place the
// decodable/undecodable cliff around +2…+4 dB SINR rather than the ~-1 dB
// the ideal coherent formula predicts. The shift also realises the paper's
// co-channel observation: two equal-power co-channel packets (SINR ≈ 0 dB)
// cannot both be decoded.
const ImplementationLoss = 3.5

// BitErrorRate returns the bit-error probability of the 802.15.4 2.4 GHz
// O-QPSK DSSS PHY at a given SINR in dB. It is the standard analytic form
// for 16-ary quasi-orthogonal signalling used throughout the WSN
// literature:
//
//	BER(γ) = (8/15)·(1/16)·Σ_{k=2}^{16} (-1)^k · C(16,k) · exp(20·γ·(1/k − 1))
//
// with γ the linear SINR, evaluated ImplementationLoss dB below the input.
// The curve has the characteristic DSSS cliff: a few dB separate
// near-perfect reception from total loss.
func BitErrorRate(sinrDB float64) float64 {
	gamma := math.Pow(10, (sinrDB-ImplementationLoss)/10)
	sum := 0.0
	sign := 1.0 // (-1)^k for k=2 is +1
	for k := 2; k <= 16; k++ {
		sum += sign * binomial16[k] * math.Exp(20*gamma*(1/float64(k)-1))
		sign = -sign
	}
	ber := (8.0 / 15.0) * (1.0 / 16.0) * sum
	if ber < 0 {
		return 0
	}
	if ber > 0.5 {
		return 0.5
	}
	return ber
}

// binomial16[k] = C(16, k).
var binomial16 = [17]float64{
	1, 16, 120, 560, 1820, 4368, 8008, 11440,
	12870, 11440, 8008, 4368, 1820, 560, 120, 16, 1,
}

// PacketErrorRate returns the probability that at least one of bits bits is
// corrupted at the given SINR, assuming independent bit errors.
func PacketErrorRate(sinrDB float64, bits int) float64 {
	if bits <= 0 {
		return 0
	}
	ber := BitErrorRate(sinrDB)
	if ber <= 0 {
		return 0
	}
	return 1 - math.Pow(1-ber, float64(bits))
}

// CliffSINR is the approximate SINR in dB at which a typical data frame
// (on the order of 500–1000 bits) transitions from mostly-lost to
// mostly-received. Exposed for tests and documentation; the simulator
// itself always evaluates the full curve.
const CliffSINR = 2.5
