package phy

import (
	"math"
	"testing"
	"testing/quick"
)

func mathLog10(x float64) float64 { return math.Log10(x) }

func TestRejectionSymmetric(t *testing.T) {
	c := NewCC2420Rejection()
	f := func(d float64) bool {
		return c.RejectionDB(MHz(d)) == c.RejectionDB(MHz(-d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRejectionMonotoneBeyondSidelobe(t *testing.T) {
	// The 3→4 MHz sidelobe dip is intentional; beyond 4 MHz the channel
	// filter dominates and the curve must grow monotonically.
	c := NewCC2420Rejection()
	prev := -1.0
	for d := MHz(4); d <= 12; d += 0.1 {
		r := c.RejectionDB(d)
		if r < prev-1e-12 {
			t.Fatalf("rejection not monotone at %v MHz: %v < %v", d, r, prev)
		}
		prev = r
	}
}

func TestRejectionSidelobeDip(t *testing.T) {
	// O-QPSK PSD first sidelobe: rejection at 4 MHz is below the 3 MHz
	// null-region peak, but both dominate the main-lobe overlap at 2 MHz.
	c := NewCC2420Rejection()
	r2, r3, r4 := c.RejectionDB(2), c.RejectionDB(3), c.RejectionDB(4)
	if !(r3 > r4 && r4 > r2) {
		t.Errorf("sidelobe structure violated: R(2)=%v R(3)=%v R(4)=%v, want R(3) > R(4) > R(2)", r2, r3, r4)
	}
}

func TestRejectionAnchors(t *testing.T) {
	c := NewCC2420Rejection()
	tests := []struct {
		off  MHz
		want float64
	}{
		{0, 0},
		{1, 0},
		{2, 4},
		{3, 17},
		{4, 13},
		{5, 28},
		{9, 50},
		{15, 50}, // saturates beyond last anchor
	}
	for _, tt := range tests {
		if got := c.RejectionDB(tt.off); got != tt.want {
			t.Errorf("RejectionDB(%v) = %v, want %v", tt.off, got, tt.want)
		}
	}
}

func TestRejectionInterpolates(t *testing.T) {
	c := NewCC2420Rejection()
	got := c.RejectionDB(2.5)
	if !almostEqual(got, 10.5, 1e-9) { // halfway between 4 and 17
		t.Errorf("RejectionDB(2.5) = %v, want 10.5", got)
	}
}

func TestEffectiveInterference(t *testing.T) {
	c := NewCC2420Rejection()
	got := EffectiveInterference(c, -50, 3)
	if !almostEqual(float64(got), -67, 1e-9) {
		t.Errorf("EffectiveInterference(-50, 3 MHz) = %v, want -67", got)
	}
	if got := EffectiveInterference(c, Silent, 3); got != Silent {
		t.Errorf("EffectiveInterference(Silent) = %v, want Silent", got)
	}
}

// TestRejectionReproducesPaperCPRRBands verifies that the calibrated curve,
// combined with the BER model, puts each CFD of the paper's Fig. 4 into the
// right qualitative band for an equal-power collider (the attacker
// geometry): >=4 MHz clean, 3 MHz near-clean (~97 %), 2 MHz lossy (~70 %),
// 1 MHz destructive (<20 %). The per-transmission RSSI jitter (σ = 2 dB on
// signal and interference, ≈ 2.8 dB on their ratio) supplies the spread;
// here we check the mean-SINR placement relative to the cliff.
func TestRejectionReproducesPaperCPRRBands(t *testing.T) {
	c := NewCC2420Rejection()
	const sigmaSINR = 2.8 // ratio of two σ=2 jittered powers
	meanSINR := func(cfd MHz) float64 { return c.RejectionDB(cfd) }

	if s := meanSINR(1); s > CliffSINR-0.75*sigmaSINR {
		t.Errorf("CFD=1 MHz mean SINR = %v, want well below the cliff (CPRR < 20%%)", s)
	}
	if s := meanSINR(2); s < CliffSINR || s > CliffSINR+sigmaSINR {
		t.Errorf("CFD=2 MHz mean SINR = %v, want marginal near the cliff (CPRR ≈ 70%%)", s)
	}
	if s := meanSINR(3); s < CliffSINR+3*sigmaSINR {
		t.Errorf("CFD=3 MHz mean SINR = %v, want comfortably above cliff (CPRR ≈ 97%%)", s)
	}
	if s := meanSINR(4); s < CliffSINR+3*sigmaSINR {
		t.Errorf("CFD=4 MHz mean SINR = %v, want clean (CPRR ≈ 100%%)", s)
	}
}

func TestChannelPlanEvaluationBand(t *testing.T) {
	// 15 MHz evaluation band, inclusive edges: CFD=3 → 6 channels,
	// CFD=5 → 4 channels (paper Section VI-B).
	p3, err := NewChannelPlan(2458, 15, 3, SpanInclusive)
	if err != nil {
		t.Fatal(err)
	}
	if p3.NumChannels() != 6 {
		t.Errorf("CFD=3 inclusive channels = %d, want 6", p3.NumChannels())
	}
	if p3.Centers[5] != 2473 {
		t.Errorf("last center = %v, want 2473", p3.Centers[5])
	}
	p5, err := NewChannelPlan(2458, 15, 5, SpanInclusive)
	if err != nil {
		t.Fatal(err)
	}
	if p5.NumChannels() != 4 {
		t.Errorf("CFD=5 inclusive channels = %d, want 4", p5.NumChannels())
	}
}

func TestChannelPlanMotivationBand(t *testing.T) {
	// 12 MHz motivation band, packed counting (paper Section III-A):
	// 9→1, 5→2, 4→3, 3→4, 2→6.
	want := map[MHz]int{9: 1, 5: 2, 4: 3, 3: 4, 2: 6}
	for cfd, n := range want {
		p, err := NewChannelPlan(2458, 12, cfd, SpanPacked)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumChannels() != n {
			t.Errorf("CFD=%v packed channels = %d, want %d", cfd, p.NumChannels(), n)
		}
	}
}

func TestChannelPlanErrors(t *testing.T) {
	if _, err := NewChannelPlan(2458, 12, 0, SpanPacked); err == nil {
		t.Error("zero CFD accepted")
	}
	if _, err := NewChannelPlan(2458, -1, 3, SpanPacked); err == nil {
		t.Error("negative bandwidth accepted")
	}
	if _, err := NewChannelPlan(2458, 12, 3, SpanMode(99)); err == nil {
		t.Error("bogus span mode accepted")
	}
}

func TestChannelPlanMiddleIndexAndOffsets(t *testing.T) {
	p, err := NewChannelPlan(2458, 15, 3, SpanInclusive)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MiddleIndex(); got != 2 {
		t.Errorf("MiddleIndex = %d, want 2", got)
	}
	off := p.Offsets(2)
	want := []MHz{6, 3, 0, 3, 6, 9}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("Offsets(2) = %v, want %v", off, want)
		}
	}
}

func TestZigBeeChannelFreq(t *testing.T) {
	if f, err := ZigBeeChannelFreq(11); err != nil || f != 2405 {
		t.Errorf("channel 11 = %v, %v; want 2405", f, err)
	}
	if f, err := ZigBeeChannelFreq(26); err != nil || f != 2480 {
		t.Errorf("channel 26 = %v, %v; want 2480", f, err)
	}
	if _, err := ZigBeeChannelFreq(10); err == nil {
		t.Error("channel 10 accepted")
	}
	if _, err := ZigBeeChannelFreq(27); err == nil {
		t.Error("channel 27 accepted")
	}
}

func TestPathLossMonotone(t *testing.T) {
	m := DefaultPathLoss()
	prev := -1.0
	for d := 0.1; d < 50; d += 0.5 {
		l := m.Loss(d)
		if l < prev {
			t.Fatalf("path loss not monotone at %v m", d)
		}
		prev = l
	}
}

func TestPathLossClampsTinyDistance(t *testing.T) {
	m := DefaultPathLoss()
	if got, want := m.Loss(0), m.Loss(0.1); got != want {
		t.Errorf("Loss(0) = %v, want clamped to Loss(0.1) = %v", got, want)
	}
}

func TestReceivedPowerGeometry(t *testing.T) {
	m := &LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}
	// 10 m at exponent 3: 40 + 30 = 70 dB loss.
	got := ReceivedPower(m, 0, Position{0, 0}, Position{10, 0})
	if !almostEqual(float64(got), -70, 1e-9) {
		t.Errorf("ReceivedPower = %v, want -70", got)
	}
}

func TestPositionDistance(t *testing.T) {
	d := Position{0, 0}.DistanceTo(Position{3, 4})
	if d != 5 {
		t.Errorf("distance = %v, want 5", d)
	}
}

func TestWidebandInterferenceFullOverlap(t *testing.T) {
	c := NewCC2420Rejection()
	// Receiver window (2 MHz) fully inside a 22 MHz signal: in-band share
	// = 2/22 ≈ -10.4 dB, regardless of modest offsets.
	co := WidebandInterference(c, -40, 0, 22, 2)
	if !almostEqual(float64(co), -50.41, 0.05) {
		t.Errorf("co-center wideband = %v, want ≈ -50.4", co)
	}
	off := WidebandInterference(c, -40, 5, 22, 2)
	if !almostEqual(float64(off), float64(co), 1e-9) {
		t.Errorf("offset-5 wideband = %v, want equal to co-center %v", off, co)
	}
}

func TestWidebandInterferencePartialOverlap(t *testing.T) {
	c := NewCC2420Rejection()
	// Window straddling the signal edge at |Δf| = 11 MHz: half the window
	// (1 of 2 MHz) overlaps → 1/22 share.
	edge := WidebandInterference(c, -40, 11, 22, 2)
	want := -40 + 10*mathLog10(1.0/22.0)
	if !almostEqual(float64(edge), want, 0.05) {
		t.Errorf("edge wideband = %v, want ≈ %v", edge, want)
	}
}

func TestWidebandInterferenceBeyondEdgeRollsOff(t *testing.T) {
	c := NewCC2420Rejection()
	inside := WidebandInterference(c, -40, 5, 22, 2)
	past := WidebandInterference(c, -40, 15, 22, 2) // 3 MHz past the edge
	far := WidebandInterference(c, -40, 25, 22, 2)  // 13 MHz past the edge
	if !(inside > past && past > far) {
		t.Errorf("no monotone rolloff: inside %v past %v far %v", inside, past, far)
	}
}

func TestWidebandInterferenceDegeneratesToNarrowband(t *testing.T) {
	c := NewCC2420Rejection()
	wide := WidebandInterference(c, -40, 3, 0, 2)
	narrow := EffectiveInterference(c, -40, 3)
	if wide != narrow {
		t.Errorf("zero-width wideband = %v, want narrowband %v", wide, narrow)
	}
	if got := WidebandInterference(c, Silent, 0, 22, 2); got != Silent {
		t.Errorf("silent wideband = %v, want Silent", got)
	}
}

func TestAsymmetricRejection(t *testing.T) {
	a := AsymmetricRejection{Base: NewCC2420Rejection(), BonusDB: 15}
	// An interferer BELOW the carrier (negative offset) is suppressed
	// harder, per the datasheet's 45-vs-30 dB figures.
	up := a.RejectionDB(5)    // interferer 5 MHz above
	down := a.RejectionDB(-5) // interferer 5 MHz below
	if down != up+15 {
		t.Errorf("asymmetry = %v vs %v, want +15 dB below carrier", down, up)
	}
	if a.RejectionDB(0) != 0 {
		t.Errorf("co-channel rejection = %v, want 0", a.RejectionDB(0))
	}
}

func TestAsymmetricRejectionInMedium(t *testing.T) {
	// The wrapper drops into EffectiveInterference like any curve.
	a := AsymmetricRejection{Base: NewCC2420Rejection(), BonusDB: 15}
	above := EffectiveInterference(a, -50, 3)
	below := EffectiveInterference(a, -50, -3)
	if below >= above {
		t.Errorf("below-carrier interferer %v not weaker than above %v", below, above)
	}
}
