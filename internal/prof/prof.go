// Package prof wires the runtime/pprof profilers behind the -cpuprofile
// and -memprofile flags the dcnsim and dcnreport commands share.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a
// stop function that finalises the CPU profile and, when memPath is
// non-empty, writes a heap profile there. Either path may be empty; with
// both empty the returned stop is a no-op. Call stop exactly once, after
// the workload finished.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialise up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
