package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"nonortho/internal/sim"
)

func TestRecordAndReplay(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: sim.Time(i), Kind: KindTxStart, Node: i})
	}
	if r.Len() != 5 || r.Dropped() != 0 {
		t.Fatalf("Len=%d Dropped=%d, want 5/0", r.Len(), r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Node != i {
			t.Fatalf("order broken: %v", evs)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: sim.Time(i), Node: i})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 7 {
		t.Errorf("Dropped = %d, want 7", r.Dropped())
	}
	evs := r.Events()
	if evs[0].Node != 7 || evs[2].Node != 9 {
		t.Errorf("tail not kept: %v", evs)
	}
}

func TestRingOrderProperty(t *testing.T) {
	f := func(capRaw uint8, n uint8) bool {
		capacity := int(capRaw%16) + 1
		r := NewRecorder(capacity)
		for i := 0; i < int(n); i++ {
			r.Record(Event{At: sim.Time(i)})
		}
		evs := r.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].At <= evs[i-1].At {
				return false
			}
		}
		want := int(n)
		if want > capacity {
			want = capacity
		}
		return len(evs) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFilters(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{Kind: KindTxStart, Node: 1})
	r.Record(Event{Kind: KindRxOK, Node: 2})
	r.Record(Event{Kind: KindTxStart, Node: 2})
	r.Record(Event{Kind: KindDrop, Node: 1})

	if got := len(r.ByNode(1)); got != 2 {
		t.Errorf("ByNode(1) = %d, want 2", got)
	}
	if got := len(r.ByKind(KindTxStart)); got != 2 {
		t.Errorf("ByKind(tx-start) = %d, want 2", got)
	}
	counts := r.Counts()
	if counts[KindTxStart] != 2 || counts[KindRxOK] != 1 || counts[KindDrop] != 1 {
		t.Errorf("Counts = %v", counts)
	}
}

func TestDisable(t *testing.T) {
	r := NewRecorder(4)
	r.SetEnabled(false)
	r.Record(Event{})
	if r.Len() != 0 {
		t.Error("disabled recorder retained an event")
	}
	r.SetEnabled(true)
	r.Record(Event{})
	if r.Len() != 1 {
		t.Error("re-enabled recorder did not record")
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(4)
	r.Record(Event{At: 1500 * sim.Microsecond, Kind: KindRxOK, Node: 3, Seq: 7, Value: -54.25, Note: "x"})
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "time_us,kind,node,seq,value,note\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "1500.000,rx-ok,3,7,-54.250,x") {
		t.Errorf("bad row: %q", out)
	}
}

func TestZeroCapacityClamped(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Node: 1})
	r.Record(Event{Node: 2})
	if r.Len() != 1 || r.Events()[0].Node != 2 {
		t.Errorf("clamped recorder misbehaved: %v", r.Events())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindTxStart: "tx-start", KindTxEnd: "tx-end", KindRxOK: "rx-ok",
		KindRxCorrupt: "rx-corrupt", KindDrop: "drop", KindCCABusy: "cca-busy",
		KindCCAClear: "cca-clear", KindThreshold: "threshold", KindPhase: "phase",
		Kind(42): "kind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind.String() = %q, want %q", got, want)
		}
	}
}
