// Package trace records structured simulation events — transmissions,
// receptions, drops, CCA decisions and threshold changes — into a bounded
// buffer that can be filtered and exported as CSV. It exists for the same
// reason printf-debugging a real mote network is hopeless: MAC-level
// misbehaviour is only visible in the interleaving of events across nodes.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"nonortho/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	KindTxStart Kind = iota + 1
	KindTxEnd
	KindRxOK
	KindRxCorrupt
	KindDrop
	KindCCABusy
	KindCCAClear
	KindThreshold
	KindPhase
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTxStart:
		return "tx-start"
	case KindTxEnd:
		return "tx-end"
	case KindRxOK:
		return "rx-ok"
	case KindRxCorrupt:
		return "rx-corrupt"
	case KindDrop:
		return "drop"
	case KindCCABusy:
		return "cca-busy"
	case KindCCAClear:
		return "cca-clear"
	case KindThreshold:
		return "threshold"
	case KindPhase:
		return "phase"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	// At is the simulation instant.
	At sim.Time
	// Kind classifies the event.
	Kind Kind
	// Node is the short address (or node label) the event belongs to.
	Node int
	// Seq is the frame sequence number where applicable.
	Seq int
	// Value carries the kind-specific quantity: RSSI or sensed power in
	// dBm, a threshold in dBm, a bit-error count, or a phase index.
	Value float64
	// Note is an optional free-form annotation.
	Note string
}

// Recorder is a bounded in-memory event log. The zero value is unusable;
// use NewRecorder. Recording is O(1); when the buffer is full the oldest
// events are discarded (ring semantics) so long runs keep the recent tail.
type Recorder struct {
	buf      []Event
	start    int
	size     int
	dropped  int
	disabled bool
}

// NewRecorder returns a recorder holding at most capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// SetEnabled toggles recording; a disabled recorder drops every event.
func (r *Recorder) SetEnabled(on bool) { r.disabled = !on }

// Record appends an event, evicting the oldest when full.
func (r *Recorder) Record(e Event) {
	if r.disabled {
		return
	}
	if r.size < len(r.buf) {
		r.buf[(r.start+r.size)%len(r.buf)] = e
		r.size++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
	r.dropped++
}

// Len reports the number of retained events.
func (r *Recorder) Len() int { return r.size }

// Dropped reports how many events were evicted by the ring.
func (r *Recorder) Dropped() int { return r.dropped }

// Events returns the retained events in chronological order. The slice is
// a copy; mutating it does not affect the recorder.
func (r *Recorder) Events() []Event {
	out := make([]Event, r.size)
	for i := 0; i < r.size; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Filter returns the retained events matching the predicate, in order.
func (r *Recorder) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByNode returns the retained events of one node.
func (r *Recorder) ByNode(node int) []Event {
	return r.Filter(func(e Event) bool { return e.Node == node })
}

// ByKind returns the retained events of one kind.
func (r *Recorder) ByKind(kind Kind) []Event {
	return r.Filter(func(e Event) bool { return e.Kind == kind })
}

// Counts tallies retained events per kind.
func (r *Recorder) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}

// WriteCSV exports the retained events with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_us", "kind", "node", "seq", "value", "note"}); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for _, e := range r.Events() {
		rec := []string{
			strconv.FormatFloat(float64(e.At)/1e3, 'f', 3, 64),
			e.Kind.String(),
			strconv.Itoa(e.Node),
			strconv.Itoa(e.Seq),
			strconv.FormatFloat(e.Value, 'f', 3, 64),
			e.Note,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write event: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
