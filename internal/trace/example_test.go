package trace_test

import (
	"fmt"
	"strings"

	"nonortho/internal/sim"
	"nonortho/internal/trace"
)

// Example records a few events and exports them as CSV.
func Example() {
	r := trace.NewRecorder(128)
	r.Record(trace.Event{At: 1 * sim.Millisecond, Kind: trace.KindTxEnd, Node: 1, Seq: 0})
	r.Record(trace.Event{At: 2 * sim.Millisecond, Kind: trace.KindRxOK, Node: 2, Seq: 0, Value: -48.5})
	r.Record(trace.Event{At: 3 * sim.Millisecond, Kind: trace.KindThreshold, Node: 1, Value: -63})

	fmt.Println("events:", r.Len(), "rx-ok:", len(r.ByKind(trace.KindRxOK)))
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(b.String())
	// Output:
	// events: 3 rx-ok: 1
	// time_us,kind,node,seq,value,note
	// 1000.000,tx-end,1,0,0.000,
	// 2000.000,rx-ok,2,0,-48.500,
	// 3000.000,threshold,1,0,-63.000,
}
