package recovery

import "testing"

func TestAdaptiveEmptyWindowIsDemandNone(t *testing.T) {
	for _, w := range []int{1, 2, 100} {
		a := NewAdaptive(AdaptiveConfig{Window: w})
		if got := a.Demand(); got != DemandNone {
			t.Errorf("window=%d: empty-window demand = %v, want none", w, got)
		}
		if a.Recovered() != 0 {
			t.Errorf("window=%d: recovered on an empty window", w)
		}
	}
}

func TestAdaptiveAllRepairableFailuresActivate(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Window: 10})
	for i := 0; i < 10; i++ {
		a.Observe(failed(5, 100))
	}
	if got := a.Demand(); got != DemandActive {
		t.Fatalf("demand = %v on an all-repairable-failure window, want active", got)
	}
}

func TestAdaptiveAllHopelessFailuresStayHopeless(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Window: 10})
	for i := 0; i < 10; i++ {
		if a.Observe(failed(80, 100)) {
			t.Fatal("beyond-budget packet delivered")
		}
	}
	if got := a.Demand(); got != DemandHopeless {
		t.Fatalf("demand = %v on an all-unrepairable window, want hopeless", got)
	}
	if a.Recovered() != 0 {
		t.Fatal("recovered counted on a hopeless link")
	}
}

func TestAdaptiveWindowOfOneFlipsPerPacket(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Window: 1})
	// One repairable failure fills the whole window: rate 100 %, all
	// repairable → active.
	a.Observe(failed(5, 100))
	if got := a.Demand(); got != DemandActive {
		t.Fatalf("demand = %v after a repairable failure, want active", got)
	}
	// With the demand now active, the next repairable failure is
	// delivered through recovery.
	if !a.Observe(failed(5, 100)) {
		t.Fatal("active window-1 detector did not recover a repairable packet")
	}
	// A clean packet displaces the failure: demand subsides immediately.
	a.Observe(clean())
	if got := a.Demand(); got != DemandNone {
		t.Fatalf("demand = %v after a clean packet, want none", got)
	}
	// A beyond-budget failure flips it to hopeless.
	a.Observe(failed(80, 100))
	if got := a.Demand(); got != DemandHopeless {
		t.Fatalf("demand = %v after an unrepairable failure, want hopeless", got)
	}
}
