package recovery

import (
	"math"
	"testing"

	"nonortho/internal/radio"
)

func failed(errBits, total int) radio.Reception {
	return radio.Reception{BitErrors: errBits, TotalBits: total, CRCOK: false}
}

func TestCleanPacketsNeedNoRecovery(t *testing.T) {
	s := New(0)
	ok := s.Observe(radio.Reception{CRCOK: true, TotalBits: 100})
	if !ok {
		t.Error("clean packet reported unrecoverable")
	}
	if s.FailedCount() != 0 {
		t.Error("clean packet counted as failed")
	}
}

func TestBudgetBoundary(t *testing.T) {
	s := New(0.10)
	if !s.Observe(failed(10, 100)) { // exactly 10 %
		t.Error("10% error packet not recoverable with 0.10 budget")
	}
	if s.Observe(failed(11, 100)) {
		t.Error("11% error packet recoverable with 0.10 budget")
	}
	if s.Recovered() != 1 || s.Lost() != 1 || s.FailedCount() != 2 {
		t.Errorf("counters = %d/%d/%d, want 1/1/2", s.Recovered(), s.Lost(), s.FailedCount())
	}
}

func TestDefaultBudget(t *testing.T) {
	s := New(-1)
	if s.Budget != DefaultBudget {
		t.Errorf("Budget = %v, want %v", s.Budget, DefaultBudget)
	}
}

func TestRecoverableDoesNotMutate(t *testing.T) {
	s := New(0.10)
	if !s.Recoverable(failed(5, 100)) {
		t.Error("5% packet not recoverable")
	}
	if s.Recoverable(failed(50, 100)) {
		t.Error("50% packet recoverable")
	}
	if !s.Recoverable(radio.Reception{CRCOK: true}) {
		t.Error("clean packet not recoverable")
	}
	if s.FailedCount() != 0 {
		t.Error("Recoverable mutated counters")
	}
}

func TestErrorFractionCDFMatchesObservations(t *testing.T) {
	s := New(0.10)
	// 87 of 100 packets have <= 10% errors, mirroring the paper's point.
	for i := 0; i < 87; i++ {
		s.Observe(failed(5, 100))
	}
	for i := 0; i < 13; i++ {
		s.Observe(failed(60, 100))
	}
	if got := s.FractionWithin(0.10); math.Abs(got-0.87) > 1e-12 {
		t.Errorf("FractionWithin(0.1) = %v, want 0.87", got)
	}
	pts := s.ErrorFractionCDF(11)
	if len(pts) != 11 {
		t.Fatalf("CDF points = %d, want 11", len(pts))
	}
	if pts[len(pts)-1].F != 1 {
		t.Errorf("CDF tail = %v, want 1", pts[len(pts)-1].F)
	}
}

func clean() radio.Reception { return radio.Reception{CRCOK: true, TotalBits: 100} }

func TestAdaptiveStartsInactive(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{})
	if a.Demand() != DemandNone {
		t.Errorf("fresh demand = %v, want none", a.Demand())
	}
	// A repairable failure on an otherwise healthy link is NOT delivered:
	// recovery is off below the failure-rate trigger.
	for i := 0; i < 99; i++ {
		a.Observe(clean())
	}
	if a.Observe(failed(5, 100)) {
		t.Error("recovery fired below the demand threshold")
	}
	if a.Recovered() != 0 {
		t.Error("recovered counted while inactive")
	}
}

func TestAdaptiveActivatesUnderRepairableLoss(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Window: 50})
	// 20% failures, all within budget → demand becomes active.
	for i := 0; i < 50; i++ {
		if i%5 == 0 {
			a.Observe(failed(5, 100))
		} else {
			a.Observe(clean())
		}
	}
	if a.Demand() != DemandActive {
		t.Fatalf("demand = %v, want active", a.Demand())
	}
	// Demand activates partway through the warm-up, so some repairable
	// failures were already recovered; assert the delta for one more.
	base := a.Recovered()
	if base == 0 {
		t.Error("no recoveries during the lossy warm-up")
	}
	if !a.Observe(failed(5, 100)) {
		t.Error("active recovery did not deliver a repairable packet")
	}
	if a.Recovered() != base+1 {
		t.Errorf("Recovered = %d, want %d", a.Recovered(), base+1)
	}
	// Beyond-budget packets stay lost even while active.
	if a.Observe(failed(60, 100)) {
		t.Error("active recovery delivered an unrepairable packet")
	}
}

func TestAdaptiveHopelessLink(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Window: 40})
	// Heavy loss dominated by beyond-budget corruption (co-channel
	// collisions): recovery cannot help.
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			a.Observe(failed(60, 100))
		} else {
			a.Observe(clean())
		}
	}
	if a.Demand() != DemandHopeless {
		t.Fatalf("demand = %v, want hopeless", a.Demand())
	}
	if a.Observe(failed(5, 100)) {
		t.Error("hopeless link still recovered a packet")
	}
}

func TestAdaptiveRecoversDemandAfterLinkHeals(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{Window: 20})
	for i := 0; i < 20; i++ {
		a.Observe(failed(5, 100))
	}
	if a.Demand() != DemandActive {
		t.Fatalf("demand = %v, want active", a.Demand())
	}
	// The window refills with clean receptions: demand subsides.
	for i := 0; i < 20; i++ {
		a.Observe(clean())
	}
	if a.Demand() != DemandNone {
		t.Errorf("demand after healing = %v, want none", a.Demand())
	}
}

func TestDemandString(t *testing.T) {
	for d, want := range map[Demand]string{
		DemandNone: "none", DemandActive: "active",
		DemandHopeless: "hopeless", Demand(9): "demand(?)",
	} {
		if got := d.String(); got != want {
			t.Errorf("Demand.String() = %q, want %q", got, want)
		}
	}
}
