package recovery_test

import (
	"fmt"

	"nonortho/internal/radio"
	"nonortho/internal/recovery"
)

// Example classifies receptions against the 10 % correction budget.
func Example() {
	s := recovery.New(0) // default 10 % budget
	lightlyCorrupted := radio.Reception{BitErrors: 40, TotalBits: 648}
	heavilyCorrupted := radio.Reception{BitErrors: 300, TotalBits: 648}

	fmt.Println("light recoverable:", s.Observe(lightlyCorrupted))
	fmt.Println("heavy recoverable:", s.Observe(heavilyCorrupted))
	fmt.Printf("within 10%% errors: %.0f%%\n", 100*s.FractionWithin(0.10))
	// Output:
	// light recoverable: true
	// heavy recoverable: false
	// within 10% errors: 50%
}

// ExampleAdaptive shows the online recovery-demand detector of the paper's
// future-work discussion.
func ExampleAdaptive() {
	a := recovery.NewAdaptive(recovery.AdaptiveConfig{Window: 20})
	// A lossy-but-repairable link: demand becomes active.
	for i := 0; i < 20; i++ {
		a.Observe(radio.Reception{BitErrors: 30, TotalBits: 648})
	}
	fmt.Println("demand:", a.Demand())
	// Healthy again: demand subsides.
	for i := 0; i < 20; i++ {
		a.Observe(radio.Reception{CRCOK: true, TotalBits: 648})
	}
	fmt.Println("demand:", a.Demand())
	// Output:
	// demand: active
	// demand: none
}
