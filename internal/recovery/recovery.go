// Package recovery models partial packet recovery (PPR-style) for the
// discussion in Section VII-A of the paper: most packets that fail the CRC
// under inter-channel interference carry only a small fraction of error
// bits (87 % of CRC-failed packets have <= 10 % error bits in the paper's
// measurement), so a recovery scheme with a bounded correction budget can
// rescue them.
package recovery

import (
	"nonortho/internal/radio"
	"nonortho/internal/stats"
)

// DefaultBudget is the correction budget matching the paper's (0.1, 0.87)
// observation: packets with at most 10 % error bits are recoverable.
const DefaultBudget = 0.10

// Scheme classifies CRC-failed receptions as recoverable or lost and
// accumulates the error-bit distribution the paper plots in Fig. 29.
type Scheme struct {
	// Budget is the maximum error-bit fraction the scheme can correct.
	Budget float64

	// dist collects the error fraction of every CRC-failed reception.
	dist stats.Distribution

	recovered int
	lost      int
}

// New returns a scheme with the given correction budget; budget <= 0 takes
// DefaultBudget.
func New(budget float64) *Scheme {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Scheme{Budget: budget}
}

// Recoverable reports whether a reception could be repaired: CRC-clean
// packets need no repair (true), CRC-failed packets are repairable when
// their error fraction is within budget.
func (s *Scheme) Recoverable(r radio.Reception) bool {
	if r.CRCOK {
		return true
	}
	return r.ErrorFraction() <= s.Budget
}

// Observe feeds a reception into the scheme's bookkeeping and returns
// whether it was (or needed no) recovery.
func (s *Scheme) Observe(r radio.Reception) bool {
	if r.CRCOK {
		return true
	}
	s.dist.Observe(r.ErrorFraction())
	if r.ErrorFraction() <= s.Budget {
		s.recovered++
		return true
	}
	s.lost++
	return false
}

// Recovered reports how many CRC-failed receptions were within budget.
func (s *Scheme) Recovered() int { return s.recovered }

// Lost reports how many CRC-failed receptions exceeded the budget.
func (s *Scheme) Lost() int { return s.lost }

// FailedCount reports the total CRC-failed receptions observed.
func (s *Scheme) FailedCount() int { return s.recovered + s.lost }

// ErrorFractionCDF returns the empirical CDF of error-bit fractions among
// CRC-failed packets (Fig. 29), sampled at n points.
func (s *Scheme) ErrorFractionCDF(n int) []stats.CDFPoint { return s.dist.CDF(n) }

// FractionWithin returns the fraction of CRC-failed packets whose error
// fraction is at most x — the paper reports (0.1, 0.87).
func (s *Scheme) FractionWithin(x float64) float64 { return s.dist.FractionAtOrBelow(x) }

// Demand describes whether a link currently needs recovery — the paper's
// Section VII-A closes by proposing "an online dynamic recovery scheme
// which could identify the recover-demand for different links". Adaptive
// implements that: it watches each link's CRC-failure rate over a sliding
// window of receptions and switches recovery on only where it pays.
type Demand int

// Demand levels.
const (
	// DemandNone: the link is healthy; recovery overhead is not worth it.
	DemandNone Demand = iota + 1
	// DemandActive: the link suffers CRC failures that are mostly within
	// the correction budget — recovery pays.
	DemandActive
	// DemandHopeless: the link fails mostly beyond the budget; recovery
	// cannot help (co-channel-collision-dominated loss).
	DemandHopeless
)

// String implements fmt.Stringer.
func (d Demand) String() string {
	switch d {
	case DemandNone:
		return "none"
	case DemandActive:
		return "active"
	case DemandHopeless:
		return "hopeless"
	default:
		return "demand(?)"
	}
}

// AdaptiveConfig tunes the online detector.
type AdaptiveConfig struct {
	// Budget is the correction budget (default DefaultBudget).
	Budget float64
	// Window is how many recent receptions are considered (default 100).
	Window int
	// MinFailRate activates recovery when the windowed CRC-failure rate
	// exceeds it (default 0.05).
	MinFailRate float64
	// MinRepairable keeps recovery active only while at least this
	// fraction of failures is within budget (default 0.5).
	MinRepairable float64
}

func (c AdaptiveConfig) withDefaults() AdaptiveConfig {
	if c.Budget <= 0 {
		c.Budget = DefaultBudget
	}
	if c.Window <= 0 {
		c.Window = 100
	}
	if c.MinFailRate <= 0 {
		c.MinFailRate = 0.05
	}
	if c.MinRepairable <= 0 {
		c.MinRepairable = 0.5
	}
	return c
}

// Adaptive decides per-link recovery demand online.
type Adaptive struct {
	cfg AdaptiveConfig

	// ring of recent receptions: 0 = clean, 1 = repairable, 2 = beyond
	// budget.
	ring  []uint8
	next  int
	count int

	recoveredWhileActive int
}

// NewAdaptive returns a detector with the given configuration.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	cfg = cfg.withDefaults()
	return &Adaptive{cfg: cfg, ring: make([]uint8, cfg.Window)}
}

// Observe feeds one reception and reports whether it was delivered,
// counting recovery only while the demand is active.
func (a *Adaptive) Observe(r radio.Reception) bool {
	active := a.Demand() == DemandActive
	var class uint8
	switch {
	case r.CRCOK:
		class = 0
	case r.ErrorFraction() <= a.cfg.Budget:
		class = 1
	default:
		class = 2
	}
	a.ring[a.next] = class
	a.next = (a.next + 1) % len(a.ring)
	if a.count < len(a.ring) {
		a.count++
	}
	if r.CRCOK {
		return true
	}
	if active && class == 1 {
		a.recoveredWhileActive++
		return true
	}
	return false
}

// Demand classifies the link from the current window.
func (a *Adaptive) Demand() Demand {
	if a.count == 0 {
		return DemandNone
	}
	var failed, repairable int
	n := a.count
	for i := 0; i < n; i++ {
		switch a.ring[i] {
		case 1:
			failed++
			repairable++
		case 2:
			failed++
		}
	}
	failRate := float64(failed) / float64(n)
	if failRate < a.cfg.MinFailRate {
		return DemandNone
	}
	if float64(repairable) < a.cfg.MinRepairable*float64(failed) {
		return DemandHopeless
	}
	return DemandActive
}

// Recovered reports packets delivered through active recovery.
func (a *Adaptive) Recovered() int { return a.recoveredWhileActive }
