package parallel

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrdersResultsByCell(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got := Run(workers, 50, func(i int) int { return i * i })
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunZeroCells(t *testing.T) {
	if got := Run(4, 0, func(int) int { t.Fatal("fn called"); return 0 }); got != nil {
		t.Fatalf("Run with n=0 = %v, want nil", got)
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	got := Run(0, 8, func(i int) int { return i })
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	Run(workers, 64, func(i int) struct{} {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			_ = j // a little work so goroutines overlap
		}
		inFlight.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

// Cells genuinely overlap in time: eight cells each sleeping 30 ms must
// finish well under the 240 ms a serial schedule would need. Sleeps
// overlap regardless of GOMAXPROCS, so this holds even on one CPU.
func TestRunOverlapsCells(t *testing.T) {
	start := time.Now()
	Run(8, 8, func(i int) int {
		time.Sleep(30 * time.Millisecond)
		return i
	})
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("8 cells x 30ms took %v with 8 workers; want concurrent (< 150ms)", elapsed)
	}
}

// TestRunRandomizedWorkloads drives Run with irregular, randomly sized
// per-cell workloads. The generator is seeded with a fixed constant —
// never the wall clock — so every run exercises the identical schedule
// and a failure here is reproducible by rerunning the test. (dcnlint's
// detsource analyzer enforces the same rule in the sim packages; tests
// are exempt, but the fixed seed is the convention regardless.)
func TestRunRandomizedWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 20; trial++ {
		workers := 1 + rng.Intn(12)
		n := rng.Intn(200)
		spin := make([]int, n)
		for i := range spin {
			spin[i] = rng.Intn(2000)
		}
		got := Run(workers, n, func(i int) int {
			acc := i
			for j := 0; j < spin[i]; j++ {
				acc += j & 1 // uneven busy-work so cells finish out of order
			}
			return acc - spin[i]/2
		})
		if n == 0 {
			if got != nil {
				t.Fatalf("trial %d: n=0 returned %v", trial, got)
			}
			continue
		}
		for i, v := range got {
			if want := i; v != want {
				t.Fatalf("trial %d (workers=%d n=%d): got[%d] = %d, want %d",
					trial, workers, n, i, v, want)
			}
		}
	}
}

func TestRunPanicCarriesCellIndex(t *testing.T) {
	for _, workers := range []int{2, 8} {
		var ran atomic.Int64
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: no panic propagated", workers)
				}
				p, ok := r.(*CellPanic)
				if !ok {
					t.Fatalf("workers=%d: panic value %T, want *CellPanic", workers, r)
				}
				if p.Cell != 7 {
					t.Fatalf("workers=%d: panic attributed to cell %d, want 7", workers, p.Cell)
				}
				if !strings.Contains(p.Error(), "cell 7 panicked: boom") {
					t.Fatalf("workers=%d: Error() = %q", workers, p.Error())
				}
			}()
			Run(workers, 16, func(i int) int {
				ran.Add(1)
				if i == 7 {
					panic("boom")
				}
				return i
			})
		}()
		// Independent cells keep running after one panics.
		if ran.Load() != 16 {
			t.Fatalf("workers=%d: ran %d cells, want all 16", workers, ran.Load())
		}
	}
}

func TestRunPanicReportsLowestCell(t *testing.T) {
	defer func() {
		p, ok := recover().(*CellPanic)
		if !ok {
			t.Fatal("no *CellPanic propagated")
		}
		if p.Cell != 3 {
			t.Fatalf("panic attributed to cell %d, want lowest failing cell 3", p.Cell)
		}
	}()
	Run(4, 32, func(i int) int {
		if i >= 3 {
			panic(i)
		}
		return i
	})
}
