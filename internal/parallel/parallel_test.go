package parallel

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrdersResultsByCell(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		got := Run(workers, 50, func(i int) int { return i * i })
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d, want 50", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunZeroCells(t *testing.T) {
	if got := Run(4, 0, func(int) int { t.Fatal("fn called"); return 0 }); got != nil {
		t.Fatalf("Run with n=0 = %v, want nil", got)
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	got := Run(0, 8, func(i int) int { return i })
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	Run(workers, 64, func(i int) struct{} {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			_ = j // a little work so goroutines overlap
		}
		inFlight.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

// Cells genuinely overlap in time: eight cells each sleeping 30 ms must
// finish well under the 240 ms a serial schedule would need. Sleeps
// overlap regardless of GOMAXPROCS, so this holds even on one CPU.
func TestRunOverlapsCells(t *testing.T) {
	start := time.Now()
	Run(8, 8, func(i int) int {
		time.Sleep(30 * time.Millisecond)
		return i
	})
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("8 cells x 30ms took %v with 8 workers; want concurrent (< 150ms)", elapsed)
	}
}

// TestRunSpeedupMultiCore asserts the engine turns extra cores into
// wall-clock speedup on CPU-bound cells: four workers must finish the
// same busy-work sweep in well under the one-worker time. Sleep-based
// overlap (TestRunOverlapsCells) passes even on one CPU, so this is the
// only test that checks cells actually execute in parallel. It is gated
// on runtime.NumCPU() >= 4 — on smaller hosts a speedup assertion can
// only flake — rather than skipped unconditionally, so multi-core CI
// runs it for real.
func TestRunSpeedupMultiCore(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("NumCPU() = %d; speedup assertion needs >= 4 cores", runtime.NumCPU())
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS = %d caps scheduling below 4; speedup assertion needs >= 4", runtime.GOMAXPROCS(0))
	}
	// CPU-bound cell: enough iterations to dwarf scheduling overhead,
	// with a data dependence so the loop cannot be optimised away.
	cell := func(i int) uint64 {
		acc := uint64(i) + 1
		for j := 0; j < 4_000_000; j++ {
			acc ^= acc<<13 ^ acc>>7
		}
		return acc
	}
	const cells = 16
	sweep := func(workers int) time.Duration {
		start := time.Now()
		Run(workers, cells, cell)
		return time.Since(start)
	}
	sweep(4) // warm up the pool and spread the cells across cores once
	// Best-of-three per worker count so a single descheduling hiccup
	// cannot fail the assertion.
	best := func(workers int) time.Duration {
		d := sweep(workers)
		for trial := 0; trial < 2; trial++ {
			if e := sweep(workers); e < d {
				d = e
			}
		}
		return d
	}
	serial, parallel := best(1), best(4)
	// Perfect scaling would be 4x; demand a conservative 1.8x so shared
	// caches, turbo scaling and co-tenants don't make the gate flaky.
	if parallel > serial*10/18 {
		t.Fatalf("no multi-core speedup: %d cells took %v serial vs %v with 4 workers (want < %v)",
			cells, serial, parallel, serial*10/18)
	}
}

// TestRunRandomizedWorkloads drives Run with irregular, randomly sized
// per-cell workloads. The generator is seeded with a fixed constant —
// never the wall clock — so every run exercises the identical schedule
// and a failure here is reproducible by rerunning the test. (dcnlint's
// detsource analyzer enforces the same rule in the sim packages; tests
// are exempt, but the fixed seed is the convention regardless.)
func TestRunRandomizedWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for trial := 0; trial < 20; trial++ {
		workers := 1 + rng.Intn(12)
		n := rng.Intn(200)
		spin := make([]int, n)
		for i := range spin {
			spin[i] = rng.Intn(2000)
		}
		got := Run(workers, n, func(i int) int {
			acc := i
			for j := 0; j < spin[i]; j++ {
				acc += j & 1 // uneven busy-work so cells finish out of order
			}
			return acc - spin[i]/2
		})
		if n == 0 {
			if got != nil {
				t.Fatalf("trial %d: n=0 returned %v", trial, got)
			}
			continue
		}
		for i, v := range got {
			if want := i; v != want {
				t.Fatalf("trial %d (workers=%d n=%d): got[%d] = %d, want %d",
					trial, workers, n, i, v, want)
			}
		}
	}
}

func TestRunPanicCarriesCellIndex(t *testing.T) {
	for _, workers := range []int{2, 8} {
		var ran atomic.Int64
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: no panic propagated", workers)
				}
				se, ok := r.(*SweepError)
				if !ok {
					t.Fatalf("workers=%d: panic value %T, want *SweepError", workers, r)
				}
				if len(se.Failures) != 1 || se.Failures[0].Cell != 7 {
					t.Fatalf("workers=%d: failures %v, want exactly cell 7", workers, se.Failures)
				}
				if !strings.Contains(se.Failures[0].Error(), "cell 7 panicked") ||
					!strings.Contains(se.Error(), "cell 7") {
					t.Fatalf("workers=%d: Error() = %q", workers, se.Error())
				}
			}()
			Run(workers, 16, func(i int) int {
				ran.Add(1)
				if i == 7 {
					panic("boom")
				}
				return i
			})
		}()
		// Independent cells keep running after one panics.
		if ran.Load() != 16 {
			t.Fatalf("workers=%d: ran %d cells, want all 16", workers, ran.Load())
		}
	}
}

// Every failed cell is collected — not just the first — in ascending
// cell order, and the surviving cells' results are intact.
func TestSweepCollectsAllFailures(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, se := RunSweep(RunOptions{Workers: workers}, 32, func(i int) int {
			if i%7 == 3 {
				panic(i)
			}
			return i * 2
		})
		if se == nil {
			t.Fatalf("workers=%d: no SweepError", workers)
		}
		want := []int{3, 10, 17, 24, 31}
		if len(se.Failures) != len(want) {
			t.Fatalf("workers=%d: %d failures, want %d: %v", workers, len(se.Failures), len(want), se)
		}
		for k, f := range se.Failures {
			if f.Cell != want[k] {
				t.Fatalf("workers=%d: failure %d attributed to cell %d, want %d (ascending)", workers, k, f.Cell, want[k])
			}
			if f.Class != ClassUnclassified {
				t.Fatalf("workers=%d: class %v without retry, want unclassified", workers, f.Class)
			}
		}
		if len(se.Fatal()) != len(want) {
			t.Fatalf("workers=%d: Fatal() = %d entries, want %d", workers, len(se.Fatal()), len(want))
		}
		for i, v := range out {
			if i%7 == 3 {
				if v != 0 {
					t.Fatalf("workers=%d: failed cell %d holds %d, want zero value", workers, i, v)
				}
				continue
			}
			if v != i*2 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*2)
			}
		}
	}
}

// A cell that fails identically on the retry is a deterministic bug:
// both panic values are captured and the failure stays fatal.
func TestSweepRetryClassifiesDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var logged atomic.Int64
		attempts := make([]atomic.Int64, 8)
		_, se := RunSweep(RunOptions{
			Workers: workers,
			Retry:   true,
			Logf:    func(string, ...any) { logged.Add(1) },
		}, 8, func(i int) int {
			attempts[i].Add(1)
			if i == 5 {
				panic("always broken")
			}
			return i
		})
		if se == nil || len(se.Failures) != 1 {
			t.Fatalf("workers=%d: sweep error %v, want one failure", workers, se)
		}
		f := se.Failures[0]
		if f.Cell != 5 || f.Class != ClassDeterministic {
			t.Fatalf("workers=%d: failure %+v, want cell 5 deterministic", workers, f)
		}
		if f.RetryValue != "always broken" || len(f.RetryStack) == 0 {
			t.Fatalf("workers=%d: retry evidence missing: %+v", workers, f)
		}
		if got := attempts[5].Load(); got != 2 {
			t.Fatalf("workers=%d: failing cell ran %d times, want exactly 2 (one retry)", workers, got)
		}
		if got := attempts[0].Load(); got != 1 {
			t.Fatalf("workers=%d: healthy cell ran %d times, want 1", workers, got)
		}
		if logged.Load() != 0 {
			t.Fatalf("workers=%d: deterministic failure logged as environmental", workers)
		}
		if len(se.Fatal()) != 1 {
			t.Fatalf("workers=%d: deterministic failure must stay fatal", workers)
		}
	}
}

// A cell that passes on retry is environmental: its retry result is
// used, the event is loudly logged, and the sweep is not fatal.
func TestSweepRetryClassifiesEnvironmental(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var logLines []string
		var logMu sync.Mutex
		attempts := make([]atomic.Int64, 8)
		out, se := RunSweep(RunOptions{
			Workers: workers,
			Retry:   true,
			Logf: func(format string, args ...any) {
				logMu.Lock()
				logLines = append(logLines, fmt.Sprintf(format, args...))
				logMu.Unlock()
			},
		}, 8, func(i int) int {
			if attempts[i].Add(1) == 1 && i == 2 {
				panic("cosmic ray")
			}
			return i * 10
		})
		if se == nil || len(se.Failures) != 1 {
			t.Fatalf("workers=%d: sweep error %v, want one (recovered) failure", workers, se)
		}
		f := se.Failures[0]
		if f.Cell != 2 || f.Class != ClassEnvironmental {
			t.Fatalf("workers=%d: failure %+v, want cell 2 environmental", workers, f)
		}
		if len(se.Fatal()) != 0 {
			t.Fatalf("workers=%d: environmental recovery must not be fatal: %v", workers, se.Fatal())
		}
		if out[2] != 20 {
			t.Fatalf("workers=%d: out[2] = %d, want retry result 20", workers, out[2])
		}
		logMu.Lock()
		defer logMu.Unlock()
		if len(logLines) != 1 || !strings.Contains(logLines[0], "cell 2 passed on retry") {
			t.Fatalf("workers=%d: environmental recovery not loudly logged: %q", workers, logLines)
		}
	}
}

// Cancellation stops the sweep at a cell boundary: no new cell starts
// once Canceled reports true, in-flight cells finish, and the
// SweepError says how far the sweep got.
func TestSweepCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var started atomic.Int64
		const stopAfter = 5
		out, se := RunSweep(RunOptions{
			Workers:  workers,
			Canceled: func() bool { return started.Load() >= stopAfter },
		}, 64, func(i int) int {
			started.Add(1)
			return i + 1
		})
		if se == nil || !se.Canceled {
			t.Fatalf("workers=%d: sweep error %v, want canceled", workers, se)
		}
		if se.Ran >= 64 || se.Ran < stopAfter {
			t.Fatalf("workers=%d: Ran = %d, want in [%d, 64)", workers, se.Ran, stopAfter)
		}
		if len(se.Failures) != 0 {
			t.Fatalf("workers=%d: cancellation reported failures: %v", workers, se.Failures)
		}
		if !strings.Contains(se.Error(), "canceled") {
			t.Fatalf("workers=%d: Error() = %q", workers, se.Error())
		}
		// Completed cells keep their results; skipped ones stay zero.
		completed := 0
		for _, v := range out {
			if v != 0 {
				completed++
			}
		}
		if completed == 0 || completed >= 64 {
			t.Fatalf("workers=%d: %d completed cells, want partial", workers, completed)
		}
	}
}

// countingWatcher tallies start/finish notifications.
type countingWatcher struct{ started, finished atomic.Int64 }

func (w *countingWatcher) CellStarted(int)  { w.started.Add(1) }
func (w *countingWatcher) CellFinished(int) { w.finished.Add(1) }

// The Watcher sees one Started/Finished pair per attempt — including
// the retry attempt of a failing cell, and including attempts that
// panic (Finished fires during unwinding, so a watchdog never considers
// a crashed cell still running).
func TestSweepWatcherSeesEveryAttempt(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var w countingWatcher
		_, se := RunSweep(RunOptions{Workers: workers, Retry: true, Watch: &w,
			Logf: func(string, ...any) {}}, 10, func(i int) int {
			if i == 4 {
				panic("broken")
			}
			return i
		})
		if se == nil {
			t.Fatalf("workers=%d: expected sweep error", workers)
		}
		// 10 cells + 1 retry of the failing cell.
		if w.started.Load() != 11 || w.finished.Load() != 11 {
			t.Fatalf("workers=%d: watcher saw %d/%d started/finished, want 11/11",
				workers, w.started.Load(), w.finished.Load())
		}
	}
}
