// Package parallel fans independent experiment cells across a bounded
// worker pool. Each cell of an experiment grid (one seed, one
// configuration) builds its own simulation kernel, so cells share no
// state; the pool's only job is to evaluate them concurrently while
// keeping the results in cell order, so that every floating-point
// aggregation downstream runs in exactly the order a serial loop would
// use. Same seed, any worker count: bit-identical output.
//
// Beyond fan-out the engine is the sweep's fault boundary. A panicking
// cell never takes down its siblings: every failure is recovered,
// attributed to its cell index, and collected into one SweepError that
// lists them all. Callers opt into a deterministic retry (a failed cell
// is re-run once — two identical failures classify the cell as a
// deterministic bug, a pass-after-fail as environmental), cooperative
// cancellation at cell boundaries (for SIGINT-safe sweeps that flush
// completed work and resume later), and a Watcher seam that observes
// cell start/finish (the wall-clock watchdog in internal/watchdog hangs
// off it to flag stuck cells).
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes 0:
// GOMAXPROCS, i.e. one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// FailureClass records what the deterministic retry learned about a
// cell failure.
type FailureClass int

const (
	// ClassUnclassified means no retry was attempted: the failure is
	// reported as observed, nature unknown.
	ClassUnclassified FailureClass = iota
	// ClassDeterministic means the cell failed again when re-run from the
	// same seed: the failure reproduces, so it is a bug in the cell's
	// code or configuration, not in the machinery around it.
	ClassDeterministic
	// ClassEnvironmental means the cell passed when re-run: the first
	// failure did not reproduce from identical inputs, implicating the
	// environment (a leaked core, memory corruption, hardware) rather
	// than the cell. The retry's result is valid and used, but the event
	// is loudly logged — in a deterministic simulator a pass-after-fail
	// is never normal.
	ClassEnvironmental
)

// String implements fmt.Stringer.
func (c FailureClass) String() string {
	switch c {
	case ClassDeterministic:
		return "deterministic"
	case ClassEnvironmental:
		return "environmental"
	default:
		return "unclassified"
	}
}

// CellFailure wraps a panic raised inside a cell with the cell's index,
// so a crash in cell 37 of a 105-cell sweep says so, plus what the
// deterministic retry (when enabled) concluded about it.
type CellFailure struct {
	// Cell is the index of the cell whose evaluation panicked.
	Cell int
	// Value is the original panic value.
	Value any
	// Stack is the goroutine stack captured at recovery time.
	Stack []byte
	// Class is what the retry concluded; ClassUnclassified without one.
	Class FailureClass
	// RetryValue and RetryStack capture the second failure when the
	// retry also panicked (Class == ClassDeterministic).
	RetryValue any
	RetryStack []byte
}

func (f *CellFailure) Error() string {
	return fmt.Sprintf("parallel: cell %d panicked (%s): %v\n%s", f.Cell, f.Class, f.Value, f.Stack)
}

// Unwrap exposes the original panic value when it was an error.
func (f *CellFailure) Unwrap() error {
	if err, ok := f.Value.(error); ok {
		return err
	}
	return nil
}

// SweepError aggregates everything that went wrong in one sweep: every
// failed cell (not just the first), in ascending cell order, plus
// whether the sweep was cancelled before all cells ran. It is the
// single failure value RunSweep reports and Run panics with.
type SweepError struct {
	// Cells is the grid size the sweep was asked to evaluate.
	Cells int
	// Ran counts cells whose evaluation started (and, absent a failure,
	// finished); Cells-Ran were skipped by cancellation.
	Ran int
	// Canceled reports that the Canceled hook stopped the sweep at a
	// cell boundary before every cell had started.
	Canceled bool
	// Failures lists every failed cell in ascending cell order.
	// Environmental entries recovered on retry: their result slots hold
	// valid values and Fatal() excludes them.
	Failures []*CellFailure
}

// Fatal returns the failures whose result slots are invalid — every
// class except environmental (which recovered on retry).
func (e *SweepError) Fatal() []*CellFailure {
	var out []*CellFailure
	for _, f := range e.Failures {
		if f.Class != ClassEnvironmental {
			out = append(out, f)
		}
	}
	return out
}

func (e *SweepError) Error() string {
	switch {
	case e == nil:
		return "parallel: <nil> sweep error"
	case len(e.Failures) == 0 && e.Canceled:
		return fmt.Sprintf("parallel: sweep canceled after %d/%d cells", e.Ran, e.Cells)
	}
	msg := fmt.Sprintf("parallel: %d of %d cells failed", len(e.Fatal()), e.Cells)
	if e.Canceled {
		msg += fmt.Sprintf(" (canceled after %d)", e.Ran)
	}
	for _, f := range e.Failures {
		msg += fmt.Sprintf("\n  cell %d (%s): %v", f.Cell, f.Class, f.Value)
	}
	return msg
}

// Unwrap exposes the first fatal failure, so errors.As reaches a
// *CellFailure through a *SweepError.
func (e *SweepError) Unwrap() error {
	if fatal := e.Fatal(); len(fatal) > 0 {
		return fatal[0]
	}
	return nil
}

// Watcher observes cell lifecycle from the worker goroutines. Both
// methods may be called concurrently and must not block; the wall-clock
// watchdog (internal/watchdog) implements it to flag stuck cells. A
// retried cell reports a fresh Started/Finished pair per attempt.
type Watcher interface {
	CellStarted(cell int)
	CellFinished(cell int)
}

// RunOptions configures a sweep beyond plain fan-out. The zero value
// reproduces Run's behaviour: no retry, no cancellation, no watcher.
type RunOptions struct {
	// Workers bounds concurrent cells; <= 0 means DefaultWorkers(),
	// 1 runs inline on the calling goroutine with no pool at all.
	Workers int
	// Retry re-runs each failed cell once. The simulation is
	// deterministic, so the rerun doubles as an audit: fail-again is a
	// reproducible bug (ClassDeterministic), pass-after-fail is
	// environmental and its result is accepted but loudly logged.
	Retry bool
	// Canceled, when non-nil, is polled before each cell starts; once it
	// returns true no new cell begins (in-flight cells finish) and the
	// sweep reports a canceled SweepError. Must be safe for concurrent
	// calls.
	Canceled func() bool
	// Watch observes cell start/finish when non-nil.
	Watch Watcher
	// Logf receives loud diagnostics (environmental recoveries). Nil
	// logs to stderr: a pass-after-fail must never be silent.
	Logf func(format string, args ...any)
}

func (o RunOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
		return
	}
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// Run evaluates fn(0) … fn(n-1) on at most workers goroutines and returns
// the results indexed by cell. workers <= 0 means DefaultWorkers();
// workers == 1 runs inline on the calling goroutine with no pool at all.
//
// If any cell panics, every remaining cell still runs (they are
// independent), and Run then re-panics on the caller's goroutine with a
// *SweepError listing every failed cell.
func Run[T any](workers, n int, fn func(cell int) T) []T {
	out, err := RunSweep(RunOptions{Workers: workers}, n, fn)
	if err != nil {
		panic(err)
	}
	return out
}

// RunSweep evaluates fn(0) … fn(n-1) under opts and returns the results
// indexed by cell plus a SweepError describing every failure — nil when
// all cells completed (an all-environmental sweep, where every failure
// recovered on retry, still returns the SweepError so callers can see
// the recoveries; its Fatal() list is empty and every result is valid).
// Cells skipped by cancellation and fatally failed cells keep the zero
// value of T in the result slice — callers in keep-going mode must mark
// them, never silently use them.
func RunSweep[T any](opts RunOptions, n int, fn func(cell int) T) ([]T, *SweepError) {
	if n <= 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)

	var (
		mu       sync.Mutex
		failures []*CellFailure
		ran      atomic.Int64
		canceled atomic.Bool
	)
	// attempt runs fn(i) once, converting a panic into a *CellFailure.
	attempt := func(i int) (failure *CellFailure) {
		defer func() {
			if r := recover(); r != nil {
				failure = &CellFailure{Cell: i, Value: r, Stack: captureStack()}
			}
		}()
		if opts.Watch != nil {
			opts.Watch.CellStarted(i)
			defer opts.Watch.CellFinished(i)
		}
		out[i] = fn(i)
		return nil
	}
	runCell := func(i int) {
		ran.Add(1)
		f := attempt(i)
		if f == nil {
			return
		}
		if opts.Retry {
			if f2 := attempt(i); f2 != nil {
				f.Class = ClassDeterministic
				f.RetryValue, f.RetryStack = f2.Value, f2.Stack
			} else {
				f.Class = ClassEnvironmental
				opts.logf("parallel: cell %d passed on retry after failing with %v — "+
					"environmental failure (leaked state or hardware?); retry result used", i, f.Value)
			}
		}
		mu.Lock()
		failures = append(failures, f)
		mu.Unlock()
	}
	stop := func() bool {
		if canceled.Load() {
			return true
		}
		if opts.Canceled != nil && opts.Canceled() {
			canceled.Store(true)
			return true
		}
		return false
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if stop() {
				break
			}
			runCell(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					if stop() {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					runCell(i)
				}
			}()
		}
		wg.Wait()
	}

	if len(failures) == 0 && !canceled.Load() {
		return out, nil
	}
	sort.Slice(failures, func(a, b int) bool { return failures[a].Cell < failures[b].Cell })
	return out, &SweepError{
		Cells:    n,
		Ran:      int(ran.Load()),
		Canceled: canceled.Load(),
		Failures: failures,
	}
}

func captureStack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
