// Package parallel fans independent experiment cells across a bounded
// worker pool. Each cell of an experiment grid (one seed, one
// configuration) builds its own simulation kernel, so cells share no
// state; the pool's only job is to evaluate them concurrently while
// keeping the results in cell order, so that every floating-point
// aggregation downstream runs in exactly the order a serial loop would
// use. Same seed, any worker count: bit-identical output.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes 0:
// GOMAXPROCS, i.e. one worker per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// CellPanic wraps a panic raised inside a cell with the cell's index, so
// a crash in cell 37 of a 105-cell sweep says so.
type CellPanic struct {
	// Cell is the index of the cell whose evaluation panicked.
	Cell int
	// Value is the original panic value.
	Value any
	// Stack is the goroutine stack captured at recovery time.
	Stack []byte
}

func (p *CellPanic) Error() string {
	return fmt.Sprintf("parallel: cell %d panicked: %v\n%s", p.Cell, p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it was an error.
func (p *CellPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// Run evaluates fn(0) … fn(n-1) on at most workers goroutines and returns
// the results indexed by cell. workers <= 0 means DefaultWorkers();
// workers == 1 runs inline on the calling goroutine with no pool at all.
//
// If any cell panics, every remaining cell still runs (they are
// independent), and Run then re-panics on the caller's goroutine with a
// *CellPanic identifying the first failed cell.
func Run[T any](workers, n int, fn func(cell int) T) []T {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		firstMu  sync.Mutex
		firstErr *CellPanic
	)
	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				p := &CellPanic{Cell: i, Value: r, Stack: captureStack()}
				firstMu.Lock()
				if firstErr == nil || p.Cell < firstErr.Cell {
					firstErr = p
				}
				firstMu.Unlock()
			}
		}()
		out[i] = fn(i)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runCell(i)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		panic(firstErr)
	}
	return out
}

func captureStack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
