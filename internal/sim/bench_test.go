package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndFire(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(time.Microsecond, func() {})
		if k.Pending() > 1024 {
			k.Run()
		}
	}
	k.Run()
}

func BenchmarkCancel(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := k.After(time.Second, func() {})
		k.Cancel(e)
		if i%1024 == 0 {
			k.Run()
		}
	}
}

// BenchmarkKernelScheduleCancel measures the schedule→cancel→collect
// cycle that timer-heavy MAC code (ACK timers, LPL wake windows) runs for
// nearly every packet: most scheduled timeouts are cancelled before they
// fire. With the event pool and lazy cancellation this is alloc-free in
// steady state.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := k.After(time.Millisecond, func() {})
		k.Cancel(e)
		if i%1024 == 1023 {
			k.RunFor(2 * time.Millisecond) // collect cancelled nodes into the pool
		}
	}
	k.Run()
}

// BenchmarkEventQueueTimerHeavy models the event-queue load of duty-cycled
// MACs (LPL wake samples, TSCH slot timers, ACK timeouts): a few hundred
// outstanding timers at sub-millisecond to millisecond horizons, most of
// them cancelled and rescheduled before they fire, with periodic wake
// windows draining whatever came due. This is the workload where a
// calendar queue's O(1) bucket operations beat a binary heap's O(log n)
// sift per push/pop.
func BenchmarkEventQueueTimerHeavy(b *testing.B) {
	k := NewKernel(1)
	const outstanding = 256
	pend := make([]Event, outstanding)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % outstanding
		// The slot's previous timeout is still pending: cancel it, as a MAC
		// cancels an ACK timer when the ACK arrives.
		k.Cancel(pend[slot])
		// Reschedule at a jittered sub-millisecond horizon (LPL wake
		// sample / TSCH slot boundary scale).
		d := time.Duration(500+(i*37)%1500) * time.Microsecond
		pend[slot] = k.After(d, func() {})
		if i%64 == 63 {
			k.RunFor(200 * time.Microsecond) // wake window: fire what came due
		}
	}
	k.Run()
}

func BenchmarkTickerChurn(b *testing.B) {
	k := NewKernel(1)
	n := 0
	t := k.NewTicker(time.Millisecond, func() { n++ })
	defer t.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunFor(time.Millisecond)
	}
	if n == 0 {
		b.Fatal("ticker never fired")
	}
}

func BenchmarkRNGBinomialSmallP(b *testing.B) {
	g := NewRNG(1)
	for i := 0; i < b.N; i++ {
		g.Binomial(1000, 1e-4)
	}
}

func BenchmarkRNGGaussian(b *testing.B) {
	g := NewRNG(1)
	for i := 0; i < b.N; i++ {
		g.Gaussian(0, 4)
	}
}
