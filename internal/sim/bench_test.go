package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndFire(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(time.Microsecond, func() {})
		if k.Pending() > 1024 {
			k.Run()
		}
	}
	k.Run()
}

func BenchmarkCancel(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := k.After(time.Second, func() {})
		k.Cancel(e)
		if i%1024 == 0 {
			k.Run()
		}
	}
}

// BenchmarkKernelScheduleCancel measures the schedule→cancel→collect
// cycle that timer-heavy MAC code (ACK timers, LPL wake windows) runs for
// nearly every packet: most scheduled timeouts are cancelled before they
// fire. With the event pool and lazy cancellation this is alloc-free in
// steady state.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := NewKernel(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := k.After(time.Millisecond, func() {})
		k.Cancel(e)
		if i%1024 == 1023 {
			k.RunFor(2 * time.Millisecond) // collect cancelled nodes into the pool
		}
	}
	k.Run()
}

func BenchmarkTickerChurn(b *testing.B) {
	k := NewKernel(1)
	n := 0
	t := k.NewTicker(time.Millisecond, func() { n++ })
	defer t.Stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunFor(time.Millisecond)
	}
	if n == 0 {
		b.Fatal("ticker never fired")
	}
}

func BenchmarkRNGBinomialSmallP(b *testing.B) {
	g := NewRNG(1)
	for i := 0; i < b.N; i++ {
		g.Binomial(1000, 1e-4)
	}
}

func BenchmarkRNGGaussian(b *testing.B) {
	g := NewRNG(1)
	for i := 0; i < b.N; i++ {
		g.Gaussian(0, 4)
	}
}
