package sim

import (
	"container/heap"
	"math/bits"
)

// This file implements the kernel's event queue as a calendar queue: a
// ring of fixed-width time buckets covering a sliding horizon, with a
// heap-ordered overflow rung for far-future events and a (rarely used)
// early rung for events scheduled behind the cursor after a RunUntil
// boundary. Timer-heavy MAC workloads (LPL wake samples, TSCH slot
// timers, ACK timeouts) schedule and cancel hundreds of sub-millisecond
// timers per virtual millisecond; a binary heap pays an O(log n) sift on
// every push and pop, while the calendar pays an amortised O(1) append
// into the right bucket and a cursor advance.
//
// Ordering contract (identical to the heap it replaced): events pop in
// ascending (at, seq) order, so same-instant events fire in scheduling
// order (FIFO). Cancellation stays lazy — cancelled nodes are collected
// when they reach the cursor — and the queue never inspects node
// generations: handle staleness is the kernel's business.
const (
	// calWidthBits makes the bucket width a power-of-two number of
	// nanoseconds (1<<17 ns ≈ 131 µs), so the at→bucket mapping is a
	// shift and a mask instead of two divisions. The width sits between
	// the CSMA backoff quantum (~hundreds of µs) and frame airtimes
	// (~ms): near-term timers spread over tens of buckets with a handful
	// of events each.
	calWidthBits = 17
	calWidth     = Time(1) << calWidthBits
	// calBuckets is the ring size; the covered horizon is
	// calBuckets × calWidth ≈ 67 ms. Events beyond it wait in the
	// overflow rung and migrate into buckets as the cursor advances.
	calBuckets = 512
	calSpan    = calWidth * calBuckets
	// occWords sizes the bucket-occupancy bitmap (one bit per bucket), the
	// structure that lets the cursor jump over runs of empty buckets in a
	// few word scans instead of walking them one window at a time.
	occWords = calBuckets / 64
)

// calendarQueue is the kernel's pending-event store. The zero value is
// ready to use; bucket storage is allocated on first push and retained
// across Kernel.Reset (the arena's warm-slab contract).
type calendarQueue struct {
	// buckets[i] holds the pending events of one calWidth-wide window in
	// ascending (at, seq) order; heads[i] is the consumed-prefix index.
	// Each bucket maps to exactly one window inside the current horizon,
	// so bucket order is global order.
	buckets [][]*eventNode
	heads   []int
	// cur is the cursor: the bucket whose window starts at winStart.
	// Windows behind the cursor are empty (their events were consumed);
	// the cursor only moves forward.
	cur      int
	winStart Time
	// count is the number of nodes stored in buckets (including
	// cancelled nodes awaiting collection).
	count int
	// occ is the bucket-occupancy bitmap: bit i set iff buckets[i] holds
	// unconsumed events. Sparse schedules (a lone ticker) would otherwise
	// pay a window-by-window cursor walk between events.
	occ [occWords]uint64
	// overflow holds events at or beyond winStart+calSpan, min-heap
	// ordered by (at, seq); they drain into buckets as windows free up.
	overflow eventHeap
	// early holds events scheduled behind winStart: possible only after
	// RunUntil stopped short of the next event (the cursor committed
	// ahead of the clock) and the caller then scheduled something near
	// now. Always popped first — every early event precedes every
	// bucketed one.
	early eventHeap
}

// len reports the number of stored nodes, cancelled ones included.
func (q *calendarQueue) len() int {
	return q.count + len(q.overflow) + len(q.early)
}

// push files a node by its instant: behind the cursor → early rung,
// inside the horizon → its bucket, beyond → overflow rung.
func (q *calendarQueue) push(n *eventNode) {
	if q.buckets == nil {
		q.buckets = make([][]*eventNode, calBuckets)
		q.heads = make([]int, calBuckets)
	}
	switch {
	case n.at < q.winStart:
		heap.Push(&q.early, n)
	case n.at < q.winStart+calSpan:
		q.insertBucket(n)
	default:
		heap.Push(&q.overflow, n)
	}
}

// insertBucket places n into its window's bucket, keeping the bucket's
// unconsumed suffix in ascending (at, seq) order. A fresh push carries
// the largest seq yet, so the common case — monotone timer scheduling —
// is a plain append; overflow-drained nodes (older seqs) binary-search
// their slot.
func (q *calendarQueue) insertBucket(n *eventNode) {
	idx := int(n.at>>calWidthBits) & (calBuckets - 1)
	b := q.buckets[idx]
	lo, hi := q.heads[idx], len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid].at < n.at || (b[mid].at == n.at && b[mid].seq < n.seq) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b = append(b, nil)
	copy(b[lo+1:], b[lo:])
	b[lo] = n
	q.buckets[idx] = b
	q.occ[idx>>6] |= 1 << uint(idx&63)
	q.count++
}

// nextOccDist returns the ring distance from the cursor to the nearest
// occupied bucket (0 when the cursor's own bucket is occupied).
// Precondition: count > 0, so some bit is set and the scan terminates.
func (q *calendarQueue) nextOccDist() int {
	w := q.cur >> 6
	word := q.occ[w] &^ (1<<uint(q.cur&63) - 1)
	for {
		if word != 0 {
			idx := w<<6 + bits.TrailingZeros64(word)
			d := idx - q.cur
			if d < 0 {
				d += calBuckets
			}
			return d
		}
		w = (w + 1) % occWords
		word = q.occ[w]
	}
}

// peek returns the minimum (at, seq) node without removing it, or nil.
// It commits the cursor to the minimum's window; pop relies on that.
func (q *calendarQueue) peek() *eventNode {
	if len(q.early) > 0 {
		// Early events are strictly behind winStart, hence behind every
		// bucketed and overflow event.
		return q.early[0]
	}
	if q.count == 0 {
		if len(q.overflow) == 0 {
			return nil
		}
		// Nothing bucketed: jump the cursor straight to the overflow
		// minimum's window instead of sweeping empty buckets.
		win := q.overflow[0].at >> calWidthBits
		q.winStart = win << calWidthBits
		q.cur = int(win) & (calBuckets - 1)
		q.drainOverflow()
	}
	for {
		if b := q.buckets[q.cur]; q.heads[q.cur] < len(b) {
			return b[q.heads[q.cur]]
		}
		// Jump the cursor over the empty run. With an empty overflow rung
		// the jump is unconditional; otherwise it is bounded by the window
		// at which the overflow minimum enters the horizon, because that
		// drain could be the next occupied bucket.
		d := q.nextOccDist()
		if len(q.overflow) > 0 {
			if enter := int((q.overflow[0].at-q.winStart-calSpan)>>calWidthBits) + 1; enter < d {
				d = enter
			}
		}
		q.cur = (q.cur + d) & (calBuckets - 1)
		q.winStart += Time(d) << calWidthBits
		q.drainOverflow()
	}
}

// pop removes and returns the node peek found. Must follow a peek with
// no intervening mutation (the kernel's run loop guarantees this).
func (q *calendarQueue) pop() *eventNode {
	if len(q.early) > 0 {
		return heap.Pop(&q.early).(*eventNode)
	}
	b := q.buckets[q.cur]
	h := q.heads[q.cur]
	n := b[h]
	b[h] = nil
	h++
	if h == len(b) {
		q.buckets[q.cur] = b[:0]
		h = 0
		q.occ[q.cur>>6] &^= 1 << uint(q.cur&63)
	}
	q.heads[q.cur] = h
	q.count--
	return n
}

// drainOverflow migrates every overflow event inside the current horizon
// into its bucket. Nodes come off the heap in (at, seq) order, so within
// a bucket they append in order.
func (q *calendarQueue) drainOverflow() {
	horizon := q.winStart + calSpan
	for len(q.overflow) > 0 && q.overflow[0].at < horizon {
		q.insertBucket(heap.Pop(&q.overflow).(*eventNode))
	}
}

// reset empties the queue, invoking recycle on every stored node, and
// rewinds the cursor to the origin. Bucket storage keeps its capacity:
// a recycled kernel re-fills the same slabs.
func (q *calendarQueue) reset(recycle func(*eventNode)) {
	for i, b := range q.buckets {
		for j := q.heads[i]; j < len(b); j++ {
			recycle(b[j])
			b[j] = nil
		}
		q.buckets[i] = b[:0]
		q.heads[i] = 0
	}
	for _, n := range q.overflow {
		recycle(n)
	}
	q.overflow = q.overflow[:0]
	for _, n := range q.early {
		recycle(n)
	}
	q.early = q.early[:0]
	q.occ = [occWords]uint64{}
	q.cur = 0
	q.winStart = 0
	q.count = 0
}

// eventHeap is a min-heap ordered by (at, seq): the overflow and early
// rungs of the calendar queue, and — being the previous event-queue
// implementation in its entirety — the ordering oracle the calendar's
// regression tests compare against.
type eventHeap []*eventNode

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*eventNode)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
