package sim

import "time"

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// Unlike time.Ticker it runs entirely on the kernel's clock.
type Ticker struct {
	kernel *Kernel
	period time.Duration
	fn     func()
	next   Event
	done   bool
}

// NewTicker schedules fn every period, with the first firing one period from
// now. The period must be positive.
func (k *Kernel) NewTicker(period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{kernel: k, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.next = t.kernel.After(t.period, func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done {
			t.schedule()
		}
	})
}

// Stop cancels future firings. Safe to call multiple times, including from
// inside the callback.
func (t *Ticker) Stop() {
	if t.done {
		return
	}
	t.done = true
	t.kernel.Cancel(t.next)
}
