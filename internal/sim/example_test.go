package sim_test

import (
	"fmt"
	"time"

	"nonortho/internal/sim"
)

// Example shows the kernel's basic scheduling primitives: one-shot events,
// relative scheduling, and a periodic ticker, all on the virtual clock.
func Example() {
	k := sim.NewKernel(1)

	k.At(2*sim.Millisecond, func() {
		fmt.Println("one-shot at", k.Now())
	})
	k.After(time.Millisecond, func() {
		fmt.Println("relative at", k.Now())
	})
	ticks := 0
	var t *sim.Ticker
	t = k.NewTicker(5*time.Millisecond, func() {
		ticks++
		if ticks == 2 {
			t.Stop()
		}
	})

	k.RunUntil(20 * sim.Millisecond)
	fmt.Println("ticks:", ticks, "now:", k.Now())
	// Output:
	// relative at 1ms
	// one-shot at 2ms
	// ticks: 2 now: 20ms
}

// ExampleKernel_Stream shows named deterministic random streams: the same
// seed and name always yield the same draws, independent of other streams.
func ExampleKernel_Stream() {
	a := sim.NewKernel(42).Stream("fading").Intn(100)
	b := sim.NewKernel(42).Stream("fading").Intn(100)
	fmt.Println(a == b)
	// Output:
	// true
}
