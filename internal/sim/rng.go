package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a deterministic random stream. It wraps math/rand.Rand so the
// simulator controls seeding; callers must never reach for the global
// math/rand functions, which would break reproducibility.
type RNG struct {
	r *rand.Rand
	// gen is the kernel stream generation this stream was last (re)seeded
	// under; Stream reseeds lagging streams on lease. Standalone RNGs
	// (NewRNG outside a kernel) never consult it.
	gen uint64
}

// NewRNG returns a stream seeded with the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Reseed rewinds the stream to the start of the sequence NewRNG(seed)
// would produce, reusing the existing generator state in place. A reseeded
// stream is draw-for-draw identical to a freshly constructed one — the
// property Kernel.Reset relies on to recycle stream objects across
// simulation cells.
func (g *RNG) Reseed(seed int64) { g.r.Seed(seed) }

// streamSeed derives a stream's seed from the kernel seed and its name, so
// adding a new stream does not perturb draws on existing streams.
func streamSeed(kernelSeed int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return kernelSeed ^ int64(h.Sum64())
}

// Stream returns the named random stream, creating it on first use. The
// stream's seed is derived from the kernel seed and the name, so adding a
// new stream does not perturb draws on existing streams. A stream left
// over from before a Kernel.Reset is reseeded here, on lease — the draws
// it hands out are always the sequence a fresh kernel would derive for the
// name, but a cell only pays the seeding cost for streams it leases.
func (k *Kernel) Stream(name string) *RNG {
	if s, ok := k.streams[name]; ok {
		if s.gen != k.streamGen {
			s.Reseed(streamSeed(k.seed, name))
			s.gen = k.streamGen
		}
		return s
	}
	s := NewRNG(streamSeed(k.seed, name))
	s.gen = k.streamGen
	k.streams[name] = s
	return s
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform draw in [0, n). n must be positive.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard-normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Gaussian returns a normal draw with the given mean and standard deviation.
func (g *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// UniformRange returns a uniform draw in [lo, hi).
func (g *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Exponential returns an exponentially distributed draw with the given
// mean — the dwell-time distribution of memoryless on/off processes such
// as the Gilbert–Elliott jammer. A non-positive mean returns 0.
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return -mean * math.Log(1-g.r.Float64())
}

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Binomial returns the number of successes in n Bernoulli(p) trials. For
// large n with small expected count it uses per-trial inversion on a
// geometric skip, which is O(successes) instead of O(n).
func (g *RNG) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	// For moderate n a direct loop is cheap and unbiased.
	if n <= 64 {
		c := 0
		for i := 0; i < n; i++ {
			if g.r.Float64() < p {
				c++
			}
		}
		return c
	}
	// Geometric skipping: index of next success is current + 1 + Geom(p).
	c := 0
	i := 0
	logq := math.Log1p(-p)
	for {
		skipF := math.Floor(math.Log(g.r.Float64()) / logq)
		// Guard the int conversion: for tiny p the skip can exceed any
		// integer range, which simply means no further successes.
		if skipF >= float64(n-i) {
			return c
		}
		i += int(skipF) + 1
		if i > n {
			return c
		}
		c++
	}
}
