// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock with nanosecond resolution and a
// binary-heap event queue. Events scheduled for the same instant fire in
// scheduling order (FIFO), which together with seeded random streams makes
// every simulation run bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual-clock instant, expressed in nanoseconds since the start
// of the simulation. It is deliberately not time.Time: simulations have no
// calendar, only an origin.
type Time int64

// Common conversion helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a sim.Time offset to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the instant expressed in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the instant as a duration since the simulation origin.
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a time.Duration to a sim.Time offset.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Event is a scheduled callback. Holding the pointer allows cancellation.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap index, -1 once popped or cancelled
	canceled bool
}

// At reports the instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Kernel is the discrete-event scheduler. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	running bool
	stopped bool
	seed    int64
	streams map[string]*RNG
}

// NewKernel returns a kernel with its clock at zero. All random streams
// derived from the kernel are seeded deterministically from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		seed:    seed,
		streams: make(map[string]*RNG),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the root seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// At schedules fn to run at instant t. Scheduling in the past (t < Now) is a
// programming error and panics: the simulation would otherwise silently
// reorder causality.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	e := &Event{at: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d after the current instant.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+FromDuration(d), fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.index >= 0 {
		heap.Remove(&k.queue, e.index)
	}
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Pending reports the number of events still queued.
func (k *Kernel) Pending() int { return k.queue.Len() }

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.run(func(Time) bool { return true })
}

// RunUntil executes events with at <= deadline, then advances the clock to
// the deadline. Events scheduled exactly at the deadline do fire.
func (k *Kernel) RunUntil(deadline Time) {
	k.run(func(at Time) bool { return at <= deadline })
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
}

// RunFor runs the simulation for d of virtual time from the current instant.
func (k *Kernel) RunFor(d time.Duration) {
	k.RunUntil(k.now + FromDuration(d))
}

func (k *Kernel) run(keep func(Time) bool) {
	if k.running {
		panic("sim: Kernel.Run called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	k.stopped = false
	for k.queue.Len() > 0 && !k.stopped {
		next := k.queue[0]
		if !keep(next.at) {
			return
		}
		heap.Pop(&k.queue)
		if next.canceled {
			continue
		}
		k.now = next.at
		next.fn()
	}
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
