// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel owns a virtual clock with nanosecond resolution and a
// calendar-queue event store (see calendar.go). Events scheduled for the
// same instant fire in scheduling order (FIFO), which together with seeded
// random streams makes every simulation run bit-for-bit reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual-clock instant, expressed in nanoseconds since the start
// of the simulation. It is deliberately not time.Time: simulations have no
// calendar, only an origin.
type Time int64

// Common conversion helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a sim.Time offset to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns the instant expressed in (fractional) seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String renders the instant as a duration since the simulation origin.
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a time.Duration to a sim.Time offset.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// eventNode is the kernel-owned storage of one scheduled callback. Nodes
// are recycled through a free list once they fire or their cancellation is
// collected; gen counts incarnations so that stale Event handles held by
// callers can never act on a recycled node.
type eventNode struct {
	at       Time
	seq      uint64
	fn       func()
	gen      uint64
	canceled bool
}

// Event is a handle to one scheduled incarnation of a callback. It is a
// small value: copy it freely. The zero Event is inert — cancelling it is
// a no-op — so fields of type Event need no nil checks. Handles stay safe
// after their event fires: the kernel recycles the underlying storage, and
// a Cancel through a stale handle simply does nothing.
type Event struct {
	n   *eventNode
	gen uint64
}

// live reports whether the handle still refers to its own pending
// incarnation (scheduled, not yet fired, not cancelled-and-collected).
func (e Event) live() bool { return e.n != nil && e.n.gen == e.gen }

// At reports the instant the event is scheduled for; zero once the
// incarnation has completed and its storage was recycled.
func (e Event) At() Time {
	if e.live() {
		return e.n.at
	}
	return 0
}

// Canceled reports whether Cancel was called on this pending incarnation.
func (e Event) Canceled() bool { return e.live() && e.n.canceled }

// Kernel is the discrete-event scheduler. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	now     Time
	queue   calendarQueue
	seq     uint64
	live    int // scheduled events not yet fired or cancelled
	free    []*eventNode
	running bool
	stopped bool
	seed    int64
	// budget caps the cell's execution; fired counts events executed
	// against budget.Events.
	budget Budget
	fired  uint64
	// streams survives Reset by design: stream objects stay parked and
	// streamGen makes every lease reseed lazily, so a recycled kernel
	// hands out fresh-identical draws without rebuilding the map.
	streams map[string]*RNG //lint:keep reseeded lazily via streamGen, not rebuilt
	// streamGen marks the kernel's current incarnation; a stream whose gen
	// lags is reseeded lazily on its next Stream lease. Reset bumps this
	// instead of eagerly reseeding every stream ever created on the kernel
	// — a recycled kernel accumulates stream names across cells, and
	// reseeding ones the next cell never draws from is pure waste.
	streamGen uint64
}

// NewKernel returns a kernel with its clock at zero. All random streams
// derived from the kernel are seeded deterministically from seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		seed:    seed,
		streams: make(map[string]*RNG),
	}
}

// Reset rewinds the kernel to the state NewKernel(seed) would produce
// while keeping its allocations warm: pending events are recycled into the
// node free-list (bumping generations, so outstanding handles go inert)
// and the stream generation advances, so every existing random stream is
// reseeded — lazily, at its next Stream lease — to the start of the
// sequence a fresh kernel would derive for its name. A recycled cell
// therefore pays seeding only for the streams it actually uses, exactly
// like a fresh kernel; stream objects accumulated under other names stay
// parked for free. The price is a contract: stream pointers leased before
// Reset go stale and must be re-leased through Stream afterwards — which
// every holder already does, because cells rebuild their MAC/radio/medium
// objects (or Reinit them) per lease. The cross-cell arena relies on this
// to make a recycled kernel bit-identical to a new one. Resetting while
// Run is executing is a programming error and panics.
func (k *Kernel) Reset(seed int64) {
	if k.running {
		panic("sim: Kernel.Reset called while running")
	}
	k.queue.reset(k.recycle)
	k.now = 0
	k.seq = 0
	k.live = 0
	k.stopped = false
	k.seed = seed
	k.budget = Budget{}
	k.fired = 0
	k.streamGen++
}

// Budget caps a simulation cell's execution deterministically: Events
// bounds the number of events the kernel will fire, Virtual bounds the
// instant any event may fire at. Zero fields are unlimited. Budgets are
// the runaway-cell guard for long sweeps — a scheduling loop (an event
// that reschedules itself without advancing useful work) trips the
// event budget, an experiment mis-sized by orders of magnitude trips
// the virtual-time budget — and because events fire in a fixed order,
// a budgeted cell trips at exactly the same event on every run: the
// failure is reproducible, never schedule-dependent.
type Budget struct {
	// Events is the maximum number of events fired; 0 means unlimited.
	Events uint64
	// Virtual is the latest instant an event may fire at; 0 means
	// unlimited. The clock itself may still advance past it idle (e.g.
	// RunUntil with an empty queue): only event execution is runaway.
	Virtual Time
}

// BudgetError is the panic value raised when a kernel exceeds its
// budget. It identifies the cell via the kernel's seed and where the
// run stood, so a sweep's failure report says which cell ran away and
// how far it got.
type BudgetError struct {
	// Kind is "events" or "virtual-time".
	Kind string
	// Budget is the limit that was exceeded.
	Budget Budget
	// Seed is the kernel's root seed (the cell identity within a sweep).
	Seed int64
	// At is the virtual instant of the event that tripped the budget.
	At Time
	// Fired is the number of events executed before tripping.
	Fired uint64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: %s budget exceeded (seed %d): %d events fired, clock %v, budget {events %d, virtual %v}",
		e.Kind, e.Seed, e.Fired, e.At, e.Budget.Events, e.Budget.Virtual)
}

// SetBudget installs an execution budget for the current incarnation.
// Reset clears it; re-apply after each arena lease. Call before Run.
func (k *Kernel) SetBudget(b Budget) { k.budget = b }

// FiredEvents reports the number of events executed since the last
// Reset (or construction).
func (k *Kernel) FiredEvents() uint64 { return k.fired }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the root seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// At schedules fn to run at instant t. Scheduling in the past (t < Now) is a
// programming error and panics: the simulation would otherwise silently
// reorder causality.
func (k *Kernel) At(t Time, fn func()) Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	n := k.newNode()
	n.at, n.seq, n.fn = t, k.seq, fn
	k.seq++
	k.queue.push(n)
	k.live++
	return Event{n: n, gen: n.gen}
}

// After schedules fn to run d after the current instant.
func (k *Kernel) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+FromDuration(d), fn)
}

// newNode pops a recycled node from the free list, or allocates one.
func (k *Kernel) newNode() *eventNode {
	if n := len(k.free); n > 0 {
		node := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return node
	}
	return &eventNode{}
}

// recycle returns a node to the free list. Bumping gen invalidates every
// outstanding handle to the incarnation that just ended.
func (k *Kernel) recycle(n *eventNode) {
	n.gen++
	n.fn = nil
	n.canceled = false
	k.free = append(k.free, n)
}

// Cancel removes a pending event. Cancellation is lazy: the node is only
// marked dead and skipped (and recycled) when it reaches the head of the
// queue, which is O(1) instead of heap.Remove's O(log n). Cancelling the
// zero Event, a fired event, or an already-cancelled event is a no-op —
// the generation counter on the node detects stale handles even after the
// node's storage has been reused for a later event.
func (k *Kernel) Cancel(e Event) {
	n := e.n
	if n == nil || n.gen != e.gen || n.canceled {
		return
	}
	n.canceled = true
	k.live--
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (k *Kernel) Stop() { k.stopped = true }

// Pending reports the number of events still scheduled to fire (cancelled
// events awaiting lazy collection are not counted).
func (k *Kernel) Pending() int { return k.live }

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() {
	k.run(func(Time) bool { return true })
}

// RunUntil executes events with at <= deadline, then advances the clock to
// the deadline. Events scheduled exactly at the deadline do fire.
func (k *Kernel) RunUntil(deadline Time) {
	k.run(func(at Time) bool { return at <= deadline })
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
}

// RunFor runs the simulation for d of virtual time from the current instant.
func (k *Kernel) RunFor(d time.Duration) {
	k.RunUntil(k.now + FromDuration(d))
}

func (k *Kernel) run(keep func(Time) bool) {
	if k.running {
		panic("sim: Kernel.Run called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	k.stopped = false
	for !k.stopped {
		next := k.queue.peek()
		if next == nil {
			return
		}
		if !keep(next.at) {
			return
		}
		k.queue.pop()
		if next.canceled {
			k.recycle(next)
			continue
		}
		// Budget enforcement happens at the instant an event would fire,
		// so a budgeted cell trips at the same event on every run.
		if b := k.budget; b.Virtual > 0 && next.at > b.Virtual {
			panic(&BudgetError{Kind: "virtual-time", Budget: b, Seed: k.seed, At: next.at, Fired: k.fired})
		} else if b.Events > 0 && k.fired >= b.Events {
			panic(&BudgetError{Kind: "events", Budget: b, Seed: k.seed, At: next.at, Fired: k.fired})
		}
		k.now = next.at
		k.live--
		k.fired++
		fn := next.fn
		// Recycle before invoking: fn may schedule new events, and the node
		// may be handed right back out. The generation bump means any handle
		// to the event now firing is already stale inside its own callback.
		k.recycle(next)
		fn()
	}
}
