package sim

import (
	"container/heap"
	"testing"
)

// The calendar queue replaced the binary heap as the kernel's event
// store; eventHeap — the old implementation in its entirety — stays on
// as the overflow/early rung and as the ordering oracle here: every
// test that asserts pop order derives the expected sequence from an
// eventHeap fed the same (at, seq) pairs.

// oracleOrder pushes the given (at, seq) pairs into an eventHeap and
// pops them all, returning the seqs in heap order.
func oracleOrder(ats []Time) []uint64 {
	var h eventHeap
	for i, at := range ats {
		heap.Push(&h, &eventNode{at: at, seq: uint64(i)})
	}
	out := make([]uint64, 0, len(ats))
	for h.Len() > 0 {
		out = append(out, heap.Pop(&h).(*eventNode).seq)
	}
	return out
}

// TestSameInstantFIFOTorture schedules thousands of events at one
// timestamp (with a few neighbours and interleaved cancellations) and
// asserts the kernel fires them in exactly the order the heap oracle
// produces: scheduling order within the shared instant.
func TestSameInstantFIFOTorture(t *testing.T) {
	const n = 4000
	shared := Time(3*Millisecond + 137)
	k := NewKernel(1)
	ats := make([]Time, 0, n)
	events := make([]Event, 0, n)
	var got []uint64
	for i := 0; i < n; i++ {
		at := shared
		switch {
		case i%97 == 13:
			at = shared - Time(i%5+1) // a few strictly-before neighbours
		case i%89 == 7:
			at = shared + Time(i%5+1) // and strictly-after ones
		}
		seq := uint64(i)
		events = append(events, k.At(at, func() { got = append(got, seq) }))
		ats = append(ats, at)
	}
	canceled := make(map[uint64]bool)
	for i := 0; i < n; i += 7 {
		k.Cancel(events[i])
		canceled[uint64(i)] = true
	}
	k.Run()
	want := make([]uint64, 0, n)
	for _, seq := range oracleOrder(ats) {
		if !canceled[seq] {
			want = append(want, seq)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, oracle expects %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order diverges from heap oracle at position %d: got seq %d, want %d",
				i, got[i], want[i])
		}
	}
}

// TestCalendarMatchesHeapOracle drives the queue through a seeded random
// schedule/pop walk spanning same-bucket ties, cross-bucket spreads,
// far-future overflow pushes and empty-queue cursor jumps, checking every
// popped (at, seq) against a heap oracle fed the identical pushes.
func TestCalendarMatchesHeapOracle(t *testing.T) {
	rng := NewRNG(7)
	var q calendarQueue
	var oracle eventHeap
	seq := uint64(0)
	now := Time(0)
	push := func(at Time) {
		q.push(&eventNode{at: at, seq: seq})
		heap.Push(&oracle, &eventNode{at: at, seq: seq})
		seq++
	}
	pop := func() {
		want := heap.Pop(&oracle).(*eventNode)
		if got := q.peek(); got.at != want.at || got.seq != want.seq {
			t.Fatalf("peek (at %v, seq %d), oracle wants (at %v, seq %d)",
				got.at, got.seq, want.at, want.seq)
		}
		got := q.pop()
		if got.at != want.at || got.seq != want.seq {
			t.Fatalf("pop (at %v, seq %d), oracle wants (at %v, seq %d)",
				got.at, got.seq, want.at, want.seq)
		}
		now = got.at
	}
	for i := 0; i < 30000; i++ {
		switch r := rng.Float64(); {
		case r < 0.45:
			// Near-term: lands in the bucket ring, often colliding with
			// other pushes in the same window (and sometimes the same at).
			push(now + Time(rng.Intn(int(2*Millisecond))))
		case r < 0.55:
			// Far-future: beyond the ~67 ms horizon, so it takes the
			// overflow rung and must migrate back in order.
			push(now + calSpan + Time(rng.Intn(int(200*Millisecond))))
		case r < 0.60 && q.len() > 0:
			// Drain to empty now and then to exercise the cursor jump.
			for q.len() > 0 {
				pop()
			}
		default:
			if q.len() > 0 {
				pop()
			} else {
				push(now + Time(rng.Intn(int(Millisecond))))
			}
		}
	}
	for q.len() > 0 {
		pop()
	}
	if oracle.Len() != 0 {
		t.Fatalf("oracle still holds %d events after queue drained", oracle.Len())
	}
}

// TestCalendarEarlyInsertAfterRunUntil covers the early rung: RunUntil
// leaves the cursor committed to the next event's window ahead of the
// clock, and an event then scheduled behind that window must still fire
// first, in (at, seq) order.
func TestCalendarEarlyInsertAfterRunUntil(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(50*Millisecond, func() { got = append(got, 3) })
	k.RunUntil(10 * Millisecond) // peeks the 50 ms event, cursor commits to its window
	k.At(11*Millisecond, func() { got = append(got, 1) })
	k.At(11*Millisecond, func() { got = append(got, 2) }) // same-instant FIFO on the early rung
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order %v, want [1 2 3]", got)
	}
	if k.Now() != 50*Millisecond {
		t.Fatalf("clock %v, want 50ms", k.Now())
	}
}

// TestCalendarOverflowMigration checks that events beyond the bucket
// horizon (overflow rung) fire in exact order relative to near-term
// events, including ties created between a bucketed and an overflowed
// event at the same instant.
func TestCalendarOverflowMigration(t *testing.T) {
	k := NewKernel(1)
	var got []int
	far := calSpan + 10*Millisecond
	// Scheduled first, so it overflows (beyond horizon at push time).
	k.At(far, func() { got = append(got, 1) })
	// March the clock close to far, then schedule the same instant from
	// within the horizon: the overflow event has the older seq and must
	// still fire first after migrating into the same bucket.
	k.At(far-20*Millisecond, func() {
		k.At(far, func() { got = append(got, 2) })
	})
	k.At(far+Millisecond, func() { got = append(got, 3) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order %v, want [1 2 3]", got)
	}
}

// TestCalendarReplayAcrossReset is the queue-focused replay port of the
// kernel Reset tests: a schedule spanning bucket ties, cursor jumps and
// the overflow rung must replay bit-identically on a recycled kernel —
// and the bucket slabs must survive the Reset instead of reallocating.
func TestCalendarReplayAcrossReset(t *testing.T) {
	type firing struct {
		at  Time
		id  int
		rnd float64
	}
	run := func(k *Kernel) []firing {
		var log []firing
		rng := k.Stream("replay")
		record := func(id int) func() {
			return func() { log = append(log, firing{k.Now(), id, rng.Float64()}) }
		}
		k.At(100, record(0))
		k.At(100, record(1))                // same-instant tie
		k.At(90*Millisecond, record(2))     // overflow at push time
		k.At(3*Millisecond+57, record(3))   // same bucket ring index family
		e := k.At(5*Millisecond, record(4)) // cancelled: must not fire either run
		k.Cancel(e)
		k.At(200*Millisecond, record(5)) // deep overflow
		k.RunUntil(Second)
		return log
	}
	k := NewKernel(9)
	first := run(k)
	k.Reset(9)
	if k.queue.buckets == nil {
		t.Fatal("Reset dropped the calendar bucket slab")
	}
	second := run(k)
	if len(first) != len(second) {
		t.Fatalf("replay fired %d events, first run fired %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverges at firing %d: first %+v, second %+v", i, first[i], second[i])
		}
	}
	want := []int{0, 1, 3, 2, 5}
	for i, f := range first {
		if f.id != want[i] {
			t.Fatalf("fire order id %d at position %d, want %d", f.id, i, want[i])
		}
	}
}
