package sim

import (
	"errors"
	"testing"
	"time"
)

// trip runs fn and returns the *BudgetError it panics with, or nil.
func trip(t *testing.T, fn func()) *BudgetError {
	t.Helper()
	var be *BudgetError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			var ok bool
			be, ok = r.(*BudgetError)
			if !ok {
				t.Fatalf("panic value %T (%v), want *BudgetError", r, r)
			}
		}()
		fn()
	}()
	return be
}

// selfRescheduling schedules an event that re-arms itself forever — the
// canonical runaway cell.
func selfRescheduling(k *Kernel, period Time) {
	var again func()
	again = func() { k.At(k.Now()+period, again) }
	k.At(0, again)
}

func TestEventBudgetTripsRunaway(t *testing.T) {
	k := NewKernel(42)
	k.SetBudget(Budget{Events: 100})
	selfRescheduling(k, Millisecond)
	be := trip(t, func() { k.Run() })
	if be == nil {
		t.Fatal("runaway cell ran to completion under an event budget")
	}
	if be.Kind != "events" || be.Fired != 100 || be.Seed != 42 {
		t.Fatalf("BudgetError = %+v, want events kind, 100 fired, seed 42", be)
	}
	if be.Error() == "" || !errors.As(error(be), &be) {
		t.Fatalf("BudgetError must be a usable error: %v", be)
	}
}

func TestVirtualBudgetTripsRunaway(t *testing.T) {
	k := NewKernel(7)
	k.SetBudget(Budget{Virtual: 10 * Millisecond})
	selfRescheduling(k, Millisecond)
	be := trip(t, func() { k.Run() })
	if be == nil {
		t.Fatal("runaway cell ran to completion under a virtual-time budget")
	}
	if be.Kind != "virtual-time" || be.At <= 10*Millisecond-Millisecond {
		t.Fatalf("BudgetError = %+v, want virtual-time kind tripping just past the budget", be)
	}
	// Events at or before the budget all fired (0..10 ms inclusive).
	if be.Fired != 11 {
		t.Fatalf("fired %d events before tripping, want 11", be.Fired)
	}
}

// The trip point is a function of the seed and schedule alone: two
// identical budgeted runs fail at exactly the same event and instant.
func TestBudgetTripIsDeterministic(t *testing.T) {
	run := func() *BudgetError {
		k := NewKernel(1)
		k.SetBudget(Budget{Events: 57})
		selfRescheduling(k, 3*Microsecond)
		return trip(t, func() { k.Run() })
	}
	a, b := run(), run()
	if a == nil || b == nil {
		t.Fatal("budget did not trip")
	}
	if a.At != b.At || a.Fired != b.Fired || a.Kind != b.Kind {
		t.Fatalf("trip point differs across identical runs: %+v vs %+v", a, b)
	}
}

// A zero budget is unlimited, and a bounded simulation completes under
// a generous budget without tripping.
func TestBudgetZeroAndHeadroom(t *testing.T) {
	for _, b := range []Budget{{}, {Events: 1000, Virtual: Second}} {
		k := NewKernel(1)
		k.SetBudget(b)
		fired := 0
		for i := 0; i < 10; i++ {
			i := i
			k.At(Time(i)*Millisecond, func() { fired++ })
		}
		if be := trip(t, func() { k.Run() }); be != nil {
			t.Fatalf("budget %+v tripped on a 10-event run: %v", b, be)
		}
		if fired != 10 {
			t.Fatalf("budget %+v: fired %d, want 10", b, fired)
		}
	}
}

// Canceled events do not count against the event budget: only executed
// callbacks are work.
func TestBudgetIgnoresCanceledEvents(t *testing.T) {
	k := NewKernel(1)
	k.SetBudget(Budget{Events: 5})
	for i := 0; i < 20; i++ {
		e := k.At(Time(i)*Millisecond, func() {})
		if i%2 == 0 {
			k.Cancel(e)
		}
	}
	// 10 live events against a budget of 5: trips at the 6th live one.
	be := trip(t, func() { k.Run() })
	if be == nil || be.Fired != 5 {
		t.Fatalf("BudgetError = %+v, want trip after 5 fired (canceled events free)", be)
	}
}

// Reset clears the budget and the fired counter — a recycled kernel
// must behave like a fresh one until the next SetBudget.
func TestResetClearsBudget(t *testing.T) {
	k := NewKernel(1)
	k.SetBudget(Budget{Events: 3})
	selfRescheduling(k, Millisecond)
	if be := trip(t, func() { k.Run() }); be == nil {
		t.Fatal("budget did not trip before Reset")
	}
	k.Reset(2)
	if k.FiredEvents() != 0 {
		t.Fatalf("FiredEvents() = %d after Reset, want 0", k.FiredEvents())
	}
	fired := 0
	for i := 0; i < 50; i++ {
		k.At(Time(i)*Millisecond, func() { fired++ })
	}
	if be := trip(t, func() { k.Run() }); be != nil {
		t.Fatalf("stale budget survived Reset: %v", be)
	}
	if fired != 50 {
		t.Fatalf("fired %d events after Reset, want 50", fired)
	}
}

// A budget trip mid-run leaves the kernel recoverable: Reset returns it
// to a clean, runnable state (the arena's recycling contract).
func TestBudgetTripThenResetIsClean(t *testing.T) {
	k := NewKernel(9)
	k.SetBudget(Budget{Events: 10})
	selfRescheduling(k, Millisecond)
	if be := trip(t, func() { k.Run() }); be == nil {
		t.Fatal("budget did not trip")
	}
	k.Reset(9)
	if k.Now() != 0 || k.Pending() != 0 {
		t.Fatalf("Reset after trip: now=%v pending=%d, want clean kernel", k.Now(), k.Pending())
	}
	ran := false
	k.At(Millisecond, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("kernel not runnable after budget trip + Reset")
	}
}

// RunUntil may advance the clock past the virtual budget when idle —
// only firing an event past the budget is a runaway.
func TestVirtualBudgetAllowsIdleClockAdvance(t *testing.T) {
	k := NewKernel(1)
	k.SetBudget(Budget{Virtual: 10 * Millisecond})
	k.At(5*Millisecond, func() {})
	if be := trip(t, func() { k.RunUntil(FromDuration(time.Second)) }); be != nil {
		t.Fatalf("idle clock advance tripped the virtual budget: %v", be)
	}
	if k.Now() != FromDuration(time.Second) {
		t.Fatalf("clock at %v, want 1s", k.Now())
	}
}
