package sim

import (
	"testing"
	"time"
)

// TestKernelResetReplaysFresh: a reset kernel must be observationally
// identical to a newly constructed one — clock at zero, queue empty, and
// every named stream rewound to the seed's deterministic sequence, even
// when the reset seed differs from the construction seed.
func TestKernelResetReplaysFresh(t *testing.T) {
	scenario := func(k *Kernel) (times []Time, draws []float64) {
		s := k.Stream("test.stream")
		for i := 1; i <= 3; i++ {
			d := time.Duration(i) * time.Millisecond
			k.After(d, func() {
				times = append(times, k.Now())
				draws = append(draws, s.Float64())
			})
		}
		k.Run()
		return times, draws
	}

	wantTimes, wantDraws := scenario(NewKernel(7))

	k := NewKernel(3)
	// Dirty the kernel: unrelated events (some left pending), stream use.
	k.Stream("test.stream").Float64()
	k.After(time.Millisecond, func() {})
	k.RunFor(2 * time.Millisecond)
	k.After(time.Hour, func() { t.Fatal("stale event survived Reset") })

	k.Reset(7)
	if k.Now() != 0 {
		t.Fatalf("clock after Reset = %v, want 0", k.Now())
	}
	gotTimes, gotDraws := scenario(k)
	if len(gotTimes) != len(wantTimes) {
		t.Fatalf("event counts differ: %d vs %d", len(gotTimes), len(wantTimes))
	}
	for i := range wantTimes {
		if gotTimes[i] != wantTimes[i] {
			t.Errorf("event %d at %v, want %v", i, gotTimes[i], wantTimes[i])
		}
		if gotDraws[i] != wantDraws[i] {
			t.Errorf("draw %d = %v, want %v (stream not rewound)", i, gotDraws[i], wantDraws[i])
		}
	}
}

// TestKernelResetWhileRunningPanics: resetting mid-callback would corrupt
// the dispatch loop; the kernel must refuse loudly.
func TestKernelResetWhileRunningPanics(t *testing.T) {
	k := NewKernel(1)
	k.After(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("Reset inside a running callback did not panic")
			}
		}()
		k.Reset(2)
	})
	k.Run()
}

// TestRNGReseedRestartsSequence: Reseed must fully reinitialize the
// generator — the post-Reseed sequence equals a fresh generator's from
// the first draw, with no state bleeding through.
func TestRNGReseedRestartsSequence(t *testing.T) {
	g := NewRNG(99)
	for i := 0; i < 17; i++ {
		g.Float64() // advance into the sequence
	}
	g.Reseed(5)
	fresh := NewRNG(5)
	for i := 0; i < 32; i++ {
		if got, want := g.Int63(), fresh.Int63(); got != want {
			t.Fatalf("draw %d after Reseed = %d, want %d", i, got, want)
		}
	}
}
