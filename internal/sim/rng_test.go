package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBernoulliExtremes(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if g.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(p<0) returned true")
		}
		if !g.Bernoulli(1.5) {
			t.Fatal("Bernoulli(p>1) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	c := 0
	for i := 0; i < n; i++ {
		if g.Bernoulli(0.3) {
			c++
		}
	}
	got := float64(c) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %v", got)
	}
}

func TestUniformRangeBounds(t *testing.T) {
	g := NewRNG(3)
	f := func(a, b float64) bool {
		// Constrain to the dBm-scale magnitudes the simulator uses;
		// astronomically large ranges overflow hi-lo and are out of scope.
		lo := math.Mod(a, 1e6)
		hi := math.Mod(b, 1e6)
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		v := g.UniformRange(lo, hi)
		return v >= lo && (v < hi || lo == hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialBounds(t *testing.T) {
	g := NewRNG(5)
	f := func(n int, p float64) bool {
		if n < 0 {
			n = -n
		}
		n %= 5000
		p = math.Mod(math.Abs(p), 1)
		c := g.Binomial(n, p)
		return c >= 0 && c <= n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialMeanSmallAndLargeN(t *testing.T) {
	g := NewRNG(11)
	for _, n := range []int{32, 1000} { // exercises both code paths
		const trials = 20000
		p := 0.01
		sum := 0
		for i := 0; i < trials; i++ {
			sum += g.Binomial(n, p)
		}
		mean := float64(sum) / trials
		want := float64(n) * p
		if math.Abs(mean-want) > 0.15*want+0.02 {
			t.Errorf("Binomial(%d, %v) mean = %v, want ~%v", n, p, mean, want)
		}
	}
}

func TestBinomialDegenerate(t *testing.T) {
	g := NewRNG(2)
	if got := g.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := g.Binomial(100, 0); got != 0 {
		t.Errorf("Binomial(100, 0) = %d", got)
	}
	if got := g.Binomial(100, 1); got != 100 {
		t.Errorf("Binomial(100, 1) = %d", got)
	}
}

func TestGaussianMoments(t *testing.T) {
	g := NewRNG(13)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := g.Gaussian(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestTicker(t *testing.T) {
	k := NewKernel(1)
	n := 0
	tk := k.NewTicker(10*Millisecond.Duration(), func() { n++ })
	k.RunUntil(55 * Millisecond)
	if n != 5 {
		t.Errorf("ticks = %d, want 5", n)
	}
	tk.Stop()
	k.RunUntil(200 * Millisecond)
	if n != 5 {
		t.Errorf("ticks after Stop = %d, want 5", n)
	}
	tk.Stop() // idempotent
}

func TestTickerStopFromCallback(t *testing.T) {
	k := NewKernel(1)
	n := 0
	var tk *Ticker
	tk = k.NewTicker(Millisecond.Duration(), func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	k.RunUntil(Second)
	if n != 3 {
		t.Errorf("ticks = %d, want 3", n)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	k := NewKernel(1)
	k.NewTicker(0, func() {})
}
