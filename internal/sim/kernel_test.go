package sim

import (
	"testing"
	"time"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(30*Microsecond, func() { got = append(got, 3) })
	k.At(10*Microsecond, func() { got = append(got, 1) })
	k.At(20*Microsecond, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if k.Now() != 30*Microsecond {
		t.Errorf("Now() = %v, want 30µs", k.Now())
	}
}

func TestKernelSameInstantFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5*Millisecond, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant order = %v, want FIFO", got)
		}
	}
}

func TestKernelAfterSchedulesRelative(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.At(1*Second, func() {
		k.After(250*time.Millisecond, func() { at = k.Now() })
	})
	k.Run()
	if want := 1*Second + 250*Millisecond; at != want {
		t.Errorf("After fired at %v, want %v", at, want)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.At(1*Second, func() { fired = true })
	k.Cancel(e)
	if !e.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	k.Cancel(e)
	k.Cancel(Event{})
}

func TestKernelCancelFromInsideEvent(t *testing.T) {
	k := NewKernel(1)
	fired := false
	var victim Event
	k.At(1*Microsecond, func() { k.Cancel(victim) })
	victim = k.At(2*Microsecond, func() { fired = true })
	k.Run()
	if fired {
		t.Error("event cancelled by earlier event still fired")
	}
}

func TestKernelCancelAfterFireIsNoOp(t *testing.T) {
	k := NewKernel(1)
	e1 := k.At(1*Microsecond, func() {})
	k.Run()
	// e1's node has been recycled; this second event likely reuses it.
	fired := false
	e2 := k.At(2*Microsecond, func() { fired = true })
	k.Cancel(e1) // stale handle: must not kill e2
	k.Run()
	if !fired {
		t.Fatal("cancelling a fired event's stale handle cancelled a later event")
	}
	// Cancelling the stale handle again, and e2's handle after it fired,
	// are equally harmless.
	k.Cancel(e1)
	k.Cancel(e2)
	if e1.Canceled() || e2.Canceled() {
		t.Error("Canceled() = true for completed incarnations")
	}
}

func TestKernelDoubleCancelWithReuse(t *testing.T) {
	k := NewKernel(1)
	e1 := k.At(1*Microsecond, func() { t.Error("cancelled event fired") })
	k.Cancel(e1)
	if !e1.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	k.Cancel(e1) // double-cancel while still queued: no-op
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancelling the only event, want 0", k.Pending())
	}
	k.Run() // collects the cancelled node into the pool
	fired := false
	k.At(1*Microsecond, func() { fired = true })
	k.Cancel(e1) // triple-cancel through a recycled node: no-op
	k.Run()
	if !fired {
		t.Fatal("stale double-cancel killed an unrelated event")
	}
}

func TestKernelEventPoolRecyclesNodes(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 100; i++ {
		k.After(time.Microsecond, func() {})
		k.Run()
	}
	if len(k.free) == 0 {
		t.Fatal("event pool empty after fire/recycle churn")
	}
	// Steady-state churn must not grow the pool without bound.
	if len(k.free) > 4 {
		t.Fatalf("pool holds %d nodes after serial churn, want a handful", len(k.free))
	}
}

func TestKernelCancelInsideOwnCallback(t *testing.T) {
	k := NewKernel(1)
	var self Event
	self = k.At(1*Microsecond, func() { k.Cancel(self) }) // fires, then cancels itself: no-op
	fired := false
	k.At(2*Microsecond, func() { fired = true })
	k.Run()
	if !fired {
		t.Fatal("self-cancel inside callback affected a later event")
	}
}

func TestKernelRunUntilAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.At(1*Second, func() { fired++ })
	k.At(3*Second, func() { fired++ })
	k.RunUntil(2 * Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != 2*Second {
		t.Errorf("Now() = %v, want 2s", k.Now())
	}
	if k.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", k.Pending())
	}
	k.RunUntil(3 * Second) // boundary event fires
	if fired != 2 {
		t.Errorf("fired = %d after second run, want 2", fired)
	}
}

func TestKernelRunForIsRelative(t *testing.T) {
	k := NewKernel(1)
	k.RunFor(1 * time.Second)
	k.RunFor(500 * time.Millisecond)
	if want := 1*Second + 500*Millisecond; k.Now() != want {
		t.Errorf("Now() = %v, want %v", k.Now(), want)
	}
}

func TestKernelStopHaltsRun(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	k.At(1*Second, func() { fired++; k.Stop() })
	k.At(2*Second, func() { fired++ })
	k.Run()
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (Stop should halt the loop)", fired)
	}
}

func TestKernelPastSchedulingPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(1*Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(0, func() {})
	})
	k.Run()
}

func TestKernelEventsScheduleMoreEvents(t *testing.T) {
	k := NewKernel(1)
	count := 0
	var step func()
	step = func() {
		count++
		if count < 100 {
			k.After(time.Millisecond, step)
		}
	}
	k.After(time.Millisecond, step)
	k.Run()
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if k.Now() != 100*Millisecond {
		t.Errorf("Now() = %v, want 100ms", k.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	if got := FromDuration(1500 * time.Microsecond); got != 1500*Microsecond {
		t.Errorf("FromDuration = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v, want 2", got)
	}
	if got := (250 * Millisecond).Duration(); got != 250*time.Millisecond {
		t.Errorf("Duration = %v", got)
	}
	if s := (1 * Second).String(); s != "1s" {
		t.Errorf("String = %q, want 1s", s)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		k := NewKernel(42)
		g := k.Stream("fading")
		out := make([]float64, 0, 16)
		for i := 0; i < 16; i++ {
			out = append(out, g.Float64())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identically seeded runs", i)
		}
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	k := NewKernel(42)
	a := k.Stream("a")
	_ = a.Float64()
	b := k.Stream("b")
	first := b.Float64()

	k2 := NewKernel(42)
	b2 := k2.Stream("b") // no draws from "a" this time
	if got := b2.Float64(); got != first {
		t.Error("stream draw depends on unrelated stream usage")
	}
}

func TestStreamIsCached(t *testing.T) {
	k := NewKernel(7)
	if k.Stream("x") != k.Stream("x") {
		t.Error("Stream returned different objects for same name")
	}
}
