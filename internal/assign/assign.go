// Package assign implements orthogonal channel-assignment baselines in the
// spirit of the related work the paper positions against (Section II):
// TMCP-style greedy assignment that minimises the interference coupling of
// networks forced to share a channel, and MMSN-style round-robin
// frequency spreading. When there are more networks than orthogonal
// channels — the paper's core scarcity argument — some networks must
// share, and the quality of the assignment decides how much that costs.
package assign

import (
	"fmt"
	"math"
	"sort"

	"nonortho/internal/phy"
	"nonortho/internal/topology"
)

// CouplingMatrix holds pairwise interference weights between networks:
// entry (i, j) estimates how much network i's transmitters are heard by
// network j's receivers (linear milliwatts, symmetrised).
type CouplingMatrix [][]float64

// Coupling estimates the pairwise coupling of the given networks under a
// propagation model: for each ordered pair, the summed linear received
// power of every sender of one network at the sink and senders of the
// other. Shadowing is not included — assignment happens before
// deployment measurements exist.
func Coupling(nets []topology.NetworkSpec, model phy.PathLossModel) CouplingMatrix {
	n := len(nets)
	m := make(CouplingMatrix, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := pairCoupling(nets[i], nets[j], model) + pairCoupling(nets[j], nets[i], model)
			m[i][j] = w
			m[j][i] = w
		}
	}
	return m
}

// pairCoupling sums the power of a's senders arriving at b's nodes.
func pairCoupling(a, b topology.NetworkSpec, model phy.PathLossModel) float64 {
	total := 0.0
	for _, s := range a.Senders {
		rx := phy.ReceivedPower(model, s.TxPower, s.Pos, b.Sink.Pos)
		total += rx.Milliwatts()
		for _, t := range b.Senders {
			total += phy.ReceivedPower(model, s.TxPower, s.Pos, t.Pos).Milliwatts()
		}
	}
	return total
}

// Assignment maps network index to a channel index in [0, K).
type Assignment []int

// Cost is the summed coupling between networks that share a channel — the
// quantity the greedy assignment minimises.
func (a Assignment) Cost(m CouplingMatrix) float64 {
	total := 0.0
	for i := range a {
		for j := i + 1; j < len(a); j++ {
			if a[i] == a[j] {
				total += m[i][j]
			}
		}
	}
	return total
}

// Validate checks the assignment's structure.
func (a Assignment) Validate(channels int) error {
	for i, c := range a {
		if c < 0 || c >= channels {
			return fmt.Errorf("assign: network %d on channel %d, want [0, %d)", i, c, channels)
		}
	}
	return nil
}

// Greedy assigns channels TMCP-style: networks are considered in
// descending order of their total coupling (the hardest first), and each
// takes the channel where it adds the least coupling to the networks
// already placed there. With channels >= networks this is an exact
// zero-cost assignment; with fewer channels it packs the least-coupled
// networks together.
func Greedy(m CouplingMatrix, channels int) Assignment {
	n := len(m)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	totals := make([]float64, n)
	for i := range m {
		for j := range m[i] {
			totals[i] += m[i][j]
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return totals[order[a]] > totals[order[b]] })

	out := make(Assignment, n)
	for i := range out {
		out[i] = -1
	}
	for _, net := range order {
		best, bestCost := 0, math.Inf(1)
		for c := 0; c < channels; c++ {
			cost := 0.0
			for other, ch := range out {
				if ch == c {
					cost += m[net][other]
				}
			}
			if cost < bestCost {
				best, bestCost = c, cost
			}
		}
		out[net] = best
	}
	return out
}

// RoundRobin spreads networks across channels MMSN-style (even selection
// by index), ignoring geometry.
func RoundRobin(n, channels int) Assignment {
	out := make(Assignment, n)
	for i := range out {
		out[i] = i % channels
	}
	return out
}

// Apply rewrites each network's frequency according to the assignment and
// the channel table, returning a copy.
func Apply(nets []topology.NetworkSpec, a Assignment, channels []phy.MHz) ([]topology.NetworkSpec, error) {
	if len(a) != len(nets) {
		return nil, fmt.Errorf("assign: %d assignments for %d networks", len(a), len(nets))
	}
	if err := a.Validate(len(channels)); err != nil {
		return nil, err
	}
	out := make([]topology.NetworkSpec, len(nets))
	for i, spec := range nets {
		out[i] = spec
		out[i].Freq = channels[a[i]]
	}
	return out, nil
}
