package assign_test

import (
	"fmt"

	"nonortho/internal/assign"
	"nonortho/internal/phy"
	"nonortho/internal/topology"
)

// Example packs four networks onto two orthogonal channels: the greedy
// assignment pairs the networks that couple least (the far ones), not the
// adjacent ones.
func Example() {
	nets := make([]topology.NetworkSpec, 4)
	for i, x := range []float64{0, 1.5, 20, 21.5} {
		nets[i] = topology.NetworkSpec{
			Sink:    topology.NodeSpec{Pos: phy.Position{X: x}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: x + 0.5}}},
		}
	}

	coupling := assign.Coupling(nets, phy.DefaultPathLoss())
	a := assign.Greedy(coupling, 2)

	fmt.Println("adjacent pair 0,1 separated:", a[0] != a[1])
	fmt.Println("adjacent pair 2,3 separated:", a[2] != a[3])
	fmt.Println("greedy cost below one-channel pile-up:",
		a.Cost(coupling) < assign.Assignment{0, 0, 0, 0}.Cost(coupling))
	// Output:
	// adjacent pair 0,1 separated: true
	// adjacent pair 2,3 separated: true
	// greedy cost below one-channel pile-up: true
}
