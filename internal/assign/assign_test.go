package assign

import (
	"testing"
	"testing/quick"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// pairsAt builds n single-sender networks along the X axis at the given
// positions.
func pairsAt(xs ...float64) []topology.NetworkSpec {
	out := make([]topology.NetworkSpec, len(xs))
	for i, x := range xs {
		out[i] = topology.NetworkSpec{
			Freq:    2460,
			Sink:    topology.NodeSpec{Pos: phy.Position{X: x}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: x + 0.5}}},
		}
	}
	return out
}

func TestCouplingSymmetricAndDistanceMonotone(t *testing.T) {
	nets := pairsAt(0, 2, 10)
	m := Coupling(nets, phy.DefaultPathLoss())
	if m[0][1] != m[1][0] || m[0][2] != m[2][0] {
		t.Error("coupling not symmetric")
	}
	if !(m[0][1] > m[0][2]) {
		t.Errorf("closer pair not more coupled: near %v far %v", m[0][1], m[0][2])
	}
	if m[0][0] != 0 {
		t.Errorf("self-coupling = %v, want 0", m[0][0])
	}
}

func TestGreedyIsZeroCostWhenChannelsSuffice(t *testing.T) {
	nets := pairsAt(0, 1, 2, 3)
	m := Coupling(nets, phy.DefaultPathLoss())
	a := Greedy(m, 4)
	if err := a.Validate(4); err != nil {
		t.Fatal(err)
	}
	if got := a.Cost(m); got != 0 {
		t.Errorf("cost with enough channels = %v, want 0", got)
	}
	// All channels distinct.
	seen := map[int]bool{}
	for _, c := range a {
		if seen[c] {
			t.Fatalf("channel reused despite surplus: %v", a)
		}
		seen[c] = true
	}
}

func TestGreedyPairsTheFarthestNetworks(t *testing.T) {
	// Four networks, two channels: the cheap pairs to co-locate on a
	// channel are (0,3) and (1,2)? No — 0 and 3 are farthest apart, and
	// 1,2 are adjacent... the greedy must avoid pairing neighbours.
	nets := pairsAt(0, 2, 20, 22)
	m := Coupling(nets, phy.DefaultPathLoss())
	a := Greedy(m, 2)
	if err := a.Validate(2); err != nil {
		t.Fatal(err)
	}
	// Optimal: {0,2} and {1,3} (or {0,3},{1,2}) — never {0,1} or {2,3},
	// the adjacent pairs.
	if a[0] == a[1] || a[2] == a[3] {
		t.Errorf("greedy paired adjacent networks: %v (cost %v)", a, a.Cost(m))
	}
	// And the cost must beat naive round-robin... round-robin gives
	// {0,2},{1,3}, which here is actually optimal too; compare against
	// the worst pairing instead.
	worst := Assignment{0, 0, 1, 1}
	if a.Cost(m) >= worst.Cost(m) {
		t.Errorf("greedy cost %v not below worst pairing %v", a.Cost(m), worst.Cost(m))
	}
}

func TestGreedyNeverWorseThanSingleChannelProperty(t *testing.T) {
	// Hard property: the greedy assignment never costs more than piling
	// every network onto one channel (greedy is a heuristic, so it can
	// occasionally lose to a lucky round-robin, but never to the trivial
	// worst case).
	f := func(seed int64, nRaw, chRaw uint8) bool {
		n := int(nRaw%6) + 2
		channels := int(chRaw%3) + 1
		rng := sim.NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.UniformRange(0, 20)
		}
		nets := pairsAt(xs...)
		m := Coupling(nets, phy.DefaultPathLoss())
		g := Greedy(m, channels)
		if err := g.Validate(channels); err != nil {
			return false
		}
		single := make(Assignment, n) // all zeros: one shared channel
		return g.Cost(m) <= single.Cost(m)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGreedyBeatsRoundRobinOnAverage(t *testing.T) {
	// Statistical property: over many random placements, geometry-aware
	// greedy packing costs less than geometry-blind round-robin.
	var greedyTotal, rrTotal float64
	for seed := int64(0); seed < 150; seed++ {
		rng := sim.NewRNG(seed)
		xs := make([]float64, 6)
		for i := range xs {
			xs[i] = rng.UniformRange(0, 20)
		}
		nets := pairsAt(xs...)
		m := Coupling(nets, phy.DefaultPathLoss())
		greedyTotal += Greedy(m, 3).Cost(m)
		rrTotal += RoundRobin(6, 3).Cost(m)
	}
	if greedyTotal >= rrTotal {
		t.Errorf("greedy mean cost %v not below round-robin %v", greedyTotal/150, rrTotal/150)
	}
}

func TestRoundRobin(t *testing.T) {
	a := RoundRobin(5, 2)
	want := Assignment{0, 1, 0, 1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("RoundRobin = %v, want %v", a, want)
		}
	}
}

func TestApplyRewritesFrequencies(t *testing.T) {
	nets := pairsAt(0, 5)
	channels := []phy.MHz{2458, 2473}
	out, err := Apply(nets, Assignment{1, 0}, channels)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Freq != 2473 || out[1].Freq != 2458 {
		t.Errorf("frequencies = %v/%v", out[0].Freq, out[1].Freq)
	}
	// Input untouched.
	if nets[0].Freq != 2460 {
		t.Error("Apply mutated its input")
	}
}

func TestApplyErrors(t *testing.T) {
	nets := pairsAt(0, 5)
	if _, err := Apply(nets, Assignment{0}, []phy.MHz{2458}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Apply(nets, Assignment{0, 5}, []phy.MHz{2458}); err == nil {
		t.Error("out-of-range channel accepted")
	}
}

func TestAssignmentCost(t *testing.T) {
	m := CouplingMatrix{
		{0, 1, 2},
		{1, 0, 4},
		{2, 4, 0},
	}
	// Networks 1 and 2 share: cost = m[1][2] = 4.
	if got := (Assignment{0, 1, 1}).Cost(m); got != 4 {
		t.Errorf("Cost = %v, want 4", got)
	}
	if got := (Assignment{0, 1, 2}).Cost(m); got != 0 {
		t.Errorf("distinct channels cost = %v, want 0", got)
	}
}
