// Package scan implements energy-detect spectrum surveys: a node sweeps a
// set of candidate center frequencies, samples the in-channel energy on
// each for a dwell period, and reports per-channel occupancy statistics.
// Real deployments run exactly this before picking channels; here it also
// feeds the channel-assignment baselines in internal/assign.
package scan

import (
	"fmt"
	"sort"
	"time"

	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// Sample is one energy reading.
type Sample struct {
	At    sim.Time
	Level phy.DBm
}

// ChannelReport summarises one surveyed frequency.
type ChannelReport struct {
	// Freq is the surveyed center frequency.
	Freq phy.MHz
	// Samples taken during the dwell.
	Samples int
	// Mean and Max of the sampled energy.
	Mean phy.DBm
	Max  phy.DBm
	// Occupancy is the fraction of samples above the busy threshold.
	Occupancy float64
}

// Config tunes a survey.
type Config struct {
	// Dwell is the listening time per channel (default 128 ms, i.e.
	// ~1000 RSSI register reads).
	Dwell time.Duration
	// SamplePeriod between energy reads (default 128 µs, one RSSI
	// averaging window).
	SamplePeriod time.Duration
	// BusyThreshold classifies a sample as occupied (default -77 dBm,
	// the CCA default).
	BusyThreshold phy.DBm
}

func (c Config) withDefaults() Config {
	if c.Dwell == 0 {
		c.Dwell = 128 * time.Millisecond
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = 128 * time.Microsecond
	}
	if c.BusyThreshold == 0 {
		c.BusyThreshold = phy.DefaultCCAThreshold
	}
	return c
}

// Scanner surveys the medium from a fixed position. It is a passive
// listener: it never transmits and does not perturb the network.
type Scanner struct {
	kernel *sim.Kernel
	medium *medium.Medium
	id     int
	pos    phy.Position
	cfg    Config
}

// listener adapts the scanner to the medium (it ignores air events; it
// polls energy directly).
func (s *Scanner) Position() phy.Position         { return s.pos }
func (s *Scanner) OnAir(*medium.Transmission)     {}
func (s *Scanner) OffAir(tx *medium.Transmission) { _ = tx }

// NewScanner attaches a passive survey node to the medium.
func NewScanner(k *sim.Kernel, m *medium.Medium, pos phy.Position, cfg Config) *Scanner {
	s := &Scanner{kernel: k, medium: m, pos: pos, cfg: cfg.withDefaults()}
	s.id = m.Attach(s)
	return s
}

// Survey sweeps the frequencies in order, dwelling on each, and invokes
// done with the reports when the sweep completes. The sweep runs on the
// simulation clock; call kernel.Run* to advance it.
func (s *Scanner) Survey(freqs []phy.MHz, done func([]ChannelReport)) {
	if len(freqs) == 0 {
		done(nil)
		return
	}
	reports := make([]ChannelReport, 0, len(freqs))
	var surveyOne func(i int)
	surveyOne = func(i int) {
		freq := freqs[i]
		var (
			sum     float64
			max     = phy.Silent
			busy    int
			samples int
		)
		ticker := s.kernel.NewTicker(s.cfg.SamplePeriod, func() {
			level := s.medium.SensedPower(s.id, freq, nil)
			sum += level.Milliwatts()
			if level > max {
				max = level
			}
			if level > s.cfg.BusyThreshold {
				busy++
			}
			samples++
		})
		s.kernel.After(s.cfg.Dwell, func() {
			ticker.Stop()
			rep := ChannelReport{Freq: freq, Samples: samples, Max: max}
			if samples > 0 {
				rep.Mean = phy.FromMilliwatts(sum / float64(samples))
				rep.Occupancy = float64(busy) / float64(samples)
			}
			reports = append(reports, rep)
			if i+1 < len(freqs) {
				surveyOne(i + 1)
				return
			}
			done(reports)
		})
	}
	surveyOne(0)
}

// Quietest orders the reports by ascending occupancy (mean energy breaks
// ties) — the order a channel-selection protocol would prefer them in.
func Quietest(reports []ChannelReport) []ChannelReport {
	out := make([]ChannelReport, len(reports))
	copy(out, reports)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Occupancy != out[j].Occupancy {
			return out[i].Occupancy < out[j].Occupancy
		}
		return out[i].Mean < out[j].Mean
	})
	return out
}

// String renders a report row.
func (r ChannelReport) String() string {
	return fmt.Sprintf("%v MHz: mean %.1f dBm, max %.1f dBm, occupancy %.0f%%",
		r.Freq, float64(r.Mean), float64(r.Max), 100*r.Occupancy)
}
