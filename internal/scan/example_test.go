package scan_test

import (
	"fmt"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/scan"
	"nonortho/internal/sim"
)

// Example surveys three channels while one of them carries saturated
// traffic, then orders them quietest-first.
func Example() {
	k := sim.NewKernel(1)
	m := medium.New(k, medium.WithFadingSigma(0), medium.WithStaticFadingSigma(0))

	// A busy transmitter on 2461 MHz.
	busy := radio.New(k, m, radio.Config{
		Pos: phy.Position{X: 1}, Freq: 2461, TxPower: 0, Address: 1,
	})
	var blast func()
	blast = func() {
		if k.Now() > sim.FromDuration(400*time.Millisecond) {
			return
		}
		f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 100)}
		if _, err := busy.Transmit(f); err == nil {
			k.After(f.Airtime(), blast)
		}
	}
	blast()

	s := scan.NewScanner(k, m, phy.Position{}, scan.Config{Dwell: 50 * time.Millisecond})
	var reports []scan.ChannelReport
	s.Survey([]phy.MHz{2455, 2461, 2467}, func(r []scan.ChannelReport) { reports = r })
	k.RunUntil(sim.FromDuration(time.Second))

	quiet := scan.Quietest(reports)
	fmt.Println("busiest channel last:", quiet[len(quiet)-1].Freq == 2461)
	fmt.Printf("busy occupancy ≈ 1: %v\n", quiet[len(quiet)-1].Occupancy > 0.9)
	// Output:
	// busiest channel last: true
	// busy occupancy ≈ 1: true
}
