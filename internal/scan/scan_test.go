package scan

import (
	"math"
	"testing"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

func world(t *testing.T) (*sim.Kernel, *medium.Medium) {
	t.Helper()
	k := sim.NewKernel(21)
	m := medium.New(k,
		medium.WithFadingSigma(0),
		medium.WithStaticFadingSigma(0),
		medium.WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))
	return k, m
}

// blaster keeps a radio transmitting back-to-back on its channel.
func blaster(k *sim.Kernel, r *radio.Radio, until time.Duration) {
	var next func()
	next = func() {
		if k.Now() >= sim.FromDuration(until) {
			return
		}
		f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 100)}
		if _, err := r.Transmit(f); err == nil {
			k.After(f.Airtime(), next)
		}
	}
	next()
}

func TestSurveyQuietBand(t *testing.T) {
	k, m := world(t)
	s := NewScanner(k, m, phy.Position{}, Config{Dwell: 10 * time.Millisecond})
	var got []ChannelReport
	s.Survey([]phy.MHz{2458, 2461, 2464}, func(r []ChannelReport) { got = r })
	k.Run()

	if len(got) != 3 {
		t.Fatalf("reports = %d, want 3", len(got))
	}
	for _, r := range got {
		if r.Samples == 0 {
			t.Fatalf("channel %v: no samples", r.Freq)
		}
		if math.Abs(float64(r.Mean-phy.NoiseFloor)) > 0.5 {
			t.Errorf("quiet channel %v mean = %v, want noise floor", r.Freq, r.Mean)
		}
		if r.Occupancy != 0 {
			t.Errorf("quiet channel %v occupancy = %v, want 0", r.Freq, r.Occupancy)
		}
	}
}

func TestSurveyDetectsOccupiedChannel(t *testing.T) {
	k, m := world(t)
	tx := radio.New(k, m, radio.Config{Pos: phy.Position{X: 1}, Freq: 2461, TxPower: 0, Address: 1})
	blaster(k, tx, 200*time.Millisecond)

	s := NewScanner(k, m, phy.Position{}, Config{Dwell: 20 * time.Millisecond})
	var got []ChannelReport
	s.Survey([]phy.MHz{2458, 2461, 2464}, func(r []ChannelReport) { got = r })
	k.RunUntil(sim.FromDuration(time.Second))

	if len(got) != 3 {
		t.Fatalf("reports = %d, want 3", len(got))
	}
	byFreq := map[phy.MHz]ChannelReport{}
	for _, r := range got {
		byFreq[r.Freq] = r
	}
	busy := byFreq[2461]
	if busy.Occupancy < 0.9 {
		t.Errorf("occupied channel occupancy = %v, want ≈ 1", busy.Occupancy)
	}
	if math.Abs(float64(busy.Max)+40) > 0.5 {
		t.Errorf("occupied channel max = %v, want ≈ -40 (1 m at 0 dBm)", busy.Max)
	}
	// Adjacent channel 3 MHz away sees the filtered leak (-57) above the
	// busy threshold is false (-57 < -77? no, -57 > -77): it IS occupied
	// energy-wise. The 2464 channel also leaks: both flanks show energy.
	if byFreq[2458].Occupancy < 0.5 {
		t.Errorf("flank channel occupancy = %v, want leak detected", byFreq[2458].Occupancy)
	}
}

func TestQuietestOrdering(t *testing.T) {
	reports := []ChannelReport{
		{Freq: 2458, Occupancy: 0.5, Mean: -60},
		{Freq: 2461, Occupancy: 0.0, Mean: -95},
		{Freq: 2464, Occupancy: 0.0, Mean: -99},
		{Freq: 2467, Occupancy: 0.9, Mean: -50},
	}
	q := Quietest(reports)
	want := []phy.MHz{2464, 2461, 2458, 2467}
	for i, r := range q {
		if r.Freq != want[i] {
			t.Fatalf("order = %v, want %v", q, want)
		}
	}
	// Input not mutated.
	if reports[0].Freq != 2458 {
		t.Error("Quietest mutated its input")
	}
}

func TestSurveyEmpty(t *testing.T) {
	k, m := world(t)
	s := NewScanner(k, m, phy.Position{}, Config{})
	called := false
	s.Survey(nil, func(r []ChannelReport) {
		called = true
		if r != nil {
			t.Errorf("reports = %v, want nil", r)
		}
	})
	k.Run()
	if !called {
		t.Error("done not invoked for empty survey")
	}
}

func TestReportString(t *testing.T) {
	r := ChannelReport{Freq: 2461, Mean: -80.5, Max: -55.2, Occupancy: 0.25}
	s := r.String()
	if s == "" || len(s) < 20 {
		t.Errorf("String = %q", s)
	}
}
