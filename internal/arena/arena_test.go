package arena_test

import (
	"testing"
	"time"

	"nonortho/internal/arena"
	"nonortho/internal/frame"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// runCell stands up a small two-network cell, runs it, and returns its
// per-network goodput — the kind of result every experiment driver reads
// off a leased core before releasing it.
func runCell(seed int64, ar *arena.Arena) []float64 {
	tb := testbed.New(testbed.Options{Seed: seed, Arena: ar})
	defer tb.Close()
	for i := 0; i < 2; i++ {
		spec := topology.NetworkSpec{
			Freq: 2458 + phy.MHz(3*i),
			Sink: topology.NodeSpec{Pos: phy.Position{X: 2 * float64(i)}},
		}
		for j := 0; j < 2; j++ {
			spec.Senders = append(spec.Senders, topology.NodeSpec{
				Pos: phy.Position{X: 2*float64(i) + 0.5, Y: 0.5 * float64(j)},
			})
		}
		tb.AddNetwork(spec, testbed.NetworkConfig{})
	}
	tb.Run(500*time.Millisecond, 500*time.Millisecond)
	return tb.PerNetworkThroughput()
}

// TestRecycledCoreBitIdentical is the arena's determinism contract: a cell
// must produce bit-identical results on a fresh core, a recycled core (same
// seed and different seed in between), and no arena at all.
func TestRecycledCoreBitIdentical(t *testing.T) {
	want := runCell(42, nil) // no arena: the reference

	ar := arena.New()
	fresh := runCell(42, ar)    // builds the core
	_ = runCell(7, ar)          // dirty it with a different seed's cell
	recycled := runCell(42, ar) // reuse after reset

	for i := range want {
		if fresh[i] != want[i] {
			t.Errorf("network %d: fresh-core %v != arena-free %v", i, fresh[i], want[i])
		}
		if recycled[i] != want[i] {
			t.Errorf("network %d: recycled-core %v != arena-free %v", i, recycled[i], want[i])
		}
	}
}

// TestCoreRadioReuse checks the pooling actually happens: a re-leased core
// hands back the same radio structs in creation order.
func TestCoreRadioReuse(t *testing.T) {
	ar := arena.New()
	core := ar.Lease(1)
	r0 := core.NewRadio(radioCfg(0))
	r1 := core.NewRadio(radioCfg(1))
	core.Release()

	again := ar.Lease(2)
	if got := again.NewRadio(radioCfg(5)); got != r0 {
		t.Errorf("first recycled radio is a new struct")
	}
	if got := again.NewRadio(radioCfg(6)); got != r1 {
		t.Errorf("second recycled radio is a new struct")
	}
	// Growing past the pool falls back to fresh construction.
	if got := again.NewRadio(radioCfg(7)); got == r0 || got == r1 {
		t.Errorf("third radio reused a struct already handed out this lease")
	}
	again.Release()
}

func radioCfg(i int) radio.Config {
	return radio.Config{
		Pos:          phy.Position{X: float64(i)},
		Freq:         2460,
		CCAThreshold: phy.DefaultCCAThreshold,
		Address:      frame.Address(1 + i),
	}
}

// TestDoubleReleasePanics: two cells must never share a live core.
func TestDoubleReleasePanics(t *testing.T) {
	ar := arena.New()
	core := ar.Lease(1)
	core.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	core.Release()
}

// runSnapCell is runCell over a shared topology snapshot, the
// configuration under which LeaseTopo may keep the medium's link-loss
// slabs between cells.
func runSnapCell(seed int64, ar *arena.Arena, snap *topology.Snapshot) []float64 {
	tb := testbed.New(testbed.Options{Seed: seed, Arena: ar, Topology: snap})
	defer tb.Close()
	for _, spec := range snap.Networks() {
		tb.AddNetwork(spec, testbed.NetworkConfig{})
	}
	tb.Run(500*time.Millisecond, 500*time.Millisecond)
	return tb.PerNetworkThroughput()
}

// TestLeaseTopoKeepsResultsBitIdentical pins the retained-links lease to
// the same contract as any other recycled core: whether a cell runs on a
// fresh core, a core recycled under the same snapshot (link losses
// retained), or a core dirtied by a different topology in between (full
// reset), its results are bit-identical to the arena-free run.
func TestLeaseTopoKeepsResultsBitIdentical(t *testing.T) {
	newSnap := func(start phy.MHz) *topology.Snapshot {
		snap, err := topology.NewSnapshot(topology.Config{
			Plan: phy.ChannelPlan{
				Start: start, Bandwidth: 9, CFD: 3,
				Centers: []phy.MHz{start, start + 3, start + 6},
			},
			Layout: topology.LayoutColocated,
		}, sim.NewRNG(1), nil)
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	snap := newSnap(2458)
	other := newSnap(2461)

	want := runSnapCell(42, nil, snap) // no arena: the reference

	ar := arena.New()
	fresh := runSnapCell(42, ar, snap)    // builds the core
	retained := runSnapCell(42, ar, snap) // same snapshot: links kept
	_ = runSnapCell(7, ar, other)         // different topology: full reset
	refilled := runSnapCell(42, ar, snap) // links refilled from scratch

	for i := range want {
		for name, got := range map[string][]float64{
			"fresh": fresh, "retained": retained, "refilled": refilled,
		} {
			if got[i] != want[i] {
				t.Errorf("network %d: %s-core %v != arena-free %v", i, name, got[i], want[i])
			}
		}
	}
}
