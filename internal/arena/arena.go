// Package arena pools warm simulation machinery across cells. An
// experiment grid runs thousands of short (configuration, seed, scheme)
// cells, and before the arena existed every one of them paid ~1 ms of
// setup: a fresh kernel, medium, and a radio per node, each dragging in
// event-node pools, transmission free-lists and per-listener cache slabs
// that the previous cell had already grown to size.
//
// An Arena keeps released Cores — a kernel/medium pair plus the radios
// ever built on it — and leases them to new cells. Leasing resets the
// kernel (clock, queue, reseeded streams), the medium (listeners, caches,
// free-lists kept), and hands radios back out in creation order, so a
// recycled core is bit-identical in behaviour to a freshly constructed
// one: cells produce the same results whether they run on a new core, a
// reused core, or no arena at all, regardless of which worker released
// the core they happen to lease. The arena itself is safe for concurrent
// Lease/Release from the parallel engine's workers; a leased Core is
// single-threaded like everything else in the simulation.
package arena

import (
	"sync"

	"nonortho/internal/medium"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// Arena is a concurrency-safe pool of released Cores.
type Arena struct {
	mu    sync.Mutex
	cores []*Core
}

// New returns an empty arena.
func New() *Arena { return &Arena{} }

// Core is one cell's worth of simulation machinery: the kernel and medium
// every component binds to, plus the recycled radios built on them. A Core
// belongs to exactly one cell between Lease and Release.
type Core struct {
	Kernel *sim.Kernel
	Medium *medium.Medium

	owner  *Arena
	radios []*radio.Radio
	used   int
	// topo is the topology identity the current cell declared via
	// LeaseTopo (nil when leased plainly). A lease whose key equals the
	// previous cell's keeps the medium's per-link loss slabs.
	topo any
}

// Lease returns a core reset for the given seed and medium options —
// recycled from the pool when one is available, freshly built otherwise.
// The caller owns the core until Release.
func (a *Arena) Lease(seed int64, mopts ...medium.Option) *Core {
	return a.LeaseTopo(seed, nil, mopts...)
}

// LeaseTopo is Lease for sweeps that run many cells over one immutable
// topology: topo declares the cell's topology identity (any comparable
// value; the shared *topology.Snapshot pointer is the canonical key).
// When the recycled core's previous cell declared the same non-nil key,
// the medium resets via ResetKeepLinks and the new cell's link budgets
// reuse the previous cell's path losses instead of refilling the matrix
// pair by pair. Equal keys must imply bit-identical loss configuration —
// same placements, same path-loss model or provider — which a shared
// snapshot guarantees. Results are bit-identical either way; the key only
// decides how much setup work the lease skips.
func (a *Arena) LeaseTopo(seed int64, topo any, mopts ...medium.Option) *Core {
	a.mu.Lock()
	var c *Core
	if n := len(a.cores); n > 0 {
		c = a.cores[n-1]
		a.cores[n-1] = nil
		a.cores = a.cores[:n-1]
	}
	a.mu.Unlock()
	if c == nil {
		k := sim.NewKernel(seed)
		return &Core{Kernel: k, Medium: medium.New(k, mopts...), owner: a, topo: topo}
	}
	keep := topo != nil && c.topo == topo
	c.owner = a
	c.topo = topo
	// Kernel first: the medium re-leases its fading/shadowing streams from
	// the kernel, which must already be rewound to the new seed.
	c.Kernel.Reset(seed)
	if keep {
		c.Medium.ResetKeepLinks(mopts...)
	} else {
		c.Medium.Reset(mopts...)
	}
	c.used = 0
	return c
}

// NewRadio builds or recycles a radio attached to the core's medium.
// Radios are handed out in creation order, so a cell leasing a recycled
// core reuses the same structs, re-initialised, in the same sequence its
// nodes were built — Reinit makes each one indistinguishable from a fresh
// radio.New.
func (c *Core) NewRadio(cfg radio.Config) *radio.Radio {
	if c.used < len(c.radios) {
		r := c.radios[c.used]
		c.used++
		r.Reinit(c.Kernel, c.Medium, cfg)
		return r
	}
	r := radio.New(c.Kernel, c.Medium, cfg)
	c.radios = append(c.radios, r)
	c.used++
	return r
}

// Release returns the core to its arena for the next cell. The caller
// must be completely done with the cell — kernel, medium, and every radio
// leased from the core may be handed to another goroutine's cell
// immediately. Double release is a programming error; Release panics
// rather than let two cells share live state.
func (c *Core) Release() {
	a := c.owner
	if a == nil {
		panic("arena: Core released twice")
	}
	c.owner = nil
	a.mu.Lock()
	a.cores = append(a.cores, c)
	a.mu.Unlock()
}
