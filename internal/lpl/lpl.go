// Package lpl implements a preamble-sampling low-power-listening MAC in
// the B-MAC/X-MAC family: receivers sleep almost always and wake every
// check interval for a single energy sample (a CCA); senders precede each
// data frame with a strobe train long enough to span the receivers' check
// interval, so a sampling receiver finds energy, stays awake, decodes a
// strobe carrying its address and waits for the data frame.
//
// The wake decision is an energy-vs-threshold comparison — the very same
// mechanism the paper studies for CSMA. On non-orthogonal channel plans,
// neighbour-channel leakage above the threshold causes FALSE WAKEUPS: the
// receiver burns listen energy for traffic it can never decode. A
// DCN-style adaptive threshold (above the filtered foreign energy, below
// co-channel strobe RSSI) removes them; the lpl experiment quantifies it.
package lpl

import (
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// Defaults of the LPL scheme.
const (
	// DefaultCheckInterval is the receiver's sampling period.
	DefaultCheckInterval = 100 * time.Millisecond
	// StrobePayload marks strobe frames (empty payload, command type
	// would clash with association; a 1-byte marker keeps it simple).
	strobeMarker = 0xAA
	// wakeListen is how long a woken receiver waits for a decodable
	// strobe before declaring the wakeup false and going back to sleep.
	wakeListen = 12 * time.Millisecond
)

// Receiver is a duty-cycled LPL listener.
type Receiver struct {
	kernel *sim.Kernel
	radio  *radio.Radio

	// CheckInterval is the sampling period.
	CheckInterval time.Duration
	// WakeThreshold is the energy level that keeps the radio awake.
	WakeThreshold phy.DBm

	wakeups      int
	falseWakeups int
	received     int

	awake   bool
	pending sim.Event

	// OnReceive delivers data frames addressed to this node.
	OnReceive func(radio.Reception)
}

// NewReceiver builds an LPL receiver on the radio; Start begins sampling.
func NewReceiver(k *sim.Kernel, r *radio.Radio, checkInterval time.Duration, threshold phy.DBm) *Receiver {
	if checkInterval <= 0 {
		checkInterval = DefaultCheckInterval
	}
	rx := &Receiver{
		kernel:        k,
		radio:         r,
		CheckInterval: checkInterval,
		WakeThreshold: threshold,
	}
	r.OnReceive = rx.handle
	return rx
}

// Radio exposes the receiver's radio.
func (rx *Receiver) Radio() *radio.Radio { return rx.radio }

// Wakeups, FalseWakeups and Received report the LPL counters.
func (rx *Receiver) Wakeups() int { return rx.wakeups }

// FalseWakeups counts wakeups that decoded nothing for this node.
func (rx *Receiver) FalseWakeups() int { return rx.falseWakeups }

// Received counts data frames delivered.
func (rx *Receiver) Received() int { return rx.received }

// Start begins the sleep/sample cycle.
func (rx *Receiver) Start() {
	rx.radio.SetOff()
	rx.kernel.NewTicker(rx.CheckInterval, rx.sample)
}

// sample is one check: wake, one CCA-length listen, sleep unless energy.
func (rx *Receiver) sample() {
	if rx.awake {
		return // already up servicing a wakeup
	}
	rx.radio.SetOn()
	rx.kernel.After(frame.CCATime, func() {
		if rx.awake {
			return
		}
		if rx.radio.SensedPower() <= rx.WakeThreshold {
			rx.radio.SetOff()
			return
		}
		// Energy found: stay awake until a strobe names us or the listen
		// window expires (a false wakeup).
		rx.awake = true
		rx.wakeups++
		rx.pending = rx.kernel.After(wakeListen, func() {
			rx.falseWakeups++
			rx.sleep()
		})
	})
}

func (rx *Receiver) sleep() {
	rx.awake = false
	rx.kernel.Cancel(rx.pending)
	rx.pending = sim.Event{}
	rx.radio.SetOff()
}

// handle processes receptions while awake.
func (rx *Receiver) handle(rcv radio.Reception) {
	if !rcv.CRCOK || rcv.Frame.Dst != rx.radio.Address() {
		return
	}
	if isStrobe(rcv.Frame) {
		// A strobe for us: extend the awake window until the data frame.
		rx.kernel.Cancel(rx.pending)
		rx.pending = rx.kernel.After(3*wakeListen, func() {
			rx.falseWakeups++
			rx.sleep()
		})
		return
	}
	// The data frame itself.
	rx.received++
	if rx.OnReceive != nil {
		rx.OnReceive(rcv)
	}
	rx.sleep()
}

func isStrobe(f *frame.Frame) bool {
	return f.Type == frame.TypeData && len(f.Payload) == 1 && f.Payload[0] == strobeMarker
}

// Sender transmits LPL frames: a strobe train spanning the receivers'
// check interval, then the data frame.
type Sender struct {
	kernel *sim.Kernel
	radio  *radio.Radio

	// CheckInterval must match the receivers' setting.
	CheckInterval time.Duration

	sent int
	busy bool
}

// NewSender builds an LPL sender (always-on radio; LPL spends the
// receivers' energy budget, not the senders').
func NewSender(k *sim.Kernel, r *radio.Radio, checkInterval time.Duration) *Sender {
	if checkInterval <= 0 {
		checkInterval = DefaultCheckInterval
	}
	return &Sender{kernel: k, radio: r, CheckInterval: checkInterval}
}

// Radio exposes the sender's radio.
func (s *Sender) Radio() *radio.Radio { return s.radio }

// Sent counts completed data transmissions.
func (s *Sender) Sent() int { return s.sent }

// Busy reports whether a strobe train is in progress.
func (s *Sender) Busy() bool { return s.busy }

// Send strobes for one check interval plus margin and then transmits the
// payload to dst. Returns false when a send is already in progress.
func (s *Sender) Send(dst frame.Address, payload []byte) bool {
	if s.busy {
		return false
	}
	s.busy = true
	deadline := s.kernel.Now() + sim.FromDuration(s.CheckInterval) +
		sim.FromDuration(2*frame.CCATime)
	strobe := func() *frame.Frame {
		return &frame.Frame{
			Type:    frame.TypeData,
			Src:     s.radio.Address(),
			Dst:     dst,
			Payload: []byte{strobeMarker},
		}
	}
	var pump func()
	pump = func() {
		if s.kernel.Now() >= deadline {
			data := &frame.Frame{
				Type:    frame.TypeData,
				Src:     s.radio.Address(),
				Dst:     dst,
				Payload: payload,
			}
			if tx, err := s.radio.Transmit(data); err == nil {
				s.kernel.At(tx.End, func() {
					s.sent++
					s.busy = false
				})
			} else {
				s.busy = false
			}
			return
		}
		f := strobe()
		if tx, err := s.radio.Transmit(f); err == nil {
			s.kernel.At(tx.End, pump)
		} else {
			s.busy = false
		}
	}
	pump()
	return true
}

// attachable check: both endpoints are plain medium listeners.
var _ medium.Listener = (*radio.Radio)(nil)
