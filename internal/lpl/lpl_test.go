package lpl

import (
	"testing"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

func world(t *testing.T) (*sim.Kernel, *medium.Medium) {
	t.Helper()
	k := sim.NewKernel(51)
	m := medium.New(k,
		medium.WithFadingSigma(0),
		medium.WithStaticFadingSigma(0))
	return k, m
}

func newRadio(k *sim.Kernel, m *medium.Medium, addr frame.Address, x float64, f phy.MHz) *radio.Radio {
	return radio.New(k, m, radio.Config{
		Pos:          phy.Position{X: x},
		Freq:         f,
		TxPower:      0,
		CCAThreshold: phy.DefaultCCAThreshold,
		Address:      addr,
	})
}

func TestLPLDeliversWhileMostlyAsleep(t *testing.T) {
	k, m := world(t)
	snd := NewSender(k, newRadio(k, m, 1, 0, 2460), 100*time.Millisecond)
	rcv := NewReceiver(k, newRadio(k, m, 2, 1, 2460), 100*time.Millisecond, -77)
	rcv.Start()

	// Send three frames spaced out.
	for i := 0; i < 3; i++ {
		i := i
		k.After(time.Duration(1+i)*time.Second, func() {
			if !snd.Send(2, make([]byte, 32)) {
				t.Error("sender busy unexpectedly")
			}
		})
	}
	k.RunUntil(sim.FromDuration(6 * time.Second))

	if rcv.Received() != 3 {
		t.Errorf("received = %d, want 3", rcv.Received())
	}
	if snd.Sent() != 3 {
		t.Errorf("sent = %d, want 3", snd.Sent())
	}
	if rcv.FalseWakeups() != 0 {
		t.Errorf("false wakeups = %d on a quiet channel, want 0", rcv.FalseWakeups())
	}
	// The receiver slept almost the whole run: its energy must be a small
	// fraction of an always-on radio's.
	e := rcv.Radio().EnergyReport()
	alwaysOn := phy.EnergyMillijoules(phy.RxCurrentMA, 6)
	if e.Millijoules > 0.35*alwaysOn {
		t.Errorf("receiver energy %.1f mJ, want well below always-on %.1f mJ",
			e.Millijoules, alwaysOn)
	}
	if e.OffSeconds < 4 {
		t.Errorf("OffSeconds = %.1f, want mostly asleep", e.OffSeconds)
	}
}

func TestLPLSenderBusyRejectsOverlappingSend(t *testing.T) {
	k, m := world(t)
	snd := NewSender(k, newRadio(k, m, 1, 0, 2460), 100*time.Millisecond)
	if !snd.Send(2, make([]byte, 16)) {
		t.Fatal("first send rejected")
	}
	if snd.Send(2, make([]byte, 16)) {
		t.Fatal("overlapping send accepted")
	}
	k.RunUntil(sim.FromDuration(time.Second))
	if !snd.Send(2, make([]byte, 16)) {
		t.Error("send after completion rejected")
	}
	k.Run()
}

func TestLPLFalseWakeupsFromInterChannelEnergy(t *testing.T) {
	k, m := world(t)
	// A saturated neighbour 3 MHz away, 2 m from the receivers: its
	// filtered leakage (≈ -75 dBm) exceeds the -77 dBm wake threshold but
	// stays far below co-channel strobe levels.
	jam := newRadio(k, m, 9, 3, 2463)
	var blast func()
	blast = func() {
		if k.Now() >= sim.FromDuration(5*time.Second) {
			return
		}
		f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 100)}
		if _, err := jam.Transmit(f); err == nil {
			k.After(f.Airtime(), blast)
		}
	}
	blast()

	naive := NewReceiver(k, newRadio(k, m, 2, 1, 2460), 100*time.Millisecond, -77)
	adaptive := NewReceiver(k, newRadio(k, m, 3, 1, 2460), 100*time.Millisecond, -50)
	naive.Start()
	adaptive.Start()
	k.RunUntil(sim.FromDuration(5 * time.Second))

	if naive.FalseWakeups() < 30 {
		t.Errorf("naive false wakeups = %d, want ~every check (≈50)", naive.FalseWakeups())
	}
	if adaptive.FalseWakeups() != 0 {
		t.Errorf("adaptive false wakeups = %d, want 0", adaptive.FalseWakeups())
	}
	// The energy gap is the point.
	en := naive.Radio().EnergyReport().Millijoules
	ea := adaptive.Radio().EnergyReport().Millijoules
	if ea >= 0.7*en {
		t.Errorf("adaptive energy %.1f mJ not well below naive %.1f mJ", ea, en)
	}
}

func TestLPLAdaptiveStillReceivesOwnTraffic(t *testing.T) {
	k, m := world(t)
	// Neighbour jamming plus real traffic: the raised threshold must not
	// deafen the receiver to its own sender's strobes (the wake sample
	// sees the strobes' full co-channel energy, well above -50).
	jam := newRadio(k, m, 9, 3, 2463)
	var blast func()
	blast = func() {
		if k.Now() >= sim.FromDuration(6*time.Second) {
			return
		}
		f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 100)}
		if _, err := jam.Transmit(f); err == nil {
			k.After(f.Airtime(), blast)
		}
	}
	blast()

	snd := NewSender(k, newRadio(k, m, 1, 0, 2460), 100*time.Millisecond)
	rcv := NewReceiver(k, newRadio(k, m, 2, 1, 2460), 100*time.Millisecond, -50)
	rcv.Start()
	for i := 0; i < 2; i++ {
		i := i
		k.After(time.Duration(1+2*i)*time.Second, func() { snd.Send(2, make([]byte, 32)) })
	}
	k.RunUntil(sim.FromDuration(6 * time.Second))

	if rcv.Received() != 2 {
		t.Errorf("received = %d, want 2 despite the raised threshold", rcv.Received())
	}
}
