//go:build race

package experiments

// raceEnabled reports whether this binary was built with the race
// detector. The 17-table golden matrix renders every experiment twice and
// takes minutes under race instrumentation on a single core; the race
// coverage it would add is already provided by the per-figure
// worker-invariance tests above, so the matrix skips itself when race is
// on (see TestGoldenTablesWorkerInvariant).
const raceEnabled = true
