package experiments

import (
	"testing"
	"time"
)

// Worker-count independence: every experiment's rendered table must be
// byte-identical no matter how many workers run the grid. Each cell owns
// its kernel, medium, and RNG streams, and the drivers aggregate in
// cell-index order after the join, so the schedule of workers must not be
// observable in the output.
func determinismOpts(seed int64) Options {
	return Options{
		Seed:    seed,
		Seeds:   3,
		Warmup:  1 * time.Second,
		Measure: 1 * time.Second,
	}
}

func assertWorkerInvariant(t *testing.T, name string, run func(Options) string) {
	t.Helper()
	for _, seed := range []int64{1, 7, 42} {
		serial := determinismOpts(seed)
		serial.Workers = 1
		fanned := determinismOpts(seed)
		fanned.Workers = 8
		got1 := run(serial)
		got8 := run(fanned)
		if got1 != got8 {
			t.Errorf("%s seed %d: Workers=1 and Workers=8 outputs differ\n--- Workers=1 ---\n%s\n--- Workers=8 ---\n%s",
				name, seed, got1, got8)
		}
	}
}

func TestFig19WorkerCountInvariant(t *testing.T) {
	assertWorkerInvariant(t, "Fig19", func(o Options) string {
		_, tbl := Fig19(o)
		return tbl.String()
	})
}

func TestFig16WorkerCountInvariant(t *testing.T) {
	assertWorkerInvariant(t, "Fig16", func(o Options) string {
		_, tbl := Fig16(o)
		return tbl.String()
	})
}

func TestFaultEvalWorkerCountInvariant(t *testing.T) {
	assertWorkerInvariant(t, "FaultEval", func(o Options) string {
		_, tbl := FaultEval(o)
		return tbl.String()
	})
}

func TestTableIWorkerCountInvariant(t *testing.T) {
	assertWorkerInvariant(t, "TableI", func(o Options) string {
		_, tbl := TableI(o)
		return tbl.String()
	})
}

func TestCoexistenceWorkerCountInvariant(t *testing.T) {
	assertWorkerInvariant(t, "Coexistence", func(o Options) string {
		_, tbl := Coexistence(o)
		return tbl.String()
	})
}

// BenchmarkFig19 measures the headline comparison end to end. Run it at
// contrasting worker counts to see the parallel engine's speedup:
//
//	go test ./internal/experiments -bench=Fig19 -benchtime=3x
func BenchmarkFig19(b *testing.B) {
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			opts := determinismOpts(1)
			opts.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Fig19(opts)
			}
		}
	}
	b.Run("workers=1", bench(1))
	b.Run("workers=4", bench(4))
}
