package experiments

import (
	"testing"
	"time"
)

// Worker-count independence: every experiment's rendered table must be
// byte-identical no matter how many workers run the grid. Each cell owns
// its kernel, medium, and RNG streams, and the drivers aggregate in
// cell-index order after the join, so the schedule of workers must not be
// observable in the output.
func determinismOpts(seed int64) Options {
	return Options{
		Seed:    seed,
		Seeds:   3,
		Warmup:  1 * time.Second,
		Measure: 1 * time.Second,
	}
}

func assertWorkerInvariant(t *testing.T, name string, run func(Options) string) {
	t.Helper()
	for _, seed := range []int64{1, 7, 42} {
		serial := determinismOpts(seed)
		serial.Workers = 1
		fanned := determinismOpts(seed)
		fanned.Workers = 8
		got1 := run(serial)
		got8 := run(fanned)
		if got1 != got8 {
			t.Errorf("%s seed %d: Workers=1 and Workers=8 outputs differ\n--- Workers=1 ---\n%s\n--- Workers=8 ---\n%s",
				name, seed, got1, got8)
		}
	}
}

func TestFig19WorkerCountInvariant(t *testing.T) {
	assertWorkerInvariant(t, "Fig19", func(o Options) string {
		_, tbl := Fig19(o)
		return tbl.String()
	})
}

func TestFig16WorkerCountInvariant(t *testing.T) {
	assertWorkerInvariant(t, "Fig16", func(o Options) string {
		_, tbl := Fig16(o)
		return tbl.String()
	})
}

func TestFaultEvalWorkerCountInvariant(t *testing.T) {
	assertWorkerInvariant(t, "FaultEval", func(o Options) string {
		_, tbl := FaultEval(o)
		return tbl.String()
	})
}

func TestTableIWorkerCountInvariant(t *testing.T) {
	assertWorkerInvariant(t, "TableI", func(o Options) string {
		_, tbl := TableI(o)
		return tbl.String()
	})
}

func TestCoexistenceWorkerCountInvariant(t *testing.T) {
	assertWorkerInvariant(t, "Coexistence", func(o Options) string {
		_, tbl := Coexistence(o)
		return tbl.String()
	})
}

// TestGoldenTablesWorkerInvariant renders 17 golden experiment tables —
// the motivation, CCA-study, DCN-evaluation, headline and extension
// figures the report is built from — at Workers=1 and Workers=8 and
// requires byte-identical output. Everything runs through the cross-cell
// arena (recycled kernels, media, radios) and the dissemination layer in
// its default auto mode, so this is the PR-level assertion that neither
// core recycling, nor the filter's engagement decision, nor the worker
// schedule (which decides *which* recycled core a cell gets) can move a
// single byte of any table.
func TestGoldenTablesWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("renders 17 tables twice; skipped in -short")
	}
	if raceEnabled {
		t.Skip("minutes under the race detector; the per-figure worker-invariance tests cover the parallel paths under race")
	}
	tables := goldenTables()
	if len(tables) != 17 {
		t.Fatalf("expected 17 golden tables, have %d", len(tables))
	}
	for _, tc := range tables {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got1 := tc.run(goldenOpts(1))
			got8 := tc.run(goldenOpts(8))
			if got1 != got8 {
				t.Errorf("%s: Workers=1 and Workers=8 tables differ\n--- Workers=1 ---\n%s\n--- Workers=8 ---\n%s",
					tc.name, got1, got8)
			}
		})
	}
}

// goldenOpts are the short windows the golden-table suites run with.
func goldenOpts(workers int) Options {
	return Options{
		Seed: 1, Seeds: 2,
		Warmup:  time.Second,
		Measure: 500 * time.Millisecond,
		Workers: workers,
	}
}

// goldenTable names one renderable golden table.
type goldenTable struct {
	name string
	run  func(Options) string
}

// goldenTables lists the 17 golden experiment tables shared by the
// worker-invariance and crash/resume identity suites.
func goldenTables() []goldenTable {
	return []goldenTable{
		{"Fig1", func(o Options) string { _, tbl := Fig1(o); return tbl.String() }},
		{"Fig2", func(o Options) string { _, tbl := Fig2(o); return tbl.String() }},
		{"Fig4", func(o Options) string { _, tbl := Fig4(o); return tbl.String() }},
		{"Fig6", func(o Options) string { _, tbl := Fig6(o); return tbl.String() }},
		{"Fig7", func(o Options) string { _, tbl := Fig7(o); return tbl.String() }},
		{"Fig14and15", func(o Options) string { _, t14, t15 := Fig14and15(o); return t14.String() + t15.String() }},
		{"Fig16", func(o Options) string { _, tbl := Fig16(o); return tbl.String() }},
		{"Fig17", func(o Options) string { _, tbl := Fig17(o); return tbl.String() }},
		{"Fig18", func(o Options) string { _, tbl := Fig18(o); return tbl.String() }},
		{"Fig19", func(o Options) string { _, tbl := Fig19(o); return tbl.String() }},
		{"Fig20and21", func(o Options) string { _, t20, t21 := Fig20and21(o); return t20.String() + t21.String() }},
		{"TableI", func(o Options) string { _, tbl := TableI(o); return tbl.String() }},
		{"Fig25", func(o Options) string { _, tbl := Fig25(o); return tbl.String() }},
		{"Fig26", func(o Options) string { _, tbl := Fig26(o); return tbl.String() }},
		{"Fig28", func(o Options) string { _, tbl := Fig28(o); return tbl.String() }},
		{"Fig30", func(o Options) string { _, tbl := Fig30(o); return tbl.String() }},
		{"BandSweep", func(o Options) string { _, tbl := BandSweep(o); return tbl.String() }},
	}
}

// BenchmarkFig19 measures the headline comparison end to end. Run it at
// contrasting worker counts to see the parallel engine's speedup:
//
//	go test ./internal/experiments -bench=Fig19 -benchtime=3x
func BenchmarkFig19(b *testing.B) {
	bench := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			opts := determinismOpts(1)
			opts.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Fig19(opts)
			}
		}
	}
	b.Run("workers=1", bench(1))
	b.Run("workers=4", bench(4))
}
