package experiments

import (
	"time"

	"nonortho/internal/dcn"
	"nonortho/internal/fault"
	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// FaultModel names one injected disturbance of the robustness evaluation.
type FaultModel string

// The fault models evaluated by FaultEval.
const (
	FaultNone     FaultModel = "none"
	FaultJammer   FaultModel = "jammer-burst"
	FaultCrash    FaultModel = "node-crash"
	FaultDrift    FaultModel = "rssi-drift"
	FaultStuckCCA FaultModel = "stuck-cca"
)

// FaultModels lists the models in evaluation order.
func FaultModels() []FaultModel {
	return []FaultModel{FaultNone, FaultJammer, FaultCrash, FaultDrift, FaultStuckCCA}
}

// faultScheme is one channel-access configuration of the comparison.
type faultScheme struct {
	name     string
	scheme   testbed.Scheme
	watchdog bool
}

func faultSchemes() []faultScheme {
	return []faultScheme{
		{"fixed", testbed.SchemeFixed, false},
		{"dcn", testbed.SchemeDCN, false},
		{"dcn+wd", testbed.SchemeDCN, true},
	}
}

// faultTargetIndex is the network the targeted faults (jammer, crash,
// stuck-CCA) hit: the middle channel of the five-network strip, whose
// nodes face inter-channel interference from both sides and therefore
// depend the most on a healthy threshold.
const faultTargetIndex = middleIndex

// watchdogConfig is the guard parameterisation the evaluation uses:
// tighter than the defaults so recovery completes well inside the
// measurement window.
func watchdogConfig() dcn.Config {
	return dcn.Config{
		Watchdog:       true,
		WatchdogPeriod: 200 * time.Millisecond,
		PoisonWindow:   600 * time.Millisecond,
	}
}

// FaultRow is one (model, scheme) cell of the robustness comparison.
type FaultRow struct {
	Model  FaultModel
	Scheme string
	// Overall is the all-networks goodput; Target is the goodput of the
	// network the targeted faults hit.
	Overall, Target float64
	// Recoveries counts watchdog re-initialisations across the target
	// network's adjustors; StuckDetections counts stuck-register
	// detections there.
	Recoveries, StuckDetections int
	// Injected summarises the fault events actually fired.
	Injected fault.Stats
}

// FaultEvalResult backs the fault-injection robustness table.
type FaultEvalResult struct{ Rows []FaultRow }

// Row returns the cell for (model, scheme), or nil.
func (r FaultEvalResult) Row(m FaultModel, scheme string) *FaultRow {
	for i := range r.Rows {
		if r.Rows[i].Model == m && r.Rows[i].Scheme == scheme {
			return &r.Rows[i]
		}
	}
	return nil
}

// faultRun executes one seeded run and returns (overall, target goodput,
// watchdog stats of the target network, injector stats).
func faultRun(seed int64, snap *topology.Snapshot, fs faultScheme, model FaultModel, opts Options) FaultRow {
	tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
	defer tb.Close()
	cfg := testbed.NetworkConfig{Scheme: fs.scheme}
	if fs.watchdog {
		cfg.DCN = watchdogConfig()
	}
	for _, spec := range snap.Networks() {
		tb.AddNetwork(spec, cfg)
	}

	inj := fault.NewInjector(tb.Kernel)
	target := tb.Networks()[faultTargetIndex]
	switch model {
	case FaultNone:
	case FaultJammer:
		// A distant wideband Gilbert–Elliott emitter centered on the target
		// channel — an 802.11-class access point ~25 m away. Every
		// target-network radio locks onto its frames at a weak, nearly
		// uniform RSSI (~-80 dBm), so one burst drives every sender's
		// threshold below the inter-channel energy floor via Eq. 3 and the
		// whole network falls silent. With nobody transmitting, every
		// Eq. 4 window drains empty and the unguarded Adjustor can never
		// relax again. Bursts stop shortly into the measurement window, so
		// what the table shows afterwards is pure retained-state damage.
		j := inj.NewJammer(tb.Medium, fault.JammerConfig{
			Pos:       phy.Position{X: 25},
			Freq:      target.Freq,
			Bandwidth: 22,
			Power:     17,
			MeanBurst: 250 * time.Millisecond,
			MeanGap:   1500 * time.Millisecond,
			Start:     time.Second,
			Stop:      opts.Warmup + 1500*time.Millisecond,
		})
		j.Start()
	case FaultCrash:
		// Two of the target network's senders power-cycle mid-measurement.
		for i, s := range target.Senders {
			if i >= 2 {
				break
			}
			inj.ScheduleCrash(fault.CrashTarget{
				Radio: s.Radio, MAC: s.MAC, Adjustor: s.Adjustor,
			}, opts.Warmup+time.Second+time.Duration(i)*300*time.Millisecond, 1500*time.Millisecond)
		}
	case FaultDrift:
		// Every node's RSSI calibration random-walks independently.
		for _, n := range tb.Networks() {
			for _, s := range append([]*testbed.Node{n.Sink}, n.Senders...) {
				inj.ScheduleDrift(s.Radio, fault.DriftConfig{
					Step:  250 * time.Millisecond,
					Sigma: 1.5,
				})
			}
		}
	case FaultStuckCCA:
		// The target network's registers stick early in the Initializing
		// Phase and release two seconds into the measurement window.
		for _, s := range append([]*testbed.Node{target.Sink}, target.Senders...) {
			inj.ScheduleStuckCCA(s.Radio, 500*time.Millisecond, opts.Warmup+1500*time.Millisecond)
		}
	}

	tb.Run(opts.Warmup, opts.Measure)

	row := FaultRow{
		Model:    model,
		Scheme:   fs.name,
		Overall:  tb.OverallThroughput(),
		Target:   tb.PerNetworkThroughput()[faultTargetIndex],
		Injected: inj.Stats(),
	}
	for _, s := range append([]*testbed.Node{target.Sink}, target.Senders...) {
		if s.Adjustor == nil {
			continue
		}
		w := s.Adjustor.Watchdog()
		row.Recoveries += w.Recoveries()
		row.StuckDetections += w.StuckWriteDetections
	}
	return row
}

// FaultEval runs the robustness evaluation: every fault model against the
// fixed-threshold ZigBee design, the paper's unguarded DCN Adjustor, and
// DCN with the self-healing watchdog. The headline shape: under the
// jammer-burst model the unguarded Adjustor's threshold stays poisoned
// after the burst ends and its throughput degrades toward (or below) the
// default-ZigBee baseline, while the watchdog re-initialises and recovers
// most of the fault-free DCN throughput.
func FaultEval(opts Options) (FaultEvalResult, *Table) {
	opts = opts.withDefaults()
	models := FaultModels()
	schemes := faultSchemes()
	// All (model, scheme) cells of a seed share one topology snapshot.
	topos := snapshotSeeds(opts, topology.Config{
		Plan:   evalPlan(5, 3),
		Layout: topology.LayoutColocated,
	})
	grid := runGrid(opts, len(models)*len(schemes), func(cell int, seed int64) FaultRow {
		return faultRun(seed, topos.at(seed), schemes[cell%len(schemes)], models[cell/len(schemes)], opts)
	})
	var res FaultEvalResult
	for mi, model := range models {
		for si, fs := range schemes {
			var acc FaultRow
			for _, r := range grid[mi*len(schemes)+si] {
				acc.Overall += r.Overall
				acc.Target += r.Target
				acc.Recoveries += r.Recoveries
				acc.StuckDetections += r.StuckDetections
				acc.Injected.Crashes += r.Injected.Crashes
				acc.Injected.Reboots += r.Injected.Reboots
				acc.Injected.DriftSteps += r.Injected.DriftSteps
				acc.Injected.StuckPeriods += r.Injected.StuckPeriods
				acc.Injected.JammerBursts += r.Injected.JammerBursts
			}
			n := float64(opts.Seeds)
			acc.Model, acc.Scheme = model, fs.name
			acc.Overall /= n
			acc.Target /= n
			res.Rows = append(res.Rows, acc)
		}
	}

	t := &Table{
		Title: "Fault injection: throughput under disturbance (5 networks, CFD=3 MHz)",
		Columns: []string{"fault", "scheme", "overall (pkt/s)", "target N2 (pkt/s)",
			"recoveries", "stuck-detects", "events"},
	}
	for _, r := range res.Rows {
		t.AddRow(string(r.Model), r.Scheme, f0(r.Overall), f0(r.Target),
			f0(float64(r.Recoveries)), f0(float64(r.StuckDetections)), faultEvents(r))
	}
	return res, t
}

// faultEvents renders the injected-event summary cell.
func faultEvents(r FaultRow) string {
	s := r.Injected
	switch r.Model {
	case FaultJammer:
		return f0(float64(s.JammerBursts)) + " bursts"
	case FaultCrash:
		return f0(float64(s.Crashes)) + " crashes"
	case FaultDrift:
		return f0(float64(s.DriftSteps)) + " steps"
	case FaultStuckCCA:
		return f0(float64(s.StuckPeriods)) + " sticks"
	}
	return "-"
}
