package experiments

import (
	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// Fig30Row is one network's pair of bars in the wide-band run.
type Fig30Row struct {
	Network string
	Without float64
	With    float64
}

// Fig30Result is the 18 MHz / 7-network experiment.
type Fig30Result struct {
	Rows []Fig30Row
	// MiddleGain and BoundaryGain compare the relaxing gain of the central
	// network against the outermost ones — the paper's explanation for why
	// wider bands benefit more (the middle channel has the most
	// neighbour-channel interference to reclaim).
	MiddleGain   float64
	BoundaryGain float64
}

// Fig30 regenerates Fig. 30: seven networks at CFD = 3 MHz over an 18 MHz
// band, with and without DCN, at a fixed 0 dBm. Shape: every network
// gains; the middle network gains more than the boundary ones.
func Fig30(opts Options) (Fig30Result, *Table) {
	opts = opts.withDefaults()
	res := widebandRun(7, opts)
	t := &Table{
		Title:   "Fig 30: Throughput gain with 7 networks on an 18 MHz band (CFD=3 MHz)",
		Columns: []string{"network", "w/o scheme (pkt/s)", "with scheme (pkt/s)", "gain"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Network, f0(r.Without), f0(r.With), pct(r.With/r.Without-1))
	}
	t.AddRow("middle-vs-boundary", pct(res.MiddleGain), pct(res.BoundaryGain), "")
	return res, t
}

// BandSweepRow is one bandwidth point of the generalisation sweep.
type BandSweepRow struct {
	BandMHz  phy.MHz
	Channels int
	Without  float64
	With     float64
	Gain     float64
}

// BandSweepResult extends Section VII-B: DCN's relaxing gain as the band
// (and with it the number of CFD = 3 MHz channels) grows.
type BandSweepResult struct{ Rows []BandSweepRow }

// BandSweep runs the Section VII-B generalisation for 12/15/18/21 MHz
// bands (5/6/7/8 channels at CFD = 3 MHz). Shape: the overall relaxing
// gain grows with bandwidth, because wider bands contain more middle
// channels with neighbour interference to reclaim.
func BandSweep(opts Options) (BandSweepResult, *Table) {
	opts = opts.withDefaults()
	var res BandSweepResult
	for _, n := range []int{5, 6, 7, 8} {
		r := widebandRun(n, opts)
		var wo, wi float64
		for _, row := range r.Rows {
			wo += row.Without
			wi += row.With
		}
		res.Rows = append(res.Rows, BandSweepRow{
			BandMHz:  phy.MHz((n - 1) * 3),
			Channels: n,
			Without:  wo,
			With:     wi,
			Gain:     wi/wo - 1,
		})
	}
	t := &Table{
		Title:   "Band sweep (Section VII-B): DCN relaxing gain vs bandwidth at CFD=3 MHz",
		Columns: []string{"band (MHz)", "channels", "w/o DCN (pkt/s)", "with DCN (pkt/s)", "gain"},
	}
	for _, r := range res.Rows {
		t.AddRow(f0(float64(r.BandMHz)), f0(float64(r.Channels)), f0(r.Without), f0(r.With), pct(r.Gain))
	}
	return res, t
}

func widebandRun(nChannels int, opts Options) Fig30Result {
	// Both scheme cells of a seed share one topology snapshot.
	topos := snapshotSeeds(opts, topology.Config{
		Plan:   evalPlan(nChannels, 3),
		Layout: topology.LayoutColocated,
	})
	// Cell 0 = fixed threshold, cell 1 = DCN.
	grid := runGrid(opts, 2, func(cell int, seed int64) []float64 {
		snap := topos.at(seed)
		tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
		defer tb.Close()
		scheme := testbed.SchemeFixed
		if cell == 1 {
			scheme = testbed.SchemeDCN
		}
		for _, spec := range snap.Networks() {
			tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: scheme})
		}
		tb.Run(opts.Warmup, opts.Measure)
		return tb.PerNetworkThroughput()
	})
	without := meanRows(grid[0])
	with := meanRows(grid[1])
	res := Fig30Result{}
	for i := range without {
		res.Rows = append(res.Rows, Fig30Row{
			Network: testbed.NetworkLabel(i),
			Without: without[i],
			With:    with[i],
		})
	}
	mid := (nChannels - 1) / 2
	res.MiddleGain = with[mid]/without[mid] - 1
	res.BoundaryGain = (with[0]+with[nChannels-1])/(without[0]+without[nChannels-1]) - 1
	return res
}
