package experiments

import (
	"nonortho/internal/assign"
	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// ScarcityRow is one strategy's outcome in the channel-scarcity study.
type ScarcityRow struct {
	Strategy string
	Total    float64
}

// ScarcityResult backs the orthogonal-scarcity extension experiment.
type ScarcityResult struct {
	Rows []ScarcityRow
	// DCNOverBestOrthogonal is the DCN design's gain over the best
	// orthogonal assignment.
	DCNOverBestOrthogonal float64
}

// Scarcity is an extension quantifying the paper's core scarcity argument
// against the strongest orthogonal baseline. Six networks want channels,
// but the 15 MHz band holds only four orthogonal ones (CFD = 5 MHz), so
// two channels must be shared by two networks each:
//
//   - "orthogonal round-robin" assigns channels geometry-blind
//     (MMSN-style even selection);
//   - "orthogonal greedy" packs the least-coupled networks together
//     (TMCP-style, the related work's answer to scarcity);
//   - "DCN (CFD=3)" gives every network its own non-orthogonal channel.
//
// The shape that must hold: greedy >= round-robin, and DCN beats both —
// no orthogonal assignment can conjure channels that do not exist, which
// is exactly why the paper abandons orthogonality.
func Scarcity(opts Options) (ScarcityResult, *Table) {
	opts = opts.withDefaults()

	orthogonal := []phy.MHz{2458, 2463, 2468, 2473} // 4 channels at CFD=5

	type strategy struct {
		assignFn   func(m assign.CouplingMatrix, nets []topology.NetworkSpec) assign.Assignment
		dcnInstead bool
	}
	strategies := []strategy{
		{assignFn: func(m assign.CouplingMatrix, nets []topology.NetworkSpec) assign.Assignment {
			return assign.RoundRobin(len(nets), len(orthogonal))
		}},
		{assignFn: func(m assign.CouplingMatrix, nets []topology.NetworkSpec) assign.Assignment {
			return assign.Greedy(m, len(orthogonal))
		}},
		{dcnInstead: true},
	}
	// All three strategy cells of a seed share one topology snapshot.
	// Six network clusters; the plan's frequencies are placeholders that
	// the assignment rewrites (frequencies never enter the loss matrix).
	topos := snapshotSeeds(opts, topology.Config{
		Plan:   evalPlan(6, 3),
		Layout: topology.LayoutColocated,
	})
	grid := runGrid(opts, len(strategies), func(cell int, seed int64) float64 {
		st := strategies[cell]
		snap := topos.at(seed)
		nets := snap.Networks()
		scheme := testbed.SchemeFixed
		if st.dcnInstead {
			scheme = testbed.SchemeDCN
		} else {
			m := assign.Coupling(nets, phy.DefaultPathLoss())
			a := st.assignFn(m, nets)
			var err error
			nets, err = assign.Apply(nets, a, orthogonal)
			if err != nil {
				panic(err)
			}
		}
		tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
		defer tb.Close()
		for _, spec := range nets {
			tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: scheme})
		}
		tb.Run(opts.Warmup, opts.Measure)
		return tb.OverallThroughput()
	})
	rr := sum(grid[0]) / float64(opts.Seeds)
	greedy := sum(grid[1]) / float64(opts.Seeds)
	dcnTotal := sum(grid[2]) / float64(opts.Seeds)

	best := greedy
	if rr > best {
		best = rr
	}
	res := ScarcityResult{
		Rows: []ScarcityRow{
			{Strategy: "orthogonal round-robin (6 nets / 4 ch)", Total: rr},
			{Strategy: "orthogonal greedy (TMCP-style)", Total: greedy},
			{Strategy: "DCN (6 nets / 6 ch, CFD=3)", Total: dcnTotal},
		},
		DCNOverBestOrthogonal: dcnTotal/best - 1,
	}

	t := &Table{
		Title:   "Extension: channel scarcity — orthogonal assignment vs non-orthogonal DCN (6 networks, 15 MHz)",
		Columns: []string{"strategy", "total (pkt/s)"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Strategy, f0(r.Total))
	}
	t.AddRow("DCN vs best orthogonal", pct(res.DCNOverBestOrthogonal))
	return res, t
}
