// Package experiments regenerates every table and figure of the paper's
// evaluation. Each FigNN/TableNN function builds the corresponding
// workload on the simulated testbed, runs it (averaging over several
// seeds), and returns both a typed result and a printable table whose rows
// mirror what the paper plots.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"nonortho/internal/arena"
	"nonortho/internal/parallel"
	"nonortho/internal/phy"
	"nonortho/internal/medium"
	"nonortho/internal/sim"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// cellArena pools kernels, media and radios across every simulation cell
// the package runs. Grid drivers execute thousands of short cells; leasing
// warm cores instead of reallocating removes the per-cell setup cost
// (BenchmarkCellSetupArena). Cores reset to a bit-identical fresh state on
// lease, so sharing one arena across all drivers and worker goroutines
// cannot couple cells: results are byte-identical with or without it
// (determinism_test.go asserts this across worker counts).
var cellArena = arena.New()

// newCellTestbed builds one cell's testbed on the shared arena, with the
// run's per-cell budget applied. Every caller must Close the testbed
// when — and only when — all of the cell's results have been read out.
func newCellTestbed(opts Options, o testbed.Options) *testbed.Testbed {
	o.Arena = cellArena
	o.Budget = opts.Budget
	return testbed.New(o)
}

// leaseCore leases a raw kernel/medium core from the shared arena for
// drivers that assemble their networks by hand instead of through the
// testbed, with the run's per-cell budget applied. Callers must Release
// it when the cell's results are read.
func leaseCore(opts Options, seed int64, mopts ...medium.Option) *arena.Core {
	core := cellArena.Lease(seed, mopts...)
	core.Kernel.SetBudget(opts.Budget)
	//lint:ignore leasepair deliberate hand-off: every driver binds this and defers Core.Release
	return core
}

// Options controls experiment execution. The zero value takes defaults
// suitable for regenerating the paper's numbers; benchmarks shrink the
// durations via Quick.
type Options struct {
	// Seed is the base seed; run i uses Seed+i.
	Seed int64
	// Seeds is the number of independent runs averaged (default 3).
	Seeds int
	// Warmup precedes measurement in each run (default 3 s — long enough
	// for the DCN Initializing Phase plus Case II settling).
	Warmup time.Duration
	// Measure is the measurement window per run (default 8 s).
	Measure time.Duration
	// Workers bounds the number of simulation cells run concurrently.
	// Zero means one worker per logical CPU; 1 runs everything inline.
	// Results are independent of the worker count: every cell builds its
	// own kernel, medium and testbed, and all aggregation happens after
	// the join in cell-index order, so output is bit-identical at any
	// setting.
	Workers int
	// Budget bounds each simulation cell's kernel work (fired events
	// and/or virtual time); zero is unlimited. A tripped budget panics
	// the cell with *sim.BudgetError, reported like any cell failure.
	Budget sim.Budget
	// Run, when set, attaches the crash-safety machinery — result store,
	// deterministic retry, keep-going failure collection, cancellation,
	// wall-clock watcher — to every sweep. Nil runs sweeps bare.
	Run *RunControl
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Seeds == 0 {
		o.Seeds = 3
	}
	if o.Warmup == 0 {
		o.Warmup = 3 * time.Second
	}
	if o.Measure == 0 {
		o.Measure = 8 * time.Second
	}
	return o
}

// Quick returns options for fast regression runs (single seed, short
// windows) — used by benchmarks and smoke tests.
func Quick() Options {
	return Options{Seed: 1, Seeds: 1, Warmup: 2 * time.Second, Measure: 3 * time.Second}
}

// workerCount resolves Workers to a concrete pool size.
func (o Options) workerCount() int {
	if o.Workers <= 0 {
		return parallel.DefaultWorkers()
	}
	return o.Workers
}

// runSeeds evaluates run once per seed (opts.Seed+i) across the worker
// pool and returns the results in seed order. run must be self-contained:
// it builds its own kernel/medium/testbed from the seed and touches no
// shared mutable state.
func runSeeds[T any](opts Options, run func(seed int64) T) []T {
	return runEngine(opts, opts.Seeds, func(i int) T {
		return run(opts.Seed + int64(i))
	})
}

// runGrid evaluates run for every (cell, seed) pair of a cells×Seeds grid
// across the worker pool and returns results as [cell][seed], both in
// order. This is the workhorse of the sweep-style drivers: each parameter
// value × seed is an independent simulation.
func runGrid[T any](opts Options, cells int, run func(cell int, seed int64) T) [][]T {
	flat := runEngine(opts, cells*opts.Seeds, func(i int) T {
		return run(i/opts.Seeds, opts.Seed+int64(i%opts.Seeds))
	})
	out := make([][]T, cells)
	for c := 0; c < cells; c++ {
		out[c] = flat[c*opts.Seeds : (c+1)*opts.Seeds]
	}
	return out
}

// runCells evaluates run once per cell with no per-seed fan-out, for
// drivers whose cells iterate seeds internally or have none.
func runCells[T any](opts Options, cells int, run func(cell int) T) []T {
	return runEngine(opts, cells, run)
}

// seedTopos holds one immutable topology snapshot per seed of a run —
// the shared read-only geometry every cell of that seed builds from.
type seedTopos struct {
	base  int64
	snaps []*topology.Snapshot
}

// spatialLossBoundDB is the near-field loss bound every driver-built
// snapshot uses: pairs whose path loss provably reaches it are never
// materialised. The paper's layouts span meters, so their pairs are all
// near-field and the sparse rows hold exactly what the dense matrix would
// — golden tables are byte-identical either way (the determinism suite
// pins this) — while city-scale drivers get O(n·k) snapshots from the
// same code path. 150 dB is ~820 m under the default indoor model, and
// leaves a certified-far transmitter at least 16 dB below the weakest
// interest floor in use (phy.Sensitivity) even with the full
// phy.ReachMarginDB fade allowance.
const spatialLossBoundDB = 150

// snapshotSeeds builds one topology snapshot per seed (Seed..Seed+Seeds-1)
// of cfg, serially before the cells fan out across the worker pool. Each
// snapshot consumes exactly the RNG draws a cell calling
// topology.Generate(cfg, sim.NewRNG(seed)) itself would, so placements are
// bit-identical to per-cell generation; cells sharing a (cfg, seed) then
// share one set of placements and one precomputed path-loss matrix instead
// of regenerating both. Snapshots are near-field (the spatial tier in
// exact mode: no error budget, losses bit-identical where materialised).
func snapshotSeeds(opts Options, cfg topology.Config) seedTopos {
	st := seedTopos{base: opts.Seed, snaps: make([]*topology.Snapshot, opts.Seeds)}
	for i := range st.snaps {
		snap, err := topology.NewSnapshotNear(cfg, sim.NewRNG(opts.Seed+int64(i)), nil, spatialLossBoundDB)
		if err != nil {
			panic(err) // driver configurations are static; cannot fail
		}
		st.snaps[i] = snap
	}
	return st
}

// at returns the snapshot for one seed of the run.
func (st seedTopos) at(seed int64) *topology.Snapshot {
	return st.snaps[seed-st.base]
}

// Table is a printable experiment result.
type Table struct {
	// Title identifies the figure or table being regenerated.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold the formatted cells.
	Rows [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	line := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		line[i] = pad(c, widths[i])
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(line, "  "))
	for i := range line {
		line[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintf(w, "  %s\n", strings.Join(line, "  "))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, cell := range row {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			cells[i] = pad(cell, width)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(cells, "  "))
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f0, f1 and f2 format floats with 0/1/2 decimals for table cells.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a ratio as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// sum totals a slice.
func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// mean averages a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// meanRows averages per-seed vectors element-wise; ragged inputs use the
// shortest length.
func meanRows(rows [][]float64) []float64 {
	if len(rows) == 0 {
		return nil
	}
	n := len(rows[0])
	for _, r := range rows {
		if len(r) < n {
			n = len(r)
		}
	}
	out := make([]float64, n)
	for _, r := range rows {
		for i := 0; i < n; i++ {
			out[i] += r[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(rows))
	}
	return out
}

// evalPlan builds the N-channel plan the evaluation uses: centers spaced
// cfd apart starting at 2458 MHz.
func evalPlan(n int, cfd phy.MHz) phy.ChannelPlan {
	centers := make([]phy.MHz, n)
	for i := range centers {
		centers[i] = 2458 + phy.MHz(i)*cfd
	}
	return phy.ChannelPlan{Start: 2458, Bandwidth: phy.MHz(n-1) * cfd, CFD: cfd, Centers: centers}
}
