package experiments

import (
	"time"

	"nonortho/internal/dcn"
	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// AblationRow is one DCN variant's overall throughput.
type AblationRow struct {
	Variant string
	Total   float64
	// VsFull is the throughput relative to the complete DCN design.
	VsFull float64
}

// AblationResult quantifies which parts of DCN its gain comes from.
type AblationResult struct{ Rows []AblationRow }

// AblationDCN runs the 15 MHz / 6-channel design in the Case I geometry
// with random powers in [-22, 0] dBm — the regime where the Adjustor's
// min-RSSI tracking actually binds — under DCN variants that remove one
// mechanism at a time (the design-choice ablations DESIGN.md calls out):
//
//   - full: the paper's scheme.
//   - no-case-2: the threshold can only fall (Eq. 4 removed). Without the
//     window-minimum reset, one deep-faded packet pins the node
//     conservative forever — this is where most of the relaxing gain
//     lives.
//   - no-init-sensing: Eq. 2 uses packet RSSI only (no P_I sampling).
//   - fixed: no Adjustor at all (the ZigBee threshold), as the floor.
//   - margin-3dB: a more cautious 3 dB guard below the weakest co-channel
//     interferer instead of the default 1 dB.
func AblationDCN(opts Options) (AblationResult, *Table) {
	opts = opts.withDefaults()

	variants := []struct {
		name string
		cfg  *dcn.Config // nil = fixed threshold, no DCN
	}{
		{"full", &dcn.Config{}},
		{"no-case-2", &dcn.Config{DisableCaseII: true}},
		{"no-init-sensing", &dcn.Config{DisableInitSensing: true}},
		{"margin-3dB", &dcn.Config{MarginDB: 3}},
		{"fixed (no DCN)", nil},
	}

	var res AblationResult
	// All five variants of a seed share one topology snapshot.
	region, link := caseGeometry(topology.LayoutColocated)
	topos := snapshotSeeds(opts, topology.Config{
		Plan:         evalPlan(6, 3),
		Layout:       topology.LayoutColocated,
		Power:        topology.UniformPower(-22, 0),
		RegionRadius: region,
		LinkRadius:   link,
	})
	grid := runGrid(opts, len(variants), func(cell int, seed int64) float64 {
		tb := ablationRun(seed, topos.at(seed), variants[cell].cfg, opts)
		defer tb.Close()
		return tb.OverallThroughput()
	})
	totals := make(map[string]float64, len(variants))
	for i, v := range variants {
		totals[v.name] = sum(grid[i]) / float64(opts.Seeds)
	}
	full := totals["full"]
	for _, v := range variants {
		res.Rows = append(res.Rows, AblationRow{
			Variant: v.name,
			Total:   totals[v.name],
			VsFull:  totals[v.name] / full,
		})
	}

	t := &Table{
		Title:   "Ablation: DCN variants on the 15 MHz / 6-channel design",
		Columns: []string{"variant", "total (pkt/s)", "vs full"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Variant, f0(r.Total), f2(r.VsFull))
	}
	return res, t
}

func ablationRun(seed int64, snap *topology.Snapshot, cfg *dcn.Config, opts Options) *testbed.Testbed {
	tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
	for _, spec := range snap.Networks() {
		nc := testbed.NetworkConfig{Scheme: testbed.SchemeFixed}
		if cfg != nil {
			nc.Scheme = testbed.SchemeDCN
			nc.DCN = *cfg
		}
		tb.AddNetwork(spec, nc)
	}
	tb.Run(opts.Warmup, opts.Measure)
	return tb
}

// EnergyRow is one design's energy accounting.
type EnergyRow struct {
	Design string
	// Throughput in pkt/s and consumption per delivered packet.
	Throughput     float64
	MJPerDelivered float64
}

// EnergyResult is the energy-per-packet extension experiment.
type EnergyResult struct{ Rows []EnergyRow }

// EnergyComparison is an extension beyond the paper: using the CC2420
// current model, compare the energy cost per *delivered* packet of the
// ZigBee design and the DCN design on the 15 MHz band. DCN's extra
// concurrency converts listening/backoff time into transmissions, and
// since the CC2420 transmits more cheaply than it listens, energy per
// delivered packet drops.
func EnergyComparison(opts Options) (EnergyResult, *Table) {
	opts = opts.withDefaults()

	type cellSums struct{ Pkts, MJ, Seconds float64 }
	// Energy meters run from t=0 but packet counters only during the
	// measurement window; radios draw power near-uniformly, so scale
	// the consumption to the measured share of the run.
	share := opts.Measure.Seconds() / (opts.Warmup + opts.Measure).Seconds()
	// Cell 0 = ZigBee design, cell 1 = DCN design.
	zigTopos := snapshotSeeds(opts, bandConfig(false, topology.LayoutColocated, nil))
	dcnTopos := snapshotSeeds(opts, bandConfig(true, topology.LayoutColocated, nil))
	grid := runGrid(opts, 2, func(cell int, seed int64) cellSums {
		nonOrtho := cell == 1
		topos := zigTopos
		if nonOrtho {
			topos = dcnTopos
		}
		tb := bandDesign(opts, seed, topos.at(seed), nonOrtho)
		defer tb.Close()
		tb.Run(opts.Warmup, opts.Measure)
		var c cellSums
		c.Seconds = tb.MeasuredDuration().Seconds()
		for _, n := range tb.Networks() {
			c.Pkts += float64(n.Stats().Received)
			for _, node := range n.Senders {
				c.MJ += share * node.Radio.EnergyReport().Millijoules
			}
			c.MJ += share * n.Sink.Radio.EnergyReport().Millijoules
		}
		return c
	})
	aggregate := func(cells []cellSums) (throughput, mjPerPkt float64) {
		var totalPkts, totalMJ, seconds float64
		for _, c := range cells {
			totalPkts += c.Pkts
			totalMJ += c.MJ
			seconds += c.Seconds
		}
		if totalPkts == 0 {
			return 0, 0
		}
		return totalPkts / seconds, totalMJ / totalPkts
	}

	var res EnergyResult
	zt, zmj := aggregate(grid[0])
	res.Rows = append(res.Rows, EnergyRow{Design: "ZigBee (CFD=5, fixed)", Throughput: zt, MJPerDelivered: zmj})
	dt, dmj := aggregate(grid[1])
	res.Rows = append(res.Rows, EnergyRow{Design: "DCN (CFD=3)", Throughput: dt, MJPerDelivered: dmj})

	t := &Table{
		Title:   "Extension: energy per delivered packet (CC2420 current model)",
		Columns: []string{"design", "throughput (pkt/s)", "mJ per delivered packet"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Design, f0(r.Throughput), f2(r.MJPerDelivered))
	}
	return res, t
}

// CaseIIRecoveryResult quantifies the Updating Phase's relaxing step under
// dynamics.
type CaseIIRecoveryResult struct {
	// WithCaseII and WithoutCaseII are the observed network's throughput
	// in the window after a weak co-channel node leaves the network.
	WithCaseII    float64
	WithoutCaseII float64
	// ThresholdWith and ThresholdWithout are a sender's final thresholds.
	ThresholdWith    float64
	ThresholdWithout float64
}

// CaseIIRecovery demonstrates what Eq. 4 is for. A weak co-channel node
// (low transmit power, placed at the network's edge) keeps every
// CCA-Adjustor pinned to a conservative threshold. Halfway through the
// run it powers off. With Case II the window-minimum reset relaxes the
// threshold within T_U and neighbour-channel concurrency returns; with
// Case II ablated the threshold stays pinned forever and the throughput
// never recovers.
func CaseIIRecovery(opts Options) (CaseIIRecoveryResult, *Table) {
	opts = opts.withDefaults()

	type cellResult struct{ Tput, Th float64 }
	plan := evalPlan(3, 3) // observed network flanked by two neighbours
	// Both cells of a seed share one snapshot; the weak node each cell
	// appends below lives only in that cell's deep copy of the specs.
	topos := snapshotSeeds(opts, topology.Config{
		Plan:   plan,
		Layout: topology.LayoutColocated,
		// Dense region so neighbour-channel energy sits above the
		// pinned threshold but below the relaxed one.
		RegionRadius: 1.0,
	})
	// Cell 0 = with Case II, cell 1 = Case II ablated.
	grid := runGrid(opts, 2, func(cell int, seed int64) cellResult {
		disableCaseII := cell == 1
		snap := topos.at(seed)
		tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
		defer tb.Close()
		{
			nets := snap.Networks()
			mid := plan.MiddleIndex()
			// The weak node: a co-channel sender of the middle network at
			// minimum power on the region's edge — overheard around
			// -85 dBm, pinning every Adjustor of that network.
			nets[mid].Senders = append(nets[mid].Senders, topology.NodeSpec{
				Pos:     phy.Position{X: 3.5, Y: 0},
				TxPower: -25,
			})
			var networks []*testbed.Network
			for _, spec := range nets {
				networks = append(networks, tb.AddNetwork(spec, testbed.NetworkConfig{
					Scheme: testbed.SchemeDCN,
					DCN:    dcn.Config{DisableCaseII: disableCaseII},
				}))
			}
			observed := networks[mid]
			weak := observed.Senders[len(observed.Senders)-1]

			// Let the pinned regime establish itself, then the weak node
			// dies; measure only the post-departure window (after T_U has
			// passed so Case II had its chance).
			tb.Run(opts.Warmup+2*time.Second, 0)
			weak.Radio.SetOff()
			tb.Kernel.RunFor(4 * time.Second) // T_U + settling, unmeasured
			tb.Run(0, opts.Measure)

			return cellResult{
				Tput: observed.Throughput(tb.MeasuredDuration()),
				Th:   float64(observed.Senders[0].Radio.CCAThreshold()),
			}
		}
	})
	aggregate := func(cells []cellResult) (throughput, threshold float64) {
		var tput, th float64
		for _, c := range cells {
			tput += c.Tput
			th += c.Th
		}
		n := float64(opts.Seeds)
		return tput / n, th / n
	}

	var res CaseIIRecoveryResult
	res.WithCaseII, res.ThresholdWith = aggregate(grid[0])
	res.WithoutCaseII, res.ThresholdWithout = aggregate(grid[1])

	t := &Table{
		Title:   "Ablation: Case II recovery after a weak co-channel node departs",
		Columns: []string{"variant", "post-departure throughput (pkt/s)", "final threshold (dBm)"},
	}
	t.AddRow("with Case II", f0(res.WithCaseII), f1(res.ThresholdWith))
	t.AddRow("without Case II", f0(res.WithoutCaseII), f1(res.ThresholdWithout))
	return res, t
}
