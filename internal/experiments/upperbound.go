package experiments

import (
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// UpperBoundRow is one (geometry, policy) outcome in the Section VII-C
// study.
type UpperBoundRow struct {
	Geometry string
	Policy   string
	Total    float64
}

// UpperBoundResult quantifies both halves of the paper's Section VII-C
// discussion.
type UpperBoundResult struct {
	Rows []UpperBoundRow
	// DenseOracleOverDCN is the oracle's gain over DCN in the dense
	// fixed-power geometry (the intended "upper bound" reading).
	DenseOracleOverDCN float64
	// SparseOracleOverFixed is the oracle's "gain" in the weak-link
	// Case III geometry — negative, quantifying the paper's warning that
	// ignoring all neighbour-channel interference is unsafe.
	SparseOracleOverFixed float64
}

// UpperBound quantifies both claims of the paper's Section VII-C
// discussion with an oracle CCA that perfectly differentiates co-channel
// from inter-channel interference (something no deployed radio can do):
//
//  1. In the dense fixed-power geometry, the oracle is the upper bound of
//     threshold adaptation — and DCN already sits essentially on it: the
//     co-channel RSSI floor lies above all neighbour-channel energy, so a
//     single threshold separates the two perfectly.
//  2. In the weak-link Case III geometry with random powers, the oracle
//     BACKFIRES: "non-orthogonal design anyhow introduces inter-channel
//     interference, which might corrupt transmission in some cases.
//     Therefore, ignoring all the neighbouring-channel interference is
//     unsafe" (the paper's own words). Deference to inter-channel energy
//     doubles as crude interference avoidance for fragile links, and the
//     oracle throws that protection away.
func UpperBound(opts Options) (UpperBoundResult, *Table) {
	opts = opts.withDefaults()

	policies := []struct {
		name   string
		scheme testbed.Scheme
	}{
		{"fixed -77 dBm", testbed.SchemeFixed},
		{"DCN", testbed.SchemeDCN},
		{"oracle", testbed.SchemeOracle},
	}
	geometries := []struct {
		name   string
		sparse bool
	}{
		{"dense, 0 dBm", false},
		{"Case III, random power", true},
	}
	// One snapshot set per geometry: the three policies of a (geometry,
	// seed) pair share placements and the loss matrix.
	plan := evalPlan(6, 3)
	denseTopos := snapshotSeeds(opts, topology.Config{Plan: plan, Layout: topology.LayoutColocated})
	region, link := caseGeometry(topology.LayoutRandomField)
	sparseTopos := snapshotSeeds(opts, topology.Config{
		Plan:         plan,
		Layout:       topology.LayoutRandomField,
		Power:        topology.UniformPower(-22, 0),
		RegionRadius: region,
		LinkRadius:   link,
	})
	// Cells: geometry-major, policy-minor — the table's row order.
	grid := runGrid(opts, len(geometries)*len(policies), func(cell int, seed int64) float64 {
		scheme := policies[cell%len(policies)].scheme
		topos := denseTopos
		if geometries[cell/len(policies)].sparse {
			topos = sparseTopos
		}
		snap := topos.at(seed)
		tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
		defer tb.Close()
		for _, spec := range snap.Networks() {
			tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: scheme})
		}
		tb.Run(opts.Warmup, opts.Measure)
		return tb.OverallThroughput()
	})

	var res UpperBoundResult
	totals := map[[2]string]float64{}
	for gi, g := range geometries {
		for pi, p := range policies {
			total := sum(grid[gi*len(policies)+pi]) / float64(opts.Seeds)
			totals[[2]string{g.name, p.name}] = total
			res.Rows = append(res.Rows, UpperBoundRow{Geometry: g.name, Policy: p.name, Total: total})
		}
	}
	res.DenseOracleOverDCN = totals[[2]string{"dense, 0 dBm", "oracle"}]/
		totals[[2]string{"dense, 0 dBm", "DCN"}] - 1
	res.SparseOracleOverFixed = totals[[2]string{"Case III, random power", "oracle"}]/
		totals[[2]string{"Case III, random power", "fixed -77 dBm"}] - 1

	t := &Table{
		Title:   "Extension (Section VII-C): the interference-differentiating oracle, both regimes",
		Columns: []string{"geometry", "policy", "total (pkt/s)"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Geometry, r.Policy, f0(r.Total))
	}
	t.AddRow("oracle vs DCN (dense)", pct(res.DenseOracleOverDCN), "")
	t.AddRow("oracle vs fixed (Case III)", pct(res.SparseOracleOverFixed), "")
	return res, t
}
