package experiments

import (
	"strings"
	"testing"
)

// quick returns the fast options used across the integration tests.
func quick() Options { return Quick() }

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Columns: []string{"a", "bbb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	out := tbl.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("render lines = %d, want 5:\n%s", len(lines), out)
	}
}

func TestMeanHelpers(t *testing.T) {
	if got := mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := mean(nil); got != 0 {
		t.Errorf("mean(nil) = %v", got)
	}
	rows := meanRows([][]float64{{1, 2}, {3, 4}})
	if rows[0] != 2 || rows[1] != 3 {
		t.Errorf("meanRows = %v", rows)
	}
	if meanRows(nil) != nil {
		t.Error("meanRows(nil) != nil")
	}
	// Ragged input clips to the shortest row.
	if got := meanRows([][]float64{{1, 2, 3}, {3, 4}}); len(got) != 2 {
		t.Errorf("ragged meanRows = %v", got)
	}
}

func TestEvalPlan(t *testing.T) {
	p := evalPlan(6, 3)
	if p.NumChannels() != 6 || p.Centers[0] != 2458 || p.Centers[5] != 2473 {
		t.Errorf("evalPlan = %+v", p)
	}
}

// --- Shape assertions against the paper ---

func TestFig1ShapePeaksAtCFD3(t *testing.T) {
	res, tbl := Fig1(Options{Seed: 1, Seeds: 2, Warmup: quick().Warmup, Measure: quick().Measure})
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(res.Rows))
	}
	byCFD := map[float64]float64{}
	for _, r := range res.Rows {
		byCFD[float64(r.CFD)] = r.Total
	}
	// Orthogonal single channel is worst; CFD=3 beats both the ZigBee
	// spacing and the aggressive 2 MHz packing.
	if !(byCFD[3] > byCFD[5] && byCFD[3] > byCFD[9]) {
		t.Errorf("CFD=3 not above 5/9 MHz: %v\n%s", byCFD, tbl)
	}
	if !(byCFD[3] >= byCFD[2]) {
		t.Errorf("CFD=3 (%.0f) below CFD=2 (%.0f): peak must be at 3 MHz\n%s",
			byCFD[3], byCFD[2], tbl)
	}
	if !(byCFD[5] > 1.5*byCFD[9]) {
		t.Errorf("two ZigBee channels should roughly double one: %v", byCFD)
	}
}

func TestFig2ShapeContrast(t *testing.T) {
	res, tbl := Fig2(quick())
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(res.Rows))
	}
	co := res.Rows[0]
	// Co-channel: both technologies share via CSMA, roughly halving.
	if co.Norm80211 > 0.8 || co.Norm802154 > 0.8 {
		t.Errorf("co-channel norms = %.2f / %.2f, want both suppressed\n%s",
			co.Norm80211, co.Norm802154, tbl)
	}
	// One channel away: 802.15.4 recovers fully, 802.11b stays suppressed.
	one := res.Rows[1]
	if one.Norm802154 < 0.9 {
		t.Errorf("802.15.4 at 1 channel = %.2f, want ≈ 1\n%s", one.Norm802154, tbl)
	}
	if one.Norm80211 > 0.8 {
		t.Errorf("802.11b at 1 channel = %.2f, want suppressed\n%s", one.Norm80211, tbl)
	}
	// 802.11b stays suppressed through 4 channels and recovers far out.
	if res.Rows[4].Norm80211 > 0.8 {
		t.Errorf("802.11b at 4 channels = %.2f, want suppressed", res.Rows[4].Norm80211)
	}
	if res.Rows[10].Norm80211 < 0.85 {
		t.Errorf("802.11b at 10 channels = %.2f, want recovered", res.Rows[10].Norm80211)
	}
}

func TestFig4CPRRBands(t *testing.T) {
	res, tbl := Fig4(Options{Seed: 1, Seeds: 2, Warmup: quick().Warmup, Measure: quick().Measure})
	get := func(cfd float64) Fig4Row {
		for _, r := range res.Rows {
			if float64(r.CFD) == cfd {
				return r
			}
		}
		t.Fatalf("missing CFD %v", cfd)
		return Fig4Row{}
	}
	if r := get(5); r.NormalCPRR < 0.97 || r.AttackerCPRR < 0.97 {
		t.Errorf("CFD=5 CPRR = %.2f/%.2f, want ≈ 100%%\n%s", r.NormalCPRR, r.AttackerCPRR, tbl)
	}
	if r := get(4); r.NormalCPRR < 0.95 {
		t.Errorf("CFD=4 CPRR = %.2f, want ≈ 100%%\n%s", r.NormalCPRR, tbl)
	}
	if r := get(3); r.NormalCPRR < 0.90 {
		t.Errorf("CFD=3 CPRR = %.2f, want ≈ 97%%\n%s", r.NormalCPRR, tbl)
	}
	if r := get(2); r.NormalCPRR < 0.5 || r.NormalCPRR > 0.85 {
		t.Errorf("CFD=2 CPRR = %.2f, want ≈ 70%%\n%s", r.NormalCPRR, tbl)
	}
	if r := get(1); r.NormalCPRR > 0.30 {
		t.Errorf("CFD=1 CPRR = %.2f, want < 20%%\n%s", r.NormalCPRR, tbl)
	}
	// Monotone in CFD.
	if !(get(3).NormalCPRR > get(2).NormalCPRR && get(2).NormalCPRR > get(1).NormalCPRR) {
		t.Errorf("CPRR not monotone in CFD:\n%s", tbl)
	}
}

func TestFig6RelaxingUnlocksThroughputWithoutLoss(t *testing.T) {
	res, tbl := Fig6(quick())
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.Sent > 5 {
		t.Errorf("sent at -120 dBm = %.0f, want ≈ 0 (always busy)\n%s", first.Sent, tbl)
	}
	if last.Sent < 200 {
		t.Errorf("sent at -20 dBm = %.0f, want saturated\n%s", last.Sent, tbl)
	}
	// Inter-channel interference is tolerable: received tracks sent.
	if last.Received < 0.95*last.Sent {
		t.Errorf("received %.0f vs sent %.0f: PRR should stay ≈ 100%%\n%s",
			last.Received, last.Sent, tbl)
	}
}

func TestFig7OverallGrowsWithRelaxing(t *testing.T) {
	res, tbl := Fig7(quick())
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Overall <= first.Overall {
		t.Errorf("overall did not grow: %.0f → %.0f\n%s", first.Overall, last.Overall, tbl)
	}
}

func TestFig8CoChannelCollisionsCapReceived(t *testing.T) {
	res, tbl := Fig8(quick())
	last := res.Rows[len(res.Rows)-1]
	if last.Sent < 200 {
		t.Fatalf("sent at -20 dBm = %.0f, want saturated\n%s", last.Sent, tbl)
	}
	// Fully relaxed: the link barges into co-channel transmissions, so a
	// clear gap opens between sent and received (the paper's "disaster").
	if last.Received > 0.9*last.Sent {
		t.Errorf("received %.0f vs sent %.0f: expected co-channel losses\n%s",
			last.Received, last.Sent, tbl)
	}
	// And the no-co-channel configuration of Fig 6 must NOT show that gap
	// (cross-check between the two experiments).
	res6, _ := Fig6(quick())
	last6 := res6.Rows[len(res6.Rows)-1]
	if last6.Received/last6.Sent < last.Received/last.Sent {
		t.Errorf("Fig6 PRR (%.2f) below Fig8 PRR (%.2f)",
			last6.Received/last6.Sent, last.Received/last.Sent)
	}
}

func TestFig9and10PowerBands(t *testing.T) {
	if testing.Short() {
		t.Skip("105 simulation runs; skipped in -short")
	}
	res, _, tbl10 := Fig9and10(quick())
	// Pick the fully relaxed threshold point per power.
	finalFor := func(p float64) Fig9Row {
		var out Fig9Row
		for _, r := range res.Rows {
			if float64(r.Power) == p && r.Threshold == -20 {
				out = r
			}
		}
		return out
	}
	// Shape: PRR is monotone in transmit power — near the plateau for
	// -8/-15 dBm, visibly degraded at -22 dBm, collapsed at -33 dBm.
	// (The paper reports higher absolute plateaus; see EXPERIMENTS.md.)
	if r := finalFor(-8); r.PRR < 0.65 {
		t.Errorf("-8 dBm PRR = %.2f, want near plateau\n%s", r.PRR, tbl10)
	}
	if r := finalFor(-15); r.PRR < 0.6 {
		t.Errorf("-15 dBm PRR = %.2f, want near plateau\n%s", r.PRR, tbl10)
	}
	if r := finalFor(-22); r.PRR < 0.2 || r.PRR > 0.65 {
		t.Errorf("-22 dBm PRR = %.2f, want visibly degraded\n%s", r.PRR, tbl10)
	}
	if r := finalFor(-33); r.PRR > 0.2 {
		t.Errorf("-33 dBm PRR = %.2f, want collapsed\n%s", r.PRR, tbl10)
	}
	if !(finalFor(-8).PRR >= finalFor(-22).PRR && finalFor(-22).PRR > finalFor(-33).PRR) {
		t.Errorf("PRR not monotone in power\n%s", tbl10)
	}
	// Throughput at every power grows with relaxing.
	for _, p := range []float64{-8, -11, -15, -22} {
		var atDefault, atRelaxed float64
		for _, r := range res.Rows {
			if float64(r.Power) != p {
				continue
			}
			if r.Threshold == -105 {
				atDefault = r.Received
			}
			if r.Threshold == -20 {
				atRelaxed = r.Received
			}
		}
		if atRelaxed <= atDefault {
			t.Errorf("power %v: no relaxing gain (%.0f → %.0f)", p, atDefault, atRelaxed)
		}
	}
}

func TestFig14and15DCNOnN0(t *testing.T) {
	res, t14, t15 := Fig14and15(quick())
	for _, r := range res.Rows {
		if r.N0With <= r.N0Without {
			t.Errorf("CFD=%v: DCN on N0 did not help N0 (%.0f → %.0f)\n%s",
				r.CFD, r.N0Without, r.N0With, t14)
		}
		// The other networks may lose a little, but must not collapse
		// (paper: ≈ -5 %).
		if r.OthersWith < 0.8*r.OthersWithout {
			t.Errorf("CFD=%v: others collapsed (%.0f → %.0f)\n%s",
				r.CFD, r.OthersWithout, r.OthersWith, t15)
		}
	}
}

func TestFig17EveryNetworkGains(t *testing.T) {
	res, tbl := Fig17(Options{Seed: 1, Seeds: 2, Warmup: quick().Warmup, Measure: quick().Measure})
	var woTotal, wiTotal float64
	for _, r := range res.Rows {
		woTotal += r.Without
		wiTotal += r.With
		// Individual networks can fluctuate a few percent; none may
		// collapse.
		if r.With < 0.85*r.Without {
			t.Errorf("%s collapsed under DCN: %.0f → %.0f\n%s", r.Network, r.Without, r.With, tbl)
		}
	}
	if wiTotal <= woTotal {
		t.Errorf("DCN on all networks did not raise the total: %.0f → %.0f\n%s",
			woTotal, wiTotal, tbl)
	}
}

func TestFig18CFD3Wins(t *testing.T) {
	res, tbl := Fig18(quick())
	byCFD := map[float64]Fig18Row{}
	for _, r := range res.Rows {
		byCFD[float64(r.CFD)] = r
	}
	// DCN helps at both CFDs...
	for cfd, r := range byCFD {
		if r.With <= r.Without {
			t.Errorf("CFD=%v: no DCN gain (%.0f → %.0f)\n%s", cfd, r.Without, r.With, tbl)
		}
	}
	// ...and CFD=3 MHz delivers the better overall throughput (paper:
	// 1.37x the CFD=2 design).
	if byCFD[3].With <= byCFD[2].With {
		t.Errorf("CFD=3 with DCN (%.0f) not above CFD=2 (%.0f)\n%s",
			byCFD[3].With, byCFD[2].With, tbl)
	}
	ratio := byCFD[3].With / byCFD[2].With
	if ratio < 1.1 || ratio > 1.9 {
		t.Errorf("CFD3/CFD2 ratio = %.2f, want around the paper's 1.37", ratio)
	}
}

func TestFig19HeadlineImprovement(t *testing.T) {
	res, tbl := Fig19(Options{Seed: 1, Seeds: 2, Warmup: quick().Warmup, Measure: quick().Measure})
	if len(res.ZigBeePerNetwork) != 4 || len(res.DCNPerNetwork) != 6 {
		t.Fatalf("channel counts = %d/%d, want 4/6\n%s",
			len(res.ZigBeePerNetwork), len(res.DCNPerNetwork), tbl)
	}
	// The paper reports +58 % here and 38.4-55.7 % across configurations.
	if res.Improvement < 0.30 || res.Improvement > 0.75 {
		t.Errorf("improvement = %.1f%%, want within the paper's band\n%s",
			100*res.Improvement, tbl)
	}
}

func TestFig20PowerPhases(t *testing.T) {
	res, t20, t21 := Fig20and21(quick())
	// N0's throughput grows monotonically with its transmit power.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].N0+10 < res.Rows[i-1].N0 {
			t.Errorf("N0 throughput not increasing at %v dBm\n%s",
				res.Rows[i].Power, t20)
		}
	}
	lo, hi := res.Rows[0], res.Rows[len(res.Rows)-1]
	if hi.N0 < 4*lo.N0+50 {
		t.Errorf("N0 gain from power too small: %.0f → %.0f\n%s", lo.N0, hi.N0, t20)
	}
	// High co-channel power does not hurt the neighbours (Fig 21).
	if hi.Others < 0.9*lo.Others {
		t.Errorf("neighbours degraded by N0's power: %.0f → %.0f\n%s",
			lo.Others, hi.Others, t21)
	}
}

func TestTableIFairness(t *testing.T) {
	res, tbl := TableI(Options{Seed: 1, Seeds: 2, Warmup: quick().Warmup, Measure: quick().Measure})
	if len(res.PerNetwork) != 6 {
		t.Fatalf("networks = %d, want 6", len(res.PerNetwork))
	}
	// The paper reports ~4 % spread; allow headroom for the short runs.
	if res.Spread > 0.25 {
		t.Errorf("spread = %.1f%%, want small\n%s", 100*res.Spread, tbl)
	}
	if res.Jain < 0.98 {
		t.Errorf("Jain index = %.3f, want near 1\n%s", res.Jain, tbl)
	}
}

func TestCasesOrderingAndBands(t *testing.T) {
	if testing.Short() {
		t.Skip("nine full runs; skipped in -short")
	}
	opts := Options{Seed: 1, Seeds: 2, Warmup: quick().Warmup, Measure: quick().Measure}
	c1, t1 := Fig25(opts)
	c2, t2 := Fig26(opts)
	c3, t3 := Fig27(opts)
	for _, c := range []struct {
		res CaseResult
		tbl *Table
	}{{c1, t1}, {c2, t2}, {c3, t3}} {
		if !(c.res.ZigBee < c.res.WithoutDCN && c.res.WithoutDCN < c.res.WithDCN) {
			t.Errorf("ordering violated: %+v\n%s", c.res, c.tbl)
		}
		// The paper's overall band: 38.4-55.7 % vs ZigBee; allow slack.
		if c.res.GainOverZigBee < 0.25 || c.res.GainOverZigBee > 0.85 {
			t.Errorf("gain vs ZigBee = %.1f%%, outside plausible band\n%s",
				100*c.res.GainOverZigBee, c.tbl)
		}
	}
	// Relaxing gain ordering: Case I >= Case II >= Case III (paper:
	// 14.7 / 10.4 / 6.2 %). Allow a small tolerance for run noise.
	if c1.GainOverWithout+0.02 < c2.GainOverWithout {
		t.Errorf("Case I gain (%.1f%%) below Case II (%.1f%%)",
			100*c1.GainOverWithout, 100*c2.GainOverWithout)
	}
	if c2.GainOverWithout+0.02 < c3.GainOverWithout {
		t.Errorf("Case II gain (%.1f%%) below Case III (%.1f%%)",
			100*c2.GainOverWithout, 100*c3.GainOverWithout)
	}
}

func TestFig28RecoveryClosesGap(t *testing.T) {
	res, tbl := Fig28(quick())
	last := res.Rows[len(res.Rows)-1]
	if last.Sent < 100 {
		t.Fatalf("sent = %.0f, want saturated at relaxed threshold\n%s", last.Sent, tbl)
	}
	if last.Received >= last.Sent {
		t.Fatalf("no loss at -22 dBm under 0 dBm interferers?\n%s", tbl)
	}
	if last.Recoverable <= last.Received {
		t.Errorf("recovery added nothing: recv %.0f recoverable %.0f\n%s",
			last.Received, last.Recoverable, tbl)
	}
	if last.Recoverable > last.Sent {
		t.Errorf("recoverable %.0f exceeds sent %.0f\n%s", last.Recoverable, last.Sent, tbl)
	}
}

func TestFig29FrontLoadedCDF(t *testing.T) {
	res, tbl := Fig29(quick())
	if res.Failed == 0 {
		t.Fatal("no CRC-failed packets collected")
	}
	// The distribution is front-loaded: a large share of CRC failures
	// carry few error bits (paper: 87 % within 10 %).
	if res.FractionWithin10Pct < 0.3 {
		t.Errorf("fraction within 10%% errors = %.2f, want front-loaded\n%s",
			res.FractionWithin10Pct, tbl)
	}
	// CDF is monotone and ends at 1.
	for i := 1; i < len(res.CDF); i++ {
		if res.CDF[i].F < res.CDF[i-1].F {
			t.Fatalf("CDF not monotone\n%s", tbl)
		}
	}
	if res.CDF[len(res.CDF)-1].F != 1 {
		t.Errorf("CDF tail = %v, want 1", res.CDF[len(res.CDF)-1].F)
	}
}

func TestFig30WideBand(t *testing.T) {
	res, tbl := Fig30(quick())
	if len(res.Rows) != 7 {
		t.Fatalf("networks = %d, want 7", len(res.Rows))
	}
	var wo, wi float64
	for _, r := range res.Rows {
		wo += r.Without
		wi += r.With
	}
	if wi <= wo {
		t.Errorf("no overall DCN gain on 18 MHz: %.0f → %.0f\n%s", wo, wi, tbl)
	}
}

func TestBandSweepGainPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("eight full runs; skipped in -short")
	}
	res, tbl := BandSweep(quick())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Gain <= 0 {
			t.Errorf("band %v MHz: DCN gain %.1f%%, want positive\n%s",
				r.BandMHz, 100*r.Gain, tbl)
		}
	}
	// Wider bands keep at least comparable relaxing gains (Section VII-B).
	if res.Rows[3].Gain < 0.5*res.Rows[0].Gain {
		t.Errorf("gain fades with bandwidth: %v\n%s", res.Rows, tbl)
	}
}

func TestAblationDCN(t *testing.T) {
	if testing.Short() {
		t.Skip("five full runs; skipped in -short")
	}
	res, tbl := AblationDCN(quick())
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		byName[r.Variant] = r
	}
	full := byName["full"]
	if full.Total == 0 {
		t.Fatalf("full variant carried no traffic\n%s", tbl)
	}
	// In a stationary saturated scenario the Initializing Phase already
	// sees the RSSI minimum, so removing Case II changes little — its
	// value shows up under dynamics (TestCaseIIRecovery). Assert the
	// honest finding: near parity here.
	if noC2 := byName["no-case-2"]; noC2.VsFull < 0.9 || noC2.VsFull > 1.1 {
		t.Errorf("no-case-2 vs full = %.2f, want near parity in steady state\n%s", noC2.VsFull, tbl)
	}
	if fixed := byName["fixed (no DCN)"]; fixed.VsFull > 0.97 {
		t.Errorf("fixed vs full = %.2f, want below the full scheme\n%s", fixed.VsFull, tbl)
	}
	// The init-sensing and margin ablations are second-order: they stay
	// within a modest band of the full scheme.
	if v := byName["no-init-sensing"]; v.VsFull < 0.8 || v.VsFull > 1.15 {
		t.Errorf("no-init-sensing vs full = %.2f, want second-order\n%s", v.VsFull, tbl)
	}
	if v := byName["margin-3dB"]; v.VsFull < 0.8 || v.VsFull > 1.1 {
		t.Errorf("margin-3dB vs full = %.2f, want second-order\n%s", v.VsFull, tbl)
	}
}

func TestEnergyComparison(t *testing.T) {
	res, tbl := EnergyComparison(quick())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	zig, dcnRow := res.Rows[0], res.Rows[1]
	if zig.Throughput == 0 || dcnRow.Throughput == 0 {
		t.Fatalf("zero throughput\n%s", tbl)
	}
	if dcnRow.Throughput <= zig.Throughput {
		t.Errorf("DCN throughput %.0f not above ZigBee %.0f\n%s",
			dcnRow.Throughput, zig.Throughput, tbl)
	}
	// More delivered packets over the same always-on radio time ⇒ the
	// per-packet energy must not rise (TX is marginally cheaper than RX
	// on a CC2420, so in practice it lands at or slightly below parity).
	if dcnRow.MJPerDelivered > 1.05*zig.MJPerDelivered {
		t.Errorf("DCN mJ/pkt %.2f above ZigBee %.2f\n%s",
			dcnRow.MJPerDelivered, zig.MJPerDelivered, tbl)
	}
}

func TestCaseIIRecovery(t *testing.T) {
	res, tbl := CaseIIRecovery(Options{Seed: 1, Seeds: 2, Warmup: quick().Warmup, Measure: quick().Measure})
	// After the weak node departs, Case II relaxes the threshold back up;
	// the ablated variant stays pinned near the weak node's RSSI.
	if res.ThresholdWith <= res.ThresholdWithout {
		t.Errorf("Case II did not raise the threshold: with %.1f vs without %.1f\n%s",
			res.ThresholdWith, res.ThresholdWithout, tbl)
	}
	if res.WithCaseII <= res.WithoutCaseII {
		t.Errorf("no recovery gain: with %.0f vs without %.0f pkt/s\n%s",
			res.WithCaseII, res.WithoutCaseII, tbl)
	}
}

func TestScarcityDCNBeatsOrthogonalAssignment(t *testing.T) {
	if testing.Short() {
		t.Skip("three full runs; skipped in -short")
	}
	res, tbl := Scarcity(quick())
	byName := map[string]float64{}
	for _, r := range res.Rows {
		byName[r.Strategy] = r.Total
	}
	dcnTotal := byName["DCN (6 nets / 6 ch, CFD=3)"]
	for name, total := range byName {
		if name == "DCN (6 nets / 6 ch, CFD=3)" {
			continue
		}
		if dcnTotal <= total {
			t.Errorf("DCN (%.0f) not above %q (%.0f)\n%s", dcnTotal, name, total, tbl)
		}
	}
	if res.DCNOverBestOrthogonal < 0.2 {
		t.Errorf("DCN over best orthogonal = %.1f%%, want a decisive margin\n%s",
			100*res.DCNOverBestOrthogonal, tbl)
	}
}

func TestMultihopCollection(t *testing.T) {
	if testing.Short() {
		t.Skip("twelve trees; skipped in -short")
	}
	res, tbl := Multihop(quick())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	zig, dcnRow := res.Rows[0], res.Rows[1]
	if zig.DeliveredPerSec == 0 || dcnRow.DeliveredPerSec == 0 {
		t.Fatalf("a design delivered nothing\n%s", tbl)
	}
	// Multi-hop actually happened.
	if zig.MeanHops < 1.2 || dcnRow.MeanHops < 1.2 {
		t.Errorf("mean hops = %.2f/%.2f, want > 1.2 (outer ring must relay)",
			zig.MeanHops, dcnRow.MeanHops)
	}
	// DCN sustains more goodput and a higher end-to-end delivery ratio
	// than orthogonal tree-sharing.
	if dcnRow.DeliveredPerSec <= zig.DeliveredPerSec {
		t.Errorf("DCN %.1f not above ZigBee %.1f readings/s\n%s",
			dcnRow.DeliveredPerSec, zig.DeliveredPerSec, tbl)
	}
	if dcnRow.DeliveryRatio <= zig.DeliveryRatio {
		t.Errorf("DCN ratio %.2f not above ZigBee %.2f\n%s",
			dcnRow.DeliveryRatio, zig.DeliveryRatio, tbl)
	}
}

func TestUpperBoundBothRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("six full runs; skipped in -short")
	}
	res, tbl := UpperBound(quick())
	get := func(geom, policy string) float64 {
		for _, r := range res.Rows {
			if r.Geometry == geom && r.Policy == policy {
				return r.Total
			}
		}
		t.Fatalf("missing row %s/%s", geom, policy)
		return 0
	}
	// Dense regime: DCN reaches the oracle (within noise) and both beat
	// the fixed threshold.
	denseFixed := get("dense, 0 dBm", "fixed -77 dBm")
	denseDCN := get("dense, 0 dBm", "DCN")
	denseOracle := get("dense, 0 dBm", "oracle")
	if denseDCN <= denseFixed || denseOracle <= denseFixed {
		t.Errorf("dense ordering violated: fixed %.0f dcn %.0f oracle %.0f\n%s",
			denseFixed, denseDCN, denseOracle, tbl)
	}
	if res.DenseOracleOverDCN > 0.1 {
		t.Errorf("oracle leaves %.1f%% over DCN in the dense regime, want ≈ none\n%s",
			100*res.DenseOracleOverDCN, tbl)
	}
	// Sparse weak-link regime: ignoring all inter-channel energy is
	// unsafe — the oracle must lose to the fixed threshold (the paper's
	// VII-C caveat).
	if res.SparseOracleOverFixed >= 0 {
		t.Errorf("oracle did not backfire in the weak-link regime (%.1f%%)\n%s",
			100*res.SparseOracleOverFixed, tbl)
	}
}

func TestCoexistenceDCNResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("four full runs; skipped in -short")
	}
	res, tbl := Coexistence(quick())
	if res.ZigBeeLoss < 0.1 {
		t.Errorf("ZigBee loss under Wi-Fi = %.1f%%, want substantial\n%s",
			100*res.ZigBeeLoss, tbl)
	}
	if res.DCNLoss >= res.ZigBeeLoss {
		t.Errorf("DCN loss (%.1f%%) not below ZigBee loss (%.1f%%)\n%s",
			100*res.DCNLoss, 100*res.ZigBeeLoss, tbl)
	}
	// DCN under Wi-Fi still beats ZigBee without Wi-Fi's handicap removed.
	var zigOn, dcnOn float64
	for _, r := range res.Rows {
		if r.WiFi && r.Design == "ZigBee (fixed -77 dBm)" {
			zigOn = r.Total
		}
		if r.WiFi && r.Design == "DCN (CFD=3)" {
			dcnOn = r.Total
		}
	}
	if dcnOn <= zigOn {
		t.Errorf("DCN under Wi-Fi (%.0f) not above ZigBee under Wi-Fi (%.0f)\n%s",
			dcnOn, zigOn, tbl)
	}
}

func TestBeaconModeDCNComposes(t *testing.T) {
	res, tbl := BeaconMode(quick())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	if res.Rows[0].Delivered == 0 || res.Rows[1].Delivered == 0 {
		t.Fatalf("a policy delivered nothing\n%s", tbl)
	}
	if res.Gain <= 0 {
		t.Errorf("DCN gain in slotted mode = %.1f%%, want positive\n%s",
			100*res.Gain, tbl)
	}
}

func TestTSCHNonOrthogonalLanes(t *testing.T) {
	res, tbl := TSCH(quick())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	orth, non := res.Rows[0], res.Rows[1]
	if orth.DeliveredPerS == 0 || non.DeliveredPerS == 0 {
		t.Fatalf("a hop set delivered nothing\n%s", tbl)
	}
	// Six lanes vs four with two oversubscribed: the non-orthogonal set
	// must deliver ~6/4 of the orthogonal rate at ~100% delivery.
	if non.DeliveredPerS <= orth.DeliveredPerS {
		t.Errorf("non-orthogonal %.0f not above orthogonal %.0f\n%s",
			non.DeliveredPerS, orth.DeliveredPerS, tbl)
	}
	if non.DeliveryRatio < 0.95 {
		t.Errorf("non-orthogonal delivery ratio = %.2f, want ≈ 1\n%s", non.DeliveryRatio, tbl)
	}
	if orth.DeliveryRatio > 0.8 {
		t.Errorf("orthogonal oversubscription ratio = %.2f, want collision losses\n%s",
			orth.DeliveryRatio, tbl)
	}
	if res.Gain < 0.3 || res.Gain > 0.7 {
		t.Errorf("gain = %.1f%%, want ≈ 50%%\n%s", 100*res.Gain, tbl)
	}
}

func TestLayoutsDiagrams(t *testing.T) {
	results, tables := Layouts(quick())
	if len(results) != 4 || len(tables) != 4 {
		t.Fatalf("results/tables = %d/%d, want 4/4", len(results), len(tables))
	}
	// Fig 13: 5 networks × (1 sink + 4 senders) = 25 rows at 0 dBm.
	if got := len(results[0].Rows); got != 25 {
		t.Errorf("Fig 13 rows = %d, want 25", got)
	}
	for _, r := range results[0].Rows {
		if r.Power != 0 {
			t.Fatalf("Fig 13 node power = %v, want 0 dBm", r.Power)
		}
	}
	// Cases: 6 networks × 5 nodes = 30 rows, powers within [-22, 0].
	for i := 1; i < 4; i++ {
		if got := len(results[i].Rows); got != 30 {
			t.Errorf("case %d rows = %d, want 30", i, got)
		}
		for _, r := range results[i].Rows {
			if r.Power < -22 || r.Power > 0 {
				t.Fatalf("case %d power = %v outside [-22, 0]", i, r.Power)
			}
		}
	}
}

func TestLPLAdaptiveThresholdSavesEnergy(t *testing.T) {
	res, tbl := LPL(quick())
	naive, adaptive := res.Rows[0], res.Rows[1]
	if naive.Delivered == 0 || adaptive.Delivered != naive.Delivered {
		t.Errorf("delivery changed: naive %d adaptive %d\n%s",
			naive.Delivered, adaptive.Delivered, tbl)
	}
	if naive.FalseWakeupsPerS < 1 {
		t.Errorf("naive false wakeups = %.1f/s, want frequent\n%s",
			naive.FalseWakeupsPerS, tbl)
	}
	if adaptive.FalseWakeupsPerS > 0.2*naive.FalseWakeupsPerS {
		t.Errorf("adaptive false wakeups = %.1f/s, want near zero\n%s",
			adaptive.FalseWakeupsPerS, tbl)
	}
	if res.EnergySavings < 0.3 {
		t.Errorf("energy savings = %.1f%%, want substantial\n%s",
			100*res.EnergySavings, tbl)
	}
}
