package experiments

import (
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/phy"
	"nonortho/internal/tsch"
)

// TSCHRow is one hop-set's outcome.
type TSCHRow struct {
	HopSet        string
	Lanes         int
	DeliveredPerS float64
	DeliveryRatio float64
}

// TSCHResult is the channel-hopping extension.
type TSCHResult struct {
	Rows []TSCHRow
	// Gain is the non-orthogonal hop set's delivered-rate gain.
	Gain float64
}

// TSCH extends the paper's thesis to time-slotted channel hopping
// (802.15.4e-style): six always-on dedicated links want six parallel
// channel lanes per timeslot. The orthogonal hop set provides only four
// on the 15 MHz band, so two lane pairs collide every slot; the
// non-orthogonal CFD = 3 MHz set provides six. Shape: the non-orthogonal
// schedule delivers substantially more — non-orthogonality buys capacity
// in the hopping world exactly as it does for CSMA.
func TSCH(opts Options) (TSCHResult, *Table) {
	opts = opts.withDefaults()

	type seedSums struct{ Delivered, Generated float64 }
	run := func(hops []phy.MHz, offsets []int) (rate, ratio float64) {
		cells := runSeeds(opts, func(seed int64) seedSums {
			core := leaseCore(opts, seed)
			defer core.Release()
			k, m := core.Kernel, core.Medium

			var cells []tsch.Cell
			for i := 0; i < 6; i++ {
				cells = append(cells, tsch.Cell{
					Slot:          0,
					ChannelOffset: offsets[i],
					Sender:        frame.Address(1 + 2*i),
					Receiver:      frame.Address(2 + 2*i),
				})
			}
			sched := tsch.Schedule{SlotframeLen: 1, HopSequence: hops, Cells: cells}
			nw, err := tsch.NewNetworkUnchecked(k, sched)
			if err != nil {
				panic(err)
			}
			senders := make([]*tsch.Node, 6)
			receivers := make([]*tsch.Node, 6)
			for i := 0; i < 6; i++ {
				senders[i] = nw.AddNode(m, frame.Address(1+2*i),
					phy.Position{X: 0, Y: 1.2 * float64(i)}, 0)
				receivers[i] = nw.AddNode(m, frame.Address(2+2*i),
					phy.Position{X: 1, Y: 1.2 * float64(i)}, 0)
			}
			// Saturated: keep every sender's queue topped up.
			k.NewTicker(10*time.Millisecond, func() {
				for i, snd := range senders {
					for snd.QueueLen() < 2 {
						snd.Send(&frame.Frame{
							Type: frame.TypeData,
							Src:  frame.Address(1 + 2*i), Dst: frame.Address(2 + 2*i),
							Payload: make([]byte, 32),
						})
					}
				}
			})
			nw.Start()
			k.RunFor(opts.Warmup)
			var sentBase, recvBase int
			for i := 0; i < 6; i++ {
				sentBase += senders[i].Sent()
				recvBase += receivers[i].Received()
			}
			k.RunFor(opts.Measure)
			var sentNow, recvNow int
			for i := 0; i < 6; i++ {
				sentNow += senders[i].Sent()
				recvNow += receivers[i].Received()
			}
			return seedSums{
				Delivered: float64(recvNow - recvBase),
				Generated: float64(sentNow - sentBase),
			}
		})
		var delivered, generated float64
		for _, c := range cells {
			delivered += c.Delivered
			generated += c.Generated
		}
		secs := float64(opts.Seeds) * opts.Measure.Seconds()
		if generated == 0 {
			return 0, 0
		}
		return delivered / secs, delivered / generated
	}

	orthRate, orthRatio := run([]phy.MHz{2458, 2463, 2468, 2473}, []int{0, 1, 2, 3, 0, 1})
	nonRate, nonRatio := run([]phy.MHz{2458, 2461, 2464, 2467, 2470, 2473},
		[]int{0, 1, 2, 3, 4, 5})

	res := TSCHResult{
		Rows: []TSCHRow{
			{HopSet: "orthogonal (4 lanes, CFD=5)", Lanes: 4, DeliveredPerS: orthRate, DeliveryRatio: orthRatio},
			{HopSet: "non-orthogonal (6 lanes, CFD=3)", Lanes: 6, DeliveredPerS: nonRate, DeliveryRatio: nonRatio},
		},
		Gain: nonRate/orthRate - 1,
	}

	t := &Table{
		Title:   "Extension: TSCH channel hopping — 6 dedicated links per timeslot on 15 MHz",
		Columns: []string{"hop set", "lanes", "delivered (pkt/s)", "delivery ratio"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.HopSet, f0(float64(r.Lanes)), f1(r.DeliveredPerS), pct(r.DeliveryRatio))
	}
	t.AddRow("non-orthogonal gain", pct(res.Gain), "", "")
	return res, t
}
