package experiments

import (
	"sync"
	"time"

	"nonortho/internal/medium"
	"nonortho/internal/net80211"
	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// Fig1Row is one bar group of Fig. 1: band throughput at one CFD.
type Fig1Row struct {
	CFD        phy.MHz
	Channels   int
	PerNetwork []float64
	Total      float64
}

// Fig1Result is the motivating experiment of Section III-A.
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1 regenerates Fig. 1: overall throughput on a 12 MHz band for
// CFD ∈ {9, 5, 4, 3, 2} MHz under the default ZigBee MAC (fixed -77 dBm
// CCA), channels packed as the paper counts them (9→1, 5→2, 4→3, 3→4,
// 2→6). The shape to reproduce: maximum at CFD = 3 MHz, with both the
// orthogonal assignment (9 MHz) and the aggressive one (2 MHz) inferior.
func Fig1(opts Options) (Fig1Result, *Table) {
	opts = opts.withDefaults()
	cases := []struct {
		cfd phy.MHz
		n   int
	}{{9, 1}, {5, 2}, {4, 3}, {3, 4}, {2, 6}}

	// One snapshot set per CFD case, shared across that case's seeds.
	topos := make([]seedTopos, len(cases))
	for i, c := range cases {
		topos[i] = snapshotSeeds(opts, topology.Config{
			Plan:   evalPlan(c.n, c.cfd),
			Layout: topology.LayoutColocated,
		})
	}
	grid := runGrid(opts, len(cases), func(cell int, seed int64) []float64 {
		snap := topos[cell].at(seed)
		tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
		defer tb.Close()
		for _, spec := range snap.Networks() {
			tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: testbed.SchemeFixed})
		}
		tb.Run(opts.Warmup, opts.Measure)
		return tb.PerNetworkThroughput()
	})

	var res Fig1Result
	for i, c := range cases {
		per := meanRows(grid[i])
		total := 0.0
		for _, v := range per {
			total += v
		}
		res.Rows = append(res.Rows, Fig1Row{CFD: c.cfd, Channels: c.n, PerNetwork: per, Total: total})
	}

	t := &Table{
		Title:   "Fig 1: Bandwidth throughput vs channel frequency distance (12 MHz, fixed CCA)",
		Columns: []string{"CFD (MHz)", "channels", "total (pkt/s)", "per-network (pkt/s)"},
	}
	for _, r := range res.Rows {
		per := ""
		for i, v := range r.PerNetwork {
			if i > 0 {
				per += " "
			}
			per += f0(v)
		}
		t.AddRow(f0(float64(r.CFD)), f0(float64(r.Channels)), f0(r.Total), per)
	}
	return res, t
}

// Fig2Row is one channel-separation point of Fig. 2.
type Fig2Row struct {
	ChannelSep int
	Norm80211  float64
	Norm802154 float64
}

// Fig2Result contrasts 802.11b and 802.15.4 on overlapped channels.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 regenerates Fig. 2 ("uniqueness of 802.15.4 networks"): the
// normalized throughput of a link while a second link runs on a channel
// 0..10 steps away. 802.11b receivers lock onto overlapping-channel
// packets and stay suppressed until ~5 channels of separation; 802.15.4
// receivers cannot decode off-channel packets at all and recover from one
// channel (5 MHz) onwards.
func Fig2(opts Options) (Fig2Result, *Table) {
	opts = opts.withDefaults()

	type pair struct{ WiFi, WPAN float64 }
	grid := runGrid(opts, 11, func(sep int, seed int64) pair {
		return pair{
			WiFi: wifiPairThroughput(seed, sep, opts) / wifiPairThroughput(seed+1000, 99, opts),
			WPAN: wpanPairThroughput(seed, sep, opts) / wpanPairThroughput(seed+1000, 99, opts),
		}
	})

	var res Fig2Result
	for sep := 0; sep <= 10; sep++ {
		var wifi, wpan float64
		for _, p := range grid[sep] {
			wifi += p.WiFi
			wpan += p.WPAN
		}
		res.Rows = append(res.Rows, Fig2Row{
			ChannelSep: sep,
			Norm80211:  wifi / float64(opts.Seeds),
			Norm802154: wpan / float64(opts.Seeds),
		})
	}

	t := &Table{
		Title:   "Fig 2: Normalized link throughput vs channel separation",
		Columns: []string{"channel sep", "802.11b", "802.15.4"},
	}
	for _, r := range res.Rows {
		t.AddRow(f0(float64(r.ChannelSep)), f2(r.Norm80211), f2(r.Norm802154))
	}
	return res, t
}

// wifiPairSnap captures the fixed two-link Fig. 2 geometry in station
// attach order (a.tx, a.rx, b.tx, b.rx) so the raw-medium Wi-Fi cells
// read pairwise losses from the shared matrix too. Frequencies are not
// part of the matrix, so one snapshot serves every channel separation.
var wifiPairSnap = sync.OnceValue(func() *topology.Snapshot {
	return topology.SnapshotFromSpecs([]topology.NetworkSpec{
		{
			Sink:    topology.NodeSpec{Pos: phy.Position{X: 0, Y: 0}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: 1, Y: 0}}},
		},
		{
			Sink:    topology.NodeSpec{Pos: phy.Position{X: 0, Y: 2}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: 1, Y: 2}}},
		},
	}, phy.DefaultPathLoss())
})

// wifiPairThroughput measures link A's delivered packets with link B
// offset by sep Wi-Fi channels (sep = 99 isolates link A).
func wifiPairThroughput(seed int64, sep int, opts Options) float64 {
	core := leaseCore(opts, seed,
		medium.WithRejection(net80211.OverlapCurve{}),
		medium.WithFadingSigma(1),
		medium.WithStaticFadingSigma(0),
		medium.WithLossProvider(wifiPairSnap()))
	defer core.Release()
	k, m := core.Kernel, core.Medium
	sndA := net80211.NewStation(k, m, "a.tx", phy.Position{X: 0, Y: 0}, 1, 0)
	rcvA := net80211.NewStation(k, m, "a.rx", phy.Position{X: 1, Y: 0}, 1, 0)
	rcvA.WatchSrc = 0 // count only link A's own packets
	sndA.StartSaturated(500)
	if sep <= 11 {
		sndB := net80211.NewStation(k, m, "b.tx", phy.Position{X: 0, Y: 2}, 1+sep, 0)
		net80211.NewStation(k, m, "b.rx", phy.Position{X: 1, Y: 2}, 1+sep, 0)
		sndB.StartSaturated(500)
	}
	k.RunFor(opts.Measure)
	return float64(rcvA.Delivered) / opts.Measure.Seconds()
}

// wpanPairSnap is the 802.15.4 half of the Fig. 2 geometry: sink-first
// spec order matches testbed attach order, and the one-link cells
// (sep = 99) still index the first two nodes of the matrix correctly.
var wpanPairSnap = sync.OnceValue(func() *topology.Snapshot {
	return topology.SnapshotFromSpecs([]topology.NetworkSpec{
		{
			Sink:    topology.NodeSpec{Pos: phy.Position{X: 1, Y: 0}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0, Y: 0}}},
		},
		{
			Sink:    topology.NodeSpec{Pos: phy.Position{X: 1, Y: 2}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0, Y: 2}}},
		},
	}, phy.DefaultPathLoss())
})

// wpanPairThroughput measures an 802.15.4 link's goodput with a second
// link offset by sep ZigBee channels (5 MHz each); sep = 99 isolates it.
func wpanPairThroughput(seed int64, sep int, opts Options) float64 {
	tb := newCellTestbed(opts, testbed.Options{
		Seed: seed, StaticFadingSigma: -1, Topology: wpanPairSnap(),
	})
	defer tb.Close()
	specA := topology.NetworkSpec{
		Freq:    2412,
		Sink:    topology.NodeSpec{Pos: phy.Position{X: 1, Y: 0}},
		Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0, Y: 0}}},
	}
	a := tb.AddNetwork(specA, testbed.NetworkConfig{})
	if sep <= 11 {
		specB := topology.NetworkSpec{
			Freq:    2412 + phy.MHz(5*sep),
			Sink:    topology.NodeSpec{Pos: phy.Position{X: 1, Y: 2}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0, Y: 2}}},
		}
		tb.AddNetwork(specB, testbed.NetworkConfig{})
	}
	tb.Run(time.Second, opts.Measure)
	return a.Throughput(tb.MeasuredDuration())
}

// Fig4Row is one CFD point of the concurrency probe.
type Fig4Row struct {
	CFD          phy.MHz
	NormalCPRR   float64
	AttackerCPRR float64
}

// Fig4Result is the collided-packet receive rate experiment.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4 regenerates Fig. 4: two crossed links with carrier sense disabled;
// the attacker sends a near-back-to-back stream (one packet every 3 ms) so
// every packet of the normal sender collides. CPRR is reported for both
// links per CFD ∈ {5, 4, 3, 2, 1} MHz. Shape: ~100 % at >= 4 MHz, ~97 %
// at 3 MHz, ~70 % at 2 MHz, < 20 % at 1 MHz.
func Fig4(opts Options) (Fig4Result, *Table) {
	opts = opts.withDefaults()

	cfds := []phy.MHz{5, 4, 3, 2, 1}
	type pair struct{ Normal, Attacker float64 }
	grid := runGrid(opts, len(cfds), func(cell int, seed int64) pair {
		n, a := cprrRun(seed, cfds[cell], opts)
		return pair{Normal: n, Attacker: a}
	})

	var res Fig4Result
	for i, cfd := range cfds {
		var normal, attacker float64
		for _, p := range grid[i] {
			normal += p.Normal
			attacker += p.Attacker
		}
		res.Rows = append(res.Rows, Fig4Row{
			CFD:          cfd,
			NormalCPRR:   normal / float64(opts.Seeds),
			AttackerCPRR: attacker / float64(opts.Seeds),
		})
	}

	t := &Table{
		Title:   "Fig 4: Collided packet receive rate vs channel frequency distance",
		Columns: []string{"CFD (MHz)", "normal sender CPRR", "attacker CPRR"},
	}
	for _, r := range res.Rows {
		t.AddRow(f0(float64(r.CFD)), pct(r.NormalCPRR), pct(r.AttackerCPRR))
	}
	return res, t
}

// cprrSnap is the crossed-link Fig. 3 geometry; the attacker's channel
// offset varies per cell but the placements never do.
var cprrSnap = sync.OnceValue(func() *topology.Snapshot {
	return topology.SnapshotFromSpecs([]topology.NetworkSpec{
		{
			Sink:    topology.NodeSpec{Pos: phy.Position{X: 0.5, Y: 0}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: -0.5, Y: 0}}},
		},
		{
			Sink:    topology.NodeSpec{Pos: phy.Position{X: -0.5, Y: 1}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0.5, Y: 1}}},
		},
	}, phy.DefaultPathLoss())
})

// cprrRun builds the crossed-link geometry of Fig. 3: the normal link and
// the attacker link intersect so each receiver is 1 m from both its own
// sender and the foreign one (equal received power), carrier sense off.
// Static fading is disabled: the probe measures the rejection curve, not a
// particular shadowing draw.
func cprrRun(seed int64, cfd phy.MHz, opts Options) (normalCPRR, attackerCPRR float64) {
	tb := newCellTestbed(opts, testbed.Options{
		Seed: seed, StaticFadingSigma: -1, Topology: cprrSnap(),
	})
	defer tb.Close()
	normal := tb.AddNetwork(topology.NetworkSpec{
		Freq:    2460,
		Sink:    topology.NodeSpec{Pos: phy.Position{X: 0.5, Y: 0}},
		Senders: []topology.NodeSpec{{Pos: phy.Position{X: -0.5, Y: 0}}},
	}, testbed.NetworkConfig{Scheme: testbed.SchemeNoCarrierSense})
	attacker := tb.AddNetwork(topology.NetworkSpec{
		Freq:    2460 + cfd,
		Sink:    topology.NodeSpec{Pos: phy.Position{X: -0.5, Y: 1}},
		Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0.5, Y: 1}}},
	}, testbed.NetworkConfig{
		Scheme: testbed.SchemeNoCarrierSense,
		// One packet every 3 ms at ~2.9 ms airtime: ~96 % duty cycle, so
		// every normal-sender packet is collided (Fig. 3).
		Period:  3 * time.Millisecond,
		Payload: 73,
	})
	tb.Run(time.Second, opts.Measure)
	return normal.Stats().CPRR(), attacker.Stats().CPRR()
}
