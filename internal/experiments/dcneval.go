package experiments

import (
	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// fiveNetworksConfig is the Fig. 13 configuration: five colocated networks
// spaced cfd apart.
func fiveNetworksConfig(cfd phy.MHz) topology.Config {
	return topology.Config{Plan: evalPlan(5, cfd), Layout: topology.LayoutColocated}
}

// fiveNetworks instantiates one five-network cell from a shared topology
// snapshot, with the DCN scheme applied to the selected network indices
// (nil = none, the w/o-scheme baseline).
func fiveNetworks(opts Options, seed int64, snap *topology.Snapshot, dcnOn func(i int) bool) *testbed.Testbed {
	tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
	for i, spec := range snap.Networks() {
		scheme := testbed.SchemeFixed
		if dcnOn != nil && dcnOn(i) {
			scheme = testbed.SchemeDCN
		}
		tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: scheme})
	}
	return tb
}

// middleIndex is the paper's N0: the network on the median frequency of a
// five-network strip.
const middleIndex = 2

// fiveNetsVariant is one (CFD, scheme-assignment) configuration of the
// five-network evaluation.
type fiveNetsVariant struct {
	cfd   phy.MHz
	dcnOn func(i int) bool
}

// runFiveNetworksSet measures per-network throughput for every variant,
// averaged over seeds, fanning all variant×seed simulations across the
// worker pool in one grid.
func runFiveNetworksSet(variants []fiveNetsVariant, opts Options) [][]float64 {
	// One snapshot set per distinct CFD: scheme variants at the same CFD
	// share placements and geometry. Built serially before the fan-out;
	// the map is read-only inside the cells.
	topos := make(map[phy.MHz]seedTopos, len(variants))
	for _, v := range variants {
		if _, ok := topos[v.cfd]; !ok {
			topos[v.cfd] = snapshotSeeds(opts, fiveNetworksConfig(v.cfd))
		}
	}
	grid := runGrid(opts, len(variants), func(cell int, seed int64) []float64 {
		v := variants[cell]
		tb := fiveNetworks(opts, seed, topos[v.cfd].at(seed), v.dcnOn)
		defer tb.Close()
		tb.Run(opts.Warmup, opts.Measure)
		return tb.PerNetworkThroughput()
	})
	out := make([][]float64, len(variants))
	for i := range variants {
		out[i] = meanRows(grid[i])
	}
	return out
}

// Fig14Row compares N0's throughput with and without DCN at one CFD.
type Fig14Row struct {
	CFD           phy.MHz
	N0Without     float64
	N0With        float64
	OthersWithout float64
	OthersWith    float64
}

// Fig14Result backs Figs. 14 and 15: DCN applied only on N0.
type Fig14Result struct{ Rows []Fig14Row }

// Fig14and15 regenerates Figs. 14 and 15: with five networks at CFD ∈
// {2, 3} MHz, DCN is enabled only on the middle network N0. Shape: N0
// gains substantially (the paper reports ~27 %) while the other networks
// lose a little (~5 %) to the extra concurrency.
func Fig14and15(opts Options) (Fig14Result, *Table, *Table) {
	opts = opts.withDefaults()
	onN0 := func(i int) bool { return i == middleIndex }
	per := runFiveNetworksSet([]fiveNetsVariant{
		{2, nil}, {2, onN0}, {3, nil}, {3, onN0},
	}, opts)
	var res Fig14Result
	for ci, cfd := range []phy.MHz{2, 3} {
		baseline, dcnOnN0 := per[2*ci], per[2*ci+1]
		row := Fig14Row{
			CFD:       cfd,
			N0Without: baseline[middleIndex],
			N0With:    dcnOnN0[middleIndex],
		}
		for i := range baseline {
			if i == middleIndex {
				continue
			}
			row.OthersWithout += baseline[i]
			row.OthersWith += dcnOnN0[i]
		}
		res.Rows = append(res.Rows, row)
	}

	t14 := &Table{
		Title:   "Fig 14: Throughput of network N0 (DCN only on N0)",
		Columns: []string{"CFD (MHz)", "w/o scheme (pkt/s)", "with scheme (pkt/s)", "gain"},
	}
	t15 := &Table{
		Title:   "Fig 15: Throughput of networks except N0 (DCN only on N0)",
		Columns: []string{"CFD (MHz)", "w/o scheme (pkt/s)", "with scheme (pkt/s)", "change"},
	}
	for _, r := range res.Rows {
		t14.AddRow(f0(float64(r.CFD)), f0(r.N0Without), f0(r.N0With), pct(r.N0With/r.N0Without-1))
		t15.AddRow(f0(float64(r.CFD)), f0(r.OthersWithout), f0(r.OthersWith), pct(r.OthersWith/r.OthersWithout-1))
	}
	return res, t14, t15
}

// Fig16Row is one network's pair of bars.
type Fig16Row struct {
	Network string
	Without float64
	With    float64
}

// Fig16Result backs Figs. 16 (CFD = 2 MHz) and 17 (CFD = 3 MHz).
type Fig16Result struct {
	CFD  phy.MHz
	Rows []Fig16Row
}

// figAllNetworks runs the DCN-on-all-networks comparison at one CFD.
func figAllNetworks(cfd phy.MHz, opts Options) Fig16Result {
	per := runFiveNetworksSet([]fiveNetsVariant{
		{cfd, nil}, {cfd, func(int) bool { return true }},
	}, opts)
	baseline, withDCN := per[0], per[1]
	res := Fig16Result{CFD: cfd}
	for i := range baseline {
		res.Rows = append(res.Rows, Fig16Row{
			Network: testbed.NetworkLabel(i),
			Without: baseline[i],
			With:    withDCN[i],
		})
	}
	return res
}

func figAllNetworksTable(res Fig16Result, title string) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"network", "w/o scheme (pkt/s)", "with scheme (pkt/s)", "gain"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Network, f0(r.Without), f0(r.With), pct(r.With/r.Without-1))
	}
	return t
}

// Fig16 regenerates Fig. 16: per-network throughput with DCN on every
// network at CFD = 2 MHz. Every network should improve.
func Fig16(opts Options) (Fig16Result, *Table) {
	opts = opts.withDefaults()
	res := figAllNetworks(2, opts)
	return res, figAllNetworksTable(res, "Fig 16: Per-network throughput (CFD=2 MHz, DCN on all networks)")
}

// Fig17 regenerates Fig. 17: the same comparison at CFD = 3 MHz. Shape:
// every network improves, with the middle network gaining most and the
// boundary networks least (they face less inter-channel interference).
func Fig17(opts Options) (Fig16Result, *Table) {
	opts = opts.withDefaults()
	res := figAllNetworks(3, opts)
	return res, figAllNetworksTable(res, "Fig 17: Per-network throughput (CFD=3 MHz, DCN on all networks)")
}

// Fig18Row aggregates one CFD's overall throughput.
type Fig18Row struct {
	CFD     phy.MHz
	Without float64
	With    float64
}

// Fig18Result is the CFD-selection experiment.
type Fig18Result struct{ Rows []Fig18Row }

// Fig18 regenerates Fig. 18: overall throughput of the five networks at
// CFD = 2 vs 3 MHz, with and without DCN. Shape: CFD = 3 MHz wins (the
// paper reports ~1.37x the CFD = 2 MHz overall), which is why DCN selects
// CFD = 3 MHz for the non-orthogonal design.
func Fig18(opts Options) (Fig18Result, *Table) {
	opts = opts.withDefaults()
	all := func(int) bool { return true }
	per := runFiveNetworksSet([]fiveNetsVariant{
		{2, nil}, {2, all}, {3, nil}, {3, all},
	}, opts)
	var res Fig18Result
	for ci, cfd := range []phy.MHz{2, 3} {
		baseline, withDCN := per[2*ci], per[2*ci+1]
		var wo, wi float64
		for i := range baseline {
			wo += baseline[i]
			wi += withDCN[i]
		}
		res.Rows = append(res.Rows, Fig18Row{CFD: cfd, Without: wo, With: wi})
	}
	t := &Table{
		Title:   "Fig 18: Overall throughput vs CFD (DCN on all networks)",
		Columns: []string{"CFD (MHz)", "w/o scheme (pkt/s)", "with scheme (pkt/s)", "gain"},
	}
	for _, r := range res.Rows {
		t.AddRow(f0(float64(r.CFD)), f0(r.Without), f0(r.With), pct(r.With/r.Without-1))
	}
	return res, t
}
