package experiments

import (
	"time"

	"nonortho/internal/arena"
	"nonortho/internal/frame"
	"nonortho/internal/lpl"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/topology"
)

// LPLRow is one wake-threshold policy's outcome.
type LPLRow struct {
	Policy           string
	Delivered        int
	FalseWakeupsPerS float64
	ReceiverMJPerS   float64
}

// LPLResult is the duty-cycling extension.
type LPLResult struct {
	Rows []LPLRow
	// EnergySavings is the adaptive receiver's energy reduction.
	EnergySavings float64
}

// LPL extends the paper's threshold-adaptation idea to preamble-sampling
// low-power listening. An LPL link on 2460 MHz carries one reading per
// second while two saturated CSMA networks run at ±3 MHz. The receiver's
// wake decision is an energy threshold:
//
//   - at the fixed -77 dBm, every sample finds neighbour-channel leakage
//     and wakes the radio for nothing (a false wakeup per check);
//   - a DCN-style threshold above the filtered foreign energy (and below
//     co-channel strobe RSSI) sleeps through the leakage and still
//     catches every strobe train.
//
// Shape: identical delivery, an order-of-magnitude fewer false wakeups,
// and a large receiver-energy saving.
func LPL(opts Options) (LPLResult, *Table) {
	opts = opts.withDefaults()

	type seedResult struct {
		Delivered         int
		FalsePerS, MjPerS float64
	}
	run := func(threshold phy.DBm) (delivered int, falsePerS, mjPerS float64) {
		cells := runSeeds(opts, func(seed int64) seedResult {
			core := leaseCore(opts, seed)
			defer core.Release()
			k := core.Kernel

			// The LPL link.
			sndRadio := core.NewRadio(radio.Config{
				Pos: phy.Position{X: 0}, Freq: 2460, TxPower: 0,
				CCAThreshold: phy.DefaultCCAThreshold, Address: 1,
			})
			rcvRadio := core.NewRadio(radio.Config{
				Pos: phy.Position{X: 1}, Freq: 2460, TxPower: 0,
				CCAThreshold: phy.DefaultCCAThreshold, Address: 2,
			})
			snd := lpl.NewSender(k, sndRadio, lpl.DefaultCheckInterval)
			rcv := lpl.NewReceiver(k, rcvRadio, lpl.DefaultCheckInterval, threshold)
			rcv.Start()

			// Two saturated blasters on the non-orthogonal neighbours,
			// ~2.5 m away: leakage ≈ -75 dBm at the receiver.
			for i, f := range []phy.MHz{2457, 2463} {
				spec := topology.NetworkSpec{
					Freq: f,
					Sink: topology.NodeSpec{Pos: phy.Position{X: 3.5, Y: 2 * float64(i)}},
					Senders: []topology.NodeSpec{
						{Pos: phy.Position{X: 2.8, Y: 2 * float64(i)}},
						{Pos: phy.Position{X: 4.2, Y: 2 * float64(i)}},
					},
				}
				addNeighborNetwork(core, spec, seed)
			}

			// One reading per second.
			k.NewTicker(time.Second, func() { snd.Send(2, make([]byte, 32)) })

			k.RunFor(opts.Warmup + opts.Measure)
			secs := (opts.Warmup + opts.Measure).Seconds()
			return seedResult{
				Delivered: rcv.Received(),
				FalsePerS: float64(rcv.FalseWakeups()) / secs,
				MjPerS:    rcv.Radio().EnergyReport().Millijoules / secs,
			}
		})
		for _, c := range cells {
			delivered += c.Delivered
			falsePerS += c.FalsePerS
			mjPerS += c.MjPerS
		}
		n := float64(opts.Seeds)
		return delivered, falsePerS / n, mjPerS / n
	}

	naiveDelivered, naiveFalse, naiveMJ := run(phy.DefaultCCAThreshold)
	adaptDelivered, adaptFalse, adaptMJ := run(-50)

	res := LPLResult{
		Rows: []LPLRow{
			{Policy: "fixed -77 dBm wake threshold", Delivered: naiveDelivered,
				FalseWakeupsPerS: naiveFalse, ReceiverMJPerS: naiveMJ},
			{Policy: "adaptive (DCN-style) threshold", Delivered: adaptDelivered,
				FalseWakeupsPerS: adaptFalse, ReceiverMJPerS: adaptMJ},
		},
	}
	if naiveMJ > 0 {
		res.EnergySavings = 1 - adaptMJ/naiveMJ
	}

	t := &Table{
		Title:   "Extension: low-power listening under non-orthogonal neighbours",
		Columns: []string{"wake policy", "delivered", "false wakeups/s", "receiver mJ/s"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Policy, f0(float64(r.Delivered)), f1(r.FalseWakeupsPerS), f2(r.ReceiverMJPerS))
	}
	t.AddRow("receiver energy saved", pct(res.EnergySavings), "", "")
	return res, t
}

// addNeighborNetwork spins up a small saturated CSMA network without the
// full testbed (no statistics needed — it only exists to leak energy).
func addNeighborNetwork(core *arena.Core, spec topology.NetworkSpec, seed int64) {
	_ = seed
	k := core.Kernel
	sinkRadio := core.NewRadio(radio.Config{
		Pos: spec.Sink.Pos, Freq: spec.Freq, TxPower: 0,
		CCAThreshold: phy.DefaultCCAThreshold,
		Address:      frame.Address(1000 + int(spec.Freq)),
	})
	_ = sinkRadio
	for i, snd := range spec.Senders {
		r := core.NewRadio(radio.Config{
			Pos: snd.Pos, Freq: spec.Freq, TxPower: 0,
			CCAThreshold: phy.DefaultCCAThreshold,
			Address:      frame.Address(2000 + 10*int(spec.Freq) + i),
		})
		var blast func()
		blast = func() {
			f := &frame.Frame{Type: frame.TypeData,
				Dst: sinkRadio.Address(), Src: r.Address(),
				Payload: make([]byte, 64)}
			if tx, err := r.Transmit(f); err == nil {
				k.At(tx.End, blast)
			} else {
				k.After(time.Millisecond, blast)
			}
		}
		blast()
	}
}
