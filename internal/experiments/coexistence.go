package experiments

import (
	"nonortho/internal/net80211"
	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// CoexistenceRow is one (design, Wi-Fi state) cell.
type CoexistenceRow struct {
	Design  string
	WiFi    bool
	Total   float64
	LossPct float64 // throughput lost to the Wi-Fi interferer
}

// CoexistenceResult backs the Wi-Fi coexistence extension.
type CoexistenceResult struct {
	Rows []CoexistenceRow
	// ZigBeeLoss and DCNLoss are each design's fractional throughput loss
	// under the interferer.
	ZigBeeLoss float64
	DCNLoss    float64
}

// Coexistence is an extension to the related-work concern the paper cites
// from TMCP: "interferences caused by other wireless networks". A bursty
// 802.11 cell on Wi-Fi channel 11 (2462 MHz, 22 MHz wide) overlaps the
// WSN band. The fixed -77 dBm design freezes whenever the Wi-Fi burst is
// on the air (its wideband energy reads as a busy channel everywhere),
// while DCN's threshold — anchored to co-channel packet RSSI, which the
// Wi-Fi signal never contributes to — rises above the foreign energy and
// keeps transmitting through it. Shape: both designs lose throughput to
// Wi-Fi, but the fixed design loses much more.
func Coexistence(opts Options) (CoexistenceResult, *Table) {
	opts = opts.withDefaults()

	// Cells: (design, Wi-Fi state) in the table's row order.
	variants := []struct{ dcnOn, wifi bool }{
		{false, false}, {false, true}, {true, false}, {true, true},
	}
	// All four (design, Wi-Fi) cells of a seed share one topology
	// snapshot. The Wi-Fi interferer attaches to the medium beyond the
	// snapshot's node set; its pairwise losses fall back to the medium's
	// own model via the snapshot's position check.
	topos := snapshotSeeds(opts, topology.Config{
		Plan:   evalPlan(6, 3),
		Layout: topology.LayoutColocated,
	})
	grid := runGrid(opts, len(variants), func(cell int, seed int64) float64 {
		v := variants[cell]
		snap := topos.at(seed)
		tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
		defer tb.Close()
		scheme := testbed.SchemeFixed
		if v.dcnOn {
			scheme = testbed.SchemeDCN
		}
		for _, spec := range snap.Networks() {
			tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: scheme})
		}
		if v.wifi {
			// A busy Wi-Fi cell 5 m away at +15 dBm on channel 11
			// (2462 MHz): its in-band share arrives well above the
			// -77 dBm CCA default across the whole WSN band.
			intf := net80211.NewInterferer(tb.Kernel, tb.Medium,
				phy.Position{X: 5, Y: 5}, 11, 15)
			intf.Start()
		}
		tb.Run(opts.Warmup, opts.Measure)
		return tb.OverallThroughput()
	})
	n := float64(opts.Seeds)
	zigOff := sum(grid[0]) / n
	zigOn := sum(grid[1]) / n
	dcnOff := sum(grid[2]) / n
	dcnOn := sum(grid[3]) / n

	res := CoexistenceResult{
		Rows: []CoexistenceRow{
			{Design: "ZigBee (fixed -77 dBm)", WiFi: false, Total: zigOff},
			{Design: "ZigBee (fixed -77 dBm)", WiFi: true, Total: zigOn, LossPct: 1 - zigOn/zigOff},
			{Design: "DCN (CFD=3)", WiFi: false, Total: dcnOff},
			{Design: "DCN (CFD=3)", WiFi: true, Total: dcnOn, LossPct: 1 - dcnOn/dcnOff},
		},
		ZigBeeLoss: 1 - zigOn/zigOff,
		DCNLoss:    1 - dcnOn/dcnOff,
	}

	t := &Table{
		Title:   "Extension: Wi-Fi coexistence — a bursty 802.11 cell on channel 11 over the WSN band",
		Columns: []string{"design", "Wi-Fi", "total (pkt/s)", "loss"},
	}
	for _, r := range res.Rows {
		wifi := "off"
		if r.WiFi {
			wifi = "on"
		}
		loss := ""
		if r.WiFi {
			loss = pct(r.LossPct)
		}
		t.AddRow(r.Design, wifi, f0(r.Total), loss)
	}
	return res, t
}
