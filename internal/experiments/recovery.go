package experiments

import (
	"nonortho/internal/stats"
)

// Fig28Row is one threshold point of the recovery sweep.
type Fig28Row struct {
	Threshold   float64
	Sent        float64
	Received    float64
	Recoverable float64
}

// Fig28Result is the severe-interference recovery experiment.
type Fig28Result struct {
	Rows []Fig28Row
	// ErrFractions pools the error-bit fractions of all CRC-failed
	// packets across the sweep (consumed by Fig29).
	ErrFractions []float64
}

// Fig28 regenerates Fig. 28: the Fig. 5 layout with the observed link
// transmitting at -22 dBm against 0 dBm inter-channel interferers. As the
// CCA threshold relaxes, a visible gap opens between sent and received
// (≈ 20 % loss in the paper); adding the partial-packet-recovery oracle
// (<= 10 % error bits repairable) closes most of it — the "Recoverable"
// curve.
func Fig28(opts Options) (Fig28Result, *Table) {
	opts = opts.withDefaults()
	ths := sweepThresholds()
	grid := runGrid(opts, len(ths), func(cell int, seed int64) ccaSweepResultRow {
		return ccaSweepRun(seed, ths[cell], -22, false, opts)
	})
	var res Fig28Result
	for i, th := range ths {
		var sent, recv, recov float64
		// ErrFractions keeps the (threshold, seed) pooling order Fig29
		// consumes.
		for _, row := range grid[i] {
			sent += row.SentRate
			recv += row.RecvRate
			recov += row.RecoverableRate
			res.ErrFractions = append(res.ErrFractions, row.ErrFractions...)
		}
		n := float64(opts.Seeds)
		res.Rows = append(res.Rows, Fig28Row{
			Threshold:   float64(th),
			Sent:        sent / n,
			Received:    recv / n,
			Recoverable: recov / n,
		})
	}
	t := &Table{
		Title:   "Fig 28: Packet recovery under severe inter-channel interference (link at -22 dBm)",
		Columns: []string{"threshold (dBm)", "sent (pkt/s)", "received (pkt/s)", "recoverable (pkt/s)"},
	}
	for _, r := range res.Rows {
		t.AddRow(f0(r.Threshold), f0(r.Sent), f0(r.Received), f0(r.Recoverable))
	}
	return res, t
}

// Fig29Result is the error-bit CDF of CRC-failed packets.
type Fig29Result struct {
	// CDF samples the cumulative fraction of CRC-failed packets vs their
	// error-bit proportion.
	CDF []stats.CDFPoint
	// FractionWithin10Pct is the paper's (0.1, 0.87) anchor point.
	FractionWithin10Pct float64
	// Failed is the number of CRC-failed packets pooled.
	Failed int
}

// Fig29 regenerates Fig. 29 from the Fig. 28 run: the CDF of the
// proportion of error bits among CRC-failed packets. Shape: heavily
// front-loaded — the large majority of CRC failures carry only a small
// fraction of corrupted bits (the paper reports 87 % within 10 %).
func Fig29(opts Options) (Fig29Result, *Table) {
	opts = opts.withDefaults()
	run, _ := Fig28(opts)

	var dist stats.Distribution
	for _, v := range run.ErrFractions {
		dist.Observe(v)
	}
	res := Fig29Result{
		CDF:                 dist.CDF(11),
		FractionWithin10Pct: dist.FractionAtOrBelow(0.10),
		Failed:              dist.N(),
	}
	t := &Table{
		Title:   "Fig 29: CDF of error-bit proportion among CRC-failed packets",
		Columns: []string{"error-bit proportion", "cumulative fraction"},
	}
	for _, p := range res.CDF {
		t.AddRow(f2(p.X), f2(p.F))
	}
	t.AddRow("fraction within 10%", pct(res.FractionWithin10Pct))
	return res, t
}
