package experiments

import (
	"math"
	"time"

	"nonortho/internal/sim"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// cityFarFieldBudgetDB is the sensed-power error budget the city-scale
// cells grant the medium's far-field fold. Under the default model a
// certified-far transmitter is bounded by MaxTxPower − 150 dB; even
// 50,000 of them aggregate to well under half a dB above the noise floor
// (medium.WithFarField enforces this at Reset — a budget the snapshot
// cannot honour panics instead of degrading silently).
const cityFarFieldBudgetDB = 0.5

// cityPeriod spaces each sender's transmissions. City cells exist to
// measure scaling, not saturation: periodic traffic keeps the event count
// linear in the node count so a 5,000-node cell costs what its population
// implies, not what 4,000 saturated CSMA loops imply.
const cityPeriod = 500 * time.Millisecond

// citySide returns the deployment square's side for a population,
// scaling area linearly with the network count so density — and with it
// the expected near-field neighbourhood size k — stays constant across
// the ladder. 200 m of side per network keeps the 150 dB near range
// (~820 m under the default model) covering a few percent of the city.
func citySide(networks int) float64 {
	return 200 * math.Sqrt(float64(networks))
}

// CityScaleRow is one population's outcome in the city-scale study.
type CityScaleRow struct {
	Networks int
	Nodes    int
	// NearFrac is the fraction of the dense n² pair matrix the near-field
	// snapshot actually materialises (identical across seeds' geometry
	// only in expectation; reported for the first seed).
	NearFrac float64
	// Fixed and DCN are mean per-network goodput (pkt/s) under each scheme.
	Fixed float64
	DCN   float64
	// Gain is DCN/Fixed − 1.
	Gain float64
}

// CityScaleResult backs the city-scale spatial-tier experiment.
type CityScaleResult struct {
	Rows []CityScaleRow
}

// cityPopulations is the population ladder: networks of 5 nodes each
// (4 senders + sink), so 100 → 500 nodes up to 1,000 → 5,000 nodes.
var cityPopulations = []int{100, 400, 1000}

// CityScale is the spatial-tier extension experiment: hundreds to
// thousands of paper-sized networks scattered over a city-scale square,
// cycling the 6-channel CFD=3 plan, run once with fixed-threshold CSMA
// and once with DCN. Snapshots are near-field (loss bound 150 dB) so
// memory is O(n·k), and the medium folds certified-far transmitters into
// the noise floor under an explicit 0.5 dB error budget, so per-event
// cost is bounded by the neighbourhood size k rather than the city
// population n. The paper's claim this probes: whether DCN's per-network
// gain survives when the interferer set is governed by geometry instead
// of a single shared region (under periodic city traffic it does not —
// the adjusted CCA threshold buys nothing when most networks are already
// interference-free, and its extra deferrals cost a few percent).
func CityScale(opts Options) (CityScaleResult, *Table) {
	opts = opts.withDefaults()

	type cityTopos struct {
		base  int64
		snaps []*topology.Snapshot
	}
	// One snapshot per (population, seed), built serially before the cells
	// fan out, exactly like snapshotSeeds — but from city specs.
	topos := make([]cityTopos, len(cityPopulations))
	for p, networks := range cityPopulations {
		cfg := topology.CityConfig{
			Plan:     evalPlan(6, 3),
			Networks: networks,
			AreaSide: citySide(networks),
		}
		ct := cityTopos{base: opts.Seed, snaps: make([]*topology.Snapshot, opts.Seeds)}
		for i := range ct.snaps {
			nets, err := topology.GenerateCity(cfg, sim.NewRNG(opts.Seed+int64(i)))
			if err != nil {
				panic(err) // ladder configurations are static; cannot fail
			}
			snap, err := topology.SnapshotFromSpecsNear(nets, nil, spatialLossBoundDB)
			if err != nil {
				panic(err)
			}
			ct.snaps[i] = snap
		}
		topos[p] = ct
	}

	schemes := []testbed.Scheme{testbed.SchemeFixed, testbed.SchemeDCN}
	grid := runGrid(opts, len(cityPopulations)*len(schemes), func(cell int, seed int64) float64 {
		pop, scheme := cell/len(schemes), schemes[cell%len(schemes)]
		ct := topos[pop]
		snap := ct.snaps[seed-ct.base]
		tb := newCellTestbed(opts, testbed.Options{
			Seed:           seed,
			Topology:       snap,
			FarFieldBudget: cityFarFieldBudgetDB,
		})
		defer tb.Close()
		for _, spec := range snap.Networks() {
			tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: scheme, Period: cityPeriod})
		}
		tb.Run(opts.Warmup, opts.Measure)
		return tb.OverallThroughput() / float64(cityPopulations[pop])
	})

	res := CityScaleResult{}
	for p, networks := range cityPopulations {
		snap := topos[p].snaps[0]
		n := snap.NumNodes()
		fixed := mean(grid[p*len(schemes)])
		dcnMean := mean(grid[p*len(schemes)+1])
		res.Rows = append(res.Rows, CityScaleRow{
			Networks: networks,
			Nodes:    n,
			NearFrac: float64(snap.NearPairs()) / float64(n*n),
			Fixed:    fixed,
			DCN:      dcnMean,
			Gain:     dcnMean/fixed - 1,
		})
	}

	t := &Table{
		Title:   "Extension: city-scale spatial tier — per-network goodput vs population (6-channel DCN plan, periodic traffic)",
		Columns: []string{"networks", "nodes", "near pairs", "fixed (pkt/s)", "DCN (pkt/s)", "DCN gain"},
	}
	for _, r := range res.Rows {
		t.AddRow(f0(float64(r.Networks)), f0(float64(r.Nodes)), pct(r.NearFrac), f2(r.Fixed), f2(r.DCN), pct(r.Gain))
	}
	return res, t
}
