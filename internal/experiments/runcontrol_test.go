package experiments

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"nonortho/internal/parallel"
	"nonortho/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir(), store.WithVersion("test"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// engineOpts builds Options routing through a RunControl without the
// experiment defaults (runEngine never reads the durations).
func engineOpts(rc *RunControl) Options {
	return Options{Seed: 1, Seeds: 2, Workers: 1, Run: rc}.withDefaults()
}

func TestRunEngineStoreServesResumedCells(t *testing.T) {
	rc := &RunControl{Store: testStore(t)}
	rc.StartExperiment("enginetest")
	opts := engineOpts(rc)
	var computed atomic.Int64
	fn := func(cell int) float64 {
		computed.Add(1)
		return float64(cell) * 2
	}
	first := runCells(opts, 5, fn)
	if got := computed.Load(); got != 5 {
		t.Fatalf("first pass computed %d cells, want 5", got)
	}

	// Same experiment re-started: sweep ordinals rewind, keys match.
	rc.Resume = true
	rc.StartExperiment("enginetest")
	second := runCells(opts, 5, fn)
	if got := computed.Load(); got != 5 {
		t.Fatalf("resume recomputed cells: %d total computations, want 5", got)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("cell %d: resumed %v != computed %v", i, second[i], first[i])
		}
	}

	// Without Resume the store is write-only: cells recompute.
	rc.Resume = false
	rc.StartExperiment("enginetest")
	runCells(opts, 5, fn)
	if got := computed.Load(); got != 10 {
		t.Fatalf("non-resume run should recompute: %d computations, want 10", got)
	}
}

// Each sweep within an experiment gets its own ordinal, and StartExperiment
// rewinds it, so a resumed run's Nth sweep hits the original Nth sweep's
// entries and never another's.
func TestRunEngineSweepOrdinalsIsolateSweeps(t *testing.T) {
	rc := &RunControl{Store: testStore(t), Resume: true}
	rc.StartExperiment("ordinals")
	opts := engineOpts(rc)
	a := runCells(opts, 2, func(cell int) float64 { return 10 + float64(cell) })
	b := runCells(opts, 2, func(cell int) float64 { return 20 + float64(cell) })

	rc.StartExperiment("ordinals")
	a2 := runCells(opts, 2, func(cell int) float64 { t.Error("sweep 0 recomputed"); return -1 })
	b2 := runCells(opts, 2, func(cell int) float64 { t.Error("sweep 1 recomputed"); return -1 })
	if a2[0] != a[0] || a2[1] != a[1] || b2[0] != b[0] || b2[1] != b[1] {
		t.Fatalf("sweeps crossed: %v %v vs %v %v", a2, b2, a, b)
	}
}

// Differing run configuration (here the seed) misses the store instead of
// serving a stale result.
func TestRunEngineConfigKeysStore(t *testing.T) {
	rc := &RunControl{Store: testStore(t), Resume: true}
	rc.StartExperiment("cfg")
	opts := engineOpts(rc)
	runCells(opts, 1, func(cell int) float64 { return 1 })

	opts2 := opts
	opts2.Seed = 99
	rc.StartExperiment("cfg")
	var recomputed bool
	runCells(opts2, 1, func(cell int) float64 { recomputed = true; return 2 })
	if !recomputed {
		t.Fatal("changed seed served a stale store entry")
	}
}

func TestRunEngineKeepGoingCollectsAndMarks(t *testing.T) {
	rc := &RunControl{KeepGoing: true}
	rc.StartExperiment("partial")
	opts := engineOpts(rc)
	res := runCells(opts, 6, func(cell int) float64 {
		if cell == 2 || cell == 4 {
			panic(fmt.Sprintf("boom %d", cell))
		}
		return float64(cell)
	})
	if len(res) != 6 || res[2] != 0 || res[4] != 0 || res[5] != 5 {
		t.Fatalf("partial results wrong: %v", res)
	}
	fails := rc.TakeFailures()
	if len(fails) != 1 || fails[0].Experiment != "partial" || fails[0].Sweep != 0 {
		t.Fatalf("failures = %+v, want one record for sweep 0 of partial", fails)
	}
	if n := FailedCells(fails); n != 2 {
		t.Fatalf("FailedCells = %d, want 2", n)
	}
	tbl := &Table{Title: "t", Columns: []string{"a", "b"}}
	tbl.AddRow("x", "y")
	MarkFailedCells(tbl, fails)
	out := tbl.String()
	if !strings.Contains(out, "FAILED cell 2") || !strings.Contains(out, "FAILED cell 4") || !strings.Contains(out, "boom 2") {
		t.Fatalf("table not marked with failed cells:\n%s", out)
	}
	if rc.TakeFailures() != nil {
		t.Fatal("TakeFailures did not clear")
	}
}

// Without KeepGoing the sweep panics with the structured *SweepError, as
// parallel.Run always did.
func TestRunEngineFailFastPanics(t *testing.T) {
	rc := &RunControl{}
	rc.StartExperiment("fatal")
	opts := engineOpts(rc)
	defer func() {
		se, ok := recover().(*parallel.SweepError)
		if !ok || len(se.Fatal()) != 1 || se.Failures[0].Cell == 0 {
			t.Fatalf("recover = %+v, want SweepError with one fatal failure", se)
		}
	}()
	runCells(opts, 3, func(cell int) float64 {
		if cell == 1 {
			panic("boom")
		}
		return 0
	})
	t.Fatal("sweep with a failed cell returned")
}

// Cancellation propagates even under keep-going: partial output after
// SIGINT would break the resume contract.
func TestRunEngineCancelPropagates(t *testing.T) {
	rc := &RunControl{KeepGoing: true, Canceled: func() bool { return true }}
	rc.StartExperiment("cancel")
	opts := engineOpts(rc)
	defer func() {
		se, ok := recover().(*parallel.SweepError)
		if !ok || !se.Canceled {
			t.Fatalf("recover = %+v, want canceled SweepError", se)
		}
	}()
	runCells(opts, 3, func(cell int) float64 { return 0 })
	t.Fatal("canceled sweep returned")
}

// Failed cells never reach the store: a resume after a keep-going run
// recomputes exactly the cells that failed.
func TestRunEngineStoresOnlyCompletedCells(t *testing.T) {
	rc := &RunControl{Store: testStore(t), KeepGoing: true}
	rc.StartExperiment("sparse")
	opts := engineOpts(rc)
	runCells(opts, 4, func(cell int) float64 {
		if cell == 1 {
			panic("boom")
		}
		return float64(cell)
	})
	if n, _ := rc.Store.Count(); n != 3 {
		t.Fatalf("store holds %d entries after 3 completed cells, want 3", n)
	}
	rc.TakeFailures()

	rc.Resume = true
	rc.StartExperiment("sparse")
	var recomputed []int
	res := runCells(opts, 4, func(cell int) float64 {
		recomputed = append(recomputed, cell)
		return float64(cell)
	})
	if len(recomputed) != 1 || recomputed[0] != 1 {
		t.Fatalf("resume recomputed %v, want just the failed cell [1]", recomputed)
	}
	if res[1] != 1 || res[3] != 3 {
		t.Fatalf("resumed results wrong: %v", res)
	}
}

// A nil RunControl in Options degrades to the bare parallel sweep.
func TestRunEngineNilControl(t *testing.T) {
	res := runCells(Options{Workers: 2}.withDefaults(), 4, func(cell int) float64 { return float64(cell) })
	if len(res) != 4 || res[3] != 3 {
		t.Fatalf("bare sweep broken: %v", res)
	}
}
