package experiments

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"nonortho/internal/parallel"
	"nonortho/internal/store"
)

// Crash/resume identity: a sweep interrupted at an arbitrary cell
// boundary, then resumed from the flushed store, must render tables
// byte-identical to an uninterrupted run. The store key excludes worker
// count, so a sweep interrupted at Workers=8 and resumed at Workers=1
// (or vice versa) must also match.

// cellCounter counts started cells so a test can cancel a sweep after a
// chosen number of cell boundaries, simulating a signal arriving
// mid-run.
type cellCounter struct{ started atomic.Int64 }

func (c *cellCounter) CellStarted(int)  { c.started.Add(1) }
func (c *cellCounter) CellFinished(int) {}

// interruptedRun executes run with a store-backed RunControl that
// cancels once killAfter cells have started. Cells already in flight
// complete and flush to the store; the canceled sweep panics with a
// canceled *parallel.SweepError, swallowed here exactly as the CLI
// swallows it before printing the resume hint. Reports whether the run
// was actually cut short (an experiment with fewer cells than killAfter
// just finishes).
func interruptedRun(t *testing.T, name string, run func(Options) string, opts Options, st *store.Store, killAfter int64) (interrupted bool) {
	t.Helper()
	var c cellCounter
	rc := &RunControl{
		Store:    st,
		Canceled: func() bool { return c.started.Load() >= killAfter },
		Watch:    &c,
	}
	rc.StartExperiment(name)
	opts.Run = rc
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		se, ok := r.(*parallel.SweepError)
		if !ok || !se.Canceled {
			panic(r)
		}
		interrupted = true
	}()
	run(opts)
	return false
}

// resumedRun re-executes run against the same store with Resume set, as
// `dcnsim -store DIR -resume` would after the interrupt.
func resumedRun(name string, run func(Options) string, opts Options, st *store.Store) string {
	rc := &RunControl{Store: st, Resume: true}
	rc.StartExperiment(name)
	opts.Run = rc
	return run(opts)
}

// assertCrashResumeIdentity cuts one golden experiment short at the
// given cell boundaries (one per worker count), resumes each from its
// store, and requires both resumed tables to match an uninterrupted
// serial baseline byte for byte. Returns how many of the two runs were
// actually interrupted so callers can assert the kill points bit.
func assertCrashResumeIdentity(t *testing.T, tc goldenTable, kill1, kill8 int64) (interrupted int) {
	t.Helper()
	baseline := tc.run(goldenOpts(1))
	for _, w := range []struct {
		workers int
		kill    int64
	}{{1, kill1}, {8, kill8}} {
		st, err := store.Open(t.TempDir(), store.WithVersion("crashresume"))
		if err != nil {
			t.Fatal(err)
		}
		if interruptedRun(t, tc.name, tc.run, goldenOpts(w.workers), st, w.kill) {
			interrupted++
		}
		if n, _ := st.Count(); n == 0 {
			t.Errorf("%s workers=%d: no cells flushed before the cut at cell %d", tc.name, w.workers, w.kill)
		}
		got := resumedRun(tc.name, tc.run, goldenOpts(w.workers), st)
		if got != baseline {
			t.Errorf("%s workers=%d: resumed table differs from uninterrupted run\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
				tc.name, w.workers, baseline, got)
		}
	}
	return interrupted
}

// TestCrashResumeBitIdentitySubset is the always-on (race-enabled)
// representative of TestCrashResumeBitIdentity: two structurally
// different drivers — Fig19's headline grid and Fig14and15's two-table
// multi-sweep — interrupted at seeded cell boundaries and resumed at
// both worker counts.
func TestCrashResumeBitIdentitySubset(t *testing.T) {
	if testing.Short() {
		t.Skip("interrupts and resumes simulation sweeps; skipped in -short")
	}
	subset := map[string]bool{"Fig19": true, "Fig14and15": true}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range goldenTables() {
		if !subset[tc.name] {
			continue
		}
		tc := tc
		kill1, kill8 := 1+rng.Int63n(5), 1+rng.Int63n(5)
		t.Run(tc.name, func(t *testing.T) {
			assertCrashResumeIdentity(t, tc, kill1, kill8)
		})
	}
}

// TestCrashResumeBitIdentity interrupts every golden experiment at a
// seeded, randomized cell boundary, resumes it from the flushed store,
// and requires the resumed output byte-identical to an uninterrupted
// run — at Workers=1 and Workers=8. This is the acceptance check that
// `dcnsim -store DIR`, SIGINT, `dcnsim -store DIR -resume` cannot move
// a single byte of any of the 17 golden tables.
func TestCrashResumeBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("interrupts and resumes 17 experiments twice each; skipped in -short")
	}
	if raceEnabled {
		t.Skip("minutes under the race detector; TestCrashResumeBitIdentitySubset covers the path under race")
	}
	rng := rand.New(rand.NewSource(2026))
	tables := goldenTables()
	interrupted, runs := 0, 0
	for _, tc := range tables {
		tc := tc
		kill1, kill8 := 1+rng.Int63n(5), 1+rng.Int63n(5)
		t.Run(tc.name, func(t *testing.T) {
			interrupted += assertCrashResumeIdentity(t, tc, kill1, kill8)
			runs += 2
		})
	}
	// The kill points must actually bite: if most runs finish before the
	// cut, the suite degenerates into a cache test instead of a
	// crash/resume test.
	if interrupted < runs/2 {
		t.Errorf("only %d of %d runs were cut short; kill points no longer exercise mid-sweep resume", interrupted, runs)
	}
}
