package experiments

import (
	"testing"
	"time"

	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// TestCityScaleWorkerInvariance runs a shrunk city-scale ladder at one
// worker and at eight and requires byte-identical tables — the same
// contract every golden driver honours, here with the far-field fold
// active (folding changes which sums are approximated, but never varies
// with scheduling).
func TestCityScaleWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulation cells; skipped in -short")
	}
	old := cityPopulations
	cityPopulations = []int{4, 10}
	defer func() { cityPopulations = old }()

	opts := Options{Seed: 1, Seeds: 2, Warmup: 300 * time.Millisecond, Measure: 500 * time.Millisecond}
	opts.Workers = 1
	_, t1 := CityScale(opts)
	opts.Workers = 8
	res, t8 := CityScale(opts)
	if t1.String() != t8.String() {
		t.Fatalf("city-scale tables differ across worker counts:\n%s\nvs\n%s", t1, t8)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Nodes != r.Networks*5 {
			t.Fatalf("population %d: %d nodes, want %d", r.Networks, r.Nodes, r.Networks*5)
		}
		if r.Fixed <= 0 || r.DCN <= 0 {
			t.Fatalf("population %d: non-positive goodput (fixed %v, DCN %v)", r.Networks, r.Fixed, r.DCN)
		}
		if r.NearFrac <= 0 || r.NearFrac > 1 {
			t.Fatalf("population %d: near fraction %v outside (0, 1]", r.Networks, r.NearFrac)
		}
	}
}

// TestCityLadderSnapshotsAreSparseAndFoldable pins the driver's static
// configuration: every population of the real ladder builds a near-field
// snapshot (never densely materialised) whose certified floor honours the
// driver's fold budget — the same check the medium enforces by panic at
// cell reset, verified here without paying for the cells.
func TestCityLadderSnapshotsAreSparseAndFoldable(t *testing.T) {
	for _, networks := range cityPopulations {
		cfg := topology.CityConfig{
			Plan:     evalPlan(6, 3),
			Networks: networks,
			AreaSide: citySide(networks),
		}
		nets, err := topology.GenerateCity(cfg, sim.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		snap, err := topology.SnapshotFromSpecsNear(nets, nil, spatialLossBoundDB)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Dense() {
			t.Fatalf("%d networks: snapshot is dense", networks)
		}
		n := snap.NumNodes()
		if n != cfg.NumNodes() {
			t.Fatalf("%d networks: %d nodes, want %d", networks, n, cfg.NumNodes())
		}
		bound, maxFar, ok := snap.FarField()
		if !ok || bound != spatialLossBoundDB || maxFar <= 0 || maxFar >= n {
			t.Fatalf("%d networks: FarField() = (%v, %d, %v)", networks, bound, maxFar, ok)
		}
		// O(n·k) storage: the 5,000-node cell must materialise well under a
		// tenth of the dense matrix.
		if frac := float64(snap.NearPairs()) / float64(n*n); networks >= 1000 && frac > 0.10 {
			t.Fatalf("%d networks: near fraction %.3f, want < 0.10", networks, frac)
		}
	}
}
