package experiments

import (
	"fmt"

	"nonortho/internal/parallel"
	"nonortho/internal/store"
)

// RunControl carries the cross-cutting sweep machinery — the resumable
// result store, deterministic retry, keep-going failure collection,
// cancellation and the wall-clock watcher — across every parallel sweep
// an experiment runs. One RunControl serves a whole CLI invocation; the
// driver registry calls StartExperiment before each driver so sweep
// ordinals and store keys are scoped per experiment.
//
// RunControl is not itself concurrency-safe: StartExperiment,
// TakeFailures and the sweeps that record into it all run on the
// invoking goroutine (sweeps join before returning). Canceled and Watch
// are called from worker goroutines and must be safe for that, exactly
// as in parallel.RunOptions.
type RunControl struct {
	// Store, when set, memoises every completed cell under a canonical
	// key; failed cells are never stored.
	Store *store.Store
	// Resume serves store hits instead of recomputing. Without Resume
	// the store is write-only: cells recompute and overwrite, which
	// refreshes entries without ever trusting old ones.
	Resume bool
	// KeepGoing records failed cells and lets the sweep emit a partial
	// result (zero values at failed cells, marked via MarkFailedCells)
	// instead of panicking on the first failed sweep.
	KeepGoing bool
	// Retry re-runs each failed cell once to classify the failure as
	// deterministic (fails identically again) or environmental (passes
	// on retry; the retry result is used).
	Retry bool
	// Canceled, polled between cells, stops the sweep at the next cell
	// boundary; the sweep then panics with a canceled *parallel.SweepError
	// regardless of KeepGoing, so the caller can print a resume hint.
	Canceled func() bool
	// Watch observes every cell attempt (the wall-clock watchdog).
	Watch parallel.Watcher
	// Logf receives loud non-fatal diagnostics (environmental retries).
	Logf func(format string, args ...any)

	experiment string
	sweepSeq   int
	failures   []SweepFailure
}

// SweepFailure records one sweep's failures for later reporting: which
// experiment, which of its sweeps, and the structured error listing
// every failed cell.
type SweepFailure struct {
	Experiment string
	Sweep      int
	Err        *parallel.SweepError
}

// StartExperiment scopes subsequent sweeps (their store keys and
// failure records) to the named experiment and resets the sweep
// ordinal. The name must be stable across runs — it is part of the
// store key — so drivers use their CLI registry names.
func (rc *RunControl) StartExperiment(name string) {
	if rc == nil {
		return
	}
	rc.experiment = name
	rc.sweepSeq = 0
}

// TakeFailures returns and clears the failures recorded since the last
// call. CLIs call it after each experiment to mark tables and set the
// exit code.
func (rc *RunControl) TakeFailures() []SweepFailure {
	if rc == nil {
		return nil
	}
	f := rc.failures
	rc.failures = nil
	return f
}

// FailedCells counts the fatal (non-environmental) cell failures in a
// batch of sweep failures.
func FailedCells(fails []SweepFailure) int {
	n := 0
	for _, sf := range fails {
		n += len(sf.Err.Fatal())
	}
	return n
}

// key builds the store key for one cell of the current sweep. Workers
// is deliberately absent — results are worker-invariant — and so is the
// cell budget: a budget either trips (failed cells are never stored) or
// changes nothing.
func (rc *RunControl) key(opts Options, sweep, cells, cell int) store.Key {
	return store.Key{
		Experiment: rc.experiment,
		Sweep:      sweep,
		Cell:       cell,
		Config: fmt.Sprintf("cells=%d seeds=%d seed=%d warmup=%s measure=%s",
			cells, opts.Seeds, opts.Seed, opts.Warmup, opts.Measure),
	}
}

// runEngine is the single funnel every sweep helper goes through. It
// layers the store (serve hits on resume, persist completed cells) and
// the failure policy (keep-going collection vs fail-fast panic) over
// parallel.RunSweep.
func runEngine[T any](opts Options, n int, fn func(cell int) T) []T {
	rc := opts.Run
	if rc == nil {
		return parallel.Run(opts.workerCount(), n, fn)
	}
	sweep := rc.sweepSeq
	rc.sweepSeq++
	cellFn := fn
	if rc.Store != nil {
		cellFn = func(i int) T {
			k := rc.key(opts, sweep, n, i)
			if rc.Resume {
				if v, ok := store.Get[T](rc.Store, k); ok {
					return v
				}
			}
			v := fn(i)
			// A Put error is store misuse (an unencodable cell type), not an
			// environmental hiccup: fail the cell loudly rather than let
			// -resume silently recompute forever.
			if err := store.Put(rc.Store, k, v); err != nil {
				panic(err)
			}
			return v
		}
	}
	res, err := parallel.RunSweep(parallel.RunOptions{
		Workers:  opts.workerCount(),
		Retry:    rc.Retry,
		Canceled: rc.Canceled,
		Watch:    rc.Watch,
		Logf:     rc.Logf,
	}, n, cellFn)
	if err != nil {
		// Cancellation always propagates — a partial table after SIGINT
		// would defeat the resume-to-byte-identical contract. Fatal
		// failures propagate unless keep-going; environmental-only sweeps
		// (every failure passed on retry) have valid results either way.
		if err.Canceled || (!rc.KeepGoing && len(err.Fatal()) > 0) {
			panic(err)
		}
		rc.failures = append(rc.failures, SweepFailure{Experiment: rc.experiment, Sweep: sweep, Err: err})
	}
	return res
}

// MarkFailedCells appends one explicit marker row per fatally failed
// cell, so a keep-going sweep's partial table cannot be mistaken for a
// complete one. Rows at failed cells hold zero-value aggregates; the
// markers name the cells and the panic values that produced them.
func MarkFailedCells(t *Table, fails []SweepFailure) {
	for _, sf := range fails {
		for _, cf := range sf.Err.Fatal() {
			t.AddRow(fmt.Sprintf("!! FAILED cell %d of sweep %d (%s): %v",
				cf.Cell, sf.Sweep, cf.Class, cf.Value))
		}
	}
}
