package experiments

import (
	"reflect"
	"testing"

	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// faultTestSnapshot builds the FaultEval topology for one seed, as the
// driver's snapshotSeeds would.
func faultTestSnapshot(t *testing.T, seed int64) *topology.Snapshot {
	t.Helper()
	snap, err := topology.NewSnapshot(topology.Config{
		Plan:   evalPlan(5, 3),
		Layout: topology.LayoutColocated,
	}, sim.NewRNG(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestFaultRunDeterministicReplay asserts the acceptance property: the same
// seed and fault schedule yield bit-identical experiment output. The jammer
// model exercises the most machinery (GE dwell-time RNG streams, wideband
// medium bookkeeping, watchdog recoveries), so replaying it twice covers
// the whole injection stack.
func TestFaultRunDeterministicReplay(t *testing.T) {
	opts := Quick().withDefaults()
	snap := faultTestSnapshot(t, 7)
	for _, fs := range faultSchemes() {
		a := faultRun(7, snap, fs, FaultJammer, opts)
		b := faultRun(7, snap, fs, FaultJammer, opts)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("scheme %s: replay diverged:\n  first  %+v\n  second %+v", fs.name, a, b)
		}
	}
}

// TestFaultRunSeedsDiffer guards against the opposite failure: a frozen RNG
// that makes every seed identical would also pass the replay test.
func TestFaultRunSeedsDiffer(t *testing.T) {
	opts := Quick().withDefaults()
	fs := faultSchemes()[1] // unguarded dcn
	a := faultRun(1, faultTestSnapshot(t, 1), fs, FaultJammer, opts)
	b := faultRun(2, faultTestSnapshot(t, 2), fs, FaultJammer, opts)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical runs — RNG streams not wired")
	}
}

// TestFaultEvalJammerAcceptance checks the headline robustness claim on the
// default windows: after jammer bursts poison every target-network
// threshold, the watchdog recovers at least 80 % of the fault-free DCN
// throughput while the unguarded Adjustor stays poisoned and degrades to
// (or below) the default-ZigBee baseline.
func TestFaultEvalJammerAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	opts := Options{Seed: 1, Seeds: 2}.withDefaults()
	schemes := faultSchemes()
	avg := func(fs faultScheme, m FaultModel) FaultRow {
		var acc FaultRow
		for s := 0; s < opts.Seeds; s++ {
			seed := opts.Seed + int64(s)
			r := faultRun(seed, faultTestSnapshot(t, seed), fs, m, opts)
			acc.Overall += r.Overall
			acc.Target += r.Target
			acc.Recoveries += r.Recoveries
		}
		acc.Overall /= float64(opts.Seeds)
		acc.Target /= float64(opts.Seeds)
		return acc
	}

	faultFree := avg(schemes[1], FaultNone)   // dcn, no fault
	fixed := avg(schemes[0], FaultJammer)     // default ZigBee under jammer
	unguarded := avg(schemes[1], FaultJammer) // dcn under jammer
	guarded := avg(schemes[2], FaultJammer)   // dcn+wd under jammer

	// The jammer hits the target network, so the claim is made on its
	// goodput — the overall column dilutes the damage across the four
	// untouched networks.
	if guarded.Target < 0.8*faultFree.Target {
		t.Errorf("guarded DCN target goodput under jammer = %.1f pkt/s, want >= 80%% of fault-free %.1f",
			guarded.Target, faultFree.Target)
	}
	if guarded.Recoveries == 0 {
		t.Error("watchdog recorded no poison recoveries under the jammer model")
	}
	// The unguarded Adjustor's retained poisoning must cost it its DCN
	// advantage: no better than the fixed-threshold baseline (small
	// tolerance for seed noise).
	if unguarded.Target > fixed.Target*1.05 {
		t.Errorf("unguarded DCN target goodput under jammer = %.1f pkt/s, expected degradation toward fixed baseline %.1f",
			unguarded.Target, fixed.Target)
	}
	if guarded.Target <= unguarded.Target {
		t.Errorf("watchdog gain absent: guarded %.1f <= unguarded %.1f",
			guarded.Target, unguarded.Target)
	}
}

// TestFaultEvalQuickSmoke renders the full table once on quick windows so a
// plain `go test` exercises every model × scheme cell.
func TestFaultEvalQuickSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation")
	}
	res, tbl := FaultEval(Quick())
	if got, want := len(res.Rows), len(FaultModels())*len(faultSchemes()); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	for _, m := range FaultModels() {
		for _, fs := range faultSchemes() {
			r := res.Row(m, fs.name)
			if r == nil {
				t.Fatalf("missing row (%s, %s)", m, fs.name)
			}
			if r.Overall <= 0 {
				t.Errorf("(%s, %s): overall throughput = %v, want > 0", m, fs.name, r.Overall)
			}
		}
	}
	if r := res.Row(FaultJammer, "dcn"); r.Injected.JammerBursts == 0 {
		t.Error("jammer model fired no bursts")
	}
	if r := res.Row(FaultCrash, "dcn"); r.Injected.Crashes == 0 || r.Injected.Reboots == 0 {
		t.Error("crash model fired no crash/reboot events")
	}
	if r := res.Row(FaultDrift, "dcn"); r.Injected.DriftSteps == 0 {
		t.Error("drift model took no steps")
	}
	if r := res.Row(FaultStuckCCA, "dcn+wd"); r.Injected.StuckPeriods == 0 {
		t.Error("stuck-CCA model stuck no registers")
	}
	if len(tbl.Rows) != len(res.Rows) {
		t.Fatalf("table rows = %d, want %d", len(tbl.Rows), len(res.Rows))
	}
}
