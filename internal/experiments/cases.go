package experiments

import (
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// CaseResult is one network-configuration comparison (Figs. 25-27).
type CaseResult struct {
	Layout topology.Layout
	// The three bars of each figure.
	ZigBee     float64
	WithoutDCN float64
	WithDCN    float64
	// Gains relative to the two baselines.
	GainOverWithout float64
	GainOverZigBee  float64
}

// caseGeometry returns the deployment scale of each case. Case I packs
// every node into one small region ("deployed close to each other", strong
// mutual interference); Case II separates per-network clusters by a few
// meters; Case III spreads interleaved networks over a larger field with
// long intra-network links, so co-channel peers are heard at low RSSI —
// the condition that pins the DCN threshold down.
func caseGeometry(layout topology.Layout) (regionRadius, linkRadius float64) {
	switch layout {
	case topology.LayoutColocated:
		return 0.8, 1.0
	case topology.LayoutClustered:
		return 4.0, 1.0
	default: // LayoutRandomField
		return 2.5, 1.8
	}
}

// runCase executes one deployment case: transmit powers random in
// [-22, 0] dBm (Section VI-B.4), three designs compared.
func runCase(layout topology.Layout, opts Options) CaseResult {
	power := topology.UniformPower(-22, 0)
	region, link := caseGeometry(layout)
	// One snapshot set per channel plan: the two CFD-3 cells share one.
	zigTopos := snapshotSeeds(opts, caseConfig(false, layout, power, region, link))
	cfdTopos := snapshotSeeds(opts, caseConfig(true, layout, power, region, link))
	// Cells: 0 = ZigBee, 1 = CFD 3 without DCN, 2 = CFD 3 with DCN.
	grid := runGrid(opts, 3, func(cell int, seed int64) float64 {
		topos := zigTopos
		if cell >= 1 {
			topos = cfdTopos
		}
		tb := caseDesign(opts, seed, topos.at(seed), cell == 2)
		defer tb.Close()
		tb.Run(opts.Warmup, opts.Measure)
		return tb.OverallThroughput()
	})
	n := float64(opts.Seeds)
	res := CaseResult{
		Layout:     layout,
		ZigBee:     sum(grid[0]) / n,
		WithoutDCN: sum(grid[1]) / n,
		WithDCN:    sum(grid[2]) / n,
	}
	res.GainOverWithout = res.WithDCN/res.WithoutDCN - 1
	res.GainOverZigBee = res.WithDCN/res.ZigBee - 1
	return res
}

// caseConfig is bandConfig with explicit geometry scales.
func caseConfig(nonOrthogonal bool, layout topology.Layout, power topology.PowerPolicy, region, link float64) topology.Config {
	plan := evalPlan(4, 5)
	if nonOrthogonal {
		plan = evalPlan(6, 3)
	}
	return topology.Config{
		Plan:         plan,
		Layout:       layout,
		Power:        power,
		RegionRadius: region,
		LinkRadius:   link,
	}
}

// caseDesign instantiates one deployment-case cell from a shared snapshot.
func caseDesign(opts Options, seed int64, snap *topology.Snapshot, dcnEnabled bool) *testbed.Testbed {
	tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
	scheme := testbed.SchemeFixed
	if dcnEnabled {
		scheme = testbed.SchemeDCN
	}
	for _, spec := range snap.Networks() {
		tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: scheme})
	}
	return tb
}

func caseTable(res CaseResult, title string) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"design", "throughput (pkt/s)"},
	}
	t.AddRow("ZigBee", f0(res.ZigBee))
	t.AddRow("W/o DCN (CFD=3)", f0(res.WithoutDCN))
	t.AddRow("With DCN (CFD=3)", f0(res.WithDCN))
	t.AddRow("gain vs w/o DCN", pct(res.GainOverWithout))
	t.AddRow("gain vs ZigBee", pct(res.GainOverZigBee))
	return t
}

// Fig25 regenerates Fig. 25 — Case I, all networks in one interfering
// region (Fig. 22), random powers. Paper bars: 983 / 1326 / 1521; DCN
// gains 14.7 % over the plain CFD=3 design and 55.7 % over ZigBee. The
// shapes to hold: ZigBee < w/o DCN < with DCN, and this case shows the
// largest DCN relaxing gain of the three.
func Fig25(opts Options) (CaseResult, *Table) {
	opts = opts.withDefaults()
	res := runCase(topology.LayoutColocated, opts)
	return res, caseTable(res, "Fig 25: Throughput comparison, Case I (one interfering region)")
}

// Fig26 regenerates Fig. 26 — Case II, networks separated into clusters
// (Fig. 23). Paper bars: 980 / 1382 / 1526 (+10.4 % over w/o DCN): the
// weaker inter-cluster interference leaves less for DCN to reclaim than in
// Case I.
func Fig26(opts Options) (CaseResult, *Table) {
	opts = opts.withDefaults()
	res := runCase(topology.LayoutClustered, opts)
	return res, caseTable(res, "Fig 26: Throughput comparison, Case II (separated clusters)")
}

// Fig27 regenerates Fig. 27 — Case III, random topology over a larger
// field (Fig. 24). Paper bars: 983 / 1282 / 1361 (+6.2 % over w/o DCN,
// +38.4 % over ZigBee): weak co-channel RSSI pins the CCA threshold low
// and limits the relaxing gain — the paper's acknowledged weakness.
func Fig27(opts Options) (CaseResult, *Table) {
	opts = opts.withDefaults()
	res := runCase(topology.LayoutRandomField, opts)
	return res, caseTable(res, "Fig 27: Throughput comparison, Case III (random topology)")
}
