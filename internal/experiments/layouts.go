package experiments

import (
	"strconv"

	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// LayoutRow is one node of a configuration diagram.
type LayoutRow struct {
	Network string
	Role    string
	X, Y    float64
	Power   float64
}

// LayoutsResult reproduces the paper's configuration diagrams (Figs. 13
// and 22-24) as coordinate tables.
type LayoutsResult struct {
	Name string
	Rows []LayoutRow
}

// Layouts regenerates the deployment diagrams the paper shows as figures:
// the five-network strip of Fig. 13 and the three configuration cases of
// Figs. 22-24, as node coordinate tables (the diagrams' data).
func Layouts(opts Options) ([]LayoutsResult, []*Table) {
	opts = opts.withDefaults()
	rng := sim.NewRNG(opts.Seed)

	configs := []struct {
		name string
		cfg  topology.Config
	}{
		{"Fig 13: five networks, CFD=3 MHz strip", topology.Config{
			Plan:   evalPlan(5, 3),
			Layout: topology.LayoutColocated,
		}},
		{"Fig 22: Case I, one interfering region", topology.Config{
			Plan:         evalPlan(6, 3),
			Layout:       topology.LayoutColocated,
			Power:        topology.UniformPower(-22, 0),
			RegionRadius: 0.8,
			LinkRadius:   1.0,
		}},
		{"Fig 23: Case II, separated clusters", topology.Config{
			Plan:         evalPlan(6, 3),
			Layout:       topology.LayoutClustered,
			Power:        topology.UniformPower(-22, 0),
			RegionRadius: 4.0,
			LinkRadius:   1.0,
		}},
		{"Fig 24: Case III, random topology", topology.Config{
			Plan:         evalPlan(6, 3),
			Layout:       topology.LayoutRandomField,
			Power:        topology.UniformPower(-22, 0),
			RegionRadius: 2.5,
			LinkRadius:   1.8,
		}},
	}

	var results []LayoutsResult
	var tables []*Table
	for _, c := range configs {
		nets, err := topology.Generate(c.cfg, rng)
		if err != nil {
			panic(err) // static configuration; cannot fail
		}
		res := LayoutsResult{Name: c.name}
		t := &Table{
			Title:   c.name,
			Columns: []string{"network", "role", "x (m)", "y (m)", "power (dBm)"},
		}
		for i, n := range nets {
			label := "N" + itoa(i) + " @" + f0(float64(n.Freq)) + " MHz"
			add := func(role string, spec topology.NodeSpec) {
				res.Rows = append(res.Rows, LayoutRow{
					Network: label, Role: role,
					X: spec.Pos.X, Y: spec.Pos.Y, Power: float64(spec.TxPower),
				})
				t.AddRow(label, role, f2(spec.Pos.X), f2(spec.Pos.Y), f1(float64(spec.TxPower)))
			}
			add("sink", n.Sink)
			for _, s := range n.Senders {
				add("sender", s)
			}
		}
		results = append(results, res)
		tables = append(tables, t)
	}
	return results, tables
}

func itoa(i int) string { return strconv.Itoa(i) }
