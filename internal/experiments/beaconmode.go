package experiments

import (
	"nonortho/internal/beacon"
	"nonortho/internal/dcn"
	"nonortho/internal/frame"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// BeaconModeRow is one policy's outcome in the slotted-MAC extension.
type BeaconModeRow struct {
	Policy    string
	Delivered float64 // frames/s across all coordinators
}

// BeaconModeResult is the beacon-enabled extension experiment.
type BeaconModeResult struct {
	Rows []BeaconModeRow
	// Gain is DCN's improvement over the fixed threshold.
	Gain float64
}

// BeaconMode extends the paper to the beacon-enabled (slotted CSMA/CA)
// MAC it does not evaluate: four PANs on adjacent CFD = 3 MHz channels,
// each a coordinator plus four saturated devices, with BO = SO = 3. The
// CCA-Adjustor touches only the radio's threshold register, so it
// composes with slotted channel access unchanged — and the false-busy
// losses of the fixed -77 dBm threshold exist in slotted mode too (every
// CCA in the CW = 2 window can be spoofed by neighbour-channel energy).
// Shape: DCN again recovers throughput.
func BeaconMode(opts Options) (BeaconModeResult, *Table) {
	opts = opts.withDefaults()

	// Cell 0 = fixed threshold, cell 1 = DCN.
	grid := runGrid(opts, 2, func(cell int, seed int64) float64 {
		useDCN := cell == 1
		{
			core := leaseCore(opts, seed)
			defer core.Release()
			k := core.Kernel
			sched := beacon.Schedule{BeaconOrder: 3, SuperframeOrder: 3}

			const pans = 4
			coords := make([]*beacon.Coordinator, pans)
			addr := frame.Address(1)
			newRadio := func(x, y float64, freq phy.MHz) *radio.Radio {
				r := core.NewRadio(radio.Config{
					Pos:          phy.Position{X: x, Y: y},
					Freq:         freq,
					TxPower:      0,
					CCAThreshold: phy.DefaultCCAThreshold,
					Address:      addr,
				})
				addr++
				return r
			}
			for p := 0; p < pans; p++ {
				freq := 2458 + phy.MHz(3*p)
				cx := 1.8 * float64(p)
				coordRadio := newRadio(cx, 0, freq)
				coord, err := beacon.NewCoordinator(k, coordRadio, sched)
				if err != nil {
					panic(err) // static schedule; cannot fail
				}
				coords[p] = coord
				coordAddr := coordRadio.Address()
				for dIdx := 0; dIdx < 4; dIdx++ {
					devRadio := newRadio(cx+0.4+0.2*float64(dIdx), 0.7, freq)
					dev, err := beacon.NewDevice(k, devRadio, coordAddr, sched)
					if err != nil {
						panic(err)
					}
					if useDCN {
						adj := dcn.New(k, devRadio, dcn.Config{})
						adj.Start()
						prev := devRadio.OnReceive
						devRadio.OnReceive = func(r radio.Reception) {
							if prev != nil {
								prev(r)
							}
							adj.Observe(r)
						}
					}
					// Saturated device: refill after every send.
					refill := func() {
						for i := 0; i < 2; i++ {
							dev.Send(make([]byte, 64))
						}
					}
					dev.OnSent = func(*frame.Frame) { refill() }
					refill()
				}
				coord.Start()
			}

			k.RunUntil(sim.FromDuration(opts.Warmup))
			before := 0
			for _, c := range coords {
				before += c.Received()
			}
			k.RunUntil(sim.FromDuration(opts.Warmup + opts.Measure))
			after := 0
			for _, c := range coords {
				after += c.Received()
			}
			return float64(after-before) / opts.Measure.Seconds()
		}
	})

	fixed := sum(grid[0]) / float64(opts.Seeds)
	withDCN := sum(grid[1]) / float64(opts.Seeds)
	res := BeaconModeResult{
		Rows: []BeaconModeRow{
			{Policy: "slotted, fixed -77 dBm", Delivered: fixed},
			{Policy: "slotted, DCN", Delivered: withDCN},
		},
		Gain: withDCN/fixed - 1,
	}

	t := &Table{
		Title:   "Extension: beacon-enabled slotted CSMA/CA, 4 PANs at CFD=3 MHz",
		Columns: []string{"policy", "delivered (pkt/s)"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Policy, f0(r.Delivered))
	}
	t.AddRow("DCN gain", pct(res.Gain))
	return res, t
}
