package experiments

import (
	"math"
	"time"

	"nonortho/internal/assign"
	"nonortho/internal/frame"
	"nonortho/internal/phy"
	"nonortho/internal/routing"
	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// MultihopRow is one design's collection outcome.
type MultihopRow struct {
	Design string
	// DeliveredPerSec is the total root goodput in readings per second.
	DeliveredPerSec float64
	// DeliveryRatio is end-to-end delivered/generated.
	DeliveryRatio float64
	// MeanHops of delivered readings.
	MeanHops float64
}

// MultihopResult is the data-collection extension experiment.
type MultihopResult struct{ Rows []MultihopRow }

// Multihop is an extension to the workload the paper's introduction
// motivates: six multi-hop collection trees (a root plus seven reporters
// each, two to three hops deep) on the 15 MHz band.
//
//   - "ZigBee + greedy trees": only four orthogonal channels exist, so
//     two pairs of trees must share a channel; the TMCP-style greedy
//     assignment picks the least-coupled pairs.
//   - "DCN (CFD=3)": every tree gets its own non-orthogonal channel and
//     every node runs the CCA-Adjustor.
//
// The shape: DCN sustains a higher end-to-end delivery ratio and more
// delivered readings per second, because co-channel tree sharing costs
// far more than filtered neighbour-channel overlap.
func Multihop(opts Options) (MultihopResult, *Table) {
	opts = opts.withDefaults()

	var res MultihopResult
	zig := multihopRun(opts, false)
	dcnRow := multihopRun(opts, true)
	zig.Design = "ZigBee + greedy trees (6 trees / 4 ch)"
	dcnRow.Design = "DCN (6 trees / 6 ch, CFD=3)"
	res.Rows = []MultihopRow{zig, dcnRow}

	t := &Table{
		Title:   "Extension: multi-hop collection — orthogonal sharing vs DCN (15 MHz)",
		Columns: []string{"design", "delivered (readings/s)", "delivery ratio", "mean hops"},
	}
	for _, r := range res.Rows {
		t.AddRow(r.Design, f1(r.DeliveredPerSec), pct(r.DeliveryRatio), f2(r.MeanHops))
	}
	return res, t
}

// multihopTreeLayout places six tree clusters on a ring, each with a root
// at the cluster center and seven reporters around it at one- and two-hop
// distances.
func multihopTreeLayout(cluster int) (pos []phy.Position, root int) {
	angle := float64(cluster) * math.Pi / 3
	cx, cy := 6*math.Cos(angle), 6*math.Sin(angle)
	pos = append(pos, phy.Position{X: cx, Y: cy}) // root
	// Inner ring: three nodes ~2.5 m out (single hop).
	for i := 0; i < 3; i++ {
		a := angle + float64(i)*2*math.Pi/3
		pos = append(pos, phy.Position{X: cx + 2.5*math.Cos(a), Y: cy + 2.5*math.Sin(a)})
	}
	// Outer ring: four nodes ~5 m out (out of direct root range at
	// -16 dBm, forcing a second hop through the inner ring).
	for i := 0; i < 4; i++ {
		a := angle + math.Pi/4 + float64(i)*math.Pi/2
		pos = append(pos, phy.Position{X: cx + 5*math.Cos(a), Y: cy + 5*math.Sin(a)})
	}
	return pos, 0
}

func multihopRun(opts Options, useDCN bool) MultihopRow {
	const trees = 6
	type seedSums struct{ Delivered, Generated, HopsW, Seconds float64 }
	cells := runSeeds(opts, func(seed int64) seedSums {
		core := leaseCore(opts, seed)
		defer core.Release()
		k, m := core.Kernel, core.Medium

		// Channel plans: DCN gets six CFD=3 channels; ZigBee packs six
		// trees onto four orthogonal channels via the greedy assignment
		// over tree-to-tree coupling.
		freqs := make([]phy.MHz, trees)
		if useDCN {
			for i := range freqs {
				freqs[i] = 2458 + phy.MHz(3*i)
			}
		} else {
			specs := make([]topology.NetworkSpec, trees)
			for i := range specs {
				pos, root := multihopTreeLayout(i)
				specs[i] = topology.NetworkSpec{Sink: topology.NodeSpec{Pos: pos[root], TxPower: -16}}
				for j, p := range pos {
					if j == root {
						continue
					}
					specs[i].Senders = append(specs[i].Senders,
						topology.NodeSpec{Pos: p, TxPower: -16})
				}
			}
			coupling := assign.Coupling(specs, phy.DefaultPathLoss())
			orth := []phy.MHz{2458, 2463, 2468, 2473}
			a := assign.Greedy(coupling, len(orth))
			for i := range freqs {
				freqs[i] = orth[a[i]]
			}
		}

		collectors := make([]*routing.Collector, trees)
		for i := 0; i < trees; i++ {
			pos, root := multihopTreeLayout(i)
			powersList := make([]phy.DBm, len(pos))
			for j := range powersList {
				powersList[j] = -16 // short-range links force multihop
			}
			c, err := routing.NewCollector(k, m, routing.Config{
				Freq:      freqs[i],
				Positions: pos,
				TxPowers:  powersList,
				Root:      root,
				UseDCN:    useDCN,
				BaseAddr:  frame.Address(1 + 100*i),
			})
			if err != nil {
				panic(err) // static layout; cannot fail
			}
			collectors[i] = c
			c.Start(60 * time.Millisecond)
		}

		k.RunUntil(sim.FromDuration(opts.Warmup))
		for _, c := range collectors {
			c.ResetCounters()
		}
		k.RunUntil(sim.FromDuration(opts.Warmup + opts.Measure))

		var s seedSums
		s.Seconds = opts.Measure.Seconds()
		for _, c := range collectors {
			s.Delivered += float64(c.Delivered())
			s.Generated += float64(c.Generated())
			s.HopsW += c.MeanHops() * float64(c.Delivered())
		}
		return s
	})
	var delivered, generated, hopsW, seconds float64
	for _, s := range cells {
		delivered += s.Delivered
		generated += s.Generated
		hopsW += s.HopsW
		seconds += s.Seconds
	}
	row := MultihopRow{}
	if seconds > 0 {
		row.DeliveredPerSec = delivered / seconds
	}
	if generated > 0 {
		row.DeliveryRatio = delivered / generated
	}
	if delivered > 0 {
		row.MeanHops = hopsW / delivered
	}
	return row
}
