package experiments

import (
	"fmt"

	"nonortho/internal/phy"
	"nonortho/internal/stats"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// bandConfig is the 15 MHz evaluation band (2458-2473 MHz) under one of
// the two competing designs: the default ZigBee assignment (4 channels at
// CFD = 5 MHz) or the paper's non-orthogonal design (6 channels at
// CFD = 3 MHz).
func bandConfig(nonOrthogonal bool, layout topology.Layout, power topology.PowerPolicy) topology.Config {
	plan := evalPlan(4, 5)
	if nonOrthogonal {
		plan = evalPlan(6, 3)
	}
	return topology.Config{Plan: plan, Layout: layout, Power: power}
}

// bandDesign instantiates one evaluation-band cell from a shared topology
// snapshot, optionally with DCN.
func bandDesign(opts Options, seed int64, snap *topology.Snapshot, dcnEnabled bool) *testbed.Testbed {
	tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
	scheme := testbed.SchemeFixed
	if dcnEnabled {
		scheme = testbed.SchemeDCN
	}
	for _, spec := range snap.Networks() {
		tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: scheme})
	}
	return tb
}

// Fig19Result is the headline comparison.
type Fig19Result struct {
	// ZigBeePerNetwork and DCNPerNetwork hold the per-channel goodputs.
	ZigBeePerNetwork []float64
	DCNPerNetwork    []float64
	ZigBeeTotal      float64
	DCNTotal         float64
	// ZigBeeStd and DCNStd are the across-seed standard deviations of the
	// totals (zero with a single seed).
	ZigBeeStd float64
	DCNStd    float64
	// Improvement is DCNTotal/ZigBeeTotal − 1 (the paper reports 58 %).
	Improvement float64
}

// Fig19 regenerates Fig. 19: on the 15 MHz band, the default ZigBee design
// (4 channels, CFD = 5 MHz, fixed CCA) against the non-orthogonal design
// with DCN (6 channels, CFD = 3 MHz). Shape: DCN wins by roughly half
// again the ZigBee total (paper: +58 %; bands 38.4-55.7 % across
// configurations).
func Fig19(opts Options) (Fig19Result, *Table) {
	opts = opts.withDefaults()
	type cellResult struct {
		Per   []float64
		Total float64
	}
	// Cell 0 = ZigBee design, cell 1 = non-orthogonal DCN design; every
	// (design, seed) simulation runs concurrently, sharing one topology
	// snapshot per (design, seed).
	zigTopos := snapshotSeeds(opts, bandConfig(false, topology.LayoutColocated, nil))
	dcnTopos := snapshotSeeds(opts, bandConfig(true, topology.LayoutColocated, nil))
	grid := runGrid(opts, 2, func(cell int, seed int64) cellResult {
		nonOrtho := cell == 1
		topos := zigTopos
		if nonOrtho {
			topos = dcnTopos
		}
		tb := bandDesign(opts, seed, topos.at(seed), nonOrtho)
		defer tb.Close()
		tb.Run(opts.Warmup, opts.Measure)
		return cellResult{Per: tb.PerNetworkThroughput(), Total: tb.OverallThroughput()}
	})
	var zigRows, dcnRows [][]float64
	var zigTotals, dcnTotals []float64
	for s := 0; s < opts.Seeds; s++ {
		zigRows = append(zigRows, grid[0][s].Per)
		zigTotals = append(zigTotals, grid[0][s].Total)
		dcnRows = append(dcnRows, grid[1][s].Per)
		dcnTotals = append(dcnTotals, grid[1][s].Total)
	}
	res := Fig19Result{
		ZigBeePerNetwork: meanRows(zigRows),
		DCNPerNetwork:    meanRows(dcnRows),
		ZigBeeStd:        stats.Summarize(zigTotals).Std,
		DCNStd:           stats.Summarize(dcnTotals).Std,
	}
	for _, v := range res.ZigBeePerNetwork {
		res.ZigBeeTotal += v
	}
	for _, v := range res.DCNPerNetwork {
		res.DCNTotal += v
	}
	res.Improvement = res.DCNTotal/res.ZigBeeTotal - 1

	t := &Table{
		Title:   "Fig 19: Overall throughput, ZigBee design vs non-orthogonal design with DCN (15 MHz)",
		Columns: []string{"design", "channels", "total (pkt/s)", "per-network (pkt/s)"},
	}
	t.AddRow("ZigBee (CFD=5, fixed)", f0(float64(len(res.ZigBeePerNetwork))),
		fmt.Sprintf("%s ±%s", f0(res.ZigBeeTotal), f0(res.ZigBeeStd)), joinF0(res.ZigBeePerNetwork))
	t.AddRow("DCN (CFD=3)", f0(float64(len(res.DCNPerNetwork))),
		fmt.Sprintf("%s ±%s", f0(res.DCNTotal), f0(res.DCNStd)), joinF0(res.DCNPerNetwork))
	t.AddRow("improvement", "", pct(res.Improvement), "")
	return res, t
}

func joinF0(xs []float64) string {
	out := ""
	for i, v := range xs {
		if i > 0 {
			out += " "
		}
		out += f0(v)
	}
	return out
}

// Fig20Row is one transmit-power point.
type Fig20Row struct {
	Power  phy.DBm
	N0     float64
	Others float64
}

// Fig20Result backs Figs. 20 and 21.
type Fig20Result struct{ Rows []Fig20Row }

// Fig20and21 regenerates Figs. 20 and 21: the 6-network DCN design with
// N0 (the central network, worst inter-channel interference) sweeping its
// transmit power from -33 to -0.6 dBm while the others stay at -0.6 dBm.
// Shape: N0's throughput grows with power in two phases (PRR recovery,
// then threshold relaxation) and the other networks are not hurt by N0's
// higher power.
func Fig20and21(opts Options) (Fig20Result, *Table, *Table) {
	opts = opts.withDefaults()
	powers := []phy.DBm{-33, -15, -6, -3, -0.6}
	const othersPower = -0.6

	// All five power cells of a seed share one topology snapshot; each
	// cell mutates only its own deep copy of the specs (powers, not
	// positions, so the snapshot's loss matrix stays fully valid).
	plan := evalPlan(6, 3)
	topos := snapshotSeeds(opts, topology.Config{
		Plan:   plan,
		Layout: topology.LayoutColocated,
		Power:  topology.FixedPower(othersPower),
	})
	type pair struct{ N0, Others float64 }
	grid := runGrid(opts, len(powers), func(cell int, seed int64) pair {
		p := powers[cell]
		snap := topos.at(seed)
		nets := snap.Networks()
		mid := plan.MiddleIndex()
		for i := range nets[mid].Senders {
			nets[mid].Senders[i].TxPower = p
		}
		nets[mid].Sink.TxPower = p
		tb := newCellTestbed(opts, testbed.Options{Seed: seed, Topology: snap})
		defer tb.Close()
		for _, spec := range nets {
			tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: testbed.SchemeDCN})
		}
		tb.Run(opts.Warmup, opts.Measure)
		per := tb.PerNetworkThroughput()
		out := pair{N0: per[mid]}
		for i, v := range per {
			if i != mid {
				out.Others += v
			}
		}
		return out
	})

	var res Fig20Result
	for i, p := range powers {
		var n0, others float64
		for _, c := range grid[i] {
			n0 += c.N0
			others += c.Others
		}
		res.Rows = append(res.Rows, Fig20Row{
			Power:  p,
			N0:     n0 / float64(opts.Seeds),
			Others: others / float64(opts.Seeds),
		})
	}

	t20 := &Table{
		Title:   "Fig 20: Throughput of network N0 vs its transmit power (DCN, others at -0.6 dBm)",
		Columns: []string{"power (dBm)", "N0 (pkt/s)"},
	}
	t21 := &Table{
		Title:   "Fig 21: Throughput of networks except N0 vs N0's transmit power",
		Columns: []string{"power (dBm)", "others (pkt/s)"},
	}
	for _, r := range res.Rows {
		t20.AddRow(f1(float64(r.Power)), f0(r.N0))
		t21.AddRow(f1(float64(r.Power)), f0(r.Others))
	}
	return res, t20, t21
}

// TableIResult is the fairness table.
type TableIResult struct {
	PerNetwork []float64
	// Spread is (max−min)/mean; the paper reports about 4-5 %.
	Spread float64
	// Jain is the Jain fairness index (1 = perfectly fair).
	Jain float64
}

// TableI regenerates Table I: per-network throughput of the six-network
// DCN design on the 15 MHz band. Shape: a small spread (paper ≈ 4 %), so
// DCN does not drive some networks against others, despite N0 facing the
// most inter-channel interference.
func TableI(opts Options) (TableIResult, *Table) {
	opts = opts.withDefaults()
	topos := snapshotSeeds(opts, bandConfig(true, topology.LayoutColocated, nil))
	rows := runSeeds(opts, func(seed int64) []float64 {
		tb := bandDesign(opts, seed, topos.at(seed), true)
		defer tb.Close()
		tb.Run(opts.Warmup, opts.Measure)
		return tb.PerNetworkThroughput()
	})
	res := TableIResult{PerNetwork: meanRows(rows)}
	res.Spread = stats.Spread(res.PerNetwork)
	res.Jain = stats.JainIndex(res.PerNetwork)

	t := &Table{
		Title:   "Table I: Fairness of the 6-network DCN design (15 MHz)",
		Columns: []string{"network", "throughput (pkt/s)"},
	}
	for i, v := range res.PerNetwork {
		t.AddRow(testbed.NetworkLabel(i), f1(v))
	}
	t.AddRow("spread", pct(res.Spread))
	t.AddRow("Jain index", f2(res.Jain))
	return res, t
}
