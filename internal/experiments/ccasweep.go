package experiments

import (
	"math"
	"sync"

	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// sweepThresholds is the CCA-threshold x-axis the paper sweeps in
// Figs 6-10 and 28: -120 dBm (everything busy) to -20 dBm (everything
// clear).
func sweepThresholds() []phy.DBm {
	var out []phy.DBm
	for t := phy.DBm(-120); t <= -20; t += 5 {
		out = append(out, t)
	}
	return out
}

// ccaSweepWorld builds the Fig. 5 configuration: one observed link in the
// middle (its CCA threshold is the sweep variable) surrounded by four
// interfering networks on the neighbouring non-orthogonal channels
// (CFD = ±3 and ±6 MHz), everything at fixed positions so the sweep
// varies exactly one knob.
//
// coChannel adds three extra links on the observed link's own channel
// (Fig. 8); linkPower sets the observed link's transmit power (Figs 9-10,
// 28).
type ccaSweepResultRow struct {
	Threshold phy.DBm
	SentRate  float64
	RecvRate  float64
	// RecoverableRate adds CRC-failed-but-repairable receptions (Fig 28).
	RecoverableRate float64
	PRR             float64
	OverallRate     float64
	// ErrFractions carries the error-bit fractions observed at this
	// threshold (consumed by Fig 29).
	ErrFractions []float64
}

// ccaSweepSpecs lays out the sweep geometry as explicit network specs.
//
// The observed link: sender at the origin, sink 1 m away, at linkPower.
// Around it, four interfering networks at CFD = ±3, ±6 MHz (Fig. 5), each
// 4 saturated senders at 0 dBm, placed ~2.6 m from the link so their
// filtered energy straddles the -77 dBm default.
//
// coChannel (Fig. 8) appends three additional co-channel links competing
// with the observed one, at the ZigBee default threshold. Their senders
// sit close enough (a) to hear the observed sender even at -22 dBm, so
// CSMA deference protects a weak link, and (b) to the observed sink that
// barging into their ongoing transmissions corrupts the observed link's
// packets — the paper's "disaster" past the minimum co-channel RSS.
func ccaSweepSpecs(linkPower phy.DBm, coChannel bool) []topology.NetworkSpec {
	specs := []topology.NetworkSpec{{
		Freq:    2460,
		Sink:    topology.NodeSpec{Pos: phy.Position{X: 1, Y: 0}, TxPower: linkPower},
		Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0, Y: 0}, TxPower: linkPower}},
	}}
	angles := []float64{45, 135, 225, 315}
	freqs := []phy.MHz{2463, 2457, 2466, 2454}
	for i, f := range freqs {
		cx := 2.6 * math.Cos(angles[i]*math.Pi/180)
		cy := 2.6 * math.Sin(angles[i]*math.Pi/180)
		spec := topology.NetworkSpec{
			Freq: f,
			Sink: topology.NodeSpec{Pos: phy.Position{X: cx, Y: cy}},
		}
		for s := 0; s < 4; s++ {
			dx := 0.8 * math.Cos(float64(s)*math.Pi/2)
			dy := 0.8 * math.Sin(float64(s)*math.Pi/2)
			spec.Senders = append(spec.Senders, topology.NodeSpec{
				Pos: phy.Position{X: cx + dx, Y: cy + dy},
			})
		}
		specs = append(specs, spec)
	}
	if coChannel {
		for i := 0; i < 3; i++ {
			y := 0.7 + 0.2*float64(i)
			specs = append(specs, topology.NetworkSpec{
				Freq:    2460,
				Sink:    topology.NodeSpec{Pos: phy.Position{X: 1, Y: y}},
				Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0, Y: y}}},
			})
		}
	}
	return specs
}

// ccaSweepSnap is the one shared snapshot of the full sweep geometry,
// co-channel links included. The positions are fixed across every
// (threshold, power) cell, and the loss matrix is keyed on positions
// only, so cells that omit the co-channel networks or override transmit
// power still hit the matrix for every node they do attach.
var ccaSweepSnap = sync.OnceValue(func() *topology.Snapshot {
	return topology.SnapshotFromSpecs(ccaSweepSpecs(0, true), phy.DefaultPathLoss())
})

func ccaSweepRun(seed int64, threshold phy.DBm, linkPower phy.DBm, coChannel bool, opts Options) ccaSweepResultRow {
	specs := ccaSweepSpecs(linkPower, coChannel)
	tb := newCellTestbed(opts, testbed.Options{
		Seed: seed, StaticFadingSigma: -1, Topology: ccaSweepSnap(),
	})
	defer tb.Close()

	link := tb.AddNetwork(specs[0],
		testbed.NetworkConfig{Scheme: testbed.SchemeFixed, CCAThreshold: threshold})
	for _, spec := range specs[1:] {
		tb.AddNetwork(spec, testbed.NetworkConfig{Scheme: testbed.SchemeFixed})
	}

	tb.Run(opts.Warmup, opts.Measure)

	s := link.Stats()
	secs := tb.MeasuredDuration().Seconds()
	row := ccaSweepResultRow{
		Threshold:       threshold,
		SentRate:        float64(s.Sent) / secs,
		RecvRate:        float64(s.Received) / secs,
		RecoverableRate: float64(s.Received+link.Recoverable()) / secs,
		PRR:             s.PRR(),
		OverallRate:     tb.OverallThroughput(),
	}
	row.ErrFractions = link.ErrorFractions().Samples()
	return row
}

// Fig6Row is one threshold point of the no-co-channel sweep.
type Fig6Row struct {
	Threshold phy.DBm
	Sent      float64
	Received  float64
}

// Fig6Result is the link-level sweep without co-channel interference.
type Fig6Result struct{ Rows []Fig6Row }

// Fig6 regenerates Fig. 6: the observed link's sent and received packet
// rates as its CCA threshold relaxes from -120 to -20 dBm, with only
// inter-channel interference present (Fig. 5 layout). Shape: both curves
// rise together as the threshold passes the filtered neighbour-channel
// energy, and PRR stays ≈ 100 % — the inter-channel interference is
// tolerable.
func Fig6(opts Options) (Fig6Result, *Table) {
	opts = opts.withDefaults()
	ths := sweepThresholds()
	grid := runGrid(opts, len(ths), func(cell int, seed int64) ccaSweepResultRow {
		return ccaSweepRun(seed, ths[cell], 0, false, opts)
	})
	var res Fig6Result
	for i, th := range ths {
		var sent, recv float64
		for _, row := range grid[i] {
			sent += row.SentRate
			recv += row.RecvRate
		}
		res.Rows = append(res.Rows, Fig6Row{
			Threshold: th,
			Sent:      sent / float64(opts.Seeds),
			Received:  recv / float64(opts.Seeds),
		})
	}
	t := &Table{
		Title:   "Fig 6: Link throughput vs CCA threshold (no co-channel interference)",
		Columns: []string{"threshold (dBm)", "sent (pkt/s)", "received (pkt/s)"},
	}
	for _, r := range res.Rows {
		t.AddRow(f0(float64(r.Threshold)), f0(r.Sent), f0(r.Received))
	}
	return res, t
}

// Fig7Row is one threshold point of the overall-throughput sweep.
type Fig7Row struct {
	Threshold phy.DBm
	Overall   float64
}

// Fig7Result is the overall-throughput view of the Fig. 6 run.
type Fig7Result struct{ Rows []Fig7Row }

// Fig7 regenerates Fig. 7: the overall throughput (observed link plus the
// four interfering networks) across the same sweep — relaxing the link's
// threshold must not degrade the neighbours, so the overall curve grows.
func Fig7(opts Options) (Fig7Result, *Table) {
	opts = opts.withDefaults()
	ths := sweepThresholds()
	grid := runGrid(opts, len(ths), func(cell int, seed int64) float64 {
		return ccaSweepRun(seed, ths[cell], 0, false, opts).OverallRate
	})
	var res Fig7Result
	for i, th := range ths {
		res.Rows = append(res.Rows, Fig7Row{Threshold: th, Overall: mean(grid[i])})
	}
	t := &Table{
		Title:   "Fig 7: Overall throughput vs CCA threshold (no co-channel interference)",
		Columns: []string{"threshold (dBm)", "overall (pkt/s)"},
	}
	for _, r := range res.Rows {
		t.AddRow(f0(float64(r.Threshold)), f0(r.Overall))
	}
	return res, t
}

// Fig8Row is one threshold point of the with-co-channel sweep.
type Fig8Row struct {
	Threshold phy.DBm
	Sent      float64
	Received  float64
}

// Fig8Result is the link sweep with co-channel competitors present.
type Fig8Result struct{ Rows []Fig8Row }

// Fig8 regenerates Fig. 8: with three co-channel links added, relaxing the
// CCA threshold beyond the weakest co-channel signal admits co-channel
// collisions — received throughput peaks and then collapses while sent
// keeps rising.
func Fig8(opts Options) (Fig8Result, *Table) {
	opts = opts.withDefaults()
	ths := sweepThresholds()
	grid := runGrid(opts, len(ths), func(cell int, seed int64) ccaSweepResultRow {
		return ccaSweepRun(seed, ths[cell], 0, true, opts)
	})
	var res Fig8Result
	for i, th := range ths {
		var sent, recv float64
		for _, row := range grid[i] {
			sent += row.SentRate
			recv += row.RecvRate
		}
		res.Rows = append(res.Rows, Fig8Row{
			Threshold: th,
			Sent:      sent / float64(opts.Seeds),
			Received:  recv / float64(opts.Seeds),
		})
	}
	t := &Table{
		Title:   "Fig 8: Link throughput vs CCA threshold (with co-channel interference)",
		Columns: []string{"threshold (dBm)", "sent (pkt/s)", "received (pkt/s)"},
	}
	for _, r := range res.Rows {
		t.AddRow(f0(float64(r.Threshold)), f0(r.Sent), f0(r.Received))
	}
	return res, t
}

// Fig9Row is one (power, threshold) point.
type Fig9Row struct {
	Power     phy.DBm
	Threshold phy.DBm
	Received  float64
	PRR       float64
}

// Fig9Result covers both Fig. 9 (throughput) and Fig. 10 (PRR).
type Fig9Result struct{ Rows []Fig9Row }

// Fig9and10 regenerates Figs. 9 and 10: the link sweep of Fig. 8 repeated
// for transmit powers {-8, -11, -15, -22, -33} dBm against 0 dBm
// interferers. Shape: every power level gains from relaxing the
// threshold; PRR stays ≈ 100 % down to about -15 dBm, degrades gently at
// -22 dBm, and collapses at -33 dBm.
func Fig9and10(opts Options) (Fig9Result, *Table, *Table) {
	opts = opts.withDefaults()
	powers := []phy.DBm{-8, -11, -15, -22, -33}
	ths := sweepThresholds()
	grid := runGrid(opts, len(powers)*len(ths), func(cell int, seed int64) ccaSweepResultRow {
		return ccaSweepRun(seed, ths[cell%len(ths)], powers[cell/len(ths)], true, opts)
	})
	var res Fig9Result
	for pi, p := range powers {
		for ti, th := range ths {
			var recv, prr float64
			for _, row := range grid[pi*len(ths)+ti] {
				recv += row.RecvRate
				prr += row.PRR
			}
			res.Rows = append(res.Rows, Fig9Row{
				Power:     p,
				Threshold: th,
				Received:  recv / float64(opts.Seeds),
				PRR:       prr / float64(opts.Seeds),
			})
		}
	}
	t9 := &Table{
		Title:   "Fig 9: Link throughput vs CCA threshold for different transmit power",
		Columns: []string{"power (dBm)", "threshold (dBm)", "received (pkt/s)"},
	}
	t10 := &Table{
		Title:   "Fig 10: Link PRR vs CCA threshold for different transmit power",
		Columns: []string{"power (dBm)", "threshold (dBm)", "PRR"},
	}
	for _, r := range res.Rows {
		t9.AddRow(f0(float64(r.Power)), f0(float64(r.Threshold)), f0(r.Received))
		t10.AddRow(f0(float64(r.Power)), f0(float64(r.Threshold)), pct(r.PRR))
	}
	return res, t9, t10
}
