package cli

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"strings"
	"syscall"
	"testing"

	"nonortho/internal/experiments"
	"nonortho/internal/parallel"
)

func TestSectionsNameOnlyRegisteredExperiments(t *testing.T) {
	reg := Registry()
	seen := map[string]bool{}
	for _, sec := range Sections() {
		for _, n := range sec.Names {
			if _, ok := reg[n]; !ok {
				t.Errorf("section %q names unknown experiment %q", sec.Heading, n)
			}
			if seen[n] {
				t.Errorf("experiment %q appears in more than one section", n)
			}
			seen[n] = true
		}
	}
}

func TestExitCodeContract(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{flag.ErrHelp, 0},
		{fmt.Errorf("wrapped: %w", flag.ErrHelp), 0},
		{errors.New("boom"), 1},
		{Usagef("bad flag"), 2},
		{fmt.Errorf("outer: %w", Usagef("bad")), 2},
		{&InterruptError{Sig: syscall.SIGINT}, 130},
		{&InterruptError{Sig: syscall.SIGTERM}, 143},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestResumeRequiresStore(t *testing.T) {
	opts := experiments.Quick()
	_, err := NewSweeper(SweepFlags{Resume: true}, &opts)
	if ExitCode(err) != ExitUsage {
		t.Fatalf("NewSweeper(-resume without -store) err = %v, want usage error", err)
	}
}

// newTestSweeper builds a Sweeper with captured stderr.
func newTestSweeper(t *testing.T, f SweepFlags, opts *experiments.Options) (*Sweeper, *bytes.Buffer) {
	t.Helper()
	s, err := NewSweeper(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	var buf bytes.Buffer
	s.stderr = &buf
	s.rc.Logf = func(format string, args ...any) { fmt.Fprintf(&buf, format+"\n", args...) }
	return s, &buf
}

// A starved event budget fails every cell; keep-going still emits the
// tables, marked, and the run exits nonzero via Err.
func TestKeepGoingBudgetTripMarksTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulation cells; skipped in -short")
	}
	opts := experiments.Quick()
	opts.Workers = 1
	s, _ := newTestSweeper(t, SweepFlags{KeepGoing: true, MaxCellEvents: 50}, &opts)
	tables, err := s.RunExperiment("fig1", Registry()["fig1"], opts)
	if err != nil {
		t.Fatalf("keep-going run errored: %v", err)
	}
	if len(tables) == 0 {
		t.Fatal("keep-going run produced no tables")
	}
	marked := false
	for _, tbl := range tables {
		if strings.Contains(tbl.String(), "FAILED cell") {
			marked = true
		}
	}
	if !marked {
		t.Fatal("partial tables carry no failed-cell markers")
	}
	if s.Err() == nil {
		t.Fatal("Sweeper.Err() == nil after failed cells")
	}
	if ExitCode(s.Err()) != ExitFailure {
		t.Fatalf("ExitCode(%v) != 1", s.Err())
	}
}

// Without -keep-going the same failure surfaces as the structured sweep
// error naming the experiment.
func TestFailFastSurfacesSweepError(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulation cells; skipped in -short")
	}
	opts := experiments.Quick()
	opts.Workers = 1
	s, _ := newTestSweeper(t, SweepFlags{MaxCellEvents: 50}, &opts)
	_, err := s.RunExperiment("fig1", Registry()["fig1"], opts)
	var se *parallel.SweepError
	if !errors.As(err, &se) || len(se.Fatal()) == 0 {
		t.Fatalf("err = %v, want wrapped SweepError with fatal failures", err)
	}
	if !strings.Contains(err.Error(), "fig1") {
		t.Fatalf("error does not name the experiment: %v", err)
	}
}

// A pending signal cancels the sweep at a cell boundary and maps to the
// 128+signal exit code with a resume hint.
func TestSignalCancelsWithResumeHint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulation cells; skipped in -short")
	}
	dir := t.TempDir()
	opts := experiments.Quick()
	opts.Workers = 1
	s, _ := newTestSweeper(t, SweepFlags{StoreDir: dir}, &opts)
	s.sig.Store(int64(syscall.SIGTERM))
	_, err := s.RunExperiment("fig1", Registry()["fig1"], opts)
	var ie *InterruptError
	if !errors.As(err, &ie) || ie.Sig != syscall.SIGTERM {
		t.Fatalf("err = %v, want InterruptError(SIGTERM)", err)
	}
	if ExitCode(err) != 143 {
		t.Fatalf("ExitCode = %d, want 143", ExitCode(err))
	}
	if !strings.Contains(err.Error(), "-resume") || !strings.Contains(err.Error(), dir) {
		t.Fatalf("interrupt error carries no resume hint: %v", err)
	}
}
