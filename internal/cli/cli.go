package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"syscall"
	"time"

	"nonortho/internal/experiments"
	"nonortho/internal/parallel"
	"nonortho/internal/sim"
	"nonortho/internal/store"
	"nonortho/internal/watchdog"
)

// Exit codes shared by dcnsim and dcnreport (documented in README.md):
//
//	0        success
//	1        runtime error, or failed cells under -keep-going
//	2        usage error (bad flag, unknown experiment)
//	130/143  interrupted by SIGINT/SIGTERM after flushing completed
//	         cells (128 + signal number)
const (
	ExitOK        = 0
	ExitFailure   = 1
	ExitUsage     = 2
	exitSignalOff = 128
)

// SweepFlags are the crash-safety flags shared by both CLIs.
type SweepFlags struct {
	StoreDir       string
	Resume         bool
	KeepGoing      bool
	Retry          bool
	MaxCellEvents  uint64
	MaxCellVirtual time.Duration
	StuckAfter     time.Duration
}

// Register installs the flags on fs.
func (f *SweepFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.StoreDir, "store", "", "persist every completed simulation cell to this directory (content-addressed, checksummed)")
	fs.BoolVar(&f.Resume, "resume", false, "serve completed cells from -store instead of recomputing; resumed output is byte-identical to an uninterrupted run")
	fs.BoolVar(&f.KeepGoing, "keep-going", false, "on cell failure, keep sweeping and emit partial tables with failed cells marked (exit code 1)")
	fs.BoolVar(&f.Retry, "retry", false, "re-run each failed cell once to classify the failure: deterministic (fails identically) or environmental (passes on retry; retry result used)")
	fs.Uint64Var(&f.MaxCellEvents, "max-cell-events", 0, "fail any cell that fires more than this many kernel events (0 = unlimited)")
	fs.DurationVar(&f.MaxCellVirtual, "max-cell-virtual", 0, "fail any cell whose virtual clock passes this bound (0 = unlimited)")
	fs.DurationVar(&f.StuckAfter, "watchdog", 0, "warn with a stack dump when a cell runs longer than this in wall-clock time (0 = off)")
}

// UsageError marks an error as bad invocation (exit code 2).
type UsageError struct{ Err error }

func (e *UsageError) Error() string { return e.Err.Error() }
func (e *UsageError) Unwrap() error { return e.Err }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) error {
	return &UsageError{Err: fmt.Errorf(format, args...)}
}

// InterruptError reports a sweep stopped by SIGINT or SIGTERM at a cell
// boundary, with completed cells flushed to the store (when one is
// configured).
type InterruptError struct {
	Sig  syscall.Signal
	Hint string
}

func (e *InterruptError) Error() string {
	msg := fmt.Sprintf("interrupted (%v); stopped at a cell boundary", e.Sig)
	return msg + e.Hint
}

// ExitCode maps a run's outcome to the documented contract.
func ExitCode(err error) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return ExitOK
	}
	var ie *InterruptError
	if errors.As(err, &ie) {
		return exitSignalOff + int(ie.Sig)
	}
	var ue *UsageError
	if errors.As(err, &ue) {
		return ExitUsage
	}
	return ExitFailure
}

// Sweeper runs experiments under the crash-safety machinery: one
// Sweeper per CLI invocation. It owns the signal handler, the optional
// wall-clock watchdog and the RunControl threaded into every sweep.
type Sweeper struct {
	flags  SweepFlags
	rc     *experiments.RunControl
	wd     *watchdog.Watchdog
	stop   func()
	sig    atomic.Int64
	failed int
	stderr io.Writer
}

// NewSweeper validates the flags, opens the store, installs the signal
// handler and watchdog, and attaches everything to opts. Call Close
// when the run is over.
func NewSweeper(f SweepFlags, opts *experiments.Options) (*Sweeper, error) {
	if f.Resume && f.StoreDir == "" {
		return nil, Usagef("-resume requires -store")
	}
	s := &Sweeper{flags: f, stderr: os.Stderr}
	s.rc = &experiments.RunControl{
		KeepGoing: f.KeepGoing,
		Retry:     f.Retry,
		Resume:    f.Resume,
		Canceled:  func() bool { return s.sig.Load() != 0 },
		Logf:      func(format string, args ...any) { fmt.Fprintf(s.stderr, format+"\n", args...) },
	}
	if f.StoreDir != "" {
		st, err := store.Open(f.StoreDir)
		if err != nil {
			return nil, err
		}
		s.rc.Store = st
	}
	if f.StuckAfter > 0 {
		s.wd = watchdog.New(f.StuckAfter, func(r watchdog.Report) {
			fmt.Fprintf(s.stderr, "warning: cell %d still running after %v — stuck? goroutine stacks:\n%s\n",
				r.Cell, r.Elapsed.Round(time.Millisecond), r.Stack)
		})
		s.rc.Watch = s.wd
	}
	s.stop = watchdog.NotifyInterrupt(func(sig os.Signal) {
		n, ok := sig.(syscall.Signal)
		if !ok {
			n = syscall.SIGINT
		}
		if !s.sig.CompareAndSwap(0, int64(n)) {
			// Second signal: the operator means it. Completed cells are
			// already durable in the store; exit immediately.
			os.Exit(exitSignalOff + int(n))
		}
		fmt.Fprintf(s.stderr, "%v: finishing cells in flight, then stopping at the next cell boundary; signal again to exit immediately\n", sig)
	})
	opts.Run = s.rc
	opts.Budget = sim.Budget{Events: f.MaxCellEvents, Virtual: sim.FromDuration(f.MaxCellVirtual)}
	return s, nil
}

// Close releases the signal handler and watchdog.
func (s *Sweeper) Close() {
	if s.wd != nil {
		s.wd.Stop()
	}
	if s.stop != nil {
		s.stop()
	}
}

// RunExperiment executes one named driver. On success the returned
// tables carry explicit markers for any keep-going cell failures (also
// counted toward Err). A canceled sweep returns an *InterruptError; a
// fatal sweep failure without -keep-going returns the structured
// *parallel.SweepError wrapped with the experiment name.
func (s *Sweeper) RunExperiment(name string, driver Driver, opts experiments.Options) (tables []*experiments.Table, err error) {
	s.rc.StartExperiment(name)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		se, ok := r.(*parallel.SweepError)
		if !ok {
			panic(r)
		}
		tables = nil
		if se.Canceled {
			err = s.interruptError()
			return
		}
		err = fmt.Errorf("experiment %s: %w", name, se)
	}()
	tables = driver(opts)
	fails := s.rc.TakeFailures()
	if n := experiments.FailedCells(fails); n > 0 {
		s.failed += n
		for _, t := range tables {
			experiments.MarkFailedCells(t, fails)
		}
		fmt.Fprintf(s.stderr, "experiment %s: %d cells failed; tables are partial and marked\n", name, n)
	}
	return tables, nil
}

// Err reports the accumulated keep-going failures, nil if every cell of
// every experiment completed.
func (s *Sweeper) Err() error {
	if s.failed == 0 {
		return nil
	}
	return fmt.Errorf("%d cells failed across the run; emitted tables are partial (failed cells marked)", s.failed)
}

// interruptError names the signal and, when a store is configured, how
// to resume.
func (s *Sweeper) interruptError() *InterruptError {
	e := &InterruptError{Sig: syscall.Signal(s.sig.Load())}
	if s.flags.StoreDir != "" {
		e.Hint = fmt.Sprintf("; completed cells are flushed — add -resume (with -store %s) to continue where this run stopped", s.flags.StoreDir)
	} else {
		e.Hint = "; no -store configured, so nothing was saved"
	}
	return e
}
