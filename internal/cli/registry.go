// Package cli is the shared plumbing of the dcnsim and dcnreport
// commands: the experiment registry both binaries draw from, the
// crash-safety flags (-store, -resume, -keep-going, -retry, cell
// budgets, watchdog), signal handling that stops a sweep at a cell
// boundary with completed cells flushed, and the documented exit-code
// contract. Keeping it in one package means the two CLIs cannot drift:
// an experiment name, a flag or an exit code means the same thing in
// both, and store entries written by one can resume the other.
package cli

import (
	"nonortho/internal/experiments"
)

// Driver runs one experiment and returns its printable tables.
type Driver func(opts experiments.Options) []*experiments.Table

// tbl adapts the common (result, table...) driver shape.
func tbl(ts ...*experiments.Table) []*experiments.Table { return ts }

// Registry maps every experiment name to its driver. Names are stable
// identifiers: they appear in -exp, in -list, in report sections and in
// store keys, so renaming one silently orphans its cached cells.
func Registry() map[string]Driver {
	return map[string]Driver{
		"fig1": func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig1(o); return tbl(t) },
		"fig2": func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig2(o); return tbl(t) },
		"fig4": func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig4(o); return tbl(t) },
		"fig6": func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig6(o); return tbl(t) },
		"fig7": func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig7(o); return tbl(t) },
		"fig8": func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig8(o); return tbl(t) },
		"fig9-10": func(o experiments.Options) []*experiments.Table {
			_, t9, t10 := experiments.Fig9and10(o)
			return tbl(t9, t10)
		},
		"fig14-15": func(o experiments.Options) []*experiments.Table {
			_, t14, t15 := experiments.Fig14and15(o)
			return tbl(t14, t15)
		},
		"fig16": func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig16(o); return tbl(t) },
		"fig17": func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig17(o); return tbl(t) },
		"fig18": func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig18(o); return tbl(t) },
		"fig19": func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig19(o); return tbl(t) },
		"fig20-21": func(o experiments.Options) []*experiments.Table {
			_, t20, t21 := experiments.Fig20and21(o)
			return tbl(t20, t21)
		},
		"table1": func(o experiments.Options) []*experiments.Table { _, t := experiments.TableI(o); return tbl(t) },
		"fig25":  func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig25(o); return tbl(t) },
		"fig26":  func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig26(o); return tbl(t) },
		"fig27":  func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig27(o); return tbl(t) },
		"fig28":  func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig28(o); return tbl(t) },
		"fig29":  func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig29(o); return tbl(t) },
		"fig30":  func(o experiments.Options) []*experiments.Table { _, t := experiments.Fig30(o); return tbl(t) },
		"bands":  func(o experiments.Options) []*experiments.Table { _, t := experiments.BandSweep(o); return tbl(t) },
		"ablation": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.AblationDCN(o)
			return tbl(t)
		},
		"caseii-recovery": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.CaseIIRecovery(o)
			return tbl(t)
		},
		"energy": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.EnergyComparison(o)
			return tbl(t)
		},
		"scarcity": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.Scarcity(o)
			return tbl(t)
		},
		"multihop": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.Multihop(o)
			return tbl(t)
		},
		"upperbound": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.UpperBound(o)
			return tbl(t)
		},
		"coexistence": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.Coexistence(o)
			return tbl(t)
		},
		"beaconmode": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.BeaconMode(o)
			return tbl(t)
		},
		"tsch": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.TSCH(o)
			return tbl(t)
		},
		"layouts": func(o experiments.Options) []*experiments.Table {
			_, ts := experiments.Layouts(o)
			return ts
		},
		"lpl": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.LPL(o)
			return tbl(t)
		},
		"faulteval": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.FaultEval(o)
			return tbl(t)
		},
		"cityscale": func(o experiments.Options) []*experiments.Table {
			_, t := experiments.CityScale(o)
			return tbl(t)
		},
	}
}

// Section groups registry experiments under one report heading.
type Section struct {
	Heading string
	// Names index into Registry, in print order.
	Names []string
}

// Sections lays out the dcnreport document. Every name must exist in
// Registry (cli_test enforces it); the reverse is deliberately not
// required — "cityscale" stays registry-only (`dcnsim -exp cityscale`)
// because its 5,000-node scaling ladder would multiply report
// regeneration time (and the race-mode report test) for a study whose
// results live in EXPERIMENTS.md, not among the paper's figures.
func Sections() []Section {
	return []Section{
		{"Motivation (Section III)", []string{"fig1", "fig2", "fig4"}},
		{"CCA-threshold study (Section IV)", []string{"fig6", "fig7", "fig8", "fig9-10"}},
		{"DCN evaluation (Section VI-A)", []string{"fig14-15", "fig16", "fig17", "fig18"}},
		{"Headline comparison (Section VI-B)", []string{"fig19", "fig20-21", "table1"}},
		{"Network configurations (Section VI-B.4)", []string{"fig25", "fig26", "fig27"}},
		{"Discussion (Section VII)", []string{"fig28", "fig29", "fig30", "bands"}},
		{"Extensions beyond the paper", []string{
			"ablation", "caseii-recovery", "energy", "scarcity", "multihop",
			"upperbound", "coexistence", "beaconmode", "tsch", "lpl"}},
	}
}
