package topology

import (
	"testing"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

func snapshotConfig() Config {
	return Config{
		Plan: phy.ChannelPlan{
			Start: 2458, Bandwidth: 6, CFD: 3,
			Centers: []phy.MHz{2458, 2461, 2464},
		},
		Layout: LayoutRandomField,
		Power:  UniformPower(-10, 0),
	}
}

func TestSnapshotMatchesGenerate(t *testing.T) {
	const seed = 11
	snap, err := NewSnapshot(snapshotConfig(), sim.NewRNG(seed), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Generate(snapshotConfig(), sim.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	got := snap.Networks()
	if len(got) != len(want) {
		t.Fatalf("networks = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Freq != want[i].Freq || got[i].Sink != want[i].Sink {
			t.Fatalf("network %d: %+v, want %+v", i, got[i], want[i])
		}
		for j := range want[i].Senders {
			if got[i].Senders[j] != want[i].Senders[j] {
				t.Fatalf("network %d sender %d differs", i, j)
			}
		}
	}
}

func TestSnapshotPairLossMatchesModel(t *testing.T) {
	snap, err := NewSnapshot(snapshotConfig(), sim.NewRNG(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	model := snap.Model()
	// Flatten in attach order: sink first, then senders, per network.
	var pos []phy.Position
	for _, net := range snap.Networks() {
		pos = append(pos, net.Sink.Pos)
		for _, nd := range net.Senders {
			pos = append(pos, nd.Pos)
		}
	}
	if len(pos) != snap.NumNodes() {
		t.Fatalf("NumNodes = %d, want %d", snap.NumNodes(), len(pos))
	}
	for i := range pos {
		for j := range pos {
			got, ok := snap.PairLoss(i, j, pos[i], pos[j])
			if !ok {
				t.Fatalf("PairLoss(%d, %d) not ok", i, j)
			}
			// Bit-identical to the lazy computation the medium would do.
			if want := model.Loss(pos[i].DistanceTo(pos[j])); got != want {
				t.Fatalf("PairLoss(%d, %d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestSnapshotPairLossRejectsMismatch(t *testing.T) {
	snap, err := NewSnapshot(snapshotConfig(), sim.NewRNG(3), nil)
	if err != nil {
		t.Fatal(err)
	}
	good := snap.Networks()[0].Sink.Pos
	if _, ok := snap.PairLoss(0, 0, good, good); !ok {
		t.Fatal("matching position rejected")
	}
	shifted := phy.Position{X: good.X + 0.5, Y: good.Y}
	if _, ok := snap.PairLoss(0, 0, shifted, good); ok {
		t.Error("shifted src position accepted")
	}
	if _, ok := snap.PairLoss(0, 0, good, shifted); ok {
		t.Error("shifted listener position accepted")
	}
	n := snap.NumNodes()
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {n, 0}, {0, n}} {
		if _, ok := snap.PairLoss(pair[0], pair[1], good, good); ok {
			t.Errorf("out-of-range pair %v accepted", pair)
		}
	}
}

func TestSnapshotNetworksIsDeepCopy(t *testing.T) {
	snap, err := NewSnapshot(snapshotConfig(), sim.NewRNG(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := snap.Networks()
	a[0].Senders[0].TxPower = 99
	a[0].Senders[0].Pos.X += 1000
	b := snap.Networks()
	if b[0].Senders[0].TxPower == 99 {
		t.Error("mutating one copy's sender leaked into the snapshot")
	}
	// The matrix still answers for the unmutated geometry.
	if _, ok := snap.PairLoss(0, 1, b[0].Sink.Pos, b[0].Senders[0].Pos); !ok {
		t.Error("PairLoss rejected the original geometry after caller mutation")
	}
}
