package topology

import (
	"math"

	"nonortho/internal/phy"
)

// Grid is a bucketed spatial index over a fixed set of node positions: the
// deployment plane is cut into square cells and each node is filed under
// the cell containing it. Range queries then touch only the cells
// overlapping the query disc instead of the whole population, which is what
// turns snapshot construction from O(n²) into O(n·k) for city-scale cells.
//
// The index is immutable after construction and safe for concurrent reads.
// Within a cell, node IDs ascend (nodes are filed in ID order); across
// cells a query visits buckets in row-major cell order, so callers needing
// a globally ID-sorted result must sort what they collect — the snapshot
// does, keeping every consumer deterministic.
type Grid struct {
	pos        []phy.Position
	minX, minY float64
	cell       float64 // cell side, meters
	cols, rows int
	buckets    [][]int32
}

// maxGridDim caps the cell count per axis so a sparse deployment over a
// huge bounding box cannot allocate an absurd bucket table; queries stay
// correct with oversized cells, just less selective.
const maxGridDim = 512

// NewGrid indexes the positions with the given cell size (meters). Cell
// size is typically the query radius the caller intends to use, so a range
// query inspects at most the 3×3 cell neighbourhood of its center.
func NewGrid(pos []phy.Position, cellSize float64) *Grid {
	g := &Grid{pos: pos, cell: cellSize}
	if len(pos) == 0 {
		return g
	}
	if !(g.cell > 0) {
		g.cell = 1
	}
	g.minX, g.minY = pos[0].X, pos[0].Y
	maxX, maxY := pos[0].X, pos[0].Y
	for _, p := range pos[1:] {
		g.minX = math.Min(g.minX, p.X)
		g.minY = math.Min(g.minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	dim := func(span float64) (int, float64) {
		n := int(span/g.cell) + 1
		if n > maxGridDim {
			n = maxGridDim
		}
		return n, span
	}
	var spanX, spanY float64
	g.cols, spanX = dim(maxX - g.minX)
	g.rows, spanY = dim(maxY - g.minY)
	// With capped dimensions the effective cell must cover the span; keep
	// it square so both axes use the same index arithmetic.
	if need := math.Max(spanX/float64(g.cols), spanY/float64(g.rows)); need >= g.cell {
		g.cell = math.Nextafter(need, math.Inf(1))
	}
	g.buckets = make([][]int32, g.cols*g.rows)
	for id, p := range pos {
		g.buckets[g.cellIndex(p)] = append(g.buckets[g.cellIndex(p)], int32(id))
	}
	return g
}

func (g *Grid) cellIndex(p phy.Position) int {
	cx := int((p.X - g.minX) / g.cell)
	cy := int((p.Y - g.minY) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// VisitWithin calls visit for every indexed node within radius of p
// (inclusive), with its distance. Visit order is row-major over the cells
// overlapping the disc, ascending ID within a cell — deterministic, but not
// globally ID-sorted.
func (g *Grid) VisitWithin(p phy.Position, radius float64, visit func(id int32, d float64)) {
	if len(g.pos) == 0 || radius < 0 {
		return
	}
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	cx0 := clamp(int((p.X-radius-g.minX)/g.cell), g.cols-1)
	cx1 := clamp(int((p.X+radius-g.minX)/g.cell), g.cols-1)
	cy0 := clamp(int((p.Y-radius-g.minY)/g.cell), g.rows-1)
	cy1 := clamp(int((p.Y+radius-g.minY)/g.cell), g.rows-1)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, id := range g.buckets[cy*g.cols+cx] {
				if d := p.DistanceTo(g.pos[id]); d <= radius {
					visit(id, d)
				}
			}
		}
	}
}
