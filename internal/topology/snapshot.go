package topology

import (
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// Snapshot is an immutable capture of one generated deployment: the network
// specifications plus the full node-pair path-loss matrix, precomputed once.
// Experiment drivers build one snapshot per (configuration, seed) before
// fanning simulation cells across the worker pool, so every cell that reuses
// the configuration shares the same placements and geometry read-only
// instead of regenerating them — and the medium, via the LossProvider hook,
// skips recomputing per-pair path loss during cell setup and link-cache
// fills.
//
// Node indices follow testbed attach order: for each network in turn, the
// sink first, then its senders. The loss matrix is computed with exactly
// the expression the medium itself uses (model.Loss of the pair distance),
// so matrix lookups are bit-identical to lazy computation; PairLoss
// verifies positions before answering and reports ok=false for nodes that
// moved or attached outside the snapshot (e.g. a late-added interferer),
// letting the medium fall back to its own model.
type Snapshot struct {
	nets  []NetworkSpec
	pos   []phy.Position
	loss  []float64 // n×n, row-major: loss[src*n+dst]
	n     int
	model phy.PathLossModel
}

// NewSnapshot generates a deployment from cfg and rng (consuming exactly
// the draws Generate would) and precomputes its path-loss matrix under
// model (nil = phy.DefaultPathLoss, the testbed default).
func NewSnapshot(cfg Config, rng *sim.RNG, model phy.PathLossModel) (*Snapshot, error) {
	nets, err := Generate(cfg, rng)
	if err != nil {
		return nil, err
	}
	return SnapshotFromSpecs(nets, model), nil
}

// SnapshotFromSpecs captures an explicit set of network specifications —
// for hand-placed topologies — and precomputes the path-loss matrix.
func SnapshotFromSpecs(nets []NetworkSpec, model phy.PathLossModel) *Snapshot {
	if model == nil {
		model = phy.DefaultPathLoss()
	}
	s := &Snapshot{nets: copySpecs(nets), model: model}
	for _, net := range s.nets {
		s.pos = append(s.pos, net.Sink.Pos)
		for _, nd := range net.Senders {
			s.pos = append(s.pos, nd.Pos)
		}
	}
	s.n = len(s.pos)
	s.loss = make([]float64, s.n*s.n)
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			s.loss[i*s.n+j] = model.Loss(s.pos[i].DistanceTo(s.pos[j]))
		}
	}
	return s
}

// Networks returns a deep copy of the captured network specifications.
// Callers mutate their copy freely (per-cell power overrides, extra nodes)
// without corrupting the snapshot shared across cells; PairLoss's position
// check keeps the matrix safe against any such mutation.
func (s *Snapshot) Networks() []NetworkSpec { return copySpecs(s.nets) }

// NumNodes reports the number of nodes captured in the matrix.
func (s *Snapshot) NumNodes() int { return s.n }

// Model returns the path-loss model the matrix was computed under.
func (s *Snapshot) Model() phy.PathLossModel { return s.model }

// PairLoss implements the medium's LossProvider: it returns the precomputed
// loss for the (src, listener) attach-ID pair when both indices are inside
// the snapshot and both positions still match the captured geometry. The
// position check makes the lookup self-verifying — a mismatched node (late
// attacher, mover, or an index shifted by caller-added nodes) simply falls
// back to the medium's own model, never to a wrong value. Safe for
// concurrent use: the snapshot is immutable after construction.
func (s *Snapshot) PairLoss(src, listener int, from, to phy.Position) (float64, bool) {
	if src < 0 || src >= s.n || listener < 0 || listener >= s.n {
		return 0, false
	}
	if s.pos[src] != from || s.pos[listener] != to {
		return 0, false
	}
	return s.loss[src*s.n+listener], true
}

// copySpecs deep-copies network specifications (the Senders slices are the
// only shared backing arrays; NodeSpec is a value type).
func copySpecs(nets []NetworkSpec) []NetworkSpec {
	out := make([]NetworkSpec, len(nets))
	copy(out, nets)
	for i := range out {
		out[i].Senders = append([]NodeSpec(nil), nets[i].Senders...)
	}
	return out
}
