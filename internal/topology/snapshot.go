package topology

import (
	"fmt"
	"sort"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// Snapshot is an immutable capture of one generated deployment: the network
// specifications plus the full node-pair path-loss matrix, precomputed once.
// Experiment drivers build one snapshot per (configuration, seed) before
// fanning simulation cells across the worker pool, so every cell that reuses
// the configuration shares the same placements and geometry read-only
// instead of regenerating them — and the medium, via the LossProvider hook,
// skips recomputing per-pair path loss during cell setup and link-cache
// fills.
//
// Node indices follow testbed attach order: for each network in turn, the
// sink first, then its senders. The loss matrix is computed with exactly
// the expression the medium itself uses (model.Loss of the pair distance),
// so matrix lookups are bit-identical to lazy computation; PairLoss
// verifies positions before answering and reports ok=false for nodes that
// moved or attached outside the snapshot (e.g. a late-added interferer),
// letting the medium fall back to its own model.
// A snapshot has two representations. The dense form (NewSnapshot,
// SnapshotFromSpecs) materialises the full n×n matrix. The near-field form
// (NewSnapshotNear, SnapshotFromSpecsNear) stores only the pairs within a
// certified loss bound, in compressed sparse rows built through a Grid
// range query — O(n·k) construction and memory for neighbourhood size k —
// and answers far pairs with the bound itself via PairLossFloor. Both
// forms return bit-identical losses for the pairs they do hold.
type Snapshot struct {
	nets  []NetworkSpec
	pos   []phy.Position
	loss  []float64 // dense: n×n, row-major loss[src*n+dst]; nil in near-field form
	n     int
	model phy.PathLossModel

	// Near-field form: lossBound certifies that every pair absent from the
	// rows has path loss >= lossBound (nearRange is the matching distance
	// bound). Row i holds the ascending node IDs within nearRange of node i
	// (always including i itself) and their losses, CSR-packed:
	// nearIDs[nearOff[i]:nearOff[i+1]].
	lossBound float64
	nearRange float64
	nearOff   []int32
	nearIDs   []int32
	nearLoss  []float64
	maxFar    int // max over listeners of (n - row length)
}

// NewSnapshot generates a deployment from cfg and rng (consuming exactly
// the draws Generate would) and precomputes its path-loss matrix under
// model (nil = phy.DefaultPathLoss, the testbed default).
func NewSnapshot(cfg Config, rng *sim.RNG, model phy.PathLossModel) (*Snapshot, error) {
	nets, err := Generate(cfg, rng)
	if err != nil {
		return nil, err
	}
	return SnapshotFromSpecs(nets, model), nil
}

// SnapshotFromSpecs captures an explicit set of network specifications —
// for hand-placed topologies — and precomputes the path-loss matrix.
func SnapshotFromSpecs(nets []NetworkSpec, model phy.PathLossModel) *Snapshot {
	if model == nil {
		model = phy.DefaultPathLoss()
	}
	s := &Snapshot{nets: copySpecs(nets), model: model}
	for _, net := range s.nets {
		s.pos = append(s.pos, net.Sink.Pos)
		for _, nd := range net.Senders {
			s.pos = append(s.pos, nd.Pos)
		}
	}
	s.n = len(s.pos)
	s.loss = make([]float64, s.n*s.n)
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			s.loss[i*s.n+j] = model.Loss(s.pos[i].DistanceTo(s.pos[j]))
		}
	}
	return s
}

// NewSnapshotNear is NewSnapshot in the near-field form: the deployment is
// generated identically (consuming exactly the draws Generate would) but
// only pair losses below lossBoundDB are materialised.
func NewSnapshotNear(cfg Config, rng *sim.RNG, model phy.PathLossModel, lossBoundDB float64) (*Snapshot, error) {
	nets, err := Generate(cfg, rng)
	if err != nil {
		return nil, err
	}
	return SnapshotFromSpecsNear(nets, model, lossBoundDB)
}

// SnapshotFromSpecsNear captures an explicit set of network specifications
// in the near-field form: pairs whose path loss is certified to reach
// lossBoundDB or more never enter the matrix. The model (nil =
// phy.DefaultPathLoss) must implement phy.RangeInverter so the loss bound
// converts to a distance bound; losses for retained pairs are computed with
// exactly the expression the medium uses, so lookups stay bit-identical to
// lazy computation.
func SnapshotFromSpecsNear(nets []NetworkSpec, model phy.PathLossModel, lossBoundDB float64) (*Snapshot, error) {
	if model == nil {
		model = phy.DefaultPathLoss()
	}
	inv, ok := model.(phy.RangeInverter)
	if !ok {
		return nil, fmt.Errorf("topology: near-field snapshot needs a phy.RangeInverter path-loss model, got %T", model)
	}
	if !(lossBoundDB > 0) {
		return nil, fmt.Errorf("topology: near-field loss bound must be positive, got %g dB", lossBoundDB)
	}
	s := &Snapshot{nets: copySpecs(nets), model: model, lossBound: lossBoundDB}
	for _, net := range s.nets {
		s.pos = append(s.pos, net.Sink.Pos)
		for _, nd := range net.Senders {
			s.pos = append(s.pos, nd.Pos)
		}
	}
	s.n = len(s.pos)
	s.nearRange = inv.RangeForLoss(lossBoundDB)
	grid := NewGrid(s.pos, s.nearRange)
	s.nearOff = make([]int32, s.n+1)
	type nearEntry struct {
		id int32
		d  float64
	}
	var row []nearEntry
	for i := 0; i < s.n; i++ {
		row = row[:0]
		grid.VisitWithin(s.pos[i], s.nearRange, func(id int32, d float64) {
			row = append(row, nearEntry{id, d})
		})
		sort.Slice(row, func(a, b int) bool { return row[a].id < row[b].id })
		for _, e := range row {
			s.nearIDs = append(s.nearIDs, e.id)
			s.nearLoss = append(s.nearLoss, model.Loss(e.d))
		}
		s.nearOff[i+1] = int32(len(s.nearIDs))
		if far := s.n - len(row); far > s.maxFar {
			s.maxFar = far
		}
	}
	return s, nil
}

// Networks returns a deep copy of the captured network specifications.
// Callers mutate their copy freely (per-cell power overrides, extra nodes)
// without corrupting the snapshot shared across cells; PairLoss's position
// check keeps the matrix safe against any such mutation.
func (s *Snapshot) Networks() []NetworkSpec { return copySpecs(s.nets) }

// NumNodes reports the number of nodes captured in the matrix.
func (s *Snapshot) NumNodes() int { return s.n }

// Model returns the path-loss model the matrix was computed under.
func (s *Snapshot) Model() phy.PathLossModel { return s.model }

// PairLoss implements the medium's LossProvider: it returns the precomputed
// loss for the (src, listener) attach-ID pair when both indices are inside
// the snapshot and both positions still match the captured geometry. The
// position check makes the lookup self-verifying — a mismatched node (late
// attacher, mover, or an index shifted by caller-added nodes) simply falls
// back to the medium's own model, never to a wrong value. Safe for
// concurrent use: the snapshot is immutable after construction.
func (s *Snapshot) PairLoss(src, listener int, from, to phy.Position) (float64, bool) {
	if src < 0 || src >= s.n || listener < 0 || listener >= s.n {
		return 0, false
	}
	if s.pos[src] != from || s.pos[listener] != to {
		return 0, false
	}
	if s.loss != nil {
		return s.loss[src*s.n+listener], true
	}
	if r := s.nearRank(listener, int32(src)); r >= 0 {
		return s.nearLoss[r], true
	}
	return 0, false // far pair: only the floor is known (PairLossFloor)
}

// PairLossFloor is the near-field counterpart of PairLoss for pairs the
// matrix deliberately omits: when both nodes match the captured geometry
// and the pair is certified far, it returns the snapshot's loss bound — a
// floor every such pair's true loss provably reaches. ok=false for dense
// snapshots, near pairs (use PairLoss), and unmatched geometry.
func (s *Snapshot) PairLossFloor(src, listener int, from, to phy.Position) (float64, bool) {
	if s.loss != nil || src < 0 || src >= s.n || listener < 0 || listener >= s.n {
		return 0, false
	}
	if s.pos[src] != from || s.pos[listener] != to {
		return 0, false
	}
	if s.nearRank(listener, int32(src)) >= 0 {
		return 0, false
	}
	return s.lossBound, true
}

// nearRank returns src's index into the CSR arrays of listener's near row,
// or -1 when the pair is far (or the snapshot is dense).
func (s *Snapshot) nearRank(listener int, src int32) int {
	lo, hi := int(s.nearOff[listener]), int(s.nearOff[listener+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch v := s.nearIDs[mid]; {
		case v < src:
			lo = mid + 1
		case v > src:
			hi = mid
		default:
			return mid
		}
	}
	return -1
}

// NearRow returns listener's near-field row: the ascending node IDs within
// the snapshot's distance bound (including listener itself) and their pair
// losses. The slices are views into the snapshot's CSR arrays — read-only.
// Nil for dense snapshots. Rows are symmetric: src ∈ NearRow(listener) iff
// listener ∈ NearRow(src), with the identical loss value.
func (s *Snapshot) NearRow(listener int) (ids []int32, loss []float64) {
	if s.loss != nil || listener < 0 || listener >= s.n {
		return nil, nil
	}
	lo, hi := s.nearOff[listener], s.nearOff[listener+1]
	return s.nearIDs[lo:hi], s.nearLoss[lo:hi]
}

// Backed reports whether attach ID id is captured in the snapshot at
// exactly the given position — the self-verification PairLoss applies,
// exposed so the medium can classify listeners once instead of per pair.
func (s *Snapshot) Backed(id int, pos phy.Position) bool {
	return id >= 0 && id < s.n && s.pos[id] == pos
}

// FarField describes the near-field form: the certified loss floor of
// omitted pairs and the worst per-listener count of omitted sources.
// ok=false for dense snapshots.
func (s *Snapshot) FarField() (lossBoundDB float64, maxFarCount int, ok bool) {
	if s.loss != nil || s.nearOff == nil {
		return 0, 0, false
	}
	return s.lossBound, s.maxFar, true
}

// Dense reports whether the full n×n matrix is materialised.
func (s *Snapshot) Dense() bool { return s.loss != nil }

// NearPairs reports the number of materialised pair losses — n² for the
// dense form, the CSR population (including self pairs) for the near-field
// form. The O(n·k) memory guarantee tests pin down is this count.
func (s *Snapshot) NearPairs() int {
	if s.loss != nil {
		return s.n * s.n
	}
	return len(s.nearIDs)
}

// copySpecs deep-copies network specifications (the Senders slices are the
// only shared backing arrays; NodeSpec is a value type).
func copySpecs(nets []NetworkSpec) []NetworkSpec {
	out := make([]NetworkSpec, len(nets))
	copy(out, nets)
	for i := range out {
		out[i].Senders = append([]NodeSpec(nil), nets[i].Senders...)
	}
	return out
}
