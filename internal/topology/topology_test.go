package topology

import (
	"math"
	"testing"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

func plan(t *testing.T, cfd phy.MHz) phy.ChannelPlan {
	t.Helper()
	p, err := phy.NewChannelPlan(2458, 15, cfd, phy.SpanInclusive)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateOneNetworkPerChannel(t *testing.T) {
	rng := sim.NewRNG(1)
	nets, err := Generate(Config{Plan: plan(t, 3)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 6 {
		t.Fatalf("networks = %d, want 6", len(nets))
	}
	for i, n := range nets {
		if n.Freq != 2458+phy.MHz(3*i) {
			t.Errorf("network %d freq = %v", i, n.Freq)
		}
		if len(n.Senders) != 4 {
			t.Errorf("network %d senders = %d, want 4", i, len(n.Senders))
		}
	}
}

func TestColocatedKeepsEveryoneClose(t *testing.T) {
	rng := sim.NewRNG(2)
	nets, err := Generate(Config{Plan: plan(t, 3), Layout: LayoutColocated}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nets {
		for _, s := range n.Senders {
			if d := s.Pos.DistanceTo(phy.Position{}); d > 2.5+1.0+0.01 {
				t.Errorf("colocated sender %v m from origin, want <= 3.5", d)
			}
		}
	}
}

func TestClusteredSeparatesNetworks(t *testing.T) {
	rng := sim.NewRNG(3)
	nets, err := Generate(Config{Plan: plan(t, 3), Layout: LayoutClustered, RegionRadius: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(nets); i++ {
		d := nets[i].Sink.Pos.DistanceTo(nets[i-1].Sink.Pos)
		if math.Abs(d-6) > 1e-9 {
			t.Errorf("cluster spacing %d = %v, want 6", i, d)
		}
	}
	// Senders stay within the link ring around their own sink.
	for i, n := range nets {
		for _, s := range n.Senders {
			if d := s.Pos.DistanceTo(n.Sink.Pos); d > 1.0+1e-9 || d < 0.5-1e-9 {
				t.Errorf("network %d sender at %v m from sink, want within [0.5, 1.0]", i, d)
			}
		}
	}
}

func TestRandomFieldKeepsLinksViable(t *testing.T) {
	rng := sim.NewRNG(4)
	nets, err := Generate(Config{Plan: plan(t, 3), Layout: LayoutRandomField}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range nets {
		if math.Abs(n.Sink.Pos.X) > 3.5 || math.Abs(n.Sink.Pos.Y) > 3.5 {
			t.Errorf("network %d sink outside the field: %v", i, n.Sink.Pos)
		}
		for _, s := range n.Senders {
			if d := s.Pos.DistanceTo(n.Sink.Pos); d > 3+1e-9 {
				t.Errorf("network %d link distance %v, want <= 3 (viability)", i, d)
			}
		}
	}
}

func TestPowerPolicies(t *testing.T) {
	rng := sim.NewRNG(5)
	if got := FixedPower(-7)(rng); got != -7 {
		t.Errorf("FixedPower = %v, want -7", got)
	}
	for i := 0; i < 100; i++ {
		p := UniformPower(-22, 0)(rng)
		if p < -22 || p > 0 {
			t.Fatalf("UniformPower draw %v outside [-22, 0]", p)
		}
	}
}

func TestGenerateAppliesPowerPolicy(t *testing.T) {
	rng := sim.NewRNG(6)
	nets, err := Generate(Config{Plan: plan(t, 5), Power: FixedPower(-11)}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nets {
		for _, s := range n.Senders {
			if s.TxPower != -11 {
				t.Fatalf("sender power = %v, want -11", s.TxPower)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	gen := func() []NetworkSpec {
		rng := sim.NewRNG(99)
		nets, err := Generate(Config{Plan: plan(t, 3), Layout: LayoutRandomField,
			Power: UniformPower(-22, 0)}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return nets
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i].Sink.Pos != b[i].Sink.Pos {
			t.Fatal("same seed produced different layouts")
		}
		for j := range a[i].Senders {
			if a[i].Senders[j] != b[i].Senders[j] {
				t.Fatal("same seed produced different nodes")
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := Generate(Config{}, rng); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := Generate(Config{Plan: plan(t, 3), Layout: Layout(77)}, rng); err == nil {
		t.Error("bogus layout accepted")
	}
}

func TestLayoutString(t *testing.T) {
	for l, want := range map[Layout]string{
		LayoutColocated: "colocated", LayoutClustered: "clustered",
		LayoutRandomField: "random-field", Layout(9): "layout(9)",
	} {
		if got := l.String(); got != want {
			t.Errorf("Layout.String() = %q, want %q", got, want)
		}
	}
}
