package topology

import (
	"fmt"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// CityConfig parameterises a city-scale deployment: many small
// sender-to-sink networks scattered over a large square, cycling through
// the channel plan. Unlike Config — which generates exactly one network
// per channel and presumes a single interfering region — a city cell holds
// hundreds of networks whose mutual interference is governed by distance,
// which is what the spatial tier (near-field snapshots, far-field folding)
// exists to exploit.
type CityConfig struct {
	// Plan supplies the channels; network i uses Centers[i % NumChannels].
	Plan phy.ChannelPlan
	// Networks is the number of networks to place.
	Networks int
	// SendersPerNetwork defaults to 4, the paper's network size.
	SendersPerNetwork int
	// AreaSide is the side of the square deployment area in meters
	// (default 2000). Sinks are placed uniformly in the square.
	AreaSide float64
	// LinkRadius bounds the sender-to-sink distance: senders sit in the
	// ring [LinkRadius/2, LinkRadius] around their sink (default 1 m, the
	// shelf-testbed geometry of Config).
	LinkRadius float64
	// Power assigns transmit powers. Defaults to FixedPower(0 dBm).
	Power PowerPolicy
}

func (c CityConfig) withDefaults() CityConfig {
	if c.SendersPerNetwork == 0 {
		c.SendersPerNetwork = 4
	}
	if c.AreaSide == 0 {
		c.AreaSide = 2000
	}
	if c.LinkRadius == 0 {
		c.LinkRadius = 1
	}
	if c.Power == nil {
		c.Power = FixedPower(phy.MaxTxPower)
	}
	return c
}

// NumNodes reports the node count the configuration generates.
func (c CityConfig) NumNodes() int {
	c = c.withDefaults()
	return c.Networks * (c.SendersPerNetwork + 1)
}

// GenerateCity builds the network specifications for a city-scale
// configuration, deterministically from the supplied RNG.
func GenerateCity(cfg CityConfig, rng *sim.RNG) ([]NetworkSpec, error) {
	cfg = cfg.withDefaults()
	if cfg.Plan.NumChannels() == 0 {
		return nil, fmt.Errorf("topology: channel plan has no channels")
	}
	if cfg.Networks <= 0 {
		return nil, fmt.Errorf("topology: city config needs at least one network, got %d", cfg.Networks)
	}
	nets := make([]NetworkSpec, cfg.Networks)
	half := cfg.AreaSide / 2
	for i := range nets {
		center := randomInSquare(rng, half)
		nets[i] = NetworkSpec{
			Freq: cfg.Plan.Centers[i%cfg.Plan.NumChannels()],
			Sink: NodeSpec{Pos: center, TxPower: cfg.Power(rng)},
		}
		for s := 0; s < cfg.SendersPerNetwork; s++ {
			nets[i].Senders = append(nets[i].Senders, NodeSpec{
				Pos:     randomInRing(rng, center, cfg.LinkRadius/2, cfg.LinkRadius),
				TxPower: cfg.Power(rng),
			})
		}
	}
	return nets, nil
}
