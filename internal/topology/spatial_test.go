package topology

import (
	"math"
	"sort"
	"testing"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// The spatial tier's geometry layer: the grid index must report exactly
// the within-radius pairs a brute-force scan finds, and the near-field
// snapshot must be bit-identical to the dense matrix on every pair it
// materialises while certifying every omitted pair at or beyond the loss
// bound.

func TestGridVisitWithinMatchesBruteForce(t *testing.T) {
	rng := sim.NewRNG(7)
	const n = 400
	pos := make([]phy.Position, n)
	for i := range pos {
		pos[i] = phy.Position{X: rng.Float64() * 500, Y: rng.Float64() * 500}
	}
	for _, radius := range []float64{5, 60, 800} {
		g := NewGrid(pos, radius)
		for _, probe := range []int{0, 17, n - 1} {
			var got []int32
			g.VisitWithin(pos[probe], radius, func(id int32, d float64) {
				got = append(got, id)
				if want := pos[probe].DistanceTo(pos[id]); d != want {
					t.Fatalf("radius %g probe %d id %d: visit distance %v, want %v", radius, probe, id, want, d)
				}
			})
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			var want []int32
			for j := range pos {
				if pos[probe].DistanceTo(pos[j]) <= radius {
					want = append(want, int32(j))
				}
			}
			if len(got) != len(want) {
				t.Fatalf("radius %g probe %d: %d visited, want %d", radius, probe, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("radius %g probe %d: visited %v, want %v", radius, probe, got, want)
				}
			}
		}
	}
}

func TestNearSnapshotMatchesDense(t *testing.T) {
	cfg := CityConfig{
		Plan:     phy.ChannelPlan{Start: 2458, Bandwidth: 15, CFD: 3, Centers: []phy.MHz{2458, 2461, 2464}},
		Networks: 60,
		AreaSide: 1500,
	}
	nets, err := GenerateCity(cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	const bound = 115 // ~82 m near range: plenty of far pairs over 1.5 km
	near, err := SnapshotFromSpecsNear(nets, nil, bound)
	if err != nil {
		t.Fatal(err)
	}
	dense := SnapshotFromSpecs(nets, nil)
	if near.Dense() || !dense.Dense() {
		t.Fatalf("Dense(): near %v dense %v, want false/true", near.Dense(), dense.Dense())
	}
	n := near.NumNodes()
	if n != dense.NumNodes() || n != cfg.NumNodes() {
		t.Fatalf("NumNodes: near %d dense %d cfg %d", n, dense.NumNodes(), cfg.NumNodes())
	}

	pos := make([]phy.Position, 0, n)
	for _, net := range nets {
		pos = append(pos, net.Sink.Pos)
		for _, s := range net.Senders {
			pos = append(pos, s.Pos)
		}
	}
	nearPairs, farPairs := 0, 0
	for l := 0; l < n; l++ {
		ids, loss := near.NearRow(l)
		if len(ids) != len(loss) {
			t.Fatalf("row %d: %d ids, %d losses", l, len(ids), len(loss))
		}
		inRow := map[int32]float64{}
		prev := int32(-1)
		for i, id := range ids {
			if id <= prev {
				t.Fatalf("row %d not in ascending ID order: %v", l, ids)
			}
			prev = id
			inRow[id] = loss[i]
		}
		if _, ok := inRow[int32(l)]; !ok {
			t.Fatalf("row %d omits the node itself", l)
		}
		for s := 0; s < n; s++ {
			want, ok := dense.PairLoss(s, l, pos[s], pos[l])
			if !ok {
				t.Fatalf("dense matrix has no (%d,%d)", s, l)
			}
			if rowLoss, isNear := inRow[int32(s)]; isNear {
				nearPairs++
				// Materialised pairs are bit-identical to the dense matrix
				// through every access path.
				if rowLoss != want {
					t.Fatalf("pair (%d,%d): near row loss %v, dense %v", s, l, rowLoss, want)
				}
				got, ok := near.PairLoss(s, l, pos[s], pos[l])
				if !ok || got != want {
					t.Fatalf("pair (%d,%d): near PairLoss (%v,%v), dense %v", s, l, got, ok, want)
				}
				if _, okf := near.PairLossFloor(s, l, pos[s], pos[l]); okf {
					t.Fatalf("pair (%d,%d) is near but PairLossFloor answered", s, l)
				}
			} else {
				farPairs++
				// Omitted pairs are certified: the true loss reaches the bound.
				if want < bound {
					t.Fatalf("pair (%d,%d) omitted but true loss %v < bound %v", s, l, want, float64(bound))
				}
				if _, ok := near.PairLoss(s, l, pos[s], pos[l]); ok {
					t.Fatalf("far pair (%d,%d): PairLoss answered", s, l)
				}
				floor, ok := near.PairLossFloor(s, l, pos[s], pos[l])
				if !ok || floor != bound {
					t.Fatalf("far pair (%d,%d): PairLossFloor = (%v,%v), want (%v,true)", s, l, floor, ok, float64(bound))
				}
			}
			// Symmetry of the near/far split.
			if _, fwd := near.PairLoss(s, l, pos[s], pos[l]); true {
				_, rev := near.PairLoss(l, s, pos[l], pos[s])
				if fwd != rev {
					t.Fatalf("pair (%d,%d) near/far split asymmetric", s, l)
				}
			}
		}
	}
	if farPairs == 0 {
		t.Fatal("layout produced no far pairs; the certification path went untested")
	}
	if got := near.NearPairs(); got != nearPairs {
		t.Fatalf("NearPairs() = %d, counted %d", got, nearPairs)
	}
	// The whole point: materialised storage is a small fraction of n².
	if frac := float64(nearPairs) / float64(n*n); frac > 0.25 {
		t.Fatalf("near fraction %.2f — layout not sparse enough to prove O(n·k) storage", frac)
	}
	_, maxFar, ok := near.FarField()
	if !ok {
		t.Fatal("near snapshot reports dense in FarField()")
	}
	worstFar := 0
	for l := 0; l < n; l++ {
		ids, _ := near.NearRow(l)
		if far := n - len(ids); far > worstFar {
			worstFar = far
		}
	}
	if maxFar != worstFar {
		t.Fatalf("FarField maxFar = %d, want %d", maxFar, worstFar)
	}
}

// TestRangeForLossCertifies is the property behind every far certificate:
// any distance strictly beyond RangeForLoss(L) has model loss >= L, so a
// pair outside the radius can safely be omitted with floor L.
func TestRangeForLossCertifies(t *testing.T) {
	model := phy.DefaultPathLoss()
	rng := sim.NewRNG(11)
	for i := 0; i < 2000; i++ {
		lossDB := 40 + rng.Float64()*140
		r := model.RangeForLoss(lossDB)
		if model.Loss(r) < lossDB {
			t.Fatalf("Loss(RangeForLoss(%v)) = %v < %v", lossDB, model.Loss(r), lossDB)
		}
		// Just beyond the radius the certificate must hold exactly.
		beyond := math.Nextafter(r, math.Inf(1))
		if model.Loss(beyond) < lossDB {
			t.Fatalf("Loss just beyond RangeForLoss(%v) = %v < %v", lossDB, model.Loss(beyond), lossDB)
		}
	}
	// Sub-clamp losses resolve to the clamp distance, not zero.
	if r := model.RangeForLoss(1); r <= 0 {
		t.Fatalf("RangeForLoss(1) = %v, want the clamp distance", r)
	}
}

func TestGenerateCityDeterministicAndInBounds(t *testing.T) {
	cfg := CityConfig{
		Plan:     phy.ChannelPlan{Start: 2458, Bandwidth: 15, CFD: 3, Centers: []phy.MHz{2458, 2461}},
		Networks: 25,
	}
	a, err := GenerateCity(cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCity(cfg, sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 25 || len(b) != 25 {
		t.Fatalf("network counts %d, %d, want 25", len(a), len(b))
	}
	half := 1000.0 // default AreaSide 2000
	for i := range a {
		if a[i].Freq != b[i].Freq || a[i].Sink.Pos != b[i].Sink.Pos {
			t.Fatalf("network %d differs across identical seeds", i)
		}
		if want := cfg.Plan.Centers[i%2]; a[i].Freq != want {
			t.Fatalf("network %d freq %v, want cycled %v", i, a[i].Freq, want)
		}
		if p := a[i].Sink.Pos; math.Abs(p.X) > half || math.Abs(p.Y) > half {
			t.Fatalf("sink %d at %v outside the default square", i, p)
		}
		if len(a[i].Senders) != 4 {
			t.Fatalf("network %d has %d senders, want default 4", i, len(a[i].Senders))
		}
		for j, s := range a[i].Senders {
			if s.Pos != b[i].Senders[j].Pos {
				t.Fatalf("sender %d/%d differs across identical seeds", i, j)
			}
			d := a[i].Sink.Pos.DistanceTo(s.Pos)
			if d < 0.5-1e-12 || d > 1+1e-12 {
				t.Fatalf("sender %d/%d at ring distance %v, want [0.5, 1]", i, j, d)
			}
		}
	}
	if _, err := GenerateCity(CityConfig{Plan: cfg.Plan}, sim.NewRNG(1)); err == nil {
		t.Fatal("zero networks accepted")
	}
	if _, err := GenerateCity(CityConfig{Networks: 3}, sim.NewRNG(1)); err == nil {
		t.Fatal("empty channel plan accepted")
	}
}

// TestNearSnapshotErrors pins the constructor's preconditions.
func TestNearSnapshotErrors(t *testing.T) {
	nets := []NetworkSpec{{Freq: 2458, Sink: NodeSpec{}}}
	if _, err := SnapshotFromSpecsNear(nets, nil, 0); err == nil {
		t.Fatal("zero loss bound accepted")
	}
	if _, err := SnapshotFromSpecsNear(nets, nil, -5); err == nil {
		t.Fatal("negative loss bound accepted")
	}
	if _, err := SnapshotFromSpecsNear(nets, flatLoss{}, 100); err == nil {
		t.Fatal("model without RangeForLoss accepted")
	}
}

// flatLoss is a PathLossModel that cannot invert a loss to a range.
type flatLoss struct{}

func (flatLoss) Loss(d float64) float64 { return 60 }
