// Package topology generates the node placements of the paper's
// experiments: the dense single-region deployment of the motivating
// experiments and Case I, the per-network clusters of Case II, and the
// random field of Case III — plus transmit-power assignment policies.
package topology

import (
	"fmt"
	"math"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// NodeSpec describes one node to instantiate.
type NodeSpec struct {
	// Pos is the node's position in meters.
	Pos phy.Position
	// TxPower is the node's transmit power.
	TxPower phy.DBm
}

// NetworkSpec describes one network: a set of saturated senders reporting
// to a single sink, all on one channel.
type NetworkSpec struct {
	// Freq is the network's channel center frequency.
	Freq phy.MHz
	// Senders are the transmitting nodes.
	Senders []NodeSpec
	// Sink is the receiving node (throughput is counted here).
	Sink NodeSpec
}

// PowerPolicy assigns a transmit power to each generated node.
type PowerPolicy func(rng *sim.RNG) phy.DBm

// FixedPower assigns the same power everywhere.
func FixedPower(p phy.DBm) PowerPolicy {
	return func(*sim.RNG) phy.DBm { return p }
}

// UniformPower draws each node's power uniformly from [lo, hi] — the
// paper's Section VI-B.4 randomises within [-22, 0] dBm.
func UniformPower(lo, hi phy.DBm) PowerPolicy {
	return func(rng *sim.RNG) phy.DBm {
		return phy.DBm(rng.UniformRange(float64(lo), float64(hi)))
	}
}

// Layout selects one of the paper's deployment shapes.
type Layout int

// The paper's three network configurations (Figs. 22-24), plus the dense
// strip used by the motivating experiments.
const (
	// LayoutColocated is Case I: every node of every network inside one
	// interfering region.
	LayoutColocated Layout = iota + 1
	// LayoutClustered is Case II: each network forms its own spatial
	// cluster (an office room), clusters spaced apart.
	LayoutClustered
	// LayoutRandomField is Case III: all nodes placed uniformly at random
	// over a larger region, with each sender kept within radio range of
	// its sink.
	LayoutRandomField
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutColocated:
		return "colocated"
	case LayoutClustered:
		return "clustered"
	case LayoutRandomField:
		return "random-field"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// Config parameterises a generated deployment.
type Config struct {
	// Plan supplies the channel of each network (one network per channel).
	Plan phy.ChannelPlan
	// SendersPerNetwork defaults to 4, the paper's network size.
	SendersPerNetwork int
	// Layout selects the deployment shape. Defaults to LayoutColocated.
	Layout Layout
	// Power assigns transmit powers. Defaults to FixedPower(0 dBm).
	Power PowerPolicy
	// RegionRadius scales the deployment:
	//   - colocated: radius of the shared disc holding all sink centers
	//     (default 2.5 m);
	//   - clustered: spacing between adjacent cluster centers
	//     (default 5 m);
	//   - random field: half-side of the square field (default 3.5 m).
	RegionRadius float64
	// LinkRadius bounds the sender-to-sink distance: senders sit in the
	// ring [LinkRadius/2, LinkRadius] around the sink (default 1 m, so a
	// network is a tight cluster whose co-channel RSSI stays well above
	// the energy arriving from other networks — the shelf-testbed
	// geometry the paper's DCN depends on). In the random field layout
	// senders are anywhere within LinkRadius (default 3 m) of the sink.
	LinkRadius float64
}

func (c Config) withDefaults() Config {
	if c.SendersPerNetwork == 0 {
		c.SendersPerNetwork = 4
	}
	if c.Layout == 0 {
		c.Layout = LayoutColocated
	}
	if c.Power == nil {
		c.Power = FixedPower(phy.MaxTxPower)
	}
	if c.RegionRadius == 0 {
		switch c.Layout {
		case LayoutClustered:
			c.RegionRadius = 5
		case LayoutRandomField:
			c.RegionRadius = 3.5
		default:
			c.RegionRadius = 2.5
		}
	}
	if c.LinkRadius == 0 {
		if c.Layout == LayoutRandomField {
			c.LinkRadius = 3
		} else {
			c.LinkRadius = 1.0
		}
	}
	return c
}

// Generate builds the network specifications for the configuration,
// deterministically from the supplied RNG.
func Generate(cfg Config, rng *sim.RNG) ([]NetworkSpec, error) {
	cfg = cfg.withDefaults()
	if cfg.Plan.NumChannels() == 0 {
		return nil, fmt.Errorf("topology: channel plan has no channels")
	}
	nets := make([]NetworkSpec, cfg.Plan.NumChannels())
	for i := range nets {
		var center phy.Position
		switch cfg.Layout {
		case LayoutColocated:
			center = randomInDisc(rng, phy.Position{}, cfg.RegionRadius)
		case LayoutClustered:
			// Clusters in a row along X, spaced RegionRadius apart.
			center = phy.Position{X: float64(i) * cfg.RegionRadius}
		case LayoutRandomField:
			center = randomInSquare(rng, cfg.RegionRadius)
		default:
			return nil, fmt.Errorf("topology: unknown layout %v", cfg.Layout)
		}
		nets[i] = NetworkSpec{
			Freq: cfg.Plan.Centers[i],
			Sink: NodeSpec{Pos: center, TxPower: cfg.Power(rng)},
		}
		for s := 0; s < cfg.SendersPerNetwork; s++ {
			var pos phy.Position
			switch cfg.Layout {
			case LayoutRandomField:
				// Anywhere in the field, but within link range of the
				// sink so the link stays viable at low power.
				pos = randomInDisc(rng, center, cfg.LinkRadius)
			default:
				pos = randomInRing(rng, center, cfg.LinkRadius/2, cfg.LinkRadius)
			}
			nets[i].Senders = append(nets[i].Senders, NodeSpec{
				Pos:     pos,
				TxPower: cfg.Power(rng),
			})
		}
	}
	return nets, nil
}

// randomInDisc draws a uniform point in the disc of the given radius.
func randomInDisc(rng *sim.RNG, center phy.Position, radius float64) phy.Position {
	r := radius * math.Sqrt(rng.Float64())
	theta := rng.UniformRange(0, 2*math.Pi)
	return phy.Position{X: center.X + r*math.Cos(theta), Y: center.Y + r*math.Sin(theta)}
}

// randomInRing draws a uniform-angle point with radius in [rMin, rMax].
func randomInRing(rng *sim.RNG, center phy.Position, rMin, rMax float64) phy.Position {
	if rMax < rMin {
		rMax = rMin
	}
	r := rng.UniformRange(rMin, rMax)
	theta := rng.UniformRange(0, 2*math.Pi)
	return phy.Position{X: center.X + r*math.Cos(theta), Y: center.Y + r*math.Sin(theta)}
}

// randomInSquare draws a uniform point in the square [-half, half]².
func randomInSquare(rng *sim.RNG, half float64) phy.Position {
	return phy.Position{
		X: rng.UniformRange(-half, half),
		Y: rng.UniformRange(-half, half),
	}
}
