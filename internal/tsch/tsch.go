// Package tsch is a compact time-slotted channel-hopping MAC in the
// spirit of IEEE 802.15.4e: a repeating slotframe of fixed-length
// timeslots, dedicated (slot, channelOffset) cells between node pairs, and
// per-slot frequency hopping
//
//	frequency = HopSequence[(ASN + channelOffset) mod len(HopSequence)]
//
// with ASN the absolute slot number. Dedicated cells transmit without
// CSMA; concurrency comes entirely from the channel dimension — which is
// exactly where the paper's thesis bites: a non-orthogonal hop set at
// CFD = 3 MHz offers six usable channel offsets on the 15 MHz band where
// the orthogonal set offers four.
//
// Scope notes: nodes are time-synchronised by construction (the simulator
// shares one clock; real TSCH spends enhanced beacons and keepalives on
// this), schedules are static, and cells are transmit-dedicated (no
// shared/CSMA cells).
package tsch

import (
	"fmt"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// DefaultSlotDuration matches the 802.15.4e default timeslot template
// (10 ms).
const DefaultSlotDuration = 10 * time.Millisecond

// TxOffset delays the transmission inside the slot (TsTxOffset-like guard
// so receivers are tuned before the preamble arrives).
const TxOffset = 2 * time.Millisecond

// Cell is a dedicated transmit opportunity.
type Cell struct {
	// Slot is the slot offset within the slotframe.
	Slot int
	// ChannelOffset selects the hop-sequence lane.
	ChannelOffset int
	// Sender and Receiver are the cell's endpoints.
	Sender, Receiver frame.Address
}

// Schedule is a complete static TSCH schedule.
type Schedule struct {
	// SlotframeLen is the number of slots per slotframe.
	SlotframeLen int
	// SlotDuration is the timeslot length (default 10 ms).
	SlotDuration time.Duration
	// HopSequence lists the channel center frequencies hopped over.
	HopSequence []phy.MHz
	// Cells are the dedicated links.
	Cells []Cell
}

// Validate checks structural constraints: offsets within bounds and no two
// cells colliding on the same (slot, channelOffset).
func (s Schedule) Validate() error {
	if s.SlotframeLen < 1 {
		return fmt.Errorf("tsch: slotframe length %d < 1", s.SlotframeLen)
	}
	if len(s.HopSequence) == 0 {
		return fmt.Errorf("tsch: empty hop sequence")
	}
	seen := make(map[[2]int]Cell, len(s.Cells))
	for _, c := range s.Cells {
		if c.Slot < 0 || c.Slot >= s.SlotframeLen {
			return fmt.Errorf("tsch: cell slot %d outside slotframe of %d", c.Slot, s.SlotframeLen)
		}
		if c.ChannelOffset < 0 || c.ChannelOffset >= len(s.HopSequence) {
			return fmt.Errorf("tsch: channel offset %d outside hop sequence of %d",
				c.ChannelOffset, len(s.HopSequence))
		}
		key := [2]int{c.Slot, c.ChannelOffset}
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("tsch: cells %v and %v collide on slot %d offset %d",
				prev, c, c.Slot, c.ChannelOffset)
		}
		seen[key] = c
	}
	return nil
}

// slotDuration returns the configured or default slot length.
func (s Schedule) slotDuration() time.Duration {
	if s.SlotDuration > 0 {
		return s.SlotDuration
	}
	return DefaultSlotDuration
}

// Frequency returns the channel used by a channel offset at the given ASN.
func (s Schedule) Frequency(asn int64, channelOffset int) phy.MHz {
	n := int64(len(s.HopSequence))
	return s.HopSequence[int((asn+int64(channelOffset))%n)]
}

// Node is one TSCH participant.
type Node struct {
	kernel   *sim.Kernel
	radio    *radio.Radio
	schedule Schedule

	queue     []*frame.Frame
	sent      int
	received  int
	collected map[frame.Address]int

	// OnReceive delivers CRC-clean frames addressed to this node.
	OnReceive func(radio.Reception)
}

// NewNode attaches a TSCH node to the network. The schedule must already
// be validated by the caller (Network does this).
func NewNode(k *sim.Kernel, r *radio.Radio, schedule Schedule) *Node {
	n := &Node{
		kernel:    k,
		radio:     r,
		schedule:  schedule,
		collected: make(map[frame.Address]int),
	}
	r.OnReceive = func(rcv radio.Reception) {
		if !rcv.CRCOK || rcv.Frame.Dst != r.Address() {
			return
		}
		n.received++
		n.collected[rcv.Frame.Src]++
		if n.OnReceive != nil {
			n.OnReceive(rcv)
		}
	}
	return n
}

// Radio exposes the node's radio.
func (n *Node) Radio() *radio.Radio { return n.radio }

// Send queues a frame (Dst/Src must match a scheduled cell to ever leave).
func (n *Node) Send(f *frame.Frame) bool {
	if len(n.queue) >= 128 {
		return false
	}
	n.queue = append(n.queue, f)
	return true
}

// QueueLen reports pending frames.
func (n *Node) QueueLen() int { return len(n.queue) }

// Sent and Received report MAC counters.
func (n *Node) Sent() int { return n.sent }

// Received counts CRC-clean frames addressed to this node.
func (n *Node) Received() int { return n.received }

// ReceivedFrom reports per-origin delivery counts.
func (n *Node) ReceivedFrom(src frame.Address) int { return n.collected[src] }

// popFor removes and returns the first queued frame destined to dst.
func (n *Node) popFor(dst frame.Address) *frame.Frame {
	for i, f := range n.queue {
		if f.Dst == dst {
			n.queue = append(n.queue[:i], n.queue[i+1:]...)
			return f
		}
	}
	return nil
}

// Network drives a set of nodes through a shared schedule.
type Network struct {
	kernel   *sim.Kernel
	schedule Schedule
	nodes    map[frame.Address]*Node
	asn      int64
	running  bool
}

// NewNetwork validates the schedule and prepares the slot engine.
func NewNetwork(k *sim.Kernel, schedule Schedule) (*Network, error) {
	if err := schedule.Validate(); err != nil {
		return nil, err
	}
	return NewNetworkUnchecked(k, schedule)
}

// NewNetworkUnchecked skips the lane-collision check, for studies that
// deliberately oversubscribe channel offsets (two cells on the same
// (slot, offset) transmit concurrently and collide on the air — the
// situation a too-small orthogonal hop set forces). Structural bounds are
// still enforced by the slot engine indexing.
func NewNetworkUnchecked(k *sim.Kernel, schedule Schedule) (*Network, error) {
	if schedule.SlotframeLen < 1 || len(schedule.HopSequence) == 0 {
		return nil, fmt.Errorf("tsch: malformed schedule")
	}
	return &Network{
		kernel:   k,
		schedule: schedule,
		nodes:    make(map[frame.Address]*Node),
	}, nil
}

// AddNode creates a TSCH node on the medium at the given position.
func (nw *Network) AddNode(m *medium.Medium, addr frame.Address, pos phy.Position, power phy.DBm) *Node {
	r := radio.New(nw.kernel, m, radio.Config{
		Pos:          pos,
		Freq:         nw.schedule.HopSequence[0],
		TxPower:      power,
		CCAThreshold: phy.DefaultCCAThreshold,
		Address:      addr,
	})
	n := NewNode(nw.kernel, r, nw.schedule)
	nw.nodes[addr] = n
	return n
}

// Node returns the node with the given address (nil if absent).
func (nw *Network) Node(addr frame.Address) *Node { return nw.nodes[addr] }

// ASN reports the current absolute slot number.
func (nw *Network) ASN() int64 { return nw.asn }

// Start begins executing the slotframe from the current instant.
func (nw *Network) Start() {
	if nw.running {
		return
	}
	nw.running = true
	nw.slot()
}

// Stop halts the slot engine after the current slot.
func (nw *Network) Stop() { nw.running = false }

// slot executes one timeslot: tune every scheduled endpoint, fire the
// senders after TxOffset, advance the ASN.
func (nw *Network) slot() {
	if !nw.running {
		return
	}
	slotIdx := int(nw.asn % int64(nw.schedule.SlotframeLen))
	for _, c := range nw.schedule.Cells {
		if c.Slot != slotIdx {
			continue
		}
		freq := nw.schedule.Frequency(nw.asn, c.ChannelOffset)
		if rxNode, ok := nw.nodes[c.Receiver]; ok {
			rxNode.radio.SetFreq(freq)
		}
		txNode, ok := nw.nodes[c.Sender]
		if !ok {
			continue
		}
		txNode.radio.SetFreq(freq)
		c := c
		nw.kernel.After(TxOffset, func() {
			f := txNode.popFor(c.Receiver)
			if f == nil {
				return
			}
			if _, err := txNode.radio.Transmit(f); err == nil {
				txNode.sent++
			}
		})
	}
	nw.kernel.After(nw.schedule.slotDuration(), func() {
		nw.asn++
		nw.slot()
	})
}
