package tsch

import (
	"testing"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

func world(t *testing.T) (*sim.Kernel, *medium.Medium) {
	t.Helper()
	k := sim.NewKernel(23)
	m := medium.New(k,
		medium.WithFadingSigma(0),
		medium.WithStaticFadingSigma(0))
	return k, m
}

func orthogonalHops() []phy.MHz { return []phy.MHz{2458, 2463, 2468, 2473} }

func TestScheduleValidation(t *testing.T) {
	base := Schedule{SlotframeLen: 4, HopSequence: orthogonalHops()}
	if err := base.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bad := base
	bad.SlotframeLen = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero slotframe accepted")
	}
	bad = base
	bad.HopSequence = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty hop sequence accepted")
	}
	bad = base
	bad.Cells = []Cell{{Slot: 9, ChannelOffset: 0}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range slot accepted")
	}
	bad = base
	bad.Cells = []Cell{{Slot: 0, ChannelOffset: 7}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range channel offset accepted")
	}
	bad = base
	bad.Cells = []Cell{
		{Slot: 1, ChannelOffset: 2, Sender: 1, Receiver: 2},
		{Slot: 1, ChannelOffset: 2, Sender: 3, Receiver: 4},
	}
	if err := bad.Validate(); err == nil {
		t.Error("colliding cells accepted")
	}
}

func TestFrequencyHopsAcrossSlotframes(t *testing.T) {
	s := Schedule{SlotframeLen: 2, HopSequence: orthogonalHops()}
	// Same channel offset, consecutive ASNs: frequencies rotate through
	// the whole hop sequence.
	seen := map[phy.MHz]bool{}
	for asn := int64(0); asn < 4; asn++ {
		seen[s.Frequency(asn, 1)] = true
	}
	if len(seen) != 4 {
		t.Errorf("frequencies visited = %d, want all 4", len(seen))
	}
	if s.Frequency(0, 1) != s.Frequency(4, 1) {
		t.Error("hop pattern not periodic in len(HopSequence)")
	}
}

func TestDedicatedCellDelivers(t *testing.T) {
	k, m := world(t)
	sched := Schedule{
		SlotframeLen: 3,
		HopSequence:  orthogonalHops(),
		Cells:        []Cell{{Slot: 0, ChannelOffset: 0, Sender: 1, Receiver: 2}},
	}
	nw, err := NewNetwork(k, sched)
	if err != nil {
		t.Fatal(err)
	}
	a := nw.AddNode(m, 1, phy.Position{X: 0}, 0)
	b := nw.AddNode(m, 2, phy.Position{X: 1}, 0)
	for i := 0; i < 8; i++ {
		a.Send(&frame.Frame{Type: frame.TypeData, Src: 1, Dst: 2, Payload: make([]byte, 32)})
	}
	nw.Start()
	// 8 frames need 8 slotframes of 3 slots × 10 ms.
	k.RunFor(10 * 3 * 10 * time.Millisecond)

	if a.Sent() != 8 {
		t.Errorf("sent = %d, want 8", a.Sent())
	}
	if b.Received() != 8 {
		t.Errorf("received = %d, want 8", b.Received())
	}
	if got := b.ReceivedFrom(1); got != 8 {
		t.Errorf("ReceivedFrom(1) = %d, want 8", got)
	}
	if a.QueueLen() != 0 {
		t.Errorf("queue = %d, want drained", a.QueueLen())
	}
}

func TestParallelCellsDifferentOffsetsNoCollision(t *testing.T) {
	// Two links in the SAME slot on different channel offsets: both must
	// deliver fully (orthogonal hop set).
	k, m := world(t)
	sched := Schedule{
		SlotframeLen: 1,
		HopSequence:  orthogonalHops(),
		Cells: []Cell{
			{Slot: 0, ChannelOffset: 0, Sender: 1, Receiver: 2},
			{Slot: 0, ChannelOffset: 2, Sender: 3, Receiver: 4},
		},
	}
	nw, err := NewNetwork(k, sched)
	if err != nil {
		t.Fatal(err)
	}
	a := nw.AddNode(m, 1, phy.Position{X: 0}, 0)
	b := nw.AddNode(m, 2, phy.Position{X: 1}, 0)
	c := nw.AddNode(m, 3, phy.Position{X: 0, Y: 1}, 0)
	d := nw.AddNode(m, 4, phy.Position{X: 1, Y: 1}, 0)
	_ = a
	_ = c
	const n = 10
	for i := 0; i < n; i++ {
		nw.Node(1).Send(&frame.Frame{Type: frame.TypeData, Src: 1, Dst: 2, Payload: make([]byte, 32)})
		nw.Node(3).Send(&frame.Frame{Type: frame.TypeData, Src: 3, Dst: 4, Payload: make([]byte, 32)})
	}
	nw.Start()
	k.RunFor((n + 2) * 10 * time.Millisecond)

	if b.Received() != n || d.Received() != n {
		t.Errorf("received = %d/%d, want %d/%d", b.Received(), d.Received(), n, n)
	}
}

func TestSameOffsetSequentialSlotsShareChannelSafely(t *testing.T) {
	// Two links on the same channel offset but different slots never
	// overlap in time.
	k, m := world(t)
	sched := Schedule{
		SlotframeLen: 2,
		HopSequence:  orthogonalHops(),
		Cells: []Cell{
			{Slot: 0, ChannelOffset: 0, Sender: 1, Receiver: 2},
			{Slot: 1, ChannelOffset: 0, Sender: 3, Receiver: 4},
		},
	}
	nw, err := NewNetwork(k, sched)
	if err != nil {
		t.Fatal(err)
	}
	nw.AddNode(m, 1, phy.Position{X: 0}, 0)
	b := nw.AddNode(m, 2, phy.Position{X: 1}, 0)
	nw.AddNode(m, 3, phy.Position{X: 0, Y: 1}, 0)
	d := nw.AddNode(m, 4, phy.Position{X: 1, Y: 1}, 0)
	const n = 6
	for i := 0; i < n; i++ {
		nw.Node(1).Send(&frame.Frame{Type: frame.TypeData, Src: 1, Dst: 2, Payload: make([]byte, 32)})
		nw.Node(3).Send(&frame.Frame{Type: frame.TypeData, Src: 3, Dst: 4, Payload: make([]byte, 32)})
	}
	nw.Start()
	k.RunFor((2*n + 2) * 10 * time.Millisecond)
	if b.Received() != n || d.Received() != n {
		t.Errorf("received = %d/%d, want %d each", b.Received(), d.Received(), n)
	}
}

func TestNonOrthogonalHopSetCarriesMoreParallelCells(t *testing.T) {
	// The thesis in TSCH form: six parallel links in one slot need six
	// channel lanes. The orthogonal set has four (two pairs must share a
	// lane and collide); the non-orthogonal CFD=3 set carries all six.
	buildAndRun := func(hops []phy.MHz, offsets []int) (delivered int) {
		k := sim.NewKernel(29)
		m := medium.New(k, medium.WithFadingSigma(0), medium.WithStaticFadingSigma(0))
		var cells []Cell
		for i := 0; i < 6; i++ {
			cells = append(cells, Cell{
				Slot: 0, ChannelOffset: offsets[i],
				Sender: frame.Address(1 + 2*i), Receiver: frame.Address(2 + 2*i),
			})
		}
		// Offsets may repeat across links (that is the point of the
		// orthogonal case) — bypass the validator's collision check by
		// spreading duplicated offsets over two slots? No: keep slot 0 and
		// accept the collision intentionally via direct construction.
		sched := Schedule{SlotframeLen: 1, HopSequence: hops, Cells: cells}
		nw := &Network{kernel: k, schedule: sched, nodes: map[frame.Address]*Node{}}
		const n = 10
		for i := 0; i < 6; i++ {
			tx := nw.AddNode(m, frame.Address(1+2*i), phy.Position{X: 0, Y: 1.5 * float64(i)}, 0)
			nw.AddNode(m, frame.Address(2+2*i), phy.Position{X: 1, Y: 1.5 * float64(i)}, 0)
			for j := 0; j < n; j++ {
				tx.Send(&frame.Frame{Type: frame.TypeData,
					Src: frame.Address(1 + 2*i), Dst: frame.Address(2 + 2*i),
					Payload: make([]byte, 32)})
			}
		}
		nw.Start()
		k.RunFor((n + 2) * 10 * time.Millisecond)
		for i := 0; i < 6; i++ {
			delivered += nw.Node(frame.Address(2 + 2*i)).Received()
		}
		return delivered
	}

	// Orthogonal: 4 lanes for 6 links → offsets 0,1,2,3,0,1.
	orth := buildAndRun(orthogonalHops(), []int{0, 1, 2, 3, 0, 1})
	// Non-orthogonal CFD=3: 6 lanes.
	nonOrth := buildAndRun([]phy.MHz{2458, 2461, 2464, 2467, 2470, 2473},
		[]int{0, 1, 2, 3, 4, 5})

	if nonOrth <= orth {
		t.Errorf("non-orthogonal TSCH delivered %d, orthogonal %d: want more", nonOrth, orth)
	}
	if nonOrth < 55 { // 60 total; tolerate a little inter-channel loss
		t.Errorf("non-orthogonal delivered %d of 60", nonOrth)
	}
	if orth > 45 { // the two shared lanes must show collision losses
		t.Errorf("orthogonal sharing delivered %d of 60, expected collisions", orth)
	}
}
