package tsch_test

import (
	"fmt"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/tsch"
)

// Example schedules one dedicated hopping link and drains a queue over it.
func Example() {
	k := sim.NewKernel(3)
	m := medium.New(k, medium.WithFadingSigma(0), medium.WithStaticFadingSigma(0))

	sched := tsch.Schedule{
		SlotframeLen: 2,
		HopSequence:  []phy.MHz{2458, 2461, 2464, 2467, 2470, 2473},
		Cells: []tsch.Cell{
			{Slot: 0, ChannelOffset: 0, Sender: 1, Receiver: 2},
		},
	}
	nw, err := tsch.NewNetwork(k, sched)
	if err != nil {
		fmt.Println(err)
		return
	}
	tx := nw.AddNode(m, 1, phy.Position{X: 0}, 0)
	rx := nw.AddNode(m, 2, phy.Position{X: 1}, 0)

	for i := 0; i < 5; i++ {
		tx.Send(&frame.Frame{Type: frame.TypeData, Src: 1, Dst: 2, Payload: make([]byte, 32)})
	}
	nw.Start()
	k.RunFor(200 * time.Millisecond)

	fmt.Println("delivered:", rx.Received())
	fmt.Println("frequency rotates:", sched.Frequency(0, 0) != sched.Frequency(1, 0))
	// Output:
	// delivered: 5
	// frequency rotates: true
}
