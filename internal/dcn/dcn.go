// Package dcn implements the paper's contribution: DCN (Dynamic
// CCA-threshold for Non-orthogonal transmission). A CCA-Adjustor attached
// to a node's MAC reprograms the radio's CCA threshold register so that
// inter-channel interference from non-orthogonal neighbour channels is
// ignored (unlocking concurrency) while co-channel transmissions are still
// deferred to.
//
// The Adjustor runs in two phases, exactly as in Section V of the paper:
//
//   - Initializing Phase (duration T_I, default 1 s): record the minimum
//     RSSI S_I of overheard co-channel packets and, every millisecond, the
//     maximum in-channel sensed power P_I. The initial threshold is
//     CCA_I = min{ min S_I, max P_I }   (Eq. 2)
//     — conservative on both counts.
//
//   - Updating Phase: only packet RSSI is tracked (in-channel power
//     sensing is too costly to keep running, as the paper notes).
//     Case I (Eq. 3): an overheard co-channel packet weaker than the
//     current threshold lowers the threshold immediately.
//     Case II (Eq. 4): if Case I has not fired for T_U seconds (default
//     3 s), the threshold is reset to the minimum RSSI recorded in the
//     last T_U window — this is the relaxing step that exploits
//     concurrency once weak interferers fall silent.
package dcn

import (
	"fmt"
	"time"

	"nonortho/internal/mac"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// Phase identifies the Adjustor's current phase.
type Phase int

// Adjustor phases.
const (
	PhaseStopped Phase = iota
	PhaseInitializing
	PhaseUpdating
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseStopped:
		return "stopped"
	case PhaseInitializing:
		return "initializing"
	case PhaseUpdating:
		return "updating"
	default:
		return "phase(?)"
	}
}

// Config parameterises the CCA-Adjustor. Zero values take the paper's
// settings.
type Config struct {
	// InitDuration is T_I, the Initializing Phase length (paper: 1 s).
	InitDuration time.Duration
	// UpdateWindow is T_U, the Updating Phase window (paper: 3 s).
	UpdateWindow time.Duration
	// SamplePeriod is the in-channel power sampling cadence during the
	// Initializing Phase (paper: 1 ms).
	SamplePeriod time.Duration
	// CheckPeriod is how often the Case II condition is evaluated.
	CheckPeriod time.Duration
	// MarginDB keeps the threshold strictly below the weakest co-channel
	// interferer (Eq. 1 requires CCA < S_i, not <=).
	MarginDB float64
	// Fallback is the threshold used when no information is available
	// (defaults to the ZigBee -77 dBm).
	Fallback phy.DBm
	// MinThreshold floors the programmed threshold. Eq. 2 applied to a
	// quiet medium would otherwise pin the threshold at the noise floor
	// and deadlock the node (every CCA busy forever). Defaults to
	// 3 dB above the noise floor.
	MinThreshold phy.DBm
	// DisableCaseII ablates the Updating Phase's relaxing step (Eq. 4):
	// the threshold can only ever fall. Used to quantify how much of
	// DCN's gain the window-minimum reset contributes.
	DisableCaseII bool
	// DisableInitSensing ablates the in-channel power sampling of the
	// Initializing Phase: Eq. 2 degenerates to min S_I over packet RSSI
	// alone. The paper motivates the sampling's existence by CPU cost;
	// this knob measures what it buys.
	DisableInitSensing bool

	// Watchdog enables the self-healing monitor: a periodic check that
	// detects threshold poisoning (the MAC starved of clear-channel wins
	// for PoisonWindow while the Adjustor holds state), stale state after
	// co-channel silence, and stuck register writes, recovering by
	// re-entering the Initializing Phase. The paper's Adjustor has no such
	// guard; a single burst of anomalous RSSI can pin its threshold until
	// the node reboots.
	Watchdog bool
	// WatchdogPeriod is the monitor cadence (default 250 ms).
	WatchdogPeriod time.Duration
	// PoisonWindow is T_W: how long the MAC may keep attempting CCAs with
	// a win rate at or below PoisonWinRate before the watchdog declares
	// the threshold poisoned (default 1 s).
	PoisonWindow time.Duration
	// PoisonWinRate is the clear-channel win fraction at or below which a
	// node counts as starved. A healthy DCN node wins most of its CCAs;
	// a poisoned one still scrapes an occasional win in the gaps of
	// neighbour-channel traffic, so an absolute zero-win test would never
	// fire (default 0.05).
	PoisonWinRate float64
	// SilenceWindow is how long total co-channel silence may last while
	// the threshold sits tightened below Fallback before the retained
	// state is declared stale (default 2×UpdateWindow).
	SilenceWindow time.Duration
}

func (c Config) withDefaults() Config {
	if c.InitDuration == 0 {
		c.InitDuration = time.Second
	}
	if c.UpdateWindow == 0 {
		c.UpdateWindow = 3 * time.Second
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = time.Millisecond
	}
	if c.CheckPeriod == 0 {
		c.CheckPeriod = 250 * time.Millisecond
	}
	if c.MarginDB == 0 {
		c.MarginDB = 1
	}
	if c.Fallback == 0 {
		c.Fallback = phy.DefaultCCAThreshold
	}
	if c.MinThreshold == 0 {
		c.MinThreshold = phy.NoiseFloor + 3
	}
	if c.WatchdogPeriod == 0 {
		c.WatchdogPeriod = 250 * time.Millisecond
	}
	if c.PoisonWindow == 0 {
		c.PoisonWindow = time.Second
	}
	if c.PoisonWinRate == 0 {
		c.PoisonWinRate = 0.05
	}
	if c.SilenceWindow == 0 {
		c.SilenceWindow = 2 * c.UpdateWindow
	}
	return c
}

// Validate rejects nonsensical configurations instead of silently mapping
// them onto the paper's defaults. Zero fields still mean "take the
// default" (the long-standing contract); it is explicit out-of-range
// values that error.
func (c Config) Validate() error {
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"InitDuration", c.InitDuration},
		{"UpdateWindow", c.UpdateWindow},
		{"SamplePeriod", c.SamplePeriod},
		{"CheckPeriod", c.CheckPeriod},
		{"WatchdogPeriod", c.WatchdogPeriod},
		{"PoisonWindow", c.PoisonWindow},
		{"SilenceWindow", c.SilenceWindow},
	} {
		if d.v < 0 {
			return fmt.Errorf("dcn: %s must not be negative, got %v", d.name, d.v)
		}
	}
	if c.MarginDB < 0 {
		return fmt.Errorf("dcn: MarginDB must not be negative, got %g", c.MarginDB)
	}
	if c.PoisonWinRate < 0 || c.PoisonWinRate >= 1 {
		return fmt.Errorf("dcn: PoisonWinRate must be in [0, 1), got %g", c.PoisonWinRate)
	}
	for _, t := range []struct {
		name string
		v    phy.DBm
	}{
		{"Fallback", c.Fallback},
		{"MinThreshold", c.MinThreshold},
	} {
		if t.v == 0 {
			continue // default sentinel
		}
		if t.v < phy.CCARegisterMin || t.v > phy.CCARegisterMax {
			return fmt.Errorf("dcn: %s %g dBm outside the CC2420 register range [%g, %g]",
				t.name, float64(t.v), float64(phy.CCARegisterMin), float64(phy.CCARegisterMax))
		}
	}
	if c.Fallback != 0 && c.MinThreshold != 0 && c.MinThreshold > c.Fallback {
		return fmt.Errorf("dcn: MinThreshold %g dBm above Fallback %g dBm",
			float64(c.MinThreshold), float64(c.Fallback))
	}
	return nil
}

type record struct {
	at   sim.Time
	rssi phy.DBm
}

// Adjustor drives one radio's CCA threshold.
type Adjustor struct {
	// The wiring trio survives Reset by design: Reset restarts the
	// protocol (re-entering the Initializing Phase via Start) on the
	// same kernel, radio and configuration it was built with.
	kernel *sim.Kernel  //lint:keep Reset restarts the protocol, not the wiring
	radio  *radio.Radio //lint:keep Reset restarts the protocol, not the wiring
	cfg    Config       //lint:keep Reset restarts the protocol, not the wiring

	// OnThreshold, when set, observes every threshold the Adjustor
	// programs into the radio (instrumentation/tracing hook).
	OnThreshold func(phy.DBm)

	phase Phase

	// Initializing Phase state.
	initMinRSSI   phy.DBm
	initHasRSSI   bool
	initMaxSensed phy.DBm
	sampler       *sim.Ticker
	initDone      sim.Event

	// Updating Phase state.
	window      []record
	lastCaseI   sim.Time
	checkTicker *sim.Ticker

	// Watchdog state.
	watchdog       *sim.Ticker
	ccaStats       func() (clear, busy int)
	lastClear      int
	lastBusy       int
	starvedAt      sim.Time
	lastHeard      sim.Time
	lastProgrammed phy.DBm
	hasProgrammed  bool
	wstats         WatchdogStats
}

// WatchdogStats counts the watchdog's detections and recoveries, exported
// for the experiments layer.
type WatchdogStats struct {
	// PoisonRecoveries counts re-initialisations triggered by CCA
	// starvation (win rate at or below PoisonWinRate for PoisonWindow).
	PoisonRecoveries int
	// SilenceRecoveries counts re-initialisations triggered by stale state
	// after total co-channel silence.
	SilenceRecoveries int
	// StuckWriteDetections counts watchdog ticks on which the threshold
	// register did not hold the last programmed value (a stuck register).
	StuckWriteDetections int
}

// Recoveries is the total number of watchdog-triggered re-initialisations.
func (s WatchdogStats) Recoveries() int { return s.PoisonRecoveries + s.SilenceRecoveries }

// New creates an Adjustor for the radio. Call Start to begin. An invalid
// configuration (see Config.Validate) is a programming error and panics;
// use NewChecked for an error return.
func New(k *sim.Kernel, r *radio.Radio, cfg Config) *Adjustor {
	a, err := NewChecked(k, r, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// NewChecked is New with the configuration error surfaced instead of a
// panic — the constructor for externally supplied configurations.
func NewChecked(k *sim.Kernel, r *radio.Radio, cfg Config) (*Adjustor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Adjustor{
		kernel: k,
		radio:  r,
		cfg:    cfg.withDefaults(),
		phase:  PhaseStopped,
	}, nil
}

// Attach wires the Adjustor into a MAC's overhear stream, chaining any
// existing handler, and returns the Adjustor for fluent setup. The MAC's
// CCA counters also feed the watchdog's starvation detector. An invalid
// configuration panics; use AttachChecked for an error return.
func Attach(k *sim.Kernel, m *mac.MAC, cfg Config) *Adjustor {
	a, err := AttachChecked(k, m, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// AttachChecked is Attach with the configuration error surfaced instead of
// a panic.
func AttachChecked(k *sim.Kernel, m *mac.MAC, cfg Config) (*Adjustor, error) {
	a, err := NewChecked(k, m.Radio(), cfg)
	if err != nil {
		return nil, err
	}
	prev := m.OnOverhear
	m.OnOverhear = func(r radio.Reception) {
		if prev != nil {
			prev(r)
		}
		a.Observe(r)
	}
	a.SetCCAStats(func() (int, int) {
		c := m.Counters()
		return c.ClearCCA, c.BusyCCA
	})
	return a, nil
}

// SetCCAStats supplies the cumulative (clear, busy) CCA counters of the
// MAC driving this radio. The watchdog's poisoning detector needs them to
// tell "starved of wins" from "not transmitting"; without the feed (New
// without Attach), poisoning detection is disabled and only the silence
// and stuck-register checks run.
func (a *Adjustor) SetCCAStats(fn func() (clear, busy int)) { a.ccaStats = fn }

// Watchdog returns the self-healing monitor's counters.
func (a *Adjustor) Watchdog() WatchdogStats { return a.wstats }

// Phase reports the Adjustor's phase.
func (a *Adjustor) Phase() Phase { return a.phase }

// Threshold reads the threshold currently programmed into the radio.
func (a *Adjustor) Threshold() phy.DBm { return a.radio.CCAThreshold() }

// Start enters the Initializing Phase: the radio keeps its conservative
// fallback threshold while S_I and P_I are collected.
func (a *Adjustor) Start() {
	a.stopTimers()
	a.phase = PhaseInitializing
	a.initHasRSSI = false
	a.initMinRSSI = 0
	a.initMaxSensed = phy.Silent
	a.window = a.window[:0]
	a.radio.SetCCAThreshold(a.cfg.Fallback)
	a.lastProgrammed = a.cfg.Fallback
	a.hasProgrammed = true

	now := a.kernel.Now()
	a.starvedAt = now
	a.lastHeard = now
	if a.ccaStats != nil {
		a.lastClear, a.lastBusy = a.ccaStats()
	}
	if a.cfg.Watchdog {
		a.watchdog = a.kernel.NewTicker(a.cfg.WatchdogPeriod, a.watchdogCheck)
	}

	if !a.cfg.DisableInitSensing {
		a.sampler = a.kernel.NewTicker(a.cfg.SamplePeriod, func() {
			if s := a.radio.SensedPower(); s > a.initMaxSensed {
				a.initMaxSensed = s
			}
		})
	}
	a.initDone = a.kernel.After(a.cfg.InitDuration, a.finishInit)
}

// Stop halts the Adjustor, leaving the radio at its current threshold.
func (a *Adjustor) Stop() {
	a.stopTimers()
	a.phase = PhaseStopped
}

// Reset re-runs the Initializing Phase — used after a node rejoins the
// network (failure recovery).
func (a *Adjustor) Reset() { a.Start() }

func (a *Adjustor) stopTimers() {
	if a.sampler != nil {
		a.sampler.Stop()
		a.sampler = nil
	}
	a.kernel.Cancel(a.initDone)
	a.initDone = sim.Event{}
	if a.checkTicker != nil {
		a.checkTicker.Stop()
		a.checkTicker = nil
	}
	if a.watchdog != nil {
		a.watchdog.Stop()
		a.watchdog = nil
	}
}

func (a *Adjustor) finishInit() {
	if a.sampler != nil {
		a.sampler.Stop()
		a.sampler = nil
	}
	a.initDone = sim.Event{}

	// Eq. 2: CCA_I = min{ S_1, S_2, ..., max{P_1, P_2, ...} }.
	threshold := a.initMaxSensed
	if a.initHasRSSI && (a.initMinRSSI < threshold || threshold == phy.Silent) {
		threshold = a.initMinRSSI
	}
	if threshold == phy.Silent {
		threshold = a.cfg.Fallback
	}
	a.program(threshold)

	a.phase = PhaseUpdating
	a.lastCaseI = a.kernel.Now()
	a.checkTicker = a.kernel.NewTicker(a.cfg.CheckPeriod, a.caseIICheck)

	// The starvation-observation window opens now: CCA outcomes racked up
	// during the Initializing Phase (threshold at the conservative
	// fallback) say nothing about the freshly programmed threshold.
	a.starvedAt = a.kernel.Now()
	if a.ccaStats != nil {
		a.lastClear, a.lastBusy = a.ccaStats()
	}
}

// Observe feeds one co-channel reception (clean or CRC-failed — the CC2420
// buffers both) into the Adjustor.
func (a *Adjustor) Observe(r radio.Reception) {
	a.lastHeard = a.kernel.Now()
	switch a.phase {
	case PhaseInitializing:
		if !a.initHasRSSI || r.RSSI < a.initMinRSSI {
			a.initMinRSSI = r.RSSI
			a.initHasRSSI = true
		}
	case PhaseUpdating:
		now := a.kernel.Now()
		a.window = append(a.window, record{at: now, rssi: r.RSSI})
		a.prune(now)
		// Case I (Eq. 3): immediately lower on a weaker co-channel packet.
		if a.clamp(r.RSSI) < a.radio.CCAThreshold() {
			a.program(r.RSSI)
			a.lastCaseI = now
		}
	}
}

// program writes threshold−margin into the radio, floored at MinThreshold
// and confined to the CC2420 register range.
func (a *Adjustor) program(threshold phy.DBm) {
	v := a.clamp(threshold)
	a.radio.SetCCAThreshold(v)
	a.lastProgrammed = v
	a.hasProgrammed = true
	if a.OnThreshold != nil {
		a.OnThreshold(v)
	}
}

func (a *Adjustor) clamp(threshold phy.DBm) phy.DBm {
	t := threshold - phy.DBm(a.cfg.MarginDB)
	if t < a.cfg.MinThreshold {
		t = a.cfg.MinThreshold
	}
	t, _ = phy.ClampCCAThreshold(t)
	return t
}

// caseIICheck applies Eq. 4 when Case I has been quiet for T_U.
func (a *Adjustor) caseIICheck() {
	if a.cfg.DisableCaseII {
		return
	}
	now := a.kernel.Now()
	if now-a.lastCaseI < sim.FromDuration(a.cfg.UpdateWindow) {
		return
	}
	a.prune(now)
	if len(a.window) == 0 {
		return // nothing heard recently; keep the current threshold
	}
	min := a.window[0].rssi
	for _, rec := range a.window[1:] {
		if rec.rssi < min {
			min = rec.rssi
		}
	}
	a.program(min)
}

// prune drops window records older than T_U.
func (a *Adjustor) prune(now sim.Time) {
	cutoff := now - sim.FromDuration(a.cfg.UpdateWindow)
	i := 0
	for i < len(a.window) && a.window[i].at < cutoff {
		i++
	}
	if i > 0 {
		a.window = append(a.window[:0], a.window[i:]...)
	}
}

// WindowSize reports the number of RSSI records currently retained
// (exported for tests and instrumentation).
func (a *Adjustor) WindowSize() int { return len(a.window) }

// watchdogCheck is the self-healing monitor. Three independent detectors:
//
//   - Stuck register: the threshold register does not hold the last value
//     program() wrote. Counted every tick and the write retried, so the
//     Adjustor converges as soon as the fault clears.
//   - Threshold poisoning: the MAC kept attempting CCAs for a full
//     PoisonWindow while winning at most a PoisonWinRate fraction of them.
//     A healthy DCN node wins most of its CCAs (its threshold sits above
//     the filtered inter-channel energy); a poisoned node still scrapes
//     the odd win in gaps of neighbour-channel traffic, but sustained
//     near-total starvation means the threshold was dragged somewhere the
//     medium can essentially never satisfy — e.g. by a burst of weak
//     anomalous RSSI (Eq. 3 has no guard).
//   - Stale state: the threshold sits tightened below the conservative
//     fallback although no co-channel packet has been heard for
//     SilenceWindow. Eq. 4 cannot relax an empty window, so state learned
//     from a now-silent interferer would otherwise persist forever.
//
// Poisoning and staleness recover by discarding all learned state and
// re-entering the Initializing Phase, the same path as a node rejoin.
func (a *Adjustor) watchdogCheck() {
	if a.hasProgrammed && a.radio.CCAThreshold() != a.lastProgrammed {
		a.wstats.StuckWriteDetections++
		a.radio.SetCCAThreshold(a.lastProgrammed) // retried; ignored while the fault persists
	}
	if a.phase != PhaseUpdating {
		return
	}
	now := a.kernel.Now()
	if a.ccaStats != nil {
		// lastClear/lastBusy snapshot the counters at the start of the
		// current starvation-observation window.
		clear, busy := a.ccaStats()
		wins := clear - a.lastClear
		attempts := wins + busy - a.lastBusy
		if attempts == 0 || float64(wins) > a.cfg.PoisonWinRate*float64(attempts) {
			// A healthy win rate breaks the streak; an idle MAC is no
			// evidence either way.
			a.starvedAt = now
			a.lastClear, a.lastBusy = clear, busy
		} else if now-a.starvedAt >= sim.FromDuration(a.cfg.PoisonWindow) {
			a.wstats.PoisonRecoveries++
			a.Start()
			return
		}
	}
	if a.radio.CCAThreshold() < a.cfg.Fallback &&
		now-a.lastHeard >= sim.FromDuration(a.cfg.SilenceWindow) {
		a.wstats.SilenceRecoveries++
		a.Start()
	}
}
