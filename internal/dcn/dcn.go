// Package dcn implements the paper's contribution: DCN (Dynamic
// CCA-threshold for Non-orthogonal transmission). A CCA-Adjustor attached
// to a node's MAC reprograms the radio's CCA threshold register so that
// inter-channel interference from non-orthogonal neighbour channels is
// ignored (unlocking concurrency) while co-channel transmissions are still
// deferred to.
//
// The Adjustor runs in two phases, exactly as in Section V of the paper:
//
//   - Initializing Phase (duration T_I, default 1 s): record the minimum
//     RSSI S_I of overheard co-channel packets and, every millisecond, the
//     maximum in-channel sensed power P_I. The initial threshold is
//     CCA_I = min{ min S_I, max P_I }   (Eq. 2)
//     — conservative on both counts.
//
//   - Updating Phase: only packet RSSI is tracked (in-channel power
//     sensing is too costly to keep running, as the paper notes).
//     Case I (Eq. 3): an overheard co-channel packet weaker than the
//     current threshold lowers the threshold immediately.
//     Case II (Eq. 4): if Case I has not fired for T_U seconds (default
//     3 s), the threshold is reset to the minimum RSSI recorded in the
//     last T_U window — this is the relaxing step that exploits
//     concurrency once weak interferers fall silent.
package dcn

import (
	"time"

	"nonortho/internal/mac"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// Phase identifies the Adjustor's current phase.
type Phase int

// Adjustor phases.
const (
	PhaseStopped Phase = iota
	PhaseInitializing
	PhaseUpdating
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseStopped:
		return "stopped"
	case PhaseInitializing:
		return "initializing"
	case PhaseUpdating:
		return "updating"
	default:
		return "phase(?)"
	}
}

// Config parameterises the CCA-Adjustor. Zero values take the paper's
// settings.
type Config struct {
	// InitDuration is T_I, the Initializing Phase length (paper: 1 s).
	InitDuration time.Duration
	// UpdateWindow is T_U, the Updating Phase window (paper: 3 s).
	UpdateWindow time.Duration
	// SamplePeriod is the in-channel power sampling cadence during the
	// Initializing Phase (paper: 1 ms).
	SamplePeriod time.Duration
	// CheckPeriod is how often the Case II condition is evaluated.
	CheckPeriod time.Duration
	// MarginDB keeps the threshold strictly below the weakest co-channel
	// interferer (Eq. 1 requires CCA < S_i, not <=).
	MarginDB float64
	// Fallback is the threshold used when no information is available
	// (defaults to the ZigBee -77 dBm).
	Fallback phy.DBm
	// MinThreshold floors the programmed threshold. Eq. 2 applied to a
	// quiet medium would otherwise pin the threshold at the noise floor
	// and deadlock the node (every CCA busy forever). Defaults to
	// 3 dB above the noise floor.
	MinThreshold phy.DBm
	// DisableCaseII ablates the Updating Phase's relaxing step (Eq. 4):
	// the threshold can only ever fall. Used to quantify how much of
	// DCN's gain the window-minimum reset contributes.
	DisableCaseII bool
	// DisableInitSensing ablates the in-channel power sampling of the
	// Initializing Phase: Eq. 2 degenerates to min S_I over packet RSSI
	// alone. The paper motivates the sampling's existence by CPU cost;
	// this knob measures what it buys.
	DisableInitSensing bool
}

func (c Config) withDefaults() Config {
	if c.InitDuration == 0 {
		c.InitDuration = time.Second
	}
	if c.UpdateWindow == 0 {
		c.UpdateWindow = 3 * time.Second
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = time.Millisecond
	}
	if c.CheckPeriod == 0 {
		c.CheckPeriod = 250 * time.Millisecond
	}
	if c.MarginDB == 0 {
		c.MarginDB = 1
	}
	if c.Fallback == 0 {
		c.Fallback = phy.DefaultCCAThreshold
	}
	if c.MinThreshold == 0 {
		c.MinThreshold = phy.NoiseFloor + 3
	}
	return c
}

type record struct {
	at   sim.Time
	rssi phy.DBm
}

// Adjustor drives one radio's CCA threshold.
type Adjustor struct {
	kernel *sim.Kernel
	radio  *radio.Radio
	cfg    Config

	// OnThreshold, when set, observes every threshold the Adjustor
	// programs into the radio (instrumentation/tracing hook).
	OnThreshold func(phy.DBm)

	phase Phase

	// Initializing Phase state.
	initMinRSSI   phy.DBm
	initHasRSSI   bool
	initMaxSensed phy.DBm
	sampler       *sim.Ticker
	initDone      *sim.Event

	// Updating Phase state.
	window      []record
	lastCaseI   sim.Time
	checkTicker *sim.Ticker
}

// New creates an Adjustor for the radio. Call Start to begin.
func New(k *sim.Kernel, r *radio.Radio, cfg Config) *Adjustor {
	return &Adjustor{
		kernel: k,
		radio:  r,
		cfg:    cfg.withDefaults(),
		phase:  PhaseStopped,
	}
}

// Attach wires the Adjustor into a MAC's overhear stream, chaining any
// existing handler, and returns the Adjustor for fluent setup.
func Attach(k *sim.Kernel, m *mac.MAC, cfg Config) *Adjustor {
	a := New(k, m.Radio(), cfg)
	prev := m.OnOverhear
	m.OnOverhear = func(r radio.Reception) {
		if prev != nil {
			prev(r)
		}
		a.Observe(r)
	}
	return a
}

// Phase reports the Adjustor's phase.
func (a *Adjustor) Phase() Phase { return a.phase }

// Threshold reads the threshold currently programmed into the radio.
func (a *Adjustor) Threshold() phy.DBm { return a.radio.CCAThreshold() }

// Start enters the Initializing Phase: the radio keeps its conservative
// fallback threshold while S_I and P_I are collected.
func (a *Adjustor) Start() {
	a.stopTimers()
	a.phase = PhaseInitializing
	a.initHasRSSI = false
	a.initMinRSSI = 0
	a.initMaxSensed = phy.Silent
	a.window = a.window[:0]
	a.radio.SetCCAThreshold(a.cfg.Fallback)

	if !a.cfg.DisableInitSensing {
		a.sampler = a.kernel.NewTicker(a.cfg.SamplePeriod, func() {
			if s := a.radio.SensedPower(); s > a.initMaxSensed {
				a.initMaxSensed = s
			}
		})
	}
	a.initDone = a.kernel.After(a.cfg.InitDuration, a.finishInit)
}

// Stop halts the Adjustor, leaving the radio at its current threshold.
func (a *Adjustor) Stop() {
	a.stopTimers()
	a.phase = PhaseStopped
}

// Reset re-runs the Initializing Phase — used after a node rejoins the
// network (failure recovery).
func (a *Adjustor) Reset() { a.Start() }

func (a *Adjustor) stopTimers() {
	if a.sampler != nil {
		a.sampler.Stop()
		a.sampler = nil
	}
	if a.initDone != nil {
		a.kernel.Cancel(a.initDone)
		a.initDone = nil
	}
	if a.checkTicker != nil {
		a.checkTicker.Stop()
		a.checkTicker = nil
	}
}

func (a *Adjustor) finishInit() {
	if a.sampler != nil {
		a.sampler.Stop()
		a.sampler = nil
	}
	a.initDone = nil

	// Eq. 2: CCA_I = min{ S_1, S_2, ..., max{P_1, P_2, ...} }.
	threshold := a.initMaxSensed
	if a.initHasRSSI && (a.initMinRSSI < threshold || threshold == phy.Silent) {
		threshold = a.initMinRSSI
	}
	if threshold == phy.Silent {
		threshold = a.cfg.Fallback
	}
	a.program(threshold)

	a.phase = PhaseUpdating
	a.lastCaseI = a.kernel.Now()
	a.checkTicker = a.kernel.NewTicker(a.cfg.CheckPeriod, a.caseIICheck)
}

// Observe feeds one co-channel reception (clean or CRC-failed — the CC2420
// buffers both) into the Adjustor.
func (a *Adjustor) Observe(r radio.Reception) {
	switch a.phase {
	case PhaseInitializing:
		if !a.initHasRSSI || r.RSSI < a.initMinRSSI {
			a.initMinRSSI = r.RSSI
			a.initHasRSSI = true
		}
	case PhaseUpdating:
		now := a.kernel.Now()
		a.window = append(a.window, record{at: now, rssi: r.RSSI})
		a.prune(now)
		// Case I (Eq. 3): immediately lower on a weaker co-channel packet.
		if a.clamp(r.RSSI) < a.radio.CCAThreshold() {
			a.program(r.RSSI)
			a.lastCaseI = now
		}
	}
}

// program writes threshold−margin into the radio, floored at MinThreshold.
func (a *Adjustor) program(threshold phy.DBm) {
	v := a.clamp(threshold)
	a.radio.SetCCAThreshold(v)
	if a.OnThreshold != nil {
		a.OnThreshold(v)
	}
}

func (a *Adjustor) clamp(threshold phy.DBm) phy.DBm {
	t := threshold - phy.DBm(a.cfg.MarginDB)
	if t < a.cfg.MinThreshold {
		t = a.cfg.MinThreshold
	}
	return t
}

// caseIICheck applies Eq. 4 when Case I has been quiet for T_U.
func (a *Adjustor) caseIICheck() {
	if a.cfg.DisableCaseII {
		return
	}
	now := a.kernel.Now()
	if now-a.lastCaseI < sim.FromDuration(a.cfg.UpdateWindow) {
		return
	}
	a.prune(now)
	if len(a.window) == 0 {
		return // nothing heard recently; keep the current threshold
	}
	min := a.window[0].rssi
	for _, rec := range a.window[1:] {
		if rec.rssi < min {
			min = rec.rssi
		}
	}
	a.program(min)
}

// prune drops window records older than T_U.
func (a *Adjustor) prune(now sim.Time) {
	cutoff := now - sim.FromDuration(a.cfg.UpdateWindow)
	i := 0
	for i < len(a.window) && a.window[i].at < cutoff {
		i++
	}
	if i > 0 {
		a.window = append(a.window[:0], a.window[i:]...)
	}
}

// WindowSize reports the number of RSSI records currently retained
// (exported for tests and instrumentation).
func (a *Adjustor) WindowSize() int { return len(a.window) }
