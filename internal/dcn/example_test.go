package dcn_test

import (
	"fmt"
	"time"

	"nonortho/internal/dcn"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// Example wires a CCA-Adjustor to a radio by hand (the testbed package
// does this automatically for whole networks) and walks it through every
// mechanism: the conservative Initializing Phase (on a quiet medium Eq. 2
// bottoms out at the noise-floor clamp), the Case II window-minimum
// relaxation once only strong co-channel packets are heard, and the
// immediate Case I lowering on a weaker packet.
func Example() {
	k := sim.NewKernel(7)
	m := medium.New(k, medium.WithFadingSigma(0), medium.WithStaticFadingSigma(0))
	r := radio.New(k, m, radio.Config{
		Freq:         2460,
		CCAThreshold: phy.DefaultCCAThreshold,
		Address:      1,
	})

	a := dcn.New(k, r, dcn.Config{})
	a.Start()
	fmt.Println("phase:", a.Phase())

	// The medium is quiet during init, so Eq. 2's max-P term is the noise
	// floor and the threshold lands on the conservative clamp.
	k.RunFor(1100 * time.Millisecond)
	fmt.Println("phase:", a.Phase(), "threshold:", r.CCAThreshold(), "dBm")

	// Only strong (-55 dBm) co-channel packets arrive for a while: after
	// T_U = 3 s without Case I, Case II relaxes to the window minimum.
	tick := k.NewTicker(200*time.Millisecond, func() {
		a.Observe(radio.Reception{RSSI: -55, CRCOK: true})
	})
	k.RunFor(4 * time.Second)
	tick.Stop()
	fmt.Println("after Case II:", r.CCAThreshold(), "dBm")

	// Case I: a weaker co-channel packet lowers the threshold at once.
	a.Observe(radio.Reception{RSSI: -70, CRCOK: true})
	fmt.Println("after Case I: ", r.CCAThreshold(), "dBm")
	// Output:
	// phase: initializing
	// phase: updating threshold: -97 dBm
	// after Case II: -56 dBm
	// after Case I:  -71 dBm
}
