package dcn

import (
	"strings"
	"testing"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// wdConfig is a watchdog parameterisation tight enough for fast tests. Init
// sensing is disabled because the unit-test medium is quiet: Eq. 2's max P_I
// term would otherwise floor the initial threshold at MinThreshold, below
// the fallback, which is not the healthy steady state these tests start from.
func wdConfig() Config {
	return Config{
		Watchdog:           true,
		WatchdogPeriod:     100 * time.Millisecond,
		PoisonWindow:       300 * time.Millisecond,
		DisableInitSensing: true,
	}
}

// enterUpdating drives a fresh Adjustor through the Initializing Phase,
// hearing one healthy co-channel neighbour at -50 dBm on the way.
func enterUpdating(t *testing.T, k *sim.Kernel, a *Adjustor) {
	t.Helper()
	a.Start()
	a.Observe(rcv(-50))
	k.RunUntil(k.Now() + sim.FromDuration(1100*time.Millisecond))
	if a.Phase() != PhaseUpdating {
		t.Fatalf("phase = %v, want updating", a.Phase())
	}
}

func TestWatchdogPoisonRecoveryOnStarvation(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, wdConfig())

	// Fake MAC counters: the node keeps attempting but essentially never
	// wins (way below the default 5 % win-rate floor).
	busy := 0
	a.SetCCAStats(func() (int, int) { busy += 50; return 0, busy })

	enterUpdating(t, k, a)
	k.RunUntil(k.Now() + sim.FromDuration(time.Second))

	if got := a.Watchdog().PoisonRecoveries; got == 0 {
		t.Fatal("starved node never recovered")
	}
	// Recovery re-enters the Initializing Phase and reprograms the
	// conservative fallback.
	if got := r.CCAThreshold(); got != phy.DefaultCCAThreshold {
		t.Fatalf("threshold after recovery = %v, want fallback", got)
	}
}

func TestWatchdogNoRecoveryAtHealthyWinRate(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, wdConfig())

	// 50 % wins: busy half the time is normal contention, not poisoning.
	clear, busy := 0, 0
	a.SetCCAStats(func() (int, int) { clear += 25; busy += 25; return clear, busy })

	enterUpdating(t, k, a)
	k.RunUntil(k.Now() + sim.FromDuration(2*time.Second))

	if got := a.Watchdog().Recoveries(); got != 0 {
		t.Fatalf("recoveries = %d at a healthy win rate, want 0", got)
	}
}

func TestWatchdogIdleMACIsNoEvidence(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, wdConfig())

	// Counters never move: the node simply has nothing to send.
	a.SetCCAStats(func() (int, int) { return 0, 0 })

	enterUpdating(t, k, a)
	k.RunUntil(k.Now() + sim.FromDuration(2*time.Second))

	if got := a.Watchdog().PoisonRecoveries; got != 0 {
		t.Fatalf("poison recoveries = %d for an idle MAC, want 0", got)
	}
}

func TestWatchdogSilenceRecoveryDropsStaleState(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	cfg := wdConfig()
	cfg.SilenceWindow = 500 * time.Millisecond
	a := New(k, r, cfg) // no CCA stats: only silence/stuck detectors run

	enterUpdating(t, k, a)
	// A weak interferer poisons the threshold (Case I), then falls silent
	// forever. Eq. 4 cannot relax the empty window.
	a.Observe(rcv(-85))
	if got := r.CCAThreshold(); got >= phy.DefaultCCAThreshold {
		t.Fatalf("threshold = %v, want tightened below fallback", got)
	}
	k.RunUntil(k.Now() + sim.FromDuration(2*time.Second))

	if got := a.Watchdog().SilenceRecoveries; got == 0 {
		t.Fatal("stale tightened state survived total silence")
	}
}

func TestWatchdogSilenceToleratesThresholdAboveFallback(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	cfg := wdConfig()
	cfg.SilenceWindow = 500 * time.Millisecond
	a := New(k, r, cfg)

	enterUpdating(t, k, a)
	// Threshold relaxed above the fallback: silence is then normal (quiet
	// neighbourhood), not evidence of stale poisoned state.
	a.Observe(rcv(-50))
	k.RunUntil(k.Now() + sim.FromDuration(2*time.Second))

	if got := a.Watchdog().SilenceRecoveries; got != 0 {
		t.Fatalf("silence recoveries = %d with a relaxed threshold, want 0", got)
	}
}

func TestWatchdogRetriesStuckRegisterWrites(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, wdConfig())

	enterUpdating(t, k, a)
	a.Observe(rcv(-60)) // program -61 (margin 1)
	want := r.CCAThreshold()

	// A write around the Adjustor corrupts the register, as a buggy
	// driver or a bit flip would; the watchdog must restore it.
	r.SetCCAThreshold(-40)
	k.RunUntil(k.Now() + sim.FromDuration(300*time.Millisecond))

	if got := r.CCAThreshold(); got != want {
		t.Fatalf("threshold = %v after watchdog, want restored %v", got, want)
	}
	if a.Watchdog().StuckWriteDetections == 0 {
		t.Fatal("register mismatch never detected")
	}
}

func TestWatchdogOffByDefault(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, Config{}) // Watchdog false
	busy := 0
	a.SetCCAStats(func() (int, int) { busy += 50; return 0, busy })

	enterUpdating(t, k, a)
	a.Observe(rcv(-85))
	k.RunUntil(k.Now() + sim.FromDuration(5*time.Second))

	if got := a.Watchdog().Recoveries(); got != 0 {
		t.Fatalf("recoveries = %d with the watchdog disabled, want 0", got)
	}
}

func TestValidateRejectsNonsense(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative init", Config{InitDuration: -time.Second}, "InitDuration"},
		{"negative update window", Config{UpdateWindow: -1}, "UpdateWindow"},
		{"negative sample period", Config{SamplePeriod: -1}, "SamplePeriod"},
		{"negative check period", Config{CheckPeriod: -1}, "CheckPeriod"},
		{"negative watchdog period", Config{WatchdogPeriod: -1}, "WatchdogPeriod"},
		{"negative poison window", Config{PoisonWindow: -1}, "PoisonWindow"},
		{"negative silence window", Config{SilenceWindow: -1}, "SilenceWindow"},
		{"negative margin", Config{MarginDB: -2}, "MarginDB"},
		{"poison rate one", Config{PoisonWinRate: 1}, "PoisonWinRate"},
		{"poison rate negative", Config{PoisonWinRate: -0.1}, "PoisonWinRate"},
		{"fallback above register range", Config{Fallback: 10}, "Fallback"},
		{"fallback below register range", Config{Fallback: -120}, "Fallback"},
		{"min threshold out of range", Config{MinThreshold: -115}, "MinThreshold"},
		{"floor above fallback", Config{Fallback: -80, MinThreshold: -70}, "MinThreshold"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateAcceptsZeroAndPaperDefaults(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if err := (Config{}).withDefaults().Validate(); err != nil {
		t.Fatalf("paper defaults rejected: %v", err)
	}
}

func TestNewCheckedSurfacesError(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	if _, err := NewChecked(k, r, Config{InitDuration: -1}); err == nil {
		t.Fatal("NewChecked accepted an invalid config")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on an invalid config")
		}
	}()
	New(k, r, Config{InitDuration: -1})
}
