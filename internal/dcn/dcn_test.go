package dcn

import (
	"testing"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/mac"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

func world(t *testing.T) (*sim.Kernel, *medium.Medium) {
	t.Helper()
	k := sim.NewKernel(5)
	m := medium.New(k,
		medium.WithFadingSigma(0),
		medium.WithStaticFadingSigma(0),
		medium.WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))
	return k, m
}

func newRadio(k *sim.Kernel, m *medium.Medium, addr frame.Address, x float64, freq phy.MHz) *radio.Radio {
	return radio.New(k, m, radio.Config{
		Pos:          phy.Position{X: x},
		Freq:         freq,
		TxPower:      0,
		CCAThreshold: phy.DefaultCCAThreshold,
		Address:      addr,
	})
}

// rcv fabricates a reception with a given RSSI.
func rcv(rssi phy.DBm) radio.Reception {
	return radio.Reception{Frame: &frame.Frame{Type: frame.TypeData}, RSSI: rssi, CRCOK: true}
}

// blast keeps src transmitting back-to-back frames until the deadline, so
// in-channel power sampling during the Initializing Phase sees real energy
// (max P_I) instead of the bare noise floor.
func blast(k *sim.Kernel, src *radio.Radio, until time.Duration) {
	var next func()
	next = func() {
		if k.Now() >= sim.FromDuration(until) {
			return
		}
		f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 100)}
		if _, err := src.Transmit(f); err == nil {
			k.After(f.Airtime(), next)
		}
	}
	next()
}

func TestInitialThresholdFromMinRSSI(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, Config{})
	a.Start()

	if a.Phase() != PhaseInitializing {
		t.Fatalf("phase = %v, want initializing", a.Phase())
	}
	// During init the radio keeps the conservative fallback.
	if got := r.CCAThreshold(); got != phy.DefaultCCAThreshold {
		t.Fatalf("threshold during init = %v, want fallback", got)
	}
	// Co-channel packets heard at -55 and -62 dBm. In-channel sensing
	// only sees the noise floor (quiet medium between packets).
	k.After(100*time.Millisecond, func() { a.Observe(rcv(-55)) })
	k.After(200*time.Millisecond, func() { a.Observe(rcv(-62)) })
	k.RunUntil(sim.FromDuration(1100 * time.Millisecond))

	if a.Phase() != PhaseUpdating {
		t.Fatalf("phase = %v, want updating", a.Phase())
	}
	// Eq. 2: min{min S, max P} = min{-62, ~noise} → but the noise-floor
	// clamp keeps the node alive: max P is ≈ -100, so the raw Eq. 2
	// value (-100) is floored at MinThreshold.
	want := phy.NoiseFloor + 3
	if got := r.CCAThreshold(); got != want {
		t.Errorf("threshold after init = %v, want %v (floored Eq. 2)", got, want)
	}
}

func TestInitialThresholdUsesSensedPowerCeiling(t *testing.T) {
	k, m := world(t)
	// A continuous inter-channel transmitter keeps the in-channel sensed
	// power well above the noise floor during init, so max P_I is the
	// binding term of Eq. 2 when the weakest co-channel packet is louder.
	r := newRadio(k, m, 1, 0, 2460)
	neighbor := newRadio(k, m, 2, 1, 2463)

	a := New(k, r, Config{})
	a.Start()

	// Saturate the neighbour channel: raw -40 dBm at 3 MHz → sensed ≈ -57.
	var blast func()
	blast = func() {
		if k.Now() > sim.FromDuration(2*time.Second) {
			return
		}
		f := &frame.Frame{Type: frame.TypeData, Payload: make([]byte, 100)}
		if _, err := neighbor.Transmit(f); err == nil {
			k.After(f.Airtime(), blast)
		}
	}
	blast()

	// One loud co-channel packet at -45 dBm.
	k.After(500*time.Millisecond, func() { a.Observe(rcv(-45)) })
	k.RunUntil(sim.FromDuration(1100 * time.Millisecond))

	// Eq. 2: min{-45, max P ≈ -57} = -57, minus the 1 dB margin.
	got := float64(r.CCAThreshold())
	if got < -59.5 || got > -57 {
		t.Errorf("threshold = %v, want ≈ -58 (max sensed -57, margin 1)", got)
	}
}

func TestCaseILowersImmediately(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	// Keep the medium loud during init so max P_I ≈ -40 and the overheard
	// -50 dBm packet binds Eq. 2.
	blaster := newRadio(k, m, 9, 1, 2460)
	blast(k, blaster, 990*time.Millisecond)
	a := New(k, r, Config{})
	a.Start()
	k.After(10*time.Millisecond, func() { a.Observe(rcv(-50)) })
	k.RunUntil(sim.FromDuration(1100 * time.Millisecond))
	if a.Phase() != PhaseUpdating {
		t.Fatal("not in updating phase")
	}
	base := r.CCAThreshold()
	if base != -51 {
		t.Fatalf("post-init threshold = %v, want -51 (min RSSI − margin)", base)
	}

	// A weaker co-channel packet arrives: threshold drops at once.
	a.Observe(rcv(-80))
	if got := r.CCAThreshold(); got != -81 {
		t.Errorf("threshold after Case I = %v, want -81 (RSSI − margin)", got)
	}
	if r.CCAThreshold() >= base {
		t.Error("Case I did not lower the threshold")
	}
	// A stronger packet does not raise it (Case I only lowers).
	a.Observe(rcv(-40))
	if got := r.CCAThreshold(); got != -81 {
		t.Errorf("threshold after louder packet = %v, want unchanged -81", got)
	}
}

func TestCaseIIRelaxesAfterQuietWindow(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	blaster := newRadio(k, m, 9, 1, 2460)
	blast(k, blaster, 990*time.Millisecond)
	a := New(k, r, Config{})
	a.Start()
	k.After(10*time.Millisecond, func() { a.Observe(rcv(-80)) })
	k.RunUntil(sim.FromDuration(1100 * time.Millisecond))
	if got := r.CCAThreshold(); got != -81 {
		t.Fatalf("post-init threshold = %v, want -81", got)
	}

	// From now on only strong (-50 dBm) co-channel packets are heard.
	tick := k.NewTicker(100*time.Millisecond, func() { a.Observe(rcv(-50)) })
	defer tick.Stop()
	// After T_U with no Case I update, Eq. 4 raises the threshold to the
	// window minimum: -50 − margin.
	k.RunUntil(sim.FromDuration(5 * time.Second))
	if got := r.CCAThreshold(); got != -51 {
		t.Errorf("threshold after Case II = %v, want -51", got)
	}
}

func TestCaseIIKeepsThresholdWhenWindowEmpty(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, Config{})
	a.Start()
	k.After(10*time.Millisecond, func() { a.Observe(rcv(-70)) })
	k.RunUntil(sim.FromDuration(1100 * time.Millisecond))
	got := r.CCAThreshold()
	// Total silence afterwards: window drains, threshold must not move.
	k.RunUntil(sim.FromDuration(10 * time.Second))
	if r.CCAThreshold() != got {
		t.Errorf("threshold moved on a silent channel: %v → %v", got, r.CCAThreshold())
	}
	if a.WindowSize() != 0 {
		t.Errorf("window not pruned: %d records", a.WindowSize())
	}
}

func TestCaseIResetsQuietTimer(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, Config{})
	a.Start()
	k.RunUntil(sim.FromDuration(1100 * time.Millisecond))

	// Keep delivering ever-weaker packets more often than T_U: Case I
	// keeps firing, so Case II must never raise the threshold.
	level := phy.DBm(-60)
	tick := k.NewTicker(time.Second, func() {
		level -= 2
		a.Observe(rcv(level))
	})
	defer tick.Stop()
	k.RunUntil(sim.FromDuration(10 * time.Second))
	// Nine ticks: threshold = last level − margin, strictly decreasing.
	if got := r.CCAThreshold(); got != phy.DBm(level)-1 {
		t.Errorf("threshold = %v, want %v (Case I tracking)", got, level-1)
	}
}

func TestThresholdInvariantNeverAboveWindowMin(t *testing.T) {
	// Property: in the updating phase the programmed threshold is always
	// strictly below the weakest co-channel packet in the current window.
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, Config{})
	a.Start()
	k.RunUntil(sim.FromDuration(1100 * time.Millisecond))

	rng := k.Stream("test.rssi")
	minInWindow := func() (phy.DBm, bool) {
		if a.WindowSize() == 0 {
			return 0, false
		}
		min := a.window[0].rssi
		for _, rec := range a.window[1:] {
			if rec.rssi < min {
				min = rec.rssi
			}
		}
		return min, true
	}
	tick := k.NewTicker(50*time.Millisecond, func() {
		a.Observe(rcv(phy.DBm(rng.UniformRange(-90, -40))))
		if min, ok := minInWindow(); ok {
			if th := r.CCAThreshold(); th >= min {
				t.Fatalf("invariant violated at %v: threshold %v >= window min %v",
					k.Now(), th, min)
			}
		}
	})
	defer tick.Stop()
	k.RunUntil(sim.FromDuration(30 * time.Second))
}

func TestResetReturnsToInit(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, Config{})
	a.Start()
	k.RunUntil(sim.FromDuration(1100 * time.Millisecond))
	if a.Phase() != PhaseUpdating {
		t.Fatal("not updating")
	}
	a.Reset()
	if a.Phase() != PhaseInitializing {
		t.Errorf("phase after Reset = %v, want initializing", a.Phase())
	}
	if got := r.CCAThreshold(); got != phy.DefaultCCAThreshold {
		t.Errorf("threshold after Reset = %v, want fallback", got)
	}
	k.RunUntil(sim.FromDuration(2500 * time.Millisecond))
	if a.Phase() != PhaseUpdating {
		t.Errorf("phase after second init = %v, want updating", a.Phase())
	}
}

func TestStopHaltsAdjustment(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, Config{})
	a.Start()
	k.RunUntil(sim.FromDuration(1100 * time.Millisecond))
	a.Stop()
	if a.Phase() != PhaseStopped {
		t.Fatalf("phase = %v, want stopped", a.Phase())
	}
	before := r.CCAThreshold()
	a.Observe(rcv(-95)) // would trigger Case I if running
	if r.CCAThreshold() != before {
		t.Error("stopped Adjustor still reprogrammed the radio")
	}
	if k.Pending() != 0 {
		t.Errorf("timers still pending after Stop: %d", k.Pending())
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseStopped: "stopped", PhaseInitializing: "initializing",
		PhaseUpdating: "updating", Phase(42): "phase(?)",
	} {
		if got := p.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestNoiseFloorClampPreventsDeadlock(t *testing.T) {
	// A node started on a totally quiet medium must still be able to
	// transmit: the floored threshold sits above the noise floor.
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	a := New(k, r, Config{})
	a.Start()
	k.RunUntil(sim.FromDuration(2 * time.Second))
	if a.Phase() != PhaseUpdating {
		t.Fatal("init did not finish")
	}
	if !r.CCAClear() {
		t.Errorf("CCA busy on a silent medium: threshold %v", r.CCAThreshold())
	}
}

func TestAttachChainsOverhear(t *testing.T) {
	k, m := world(t)
	r := newRadio(k, m, 1, 0, 2460)
	mc := mac.New(k, r, mac.Config{})
	seen := 0
	mc.OnOverhear = func(radio.Reception) { seen++ }
	a := Attach(k, mc, Config{})
	a.Start()
	k.RunUntil(sim.FromDuration(1100 * time.Millisecond))

	// A co-channel packet flows through both the original handler and
	// the adjustor.
	peer := newRadio(k, m, 2, 1, 2460)
	f := &frame.Frame{Type: frame.TypeData, Src: 2, Dst: 9, Payload: make([]byte, 16)}
	if _, err := peer.Transmit(f); err != nil {
		t.Fatal(err)
	}
	k.RunFor(10 * time.Millisecond)
	a.Stop()
	if seen != 1 {
		t.Errorf("original overhear handler saw %d packets, want 1", seen)
	}
	if a.WindowSize() != 1 {
		t.Errorf("adjustor window = %d, want 1", a.WindowSize())
	}
	if a.Threshold() != r.CCAThreshold() {
		t.Error("Threshold() disagrees with the radio register")
	}
}
