package testbed

import (
	"testing"
	"time"

	"nonortho/internal/arena"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// benchSpec builds one network of nSenders at an X offset, deterministic
// and import-cycle-free.
func benchSpec(freq phy.MHz, nSenders int, off float64) topology.NetworkSpec {
	spec := topology.NetworkSpec{
		Freq: freq,
		Sink: topology.NodeSpec{Pos: phy.Position{X: off}},
	}
	for i := 0; i < nSenders; i++ {
		spec.Senders = append(spec.Senders, topology.NodeSpec{
			Pos: phy.Position{X: off + 0.5 + 0.2*float64(i), Y: 0.6 * float64(i%2)},
		})
	}
	return spec
}

// BenchmarkSimulatedSecond measures how fast the full stack simulates one
// virtual second of a six-network saturated deployment — the harness's
// core cost metric (virtual-time seconds per wall-clock second).
func BenchmarkSimulatedSecond(b *testing.B) {
	tb := New(Options{Seed: 1})
	for i := 0; i < 6; i++ {
		tb.AddNetwork(benchSpec(2458+phy.MHz(3*i), 4, 0.9*float64(i)), NetworkConfig{})
	}
	tb.Run(time.Second, 0) // warm the sources
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Run(0, time.Second)
	}
	b.ReportMetric(tb.OverallThroughput(), "pkt/s")
}

// BenchmarkCellSetup measures standing up one six-network experiment cell
// and simulating its first 100 virtual milliseconds — the phase where
// every node pair's link budget is created — two ways: regenerating the
// topology from scratch (what every cell paid before shared snapshots)
// versus instantiating from a prebuilt snapshot, where placements and the
// path-loss matrix are computed once per (configuration, seed) and shared
// read-only across cells.
func BenchmarkCellSetup(b *testing.B) {
	cfg := topology.Config{
		Plan: phy.ChannelPlan{
			Start: 2458, Bandwidth: 15, CFD: 3,
			Centers: []phy.MHz{2458, 2461, 2464, 2467, 2470, 2473},
		},
		Layout: topology.LayoutColocated,
	}
	const warm = 100 * time.Millisecond
	b.Run("fresh-generate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			nets, err := topology.Generate(cfg, sim.NewRNG(1))
			if err != nil {
				b.Fatal(err)
			}
			tb := New(Options{Seed: 1})
			for _, spec := range nets {
				tb.AddNetwork(spec, NetworkConfig{})
			}
			tb.Run(warm, 0)
		}
	})
	b.Run("shared-snapshot", func(b *testing.B) {
		snap, err := topology.NewSnapshot(cfg, sim.NewRNG(1), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb := New(Options{Seed: 1, Topology: snap})
			for _, spec := range snap.Networks() {
				tb.AddNetwork(spec, NetworkConfig{})
			}
			tb.Run(warm, 0)
		}
	})
}

// BenchmarkCellSetupArena measures the same cell stand-up as
// BenchmarkCellSetup's shared-snapshot case, but leasing the kernel,
// medium and radios from a cross-cell arena: after the first iteration
// warms the pool, every cell reuses the previous cell's objects via
// in-place reset instead of reallocating them.
func BenchmarkCellSetupArena(b *testing.B) {
	cfg := topology.Config{
		Plan: phy.ChannelPlan{
			Start: 2458, Bandwidth: 15, CFD: 3,
			Centers: []phy.MHz{2458, 2461, 2464, 2467, 2470, 2473},
		},
		Layout: topology.LayoutColocated,
	}
	snap, err := topology.NewSnapshot(cfg, sim.NewRNG(1), nil)
	if err != nil {
		b.Fatal(err)
	}
	ar := arena.New()
	const warm = 100 * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := New(Options{Seed: 1, Topology: snap, Arena: ar})
		for _, spec := range snap.Networks() {
			tb.AddNetwork(spec, NetworkConfig{})
		}
		tb.Run(warm, 0)
		tb.Close()
	}
}

// BenchmarkSimulatedSecondDCN is the same with every network running the
// CCA-Adjustor, measuring DCN's bookkeeping overhead.
func BenchmarkSimulatedSecondDCN(b *testing.B) {
	tb := New(Options{Seed: 1})
	for i := 0; i < 6; i++ {
		tb.AddNetwork(benchSpec(2458+phy.MHz(3*i), 4, 0.9*float64(i)), NetworkConfig{Scheme: SchemeDCN})
	}
	tb.Run(2*time.Second, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Run(0, time.Second)
	}
	b.ReportMetric(tb.OverallThroughput(), "pkt/s")
}
