package testbed

import (
	"testing"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/topology"
)

// benchSpec builds one network of nSenders at an X offset, deterministic
// and import-cycle-free.
func benchSpec(freq phy.MHz, nSenders int, off float64) topology.NetworkSpec {
	spec := topology.NetworkSpec{
		Freq: freq,
		Sink: topology.NodeSpec{Pos: phy.Position{X: off}},
	}
	for i := 0; i < nSenders; i++ {
		spec.Senders = append(spec.Senders, topology.NodeSpec{
			Pos: phy.Position{X: off + 0.5 + 0.2*float64(i), Y: 0.6 * float64(i%2)},
		})
	}
	return spec
}

// BenchmarkSimulatedSecond measures how fast the full stack simulates one
// virtual second of a six-network saturated deployment — the harness's
// core cost metric (virtual-time seconds per wall-clock second).
func BenchmarkSimulatedSecond(b *testing.B) {
	tb := New(Options{Seed: 1})
	for i := 0; i < 6; i++ {
		tb.AddNetwork(benchSpec(2458+phy.MHz(3*i), 4, 0.9*float64(i)), NetworkConfig{})
	}
	tb.Run(time.Second, 0) // warm the sources
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Run(0, time.Second)
	}
	b.ReportMetric(tb.OverallThroughput(), "pkt/s")
}

// BenchmarkSimulatedSecondDCN is the same with every network running the
// CCA-Adjustor, measuring DCN's bookkeeping overhead.
func BenchmarkSimulatedSecondDCN(b *testing.B) {
	tb := New(Options{Seed: 1})
	for i := 0; i < 6; i++ {
		tb.AddNetwork(benchSpec(2458+phy.MHz(3*i), 4, 0.9*float64(i)), NetworkConfig{Scheme: SchemeDCN})
	}
	tb.Run(2*time.Second, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Run(0, time.Second)
	}
	b.ReportMetric(tb.OverallThroughput(), "pkt/s")
}
