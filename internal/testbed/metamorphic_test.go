package testbed

import (
	"testing"
	"testing/quick"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// Metamorphic properties of the full stack: relations that must hold
// between paired runs regardless of the random configuration.

// randomSpec builds a small random one-channel network.
func randomSpec(rng *sim.RNG, freq phy.MHz, senders int) topology.NetworkSpec {
	spec := topology.NetworkSpec{
		Freq: freq,
		Sink: topology.NodeSpec{Pos: phy.Position{
			X: rng.UniformRange(-1, 1), Y: rng.UniformRange(-1, 1)}},
	}
	for i := 0; i < senders; i++ {
		spec.Senders = append(spec.Senders, topology.NodeSpec{
			Pos: phy.Position{
				X: spec.Sink.Pos.X + rng.UniformRange(0.4, 1.2),
				Y: spec.Sink.Pos.Y + rng.UniformRange(-0.6, 0.6),
			},
		})
	}
	return spec
}

func TestMetamorphicDeterminism(t *testing.T) {
	// Any random configuration replays identically under the same seed.
	f := func(seed int64, sendersRaw uint8) bool {
		senders := int(sendersRaw%3) + 1
		run := func() (int, int) {
			rng := sim.NewRNG(seed)
			tb := New(Options{Seed: seed})
			n := tb.AddNetwork(randomSpec(rng, 2460, senders), NetworkConfig{})
			tb.Run(500*time.Millisecond, time.Second)
			return n.Stats().Sent, n.Stats().Received
		}
		s1, r1 := run()
		s2, r2 := run()
		return s1 == s2 && r1 == r2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMetamorphicInterfererNeverHelps(t *testing.T) {
	// Adding a co-channel interfering network must not increase the
	// victim's goodput (CSMA sharing or collisions, never a gift).
	f := func(seed int64) bool {
		base := func(withInterferer bool) int {
			rng := sim.NewRNG(seed)
			tb := New(Options{Seed: seed})
			victim := tb.AddNetwork(randomSpec(rng, 2460, 2), NetworkConfig{})
			if withInterferer {
				spec := randomSpec(rng, 2460, 2)
				// Keep the interferer close enough to matter.
				spec.Sink.Pos = phy.Position{X: 2, Y: 0}
				for i := range spec.Senders {
					spec.Senders[i].Pos = phy.Position{X: 2.5, Y: 0.4 * float64(i)}
				}
				tb.AddNetwork(spec, NetworkConfig{})
			} else {
				// Burn the same RNG draws so the victim's layout matches.
				_ = randomSpec(rng, 2460, 2)
			}
			tb.Run(time.Second, 2*time.Second)
			return victim.Stats().Received
		}
		clean := base(false)
		contested := base(true)
		// Allow a tiny tolerance: random backoff draws differ once the
		// interferer's MAC exists, so exact counts can wiggle both ways
		// on nearly-idle channels.
		return contested <= clean+clean/10+5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestMetamorphicMorePayloadFewerPackets(t *testing.T) {
	// Saturated throughput in packets/s decreases as the payload grows
	// (airtime per packet dominates).
	run := func(payload int) float64 {
		tb := New(Options{Seed: 77})
		spec := topology.NetworkSpec{
			Freq:    2460,
			Sink:    topology.NodeSpec{Pos: phy.Position{X: 1}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0}}},
		}
		n := tb.AddNetwork(spec, NetworkConfig{Payload: payload})
		tb.Run(time.Second, 4*time.Second)
		return n.Throughput(tb.MeasuredDuration())
	}
	small, large := run(16), run(112)
	if large >= small {
		t.Errorf("packets/s with 112 B payload (%.0f) not below 16 B (%.0f)", large, small)
	}
}

func TestMetamorphicFartherSinkNeverMoreReliable(t *testing.T) {
	// Moving the sink away (with an interferer present) must not improve
	// PRR: SINR only degrades with distance.
	prrAt := func(x float64) float64 {
		tb := New(Options{Seed: 55, StaticFadingSigma: -1})
		victim := tb.AddNetwork(topology.NetworkSpec{
			Freq:    2460,
			Sink:    topology.NodeSpec{Pos: phy.Position{X: x}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0}}},
		}, NetworkConfig{})
		// A fixed inter-channel interferer.
		tb.AddNetwork(topology.NetworkSpec{
			Freq:    2462,
			Sink:    topology.NodeSpec{Pos: phy.Position{X: 0, Y: 3}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: 1, Y: 3}}},
		}, NetworkConfig{})
		tb.Run(time.Second, 3*time.Second)
		return victim.Stats().PRR()
	}
	near, mid, far := prrAt(1), prrAt(6), prrAt(12)
	if !(near >= mid-0.02 && mid >= far-0.02) {
		t.Errorf("PRR not non-increasing with distance: %.2f / %.2f / %.2f", near, mid, far)
	}
}

func TestMetamorphicHigherPowerNeverHurtsOwnLink(t *testing.T) {
	// With a fixed interferer, raising the victim's transmit power must
	// not reduce its own PRR.
	prrAt := func(p phy.DBm) float64 {
		tb := New(Options{Seed: 66, StaticFadingSigma: -1})
		victim := tb.AddNetwork(topology.NetworkSpec{
			Freq: 2460,
			Sink: topology.NodeSpec{Pos: phy.Position{X: 3}},
			Senders: []topology.NodeSpec{
				{Pos: phy.Position{X: 0}, TxPower: p},
			},
		}, NetworkConfig{})
		tb.AddNetwork(topology.NetworkSpec{
			Freq:    2463,
			Sink:    topology.NodeSpec{Pos: phy.Position{X: 3, Y: 2}},
			Senders: []topology.NodeSpec{{Pos: phy.Position{X: 2, Y: 2}}},
		}, NetworkConfig{})
		tb.Run(time.Second, 3*time.Second)
		return victim.Stats().PRR()
	}
	low, high := prrAt(-22), prrAt(0)
	if high < low-0.02 {
		t.Errorf("higher power reduced PRR: %.2f at -22 dBm vs %.2f at 0 dBm", low, high)
	}
}
