package testbed_test

import (
	"fmt"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/testbed"
	"nonortho/internal/topology"
)

// Example builds two adjacent non-orthogonal networks by hand — one on the
// fixed ZigBee threshold, one running DCN — and measures their goodput.
func Example() {
	tb := testbed.New(testbed.Options{Seed: 42})

	fixed := tb.AddNetwork(topology.NetworkSpec{
		Freq:    2460,
		Sink:    topology.NodeSpec{Pos: phy.Position{X: 1}},
		Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0}}},
	}, testbed.NetworkConfig{Scheme: testbed.SchemeFixed})

	dcnNet := tb.AddNetwork(topology.NetworkSpec{
		Freq:    2463,
		Sink:    topology.NodeSpec{Pos: phy.Position{X: 1, Y: 2}},
		Senders: []topology.NodeSpec{{Pos: phy.Position{X: 0, Y: 2}}},
	}, testbed.NetworkConfig{Scheme: testbed.SchemeDCN})

	tb.Run(2*time.Second, 4*time.Second)

	fmt.Println("fixed network delivered packets:", fixed.Stats().Received > 0)
	fmt.Println("dcn network delivered packets:  ", dcnNet.Stats().Received > 0)
	fmt.Println("overall throughput positive:    ", tb.OverallThroughput() > 0)
	// Output:
	// fixed network delivered packets: true
	// dcn network delivered packets:   true
	// overall throughput positive:     true
}
