// Package testbed assembles full experiments: networks of saturated
// senders reporting to sinks over the simulated medium, with a choice of
// CCA scheme per network (fixed ZigBee threshold, DCN, or carrier sense
// disabled), and per-network statistics collection. It is the simulated
// counterpart of the paper's 35-mote MicaZ deployment.
package testbed

import (
	"fmt"
	"strconv"
	"time"

	"nonortho/internal/trace"

	"nonortho/internal/arena"
	"nonortho/internal/dcn"
	"nonortho/internal/frame"
	"nonortho/internal/mac"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/recovery"
	"nonortho/internal/sim"
	"nonortho/internal/stats"
	"nonortho/internal/topology"
)

// Scheme selects a network's channel-access policy.
type Scheme int

// The paper's three schemes.
const (
	// SchemeFixed is the default ZigBee design: CSMA with a fixed CCA
	// threshold.
	SchemeFixed Scheme = iota + 1
	// SchemeDCN runs the CCA-Adjustor on every node of the network.
	SchemeDCN
	// SchemeNoCarrierSense disables CCA entirely (the concurrency-probe
	// "attacker" mode of Section III-B).
	SchemeNoCarrierSense
	// SchemeOracle is the Section VII-C upper bound: a CCA that perfectly
	// differentiates co-channel from inter-channel interference.
	SchemeOracle
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeFixed:
		return "fixed"
	case SchemeDCN:
		return "dcn"
	case SchemeNoCarrierSense:
		return "no-cs"
	case SchemeOracle:
		return "oracle"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Options configures a testbed.
type Options struct {
	// Seed drives every random stream in the run.
	Seed int64
	// Payload is the default MSDU size in bytes (default 64, giving the
	// ~2.6 ms frames that land single-channel throughput in the paper's
	// 250-300 pkt/s range).
	Payload int
	// FadingSigma is the per-transmission RSSI jitter σ in dB (default 2).
	FadingSigma float64
	// StaticFadingSigma is the per-link shadowing σ in dB (default 3).
	// Set negative to disable entirely.
	StaticFadingSigma float64
	// PathLoss overrides the propagation model (default indoor
	// 48 dB @ 1 m, exponent 3.5).
	PathLoss phy.PathLossModel
	// Topology, when set, is the immutable shared snapshot the cell was
	// built from: its precomputed path-loss matrix is installed on the
	// medium so pairwise losses come from a read-only lookup instead of
	// being recomputed per cell. When PathLoss is unset the snapshot's
	// model becomes the medium's model; when both are set they must
	// describe the same propagation or the snapshot is ignored.
	Topology *topology.Snapshot
	// FarFieldBudget, when positive, enables the medium's far-field fold
	// over a near-field Topology snapshot: power sums skip certified-far
	// transmitters and add their worst-case aggregate to the noise floor
	// instead, with at most this many dB of sensed-power error (enforced —
	// the medium panics when the snapshot's loss bound cannot honour the
	// budget; see medium.WithFarField). Zero keeps sums exact. Requires a
	// near-field Topology whose model is in force.
	FarFieldBudget float64
	// Arena, when set, supplies the testbed's kernel, medium and radios
	// from a cross-cell pool instead of fresh allocations; call Close when
	// the cell's results have been read to return them. Results are
	// bit-identical with or without an arena.
	Arena *arena.Arena
	// Budget bounds the kernel work this testbed's cell may do (fired
	// events and/or virtual time). The zero value is unlimited. A cell
	// exceeding its budget panics with *sim.BudgetError, which the sweep
	// engine reports as a cell failure; completed cells are unaffected —
	// a budget that never trips changes no result.
	Budget sim.Budget
}

func (o Options) withDefaults() Options {
	if o.Payload == 0 {
		o.Payload = 64
	}
	if o.FadingSigma == 0 {
		o.FadingSigma = 2
	}
	if o.StaticFadingSigma == 0 {
		o.StaticFadingSigma = 3
	} else if o.StaticFadingSigma < 0 {
		o.StaticFadingSigma = 0
	}
	if o.PathLoss == nil {
		if o.Topology != nil {
			o.PathLoss = o.Topology.Model()
		} else {
			o.PathLoss = phy.DefaultPathLoss()
		}
	}
	return o
}

// NetworkConfig tunes one network added to the testbed.
type NetworkConfig struct {
	// Scheme is the channel-access policy (default SchemeFixed).
	Scheme Scheme
	// CCAThreshold is the fixed/initial threshold (default -77 dBm).
	CCAThreshold phy.DBm
	// Payload overrides the testbed default for this network's frames.
	Payload int
	// Period spaces transmissions at a fixed interval; zero means
	// saturated traffic.
	Period time.Duration
	// DCN overrides the Adjustor parameters when Scheme is SchemeDCN.
	DCN dcn.Config
}

func (c NetworkConfig) withDefaults(tb *Testbed) NetworkConfig {
	if c.Scheme == 0 {
		c.Scheme = SchemeFixed
	}
	if c.CCAThreshold == 0 {
		c.CCAThreshold = phy.DefaultCCAThreshold
	}
	if c.Payload == 0 {
		c.Payload = tb.opts.Payload
	}
	return c
}

// Node is one mote: radio + MAC (+ Adjustor under DCN).
type Node struct {
	Radio    *radio.Radio
	MAC      *mac.MAC
	Adjustor *dcn.Adjustor
}

// Network is one channel's worth of nodes plus its measurement state.
type Network struct {
	// Freq is the channel center frequency.
	Freq phy.MHz
	// Senders and Sink are the network's nodes.
	Senders []*Node
	Sink    *Node
	// Config records how the network was built.
	Config NetworkConfig

	tb *Testbed
	// link accumulates counters while the testbed is measuring.
	link stats.Link
	// errFractions collects the error-bit fraction of CRC-failed sink
	// receptions (Fig. 29) and feeds the recovery model.
	errFractions stats.Distribution
	// recoverable counts CRC-failed receptions within the recovery budget.
	recoverable int
	recov       *recovery.Scheme
}

// Stats returns the counters accumulated during the measurement window.
func (n *Network) Stats() stats.Link { return n.link }

// Recoverable returns the number of CRC-failed sink receptions that the
// partial-packet-recovery model could repair.
func (n *Network) Recoverable() int { return n.recoverable }

// ErrorFractions exposes the error-bit-fraction distribution of CRC-failed
// receptions at the sink.
func (n *Network) ErrorFractions() *stats.Distribution { return &n.errFractions }

// Throughput is the measured sink goodput in packets per second.
func (n *Network) Throughput(measured time.Duration) float64 {
	return n.link.Throughput(measured)
}

// Testbed owns the kernel, medium and networks of one experiment run.
type Testbed struct {
	Kernel *sim.Kernel
	Medium *medium.Medium

	// recorder, when non-nil, receives MAC/DCN events of every network
	// added after EnableTrace.
	recorder *trace.Recorder

	opts      Options
	core      *arena.Core
	networks  []*Network
	nextAddr  frame.Address
	measuring bool
	measured  time.Duration
	started   bool
}

// topoKey is the arena topology-identity key: cells share link-loss slabs
// only when both the snapshot and the far-field budget match.
type topoKey struct {
	snap   *topology.Snapshot
	budget float64
}

// New builds an empty testbed.
func New(opts Options) *Testbed {
	opts = opts.withDefaults()
	mopts := []medium.Option{
		medium.WithFadingSigma(opts.FadingSigma),
		medium.WithStaticFadingSigma(opts.StaticFadingSigma),
		medium.WithPathLoss(opts.PathLoss),
	}
	// The snapshot's matrix is only valid under the model it was computed
	// with; a conflicting explicit PathLoss wins and the matrix is skipped.
	if opts.Topology != nil && opts.PathLoss == opts.Topology.Model() {
		mopts = append(mopts, medium.WithLossProvider(opts.Topology))
		if opts.FarFieldBudget > 0 {
			mopts = append(mopts, medium.WithFarField(opts.FarFieldBudget))
		}
	}
	if opts.Arena != nil {
		// The snapshot doubles as the arena's topology-identity key: two
		// cells sharing it (with its model in force) have bit-identical
		// loss matrices, so a recycled core keeps its link-loss slabs. The
		// far-field budget is part of the key: folded media index link rows
		// by near-row rank, not source ID, so slabs must never survive a
		// dense↔folded mode flip.
		var topo any
		if opts.Topology != nil && opts.PathLoss == opts.Topology.Model() {
			topo = topoKey{snap: opts.Topology, budget: opts.FarFieldBudget}
		}
		core := opts.Arena.LeaseTopo(opts.Seed, topo, mopts...)
		// After Lease: Reset has already cleared any previous cell's budget.
		core.Kernel.SetBudget(opts.Budget)
		return &Testbed{Kernel: core.Kernel, Medium: core.Medium, core: core, opts: opts, nextAddr: 1}
	}
	k := sim.NewKernel(opts.Seed)
	k.SetBudget(opts.Budget)
	m := medium.New(k, mopts...)
	return &Testbed{Kernel: k, Medium: m, opts: opts, nextAddr: 1}
}

// Close releases the testbed's leased arena core, if any. Call it only
// after every result has been read — throughput, energy reports, trace
// buffers — because the kernel, medium and radios may be handed to
// another cell immediately. A testbed built without an arena needs no
// Close (it is a no-op), and Close is idempotent.
func (tb *Testbed) Close() {
	if tb.core != nil {
		tb.core.Release()
		tb.core = nil
	}
}

// EnableTrace attaches an event recorder with the given capacity. Call it
// before AddNetwork; networks created earlier are not instrumented.
func (tb *Testbed) EnableTrace(capacity int) *trace.Recorder {
	tb.recorder = trace.NewRecorder(capacity)
	return tb.recorder
}

// Networks returns the networks in creation order.
func (tb *Testbed) Networks() []*Network { return tb.networks }

// MeasuredDuration reports the total measurement time accumulated so far.
func (tb *Testbed) MeasuredDuration() time.Duration { return tb.measured }

// AddNetwork instantiates the nodes of spec with the given configuration.
func (tb *Testbed) AddNetwork(spec topology.NetworkSpec, cfg NetworkConfig) *Network {
	cfg = cfg.withDefaults(tb)
	n := &Network{Freq: spec.Freq, Config: cfg, tb: tb, recov: recovery.New(0)}

	n.Sink = tb.newNode(spec.Sink, spec.Freq, cfg)
	for _, s := range spec.Senders {
		n.Senders = append(n.Senders, tb.newNode(s, spec.Freq, cfg))
	}
	tb.wire(n)
	if tb.recorder != nil {
		tb.instrument(n)
	}
	tb.networks = append(tb.networks, n)
	return n
}

// instrument chains trace recording into a network's callbacks.
func (tb *Testbed) instrument(n *Network) {
	rec := tb.recorder
	for _, s := range n.Senders {
		s := s
		node := int(s.Radio.Address())
		prevSent := s.MAC.OnSent
		s.MAC.OnSent = func(f *frame.Frame) {
			if prevSent != nil {
				prevSent(f)
			}
			rec.Record(trace.Event{
				At: tb.Kernel.Now(), Kind: trace.KindTxEnd, Node: node, Seq: int(f.Seq),
			})
		}
		prevDropped := s.MAC.OnDropped
		s.MAC.OnDropped = func(f *frame.Frame) {
			if prevDropped != nil {
				prevDropped(f)
			}
			rec.Record(trace.Event{
				At: tb.Kernel.Now(), Kind: trace.KindDrop, Node: node, Seq: int(f.Seq),
			})
		}
		if s.Adjustor != nil {
			s.Adjustor.OnThreshold = func(th phy.DBm) {
				rec.Record(trace.Event{
					At: tb.Kernel.Now(), Kind: trace.KindThreshold, Node: node, Value: float64(th),
				})
			}
		}
	}
	sinkNode := int(n.Sink.Radio.Address())
	prev := n.Sink.MAC.OnOverhear
	n.Sink.MAC.OnOverhear = func(r radio.Reception) {
		if prev != nil {
			prev(r)
		}
		kind := trace.KindRxOK
		if !r.CRCOK {
			kind = trace.KindRxCorrupt
		}
		rec.Record(trace.Event{
			At: tb.Kernel.Now(), Kind: kind, Node: sinkNode,
			Seq: int(r.Frame.Seq), Value: float64(r.RSSI),
		})
	}
}

func (tb *Testbed) newNode(spec topology.NodeSpec, freq phy.MHz, cfg NetworkConfig) *Node {
	addr := tb.nextAddr
	tb.nextAddr++
	rcfg := radio.Config{
		Pos:          spec.Pos,
		Freq:         freq,
		TxPower:      spec.TxPower,
		CCAThreshold: cfg.CCAThreshold,
		Address:      addr,
	}
	var r *radio.Radio
	if tb.core != nil {
		r = tb.core.NewRadio(rcfg)
	} else {
		r = radio.New(tb.Kernel, tb.Medium, rcfg)
	}
	var policy mac.CCAPolicy = mac.ThresholdCCA{}
	switch cfg.Scheme {
	case SchemeNoCarrierSense:
		policy = mac.DisabledCCA{}
	case SchemeOracle:
		policy = mac.OracleDiscriminatingCCA{}
	}
	m := mac.New(tb.Kernel, r, mac.Config{CCA: policy})
	node := &Node{Radio: r, MAC: m}
	if cfg.Scheme == SchemeDCN {
		node.Adjustor = dcn.Attach(tb.Kernel, m, cfg.DCN)
	}
	return node
}

// wire connects the statistics callbacks of a network's nodes.
func (tb *Testbed) wire(n *Network) {
	for _, s := range n.Senders {
		s.MAC.OnSent = func(*frame.Frame) {
			if tb.measuring {
				n.link.Sent++
			}
		}
		s.MAC.OnDropped = func(*frame.Frame) {
			if tb.measuring {
				n.link.AccessFailures++
			}
		}
	}
	prev := n.Sink.MAC.OnOverhear
	n.Sink.MAC.OnOverhear = func(r radio.Reception) {
		if prev != nil {
			prev(r)
		}
		if !tb.measuring {
			return
		}
		// Only count traffic addressed to this sink: overheard frames of
		// other links sharing the channel are not this network's goodput.
		if r.Frame.Dst != n.Sink.Radio.Address() {
			return
		}
		if r.Collided {
			n.link.Collided++
			if r.CRCOK {
				n.link.CollidedOK++
			}
		}
		if r.CRCOK {
			n.link.Received++
			return
		}
		n.link.CRCFailed++
		n.errFractions.Observe(r.ErrorFraction())
		if n.recov.Recoverable(r) {
			n.recoverable++
		}
	}
}

// start launches traffic sources and DCN adjustors. Called once.
func (tb *Testbed) start() {
	if tb.started {
		return
	}
	tb.started = true
	for _, n := range tb.networks {
		for _, s := range n.Senders {
			tb.startSource(n, s)
			if s.Adjustor != nil {
				s.Adjustor.Start()
			}
		}
		if n.Sink.Adjustor != nil {
			n.Sink.Adjustor.Start()
		}
	}
}

// startSource drives one sender: saturated (refill on completion) or
// periodic.
func (tb *Testbed) startSource(n *Network, s *Node) {
	dst := n.Sink.Radio.Address()
	makeFrame := func() *frame.Frame {
		return &frame.Frame{
			Type:    frame.TypeData,
			Src:     s.Radio.Address(),
			Dst:     dst,
			Payload: make([]byte, n.Config.Payload),
		}
	}
	if n.Config.Period > 0 {
		tb.Kernel.NewTicker(n.Config.Period, func() { s.MAC.Send(makeFrame()) })
		return
	}
	// Saturated: keep two frames in the queue so the MAC never idles.
	refill := func() {
		for s.MAC.QueueLen() < 2 {
			if !s.MAC.Send(makeFrame()) {
				break
			}
		}
	}
	prevSent := s.MAC.OnSent
	s.MAC.OnSent = func(f *frame.Frame) {
		if prevSent != nil {
			prevSent(f)
		}
		refill()
	}
	prevDropped := s.MAC.OnDropped
	s.MAC.OnDropped = func(f *frame.Frame) {
		if prevDropped != nil {
			prevDropped(f)
		}
		refill()
	}
	refill()
}

// Run executes the experiment: warmup (sources running, stats gated off)
// followed by a measurement window. It can be called again to extend the
// measurement.
func (tb *Testbed) Run(warmup, measure time.Duration) {
	tb.start()
	if warmup > 0 {
		tb.measuring = false
		tb.Kernel.RunFor(warmup)
	}
	tb.measuring = true
	tb.Kernel.RunFor(measure)
	tb.measuring = false
	tb.measured += measure
}

// OverallThroughput sums sink goodput across all networks, in packets per
// second of measured time.
func (tb *Testbed) OverallThroughput() float64 {
	if tb.measured <= 0 {
		return 0
	}
	total := 0.0
	for _, n := range tb.networks {
		total += n.Throughput(tb.measured)
	}
	return total
}

// PerNetworkThroughput returns each network's goodput in creation order.
func (tb *Testbed) PerNetworkThroughput() []float64 {
	out := make([]float64, len(tb.networks))
	for i, n := range tb.networks {
		out[i] = n.Throughput(tb.measured)
	}
	return out
}

// NetworkLabel names a network the way the paper does: N0 is the middle
// channel, N1..N_k fan outwards. Here we simply report the index.
func NetworkLabel(i int) string { return "N" + strconv.Itoa(i) }
