package testbed

import (
	"testing"
	"time"

	"nonortho/internal/phy"
	"nonortho/internal/sim"
	"nonortho/internal/topology"
)

// singleNetworkSpec builds one network of nSenders around the origin.
func singleNetworkSpec(t *testing.T, freq phy.MHz, nSenders int) topology.NetworkSpec {
	t.Helper()
	rng := sim.NewRNG(42)
	plan := phy.ChannelPlan{Centers: []phy.MHz{freq}}
	nets, err := topology.Generate(topology.Config{
		Plan:              plan,
		SendersPerNetwork: nSenders,
		Layout:            topology.LayoutColocated,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return nets[0]
}

func TestSingleNetworkSaturatedThroughputCalibration(t *testing.T) {
	// Calibration target from DESIGN.md: one isolated channel with 4
	// saturated senders lands in the paper's 250-310 pkt/s range.
	tb := New(Options{Seed: 1})
	n := tb.AddNetwork(singleNetworkSpec(t, 2460, 4), NetworkConfig{})
	tb.Run(2*time.Second, 10*time.Second)

	got := n.Throughput(tb.MeasuredDuration())
	if got < 240 || got > 330 {
		t.Errorf("single-channel saturated throughput = %.1f pkt/s, want 250-310", got)
	}
	if s := n.Stats(); s.Sent == 0 || s.Received == 0 {
		t.Fatalf("no traffic recorded: %+v", s)
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	tb := New(Options{Seed: 2})
	n := tb.AddNetwork(singleNetworkSpec(t, 2460, 1), NetworkConfig{})
	tb.Run(time.Second, time.Second)
	oneSec := n.Stats().Received

	tb2 := New(Options{Seed: 2})
	n2 := tb2.AddNetwork(singleNetworkSpec(t, 2460, 1), NetworkConfig{})
	tb2.Run(5*time.Second, time.Second)
	if got := n2.Stats().Received; got > 2*oneSec {
		t.Errorf("longer warmup inflated stats: %d vs %d", got, oneSec)
	}
	if oneSec == 0 {
		t.Fatal("no packets in measurement window")
	}
}

func TestPeriodicSourceRate(t *testing.T) {
	tb := New(Options{Seed: 3})
	n := tb.AddNetwork(singleNetworkSpec(t, 2460, 1),
		NetworkConfig{Period: 10 * time.Millisecond})
	tb.Run(time.Second, 5*time.Second)
	got := n.Throughput(tb.MeasuredDuration())
	if got < 90 || got > 101 {
		t.Errorf("periodic 100 Hz source delivered %.1f pkt/s, want ≈ 100", got)
	}
}

func TestRunAccumulates(t *testing.T) {
	tb := New(Options{Seed: 4})
	n := tb.AddNetwork(singleNetworkSpec(t, 2460, 2), NetworkConfig{})
	tb.Run(time.Second, 2*time.Second)
	first := n.Stats().Received
	tb.Run(0, 2*time.Second)
	if tb.MeasuredDuration() != 4*time.Second {
		t.Errorf("MeasuredDuration = %v, want 4s", tb.MeasuredDuration())
	}
	if n.Stats().Received <= first {
		t.Error("second Run did not extend the measurement")
	}
}

func TestDCNNetworkRunsAdjustors(t *testing.T) {
	tb := New(Options{Seed: 5})
	n := tb.AddNetwork(singleNetworkSpec(t, 2460, 4), NetworkConfig{Scheme: SchemeDCN})
	tb.Run(2*time.Second, 2*time.Second)
	for _, s := range n.Senders {
		if s.Adjustor == nil {
			t.Fatal("DCN sender missing adjustor")
		}
		if got := s.Adjustor.Phase(); got.String() != "updating" {
			t.Errorf("adjustor phase = %v after 4s, want updating", got)
		}
		// The threshold must track the co-channel RSSI neighbourhood
		// (tens of dB above the post-init noise-floor clamp), not stay
		// stuck at the conservative init value.
		if th := s.Radio.CCAThreshold(); th < phy.NoiseFloor+10 {
			t.Errorf("DCN threshold = %v, want tracking co-channel RSSI", th)
		}
	}
	if n.Throughput(tb.MeasuredDuration()) == 0 {
		t.Error("DCN network carried no traffic")
	}
}

func TestNoCarrierSenseSchemeTransmitsBlindly(t *testing.T) {
	tb := New(Options{Seed: 6})
	n := tb.AddNetwork(singleNetworkSpec(t, 2460, 2), NetworkConfig{Scheme: SchemeNoCarrierSense})
	tb.Run(time.Second, 2*time.Second)
	s := n.Stats()
	if s.Sent == 0 {
		t.Fatal("no-CS network sent nothing")
	}
	// Blind senders collide: some receptions must have overlapped.
	if s.Collided == 0 {
		t.Error("no collisions under disabled carrier sense with 2 saturated senders")
	}
}

func TestTwoOrthogonalNetworksDoNotInterfere(t *testing.T) {
	rng := sim.NewRNG(7)
	plan, err := phy.NewChannelPlan(2458, 15, 15, phy.SpanInclusive) // 2 channels 15 MHz apart
	if err != nil {
		t.Fatal(err)
	}
	nets, err := topology.Generate(topology.Config{Plan: plan, SendersPerNetwork: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tb := New(Options{Seed: 7})
	a := tb.AddNetwork(nets[0], NetworkConfig{})
	b := tb.AddNetwork(nets[1], NetworkConfig{})
	tb.Run(time.Second, 5*time.Second)

	ta := a.Throughput(tb.MeasuredDuration())
	tbp := b.Throughput(tb.MeasuredDuration())
	if ta < 200 || tbp < 200 {
		t.Errorf("orthogonal networks = %.1f / %.1f pkt/s, want both near isolated rate", ta, tbp)
	}
	if got := tb.OverallThroughput(); got < ta || got < tbp {
		t.Errorf("OverallThroughput = %.1f inconsistent with parts", got)
	}
	if per := tb.PerNetworkThroughput(); len(per) != 2 || per[0] != ta || per[1] != tbp {
		t.Errorf("PerNetworkThroughput = %v", per)
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeFixed: "fixed", SchemeDCN: "dcn",
		SchemeNoCarrierSense: "no-cs", Scheme(9): "scheme(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Scheme.String() = %q, want %q", got, want)
		}
	}
}

func TestNetworkLabel(t *testing.T) {
	if NetworkLabel(0) != "N0" || NetworkLabel(5) != "N5" {
		t.Error("NetworkLabel format")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		tb := New(Options{Seed: 99})
		n := tb.AddNetwork(singleNetworkSpec(t, 2460, 4), NetworkConfig{})
		tb.Run(time.Second, 3*time.Second)
		return n.Throughput(tb.MeasuredDuration())
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical seeds diverged: %v vs %v", a, b)
	}
}

func TestTraceRecordsEvents(t *testing.T) {
	tb := New(Options{Seed: 8})
	rec := tb.EnableTrace(10000)
	n := tb.AddNetwork(singleNetworkSpec(t, 2460, 2), NetworkConfig{Scheme: SchemeDCN})
	tb.Run(2*time.Second, 2*time.Second)

	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	// All senders' transmissions and the sink's receptions must appear.
	var txEnd, rxOK, threshold int
	for _, e := range evs {
		switch e.Kind.String() {
		case "tx-end":
			txEnd++
		case "rx-ok":
			rxOK++
		case "threshold":
			threshold++
		}
	}
	if txEnd == 0 || rxOK == 0 {
		t.Errorf("txEnd=%d rxOK=%d, want both recorded", txEnd, rxOK)
	}
	if threshold == 0 {
		t.Error("DCN threshold changes not traced")
	}
	// Events are time-ordered.
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("trace not chronological")
		}
	}
	_ = n
}

func TestFailureInjectionSenderDies(t *testing.T) {
	// Rate-limited sources (100 Hz each) so per-sender load is visible:
	// with saturated sources a single survivor would just fill the
	// channel alone.
	tb := New(Options{Seed: 9})
	n := tb.AddNetwork(singleNetworkSpec(t, 2460, 2),
		NetworkConfig{Period: 10 * time.Millisecond})
	tb.Run(time.Second, 2*time.Second)
	before := n.Stats().Received // ≈ 400 over 2 s

	// One of the two senders dies; throughput roughly halves but the
	// network keeps operating.
	n.Senders[0].Radio.SetOff()
	tb.Run(0, 2*time.Second)
	delta := n.Stats().Received - before
	if delta <= 0 {
		t.Fatal("network stalled after one sender died")
	}
	if float64(delta) < 0.4*float64(before) || float64(delta) > 0.65*float64(before) {
		t.Errorf("throughput after losing one of two senders = %d (was %d), want ≈ half", delta, before)
	}

	// The sender comes back; throughput recovers.
	n.Senders[0].Radio.SetOn()
	mid := n.Stats().Received
	tb.Run(0, 2*time.Second)
	recovered := n.Stats().Received - mid
	if float64(recovered) < 0.85*float64(before) {
		t.Errorf("no recovery after power-on: %d then %d", before, recovered)
	}
}

func TestFailureInjectionAdjustorReset(t *testing.T) {
	tb := New(Options{Seed: 10})
	n := tb.AddNetwork(singleNetworkSpec(t, 2460, 4), NetworkConfig{Scheme: SchemeDCN})
	tb.Run(2*time.Second, time.Second)
	adj := n.Senders[0].Adjustor
	if adj.Phase().String() != "updating" {
		t.Fatalf("phase = %v, want updating", adj.Phase())
	}
	// Node reboots: adjustor re-initializes and converges again.
	adj.Reset()
	if adj.Phase().String() != "initializing" {
		t.Fatalf("phase after reset = %v", adj.Phase())
	}
	tb.Run(0, 2*time.Second)
	if adj.Phase().String() != "updating" {
		t.Errorf("phase after re-init = %v, want updating", adj.Phase())
	}
	if th := n.Senders[0].Radio.CCAThreshold(); th < phy.NoiseFloor+10 {
		t.Errorf("threshold after re-init = %v, want re-converged", th)
	}
}
