package fault

import (
	"reflect"
	"testing"
	"time"

	"nonortho/internal/dcn"
	"nonortho/internal/frame"
	"nonortho/internal/mac"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

func world(t *testing.T, seed int64) (*sim.Kernel, *medium.Medium) {
	t.Helper()
	k := sim.NewKernel(seed)
	m := medium.New(k,
		medium.WithFadingSigma(0),
		medium.WithStaticFadingSigma(0),
		medium.WithPathLoss(&phy.LogDistance{ReferenceLoss: 40, Exponent: 3, MinDistance: 0.1}))
	return k, m
}

func newNode(k *sim.Kernel, md *medium.Medium, addr frame.Address, x float64) (*radio.Radio, *mac.MAC) {
	r := radio.New(k, md, radio.Config{
		Pos:          phy.Position{X: x},
		Freq:         2460,
		TxPower:      0,
		CCAThreshold: phy.DefaultCCAThreshold,
		Address:      addr,
	})
	return r, mac.New(k, r, mac.Config{})
}

func TestCrashSilencesNodeAndRebootRestores(t *testing.T) {
	k, md := world(t, 1)
	r, m := newNode(k, md, 1, 0)
	rxRadio, rxMAC := newNode(k, md, 2, 1)
	var delivered int
	rxMAC.OnReceive = func(radio.Reception) { delivered++ }

	a := dcn.Attach(k, m, dcn.Config{})
	a.Start()

	// A saturated source: refills on both outcomes, exactly like the
	// testbed's traffic generators.
	var refill func(*frame.Frame)
	refill = func(*frame.Frame) { m.Send(&frame.Frame{Type: frame.TypeData, Dst: 2, Payload: make([]byte, 32)}) }
	m.OnSent = refill
	m.OnDropped = refill
	refill(nil)
	refill(nil)

	inj := NewInjector(k)
	inj.ScheduleCrash(CrashTarget{Radio: r, MAC: m, Adjustor: a}, 2*time.Second, time.Second)

	k.RunUntil(sim.FromDuration(2100 * time.Millisecond))
	if !m.Suspended() {
		t.Fatal("MAC not suspended after crash")
	}
	if r.State() != radio.StateOff {
		t.Fatalf("radio state = %v after crash, want off", r.State())
	}
	if a.Phase() != dcn.PhaseStopped {
		t.Fatalf("adjustor phase = %v after crash, want stopped", a.Phase())
	}
	atCrash := delivered

	// While down, nothing is transmitted.
	k.RunUntil(sim.FromDuration(2900 * time.Millisecond))
	if delivered != atCrash {
		t.Fatalf("deliveries while down: %d", delivered-atCrash)
	}

	// After reboot the node rejoins: MAC resumes, the Adjustor re-enters
	// the Initializing Phase, traffic flows again.
	k.RunUntil(sim.FromDuration(3100 * time.Millisecond))
	if m.Suspended() {
		t.Fatal("MAC still suspended after reboot")
	}
	if a.Phase() != dcn.PhaseInitializing {
		t.Fatalf("adjustor phase = %v after reboot, want initializing", a.Phase())
	}
	k.RunUntil(sim.FromDuration(5 * time.Second))
	if delivered == atCrash {
		t.Fatal("no deliveries after reboot")
	}
	if s := inj.Stats(); s.Crashes != 1 || s.Reboots != 1 {
		t.Fatalf("stats = %+v, want 1 crash, 1 reboot", s)
	}
	_ = rxRadio
}

func TestCrashWithoutRebootIsPermanent(t *testing.T) {
	k, md := world(t, 1)
	r, m := newNode(k, md, 1, 0)
	inj := NewInjector(k)
	inj.ScheduleCrash(CrashTarget{Radio: r, MAC: m}, 100*time.Millisecond, 0)
	k.RunUntil(sim.FromDuration(10 * time.Second))
	if !m.Suspended() || r.State() != radio.StateOff {
		t.Fatal("node came back without a scheduled reboot")
	}
	if s := inj.Stats(); s.Crashes != 1 || s.Reboots != 0 {
		t.Fatalf("stats = %+v, want 1 crash, 0 reboots", s)
	}
}

func TestRebootClearsStuckRegisterAndRestoresBootThreshold(t *testing.T) {
	k, md := world(t, 1)
	r, m := newNode(k, md, 1, 0)
	boot := r.CCAThreshold()

	inj := NewInjector(k)
	inj.ScheduleStuckCCA(r, 0, 0) // stuck forever, short of a reboot
	inj.ScheduleCrash(CrashTarget{Radio: r, MAC: m}, time.Second, time.Second)

	k.RunUntil(sim.FromDuration(500 * time.Millisecond))
	r.SetCCAThreshold(-60)
	if got := r.CCAThreshold(); got != boot {
		t.Fatalf("stuck register accepted a write: %v", got)
	}

	k.RunUntil(sim.FromDuration(3 * time.Second))
	if r.CCAStuck() {
		t.Fatal("register still stuck after power cycle")
	}
	if got := r.CCAThreshold(); got != boot {
		t.Fatalf("threshold after reboot = %v, want boot value %v", got, boot)
	}
	r.SetCCAThreshold(-60)
	if got := r.CCAThreshold(); got != -60 {
		t.Fatalf("register not writable after reboot: %v", got)
	}
}

func TestDriftClampsAndFreezes(t *testing.T) {
	k, md := world(t, 1)
	r, _ := newNode(k, md, 1, 0)
	inj := NewInjector(k)
	// A pure ramp: +2 dB per 100 ms step, clamped at 5 dB, stopped at 1 s.
	inj.ScheduleDrift(r, DriftConfig{
		Step:   100 * time.Millisecond,
		Sigma:  1e-12, // Sigma=0 would mean "default"; make it negligible
		Slope:  2,
		MaxAbs: 5,
		Stop:   time.Second,
	})
	k.RunUntil(sim.FromDuration(900 * time.Millisecond))
	if got := float64(r.RSSICalibration()); got < 4.99 || got > 5.01 {
		t.Fatalf("offset = %g, want clamped at 5", got)
	}
	frozen := r.RSSICalibration()
	k.RunUntil(sim.FromDuration(5 * time.Second))
	if r.RSSICalibration() != frozen {
		t.Fatalf("offset moved after Stop: %v -> %v", frozen, r.RSSICalibration())
	}
	if inj.Stats().DriftSteps == 0 {
		t.Fatal("no drift steps counted")
	}
}

func TestDriftStreamsArePerRadio(t *testing.T) {
	// Two radios drifting from the same injector must follow independent
	// random walks (per-address streams), and the walk must be identical
	// across two runs with the same seed.
	run := func() (phy.DBm, phy.DBm) {
		k, md := world(t, 42)
		r1, _ := newNode(k, md, 1, 0)
		r2, _ := newNode(k, md, 2, 1)
		inj := NewInjector(k)
		inj.ScheduleDrift(r1, DriftConfig{Step: 50 * time.Millisecond})
		inj.ScheduleDrift(r2, DriftConfig{Step: 50 * time.Millisecond})
		k.RunUntil(sim.FromDuration(2 * time.Second))
		return r1.RSSICalibration(), r2.RSSICalibration()
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Fatalf("drift not reproducible: (%v,%v) vs (%v,%v)", a1, b1, a2, b2)
	}
	if a1 == b1 {
		t.Fatalf("two radios drew identical walks (%v); streams not independent", a1)
	}
}

func TestStuckCCAWindow(t *testing.T) {
	k, md := world(t, 1)
	r, _ := newNode(k, md, 1, 0)
	inj := NewInjector(k)
	inj.ScheduleStuckCCA(r, time.Second, time.Second)

	k.RunUntil(sim.FromDuration(500 * time.Millisecond))
	r.SetCCAThreshold(-60)
	if r.CCAThreshold() != -60 {
		t.Fatal("write before the fault window was ignored")
	}
	k.RunUntil(sim.FromDuration(1500 * time.Millisecond))
	r.SetCCAThreshold(-50)
	if r.CCAThreshold() != -60 {
		t.Fatal("write during the fault window took effect")
	}
	k.RunUntil(sim.FromDuration(2500 * time.Millisecond))
	r.SetCCAThreshold(-50)
	if r.CCAThreshold() != -50 {
		t.Fatal("write after the fault window was ignored")
	}
	if got := r.RegisterStats().IgnoredWrites; got != 1 {
		t.Fatalf("IgnoredWrites = %d, want 1", got)
	}
	if inj.Stats().StuckPeriods != 1 {
		t.Fatalf("StuckPeriods = %d, want 1", inj.Stats().StuckPeriods)
	}
}

// jammerTrace records the on-air schedule a listener observes.
type jammerTrace struct {
	pos    phy.Position
	events []sim.Time
}

func (l *jammerTrace) Position() phy.Position         { return l.pos }
func (l *jammerTrace) OnAir(tx *medium.Transmission)  { l.events = append(l.events, tx.Start) }
func (l *jammerTrace) OffAir(tx *medium.Transmission) {}

func TestJammerBurstsAndStops(t *testing.T) {
	k, md := world(t, 7)
	trace := &jammerTrace{pos: phy.Position{X: 1}}
	md.Attach(trace)

	inj := NewInjector(k)
	j := inj.NewJammer(md, JammerConfig{
		Freq:      2460,
		Power:     -10,
		MeanBurst: 100 * time.Millisecond,
		MeanGap:   200 * time.Millisecond,
		Stop:      2 * time.Second,
	})
	j.Start()
	k.RunUntil(sim.FromDuration(5 * time.Second))

	if j.Bursts() == 0 || len(trace.events) == 0 {
		t.Fatalf("bursts = %d, frames = %d; want activity", j.Bursts(), len(trace.events))
	}
	if inj.Stats().JammerBursts != j.Bursts() {
		t.Fatalf("injector bursts = %d, jammer reports %d", inj.Stats().JammerBursts, j.Bursts())
	}
	limit := sim.FromDuration(2*time.Second + 10*time.Millisecond)
	for _, at := range trace.events {
		if at > limit {
			t.Fatalf("frame started at %v, after Stop", at)
		}
	}
}

func TestJammerScheduleIsDeterministic(t *testing.T) {
	run := func() []sim.Time {
		k, md := world(t, 99)
		trace := &jammerTrace{pos: phy.Position{X: 1}}
		md.Attach(trace)
		inj := NewInjector(k)
		j := inj.NewJammer(md, JammerConfig{
			Freq:      2460,
			Power:     -10,
			Bandwidth: 22,
			MeanBurst: 50 * time.Millisecond,
			MeanGap:   150 * time.Millisecond,
		})
		j.Start()
		k.RunUntil(sim.FromDuration(3 * time.Second))
		return trace.events
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("jammer schedule differs across identical runs: %d vs %d frames", len(a), len(b))
	}
}

func TestJammerDetachLeavesMediumClean(t *testing.T) {
	k, md := world(t, 3)
	inj := NewInjector(k)
	j := inj.NewJammer(md, JammerConfig{Freq: 2460, Power: -10})
	j.Start()
	k.RunUntil(sim.FromDuration(100 * time.Millisecond))
	j.Detach()
	k.RunUntil(sim.FromDuration(2 * time.Second))
	if n := md.ActiveCount(); n != 0 {
		t.Fatalf("active transmissions after detach = %d, want 0", n)
	}
}
