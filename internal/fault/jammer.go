package fault

import (
	"fmt"
	"time"

	"nonortho/internal/frame"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// JammerAddress is the source address stamped on jammer frames. It is a
// reserved-range unicast address no node owns, so no MAC ever accepts or
// acknowledges a jammer frame — receivers only overhear it, which is
// exactly the path that feeds (and can poison) the DCN Adjustor.
const JammerAddress frame.Address = 0xFFFE

// JammerConfig parameterises a Gilbert–Elliott burst jammer.
type JammerConfig struct {
	// Pos is the emitter position.
	Pos phy.Position
	// Freq is the emission center frequency.
	Freq phy.MHz
	// Bandwidth is the occupied bandwidth for wideband emission
	// (e.g. 22 MHz for an 802.11-class source). Zero emits narrowband
	// 802.15.4-shaped frames that co-channel receivers can lock onto.
	Bandwidth phy.MHz
	// Power is the transmit power.
	Power phy.DBm
	// Payload is the frame payload size in bytes (default 100).
	Payload int
	// MeanBurst is the mean on-state dwell (default 200 ms). Dwells are
	// exponential, the continuous-time limit of the Gilbert–Elliott
	// two-state chain's geometric holding times.
	MeanBurst time.Duration
	// MeanGap is the mean off-state dwell (default 2 s).
	MeanGap time.Duration
	// Start delays the first burst (default 0: the chain starts in the
	// burst state as soon as Start() is called).
	Start time.Duration
	// Stop, when positive, is the virtual instant (measured from the
	// simulation origin) after which no new burst or frame begins.
	Stop time.Duration
}

func (c JammerConfig) withDefaults() JammerConfig {
	if c.Payload == 0 {
		c.Payload = 100
	}
	if c.MeanBurst == 0 {
		c.MeanBurst = 200 * time.Millisecond
	}
	if c.MeanGap == 0 {
		c.MeanGap = 2 * time.Second
	}
	return c
}

// Jammer is a Gilbert–Elliott on/off emitter attached to the medium. In
// the on (burst) state it transmits back-to-back frames; in the off (gap)
// state it is silent. State dwells are drawn from a dedicated kernel
// stream, so a jammer's schedule is a pure function of the kernel seed and
// its creation order.
type Jammer struct {
	kernel *sim.Kernel
	medium *medium.Medium
	id     int
	cfg    JammerConfig
	rng    *sim.RNG

	running bool
	bursts  int
}

// NewJammer creates a jammer through the injector and attaches it to the
// medium. Call Start to begin the on/off chain.
func (inj *Injector) NewJammer(m *medium.Medium, cfg JammerConfig) *Jammer {
	j := &Jammer{
		kernel: inj.kernel,
		medium: m,
		cfg:    cfg.withDefaults(),
		rng:    inj.kernel.Stream(fmt.Sprintf("fault.jammer.%d", len(inj.jammers))),
	}
	j.id = m.Attach(j)
	inj.jammers = append(inj.jammers, j)
	return j
}

// Position implements medium.Listener.
func (j *Jammer) Position() phy.Position { return j.cfg.Pos }

// OnAir implements medium.Listener (a jammer never receives).
func (j *Jammer) OnAir(*medium.Transmission) {}

// OffAir implements medium.Listener.
func (j *Jammer) OffAir(*medium.Transmission) {}

// Bursts reports the number of completed burst periods.
func (j *Jammer) Bursts() int { return j.bursts }

// Start launches the Gilbert–Elliott chain, beginning with a burst after
// the configured Start delay.
func (j *Jammer) Start() {
	if j.running {
		return
	}
	j.running = true
	j.kernel.After(j.cfg.Start, j.burstPhase)
}

// Stop silences the jammer after the frame currently on air (if any).
func (j *Jammer) Stop() { j.running = false }

// Detach silences the jammer and removes it from the medium entirely; a
// frame already on the air still completes (the energy is radiated).
func (j *Jammer) Detach() {
	j.Stop()
	j.medium.Detach(j.id)
}

// expired reports whether the configured Stop instant has passed.
func (j *Jammer) expired() bool {
	return j.cfg.Stop > 0 && j.kernel.Now() >= sim.FromDuration(j.cfg.Stop)
}

func (j *Jammer) burstPhase() {
	if !j.running || j.expired() {
		return
	}
	end := j.kernel.Now() + sim.FromDuration(time.Duration(j.rng.Exponential(float64(j.cfg.MeanBurst))))
	var next func()
	next = func() {
		if !j.running || j.expired() || j.kernel.Now() >= end {
			j.bursts++
			gap := time.Duration(j.rng.Exponential(float64(j.cfg.MeanGap)))
			j.kernel.After(gap, j.burstPhase)
			return
		}
		f := &frame.Frame{
			Type:    frame.TypeData,
			Src:     JammerAddress,
			Dst:     JammerAddress,
			Payload: make([]byte, j.cfg.Payload),
		}
		tx := j.medium.TransmitShaped(j.id, j.cfg.Pos, j.cfg.Power, j.cfg.Freq, j.cfg.Bandwidth, f)
		j.kernel.At(tx.End, next)
	}
	next()
}
