// Package fault is a deterministic fault-injection subsystem for the
// simulated testbed. An Injector, driven by the sim kernel and seeded from
// its named random streams, schedules composable fault models against a
// running deployment:
//
//   - node crash/reboot — the MAC and radio lose all state and the DCN
//     CCA-Adjustor restarts from the Initializing Phase, as on real motes;
//   - bursty external jammers — Gilbert–Elliott on/off emitters attached
//     to the medium as (optionally wideband) transmission sources,
//     modelling the coexisting-network interference patterns measured in
//     deployed 2.4 GHz bands;
//   - RSSI calibration drift — a per-node additive dBm error random-walked
//     over time, applied to every power the radio reads;
//   - stuck-CCA registers — threshold writes silently ignored for a
//     window, starving any scheme that reprograms the register.
//
// Every draw comes from kernel streams, so the same seed and fault
// schedule replay bit-identically.
package fault

import (
	"fmt"
	"time"

	"nonortho/internal/dcn"
	"nonortho/internal/mac"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// Stats aggregates the events the Injector has fired.
type Stats struct {
	// Crashes and Reboots count node crash/reboot events.
	Crashes, Reboots int
	// DriftSteps counts RSSI calibration random-walk updates.
	DriftSteps int
	// StuckPeriods counts stuck-CCA fault activations.
	StuckPeriods int
	// JammerBursts counts completed jammer burst (on) periods.
	JammerBursts int
}

// Injector schedules fault events on a simulation kernel.
type Injector struct {
	kernel  *sim.Kernel
	stats   Stats
	jammers []*Jammer
}

// NewInjector binds an injector to the kernel.
func NewInjector(k *sim.Kernel) *Injector {
	return &Injector{kernel: k}
}

// Stats returns a snapshot of every fault event fired so far, including
// the bursts of jammers created through this injector.
func (inj *Injector) Stats() Stats {
	s := inj.stats
	for _, j := range inj.jammers {
		s.JammerBursts += j.Bursts()
	}
	return s
}

// CrashTarget is the node surface a crash manipulates: the radio and MAC
// are mandatory, the Adjustor is present only on DCN nodes.
type CrashTarget struct {
	Radio    *radio.Radio
	MAC      *mac.MAC
	Adjustor *dcn.Adjustor
}

// ScheduleCrash crashes the target at virtual time at and, when downFor is
// positive, reboots it downFor later. The crash halts the MAC (flushing
// its queue — RAM does not survive), powers the radio off and stops the
// Adjustor. The reboot clears any stuck-register fault (a power cycle
// resets the register file), restores the threshold the radio booted with,
// resumes the MAC, and restarts the Adjustor from the Initializing Phase.
// A non-positive downFor leaves the node dead for the rest of the run.
func (inj *Injector) ScheduleCrash(t CrashTarget, at, downFor time.Duration) {
	bootThreshold := t.Radio.CCAThreshold()
	inj.kernel.At(inj.kernel.Now()+sim.FromDuration(at), func() {
		inj.stats.Crashes++
		t.MAC.Suspend()
		t.Radio.SetOff()
		if t.Adjustor != nil {
			t.Adjustor.Stop()
		}
		if downFor <= 0 {
			return
		}
		inj.kernel.After(downFor, func() {
			inj.stats.Reboots++
			t.Radio.SetCCAStuck(false)
			t.Radio.SetOn()
			t.Radio.SetCCAThreshold(bootThreshold)
			t.MAC.Resume()
			if t.Adjustor != nil {
				t.Adjustor.Start()
			}
		})
	})
}

// DriftConfig parameterises an RSSI calibration drift fault.
type DriftConfig struct {
	// Step is the update cadence (default 500 ms).
	Step time.Duration
	// Sigma is the per-step random-walk standard deviation in dB
	// (default 0.5).
	Sigma float64
	// Slope is a deterministic per-step ramp component in dB, for
	// modelling monotone miscalibration (default 0).
	Slope float64
	// MaxAbs clamps the accumulated offset magnitude in dB (default 12).
	MaxAbs float64
	// Start delays the onset (default 0). Stop, when positive, ends the
	// walk — the offset then freezes at its final value, as a
	// miscalibrated radio stays miscalibrated.
	Start, Stop time.Duration
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Step == 0 {
		c.Step = 500 * time.Millisecond
	}
	if c.Sigma == 0 {
		c.Sigma = 0.5
	}
	if c.MaxAbs == 0 {
		c.MaxAbs = 12
	}
	return c
}

// ScheduleDrift random-walks the radio's RSSI calibration error. Draws
// come from a per-radio kernel stream, so drift on one node never perturbs
// another node's schedule.
func (inj *Injector) ScheduleDrift(r *radio.Radio, cfg DriftConfig) {
	cfg = cfg.withDefaults()
	rng := inj.kernel.Stream(fmt.Sprintf("fault.drift.%d", r.Address()))
	stop := sim.Time(0)
	if cfg.Stop > 0 {
		stop = inj.kernel.Now() + sim.FromDuration(cfg.Stop)
	}
	inj.kernel.After(cfg.Start, func() {
		var ticker *sim.Ticker
		ticker = inj.kernel.NewTicker(cfg.Step, func() {
			if stop > 0 && inj.kernel.Now() >= stop {
				ticker.Stop()
				return
			}
			inj.stats.DriftSteps++
			off := float64(r.RSSICalibration()) + rng.Gaussian(0, cfg.Sigma) + cfg.Slope
			if off > cfg.MaxAbs {
				off = cfg.MaxAbs
			} else if off < -cfg.MaxAbs {
				off = -cfg.MaxAbs
			}
			r.SetRSSICalibration(phy.DBm(off))
		})
	})
}

// ScheduleStuckCCA sticks the radio's CCA threshold register at virtual
// time at: writes are silently ignored until at+duration (forever when
// duration is non-positive, short of a reboot).
func (inj *Injector) ScheduleStuckCCA(r *radio.Radio, at, duration time.Duration) {
	inj.kernel.At(inj.kernel.Now()+sim.FromDuration(at), func() {
		inj.stats.StuckPeriods++
		r.SetCCAStuck(true)
		if duration <= 0 {
			return
		}
		inj.kernel.After(duration, func() { r.SetCCAStuck(false) })
	})
}
