package routing

import (
	"encoding/binary"
	"fmt"
	"time"

	"nonortho/internal/dcn"
	"nonortho/internal/frame"
	"nonortho/internal/mac"
	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/radio"
	"nonortho/internal/sim"
)

// readingBytes is the payload of one sensor reading: origin address (2),
// reading sequence (4), padding to a realistic report size.
const readingBytes = 32

// Reading identifies one end-to-end delivery at the root.
type Reading struct {
	Origin frame.Address
	Seq    uint32
	// Hops the reading travelled (from the origin's tree depth).
	Hops int
}

// Collector is one multi-hop collection network: a tree of nodes on one
// channel, every non-root node periodically reporting readings that are
// forwarded hop-by-hop to the root.
type Collector struct {
	kernel *sim.Kernel
	freq   phy.MHz
	parent []int
	depths []int
	nodes  []*treeNode
	root   int

	generated map[frame.Address]int
	delivered map[frame.Address]int
	hopsSum   int
	hopsCount int

	// self-healing state (see heal.go)
	healModel  phy.PathLossModel
	reparented int
}

type treeNode struct {
	radio    *radio.Radio
	mac      *mac.MAC
	adjustor *dcn.Adjustor
	addr     frame.Address
	index    int

	// uplinkFails counts consecutive link-level delivery failures toward
	// the current parent (self-healing, see heal.go).
	uplinkFails int
}

// Config parameterises a Collector.
type Config struct {
	// Freq is the tree's channel center frequency.
	Freq phy.MHz
	// Positions and TxPowers describe the nodes; index Root is the sink.
	Positions []phy.Position
	TxPowers  []phy.DBm
	Root      int
	// ReportPeriod spaces each node's readings (default 250 ms).
	ReportPeriod time.Duration
	// UseDCN runs the CCA-Adjustor on every node.
	UseDCN bool
	// BaseAddr offsets the node addresses so multiple collectors can
	// share a medium without address collisions.
	BaseAddr frame.Address
	// PathLoss is used for tree construction (default the indoor model).
	PathLoss phy.PathLossModel
}

// NewCollector builds the tree and its nodes on the medium.
func NewCollector(k *sim.Kernel, m *medium.Medium, cfg Config) (*Collector, error) {
	if cfg.ReportPeriod == 0 {
		cfg.ReportPeriod = 250 * time.Millisecond
	}
	if cfg.PathLoss == nil {
		cfg.PathLoss = phy.DefaultPathLoss()
	}
	parent, err := BuildTree(cfg.Positions, cfg.TxPowers, cfg.Root, cfg.PathLoss, LinkMargin)
	if err != nil {
		return nil, err
	}
	depths, err := Depths(parent)
	if err != nil {
		return nil, err
	}

	c := &Collector{
		kernel:    k,
		freq:      cfg.Freq,
		parent:    parent,
		depths:    depths,
		root:      cfg.Root,
		generated: make(map[frame.Address]int),
		delivered: make(map[frame.Address]int),
	}
	for i := range cfg.Positions {
		addr := cfg.BaseAddr + frame.Address(i)
		r := radio.New(k, m, radio.Config{
			Pos:          cfg.Positions[i],
			Freq:         cfg.Freq,
			TxPower:      cfg.TxPowers[i],
			CCAThreshold: phy.DefaultCCAThreshold,
			Address:      addr,
		})
		// Hop-by-hop ACKs with retries: collection protocols rely on link
		// reliability, and it exercises the full MAC feature set.
		mc := mac.New(k, r, mac.Config{QueueCap: 128, AckEnabled: true})
		node := &treeNode{radio: r, mac: mc, addr: addr, index: i}
		if cfg.UseDCN {
			node.adjustor = dcn.Attach(k, mc, dcn.Config{})
		}
		c.nodes = append(c.nodes, node)
	}
	for _, node := range c.nodes {
		node := node
		node.mac.OnReceive = func(rcv radio.Reception) { c.handle(node, rcv) }
	}
	return c, nil
}

// Start launches the periodic sources (and DCN adjustors when enabled).
func (c *Collector) Start(reportPeriod time.Duration) {
	if reportPeriod == 0 {
		reportPeriod = 250 * time.Millisecond
	}
	for _, node := range c.nodes {
		if node.adjustor != nil {
			node.adjustor.Start()
		}
		if node.index == c.root {
			continue
		}
		node := node
		seq := uint32(0)
		c.kernel.NewTicker(reportPeriod, func() {
			seq++
			c.generated[node.addr]++
			c.send(node, node.addr, seq)
		})
	}
}

// send enqueues a reading (origin, seq) from node toward its parent.
func (c *Collector) send(node *treeNode, origin frame.Address, seq uint32) {
	p := c.parent[node.index]
	if p == NoParent {
		return
	}
	payload := make([]byte, readingBytes)
	binary.LittleEndian.PutUint16(payload[0:2], uint16(origin))
	binary.LittleEndian.PutUint32(payload[2:6], seq)
	f := &frame.Frame{
		Type:    frame.TypeData,
		Src:     node.addr,
		Dst:     c.nodes[p].addr,
		Payload: payload,
	}
	node.mac.Send(f)
}

// handle processes a frame arriving at node: deliver at the root, forward
// elsewhere.
func (c *Collector) handle(node *treeNode, rcv radio.Reception) {
	if len(rcv.Frame.Payload) < 6 {
		return // not a reading
	}
	origin := frame.Address(binary.LittleEndian.Uint16(rcv.Frame.Payload[0:2]))
	seq := binary.LittleEndian.Uint32(rcv.Frame.Payload[2:6])
	if node.index == c.root {
		c.delivered[origin]++
		oi := int(origin - c.nodes[0].addr)
		if oi >= 0 && oi < len(c.depths) {
			c.hopsSum += c.depths[oi]
			c.hopsCount++
		}
		return
	}
	c.send(node, origin, seq)
}

// Freq returns the collector's channel.
func (c *Collector) Freq() phy.MHz { return c.freq }

// Depth returns the tree's maximum hop count.
func (c *Collector) Depth() int {
	max := 0
	for _, d := range c.depths {
		if d > max {
			max = d
		}
	}
	return max
}

// Generated and Delivered count end-to-end readings.
func (c *Collector) Generated() int { return total(c.generated) }

// Delivered counts readings that reached the root.
func (c *Collector) Delivered() int { return total(c.delivered) }

// DeliveryRatio is Delivered/Generated (0 when nothing was generated).
func (c *Collector) DeliveryRatio() float64 {
	g := c.Generated()
	if g == 0 {
		return 0
	}
	return float64(c.Delivered()) / float64(g)
}

// MeanHops is the average tree depth of delivered readings.
func (c *Collector) MeanHops() float64 {
	if c.hopsCount == 0 {
		return 0
	}
	return float64(c.hopsSum) / float64(c.hopsCount)
}

// PerOrigin reports delivered counts by origin address.
func (c *Collector) PerOrigin() map[frame.Address]int {
	out := make(map[frame.Address]int, len(c.delivered))
	for k, v := range c.delivered {
		out[k] = v
	}
	return out
}

// ResetCounters clears delivery accounting (e.g. after warmup).
func (c *Collector) ResetCounters() {
	c.generated = make(map[frame.Address]int)
	c.delivered = make(map[frame.Address]int)
	c.hopsSum, c.hopsCount = 0, 0
}

func total(m map[frame.Address]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}

// String summarises the collector.
func (c *Collector) String() string {
	return fmt.Sprintf("collector@%v MHz: %d nodes, depth %d", c.freq, len(c.nodes), c.Depth())
}
