package routing

import (
	"testing"
	"testing/quick"
	"time"

	"nonortho/internal/medium"
	"nonortho/internal/phy"
	"nonortho/internal/sim"
)

// chain positions n nodes spaced d meters apart along X.
func chain(n int, d float64) []phy.Position {
	out := make([]phy.Position, n)
	for i := range out {
		out[i] = phy.Position{X: float64(i) * d}
	}
	return out
}

func powers(n int, p phy.DBm) []phy.DBm {
	out := make([]phy.DBm, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func TestBuildTreeChain(t *testing.T) {
	// 5 nodes, 8 m apart at 0 dBm: only adjacent nodes are in range
	// (16 m ≈ -90 dBm misses the margin), so the tree must be the chain.
	pos := chain(5, 8)
	parent, err := BuildTree(pos, powers(5, 0), 0, phy.DefaultPathLoss(), LinkMargin)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{NoParent, 0, 1, 2, 3}
	for i := range want {
		if parent[i] != want[i] {
			t.Fatalf("parent = %v, want %v", parent, want)
		}
	}
	depths, err := Depths(parent)
	if err != nil {
		t.Fatal(err)
	}
	if depths[4] != 4 {
		t.Errorf("depth of tail = %d, want 4", depths[4])
	}
}

func TestBuildTreePrefersFewerHops(t *testing.T) {
	// A dense cluster: everyone hears the root directly → a 1-hop star.
	pos := chain(5, 1)
	parent, err := BuildTree(pos, powers(5, 0), 0, phy.DefaultPathLoss(), LinkMargin)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(parent); i++ {
		if parent[i] != 0 {
			t.Errorf("node %d parent = %d, want the root (star)", i, parent[i])
		}
	}
}

func TestBuildTreeUnreachable(t *testing.T) {
	pos := []phy.Position{{X: 0}, {X: 500}} // half a kilometer: dead link
	if _, err := BuildTree(pos, powers(2, 0), 0, phy.DefaultPathLoss(), LinkMargin); err == nil {
		t.Error("unreachable node accepted")
	}
}

func TestBuildTreeArgErrors(t *testing.T) {
	pos := chain(3, 1)
	if _, err := BuildTree(pos, powers(2, 0), 0, phy.DefaultPathLoss(), LinkMargin); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BuildTree(pos, powers(3, 0), 7, phy.DefaultPathLoss(), LinkMargin); err == nil {
		t.Error("bad root accepted")
	}
}

func TestValidateAndDepths(t *testing.T) {
	if err := Validate([]int{NoParent, 0, 1}); err != nil {
		t.Errorf("valid chain rejected: %v", err)
	}
	if err := Validate([]int{NoParent, 2, 1}); err == nil {
		t.Error("cycle accepted")
	}
	if err := Validate([]int{NoParent, NoParent, 0}); err == nil {
		t.Error("two roots accepted")
	}
	if err := Validate([]int{NoParent, 9}); err == nil {
		t.Error("dangling parent accepted")
	}
}

func TestBuildTreePropertyAcyclicMonotone(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		rng := sim.NewRNG(seed)
		pos := make([]phy.Position, n)
		for i := range pos {
			pos[i] = phy.Position{X: rng.UniformRange(0, 6), Y: rng.UniformRange(0, 6)}
		}
		parent, err := BuildTree(pos, powers(n, 0), 0, phy.DefaultPathLoss(), LinkMargin)
		if err != nil {
			return true // disconnected draw; fine
		}
		if Validate(parent) != nil {
			return false
		}
		depths, err := Depths(parent)
		if err != nil {
			return false
		}
		// Depth decreases by exactly one toward the parent.
		for i, p := range parent {
			if p == NoParent {
				continue
			}
			if depths[i] != depths[p]+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	k := sim.NewKernel(31)
	m := medium.New(k)
	// A 3-hop chain: root at 0, nodes at 8 m spacing (16 m skips are out
	// of range, so hops are forced).
	pos := chain(4, 8)
	c, err := NewCollector(k, m, Config{
		Freq:      2460,
		Positions: pos,
		TxPowers:  powers(4, 0),
		Root:      0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", c.Depth())
	}
	c.Start(100 * time.Millisecond)
	k.RunUntil(sim.FromDuration(10 * time.Second))

	if c.Generated() == 0 {
		t.Fatal("no readings generated")
	}
	// An interference-free band still loses some forwardings to hidden
	// terminals inside the chain (nodes 1 and 3 cannot hear each other
	// and collide at node 2); ACK retries recover most of it.
	ratio := c.DeliveryRatio()
	if ratio < 0.75 || ratio > 1 {
		t.Errorf("delivery ratio = %.2f, want high but below 1 (hidden terminals)", ratio)
	}
	if got := c.MeanHops(); got < 1.5 || got > 3 {
		t.Errorf("mean hops = %.2f, want within (1.5, 3) for a 3-hop chain", got)
	}
	// Every origin delivered something.
	per := c.PerOrigin()
	if len(per) != 3 {
		t.Errorf("origins delivered = %d, want 3", len(per))
	}
}

func TestCollectorResetCounters(t *testing.T) {
	k := sim.NewKernel(32)
	m := medium.New(k)
	c, err := NewCollector(k, m, Config{
		Freq:      2460,
		Positions: chain(3, 4),
		TxPowers:  powers(3, 0),
		Root:      0,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start(50 * time.Millisecond)
	k.RunUntil(sim.FromDuration(2 * time.Second))
	if c.Delivered() == 0 {
		t.Fatal("nothing delivered before reset")
	}
	c.ResetCounters()
	if c.Delivered() != 0 || c.Generated() != 0 || c.MeanHops() != 0 {
		t.Error("counters not cleared")
	}
	k.RunUntil(sim.FromDuration(4 * time.Second))
	if c.Delivered() == 0 {
		t.Error("nothing delivered after reset")
	}
}

func TestTwoCollectorsOnAdjacentChannels(t *testing.T) {
	// Two trees 3 MHz apart with DCN: both must deliver despite the
	// non-orthogonal overlap — multihop inherits the paper's property.
	k := sim.NewKernel(33)
	m := medium.New(k)
	a, err := NewCollector(k, m, Config{
		Freq:      2460,
		Positions: chain(4, 4),
		TxPowers:  powers(4, 0),
		Root:      0,
		UseDCN:    true,
		BaseAddr:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	posB := chain(4, 4)
	for i := range posB {
		posB[i].Y = 2
	}
	b, err := NewCollector(k, m, Config{
		Freq:      2463,
		Positions: posB,
		TxPowers:  powers(4, 0),
		Root:      0,
		UseDCN:    true,
		BaseAddr:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start(100 * time.Millisecond)
	b.Start(100 * time.Millisecond)
	k.RunUntil(sim.FromDuration(12 * time.Second))

	if ra := a.DeliveryRatio(); ra < 0.8 {
		t.Errorf("tree A delivery = %.2f, want high", ra)
	}
	if rb := b.DeliveryRatio(); rb < 0.8 {
		t.Errorf("tree B delivery = %.2f, want high", rb)
	}
}

func TestSelfHealingReparentsAroundDeadRelay(t *testing.T) {
	k := sim.NewKernel(41)
	m := medium.New(k, medium.WithStaticFadingSigma(0))
	// Diamond: root at origin; relays A and B flank the path; a leaf
	// behind them reaches the root only through a relay.
	pos := []phy.Position{
		{X: 0, Y: 0},  // 0: root
		{X: 6, Y: 2},  // 1: relay A
		{X: 6, Y: -2}, // 2: relay B
		{X: 12, Y: 0}, // 3: leaf
	}
	c, err := NewCollector(k, m, Config{
		Freq:      2460,
		Positions: pos,
		TxPowers:  powers(4, -10), // -10 dBm: root out of the leaf's reach
		Root:      0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", c.Depth())
	}
	c.EnableSelfHealing(nil)
	originalParent := c.Parent(3)
	if originalParent != 1 && originalParent != 2 {
		t.Fatalf("leaf parent = %d, want a relay", originalParent)
	}

	c.Start(100 * time.Millisecond)
	k.RunUntil(sim.FromDuration(3 * time.Second))
	deliveredBefore := c.Delivered()
	if deliveredBefore == 0 {
		t.Fatal("nothing delivered before the failure")
	}

	// The leaf's relay dies.
	c.nodes[originalParent].radio.SetOff()
	k.RunUntil(sim.FromDuration(12 * time.Second))

	if c.Reparented() == 0 {
		t.Fatal("no re-parenting happened")
	}
	newParent := c.Parent(3)
	if newParent == originalParent {
		t.Errorf("leaf still on the dead relay %d", originalParent)
	}
	if d := c.depths[newParent]; d >= c.depths[3] {
		t.Errorf("re-parented upward in depth? parent depth %d vs leaf %d", d, c.depths[3])
	}
	// Leaf deliveries resume through the other relay.
	leafAddr := c.nodes[3].addr
	before := c.PerOrigin()[leafAddr]
	k.RunUntil(sim.FromDuration(20 * time.Second))
	after := c.PerOrigin()[leafAddr]
	if after <= before {
		t.Errorf("leaf deliveries did not resume: %d then %d", before, after)
	}
}

func TestSelfHealingNoAlternativeKeepsParent(t *testing.T) {
	k := sim.NewKernel(43)
	m := medium.New(k, medium.WithStaticFadingSigma(0))
	// A bare chain: the middle node is the tail's only possible parent.
	c, err := NewCollector(k, m, Config{
		Freq:      2460,
		Positions: chain(3, 8),
		TxPowers:  powers(3, 0),
		Root:      0,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableSelfHealing(nil)
	c.Start(100 * time.Millisecond)
	k.RunUntil(sim.FromDuration(2 * time.Second))

	c.nodes[1].radio.SetOff()
	k.RunUntil(sim.FromDuration(10 * time.Second))
	if got := c.Parent(2); got != 1 {
		t.Errorf("tail re-parented to %d despite no usable alternative", got)
	}
	if c.Reparented() != 0 {
		t.Errorf("Reparented = %d, want 0", c.Reparented())
	}
}
